#!/usr/bin/env python3
"""Compare two BENCH_*.json artifacts and flag regressions.

Takes a baseline artifact and a current artifact for the same bench
(schema v1, see tools/check_bench_json.py and docs/BENCHMARKS.md), matches
runs by label, and diffs every derived metric the two runs share. A metric
is a regression when it moves in its bad direction by more than the
threshold percentage.

Direction is inferred from the metric name. Rate-shaped names ("_tps",
"_per_sec", "tpmc", "hit_rate") are higher-is-better and take precedence —
a wall-clock rate like wall_tps must flag when it *drops*, even though
other wall_* fields are durations. Otherwise anything that reads like a
latency, abort or cost ("latency", "resp", "abort", "_ms", "_ns", "_us",
"requests_per_txn", "wall_seconds") is lower-is-better; everything else
(throughput-like: tpmc, tps, speedups) is higher-is-better. Override per
metric with --lower-is-better / --higher-is-better.

Usage:
  bench_compare.py BASELINE.json CURRENT.json [--threshold PCT]
  bench_compare.py --selftest

Exit codes: 0 no regression, 1 regression found, 2 usage/artifact error.
Standard library only.
"""

import argparse
import json
import sys

LOWER_IS_BETTER_HINTS = (
    "latency",
    "resp",
    "abort",
    "_ms",
    "_ns",
    "_us",
    "requests_per_txn",
    "wall_seconds",
    # Chaos-recovery fields (bench/chaos_recovery.cc): longer leader
    # outages and deeper migration throughput dips are regressions.
    # recovery_time_ms also matches "_ms", but it is named here so the
    # direction survives a producer-side rename of the unit suffix.
    "recovery_time",
    "dip",
)

# Checked before the lower-is-better hints: a rate is higher-is-better no
# matter what else its name contains. This is what keeps wall-clock rates
# (wall_tps, wall_ops_per_sec) flagged on *drops* while wall_seconds stays
# flagged on rises.
HIGHER_IS_BETTER_HINTS = (
    "_tps",
    "_per_sec",
    "tpmc",
    "hit_rate",
    "speedup",
    # OLAP query rate of the hybrid suite (bench/hybrid_chbench.cc): fewer
    # analytical queries per second is a regression.
    "_qps",
)


def is_lower_better(name, force_lower, force_higher):
    if name in force_lower:
        return True
    if name in force_higher:
        return False
    if any(hint in name for hint in HIGHER_IS_BETTER_HINTS):
        return False
    return any(hint in name for hint in LOWER_IS_BETTER_HINTS)


def load_runs(path):
    """Return (bench_name, {label: derived}) for a schema-v1 artifact."""
    with open(path, "r", encoding="utf-8") as handle:
        doc = json.load(handle)
    if doc.get("schema_version") != 1:
        raise ValueError(f"{path}: unsupported schema_version "
                         f"{doc.get('schema_version')!r}")
    runs = {}
    for run in doc.get("runs", []):
        runs[run["label"]] = run.get("derived", {})
    return doc.get("bench", "?"), runs


def compare(baseline_path, current_path, threshold_pct, force_lower,
            force_higher, out=sys.stdout):
    """Diff the two artifacts; return the list of regression lines."""
    base_bench, base_runs = load_runs(baseline_path)
    cur_bench, cur_runs = load_runs(current_path)
    if base_bench != cur_bench:
        print(f"warning: comparing different benches "
              f"({base_bench!r} vs {cur_bench!r})", file=out)

    shared_labels = [label for label in base_runs if label in cur_runs]
    if not shared_labels:
        raise ValueError("no shared run labels between the two artifacts")
    for label in set(base_runs) ^ set(cur_runs):
        print(f"note: run {label!r} present in only one artifact, skipped",
              file=out)

    regressions = []
    for label in shared_labels:
        base, cur = base_runs[label], cur_runs[label]
        shared_metrics = sorted(set(base) & set(cur))
        if not shared_metrics:
            continue
        print(f"run {label!r}:", file=out)
        for metric in shared_metrics:
            old, new = float(base[metric]), float(cur[metric])
            if old == 0.0:
                delta_pct = 0.0 if new == 0.0 else float("inf")
            else:
                delta_pct = (new - old) / abs(old) * 100.0
            lower_better = is_lower_better(metric, force_lower, force_higher)
            bad = delta_pct > threshold_pct if lower_better \
                else delta_pct < -threshold_pct
            arrow = "lower=better" if lower_better else "higher=better"
            flag = "  REGRESSION" if bad else ""
            print(f"  {metric:<28} {old:>14.4f} -> {new:>14.4f}  "
                  f"({delta_pct:+8.2f}%, {arrow}){flag}", file=out)
            if bad:
                regressions.append(
                    f"{label}/{metric}: {old:.4f} -> {new:.4f} "
                    f"({delta_pct:+.2f}%)")
    return regressions


def selftest():
    import io
    import os
    import tempfile

    def artifact(tpmc, resp_ms, wall_tps=None, wall_seconds=None,
                 recovery_time_ms=None, migration_dip_pct=None,
                 cache_hit_rate=None, olap_qps=None):
        derived = {"tpmc": tpmc, "resp_ms": resp_ms}
        if wall_tps is not None:
            derived["wall_tps"] = wall_tps
        if wall_seconds is not None:
            derived["wall_seconds"] = wall_seconds
        if cache_hit_rate is not None:
            derived["cache_hit_rate"] = cache_hit_rate
        if olap_qps is not None:
            derived["olap_qps"] = olap_qps
        if recovery_time_ms is not None:
            derived["recovery_time_ms"] = recovery_time_ms
        if migration_dip_pct is not None:
            derived["migration_dip_pct"] = migration_dip_pct
        return {
            "schema_version": 1,
            "bench": "selftest",
            "config": {},
            "runs": [{
                "label": "run",
                "derived": derived,
                "counters": {}, "gauges": {}, "histograms": {},
            }],
        }

    cases = [
        # (baseline, current, threshold, expect_regressions)
        (artifact(1000, 1.0), artifact(1010, 0.9), 10.0, 0),   # improved
        (artifact(1000, 1.0), artifact(700, 1.0), 10.0, 1),    # tpmc down 30%
        (artifact(1000, 1.0), artifact(1000, 1.5), 10.0, 1),   # resp up 50%
        (artifact(1000, 1.0), artifact(950, 1.05), 10.0, 0),   # within 10%
        (artifact(1000, 1.0), artifact(700, 1.5), 10.0, 2),    # both regress
        # wall_tps is a rate: a drop must flag even though other wall_*
        # names (wall_seconds) are lower-is-better durations.
        (artifact(1000, 1.0, wall_tps=500.0, wall_seconds=2.0),
         artifact(1000, 1.0, wall_tps=300.0, wall_seconds=2.0), 10.0, 1),
        # ...and a wall_tps rise (wall_seconds falling with it) is clean.
        (artifact(1000, 1.0, wall_tps=500.0, wall_seconds=2.0),
         artifact(1000, 1.0, wall_tps=800.0, wall_seconds=1.2), 10.0, 0),
        # Chaos-recovery fields are lower-is-better: a longer leader
        # outage and a deeper migration dip both flag...
        (artifact(1000, 1.0, recovery_time_ms=0.4, migration_dip_pct=5.0),
         artifact(1000, 1.0, recovery_time_ms=0.9, migration_dip_pct=25.0),
         10.0, 2),
        # ...and a faster recovery with a shallower dip is clean.
        (artifact(1000, 1.0, recovery_time_ms=0.9, migration_dip_pct=25.0),
         artifact(1000, 1.0, recovery_time_ms=0.4, migration_dip_pct=5.0),
         10.0, 0),
        # cache_hit_rate is a rate (higher-is-better): a collapsing client
        # record cache flags...
        (artifact(1000, 1.0, cache_hit_rate=0.8),
         artifact(1000, 1.0, cache_hit_rate=0.4), 10.0, 1),
        # ...and a cache warming up is clean.
        (artifact(1000, 1.0, cache_hit_rate=0.4),
         artifact(1000, 1.0, cache_hit_rate=0.8), 10.0, 0),
        # olap_qps is a rate (higher-is-better): the hybrid suite's OLAP
        # throughput collapsing flags...
        (artifact(1000, 1.0, olap_qps=12.0),
         artifact(1000, 1.0, olap_qps=6.0), 10.0, 1),
        # ...and more analytical queries per second is clean.
        (artifact(1000, 1.0, olap_qps=6.0),
         artifact(1000, 1.0, olap_qps=12.0), 10.0, 0),
    ]
    failures = 0
    with tempfile.TemporaryDirectory() as tmp:
        for i, (base, cur, threshold, expected) in enumerate(cases):
            base_path = os.path.join(tmp, f"base{i}.json")
            cur_path = os.path.join(tmp, f"cur{i}.json")
            with open(base_path, "w", encoding="utf-8") as handle:
                json.dump(base, handle)
            with open(cur_path, "w", encoding="utf-8") as handle:
                json.dump(cur, handle)
            got = len(compare(base_path, cur_path, threshold, set(), set(),
                              out=io.StringIO()))
            status = "ok" if got == expected else "FAIL"
            if got != expected:
                failures += 1
            print(f"selftest case {i}: expected {expected} regressions, "
                  f"got {got} [{status}]")
        # Direction override flips the verdict for a throughput-like name.
        base_path = os.path.join(tmp, "base_dir.json")
        cur_path = os.path.join(tmp, "cur_dir.json")
        with open(base_path, "w", encoding="utf-8") as handle:
            json.dump(artifact(1000, 1.0), handle)
        with open(cur_path, "w", encoding="utf-8") as handle:
            json.dump(artifact(1500, 1.0), handle)
        got = len(compare(base_path, cur_path, 10.0, {"tpmc"}, set(),
                          out=io.StringIO()))
        status = "ok" if got == 1 else "FAIL"
        if got != 1:
            failures += 1
        print(f"selftest case override: expected 1 regression, got {got} "
              f"[{status}]")
    print("selftest:", "PASSED" if failures == 0 else f"{failures} FAILURES")
    return failures == 0


def main(argv):
    parser = argparse.ArgumentParser(
        description="Compare two BENCH_*.json artifacts (schema v1).")
    parser.add_argument("baseline", nargs="?", help="baseline artifact")
    parser.add_argument("current", nargs="?", help="current artifact")
    parser.add_argument("--threshold", type=float, default=10.0,
                        help="regression threshold in percent (default 10)")
    parser.add_argument("--lower-is-better", action="append", default=[],
                        metavar="METRIC",
                        help="force a metric's good direction to 'lower'")
    parser.add_argument("--higher-is-better", action="append", default=[],
                        metavar="METRIC",
                        help="force a metric's good direction to 'higher'")
    parser.add_argument("--selftest", action="store_true",
                        help="exercise the comparator itself and exit")
    args = parser.parse_args(argv)

    if args.selftest:
        return 0 if selftest() else 2
    if not args.baseline or not args.current:
        parser.error("BASELINE and CURRENT artifacts are required")

    try:
        regressions = compare(args.baseline, args.current, args.threshold,
                              set(args.lower_is_better),
                              set(args.higher_is_better))
    except (OSError, ValueError, KeyError, json.JSONDecodeError) as err:
        print(f"error: {err}", file=sys.stderr)
        return 2
    if regressions:
        print(f"\n{len(regressions)} regression(s) beyond "
              f"{args.threshold:.1f}%:")
        for line in regressions:
            print(f"  {line}")
        return 1
    print("\nno regressions")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
