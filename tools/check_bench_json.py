#!/usr/bin/env python3
"""Validate BENCH_*.json bench artifacts against schema v1.

Schema v1 (produced by obs::BenchReport, documented in
src/obs/bench_export.h and DESIGN.md "Observability"):

  { "schema_version": 1,
    "bench": "<name>",
    "config": { "<key>": "<string>", ... },
    "runs": [ { "label": "<string>",
                "derived":    { "<key>": number, ... },
                "counters":   { "<metric>": integer>=0, ... },
                "gauges":     { "<metric>": integer>=0, ... },
                "histograms": { "<metric>": {
                    "unit": "<string>", "count": int, "min": int,
                    "max": int, "mean": num, "stddev": num,
                    "p50": int, "p95": int, "p99": int }, ... },
                "nodes":      { "<node>": { "<counter>": int } } },  # optional
              ... ] }

Usage:
  check_bench_json.py FILE...            validate artifact files
  check_bench_json.py --run BIN --workdir DIR
                                         run a bench binary in DIR, then
                                         validate every BENCH_*.json there
  check_bench_json.py --selftest         exercise the validator itself

Exit code 0 when every artifact is valid, 1 otherwise. No third-party
dependencies — standard library only.
"""

import glob
import json
import math
import os
import subprocess
import sys

HISTOGRAM_KEYS = {
    "unit": str,
    "count": int,
    "min": int,
    "max": int,
    "mean": (int, float),
    "stddev": (int, float),
    "p50": int,
    "p95": int,
    "p99": int,
}


def _fail(errors, path, msg):
    errors.append(f"{path}: {msg}")


def _check_str_map(errors, path, obj, value_types, what):
    if not isinstance(obj, dict):
        _fail(errors, path, f"{what} must be an object, got {type(obj).__name__}")
        return
    for key, value in obj.items():
        if not isinstance(key, str) or not key:
            _fail(errors, path, f"{what} has a non-string/empty key: {key!r}")
        if not isinstance(value, value_types) or isinstance(value, bool):
            _fail(errors, path,
                  f"{what}[{key!r}] must be {value_types}, got {value!r}")


def _check_histogram(errors, path, name, hist):
    if not isinstance(hist, dict):
        _fail(errors, path, f"histograms[{name!r}] must be an object")
        return
    for key, expected in HISTOGRAM_KEYS.items():
        if key not in hist:
            _fail(errors, path, f"histograms[{name!r}] missing {key!r}")
            continue
        value = hist[key]
        if isinstance(value, bool) or not isinstance(value, expected):
            _fail(errors, path,
                  f"histograms[{name!r}][{key!r}] must be {expected}, "
                  f"got {value!r}")
    extra = set(hist) - set(HISTOGRAM_KEYS)
    if extra:
        _fail(errors, path, f"histograms[{name!r}] has unknown keys {sorted(extra)}")
    if isinstance(hist.get("count"), int) and hist["count"] > 0:
        lo, hi = hist.get("min"), hist.get("max")
        if isinstance(lo, int) and isinstance(hi, int) and lo > hi:
            _fail(errors, path, f"histograms[{name!r}]: min {lo} > max {hi}")
        for a, b in [("p50", "p95"), ("p95", "p99")]:
            va, vb = hist.get(a), hist.get(b)
            if isinstance(va, int) and isinstance(vb, int) and va > vb:
                _fail(errors, path,
                      f"histograms[{name!r}]: {a} {va} > {b} {vb}")


def _check_wall_clock(errors, path, derived):
    """Wall-clock derived fields: benches that report real elapsed time must
    report it coherently. wall_seconds must be a positive finite duration,
    and every wall-clock rate (wall_tps, wall_ops_per_sec, ...) must be
    finite, non-negative and accompanied by a usable wall_seconds it was
    computed from. Guards the "division guard emits inf" producer bug:
    Python's json.load happily parses the non-standard Infinity/NaN literals,
    and a rate of inf with wall_seconds == 0 used to sail through the
    plain < 0 comparison."""
    if not isinstance(derived, dict):
        return
    wall_seconds = derived.get("wall_seconds")
    wall_seconds_usable = False
    if wall_seconds is not None:
        if isinstance(wall_seconds, bool) or \
                not isinstance(wall_seconds, (int, float)):
            return  # type error already reported by _check_str_map
        if not math.isfinite(wall_seconds):
            _fail(errors, path,
                  f"derived['wall_seconds'] must be finite, "
                  f"got {wall_seconds!r}")
        elif wall_seconds <= 0:
            _fail(errors, path,
                  f"derived['wall_seconds'] must be > 0, got {wall_seconds!r}")
        else:
            wall_seconds_usable = True
    for rate_key in ("wall_tps", "wall_ops_per_sec", "wall_tpmc"):
        rate = derived.get(rate_key)
        if rate is None:
            continue
        if isinstance(rate, bool) or not isinstance(rate, (int, float)):
            continue  # type error already reported
        if not math.isfinite(rate):
            _fail(errors, path,
                  f"derived[{rate_key!r}] must be finite, got {rate!r} "
                  "(a division-by-zero guard upstream emitted a non-finite "
                  "rate; fix the producer, not the artifact)")
            continue
        if rate < 0:
            _fail(errors, path,
                  f"derived[{rate_key!r}] must be >= 0, got {rate!r}")
        if wall_seconds is None:
            _fail(errors, path,
                  f"derived[{rate_key!r}] present without 'wall_seconds'")
        elif rate > 0 and not wall_seconds_usable:
            _fail(errors, path,
                  f"derived[{rate_key!r}] is {rate!r} but "
                  f"wall_seconds is {wall_seconds!r}: a positive wall-clock "
                  "rate cannot come from a non-positive elapsed time")


def _check_recovery(errors, path, derived):
    """Chaos-recovery derived fields (bench/chaos_recovery.cc,
    docs/RECOVERY.md): recovery_time_ms is the modelled leader outage, so
    it must be a finite non-negative duration, it needs its kills_injected
    context, and the two must agree — a positive recovery time with zero
    kills (or kills with a zero recovery time) means the producer charged
    elections and fault rules from different runs. migration_dip_pct is a
    percentage of baseline throughput: finite and at most 100 (the run
    cannot lose more than all of its throughput; negative is fine — the
    migrate window may come out faster than baseline noise)."""
    if not isinstance(derived, dict):
        return

    def _num(key):
        value = derived.get(key)
        if value is None or isinstance(value, bool) or \
                not isinstance(value, (int, float)):
            return None  # absent, or type error already reported
        return value

    recovery = _num("recovery_time_ms")
    kills = _num("kills_injected")
    if recovery is not None:
        if not math.isfinite(recovery):
            _fail(errors, path,
                  f"derived['recovery_time_ms'] must be finite, "
                  f"got {recovery!r}")
        elif recovery < 0:
            _fail(errors, path,
                  f"derived['recovery_time_ms'] must be >= 0, "
                  f"got {recovery!r}")
        if kills is None:
            _fail(errors, path,
                  "derived['recovery_time_ms'] present without "
                  "'kills_injected' (the coherence check needs both)")
    if kills is not None:
        if not math.isfinite(kills) or kills < 0 or kills != int(kills):
            _fail(errors, path,
                  f"derived['kills_injected'] must be a non-negative "
                  f"integer count, got {kills!r}")
        elif recovery is not None and math.isfinite(recovery) \
                and recovery >= 0:
            if recovery > 0 and kills == 0:
                _fail(errors, path,
                      f"derived['recovery_time_ms'] is {recovery!r} but "
                      "kills_injected is 0: recovery time without an "
                      "injected kill")
            if recovery == 0 and kills > 0:
                _fail(errors, path,
                      f"derived['kills_injected'] is {kills!r} but "
                      "recovery_time_ms is 0: an injected leader kill "
                      "must cost an election")
    dip = _num("migration_dip_pct")
    if dip is not None:
        if not math.isfinite(dip):
            _fail(errors, path,
                  f"derived['migration_dip_pct'] must be finite, "
                  f"got {dip!r}")
        elif dip > 100.0:
            _fail(errors, path,
                  f"derived['migration_dip_pct'] must be <= 100, "
                  f"got {dip!r} (cannot lose more than all throughput)")


def _check_scan(errors, path, derived):
    """Vectorized-scan derived fields (bench/ablation_pushdown.cc,
    bench/hybrid_chbench.cc; DESIGN.md "Vectorized scans & aggregate
    pushdown"): a storage-side scan can never return more rows (or partial
    aggregate states) than the cells it examined, bytes_saved is a
    non-negative byte count, and the hybrid suite's OLAP rate must agree
    with its query count — a positive olap_qps with zero olap_queries (or
    queries without a rate) means the producer mixed numbers from
    different runs."""
    if not isinstance(derived, dict):
        return

    def _num(key):
        value = derived.get(key)
        if value is None or isinstance(value, bool) or \
                not isinstance(value, (int, float)):
            return None  # absent, or type error already reported
        return value

    for scanned_key, returned_key in (
            ("rows_scanned", "rows_returned"),
            ("olap_rows_scanned", "olap_rows_returned")):
        scanned = _num(scanned_key)
        returned = _num(returned_key)
        for key, value in ((scanned_key, scanned), (returned_key, returned)):
            if value is not None and \
                    (not math.isfinite(value) or value < 0):
                _fail(errors, path,
                      f"derived[{key!r}] must be a finite non-negative "
                      f"count, got {value!r}")
        if returned is not None and scanned is None:
            _fail(errors, path,
                  f"derived[{returned_key!r}] present without "
                  f"{scanned_key!r} (the coherence check needs both)")
        elif scanned is not None and returned is not None and \
                math.isfinite(scanned) and math.isfinite(returned) and \
                returned > scanned:
            _fail(errors, path,
                  f"derived[{returned_key!r}] is {returned!r} but "
                  f"{scanned_key!r} is {scanned!r}: a scan cannot return "
                  "more rows than it examined")

    for key in ("bytes_saved", "olap_bytes_saved"):
        value = _num(key)
        if value is not None and (not math.isfinite(value) or value < 0):
            _fail(errors, path,
                  f"derived[{key!r}] must be a finite non-negative byte "
                  f"count, got {value!r}")

    queries = _num("olap_queries")
    qps = _num("olap_qps")
    if qps is not None:
        if not math.isfinite(qps) or qps < 0:
            _fail(errors, path,
                  f"derived['olap_qps'] must be finite and >= 0, "
                  f"got {qps!r}")
        elif queries is None:
            _fail(errors, path,
                  "derived['olap_qps'] present without 'olap_queries' "
                  "(the coherence check needs both)")
        else:
            if qps > 0 and queries == 0:
                _fail(errors, path,
                      f"derived['olap_qps'] is {qps!r} but olap_queries "
                      "is 0: a rate without any queries")
            if queries > 0 and qps == 0:
                _fail(errors, path,
                      f"derived['olap_queries'] is {queries!r} but "
                      "olap_qps is 0: queries ran but the rate says none "
                      "did")


def _check_cache(errors, path, run):
    """Client record cache / one-sided read coherence
    (bench/ablation_client_cache.cc, DESIGN.md "One-sided reads & client
    caching"): derived cache_hit_rate must be a probability AND must equal
    hits/(hits+misses) recomputed from the run's own store.cache.* counters
    — a producer that derives the rate from one run and counters from
    another (or clamps a >1 ratio) is lying about its cache. A run that
    declares one_sided_capable = 0 (kernel-TCP network model) must report
    zero store.onesided.reads: one-sided READs are an RDMA-only mechanism."""
    derived = run.get("derived")
    counters = run.get("counters")
    if not isinstance(derived, dict):
        return
    counters = counters if isinstance(counters, dict) else {}

    hit_rate = derived.get("cache_hit_rate")
    if hit_rate is not None and not isinstance(hit_rate, bool) and \
            isinstance(hit_rate, (int, float)):
        if not math.isfinite(hit_rate) or hit_rate < 0 or hit_rate > 1:
            _fail(errors, path,
                  f"derived['cache_hit_rate'] must be within [0, 1], "
                  f"got {hit_rate!r}")
        else:
            hits = counters.get("store.cache.hits")
            misses = counters.get("store.cache.misses")
            if not isinstance(hits, int) or not isinstance(misses, int):
                _fail(errors, path,
                      "derived['cache_hit_rate'] present without the "
                      "store.cache.hits/store.cache.misses counters it "
                      "must be computed from")
            elif hits + misses == 0:
                _fail(errors, path,
                      "derived['cache_hit_rate'] present but the run "
                      "recorded no cache probes (hits + misses == 0)")
            elif abs(hit_rate - hits / (hits + misses)) > 1e-6:
                _fail(errors, path,
                      f"derived['cache_hit_rate'] is {hit_rate!r} but "
                      f"store.cache.hits/(hits+misses) is "
                      f"{hits / (hits + misses)!r}")

    capable = derived.get("one_sided_capable")
    if capable is not None and not isinstance(capable, bool) and \
            isinstance(capable, (int, float)):
        if capable not in (0, 1):
            _fail(errors, path,
                  f"derived['one_sided_capable'] must be 0 or 1, "
                  f"got {capable!r}")
        elif capable == 0:
            reads = counters.get("store.onesided.reads")
            if isinstance(reads, int) and reads > 0:
                _fail(errors, path,
                      f"run is not one-sided capable (kernel TCP) yet "
                      f"store.onesided.reads is {reads}")


EXEC_NODE_KEYS = {"tasks_completed", "steals", "yields", "parks", "unparks",
                  "busy_ns", "queue_peak"}


def _check_exec_nodes(errors, path, run):
    """Executor runs: per-core `exec<i>` node rows must agree with the
    derived executor_threads field — one row per executor thread, numbered
    densely from exec0, each carrying the full scheduler counter set
    (exec::PerCoreRows; docs/RUNTIME.md "Scheduler observability")."""
    nodes = run.get("nodes")
    derived = run.get("derived")
    if not isinstance(nodes, dict) or not isinstance(derived, dict):
        nodes = nodes if isinstance(nodes, dict) else {}
        derived = derived if isinstance(derived, dict) else {}
    exec_rows = {name: counters for name, counters in nodes.items()
                 if name.startswith("exec") and name[4:].isdigit()}
    threads = derived.get("executor_threads")
    if threads is None and not exec_rows:
        return
    if threads is None:
        _fail(errors, path,
              f"exec node rows {sorted(exec_rows)} present without "
              "derived['executor_threads']")
        return
    if isinstance(threads, bool) or not isinstance(threads, (int, float)):
        return  # type error already reported by _check_str_map
    if int(threads) != len(exec_rows):
        _fail(errors, path,
              f"derived['executor_threads'] is {threads} but the run has "
              f"{len(exec_rows)} exec<i> node rows")
    for i in range(len(exec_rows)):
        if f"exec{i}" not in exec_rows:
            _fail(errors, path,
                  f"exec node rows must be numbered densely from exec0; "
                  f"missing 'exec{i}' among {sorted(exec_rows)}")
    for name, counters in sorted(exec_rows.items()):
        if not isinstance(counters, dict):
            continue  # shape error already reported
        missing = EXEC_NODE_KEYS - set(counters)
        if missing:
            _fail(errors, path,
                  f"nodes[{name!r}] missing scheduler counters "
                  f"{sorted(missing)}")


def _check_run(errors, path, index, run):
    rpath = f"{path} runs[{index}]"
    if not isinstance(run, dict):
        _fail(errors, rpath, "must be an object")
        return
    label = run.get("label")
    if not isinstance(label, str) or not label:
        _fail(errors, rpath, f"label must be a non-empty string, got {label!r}")
    for section in ("derived", "counters", "gauges", "histograms"):
        if section not in run:
            _fail(errors, rpath, f"missing {section!r}")
    _check_str_map(errors, rpath, run.get("derived", {}), (int, float), "derived")
    _check_wall_clock(errors, rpath, run.get("derived", {}))
    _check_recovery(errors, rpath, run.get("derived", {}))
    _check_scan(errors, rpath, run.get("derived", {}))
    _check_cache(errors, rpath, run)
    _check_str_map(errors, rpath, run.get("counters", {}), int, "counters")
    _check_str_map(errors, rpath, run.get("gauges", {}), int, "gauges")
    hists = run.get("histograms", {})
    if not isinstance(hists, dict):
        _fail(errors, rpath, "histograms must be an object")
    else:
        for name, hist in hists.items():
            _check_histogram(errors, rpath, name, hist)
    if "nodes" in run:
        nodes = run["nodes"]
        if not isinstance(nodes, dict):
            _fail(errors, rpath, "nodes must be an object")
        else:
            for node, counters in nodes.items():
                _check_str_map(errors, rpath, counters, int,
                               f"nodes[{node!r}]")
    _check_exec_nodes(errors, rpath, run)
    known = {"label", "derived", "counters", "gauges", "histograms", "nodes"}
    extra = set(run) - known
    if extra:
        _fail(errors, rpath, f"unknown keys {sorted(extra)}")


def validate(path, doc):
    """Returns a list of error strings; empty means valid."""
    errors = []
    if not isinstance(doc, dict):
        _fail(errors, path, "top level must be an object")
        return errors
    if doc.get("schema_version") != 1:
        _fail(errors, path,
              f"schema_version must be 1, got {doc.get('schema_version')!r}")
    bench = doc.get("bench")
    if not isinstance(bench, str) or not bench:
        _fail(errors, path, f"bench must be a non-empty string, got {bench!r}")
    _check_str_map(errors, path, doc.get("config", {}), str, "config")
    runs = doc.get("runs")
    if not isinstance(runs, list) or not runs:
        _fail(errors, path, "runs must be a non-empty array")
        return errors
    labels = set()
    for i, run in enumerate(runs):
        _check_run(errors, path, i, run)
        if isinstance(run, dict) and isinstance(run.get("label"), str):
            if run["label"] in labels:
                _fail(errors, path, f"duplicate run label {run['label']!r}")
            labels.add(run["label"])
    known = {"schema_version", "bench", "config", "runs"}
    extra = set(doc) - known
    if extra:
        _fail(errors, path, f"unknown top-level keys {sorted(extra)}")
    return errors


def validate_file(path):
    try:
        with open(path, encoding="utf-8") as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        return [f"{path}: {e}"]
    return validate(path, doc)


def selftest():
    good = {
        "schema_version": 1,
        "bench": "t",
        "config": {"mix": "x"},
        "runs": [{
            "label": "r",
            "derived": {"tpmc": 1.5, "wall_seconds": 0.25, "wall_tps": 88.0},
            "counters": {"tx.committed": 3},
            "gauges": {"g": 0},
            "histograms": {"h": {"unit": "ns", "count": 1, "min": 2,
                                 "max": 3, "mean": 2.5, "stddev": 0.5,
                                 "p50": 2, "p95": 3, "p99": 3}},
            "nodes": {"sn0": {"gets": 1}},
        }],
    }
    assert validate("good", good) == [], validate("good", good)

    import copy
    good_exec = copy.deepcopy(good)
    good_exec["runs"][0]["derived"]["executor_threads"] = 2.0
    for i in range(2):
        good_exec["runs"][0]["nodes"][f"exec{i}"] = {
            k: 1 for k in EXEC_NODE_KEYS}
    assert validate("good_exec", good_exec) == [], \
        validate("good_exec", good_exec)

    # Coherent chaos-recovery fields: two kills with a positive recovery
    # time, no kills with zero, and a (possibly negative) bounded dip.
    good_recovery = copy.deepcopy(good)
    good_recovery["runs"][0]["derived"].update(
        recovery_time_ms=0.4, kills_injected=2, elections=2)
    good_recovery["runs"].append(copy.deepcopy(good["runs"][0]))
    good_recovery["runs"][1]["label"] = "baseline"
    good_recovery["runs"][1]["derived"].update(
        recovery_time_ms=0.0, kills_injected=0, migration_dip_pct=-3.5)
    assert validate("good_recovery", good_recovery) == [], \
        validate("good_recovery", good_recovery)

    # Coherent client-cache fields: the derived hit rate matches the
    # counters it came from, and a non-capable (kernel TCP) run reports
    # zero one-sided reads.
    good_cache = copy.deepcopy(good)
    good_cache["runs"][0]["derived"].update(cache_hit_rate=0.75,
                                            one_sided_capable=1)
    good_cache["runs"][0]["counters"].update({
        "store.cache.hits": 3, "store.cache.misses": 1,
        "store.onesided.reads": 2})
    good_cache["runs"].append(copy.deepcopy(good["runs"][0]))
    good_cache["runs"][1]["label"] = "eth"
    good_cache["runs"][1]["derived"].update(one_sided_capable=0)
    good_cache["runs"][1]["counters"].update({"store.onesided.reads": 0})
    assert validate("good_cache", good_cache) == [], \
        validate("good_cache", good_cache)

    # Coherent vectorized-scan fields: a hybrid run whose OLAP rate agrees
    # with its query count and whose storage nodes returned no more rows
    # than they examined, next to a TPC-C-only run with no OLAP at all.
    good_scan = copy.deepcopy(good)
    good_scan["runs"][0]["derived"].update(
        rows_scanned=8000, rows_returned=2, bytes_saved=900000,
        olap_queries=30, olap_qps=12.5, olap_rows_scanned=8000,
        olap_rows_returned=2, olap_bytes_saved=900000)
    good_scan["runs"].append(copy.deepcopy(good["runs"][0]))
    good_scan["runs"][1]["label"] = "tpcc_only"
    good_scan["runs"][1]["derived"].update(olap_queries=0, olap_qps=0.0)
    assert validate("good_scan", good_scan) == [], \
        validate("good_scan", good_scan)
    bad_cases = [
        ("schema_version", lambda d: d.update(schema_version=2)),
        ("missing bench", lambda d: d.pop("bench")),
        ("empty runs", lambda d: d.update(runs=[])),
        ("counter float", lambda d: d["runs"][0]["counters"].update(x=1.5)),
        ("hist missing p99",
         lambda d: d["runs"][0]["histograms"]["h"].pop("p99")),
        ("hist p50>p95",
         lambda d: d["runs"][0]["histograms"]["h"].update(p50=9)),
        ("dup label", lambda d: d["runs"].append(copy.deepcopy(d["runs"][0]))),
        ("unknown run key", lambda d: d["runs"][0].update(bogus=1)),
        ("node counter str",
         lambda d: d["runs"][0]["nodes"]["sn0"].update(gets="no")),
        ("wall_seconds zero",
         lambda d: d["runs"][0]["derived"].update(wall_seconds=0)),
        ("wall_seconds negative",
         lambda d: d["runs"][0]["derived"].update(wall_seconds=-1.5)),
        ("wall_tps negative",
         lambda d: d["runs"][0]["derived"].update(wall_tps=-2.0)),
        ("wall_tps positive with wall_seconds zero",
         lambda d: d["runs"][0]["derived"].update(wall_seconds=0,
                                                  wall_tps=88.0)),
        ("wall_tps infinite",
         lambda d: d["runs"][0]["derived"].update(wall_tps=math.inf)),
        ("wall_seconds NaN",
         lambda d: d["runs"][0]["derived"].update(wall_seconds=math.nan)),
        ("wall_tpmc infinite with wall_seconds zero",
         lambda d: d["runs"][0]["derived"].update(wall_seconds=0.0,
                                                  wall_tpmc=math.inf)),
        ("wall rate without wall_seconds",
         lambda d: (d["runs"][0]["derived"].pop("wall_seconds"),
                    d["runs"][0]["derived"].update(wall_ops_per_sec=10.0))),
        ("exec rows without executor_threads",
         lambda d: d["runs"][0]["nodes"].update(
             exec0={k: 1 for k in EXEC_NODE_KEYS})),
        ("executor_threads != exec row count",
         lambda d: (d["runs"][0]["derived"].update(executor_threads=2.0),
                    d["runs"][0]["nodes"].update(
                        exec0={k: 1 for k in EXEC_NODE_KEYS}))),
        ("exec rows not densely numbered",
         lambda d: (d["runs"][0]["derived"].update(executor_threads=1.0),
                    d["runs"][0]["nodes"].update(
                        exec1={k: 1 for k in EXEC_NODE_KEYS}))),
        ("exec row missing scheduler counter",
         lambda d: (d["runs"][0]["derived"].update(executor_threads=1.0),
                    d["runs"][0]["nodes"].update(exec0={"steals": 1}))),
        ("recovery_time_ms without kills_injected",
         lambda d: d["runs"][0]["derived"].update(recovery_time_ms=0.4)),
        ("recovery_time_ms negative",
         lambda d: d["runs"][0]["derived"].update(recovery_time_ms=-0.1,
                                                  kills_injected=1)),
        ("recovery_time_ms infinite",
         lambda d: d["runs"][0]["derived"].update(recovery_time_ms=math.inf,
                                                  kills_injected=1)),
        ("recovery time without a kill",
         lambda d: d["runs"][0]["derived"].update(recovery_time_ms=0.4,
                                                  kills_injected=0)),
        ("kill without recovery time",
         lambda d: d["runs"][0]["derived"].update(recovery_time_ms=0.0,
                                                  kills_injected=2)),
        ("kills_injected fractional",
         lambda d: d["runs"][0]["derived"].update(recovery_time_ms=0.4,
                                                  kills_injected=1.5)),
        ("migration_dip_pct above 100",
         lambda d: d["runs"][0]["derived"].update(migration_dip_pct=120.0)),
        ("migration_dip_pct NaN",
         lambda d: d["runs"][0]["derived"].update(
             migration_dip_pct=math.nan)),
        ("cache_hit_rate above 1",
         lambda d: (d["runs"][0]["derived"].update(cache_hit_rate=1.2),
                    d["runs"][0]["counters"].update({
                        "store.cache.hits": 6,
                        "store.cache.misses": 1}))),
        ("cache_hit_rate mismatches counters",
         lambda d: (d["runs"][0]["derived"].update(cache_hit_rate=0.5),
                    d["runs"][0]["counters"].update({
                        "store.cache.hits": 3,
                        "store.cache.misses": 1}))),
        ("cache_hit_rate without cache counters",
         lambda d: d["runs"][0]["derived"].update(cache_hit_rate=0.5)),
        ("cache_hit_rate with zero probes",
         lambda d: (d["runs"][0]["derived"].update(cache_hit_rate=0.0),
                    d["runs"][0]["counters"].update({
                        "store.cache.hits": 0,
                        "store.cache.misses": 0}))),
        ("one-sided reads on a non-capable network",
         lambda d: (d["runs"][0]["derived"].update(one_sided_capable=0),
                    d["runs"][0]["counters"].update({
                        "store.onesided.reads": 4}))),
        ("one_sided_capable out of range",
         lambda d: d["runs"][0]["derived"].update(one_sided_capable=2)),
        ("rows_returned exceeds rows_scanned",
         lambda d: d["runs"][0]["derived"].update(rows_scanned=10,
                                                  rows_returned=11)),
        ("rows_returned without rows_scanned",
         lambda d: d["runs"][0]["derived"].update(rows_returned=5)),
        ("olap rows_returned exceeds rows_scanned",
         lambda d: d["runs"][0]["derived"].update(olap_rows_scanned=10,
                                                  olap_rows_returned=11)),
        ("rows_scanned negative",
         lambda d: d["runs"][0]["derived"].update(rows_scanned=-1,
                                                  rows_returned=0)),
        ("bytes_saved negative",
         lambda d: d["runs"][0]["derived"].update(bytes_saved=-64)),
        ("olap_qps positive with zero queries",
         lambda d: d["runs"][0]["derived"].update(olap_queries=0,
                                                  olap_qps=4.0)),
        ("olap queries with zero qps",
         lambda d: d["runs"][0]["derived"].update(olap_queries=30,
                                                  olap_qps=0.0)),
        ("olap_qps without olap_queries",
         lambda d: d["runs"][0]["derived"].update(olap_qps=4.0)),
        ("olap_qps infinite",
         lambda d: d["runs"][0]["derived"].update(olap_queries=30,
                                                  olap_qps=math.inf)),
    ]
    for name, mutate in bad_cases:
        doc = copy.deepcopy(good)
        mutate(doc)
        assert validate(name, doc), f"selftest: {name!r} not rejected"
    print("selftest ok:", 5 + len(bad_cases), "cases")
    return 0


def main(argv):
    if "--selftest" in argv:
        return selftest()

    paths = []
    if "--run" in argv:
        i = argv.index("--run")
        binary = argv[i + 1]
        workdir = "."
        if "--workdir" in argv:
            workdir = argv[argv.index("--workdir") + 1]
        os.makedirs(workdir, exist_ok=True)
        for stale in glob.glob(os.path.join(workdir, "BENCH_*.json")):
            os.remove(stale)
        result = subprocess.run([os.path.abspath(binary)], cwd=workdir,
                                stdout=subprocess.PIPE,
                                stderr=subprocess.STDOUT)
        sys.stdout.buffer.write(result.stdout)
        if result.returncode != 0:
            print(f"error: {binary} exited {result.returncode}")
            return 1
        paths = sorted(glob.glob(os.path.join(workdir, "BENCH_*.json")))
        if not paths:
            print(f"error: {binary} wrote no BENCH_*.json in {workdir}")
            return 1
    else:
        paths = [a for a in argv[1:] if not a.startswith("--")]
        if not paths:
            print(__doc__)
            return 1

    failed = False
    for path in paths:
        errors = validate_file(path)
        if errors:
            failed = True
            for error in errors:
                print("error:", error)
        else:
            print(f"ok: {path}")
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
