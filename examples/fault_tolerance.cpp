// Fault-tolerance example (paper §4.4): kill a storage node mid-workload
// and a processing node with in-flight transactions, and show that no
// committed data is lost and no uncommitted data survives.
#include <cstdio>

#include "common/serde.h"
#include "db/tell_db.h"

using namespace tell;

namespace {
schema::Tuple Row(int64_t id, double v) {
  schema::Tuple t(2);
  t.Set(0, id);
  t.Set(1, v);
  return t;
}
}  // namespace

int main() {
  db::TellDbOptions options;
  options.num_processing_nodes = 3;
  options.num_storage_nodes = 3;
  options.replication_factor = 2;  // synchronous replication (§4.4.2)
  db::TellDb db(options);

  if (!db.CreateTable("t",
                      schema::SchemaBuilder()
                          .AddInt64("id")
                          .AddDouble("v")
                          .SetPrimaryKey({"id"})
                          .Build(),
                      {})
           .ok()) {
    return 1;
  }

  auto session = db.OpenSession(0, 0);
  auto table = *db.GetTable(0, "t");

  // Commit 100 rows.
  {
    tx::Transaction txn(session.get());
    if (!txn.Begin().ok()) return 1;
    for (int64_t id = 1; id <= 100; ++id) {
      if (!txn.Insert(table, Row(id, id * 1.0), false).ok()) return 1;
    }
    if (!txn.Commit().ok()) return 1;
  }

  // --- Storage node failure ----------------------------------------------
  std::printf("killing storage node 1...\n");
  if (!db.KillStorageNode(1).ok()) return 1;
  std::printf("management node failed over; replication level restored: %s\n",
              db.management()->ReplicationLevelRestored() ? "yes" : "no");

  // Every committed row survives and the system accepts writes.
  {
    tx::Transaction txn(session.get());
    if (!txn.Begin().ok()) return 1;
    int found = 0;
    for (int64_t id = 1; id <= 100; ++id) {
      auto row = txn.ReadByKey(table, {schema::Value(id)});
      if (row.ok() && row->has_value()) ++found;
    }
    std::printf("rows readable after SN failure: %d/100\n", found);
    auto rid = txn.LookupPrimary(table, {schema::Value(int64_t{1})});
    if (rid.ok() && rid->has_value()) {
      (void)txn.Update(table, **rid, Row(1, 42.0));
    }
    if (!txn.Commit().ok()) return 1;
    if (found != 100) return 1;
  }

  // --- Processing node failure -------------------------------------------
  // PN 1 starts a transaction and "crashes" before committing.
  auto doomed_session = db.OpenSession(1, 1);
  auto doomed_table = *db.GetTable(1, "t");
  auto doomed = std::make_unique<tx::Transaction>(doomed_session.get());
  if (!doomed->Begin().ok()) return 1;
  (void)doomed->Insert(doomed_table, Row(999, -1.0), false);
  // Crash-stop: the PN never reaches Try-Commit. (Leak the transaction
  // object's state by simply not committing; recovery handles the tid.)
  std::printf("\nkilling processing node 1 with an in-flight transaction...\n");
  auto stats = db.KillProcessingNode(1);
  if (!stats.ok()) return 1;
  std::printf("recovery: %zu rolled back, %zu versions removed, %zu "
              "abandoned tids completed\n",
              stats->transactions_rolled_back, stats->versions_removed,
              stats->transactions_abandoned);
  doomed.reset();  // the crashed PN's memory disappears with it

  // The uncommitted insert is invisible; committed data intact.
  {
    auto check_session = db.OpenSession(2, 2);
    auto check_table = *db.GetTable(2, "t");
    tx::Transaction txn(check_session.get());
    if (!txn.Begin().ok()) return 1;
    auto ghost = txn.ReadByKey(check_table, {schema::Value(int64_t{999})});
    auto updated = txn.ReadByKey(check_table, {schema::Value(int64_t{1})});
    std::printf("uncommitted row visible: %s; committed update intact: %s\n",
                (ghost.ok() && ghost->has_value()) ? "YES (BUG)" : "no",
                (updated.ok() && updated->has_value() &&
                 (*updated)->GetDouble(1) == 42.0)
                    ? "yes"
                    : "NO (BUG)");
    (void)txn.Commit();
    if (ghost.ok() && ghost->has_value()) return 1;
  }

  std::printf("\nfault tolerance OK\n");
  return 0;
}
