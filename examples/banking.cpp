// Banking example: concurrent money transfers under snapshot isolation.
//
// Demonstrates the property the paper's concurrency control exists for:
// many workers hammering overlapping accounts from different processing
// nodes, write-write conflicts detected by LL/SC, aborted transfers retried
// — and the total balance across all accounts is EXACTLY preserved.
#include <atomic>
#include <cstdio>
#include <thread>
#include <vector>

#include "common/random.h"
#include "db/tell_db.h"

using namespace tell;

namespace {
constexpr int kAccounts = 64;
constexpr double kInitialBalance = 1000.0;
constexpr int kTransfersPerWorker = 150;
constexpr int kWorkers = 4;

schema::Tuple Account(int64_t id, double balance) {
  schema::Tuple t(2);
  t.Set(0, id);
  t.Set(1, balance);
  return t;
}
}  // namespace

int main() {
  db::TellDbOptions options;
  options.num_processing_nodes = 2;
  options.num_storage_nodes = 3;
  db::TellDb db(options);

  Status st = db.CreateTable("accounts",
                             schema::SchemaBuilder()
                                 .AddInt64("id")
                                 .AddDouble("balance")
                                 .SetPrimaryKey({"id"})
                                 .Build(),
                             {});
  if (!st.ok()) return 1;

  // Seed the accounts.
  {
    auto session = db.OpenSession(0, 0);
    auto table = *db.GetTable(0, "accounts");
    tx::Transaction txn(session.get());
    if (!txn.Begin().ok()) return 1;
    for (int64_t id = 1; id <= kAccounts; ++id) {
      if (!txn.Insert(table, Account(id, kInitialBalance), false).ok()) {
        return 1;
      }
    }
    if (!txn.Commit().ok()) return 1;
  }

  // Concurrent transfers from both processing nodes.
  std::atomic<int> committed{0};
  std::atomic<int> conflicts{0};
  std::vector<std::thread> workers;
  for (int w = 0; w < kWorkers; ++w) {
    workers.emplace_back([&, w] {
      auto session = db.OpenSession(w % 2, static_cast<uint32_t>(w));
      auto table = *db.GetTable(w % 2, "accounts");
      Random rng(1000 + static_cast<uint64_t>(w));
      int done = 0;
      while (done < kTransfersPerWorker) {
        int64_t from = rng.UniformInt(1, kAccounts);
        int64_t to = rng.UniformInt(1, kAccounts);
        if (from == to) continue;
        double amount = static_cast<double>(rng.UniformInt(1, 50));

        tx::Transaction txn(session.get());
        if (!txn.Begin().ok()) return;
        auto src = txn.ReadByKeyWithRid(table, {schema::Value(from)});
        auto dst = txn.ReadByKeyWithRid(table, {schema::Value(to)});
        if (!src.ok() || !dst.ok() || !src->has_value() || !dst->has_value()) {
          (void)txn.Abort();
          continue;
        }
        double src_balance = (*src)->second.GetDouble(1);
        if (src_balance < amount) {
          (void)txn.Abort();  // insufficient funds — business abort
          ++done;
          continue;
        }
        Status s1 = txn.Update(table, (*src)->first,
                               Account(from, src_balance - amount));
        Status s2 = s1.ok() ? txn.Update(table, (*dst)->first,
                                         Account(to, (*dst)->second.GetDouble(1) +
                                                         amount))
                            : s1;
        Status commit = (s1.ok() && s2.ok()) ? txn.Commit()
                                             : Status::Aborted("write conflict");
        if (commit.ok()) {
          ++done;
          committed.fetch_add(1);
        } else {
          conflicts.fetch_add(1);  // retried (snapshot isolation aborted us)
          if (txn.state() == tx::TxnState::kRunning) (void)txn.Abort();
        }
      }
    });
  }
  for (auto& worker : workers) worker.join();

  // Invariant check: money is conserved.
  auto session = db.OpenSession(0, 100);
  auto total = db.AutoCommitSql(session.get(),
                                "SELECT SUM(balance), COUNT(*) FROM accounts");
  if (!total.ok()) return 1;
  double sum = std::get<double>(total->rows[0].at(0));
  double expected = kAccounts * kInitialBalance;
  std::printf("transfers committed: %d, conflicts retried: %d\n",
              committed.load(), conflicts.load());
  std::printf("total balance: %.2f (expected %.2f) — %s\n", sum, expected,
              sum == expected ? "money conserved" : "BROKEN");
  return sum == expected ? 0 : 1;
}
