// Mixed-workload example (paper §2.1/§5.2): the shared-data architecture
// lets some processing nodes run OLTP while OTHERS run analytical queries
// on the SAME live data — no ETL, no replica lag, strict snapshot reads.
//
// PN 0 continuously ingests orders; PN 1 concurrently runs aggregate
// queries. Every analytical query sees a transactionally consistent
// snapshot of live production data.
#include <atomic>
#include <cstdio>
#include <thread>

#include "common/random.h"
#include "db/tell_db.h"

using namespace tell;

int main() {
  db::TellDbOptions options;
  options.num_processing_nodes = 2;  // PN 0 = OLTP, PN 1 = OLAP
  options.num_storage_nodes = 3;
  db::TellDb db(options);

  if (!db.ExecuteDdl("CREATE TABLE orders (id INT, region VARCHAR(8), "
                     "amount DOUBLE, items INT, PRIMARY KEY (id))")
           .ok()) {
    return 1;
  }
  if (!db.ExecuteDdl("CREATE INDEX by_region ON orders (region)").ok()) {
    return 1;
  }

  std::atomic<bool> stop{false};
  std::atomic<int64_t> ingested{0};

  // OLTP: PN 0 ingests orders in small transactions.
  std::thread oltp([&] {
    auto session = db.OpenSession(0, 0);
    auto table = *db.GetTable(0, "orders");
    Random rng(11);
    const char* regions[] = {"emea", "amer", "apac"};
    int64_t next_id = 1;
    while (!stop.load()) {
      tx::Transaction txn(session.get());
      if (!txn.Begin().ok()) return;
      for (int i = 0; i < 10; ++i) {
        schema::Tuple order(4);
        order.Set(0, next_id++);
        order.Set(1, std::string(regions[rng.Uniform(3)]));
        order.Set(2, static_cast<double>(rng.UniformInt(10, 500)));
        order.Set(3, rng.UniformInt(1, 8));
        if (!txn.Insert(table, order, false).ok()) {
          (void)txn.Abort();
          return;
        }
      }
      if (txn.Commit().ok()) ingested.fetch_add(10);
    }
  });

  // OLAP: PN 1 runs aggregates on the same shared data.
  std::thread olap([&] {
    auto session = db.OpenSession(1, 1);
    for (int round = 0; round < 5; ++round) {
      std::this_thread::sleep_for(std::chrono::milliseconds(50));
      auto result = db.AutoCommitSql(
          session.get(),
          "SELECT region, COUNT(*), SUM(amount), AVG(items) FROM orders "
          "GROUP BY region ORDER BY region");
      if (!result.ok()) {
        std::fprintf(stderr, "olap: %s\n", result.status().ToString().c_str());
        return;
      }
      std::printf("--- live analytics round %d (%lld orders ingested) ---\n",
                  round + 1, static_cast<long long>(ingested.load()));
      std::printf("%s", result->ToString().c_str());
    }
  });

  olap.join();
  stop.store(true);
  oltp.join();

  // Final consistency check: COUNT(*) equals the number of committed
  // inserts — the OLAP node never saw a torn batch.
  auto session = db.OpenSession(1, 2);
  auto count = db.AutoCommitSql(session.get(), "SELECT COUNT(*) FROM orders");
  if (!count.ok()) return 1;
  int64_t counted = std::get<int64_t>(count->rows[0].at(0));
  std::printf("\nfinal: %lld rows counted, %lld committed — %s\n",
              static_cast<long long>(counted),
              static_cast<long long>(ingested.load()),
              counted == ingested.load() ? "consistent" : "INCONSISTENT");
  return counted == ingested.load() ? 0 : 1;
}
