// TPC-C demo: load a small TPC-C population and run the standard mix for a
// few virtual seconds, printing the metrics the paper's evaluation reports.
//
//   $ ./tpcc_demo [warehouses] [processing_nodes]
#include <cstdio>
#include <cstdlib>

#include "workload/tpcc/tpcc_driver.h"
#include "workload/tpcc/tpcc_loader.h"

using namespace tell;
using namespace tell::tpcc;

int main(int argc, char** argv) {
  uint32_t warehouses = argc > 1 ? static_cast<uint32_t>(atoi(argv[1])) : 4;
  uint32_t pns = argc > 2 ? static_cast<uint32_t>(atoi(argv[2])) : 2;

  TpccScale scale;
  scale.warehouses = warehouses;
  scale.customers_per_district = 30;
  scale.items = 200;
  scale.initial_orders_per_district = 15;

  db::TellDbOptions options;
  options.num_processing_nodes = pns;
  options.num_storage_nodes = 3;
  options.replication_factor = 1;
  db::TellDb db(options);

  std::printf("creating TPC-C tables and loading %u warehouses...\n",
              warehouses);
  if (!CreateTpccTables(&db).ok()) return 1;
  if (!LoadTpcc(&db, scale).ok()) return 1;

  TellBackend backend(&db);
  DriverOptions driver;
  driver.scale = scale;
  driver.mix = Mix::kWriteIntensive;
  driver.num_workers = pns * 4;
  driver.duration_virtual_ms = 300;
  std::printf("running the standard mix on %u PNs (%u terminals)...\n", pns,
              driver.num_workers);
  auto result = RunTpcc(&backend, driver);
  if (!result.ok()) {
    std::fprintf(stderr, "run failed: %s\n",
                 result.status().ToString().c_str());
    return 1;
  }
  std::printf("\n  TpmC (new-orders/min):  %.0f\n", result->tpmc);
  std::printf("  committed txns:         %llu\n",
              static_cast<unsigned long long>(result->committed));
  std::printf("  abort rate:             %.2f%%\n",
              result->abort_rate * 100);
  std::printf("  response time:          %.3f ms ± %.3f (p99 %.3f)\n",
              result->mean_response_ms, result->std_response_ms,
              result->p99_response_ms);
  std::printf("  storage requests/txn:   %.1f\n",
              static_cast<double>(result->merged.storage_requests) /
                  static_cast<double>(result->committed + result->aborted));
  return 0;
}
