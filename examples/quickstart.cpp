// Quickstart: boot a shared-data cluster, create a table, and run ACID
// transactions through both the SQL front-end and the native API.
//
//   $ ./quickstart
//
// The whole cluster — storage nodes, commit manager, management node,
// processing nodes — runs inside this process; the network between the
// layers is modelled (see src/sim/network_model.h).
#include <cstdio>

#include "db/tell_db.h"

using namespace tell;

int main() {
  // 1. Boot a cluster: 2 processing nodes, 3 storage nodes, RF2.
  db::TellDbOptions options;
  options.num_processing_nodes = 2;
  options.num_storage_nodes = 3;
  options.replication_factor = 2;
  db::TellDb db(options);

  // 2. DDL through SQL.
  Status st = db.ExecuteDdl(
      "CREATE TABLE accounts (id INT, owner VARCHAR(32), balance DOUBLE, "
      "PRIMARY KEY (id))");
  if (!st.ok()) {
    std::fprintf(stderr, "create table: %s\n", st.ToString().c_str());
    return 1;
  }
  st = db.ExecuteDdl("CREATE INDEX by_owner ON accounts (owner)");
  if (!st.ok()) return 1;

  // 3. A session is a worker's handle onto one processing node.
  auto session = db.OpenSession(/*pn_id=*/0, /*worker_id=*/0);

  // 4. Auto-commit SQL.
  for (const char* sql : {
           "INSERT INTO accounts VALUES (1, 'alice', 100.0)",
           "INSERT INTO accounts VALUES (2, 'bob', 50.0)",
           "INSERT INTO accounts VALUES (3, 'alice', 25.0)",
       }) {
    auto result = db.AutoCommitSql(session.get(), sql);
    if (!result.ok()) {
      std::fprintf(stderr, "%s: %s\n", sql, result.status().ToString().c_str());
      return 1;
    }
  }

  // 5. A multi-statement ACID transaction: transfer 30 from alice to bob.
  {
    tx::Transaction txn(session.get());
    if (!txn.Begin().ok()) return 1;
    auto debit = db.ExecuteSql(
        &txn, 0, "UPDATE accounts SET balance = balance - 30.0 WHERE id = 1");
    auto credit = db.ExecuteSql(
        &txn, 0, "UPDATE accounts SET balance = balance + 30.0 WHERE id = 2");
    if (!debit.ok() || !credit.ok()) {
      (void)txn.Abort();  // all-or-nothing
      return 1;
    }
    Status commit = txn.Commit();
    std::printf("transfer committed: %s (tid %llu)\n",
                commit.ok() ? "yes" : commit.ToString().c_str(),
                static_cast<unsigned long long>(txn.tid()));
  }

  // 6. Query — point lookup, secondary index, aggregate.
  for (const char* sql : {
           "SELECT owner, balance FROM accounts WHERE id = 2",
           "SELECT id, balance FROM accounts WHERE owner = 'alice' "
           "ORDER BY id",
           "SELECT COUNT(*), SUM(balance) FROM accounts",
       }) {
    auto result = db.AutoCommitSql(session.get(), sql);
    if (!result.ok()) return 1;
    std::printf("\n> %s\n%s", sql, result->ToString().c_str());
  }

  // 7. The same data through the native (pre-compiled) API — the hot path
  //    the TPC-C driver uses, skipping SQL parsing entirely.
  {
    auto table = db.GetTable(0, "accounts");
    if (!table.ok()) return 1;
    tx::Transaction txn(session.get());
    if (!txn.Begin().ok()) return 1;
    auto row = txn.ReadByKey(*table, {schema::Value(int64_t{1})});
    if (row.ok() && row->has_value()) {
      std::printf("\nnative read: alice's balance = %.2f\n",
                  (*row)->GetDouble(2));
    }
    (void)txn.Commit();
  }

  // 8. Elasticity: add a processing node at runtime — no data moves.
  uint32_t new_pn = db.AddProcessingNode();
  auto elastic_session = db.OpenSession(new_pn, 99);
  auto count = db.AutoCommitSql(elastic_session.get(),
                                "SELECT COUNT(*) FROM accounts");
  if (count.ok()) {
    std::printf("\nnew PN %u sees %s rows immediately after joining\n",
                new_pn, schema::ValueToString(count->rows[0].at(0)).c_str());
  }
  std::printf("\nquickstart OK\n");
  return 0;
}
