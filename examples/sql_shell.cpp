// Interactive SQL shell over a Tell cluster. Each line is one statement,
// run in its own transaction; `\q` quits.
//
//   $ ./sql_shell
//   tell> CREATE TABLE t (id INT, v DOUBLE, PRIMARY KEY (id))
//   tell> INSERT INTO t VALUES (1, 3.5)
//   tell> SELECT * FROM t
#include <cstdio>
#include <iostream>
#include <string>

#include "db/tell_db.h"

using namespace tell;

int main() {
  db::TellDbOptions options;
  options.num_processing_nodes = 1;
  options.num_storage_nodes = 3;
  db::TellDb db(options);
  auto session = db.OpenSession(0, 0);

  std::printf("Tell SQL shell — one statement per line, \\q to quit.\n");
  std::string line;
  while (true) {
    std::printf("tell> ");
    std::fflush(stdout);
    if (!std::getline(std::cin, line)) break;
    if (line.empty()) continue;
    if (line == "\\q" || line == "quit" || line == "exit") break;
    auto result = db.AutoCommitSql(session.get(), line);
    if (!result.ok()) {
      std::printf("error: %s\n", result.status().ToString().c_str());
      continue;
    }
    std::printf("%s", result->ToString().c_str());
  }
  std::printf("\nbye\n");
  return 0;
}
