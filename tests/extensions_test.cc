// Tests for the paper's future-work items implemented as extensions:
// serializable snapshot isolation (§4.1) and operator push-down (§5.2).
#include <gtest/gtest.h>

#include <thread>

#include "db/tell_db.h"
#include "tests/test_util.h"

namespace tell {
namespace {

using schema::Tuple;
using schema::Value;

class SerializableSiTest : public ::testing::Test {
 protected:
  SerializableSiTest() {
    db::TellDbOptions options;
    options.num_processing_nodes = 2;
    options.network = sim::NetworkModel::Instant();
    db_ = std::make_unique<db::TellDb>(options);
    EXPECT_OK(db_->CreateTable("t",
                               schema::SchemaBuilder()
                                   .AddInt64("id")
                                   .AddInt64("v")
                                   .SetPrimaryKey({"id"})
                                   .Build(),
                               {}));
    table_ = *db_->GetTable(0, "t");
    session_ = db_->OpenSession(0, 0);
    rid_x_ = Insert(1, 10);
    rid_y_ = Insert(2, 10);
  }

  Tuple Row(int64_t id, int64_t v) {
    Tuple t(2);
    t.Set(0, id);
    t.Set(1, v);
    return t;
  }

  uint64_t Insert(int64_t id, int64_t v) {
    tx::Transaction txn(session_.get());
    EXPECT_TRUE(txn.Begin().ok());
    auto rid = txn.Insert(table_, Row(id, v));
    EXPECT_TRUE(rid.ok());
    EXPECT_TRUE(txn.Commit().ok());
    return *rid;
  }

  int64_t ReadValue(uint64_t rid) {
    tx::Transaction txn(session_.get());
    EXPECT_TRUE(txn.Begin().ok());
    auto row = txn.Read(table_, rid);
    EXPECT_TRUE(row.ok() && row->has_value());
    int64_t v = (*row)->GetInt(1);
    EXPECT_TRUE(txn.Commit().ok());
    return v;
  }

  std::unique_ptr<db::TellDb> db_;
  tx::TableHandle* table_;
  std::unique_ptr<tx::Session> session_;
  uint64_t rid_x_, rid_y_;
};

TEST_F(SerializableSiTest, PlainSiAllowsWriteSkew) {
  // The classic anomaly (paper §4.1: "some anomalies (e.g., write skew)
  // prevent SI to guarantee serializability"): T1 reads x, writes y;
  // T2 reads y, writes x. Under plain SI both commit.
  auto session2 = db_->OpenSession(1, 1);
  auto table2 = *db_->GetTable(1, "t");
  tx::Transaction t1(session_.get());
  tx::Transaction t2(session2.get());
  ASSERT_OK(t1.Begin());
  ASSERT_OK(t2.Begin());
  ASSERT_OK(t1.Read(table_, rid_x_).status());
  ASSERT_OK(t1.Update(table_, rid_y_, Row(2, -5)));
  ASSERT_OK(t2.Read(table2, rid_y_).status());
  ASSERT_OK(t2.Update(table2, rid_x_, Row(1, -5)));
  EXPECT_OK(t1.Commit());
  EXPECT_OK(t2.Commit());  // write skew: disjoint write sets, both commit
  EXPECT_EQ(ReadValue(rid_x_), -5);
  EXPECT_EQ(ReadValue(rid_y_), -5);
}

TEST_F(SerializableSiTest, SerializableModePreventsWriteSkew) {
  auto session2 = db_->OpenSession(1, 1);
  auto table2 = *db_->GetTable(1, "t");
  tx::TxnOptions serializable;
  serializable.serializable = true;
  tx::Transaction t1(session_.get(), serializable);
  tx::Transaction t2(session2.get(), serializable);
  ASSERT_OK(t1.Begin());
  ASSERT_OK(t2.Begin());
  ASSERT_OK(t1.Read(table_, rid_x_).status());
  ASSERT_OK(t1.Update(table_, rid_y_, Row(2, -5)));
  ASSERT_OK(t2.Read(table2, rid_y_).status());
  ASSERT_OK(t2.Update(table2, rid_x_, Row(1, -5)));
  Status s1 = t1.Commit();
  Status s2 = t2.Commit();
  // At most one side survives read validation.
  EXPECT_FALSE(s1.ok() && s2.ok()) << "write skew slipped through";
  // The invariant x + y >= 0 (with both starting at 10 and writes to -5)
  // holds under any serial order: only one of x/y may be -5.
  EXPECT_GE(ReadValue(rid_x_) + ReadValue(rid_y_), 0);
}

TEST_F(SerializableSiTest, SerializableCommitsWhenNoInterference) {
  tx::TxnOptions serializable;
  serializable.serializable = true;
  tx::Transaction txn(session_.get(), serializable);
  ASSERT_OK(txn.Begin());
  ASSERT_OK(txn.Read(table_, rid_x_).status());
  ASSERT_OK(txn.Update(table_, rid_y_, Row(2, 99)));
  EXPECT_OK(txn.Commit());
  EXPECT_EQ(ReadValue(rid_y_), 99);
}

TEST_F(SerializableSiTest, ReadOnlySerializableNeverValidates) {
  tx::TxnOptions serializable;
  serializable.serializable = true;
  tx::Transaction txn(session_.get(), serializable);
  ASSERT_OK(txn.Begin());
  ASSERT_OK(txn.Read(table_, rid_x_).status());
  // Read-only SI transactions are always serializable; commit is free.
  uint64_t requests = session_->metrics()->storage_requests;
  EXPECT_OK(txn.Commit());
  EXPECT_EQ(session_->metrics()->storage_requests, requests);
}

TEST_F(SerializableSiTest, BankInvariantHoldsUnderConcurrency) {
  // x + y must stay >= 0; each transaction withdraws from one account only
  // if the SUM allows it (the textbook write-skew scenario), concurrently.
  constexpr int kWorkers = 4;
  std::vector<std::thread> threads;
  for (int w = 0; w < kWorkers; ++w) {
    threads.emplace_back([&, w] {
      auto session = db_->OpenSession(w % 2, 10 + w);
      auto table = *db_->GetTable(w % 2, "t");
      tx::TxnOptions serializable;
      serializable.serializable = true;
      for (int i = 0; i < 30; ++i) {
        tx::Transaction txn(session.get(), serializable);
        ASSERT_TRUE(txn.Begin().ok());
        auto x = txn.Read(table, rid_x_);
        auto y = txn.Read(table, rid_y_);
        ASSERT_TRUE(x.ok() && y.ok() && x->has_value() && y->has_value());
        int64_t sum = (*x)->GetInt(1) + (*y)->GetInt(1);
        if (sum < 3) continue;  // auto-aborts via destructor
        // Withdraw 3 from one of the two accounts.
        uint64_t target = (w % 2 == 0) ? rid_x_ : rid_y_;
        const Tuple& row = (w % 2 == 0) ? **x : **y;
        Tuple updated = row;
        updated.Set(1, updated.GetInt(1) - 3);
        if (!txn.Update(table, target, updated).ok()) continue;
        (void)txn.Commit();  // aborts count as retries
      }
    });
  }
  for (auto& thread : threads) thread.join();
  EXPECT_GE(ReadValue(rid_x_) + ReadValue(rid_y_), 0)
      << "serializable mode must preserve the sum invariant";
}

// ---------------------------------------------------------------------------
// Operator push-down

class PushdownTest : public ::testing::Test {
 protected:
  PushdownTest() {
    db::TellDbOptions options;
    options.operator_pushdown = true;
    options.network = sim::NetworkModel::Instant();
    db_ = std::make_unique<db::TellDb>(options);
    EXPECT_OK(db_->ExecuteDdl(
        "CREATE TABLE e (id INT, class INT, payload VARCHAR(64), "
        "PRIMARY KEY (id))"));
    session_ = db_->OpenSession(0, 0);
    auto table = *db_->GetTable(0, "e");
    tx::Transaction txn(session_.get());
    EXPECT_TRUE(txn.Begin().ok());
    for (int64_t i = 0; i < 200; ++i) {
      Tuple row(3);
      row.Set(0, i);
      row.Set(1, i % 10);
      row.Set(2, std::string(64, 'x'));
      EXPECT_TRUE(txn.Insert(table, row, false).ok());
    }
    EXPECT_TRUE(txn.Commit().ok());
  }
  std::unique_ptr<db::TellDb> db_;
  std::unique_ptr<tx::Session> session_;
};

TEST_F(PushdownTest, FilteredScanReturnsMatchesOnly) {
  auto table = *db_->GetTable(0, "e");
  tx::Transaction txn(session_.get());
  ASSERT_OK(txn.Begin());
  ASSERT_OK_AND_ASSIGN(auto rows,
                       txn.FilteredScan(table, [](const Tuple& t) {
                         return t.GetInt(1) == 3;
                       }));
  EXPECT_EQ(rows.size(), 20u);
  for (const auto& [rid, tuple] : rows) {
    EXPECT_EQ(tuple.GetInt(1), 3);
  }
  ASSERT_OK(txn.Commit());
}

TEST_F(PushdownTest, SqlFullScanUsesPushdown) {
  auto result = db_->AutoCommitSql(
      session_.get(), "SELECT COUNT(*) FROM e WHERE class = 7");
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(std::get<int64_t>(result->rows[0].at(0)), 20);
}

TEST_F(PushdownTest, PushdownSendsFewerBytesThanFullScan) {
  db::TellDbOptions plain_options;
  plain_options.operator_pushdown = false;
  plain_options.network = sim::NetworkModel::Instant();
  db::TellDb plain(plain_options);
  ASSERT_OK(plain.ExecuteDdl(
      "CREATE TABLE e (id INT, class INT, payload VARCHAR(64), "
      "PRIMARY KEY (id))"));
  auto plain_session = plain.OpenSession(0, 0);
  {
    auto table = *plain.GetTable(0, "e");
    tx::Transaction txn(plain_session.get());
    ASSERT_OK(txn.Begin());
    for (int64_t i = 0; i < 200; ++i) {
      Tuple row(3);
      row.Set(0, i);
      row.Set(1, i % 10);
      row.Set(2, std::string(64, 'x'));
      ASSERT_OK(txn.Insert(table, row, false).status());
    }
    ASSERT_OK(txn.Commit());
  }
  auto measure = [](db::TellDb* db, tx::Session* session) {
    uint64_t before = session->metrics()->bytes_received;
    auto result = db->AutoCommitSql(
        session, "SELECT COUNT(*) FROM e WHERE class = 7");
    EXPECT_TRUE(result.ok());
    return session->metrics()->bytes_received - before;
  };
  uint64_t with = measure(db_.get(), session_.get());
  uint64_t without = measure(&plain, plain_session.get());
  EXPECT_LT(with * 3, without)
      << "push-down should cut transferred bytes by ~selectivity";
}

TEST_F(PushdownTest, OwnWritesVisibleInFilteredScan) {
  auto table = *db_->GetTable(0, "e");
  tx::Transaction txn(session_.get());
  ASSERT_OK(txn.Begin());
  Tuple row(3);
  row.Set(0, int64_t{999});
  row.Set(1, int64_t{3});
  row.Set(2, std::string("mine"));
  ASSERT_OK(txn.Insert(table, row).status());
  ASSERT_OK_AND_ASSIGN(auto rows,
                       txn.FilteredScan(table, [](const Tuple& t) {
                         return t.GetInt(1) == 3;
                       }));
  EXPECT_EQ(rows.size(), 21u);  // 20 committed + own pending insert
  ASSERT_OK(txn.Abort());
}

TEST_F(PushdownTest, UncommittedRowsOfOthersExcluded) {
  auto table = *db_->GetTable(0, "e");
  auto session2 = db_->OpenSession(0, 1);
  tx::Transaction writer(session2.get());
  ASSERT_OK(writer.Begin());
  Tuple row(3);
  row.Set(0, int64_t{777});
  row.Set(1, int64_t{3});
  row.Set(2, std::string("dirty"));
  ASSERT_OK(writer.Insert(table, row).status());

  tx::Transaction reader(session_.get());
  ASSERT_OK(reader.Begin());
  ASSERT_OK_AND_ASSIGN(auto rows,
                       reader.FilteredScan(table, [](const Tuple& t) {
                         return t.GetInt(1) == 3;
                       }));
  EXPECT_EQ(rows.size(), 20u) << "dirty read through the pushed-down scan";
  ASSERT_OK(reader.Commit());
  ASSERT_OK(writer.Abort());
}

}  // namespace
}  // namespace tell
