// Async request-pipeline tests (ClientOptions::pipelining).
//
// Four layers:
//   1. Future/flush mechanics: coalescing windows (one message per storage
//      node), implicit flush on Await, resolution independent of await
//      order, ready futures when pipelining is off.
//   2. Virtual-time accounting: a flush across distinct nodes charges the
//      slowest message, not the sum (store.pipeline.overlap_saved_ns).
//   3. Fault-injection interaction: injection and accounting observe the
//      same coalesced message — a dropped message charges no response
//      bytes and counts once in fault.requests_seen; logical ops still
//      retry individually through their futures, including the ambiguous
//      lost-response resolution for conditional writes.
//   4. The randomized chaos suite re-run with the pipeline enabled: the
//      commit path then uses coalesced index inserts, and every invariant
//      must still hold under drops, ambiguous responses and a node kill.

#include <gtest/gtest.h>

#include <iterator>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "common/random.h"
#include "common/serde.h"
#include "db/tell_db.h"
#include "schema/versioned_record.h"
#include "sim/fault_injector.h"
#include "store/storage_client.h"
#include "tests/test_util.h"

namespace tell::store {
namespace {

using sim::FaultInjector;
using sim::FaultOpClass;
using sim::FaultPlan;
using sim::FaultRule;

class PipelineTest : public ::testing::Test {
 protected:
  PipelineTest() {
    ClusterOptions options;
    options.num_storage_nodes = 4;
    cluster_ = std::make_unique<Cluster>(options);
    table_ = *cluster_->CreateTable("t");
  }

  std::unique_ptr<StorageClient> MakeClient(const ClientOptions& options) {
    return std::make_unique<StorageClient>(cluster_.get(), nullptr, options,
                                           &clock_, &metrics_);
  }

  /// First `count` keys mastered by pairwise-distinct storage nodes.
  std::vector<std::string> KeysOnDistinctNodes(size_t count) {
    std::vector<std::string> keys;
    std::set<uint32_t> used;
    for (int i = 0; keys.size() < count && i < 1000; ++i) {
      std::string key = "key" + std::to_string(i);
      uint32_t master = *cluster_->MasterOf(table_, key);
      if (used.insert(master).second) keys.push_back(key);
    }
    EXPECT_EQ(keys.size(), count);
    return keys;
  }

  /// First `count` keys mastered by one single storage node.
  std::vector<std::string> KeysOnOneNode(size_t count) {
    std::map<uint32_t, std::vector<std::string>> by_master;
    for (int i = 0; i < 1000; ++i) {
      std::string key = "key" + std::to_string(i);
      uint32_t master = *cluster_->MasterOf(table_, key);
      auto& bucket = by_master[master];
      bucket.push_back(key);
      if (bucket.size() == count) return bucket;
    }
    ADD_FAILURE() << "could not find " << count << " co-located keys";
    return {};
  }

  std::unique_ptr<Cluster> cluster_;
  sim::VirtualClock clock_;
  sim::WorkerMetrics metrics_;
  TableId table_;
};

TEST_F(PipelineTest, AsyncWithoutPipeliningReturnsReadyFuture) {
  ClientOptions options;  // pipelining off (default)
  auto client = MakeClient(options);
  ASSERT_OK(client->Put(table_, "k", "v").status());
  uint64_t requests = metrics_.storage_requests;
  Future<VersionedCell> future = client->AsyncGet(table_, "k");
  // Executed immediately: nothing pending, cost already charged.
  EXPECT_EQ(client->PendingOps(), 0u);
  EXPECT_TRUE(future.ready());
  EXPECT_EQ(metrics_.storage_requests, requests + 1);
  ASSERT_OK_AND_ASSIGN(VersionedCell cell, future.Await());
  EXPECT_EQ(cell.value, "v");
}

TEST_F(PipelineTest, FlushCoalescesIntoOneMessagePerNode) {
  ClientOptions options;
  options.pipelining = true;
  options.cpu.per_op_ns = 0;
  auto client = MakeClient(options);

  std::vector<std::string> keys;
  std::set<uint32_t> masters;
  for (int i = 0; i < 16; ++i) {
    std::string key = "key" + std::to_string(i);
    ASSERT_OK(client->Put(table_, key, "v" + std::to_string(i)).status());
    keys.push_back(key);
    masters.insert(*cluster_->MasterOf(table_, key));
  }
  ASSERT_GT(masters.size(), 1u);

  std::vector<Future<VersionedCell>> futures;
  for (const std::string& key : keys) {
    futures.push_back(client->AsyncGet(table_, key));
  }
  EXPECT_EQ(client->PendingOps(), keys.size());
  for (const auto& future : futures) EXPECT_FALSE(future.ready());

  uint64_t requests = metrics_.storage_requests;
  client->Flush();
  // One coalesced message per distinct master node, not one per op.
  EXPECT_EQ(metrics_.storage_requests - requests, masters.size());
  EXPECT_EQ(metrics_.pipeline_flushes, 1u);
  EXPECT_EQ(metrics_.pipeline_batch_size.count(), masters.size());
  EXPECT_EQ(metrics_.pipeline_in_flight.count(), 1u);
  EXPECT_EQ(client->PendingOps(), 0u);
  for (size_t i = 0; i < keys.size(); ++i) {
    ASSERT_TRUE(futures[i].ready());
    ASSERT_OK_AND_ASSIGN(VersionedCell cell, futures[i].Await());
    EXPECT_EQ(cell.value, "v" + std::to_string(i));
  }
}

TEST_F(PipelineTest, FlushChargesSlowestMessageNotSum) {
  ClientOptions sync_options;
  sync_options.cpu.per_op_ns = 0;
  ClientOptions pipe_options = sync_options;
  pipe_options.pipelining = true;

  std::vector<std::string> keys = KeysOnDistinctNodes(4);
  {
    auto seeder = MakeClient(sync_options);
    for (const std::string& key : keys) {
      ASSERT_OK(seeder->Put(table_, key, "v").status());
    }
  }

  sim::VirtualClock sync_clock, pipe_clock;
  sim::WorkerMetrics sync_metrics, pipe_metrics;
  StorageClient sync_client(cluster_.get(), nullptr, sync_options, &sync_clock,
                            &sync_metrics);
  StorageClient pipe_client(cluster_.get(), nullptr, pipe_options, &pipe_clock,
                            &pipe_metrics);

  for (const std::string& key : keys) {
    ASSERT_OK(sync_client.Get(table_, key).status());
  }
  std::vector<Future<VersionedCell>> futures;
  for (const std::string& key : keys) {
    futures.push_back(pipe_client.AsyncGet(table_, key));
  }
  pipe_client.Flush();
  for (auto& future : futures) ASSERT_OK(future.Await().status());

  // 4 messages to 4 distinct nodes overlap: the pipelined cost is the
  // slowest single message, far below 4 serial round trips.
  EXPECT_LT(pipe_clock.now_ns(), sync_clock.now_ns() / 2);
  EXPECT_GT(pipe_metrics.pipeline_overlap_saved_ns, 0u);
  EXPECT_EQ(pipe_clock.now_ns() + pipe_metrics.pipeline_overlap_saved_ns,
            sync_clock.now_ns());
}

TEST_F(PipelineTest, AwaitFlushesImplicitlyAndOrderDoesNotMatter) {
  ClientOptions options;
  options.pipelining = true;
  auto client = MakeClient(options);
  for (int i = 0; i < 3; ++i) {
    ASSERT_OK(client
                  ->Put(table_, "key" + std::to_string(i),
                        "v" + std::to_string(i))
                  .status());
  }

  std::vector<Future<VersionedCell>> futures;
  for (int i = 0; i < 3; ++i) {
    futures.push_back(client->AsyncGet(table_, "key" + std::to_string(i)));
  }
  EXPECT_EQ(client->PendingOps(), 3u);

  // Awaiting the LAST future flushes the whole window; the earlier futures
  // become ready without further storage requests.
  ASSERT_OK_AND_ASSIGN(VersionedCell last, futures[2].Await());
  EXPECT_EQ(last.value, "v2");
  EXPECT_EQ(client->PendingOps(), 0u);
  EXPECT_EQ(metrics_.pipeline_flushes, 1u);
  uint64_t requests = metrics_.storage_requests;
  ASSERT_TRUE(futures[0].ready());
  ASSERT_TRUE(futures[1].ready());
  ASSERT_OK_AND_ASSIGN(VersionedCell first, futures[0].Await());
  ASSERT_OK_AND_ASSIGN(VersionedCell second, futures[1].Await());
  EXPECT_EQ(first.value, "v0");
  EXPECT_EQ(second.value, "v1");
  EXPECT_EQ(metrics_.storage_requests, requests);
}

TEST_F(PipelineTest, DroppedCoalescedMessageRetriesThroughFutures) {
  FaultInjector injector(FaultPlan{
      .seed = 11,
      .rules = {FaultRule{.kind = FaultRule::Kind::kDropRequest,
                          .op = FaultOpClass::kGet,
                          .probability = 1.0,
                          .max_fires = 1}}});
  injector.Disarm();

  ClientOptions options;
  options.pipelining = true;
  options.fault_injector = &injector;
  auto client = MakeClient(options);
  std::vector<std::string> keys = KeysOnOneNode(3);
  for (const std::string& key : keys) {
    ASSERT_OK(client->Put(table_, key, "v").status());
  }

  injector.Arm();
  std::vector<Future<VersionedCell>> futures;
  for (const std::string& key : keys) {
    futures.push_back(client->AsyncGet(table_, key));
  }
  client->Flush();
  injector.Disarm();

  // The one coalesced message was dropped; every logical op rode through
  // its own retry and still resolved successfully.
  EXPECT_EQ(injector.stats().dropped_requests, 1u);
  for (auto& future : futures) {
    ASSERT_OK_AND_ASSIGN(VersionedCell cell, future.Await());
    EXPECT_EQ(cell.value, "v");
  }
  EXPECT_GE(metrics_.storage_retries, 3u);
  EXPECT_EQ(metrics_.storage_retries_exhausted, 0u);
}

TEST_F(PipelineTest, AmbiguousConditionalPutOnCoalescedMessageIsResolved) {
  FaultInjector injector(FaultPlan{
      .seed = 12,
      .rules = {FaultRule{.kind = FaultRule::Kind::kDropResponse,
                          .op = FaultOpClass::kConditionalPut,
                          .probability = 1.0,
                          .max_fires = 1}}});
  injector.Disarm();

  ClientOptions options;
  options.pipelining = true;
  options.fault_injector = &injector;
  auto client = MakeClient(options);
  std::vector<std::string> keys = KeysOnOneNode(2);
  ASSERT_OK_AND_ASSIGN(uint64_t stamp, client->Put(table_, keys[0], "v1"));
  ASSERT_OK(client->Put(table_, keys[1], "other").status());

  // The coalesced message carries a conditional put AND a read; the rule
  // matches the message because ANY contained op matches, and the lost
  // response makes both ops ambiguous.
  injector.Arm();
  Future<uint64_t> write =
      client->AsyncConditionalPut(table_, keys[0], stamp, "v2");
  Future<VersionedCell> read = client->AsyncGet(table_, keys[1]);
  client->Flush();
  injector.Disarm();

  EXPECT_EQ(injector.stats().dropped_responses, 1u);
  // The write applied before the response was lost: the resolver's re-read
  // recognizes our value and settles the future with the new stamp instead
  // of blindly re-issuing (which would double-apply under LL/SC).
  ASSERT_OK_AND_ASSIGN(uint64_t new_stamp, write.Await());
  ASSERT_OK_AND_ASSIGN(VersionedCell after, client->Get(table_, keys[0]));
  EXPECT_EQ(after.value, "v2");
  EXPECT_EQ(after.stamp, new_stamp);
  EXPECT_GE(metrics_.ambiguous_resolved, 1u);
  ASSERT_OK_AND_ASSIGN(VersionedCell cell, read.Await());
  EXPECT_EQ(cell.value, "other");
}

// Regression for the batched-path accounting bug this PR fixes: network
// accounting and fault injection must observe the SAME message. A dropped
// coalesced request charges its request bytes (it was sent) but zero
// response bytes, and the injector sees one message — not one probe per
// logical op (which would both skew rule windows and charge response bytes
// for data that never arrived).
TEST_F(PipelineTest, DroppedMessageChargesNoResponseBytes) {
  FaultInjector injector(FaultPlan{
      .seed = 13,
      .rules = {FaultRule{.kind = FaultRule::Kind::kDropRequest,
                          .op = FaultOpClass::kGet,
                          .probability = 1.0,
                          .max_fires = 1}}});
  injector.Disarm();

  ClientOptions options;
  options.pipelining = true;
  options.retry.max_attempts = 1;  // fail fast: no re-issue to muddy bytes
  options.fault_injector = &injector;
  auto client = MakeClient(options);
  std::vector<std::string> keys = KeysOnOneNode(3);
  for (const std::string& key : keys) {
    ASSERT_OK(client->Put(table_, key, std::string(512, 'x')).status());
  }

  injector.Arm();
  std::vector<Future<VersionedCell>> futures;
  for (const std::string& key : keys) {
    futures.push_back(client->AsyncGet(table_, key));
  }
  uint64_t sent = metrics_.bytes_sent;
  uint64_t received = metrics_.bytes_received;
  uint64_t seen = injector.stats().requests_seen;
  client->Flush();
  injector.Disarm();

  // One message seen and dropped; request bytes charged, response bytes not.
  EXPECT_EQ(injector.stats().requests_seen - seen, 1u);
  EXPECT_EQ(injector.stats().dropped_requests, 1u);
  EXPECT_GT(metrics_.bytes_sent, sent);
  EXPECT_EQ(metrics_.bytes_received, received);
  for (auto& future : futures) {
    EXPECT_TRUE(future.Await().status().IsUnavailable());
  }
  EXPECT_EQ(metrics_.storage_retries_exhausted, 3u);
}

}  // namespace
}  // namespace tell::store

// ---------------------------------------------------------------------------
// Chaos suite with the pipeline enabled
// ---------------------------------------------------------------------------

namespace tell::tx {
namespace {

using schema::Tuple;
using schema::Value;
using sim::FaultInjector;
using sim::FaultPlan;

// The randomized chaos workload from fault_injection_test.cc, re-run with
// TellDbOptions::pipelining on: commits then install index entries through
// coalesced BatchInsert messages, and index lookups descend through the
// pipelined BatchLookup — all under drops, ambiguous responses, latency
// spikes and a node kill.
class PipelinedChaosSuite : public ::testing::TestWithParam<uint64_t> {};

TEST_P(PipelinedChaosSuite, InvariantsHoldWithPipelineEnabled) {
  const uint64_t seed = GetParam();
  constexpr uint32_t kStorageNodes = 4;
  sim::FaultInjector injector(
      FaultPlan::Randomized(seed, kStorageNodes, /*allow_node_kill=*/true));
  injector.Disarm();  // setup runs fault-free

  db::TellDbOptions options;
  options.num_storage_nodes = kStorageNodes;
  options.replication_factor = 2;  // a node kill must be survivable
  options.network = sim::NetworkModel::Instant();
  options.fault_injector = &injector;
  options.pipelining = true;
  db::TellDb db(options);

  ASSERT_OK(db.CreateTable("accounts",
                           schema::SchemaBuilder()
                               .AddInt64("id")
                               .AddDouble("balance")
                               .SetPrimaryKey({"id"})
                               .Build(),
                           {}));
  schema::IndexDef by_tag;
  by_tag.name = "by_tag";
  by_tag.key_columns = {1};
  by_tag.unique = true;
  ASSERT_OK(db.CreateTable("orders",
                           schema::SchemaBuilder()
                               .AddInt64("id")
                               .AddString("tag")
                               .SetPrimaryKey({"id"})
                               .Build(),
                           {by_tag}));
  auto session = db.OpenSession(0, 0);
  auto accounts = *db.GetTable(0, "accounts");
  auto orders = *db.GetTable(0, "orders");

  constexpr int kAccounts = 8;
  constexpr double kInitialBalance = 1000.0;
  std::set<commitmgr::Tid> committed;
  std::set<commitmgr::Tid> aborted;
  std::vector<uint64_t> account_rids;
  {
    Transaction txn(session.get());
    ASSERT_OK(txn.Begin());
    for (int64_t i = 0; i < kAccounts; ++i) {
      Tuple t(2);
      t.Set(0, i);
      t.Set(1, kInitialBalance);
      ASSERT_OK_AND_ASSIGN(uint64_t rid, txn.Insert(accounts, t, false));
      account_rids.push_back(rid);
    }
    ASSERT_OK(txn.Commit());
    committed.insert(txn.tid());
  }

  std::vector<double> expected(kAccounts, kInitialBalance);
  std::map<std::string, uint64_t> live_tags;  // tag -> rid
  int64_t next_order_id = 0;

  injector.Arm();
  Random rng(seed ^ 0xABCD1234u);
  constexpr int kTxns = 250;
  constexpr int kTagPool = 12;
  for (int i = 0; i < kTxns; ++i) {
    Transaction txn(session.get());
    if (!txn.Begin().ok()) continue;
    const uint64_t kind = rng.Uniform(100);
    bool ops_ok = true;
    if (kind < 55 || (kind >= 80 && live_tags.empty())) {
      // Transfer between two distinct accounts.
      const size_t a = rng.Uniform(kAccounts);
      size_t b = rng.Uniform(kAccounts - 1);
      if (b >= a) ++b;
      const double amount = 1.0 + static_cast<double>(rng.Uniform(50));
      double bal_a = 0, bal_b = 0;
      auto ra = txn.Read(accounts, account_rids[a]);
      auto rb = txn.Read(accounts, account_rids[b]);
      ops_ok = ra.ok() && rb.ok() && ra->has_value() && rb->has_value();
      if (ops_ok) {
        bal_a = (*ra)->GetDouble(1);
        bal_b = (*rb)->GetDouble(1);
        Tuple ta(2), tb(2);
        ta.Set(0, static_cast<int64_t>(a));
        ta.Set(1, bal_a - amount);
        tb.Set(0, static_cast<int64_t>(b));
        tb.Set(1, bal_b + amount);
        ops_ok = txn.Update(accounts, account_rids[a], ta).ok() &&
                 txn.Update(accounts, account_rids[b], tb).ok();
      }
      if (!ops_ok) {
        (void)txn.Abort();
        aborted.insert(txn.tid());
        continue;
      }
      if (txn.Commit().ok()) {
        committed.insert(txn.tid());
        expected[a] -= amount;
        expected[b] += amount;
      } else {
        aborted.insert(txn.tid());
      }
    } else if (kind < 80) {
      // Insert an order under a pooled tag; the unique index arbitrates —
      // with pipelining the primary + unique entries go through one
      // coalesced BatchInsert at commit.
      const std::string tag = "tag" + std::to_string(rng.Uniform(kTagPool));
      Tuple t(2);
      t.Set(0, next_order_id++);
      t.Set(1, tag);
      auto rid = txn.Insert(orders, t, /*check_unique=*/false);
      if (!rid.ok()) {
        (void)txn.Abort();
        aborted.insert(txn.tid());
        continue;
      }
      if (txn.Commit().ok()) {
        committed.insert(txn.tid());
        ASSERT_EQ(live_tags.count(tag), 0u)
            << "duplicate tag committed: " << tag;
        live_tags[tag] = *rid;
      } else {
        aborted.insert(txn.tid());
      }
    } else {
      // Delete a live order by tag.
      size_t pick = rng.Uniform(live_tags.size());
      auto it = live_tags.begin();
      std::advance(it, static_cast<long>(pick));
      const std::string tag = it->first;
      const uint64_t rid = it->second;
      if (!txn.Delete(orders, rid).ok()) {
        (void)txn.Abort();
        aborted.insert(txn.tid());
        continue;
      }
      if (txn.Commit().ok()) {
        committed.insert(txn.tid());
        live_tags.erase(tag);
      } else {
        aborted.insert(txn.tid());
      }
    }
  }
  injector.Disarm();
  (void)db.management()->DetectAndRecover();

  const sim::FaultStats stats = injector.stats();
  EXPECT_GT(stats.requests_seen, 0u);
  EXPECT_GT(stats.injected, 0u) << "plan for seed " << seed << " never fired";
  if (stats.dropped_requests + stats.dropped_responses > 0) {
    EXPECT_GT(session->metrics()->storage_retries, 0u);
  }
  // The pipeline actually engaged (coalesced index inserts at commit).
  EXPECT_GT(session->metrics()->pipeline_flushes, 0u);

  // Invariant 1: committed balances match the model exactly and the total
  // is conserved.
  {
    Transaction txn(session.get());
    ASSERT_OK(txn.Begin());
    double total = 0;
    for (int i = 0; i < kAccounts; ++i) {
      ASSERT_OK_AND_ASSIGN(
          auto row, txn.Read(accounts, account_rids[static_cast<size_t>(i)]));
      ASSERT_TRUE(row.has_value());
      EXPECT_NEAR(row->GetDouble(1), expected[static_cast<size_t>(i)], 1e-6)
          << "account " << i;
      total += row->GetDouble(1);
    }
    EXPECT_NEAR(total, kAccounts * kInitialBalance, 1e-6);

    // Invariant 2: every pooled tag resolves to exactly the modelled order.
    for (int k = 0; k < kTagPool; ++k) {
      const std::string tag = "tag" + std::to_string(k);
      ASSERT_OK_AND_ASSIGN(auto rids,
                           txn.LookupIndex(orders, 0, {Value(tag)}));
      auto it = live_tags.find(tag);
      if (it == live_tags.end()) {
        EXPECT_TRUE(rids.empty()) << "stale index entry under " << tag;
      } else {
        ASSERT_EQ(rids.size(), 1u) << "tag " << tag;
        EXPECT_EQ(rids[0], it->second);
      }
    }
    ASSERT_OK(txn.Commit());
    committed.insert(txn.tid());
  }

  // Invariant 3: no dangling uncommitted versions beyond what rollback
  // explicitly abandoned.
  uint64_t dangling = 0;
  for (const auto* meta : {accounts->meta, orders->meta}) {
    ASSERT_OK_AND_ASSIGN(auto cells,
                         db.cluster()->Scan(meta->data_table, "", "", 0));
    for (const auto& cell : cells) {
      if (cell.key.size() != 8) continue;  // meta cells (rid counter)
      ASSERT_OK_AND_ASSIGN(auto record,
                           schema::VersionedRecord::Deserialize(cell.value));
      for (const auto& version : record.versions()) {
        if (committed.count(version.version)) continue;
        EXPECT_TRUE(aborted.count(version.version))
            << "version from unknown tid " << version.version;
        ++dangling;
      }
    }
  }
  EXPECT_LE(dangling, session->metrics()->rollback_unresolved)
      << "aborted versions in the store beyond the ones rollback reported "
         "unresolved";
}

INSTANTIATE_TEST_SUITE_P(Seeds, PipelinedChaosSuite,
                         ::testing::Values(uint64_t{0x5EED0001},
                                           uint64_t{0x5EED0002},
                                           uint64_t{0x5EED0003}));

}  // namespace
}  // namespace tell::tx
