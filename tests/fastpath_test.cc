// Phase-switching single-partition fast path (DESIGN.md "Phase-switching
// fast path"): coordinator unit behavior (tid leases, epoch invalidation,
// completion queue), cross-partition fallback enforcement — the fallback
// must fire BEFORE any fast-path write becomes visible — fence races
// between the fast and MVCC phases (the tsan targets of this suite), and
// the fast-path-on/off determinism guarantee on TPC-C.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <iomanip>
#include <sstream>
#include <thread>
#include <vector>

#include "db/tell_db.h"
#include "tests/test_util.h"
#include "tx/fast_path.h"
#include "workload/tpcc/tpcc_loader.h"
#include "workload/tpcc/tpcc_transactions.h"

namespace tell::tx {
namespace {

using schema::Tuple;
using schema::Value;

// ---------------------------------------------------------------------------
// Fixture: a TellDb with the fast path on and one partitioned table
// ("counters", partitioned by column 0, secondary index on "tag") plus one
// unpartitioned reference table ("ref").

class FastPathTest : public ::testing::Test {
 protected:
  FastPathTest() {
    db::TellDbOptions options;
    options.network = sim::NetworkModel::Instant();
    options.fastpath.enabled = true;
    options.fastpath.lanes = 8;
    options.fastpath.tid_lease_size = 4;  // small: exercises refills
    db_ = std::make_unique<db::TellDb>(options);

    schema::IndexDef by_tag;
    by_tag.name = "by_tag";
    by_tag.key_columns = {2};
    by_tag.unique = false;
    EXPECT_OK(db_->CreateTable("counters",
                               schema::SchemaBuilder()
                                   .AddInt64("p")
                                   .AddInt64("id")
                                   .AddInt64("tag")
                                   .AddInt64("val")
                                   .SetPrimaryKey({"p", "id"})
                                   .Build(),
                               {by_tag}));
    EXPECT_OK(db_->catalog()->SetPartitionColumn("counters", 0));
    EXPECT_OK(db_->CreateTable("ref",
                               schema::SchemaBuilder()
                                   .AddInt64("id")
                                   .AddInt64("val")
                                   .SetPrimaryKey({"id"})
                                   .Build(),
                               {}));

    session_ = db_->OpenSession(0, 0);
    auto counters = db_->GetTable(0, "counters");
    auto ref = db_->GetTable(0, "ref");
    EXPECT_TRUE(counters.ok() && ref.ok());
    counters_ = *counters;
    ref_ = *ref;
    EXPECT_NE(db_->fastpath(), nullptr);
  }

  static Tuple CounterRow(int64_t p, int64_t id, int64_t tag, int64_t val) {
    Tuple tuple(4);
    tuple.Set(0, p);
    tuple.Set(1, id);
    tuple.Set(2, tag);
    tuple.Set(3, val);
    return tuple;
  }

  /// Seeds rows through the ordinary MVCC path.
  void SeedRow(int64_t p, int64_t id, int64_t tag, int64_t val) {
    Transaction txn(session_.get());
    ASSERT_OK(txn.Begin());
    ASSERT_TRUE(txn.Insert(counters_, CounterRow(p, id, tag, val)).ok());
    ASSERT_OK(txn.Commit());
  }

  Result<int64_t> ReadVal(Session* session, int64_t p, int64_t id) {
    Transaction txn(session);
    TELL_RETURN_NOT_OK(txn.Begin());
    TELL_ASSIGN_OR_RETURN(std::optional<Tuple> row,
                          txn.ReadByKey(counters_, {Value(p), Value(id)}));
    TELL_RETURN_NOT_OK(txn.Commit());
    if (!row.has_value()) return Status::NotFound("row missing");
    return row->GetInt(3);
  }

  TxnOptions FastHome(int64_t partition) {
    TxnOptions options;
    options.home_partition = partition;
    return options;
  }

  std::unique_ptr<db::TellDb> db_;
  std::unique_ptr<Session> session_;
  TableHandle* counters_ = nullptr;
  TableHandle* ref_ = nullptr;
};

// ---------------------------------------------------------------------------
// Basics: fast commits, visibility to the MVCC phase, read-only txns.

TEST_F(FastPathTest, FastCommitIsVisibleToLaterMvccSnapshot) {
  SeedRow(1, 1, 10, 100);
  const uint64_t hits_before = session_->metrics()->fastpath_hits;

  Transaction fast(session_.get(), FastHome(1));
  ASSERT_OK(fast.Begin());
  EXPECT_TRUE(fast.fast());
  auto row = fast.ReadByKey(counters_, {Value(int64_t{1}), Value(int64_t{1})});
  ASSERT_TRUE(row.ok() && row->has_value());
  Tuple updated = **row;
  updated.Set(3, int64_t{101});
  ASSERT_OK_AND_ASSIGN(auto with_rid,
                       fast.ReadByKeyWithRid(counters_, {Value(int64_t{1}),
                                                         Value(int64_t{1})}));
  ASSERT_TRUE(with_rid.has_value());
  ASSERT_OK(fast.Update(counters_, with_rid->first, updated));
  ASSERT_OK(fast.Commit());

  EXPECT_EQ(session_->metrics()->fastpath_hits, hits_before + 1);
  // The next MVCC begin flushes the fast completion, so its snapshot
  // includes the fast write (read-your-writes across phases).
  ASSERT_OK_AND_ASSIGN(int64_t val, ReadVal(session_.get(), 1, 1));
  EXPECT_EQ(val, 101);
}

TEST_F(FastPathTest, ReadOnlyFastTxnNeverContactsCommitManager) {
  SeedRow(1, 2, 10, 7);
  db_->fastpath()->FlushPending(0, session_->client());
  const uint64_t leases_before = session_->metrics()->fastpath_tid_leases;

  Transaction fast(session_.get(), FastHome(1));
  ASSERT_OK(fast.Begin());
  ASSERT_OK_AND_ASSIGN(std::optional<Tuple> row,
                       fast.ReadByKey(counters_, {Value(int64_t{1}),
                                                  Value(int64_t{2})}));
  ASSERT_TRUE(row.has_value());
  EXPECT_EQ(row->GetInt(3), 7);
  ASSERT_OK(fast.Commit());

  // No write => no tid lease and nothing queued for completion.
  EXPECT_EQ(session_->metrics()->fastpath_tid_leases, leases_before);
  EXPECT_EQ(db_->fastpath()->PendingCompletions(), 0u);
}

TEST_F(FastPathTest, FastInsertAndDeleteRoundTrip) {
  Transaction fast(session_.get(), FastHome(3));
  ASSERT_OK(fast.Begin());
  ASSERT_OK_AND_ASSIGN(uint64_t rid,
                       fast.Insert(counters_, CounterRow(3, 1, 5, 1)));
  (void)rid;
  ASSERT_OK(fast.Commit());
  ASSERT_OK_AND_ASSIGN(int64_t val, ReadVal(session_.get(), 3, 1));
  EXPECT_EQ(val, 1);

  Transaction del(session_.get(), FastHome(3));
  ASSERT_OK(del.Begin());
  ASSERT_OK_AND_ASSIGN(auto row, del.ReadByKeyWithRid(counters_,
                                                      {Value(int64_t{3}),
                                                       Value(int64_t{1})}));
  ASSERT_TRUE(row.has_value());
  ASSERT_OK(del.Delete(counters_, row->first));
  ASSERT_OK(del.Commit());
  EXPECT_TRUE(ReadVal(session_.get(), 3, 1).status().IsNotFound());
}

// ---------------------------------------------------------------------------
// Satellite 1: cross-partition touches must force the fallback BEFORE any
// fast-path write is visible.

TEST_F(FastPathTest, CrossPartitionUpdateFallsBackBeforeAnyWriteIsVisible) {
  SeedRow(1, 1, 10, 100);
  SeedRow(2, 1, 10, 200);
  const uint64_t aborted_before = session_->metrics()->aborted;
  const uint64_t fallbacks_before = session_->metrics()->fastpath_fallbacks;

  auto observer = db_->OpenSession(0, 1);
  {
    Transaction fast(session_.get(), FastHome(1));
    ASSERT_OK(fast.Begin());
    // First write stays inside the home partition (buffered, not applied).
    ASSERT_OK_AND_ASSIGN(auto home_row,
                         fast.ReadByKeyWithRid(counters_, {Value(int64_t{1}),
                                                           Value(int64_t{1})}));
    ASSERT_TRUE(home_row.has_value());
    Tuple updated = home_row->second;
    updated.Set(3, int64_t{111});
    ASSERT_OK(fast.Update(counters_, home_row->first, updated));

    // Second touch crosses into partition 2: the transaction must flip to
    // fallback right here, with nothing applied yet.
    auto cross = fast.ReadByKeyWithRid(counters_, {Value(int64_t{2}),
                                                   Value(int64_t{1})});
    Status cross_status = cross.ok()
                              ? fast.Update(counters_, (*cross)->first,
                                            (*cross)->second)
                              : cross.status();
    EXPECT_TRUE(cross_status.IsCrossPartition()) << cross_status.ToString();
    EXPECT_TRUE(fast.fallback());

    // Mutation check: while the failed fast transaction is still open, an
    // observer must see the ORIGINAL values of both rows — the buffered
    // home write never became visible.
    ASSERT_OK_AND_ASSIGN(int64_t home_val, ReadVal(observer.get(), 1, 1));
    ASSERT_OK_AND_ASSIGN(int64_t cross_val, ReadVal(observer.get(), 2, 1));
    EXPECT_EQ(home_val, 100);
    EXPECT_EQ(cross_val, 200);
    // Destructor aborts; the fallback is counted as a fallback, not abort.
  }
  EXPECT_EQ(session_->metrics()->aborted, aborted_before);
  EXPECT_EQ(session_->metrics()->fastpath_fallbacks, fallbacks_before + 1);
  ASSERT_OK_AND_ASSIGN(int64_t final_val, ReadVal(session_.get(), 1, 1));
  EXPECT_EQ(final_val, 100);
}

TEST_F(FastPathTest, CrossPartitionInsertHasNoSideEffects) {
  const uint64_t leases_before = session_->metrics()->fastpath_tid_leases;
  {
    Transaction fast(session_.get(), FastHome(1));
    ASSERT_OK(fast.Begin());
    // Inserting a tuple whose partition column names partition 2 must fail
    // before any side effect — no tid lease, no rid allocation, no index op.
    auto insert = fast.Insert(counters_, CounterRow(2, 9, 5, 1));
    EXPECT_TRUE(insert.status().IsCrossPartition());
    EXPECT_TRUE(fast.fallback());
  }
  EXPECT_EQ(session_->metrics()->fastpath_tid_leases, leases_before);
  EXPECT_TRUE(ReadVal(session_.get(), 2, 9).status().IsNotFound());
}

TEST_F(FastPathTest, SecondaryIndexHitOutsideHomeForcesFallback) {
  SeedRow(1, 1, 77, 1);
  SeedRow(2, 1, 77, 2);  // same tag, different partition

  Transaction fast(session_.get(), FastHome(1));
  ASSERT_OK(fast.Begin());
  // The by_tag scan finds a match in partition 2: the lookup itself must
  // force the fallback (a secondary index is partition-blind).
  auto scan = fast.ScanIndex(counters_, 0, {Value(int64_t{77})},
                             {Value(int64_t{78})}, 0);
  EXPECT_TRUE(scan.status().IsCrossPartition()) << scan.status().ToString();
  EXPECT_TRUE(fast.fallback());
}

TEST_F(FastPathTest, SecondaryIndexScanInsideHomeStaysFast) {
  SeedRow(1, 1, 42, 1);
  SeedRow(1, 2, 42, 2);

  Transaction fast(session_.get(), FastHome(1));
  ASSERT_OK(fast.Begin());
  ASSERT_OK_AND_ASSIGN(auto matches,
                       fast.ScanIndex(counters_, 0, {Value(int64_t{42})},
                                      {Value(int64_t{43})}, 0));
  EXPECT_EQ(matches.size(), 2u);
  EXPECT_TRUE(fast.fast());
  EXPECT_FALSE(fast.fallback());
  ASSERT_OK(fast.Commit());
}

TEST_F(FastPathTest, PushdownScanFallsBack) {
  SeedRow(1, 1, 10, 1);
  Transaction fast(session_.get(), FastHome(1));
  ASSERT_OK(fast.Begin());
  auto scan = fast.FilteredScan(counters_,
                                [](const Tuple&) { return true; });
  EXPECT_TRUE(scan.status().IsCrossPartition());
  EXPECT_TRUE(fast.fallback());
}

TEST_F(FastPathTest, ReferenceTableReadsAllowedWritesFallBack) {
  {
    Transaction seed(session_.get());
    ASSERT_OK(seed.Begin());
    Tuple row(2);
    row.Set(0, int64_t{1});
    row.Set(1, int64_t{50});
    ASSERT_TRUE(seed.Insert(ref_, row).ok());
    ASSERT_OK(seed.Commit());
  }

  Transaction fast(session_.get(), FastHome(1));
  ASSERT_OK(fast.Begin());
  // Reads of unpartitioned reference data run under the shared side of the
  // reference fence — allowed.
  ASSERT_OK_AND_ASSIGN(auto row,
                       fast.ReadByKeyWithRid(ref_, {Value(int64_t{1})}));
  ASSERT_TRUE(row.has_value());
  EXPECT_EQ(row->second.GetInt(1), 50);
  // Writes would need the fence exclusively — fall back instead.
  Tuple updated = row->second;
  updated.Set(1, int64_t{51});
  Status st = fast.Update(ref_, row->first, updated);
  EXPECT_TRUE(st.IsCrossPartition()) << st.ToString();
  EXPECT_TRUE(fast.fallback());
}

// ---------------------------------------------------------------------------
// Coordinator unit behavior.

TEST_F(FastPathTest, MvccCommitInvalidatesCachedTidBatch) {
  SeedRow(4, 1, 10, 0);
  SeedRow(4, 2, 10, 0);
  FastPathCoordinator* fastpath = db_->fastpath();
  const uint32_t lane = fastpath->LaneFor(4);

  // First fast write leases a batch (size 4) and uses one tid.
  Tid first = 0;
  {
    Transaction fast(session_.get(), FastHome(4));
    ASSERT_OK(fast.Begin());
    ASSERT_OK_AND_ASSIGN(auto row,
                         fast.ReadByKeyWithRid(counters_, {Value(int64_t{4}),
                                                           Value(int64_t{1})}));
    ASSERT_TRUE(row.has_value());
    Tuple updated = row->second;
    updated.Set(3, int64_t{1});
    ASSERT_OK(fast.Update(counters_, row->first, updated));
    first = fast.tid();
    ASSERT_OK(fast.Commit());
  }
  ASSERT_NE(first, 0u);

  // An MVCC commit through the same lane bumps the lane's epoch...
  {
    Transaction mvcc(session_.get());
    ASSERT_OK(mvcc.Begin());
    ASSERT_OK_AND_ASSIGN(auto row,
                         mvcc.ReadByKeyWithRid(counters_, {Value(int64_t{4}),
                                                           Value(int64_t{2})}));
    ASSERT_TRUE(row.has_value());
    Tuple updated = row->second;
    updated.Set(3, int64_t{2});
    ASSERT_OK(mvcc.Update(counters_, row->first, updated));
    Tid mvcc_tid = mvcc.tid();
    ASSERT_OK(mvcc.Commit());
    EXPECT_GT(mvcc_tid, first);
  }

  // ...so the next fast write must discard the remaining cached tids and
  // lease a fresh batch: its tid exceeds the MVCC tid, keeping fast writes
  // the newest version in the lane.
  const size_t pending_before = fastpath->PendingCompletions();
  Tid second = 0;
  {
    Transaction fast(session_.get(), FastHome(4));
    ASSERT_OK(fast.Begin());
    ASSERT_OK_AND_ASSIGN(auto row,
                         fast.ReadByKeyWithRid(counters_, {Value(int64_t{4}),
                                                           Value(int64_t{1})}));
    ASSERT_TRUE(row.has_value());
    Tuple updated = row->second;
    updated.Set(3, int64_t{3});
    ASSERT_OK(fast.Update(counters_, row->first, updated));
    second = fast.tid();
    ASSERT_OK(fast.Commit());
  }
  EXPECT_GT(second, first + 1) << "fresh batch, not the stale cached one";
  // The discarded remainder of the first batch was queued for completion
  // (an uncompleted leased tid would pin the snapshot base forever).
  EXPECT_GT(fastpath->PendingCompletions(), pending_before);
  EXPECT_EQ(lane, fastpath->LaneFor(4));

  fastpath->FlushPending(0, session_->client());
  EXPECT_EQ(fastpath->PendingCompletions(), 0u);
  // After the flush the commit managers account every leased tid, so the
  // global lav can reach the latest committed fast tid.
  EXPECT_GE(db_->commit_managers()->GlobalLav(), second);
  ASSERT_OK_AND_ASSIGN(int64_t val, ReadVal(session_.get(), 4, 1));
  EXPECT_EQ(val, 3);
}

TEST_F(FastPathTest, DisabledWithIncompatibleBufferStrategy) {
  db::TellDbOptions options;
  options.network = sim::NetworkModel::Instant();
  options.fastpath.enabled = true;
  options.buffer_strategy = db::BufferStrategy::kSharedRecord;
  db::TellDb db(options);
  EXPECT_EQ(db.fastpath(), nullptr);
}

TEST_F(FastPathTest, DisabledWithInterleavedTids) {
  db::TellDbOptions options;
  options.network = sim::NetworkModel::Instant();
  options.fastpath.enabled = true;
  options.commit_manager.interleaved_tids = true;
  db::TellDb db(options);
  EXPECT_EQ(db.fastpath(), nullptr);
}

// ---------------------------------------------------------------------------
// Fence races: fast lanes vs MVCC commits, concurrently (tsan target).

TEST_F(FastPathTest, PartitionMovingMvccUpdateFencesBothLanes) {
  // Regression: an MVCC update that changes the partition column (moving a
  // row from partition 1 to 2) used to record only the NEW partition for
  // its commit fence set, so it held only lane(2) shared. A fast
  // transaction homed on partition 1 — lane(1) held exclusively, the record
  // buffered — could then have its CommitFast clobber the MVCC version
  // (unconditional write), silently losing a committed MVCC update. The
  // commit must fence the union of old and new partitions: with lane(1) in
  // the set, the mover blocks until the fast transaction releases its lane.
  SeedRow(1, 1, 10, 100);

  Transaction fast(session_.get(), FastHome(1));
  ASSERT_OK(fast.Begin());
  ASSERT_OK_AND_ASSIGN(auto row,
                       fast.ReadByKeyWithRid(counters_, {Value(int64_t{1}),
                                                         Value(int64_t{1})}));
  ASSERT_TRUE(row.has_value());
  const uint64_t rid = row->first;
  Tuple fast_image = row->second;
  fast_image.Set(3, int64_t{101});
  ASSERT_OK(fast.Update(counters_, rid, fast_image));  // buffered, not applied

  std::atomic<bool> mover_committed{false};
  Status mover_status;
  std::thread mover([&] {
    auto session = db_->OpenSession(0, 1);
    Transaction mvcc(session.get());
    Status begin = mvcc.Begin();
    ASSERT_OK(begin);
    auto cell = mvcc.ReadByKeyWithRid(counters_, {Value(int64_t{1}),
                                                  Value(int64_t{1})});
    ASSERT_TRUE(cell.ok() && cell->has_value());
    Tuple moved = (*cell)->second;
    moved.Set(0, int64_t{2});  // partition move: 1 -> 2
    Status update = mvcc.Update(counters_, (*cell)->first, moved);
    ASSERT_OK(update);
    mover_status = mvcc.Commit();
    mover_committed.store(true, std::memory_order_release);
  });

  // The mover's commit needs lane(1) shared — held exclusively by `fast` —
  // so it must still be blocked on the fence.
  std::this_thread::sleep_for(std::chrono::milliseconds(100));
  EXPECT_FALSE(mover_committed.load(std::memory_order_acquire))
      << "the partition-moving commit bypassed the source lane's fence";

  ASSERT_OK(fast.Commit());
  mover.join();
  // Unblocked after the fast commit, the mover's conditional put sees the
  // fast write's fresh stamp and aborts — the fast update is never lost.
  EXPECT_TRUE(mover_status.IsAborted()) << mover_status.ToString();
  ASSERT_OK_AND_ASSIGN(int64_t val, ReadVal(session_.get(), 1, 1));
  EXPECT_EQ(val, 101);
  EXPECT_TRUE(ReadVal(session_.get(), 2, 1).status().IsNotFound());
}

TEST_F(FastPathTest, ConcurrentFastAndMvccPhasesKeepCountersExact) {
  constexpr int kThreads = 4;
  constexpr int kFastPerThread = 60;
  constexpr int kCrossPerThread = 12;
  for (int64_t p = 0; p < kThreads; ++p) SeedRow(p + 10, 1, 0, 0);

  std::atomic<int> cross_commits{0};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      auto session = db_->OpenSession(0, static_cast<uint32_t>(10 + t));
      const int64_t home = t + 10;
      for (int i = 0; i < kFastPerThread; ++i) {
        // Serial fast increments on this thread's own partition.
        Transaction fast(session.get(), FastHome(home));
        ASSERT_OK(fast.Begin());
        auto row = fast.ReadByKeyWithRid(counters_, {Value(home),
                                                     Value(int64_t{1})});
        ASSERT_TRUE(row.ok() && row->has_value());
        Tuple updated = (*row)->second;
        updated.Set(3, updated.GetInt(3) + 1);
        ASSERT_OK(fast.Update(counters_, (*row)->first, updated));
        ASSERT_OK(fast.Commit());

        if (i % (kFastPerThread / kCrossPerThread) != 0) continue;
        // Occasionally, an MVCC transaction spanning two partitions; it
        // conflicts with the neighbour's cross transactions, so retry on
        // Aborted until it lands.
        for (;;) {
          Transaction mvcc(session.get());
          Status st = mvcc.Begin();
          ASSERT_OK(st);
          const int64_t other = (t + 1) % kThreads + 10;
          bool ok = true;
          for (int64_t p : {home, other}) {
            auto cell = mvcc.ReadByKeyWithRid(counters_, {Value(p),
                                                          Value(int64_t{1})});
            ASSERT_TRUE(cell.ok() && cell->has_value());
            Tuple updated = (*cell)->second;
            updated.Set(3, updated.GetInt(3) + 1);
            Status up = mvcc.Update(counters_, (*cell)->first, updated);
            if (up.IsAborted()) {
              ok = false;
              break;
            }
            ASSERT_OK(up);
          }
          if (ok) {
            Status commit = mvcc.Commit();
            if (commit.ok()) {
              cross_commits.fetch_add(2);  // two rows incremented
              break;
            }
            ASSERT_TRUE(commit.IsAborted()) << commit.ToString();
          }
        }
      }
    });
  }
  for (std::thread& thread : threads) thread.join();

  // Every increment must be there: the fast ones (serial per lane) plus
  // every committed cross increment — no lost updates across the phases.
  int64_t total = 0;
  for (int64_t p = 0; p < kThreads; ++p) {
    ASSERT_OK_AND_ASSIGN(int64_t val, ReadVal(session_.get(), p + 10, 1));
    total += val;
  }
  EXPECT_EQ(total, kThreads * kFastPerThread + cross_commits.load());
}

// ---------------------------------------------------------------------------
// TPC-C: determinism on/off, and the shardable mix staying fully fast.

tpcc::TpccScale FastPathScale() {
  tpcc::TpccScale scale;
  scale.warehouses = 2;
  scale.districts_per_warehouse = 2;
  scale.customers_per_district = 10;
  scale.items = 40;
  scale.initial_orders_per_district = 8;
  return scale;
}

std::string ValueToString(const schema::Value& value) {
  std::ostringstream out;
  out << std::setprecision(17);
  if (const int64_t* i = std::get_if<int64_t>(&value)) {
    out << 'i' << *i;
  } else if (const double* d = std::get_if<double>(&value)) {
    out << 'd' << *d;
  } else if (const std::string* s = std::get_if<std::string>(&value)) {
    out << 's' << *s;
  } else {
    out << "null";
  }
  return out.str();
}

/// Digest of every visible tuple of `table`, restricted to `cols` —
/// timestamp columns (o_entry_d, h_date, ol_delivery_d) are excluded by
/// the callers because the two runs advance virtual time differently.
void DigestTable(Transaction* txn, TableHandle* table,
                 const std::vector<uint32_t>& cols, std::ostringstream* out) {
  const std::string hi(16, '\xFF');
  auto rows = txn->ScanIndexEncoded(table, -1, "", hi, 0);
  ASSERT_TRUE(rows.ok()) << rows.status().ToString();
  *out << "#" << rows->size() << "\n";
  for (const auto& [rid, tuple] : *rows) {
    for (uint32_t col : cols) *out << ValueToString(tuple.at(col)) << "|";
    *out << "\n";
  }
}

struct TpccRun {
  std::vector<std::pair<bool, bool>> outcomes;  // (committed, user_abort)
  std::string digest;
  uint64_t hits = 0;
  uint64_t fallbacks = 0;
  uint64_t committed = 0;
};

void RunTpccFixed(bool fastpath_on, tpcc::Mix mix, int num_inputs,
                  double multi_partition_fraction, TpccRun* run) {
  db::TellDbOptions options;
  options.network = sim::NetworkModel::Instant();
  options.fastpath.enabled = fastpath_on;
  db::TellDb db(options);
  ASSERT_OK(tpcc::CreateTpccTables(&db));
  tpcc::TpccScale scale = FastPathScale();
  ASSERT_OK(tpcc::LoadTpcc(&db, scale));
  auto session = db.OpenSession(0, 0);
  auto tables = tpcc::OpenTpccTables(&db, 0);
  ASSERT_TRUE(tables.ok()) << tables.status().ToString();
  tpcc::TpccExecutor executor(session.get(), *tables);
  tpcc::InputGenerator generator(scale, mix, /*seed=*/4242,
                                 /*home_warehouse=*/1);
  generator.set_multi_partition_fraction(multi_partition_fraction);

  for (int i = 0; i < num_inputs; ++i) {
    tpcc::TxnInput input = generator.Next();
    auto outcome = executor.Execute(input);
    ASSERT_TRUE(outcome.ok()) << outcome.status().ToString();
    run->outcomes.emplace_back(outcome->committed, outcome->user_abort);
  }
  run->hits = session->metrics()->fastpath_hits;
  run->fallbacks = session->metrics()->fastpath_fallbacks;
  run->committed = session->metrics()->committed;

  // Final-state digest over timestamp-free columns, read through a fresh
  // MVCC snapshot (its begin flushes any pending fast completions first).
  auto reader = db.OpenSession(0, 1);
  Transaction txn(reader.get());
  ASSERT_OK(txn.Begin());
  std::ostringstream digest;
  namespace col = tpcc::col;
  DigestTable(&txn, tables->warehouse, {0, col::kWYtd}, &digest);
  DigestTable(&txn, tables->district,
              {0, 1, col::kDYtd, col::kDNextOId}, &digest);
  DigestTable(&txn, tables->customer,
              {0, 1, 2, col::kCBalance, col::kCYtdPayment, col::kCPaymentCnt,
               col::kCDeliveryCnt, col::kCData}, &digest);
  DigestTable(&txn, tables->history,
              {col::kHId, col::kHCId, col::kHCDId, col::kHCWId, col::kHDId,
               col::kHWId, col::kHAmount, col::kHData}, &digest);
  DigestTable(&txn, tables->new_order, {0, 1, 2}, &digest);
  DigestTable(&txn, tables->orders,
              {0, 1, 2, col::kOCId, col::kOCarrierId, col::kOOlCnt,
               col::kOAllLocal}, &digest);
  DigestTable(&txn, tables->order_line,
              {0, 1, 2, 3, col::kOlIId, col::kOlSupplyWId, col::kOlQuantity,
               col::kOlAmount, col::kOlDistInfo}, &digest);
  DigestTable(&txn, tables->stock,
              {0, 1, col::kSQuantity, col::kSYtd, col::kSOrderCnt,
               col::kSRemoteCnt}, &digest);
  ASSERT_OK(txn.Commit());
  run->digest = digest.str();
}

TEST(FastPathTpccTest, OutcomesAndFinalStateMatchWithFastPathOnAndOff) {
  constexpr int kInputs = 250;
  TpccRun off;
  TpccRun on;
  RunTpccFixed(false, tpcc::Mix::kWriteIntensive, kInputs, 0.3, &off);
  RunTpccFixed(true, tpcc::Mix::kWriteIntensive, kInputs, 0.3, &on);

  EXPECT_EQ(off.hits, 0u);
  EXPECT_GT(on.hits, 0u) << "the fast path must actually engage";
  ASSERT_EQ(on.outcomes.size(), off.outcomes.size());
  for (size_t i = 0; i < on.outcomes.size(); ++i) {
    EXPECT_EQ(on.outcomes[i], off.outcomes[i]) << "input " << i;
  }
  EXPECT_EQ(on.committed, off.committed);
  // Bit-identical final state on the same seed: the fast path is an
  // execution strategy, not a semantics change.
  EXPECT_EQ(on.digest, off.digest);
}

TEST(FastPathTpccTest, ShardableMixRunsEntirelyOnTheFastPath) {
  TpccRun run;
  RunTpccFixed(true, tpcc::Mix::kShardable, 120, -1.0, &run);
  EXPECT_GT(run.hits, 0u);
  EXPECT_EQ(run.fallbacks, 0u)
      << "the shardable mix has no cross-warehouse touches";
  // Every committed transaction went through the fast lane.
  EXPECT_EQ(run.hits, run.committed);
}

}  // namespace
}  // namespace tell::tx
