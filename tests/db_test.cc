// TellDb facade tests: DDL edge cases, session management, multi-statement
// behavior, transaction-log plumbing, and garbage collector scenarios that
// are awkward to reach from the lower-level suites.
#include <gtest/gtest.h>

#include "common/serde.h"
#include "db/tell_db.h"
#include "tests/test_util.h"

namespace tell::db {
namespace {

using schema::Tuple;
using schema::Value;

class TellDbTest : public ::testing::Test {
 protected:
  TellDbTest() {
    TellDbOptions options;
    options.network = sim::NetworkModel::Instant();
    db_ = std::make_unique<TellDb>(options);
    session_ = db_->OpenSession(0, 0);
  }
  std::unique_ptr<TellDb> db_;
  std::unique_ptr<tx::Session> session_;
};

TEST_F(TellDbTest, CreateTableTwiceFails) {
  ASSERT_OK(db_->ExecuteDdl("CREATE TABLE t (id INT, PRIMARY KEY (id))"));
  Status st = db_->ExecuteDdl("CREATE TABLE t (id INT, PRIMARY KEY (id))");
  EXPECT_TRUE(st.IsAlreadyExists()) << st.ToString();
}

TEST_F(TellDbTest, CreateTableWithoutPkRejected) {
  EXPECT_FALSE(db_->ExecuteDdl("CREATE TABLE t (id INT)").ok());
}

TEST_F(TellDbTest, QueryUnknownTableFails) {
  auto result = db_->AutoCommitSql(session_.get(), "SELECT * FROM nope");
  EXPECT_TRUE(result.status().IsNotFound());
}

TEST_F(TellDbTest, QueryUnknownColumnFails) {
  ASSERT_OK(db_->ExecuteDdl("CREATE TABLE t (id INT, PRIMARY KEY (id))"));
  auto result = db_->AutoCommitSql(session_.get(),
                                   "SELECT ghost FROM t");
  EXPECT_TRUE(result.status().IsNotFound());
}

TEST_F(TellDbTest, CreateIndexBackfillsExistingData) {
  ASSERT_OK(db_->ExecuteDdl(
      "CREATE TABLE t (id INT, tag VARCHAR(8), PRIMARY KEY (id))"));
  auto loader = db_->OpenSession(0, 1);
  for (int i = 0; i < 20; ++i) {
    ASSERT_TRUE(db_->AutoCommitSql(
                       loader.get(),
                       "INSERT INTO t VALUES (" + std::to_string(i) + ", '" +
                           (i % 2 ? "odd" : "even") + "')")
                    .ok());
  }
  // Index created AFTER the data exists must backfill.
  ASSERT_OK(db_->ExecuteDdl("CREATE INDEX by_tag ON t (tag)"));
  auto result = db_->AutoCommitSql(
      session_.get(), "SELECT COUNT(*) FROM t WHERE tag = 'odd'");
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(std::get<int64_t>(result->rows[0].at(0)), 10);
}

TEST_F(TellDbTest, DmlWithoutTransactionRejected) {
  ASSERT_OK(db_->ExecuteDdl("CREATE TABLE t (id INT, PRIMARY KEY (id))"));
  auto result = db_->ExecuteSql(nullptr, 0, "INSERT INTO t VALUES (1)");
  EXPECT_FALSE(result.ok());
}

TEST_F(TellDbTest, AutoCommitRollsBackOnError) {
  ASSERT_OK(db_->ExecuteDdl("CREATE TABLE t (id INT, PRIMARY KEY (id))"));
  ASSERT_TRUE(db_->AutoCommitSql(session_.get(),
                                 "INSERT INTO t VALUES (1)").ok());
  // Duplicate pk fails; the auto-commit wrapper must abort cleanly and the
  // session stays usable.
  auto dup = db_->AutoCommitSql(session_.get(), "INSERT INTO t VALUES (1)");
  EXPECT_FALSE(dup.ok());
  auto count = db_->AutoCommitSql(session_.get(), "SELECT COUNT(*) FROM t");
  ASSERT_TRUE(count.ok());
  EXPECT_EQ(std::get<int64_t>(count->rows[0].at(0)), 1);
}

TEST_F(TellDbTest, KillUnknownPnRejected) {
  EXPECT_FALSE(db_->KillProcessingNode(99).ok());
}

TEST_F(TellDbTest, OpenSessionOnDeadPnAborts) {
  TellDbOptions options;
  options.num_processing_nodes = 2;
  options.network = sim::NetworkModel::Instant();
  TellDb db(options);
  ASSERT_OK(db.CreateTable("t",
                           schema::SchemaBuilder()
                               .AddInt64("id")
                               .SetPrimaryKey({"id"})
                               .Build(),
                           {}));
  ASSERT_OK(db.KillProcessingNode(1).status());
  EXPECT_FALSE(db.GetTable(1, "t").ok());
}

// ---------------------------------------------------------------------------
// Transaction log behaviours via the db facade

class TxLogDbTest : public ::testing::Test {
 protected:
  TxLogDbTest() {
    TellDbOptions options;
    options.network = sim::NetworkModel::Instant();
    db_ = std::make_unique<TellDb>(options);
    EXPECT_OK(db_->CreateTable("t",
                               schema::SchemaBuilder()
                                   .AddInt64("id")
                                   .AddDouble("v")
                                   .SetPrimaryKey({"id"})
                                   .Build(),
                               {}));
    session_ = db_->OpenSession(0, 0);
    table_ = *db_->GetTable(0, "t");
  }

  Tuple Row(int64_t id, double v) {
    Tuple t(2);
    t.Set(0, id);
    t.Set(1, v);
    return t;
  }

  std::unique_ptr<TellDb> db_;
  std::unique_ptr<tx::Session> session_;
  tx::TableHandle* table_;
};

TEST_F(TxLogDbTest, CommitWritesLogEntryWithWriteSetAndFlag) {
  tx::Transaction txn(session_.get());
  ASSERT_OK(txn.Begin());
  ASSERT_OK_AND_ASSIGN(uint64_t rid, txn.Insert(table_, Row(1, 1.0)));
  ASSERT_OK(txn.Commit());
  ASSERT_OK_AND_ASSIGN(
      auto entry, db_->transaction_log()->Get(session_->client(), txn.tid()));
  ASSERT_TRUE(entry.has_value());
  EXPECT_TRUE(entry->committed);
  EXPECT_EQ(entry->pn_id, 0u);
  ASSERT_EQ(entry->write_set.size(), 1u);
  EXPECT_EQ(entry->write_set[0].second, rid);
}

TEST_F(TxLogDbTest, ReadOnlyCommitWritesNoLogEntry) {
  tx::Transaction txn(session_.get());
  ASSERT_OK(txn.Begin());
  ASSERT_OK(txn.Commit());
  ASSERT_OK_AND_ASSIGN(
      auto entry, db_->transaction_log()->Get(session_->client(), txn.tid()));
  EXPECT_FALSE(entry.has_value());
}

TEST_F(TxLogDbTest, ScanBackwardsNewestFirst) {
  std::vector<commitmgr::Tid> tids;
  for (int i = 0; i < 5; ++i) {
    tx::Transaction txn(session_.get());
    ASSERT_OK(txn.Begin());
    ASSERT_OK(txn.Insert(table_, Row(i, i)).status());
    ASSERT_OK(txn.Commit());
    tids.push_back(txn.tid());
  }
  ASSERT_OK_AND_ASSIGN(
      auto entries,
      db_->transaction_log()->ScanBackwards(session_->client(), tids.back(),
                                            /*lav=*/0));
  ASSERT_EQ(entries.size(), 5u);
  EXPECT_EQ(entries.front().tid, tids.back());
  EXPECT_EQ(entries.back().tid, tids.front());
}

TEST_F(TxLogDbTest, GcTruncatesLogBelowLav) {
  for (int i = 0; i < 5; ++i) {
    tx::Transaction txn(session_.get());
    ASSERT_OK(txn.Begin());
    ASSERT_OK(txn.Insert(table_, Row(i, i)).status());
    ASSERT_OK(txn.Commit());
  }
  ASSERT_OK_AND_ASSIGN(tx::GcStats stats, db_->RunGarbageCollection());
  EXPECT_GE(stats.log_entries_truncated, 4u);
  // Everything still readable.
  auto count = db_->AutoCommitSql(session_.get(), "SELECT COUNT(*) FROM t");
  ASSERT_TRUE(count.ok());
  EXPECT_EQ(std::get<int64_t>(count->rows[0].at(0)), 5);
}

TEST_F(TxLogDbTest, LongRunningTransactionBlocksGc) {
  uint64_t rid;
  {
    tx::Transaction txn(session_.get());
    ASSERT_OK(txn.Begin());
    ASSERT_OK_AND_ASSIGN(rid, txn.Insert(table_, Row(1, 1.0)));
    ASSERT_OK(txn.Commit());
  }
  // An old reader pins the lav.
  auto old_session = db_->OpenSession(0, 5);
  tx::Transaction old_reader(old_session.get());
  ASSERT_OK(old_reader.Begin());
  // Update the record several times.
  for (int i = 0; i < 4; ++i) {
    tx::Transaction txn(session_.get());
    ASSERT_OK(txn.Begin());
    ASSERT_OK(txn.Update(table_, rid, Row(1, 10.0 + i)));
    ASSERT_OK(txn.Commit());
  }
  ASSERT_OK(db_->RunGarbageCollection().status());
  // The old reader still sees its version: GC must not have removed it.
  ASSERT_OK_AND_ASSIGN(auto row, old_reader.Read(table_, rid));
  ASSERT_TRUE(row.has_value());
  EXPECT_EQ(row->GetDouble(1), 1.0);
  ASSERT_OK(old_reader.Commit());
}

TEST_F(TxLogDbTest, VersionChainBoundedAfterGc) {
  uint64_t rid;
  {
    tx::Transaction txn(session_.get());
    ASSERT_OK(txn.Begin());
    ASSERT_OK_AND_ASSIGN(rid, txn.Insert(table_, Row(1, 0.0)));
    ASSERT_OK(txn.Commit());
  }
  for (int i = 0; i < 10; ++i) {
    tx::Transaction txn(session_.get());
    ASSERT_OK(txn.Begin());
    ASSERT_OK(txn.Update(table_, rid, Row(1, i)));
    ASSERT_OK(txn.Commit());
  }
  ASSERT_OK(db_->RunGarbageCollection().status());
  auto cell = db_->cluster()->Get(table_->meta->data_table,
                                  EncodeOrderedU64(rid));
  ASSERT_TRUE(cell.ok());
  ASSERT_OK_AND_ASSIGN(schema::VersionedRecord record,
                       schema::VersionedRecord::Deserialize(cell->value));
  EXPECT_LE(record.NumVersions(), 2u);
}

}  // namespace
}  // namespace tell::db
