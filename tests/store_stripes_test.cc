// Concurrency tests for the lock-striped storage-node engine (DESIGN.md
// "Storage engine"). These run REAL racing threads against one StorageNode —
// unlike the virtual-time suites, nothing here is deterministic, so the
// assertions are invariants that must hold under every interleaving:
// LL/SC atomicity, stamp monotonicity, scan snapshot consistency, and
// install/write isolation. The suite carries the `tsan` ctest label so the
// ThreadSanitizer preset exercises the stripe locking for data races.
#include <gtest/gtest.h>

#include <atomic>
#include <cstring>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include "store/storage_node.h"
#include "tests/test_util.h"

namespace tell::store {
namespace {

constexpr TableId kTable = 1;
constexpr uint32_t kPart = 0;

int64_t DecodeInt(const std::string& value) {
  int64_t v = 0;
  if (value.size() == sizeof(int64_t)) {
    std::memcpy(&v, value.data(), sizeof(int64_t));
  }
  return v;
}

std::string EncodeInt(int64_t v) {
  std::string out(sizeof(int64_t), '\0');
  std::memcpy(out.data(), &v, sizeof(int64_t));
  return out;
}

/// LL/SC on ONE hot key from many threads implements an atomic counter:
/// each thread loads the cell, then store-conditionals value+1 with the
/// loaded stamp. If the stamp check and the write were not atomic inside
/// the stripe's exclusive section, two threads could both succeed from the
/// same base value and increments would be lost.
TEST(StoreStripesTest, RacingConditionalPutsSameKeyLoseNoIncrements) {
  StorageNode node(0, 64 << 20, /*stripes_per_partition=*/16);
  node.CreatePartition(kTable, kPart);
  ASSERT_OK(node.Put(kTable, kPart, "hot", EncodeInt(0)).status());

  constexpr int kThreads = 4;
  constexpr int kIterations = 400;
  std::atomic<int64_t> successes{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < kIterations; ++i) {
        auto cell = node.Get(kTable, kPart, "hot");
        ASSERT_OK(cell.status());
        auto put = node.ConditionalPut(kTable, kPart, "hot", cell->stamp,
                                       EncodeInt(DecodeInt(cell->value) + 1));
        if (put.ok()) {
          successes.fetch_add(1, std::memory_order_relaxed);
        } else {
          ASSERT_TRUE(put.status().IsConditionFailed())
              << put.status().ToString();
        }
      }
    });
  }
  for (auto& thread : threads) thread.join();

  ASSERT_OK_AND_ASSIGN(VersionedCell final_cell, node.Get(kTable, kPart, "hot"));
  EXPECT_EQ(DecodeInt(final_cell.value), successes.load());
  EXPECT_GT(successes.load(), 0);
  // Every successful SC bumped the stamp exactly once (initial Put included).
  EXPECT_EQ(final_cell.stamp, static_cast<uint64_t>(successes.load()) + 1);
}

/// Disjoint keys land on (mostly) different stripes, so every thread's
/// own LL/SC chain must never fail: no other thread touches its key, and
/// stripe locking must not leak condition failures across keys.
TEST(StoreStripesTest, RacingConditionalPutsDisjointKeysNeverConflict) {
  StorageNode node(0, 64 << 20, /*stripes_per_partition=*/16);
  node.CreatePartition(kTable, kPart);

  constexpr int kThreads = 4;
  constexpr int kIterations = 400;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      const std::string key = "worker_" + std::to_string(t);
      auto put = node.ConditionalPut(kTable, kPart, key, kStampAbsent, "0");
      ASSERT_OK(put.status());
      uint64_t stamp = *put;
      for (int i = 1; i <= kIterations; ++i) {
        auto next = node.ConditionalPut(kTable, kPart, key, stamp,
                                        std::to_string(i));
        ASSERT_TRUE(next.ok())
            << key << " iteration " << i << ": " << next.status().ToString();
        EXPECT_GT(*next, stamp);
        stamp = *next;
      }
    });
  }
  for (auto& thread : threads) thread.join();
  for (int t = 0; t < kThreads; ++t) {
    ASSERT_OK_AND_ASSIGN(
        VersionedCell cell,
        node.Get(kTable, kPart, "worker_" + std::to_string(t)));
    EXPECT_EQ(cell.value, std::to_string(kIterations));
  }
}

/// A scan takes every stripe lock shared, so it must observe an atomic
/// point-in-time snapshot: sorted unique keys, and (since writers only ever
/// Put) per-key stamps that never move backwards between successive scans.
TEST(StoreStripesTest, ScanDuringWritesSeesConsistentSnapshots) {
  StorageNode node(0, 64 << 20, /*stripes_per_partition=*/16);
  node.CreatePartition(kTable, kPart);
  constexpr int kKeys = 64;
  for (int k = 0; k < kKeys; ++k) {
    char buf[16];
    std::snprintf(buf, sizeof(buf), "key_%03d", k);
    ASSERT_OK(node.Put(kTable, kPart, buf, "v0").status());
  }

  std::atomic<bool> stop{false};
  std::vector<std::thread> writers;
  for (int t = 0; t < 3; ++t) {
    writers.emplace_back([&, t] {
      uint64_t rng = 12345 + t;
      while (!stop.load(std::memory_order_relaxed)) {
        rng = rng * 6364136223846793005ULL + 1442695040888963407ULL;
        char buf[16];
        std::snprintf(buf, sizeof(buf), "key_%03d",
                      static_cast<int>((rng >> 33) % kKeys));
        ASSERT_OK(node.Put(kTable, kPart, buf, "v1").status());
      }
    });
  }

  std::map<std::string, uint64_t> last_stamp;
  for (int round = 0; round < 50; ++round) {
    ASSERT_OK_AND_ASSIGN(std::vector<KeyCell> cells,
                         node.Scan(kTable, kPart, "", "", 0));
    ASSERT_EQ(cells.size(), static_cast<size_t>(kKeys));
    for (size_t i = 0; i < cells.size(); ++i) {
      if (i > 0) {
        // Sorted and unique: the k-way merge must reproduce exactly the
        // old single-map order.
        ASSERT_LT(cells[i - 1].key, cells[i].key);
      }
      auto it = last_stamp.find(cells[i].key);
      if (it != last_stamp.end()) {
        ASSERT_GE(cells[i].stamp, it->second) << cells[i].key;
      }
      last_stamp[cells[i].key] = cells[i].stamp;
    }
  }
  stop.store(true);
  for (auto& thread : writers) thread.join();
}

/// Replica seeding while the partition takes writes: InstallPartition holds
/// every stripe exclusive, and afterwards the stamp source must sit past
/// every installed stamp so new writes stay ABA-safe.
TEST(StoreStripesTest, InstallPartitionUnderLoadKeepsStampsMonotonic) {
  StorageNode node(0, 64 << 20, /*stripes_per_partition=*/16);
  node.CreatePartition(kTable, kPart);

  // A "dumped replica" batch with high stamps, as fail-over would install.
  std::vector<KeyCell> batch;
  constexpr uint64_t kHighStamp = 1'000'000;
  for (int k = 0; k < 32; ++k) {
    batch.push_back({"replica_" + std::to_string(k), "seed",
                     kHighStamp + static_cast<uint64_t>(k)});
  }

  std::atomic<bool> stop{false};
  std::vector<std::thread> writers;
  for (int t = 0; t < 3; ++t) {
    writers.emplace_back([&, t] {
      const std::string key = "live_" + std::to_string(t);
      int i = 0;
      while (!stop.load(std::memory_order_relaxed)) {
        ASSERT_OK(
            node.Put(kTable, kPart, key, std::to_string(i++)).status());
      }
    });
  }
  for (int round = 0; round < 20; ++round) {
    ASSERT_OK(node.InstallPartition(kTable, kPart, batch));
  }
  stop.store(true);
  for (auto& thread : writers) thread.join();

  // Installed cells kept their dumped stamps.
  ASSERT_OK_AND_ASSIGN(VersionedCell seeded,
                       node.Get(kTable, kPart, "replica_0"));
  EXPECT_EQ(seeded.stamp, kHighStamp);
  // And the partition's stamp source moved past them: a fresh write must
  // get a stamp above every installed one.
  ASSERT_OK_AND_ASSIGN(uint64_t stamp,
                       node.Put(kTable, kPart, "after_install", "x"));
  EXPECT_GT(stamp, kHighStamp + 31);
}

/// The striped engine must be semantically indistinguishable from the old
/// monolithic engine when single-threaded: the same op sequence against 1
/// stripe and 64 stripes yields bit-identical stamps, values, statuses and
/// scan orders.
TEST(StoreStripesTest, SingleThreadedBitIdenticalAcrossStripeCounts) {
  StorageNode one(0, 64 << 20, /*stripes_per_partition=*/1);
  StorageNode many(1, 64 << 20, /*stripes_per_partition=*/64);
  one.CreatePartition(kTable, kPart);
  many.CreatePartition(kTable, kPart);

  uint64_t rng = 0xDEADBEEF;
  auto next = [&rng] {
    rng = rng * 6364136223846793005ULL + 1442695040888963407ULL;
    return rng >> 16;
  };
  for (int i = 0; i < 2000; ++i) {
    const std::string key = "k" + std::to_string(next() % 97);
    switch (next() % 5) {
      case 0: {
        const std::string value = "v" + std::to_string(next() % 1000);
        auto a = one.Put(kTable, kPart, key, value);
        auto b = many.Put(kTable, kPart, key, value);
        ASSERT_OK(a.status());
        ASSERT_OK(b.status());
        ASSERT_EQ(*a, *b) << "put stamp diverged at op " << i;
        break;
      }
      case 1: {
        const uint64_t expected = next() % 3 == 0 ? kStampAbsent : next() % 64;
        const std::string value = "c" + std::to_string(next() % 1000);
        auto a = one.ConditionalPut(kTable, kPart, key, expected, value);
        auto b = many.ConditionalPut(kTable, kPart, key, expected, value);
        ASSERT_EQ(a.status().code(), b.status().code()) << "op " << i;
        if (a.ok()) ASSERT_EQ(*a, *b);
        break;
      }
      case 2: {
        Status a = one.Erase(kTable, kPart, key);
        Status b = many.Erase(kTable, kPart, key);
        ASSERT_EQ(a.code(), b.code()) << "op " << i;
        break;
      }
      case 3: {
        const int64_t delta = static_cast<int64_t>(next() % 10);
        auto a = one.AtomicIncrement(kTable, kPart, key, delta);
        auto b = many.AtomicIncrement(kTable, kPart, key, delta);
        ASSERT_EQ(a.status().code(), b.status().code()) << "op " << i;
        if (a.ok()) ASSERT_EQ(*a, *b);
        break;
      }
      default: {
        const bool reverse = next() % 2 == 0;
        const size_t limit = next() % 20;
        auto a = one.Scan(kTable, kPart, "", "", limit, reverse);
        auto b = many.Scan(kTable, kPart, "", "", limit, reverse);
        ASSERT_OK(a.status());
        ASSERT_OK(b.status());
        ASSERT_EQ(a->size(), b->size()) << "op " << i;
        for (size_t j = 0; j < a->size(); ++j) {
          ASSERT_EQ((*a)[j].key, (*b)[j].key);
          ASSERT_EQ((*a)[j].value, (*b)[j].value);
          ASSERT_EQ((*a)[j].stamp, (*b)[j].stamp);
        }
      }
    }
  }
  EXPECT_EQ(one.PartitionSize(kTable, kPart), many.PartitionSize(kTable, kPart));
  ASSERT_OK_AND_ASSIGN(std::vector<KeyCell> dump_a,
                       one.DumpPartition(kTable, kPart));
  ASSERT_OK_AND_ASSIGN(std::vector<KeyCell> dump_b,
                       many.DumpPartition(kTable, kPart));
  ASSERT_EQ(dump_a.size(), dump_b.size());
  for (size_t j = 0; j < dump_a.size(); ++j) {
    EXPECT_EQ(dump_a[j].key, dump_b[j].key);
    EXPECT_EQ(dump_a[j].stamp, dump_b[j].stamp);
  }
}

/// Ordered scans over a heavily-striped partition holding only a handful of
/// keys: most per-stripe runs are empty, so the k-way merge must skip
/// exhausted runs cleanly in both directions and under limits/bounds.
TEST(StoreStripesTest, ScanMergeSkipsEmptyStripes) {
  StorageNode node(0, 64 << 20, /*stripes_per_partition=*/64);
  node.CreatePartition(kTable, kPart);
  const std::vector<std::string> keys = {"ant", "bee", "cat",
                                         "dog", "elk", "fox"};
  // Insert out of order so merge order cannot accidentally be insert order.
  for (const auto& key : {"fox", "bee", "elk", "ant", "dog", "cat"}) {
    ASSERT_OK(node.Put(kTable, kPart, key, std::string("v_") + key).status());
  }

  ASSERT_OK_AND_ASSIGN(std::vector<KeyCell> all,
                       node.Scan(kTable, kPart, "", "", 0));
  ASSERT_EQ(all.size(), keys.size());
  for (size_t i = 0; i < keys.size(); ++i) {
    EXPECT_EQ(all[i].key, keys[i]);
    EXPECT_EQ(all[i].value, "v_" + keys[i]);
  }

  ASSERT_OK_AND_ASSIGN(std::vector<KeyCell> rev,
                       node.Scan(kTable, kPart, "", "", 0, /*reverse=*/true));
  ASSERT_EQ(rev.size(), keys.size());
  for (size_t i = 0; i < keys.size(); ++i) {
    EXPECT_EQ(rev[i].key, keys[keys.size() - 1 - i]);
  }

  ASSERT_OK_AND_ASSIGN(std::vector<KeyCell> limited,
                       node.Scan(kTable, kPart, "", "", 2));
  ASSERT_EQ(limited.size(), 2u);
  EXPECT_EQ(limited[0].key, "ant");
  EXPECT_EQ(limited[1].key, "bee");

  // Half-open [bee, elk): end key excluded, start key included.
  ASSERT_OK_AND_ASSIGN(std::vector<KeyCell> ranged,
                       node.Scan(kTable, kPart, "bee", "elk", 0));
  ASSERT_EQ(ranged.size(), 3u);
  EXPECT_EQ(ranged[0].key, "bee");
  EXPECT_EQ(ranged[1].key, "cat");
  EXPECT_EQ(ranged[2].key, "dog");
}

/// Byte-adjacent keys hash to different stripes, so consecutive cells in
/// sort order straddle stripe boundaries; and each key is overwritten
/// several times, so a merge that surfaced a stale per-stripe copy would
/// emit duplicates. Scan must match a reference std::map walk exactly:
/// every key once, newest value, strictly ascending.
TEST(StoreStripesTest, ScanMergeDeduplicatesOverwritesAcrossStripeBoundaries) {
  StorageNode node(0, 64 << 20, /*stripes_per_partition=*/8);
  node.CreatePartition(kTable, kPart);
  // Tightly-clustered key shapes: shared prefixes, embedded NULs, and a
  // dense numeric run — worst case for merge tie-breaking at boundaries.
  std::vector<std::string> keys = {std::string("k"), std::string("k\0", 2),
                                   std::string("k\0\0", 3),
                                   std::string("k\1", 2), "k0", "k00", "k1"};
  for (int i = 0; i < 40; ++i) {
    keys.push_back("n" + std::to_string(1000 + i));
  }
  std::map<std::string, std::string> reference;
  // Three overwrite rounds in varying orders.
  for (int round = 0; round < 3; ++round) {
    for (size_t i = 0; i < keys.size(); ++i) {
      const std::string& key =
          keys[round % 2 == 0 ? i : keys.size() - 1 - i];
      const std::string value = key + "@" + std::to_string(round);
      ASSERT_OK(node.Put(kTable, kPart, key, value).status());
      reference[key] = value;
    }
  }

  ASSERT_OK_AND_ASSIGN(std::vector<KeyCell> cells,
                       node.Scan(kTable, kPart, "", "", 0));
  ASSERT_EQ(cells.size(), reference.size());
  auto it = reference.begin();
  for (size_t i = 0; i < cells.size(); ++i, ++it) {
    ASSERT_EQ(cells[i].key, it->first) << "position " << i;
    ASSERT_EQ(cells[i].value, it->second) << cells[i].key;
    if (i > 0) ASSERT_LT(cells[i - 1].key, cells[i].key);
  }

  ASSERT_OK_AND_ASSIGN(std::vector<KeyCell> rev,
                       node.Scan(kTable, kPart, "", "", 0, /*reverse=*/true));
  ASSERT_EQ(rev.size(), reference.size());
  auto rit = reference.rbegin();
  for (size_t i = 0; i < rev.size(); ++i, ++rit) {
    ASSERT_EQ(rev[i].key, rit->first) << "reverse position " << i;
  }
}

/// ScanFiltered pushes the predicate through the same merge: `scanned`
/// counts every cell examined in the range (not just matches), the limit
/// applies to *matching* cells, and empty stripes contribute nothing.
TEST(StoreStripesTest, ScanFilteredMergeCountsExaminedCellsWithEmptyStripes) {
  StorageNode node(0, 64 << 20, /*stripes_per_partition=*/32);
  node.CreatePartition(kTable, kPart);
  constexpr int kKeys = 30;
  for (int k = 0; k < kKeys; ++k) {
    char buf[16];
    std::snprintf(buf, sizeof(buf), "key_%03d", k);
    ASSERT_OK(node
                  .Put(kTable, kPart, buf,
                       k % 3 == 0 ? "match" : "miss")
                  .status());
  }

  uint64_t scanned = 0;
  ASSERT_OK_AND_ASSIGN(
      std::vector<KeyCell> matches,
      node.ScanFiltered(kTable, kPart, "", "", 0,
                        [](std::string_view, std::string_view value,
                           std::string* out) {
                          if (value != "match") return false;
                          out->assign(value);
                          return true;
                        },
                        &scanned));
  ASSERT_EQ(matches.size(), 10u);
  EXPECT_EQ(scanned, static_cast<uint64_t>(kKeys));
  for (size_t i = 0; i < matches.size(); ++i) {
    char buf[16];
    std::snprintf(buf, sizeof(buf), "key_%03d", static_cast<int>(i) * 3);
    EXPECT_EQ(matches[i].key, buf);
  }

  // Limit counts matches: stop after 2 matching cells, having examined
  // everything up to and including the second match (keys 000..003).
  scanned = 0;
  ASSERT_OK_AND_ASSIGN(
      std::vector<KeyCell> two,
      node.ScanFiltered(kTable, kPart, "", "", 2,
                        [](std::string_view, std::string_view value,
                           std::string* out) {
                          if (value != "match") return false;
                          out->assign(value);
                          return true;
                        },
                        &scanned));
  ASSERT_EQ(two.size(), 2u);
  EXPECT_EQ(two[0].key, "key_000");
  EXPECT_EQ(two[1].key, "key_003");
  EXPECT_EQ(scanned, 4u);
}

/// Contention counters move when threads actually collide on one stripe.
TEST(StoreStripesTest, ContentionCountersRecordCollisions) {
  StorageNode node(0, 64 << 20, /*stripes_per_partition=*/1);
  node.CreatePartition(kTable, kPart);
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < 2000; ++i) {
        ASSERT_OK(
            node.Put(kTable, kPart, "k" + std::to_string(t), "v").status());
      }
    });
  }
  for (auto& thread : threads) thread.join();
  StorageNodeStats stats = node.stats();
  EXPECT_EQ(stats.puts, 8000u);
  // With one stripe and racing writers some acquisitions must have blocked;
  // lock_wait_ns accompanies every recorded conflict.
  if (stats.stripe_conflicts > 0) {
    EXPECT_GT(stats.lock_wait_ns, 0u);
  }
}

}  // namespace
}  // namespace tell::store
