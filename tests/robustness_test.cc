// Robustness scenarios: multiple concurrent failures, filtered scans at the
// store level, push-down cost accounting, and the remaining TPC-C executor
// code paths (remote payment, by-name order status, empty-district
// delivery).
#include <gtest/gtest.h>

#include "common/serde.h"
#include "db/tell_db.h"
#include "tests/test_util.h"
#include "workload/tpcc/tpcc_driver.h"
#include "workload/tpcc/tpcc_loader.h"

namespace tell {
namespace {

using schema::Tuple;
using schema::Value;

// ---------------------------------------------------------------------------
// Store-level filtered scan

class FilteredScanStoreTest : public ::testing::Test {
 protected:
  FilteredScanStoreTest() {
    store::ClusterOptions options;
    options.num_storage_nodes = 3;
    cluster_ = std::make_unique<store::Cluster>(options);
    table_ = *cluster_->CreateTable("t");
    for (int i = 0; i < 100; ++i) {
      std::string value = (i % 2 == 0) ? "even" : "odd";
      EXPECT_TRUE(
          cluster_->Put(table_, EncodeOrderedU64(i), value).ok());
    }
  }
  std::unique_ptr<store::Cluster> cluster_;
  store::TableId table_;
};

TEST_F(FilteredScanStoreTest, PredicateFiltersServerSide) {
  uint64_t scanned = 0;
  ASSERT_OK_AND_ASSIGN(
      auto cells,
      cluster_->ScanFiltered(
          table_, "", "", 0,
          [](std::string_view, std::string_view value, std::string* out) {
            if (value != "even") return false;
            out->assign(value);
            return true;
          },
          &scanned));
  EXPECT_EQ(cells.size(), 50u);
  EXPECT_EQ(scanned, 100u);  // every cell examined on the nodes
  for (const auto& cell : cells) EXPECT_EQ(cell.value, "even");
}

TEST_F(FilteredScanStoreTest, LimitStopsEarly) {
  ASSERT_OK_AND_ASSIGN(
      auto cells,
      cluster_->ScanFiltered(table_, "", "", 5,
                             [](std::string_view, std::string_view value,
                                std::string* out) {
                               out->assign(value);
                               return true;
                             }));
  EXPECT_EQ(cells.size(), 5u);
}

TEST_F(FilteredScanStoreTest, PushdownChargesOnlyMatchedBytes) {
  sim::VirtualClock clock;
  sim::WorkerMetrics metrics;
  store::ClientOptions client_options;
  store::StorageClient client(cluster_.get(), nullptr, client_options,
                              &clock, &metrics);
  uint64_t bytes_before = metrics.bytes_received;
  ASSERT_OK(client
                .PushdownScan(table_, "", "", 0,
                              [](std::string_view, std::string_view value,
                                 std::string* out) {
                                if (value != "even") return false;
                                out->assign(value);
                                return true;
                              })
                .status());
  uint64_t selective = metrics.bytes_received - bytes_before;
  bytes_before = metrics.bytes_received;
  ASSERT_OK(client
                .PushdownScan(table_, "", "", 0,
                              [](std::string_view, std::string_view value,
                                 std::string* out) {
                                out->assign(value);
                                return true;
                              })
                .status());
  uint64_t full = metrics.bytes_received - bytes_before;
  EXPECT_LT(selective, full);
}

// ---------------------------------------------------------------------------
// Multiple failures

TEST(MultiFailureTest, TwoStorageNodesDieWithRf3) {
  db::TellDbOptions options;
  options.num_processing_nodes = 1;
  options.num_storage_nodes = 5;
  options.replication_factor = 3;
  options.network = sim::NetworkModel::Instant();
  db::TellDb db(options);
  ASSERT_OK(db.CreateTable("t",
                           schema::SchemaBuilder()
                               .AddInt64("id")
                               .SetPrimaryKey({"id"})
                               .Build(),
                           {}));
  auto session = db.OpenSession(0, 0);
  auto table = *db.GetTable(0, "t");
  std::vector<uint64_t> rids;
  {
    tx::Transaction txn(session.get());
    ASSERT_OK(txn.Begin());
    for (int64_t i = 0; i < 30; ++i) {
      Tuple row(1);
      row.Set(0, i);
      ASSERT_OK_AND_ASSIGN(uint64_t rid, txn.Insert(table, row, false));
      rids.push_back(rid);
    }
    ASSERT_OK(txn.Commit());
  }
  // Kill TWO nodes at once; RF3 still has one copy of everything.
  db.cluster()->node(0)->Kill();
  db.cluster()->node(2)->Kill();
  ASSERT_OK_AND_ASSIGN(uint32_t recovered,
                       db.management()->DetectAndRecover());
  EXPECT_EQ(recovered, 2u);
  tx::Transaction txn(session.get());
  ASSERT_OK(txn.Begin());
  for (uint64_t rid : rids) {
    ASSERT_OK_AND_ASSIGN(auto row, txn.Read(table, rid));
    EXPECT_TRUE(row.has_value());
  }
  ASSERT_OK(txn.Commit());
}

TEST(MultiFailureTest, ClientRetryDrivesFailoverWithoutManualRecovery) {
  // Nobody calls DetectAndRecover here: the first request that hits the
  // dead master comes back Unavailable and the client's retry loop triggers
  // the fail-over itself, which must show up in the retry metrics.
  db::TellDbOptions options;
  options.num_processing_nodes = 1;
  options.num_storage_nodes = 3;
  options.replication_factor = 2;
  options.network = sim::NetworkModel::Instant();
  db::TellDb db(options);
  ASSERT_OK(db.CreateTable("t",
                           schema::SchemaBuilder()
                               .AddInt64("id")
                               .SetPrimaryKey({"id"})
                               .Build(),
                           {}));
  auto session = db.OpenSession(0, 0);
  auto table = *db.GetTable(0, "t");
  std::vector<uint64_t> rids;
  {
    tx::Transaction txn(session.get());
    ASSERT_OK(txn.Begin());
    for (int64_t i = 0; i < 30; ++i) {
      Tuple row(1);
      row.Set(0, i);
      ASSERT_OK_AND_ASSIGN(uint64_t rid, txn.Insert(table, row, false));
      rids.push_back(rid);
    }
    ASSERT_OK(txn.Commit());
  }
  db.cluster()->node(1)->Kill();
  tx::Transaction txn(session.get());
  ASSERT_OK(txn.Begin());
  for (uint64_t rid : rids) {
    ASSERT_OK_AND_ASSIGN(auto row, txn.Read(table, rid));
    EXPECT_TRUE(row.has_value());
  }
  ASSERT_OK(txn.Commit());
  EXPECT_GT(session->metrics()->storage_retries, 0u);
  EXPECT_GT(session->metrics()->retry_backoff_ns, 0u);
  EXPECT_EQ(session->metrics()->storage_retries_exhausted, 0u);
}

TEST(MultiFailureTest, Rf1MasterLossIsUnrecoverable) {
  // The flip side of §4.4.2: without replication, losing a master loses
  // acknowledged data — and the system says so instead of pretending.
  db::TellDbOptions options;
  options.num_storage_nodes = 2;
  options.replication_factor = 1;
  options.network = sim::NetworkModel::Instant();
  db::TellDb db(options);
  ASSERT_OK(db.CreateTable("t",
                           schema::SchemaBuilder()
                               .AddInt64("id")
                               .SetPrimaryKey({"id"})
                               .Build(),
                           {}));
  db.cluster()->node(0)->Kill();
  auto result = db.management()->DetectAndRecover();
  EXPECT_FALSE(result.ok());
  EXPECT_TRUE(result.status().IsUnavailable());
}

TEST(MultiFailureTest, PnAndSnFailTogether) {
  db::TellDbOptions options;
  options.num_processing_nodes = 2;
  options.num_storage_nodes = 3;
  options.replication_factor = 2;
  options.network = sim::NetworkModel::Instant();
  db::TellDb db(options);
  ASSERT_OK(db.CreateTable("t",
                           schema::SchemaBuilder()
                               .AddInt64("id")
                               .AddDouble("v")
                               .SetPrimaryKey({"id"})
                               .Build(),
                           {}));
  auto session = db.OpenSession(0, 0);
  auto table = *db.GetTable(0, "t");
  uint64_t rid;
  {
    tx::Transaction txn(session.get());
    ASSERT_OK(txn.Begin());
    Tuple row(2);
    row.Set(0, int64_t{1});
    row.Set(1, 1.0);
    ASSERT_OK_AND_ASSIGN(rid, txn.Insert(table, row));
    ASSERT_OK(txn.Commit());
  }
  // A PN with an in-flight transaction dies, AND a storage node dies.
  auto doomed_session = db.OpenSession(1, 1);
  auto doomed_table = *db.GetTable(1, "t");
  {
    tx::Transaction doomed(doomed_session.get());
    ASSERT_OK(doomed.Begin());
    Tuple row(2);
    row.Set(0, int64_t{2});
    row.Set(1, 2.0);
    ASSERT_OK(doomed.Insert(doomed_table, row, false).status());
    db.cluster()->node(1)->Kill();
    ASSERT_OK(db.KillProcessingNode(1).status());
    // doomed's destructor fires here, after its PN was declared dead —
    // recovery already aborted its tid; the double-abort must be harmless.
  }
  ASSERT_TRUE(db.management()->DetectAndRecover().ok());
  tx::Transaction check(session.get());
  ASSERT_OK(check.Begin());
  ASSERT_OK_AND_ASSIGN(auto row, check.Read(table, rid));
  ASSERT_TRUE(row.has_value());
  EXPECT_EQ(row->GetDouble(1), 1.0);
  ASSERT_OK_AND_ASSIGN(auto ghost,
                       check.ReadByKey(table, {Value(int64_t{2})}));
  EXPECT_FALSE(ghost.has_value());
  ASSERT_OK(check.Commit());
}

// ---------------------------------------------------------------------------
// TPC-C executor paths not covered elsewhere

class TpccPathsTest : public ::testing::Test {
 protected:
  TpccPathsTest() {
    db::TellDbOptions options;
    options.num_processing_nodes = 1;
    options.network = sim::NetworkModel::Instant();
    db_ = std::make_unique<db::TellDb>(options);
    scale_.warehouses = 2;
    scale_.districts_per_warehouse = 2;
    scale_.customers_per_district = 8;
    scale_.items = 20;
    scale_.initial_orders_per_district = 4;
    EXPECT_OK(tpcc::CreateTpccTables(db_.get()));
    EXPECT_OK(tpcc::LoadTpcc(db_.get(), scale_));
    session_ = db_->OpenSession(0, 0);
    tables_ = *tpcc::OpenTpccTables(db_.get(), 0);
    executor_ = std::make_unique<tpcc::TpccExecutor>(session_.get(), tables_);
  }
  std::unique_ptr<db::TellDb> db_;
  tpcc::TpccScale scale_;
  std::unique_ptr<tx::Session> session_;
  tpcc::TpccTables tables_;
  std::unique_ptr<tpcc::TpccExecutor> executor_;
};

TEST_F(TpccPathsTest, RemotePaymentTouchesBothWarehouses) {
  tpcc::PaymentInput input;
  input.warehouse = 1;
  input.district = 1;
  input.customer_warehouse = 2;  // remote customer
  input.customer_district = 2;
  input.customer_id = 3;
  input.amount = 50.0;
  input.remote = true;
  ASSERT_OK_AND_ASSIGN(tpcc::TxnOutcome outcome, executor_->Payment(input));
  ASSERT_TRUE(outcome.committed);
  tx::Transaction txn(session_.get());
  ASSERT_OK(txn.Begin());
  ASSERT_OK_AND_ASSIGN(
      auto home, txn.ReadByKey(tables_.warehouse, {Value(int64_t{1})}));
  EXPECT_DOUBLE_EQ(home->GetDouble(tpcc::col::kWYtd), 300000.0 + 50.0);
  ASSERT_OK_AND_ASSIGN(
      auto customer,
      txn.ReadByKey(tables_.customer,
                    {Value(int64_t{2}), Value(int64_t{2}), Value(int64_t{3})}));
  EXPECT_DOUBLE_EQ(customer->GetDouble(tpcc::col::kCBalance), -10.0 - 50.0);
  ASSERT_OK(txn.Commit());
}

TEST_F(TpccPathsTest, OrderStatusByLastName) {
  tpcc::OrderStatusInput input;
  input.warehouse = 1;
  input.district = 1;
  input.by_last_name = true;
  input.customer_last = tpcc::LastName(0);
  ASSERT_OK_AND_ASSIGN(tpcc::TxnOutcome outcome,
                       executor_->OrderStatus(input));
  EXPECT_TRUE(outcome.committed);
}

TEST_F(TpccPathsTest, DeliveryOnDrainedDistrictsSkips) {
  // Deliver until every new-order row is gone, then once more.
  for (int i = 0; i < scale_.initial_orders_per_district + 2; ++i) {
    ASSERT_OK_AND_ASSIGN(tpcc::TxnOutcome outcome,
                         executor_->Delivery({1, 3}));
    EXPECT_TRUE(outcome.committed);
  }
  tx::Transaction txn(session_.get());
  ASSERT_OK(txn.Begin());
  ASSERT_OK_AND_ASSIGN(
      auto pending,
      txn.ScanIndex(tables_.new_order, -1, {Value(int64_t{1})},
                    {Value(int64_t{2})}, 0));
  EXPECT_TRUE(pending.empty());
  ASSERT_OK(txn.Commit());
}

TEST_F(TpccPathsTest, BackToBackNewOrdersGetSequentialOrderIds) {
  tpcc::NewOrderInput input;
  input.warehouse = 2;
  input.district = 1;
  input.customer = 1;
  input.lines = {{1, 2, 1}};
  ASSERT_OK_AND_ASSIGN(tpcc::TxnOutcome first, executor_->NewOrder(input));
  ASSERT_OK_AND_ASSIGN(tpcc::TxnOutcome second, executor_->NewOrder(input));
  ASSERT_TRUE(first.committed && second.committed);
  tx::Transaction txn(session_.get());
  ASSERT_OK(txn.Begin());
  ASSERT_OK_AND_ASSIGN(
      auto district,
      txn.ReadByKey(tables_.district, {Value(int64_t{2}), Value(int64_t{1})}));
  EXPECT_EQ(district->GetInt(tpcc::col::kDNextOId),
            scale_.initial_orders_per_district + 3);
  ASSERT_OK(txn.Commit());
}

TEST_F(TpccPathsTest, LoaderIsDeterministicPerSeed) {
  // Two clusters loaded with the same seed hold identical district states.
  db::TellDbOptions options;
  options.network = sim::NetworkModel::Instant();
  db::TellDb other(options);
  ASSERT_OK(tpcc::CreateTpccTables(&other));
  ASSERT_OK(tpcc::LoadTpcc(&other, scale_));
  auto other_session = other.OpenSession(0, 0);
  auto other_tables = *tpcc::OpenTpccTables(&other, 0);

  tx::Transaction txn_a(session_.get());
  tx::Transaction txn_b(other_session.get());
  ASSERT_OK(txn_a.Begin());
  ASSERT_OK(txn_b.Begin());
  for (int64_t w = 1; w <= scale_.warehouses; ++w) {
    for (int64_t d = 1; d <= scale_.districts_per_warehouse; ++d) {
      ASSERT_OK_AND_ASSIGN(
          auto a, txn_a.ReadByKey(tables_.district, {Value(w), Value(d)}));
      ASSERT_OK_AND_ASSIGN(
          auto b,
          txn_b.ReadByKey(other_tables.district, {Value(w), Value(d)}));
      EXPECT_TRUE(*a == *b) << "w=" << w << " d=" << d;
    }
  }
  ASSERT_OK(txn_a.Commit());
  ASSERT_OK(txn_b.Commit());
}

}  // namespace
}  // namespace tell
