#include <gtest/gtest.h>

#include "schema/schema.h"
#include "schema/tuple.h"
#include "schema/versioned_record.h"
#include "tests/test_util.h"

namespace tell::schema {
namespace {

Schema MakeSchema() {
  return SchemaBuilder()
      .AddInt64("id")
      .AddString("name")
      .AddDouble("balance")
      .SetPrimaryKey({"id"})
      .Build();
}

TEST(SchemaTest, ColumnLookup) {
  Schema schema = MakeSchema();
  ASSERT_OK_AND_ASSIGN(uint32_t idx, schema.ColumnIndex("balance"));
  EXPECT_EQ(idx, 2u);
  EXPECT_TRUE(schema.ColumnIndex("nope").status().IsNotFound());
  ASSERT_EQ(schema.primary_key().size(), 1u);
  EXPECT_EQ(schema.primary_key()[0], 0u);
}

TEST(TupleTest, SerializeRoundTrip) {
  Schema schema = MakeSchema();
  Tuple tuple(3);
  tuple.Set(0, int64_t{42});
  tuple.Set(1, std::string("alice"));
  tuple.Set(2, 3.5);
  ASSERT_OK_AND_ASSIGN(Tuple copy,
                       Tuple::Deserialize(schema, tuple.Serialize(schema)));
  EXPECT_TRUE(copy == tuple);
  EXPECT_EQ(copy.GetInt(0), 42);
  EXPECT_EQ(copy.GetString(1), "alice");
  EXPECT_EQ(copy.GetDouble(2), 3.5);
}

TEST(TupleTest, NullsSurviveRoundTrip) {
  Schema schema = MakeSchema();
  Tuple tuple(3);
  tuple.Set(0, int64_t{1});
  // name and balance stay NULL.
  ASSERT_OK_AND_ASSIGN(Tuple copy,
                       Tuple::Deserialize(schema, tuple.Serialize(schema)));
  EXPECT_TRUE(ValueIsNull(copy.at(1)));
  EXPECT_TRUE(ValueIsNull(copy.at(2)));
}

TEST(TupleTest, CompareValuesOrdering) {
  EXPECT_LT(CompareValues(Value(int64_t{1}), Value(int64_t{2})), 0);
  EXPECT_EQ(CompareValues(Value(int64_t{2}), Value(2.0)), 0);
  EXPECT_GT(CompareValues(Value(std::string("b")), Value(std::string("a"))),
            0);
  // NULL sorts first.
  EXPECT_LT(CompareValues(Value(std::monostate{}), Value(int64_t{0})), 0);
}

TEST(IndexKeyTest, IntKeysOrderPreserving) {
  auto key = [](int64_t v) {
    return *EncodeIndexKeyValues({Value(v)});
  };
  EXPECT_LT(key(-5), key(0));
  EXPECT_LT(key(0), key(1));
  EXPECT_LT(key(255), key(256));
}

TEST(IndexKeyTest, CompositeKeysOrderPreserving) {
  auto key = [](int64_t a, const std::string& b) {
    return *EncodeIndexKeyValues({Value(a), Value(b)});
  };
  EXPECT_LT(key(1, "zzz"), key(2, "aaa"));
  EXPECT_LT(key(1, "aaa"), key(1, "aab"));
}

TEST(IndexKeyTest, DoubleKeysOrderPreserving) {
  auto key = [](double v) { return *EncodeIndexKeyValues({Value(v)}); };
  EXPECT_LT(key(-10.5), key(-1.0));
  EXPECT_LT(key(-1.0), key(0.0));
  EXPECT_LT(key(0.0), key(0.5));
  EXPECT_LT(key(0.5), key(100.25));
}

TEST(IndexKeyTest, NullSortsFirst) {
  // NULLs are indexable in secondary indexes; they sort before all values.
  ASSERT_OK_AND_ASSIGN(std::string null_key,
                       EncodeIndexKeyValues({Value(std::monostate{})}));
  ASSERT_OK_AND_ASSIGN(std::string int_key,
                       EncodeIndexKeyValues({Value(int64_t{INT64_MIN})}));
  EXPECT_LT(null_key, int_key);
}

TEST(IndexKeyTest, EmbeddedNulByteRejected) {
  std::string bad("a\0b", 3);
  EXPECT_FALSE(EncodeIndexKeyValues({Value(bad)}).ok());
}

TEST(IndexKeyTest, FromTupleSelectsColumns) {
  Tuple tuple(3);
  tuple.Set(0, int64_t{7});
  tuple.Set(1, std::string("x"));
  tuple.Set(2, 1.0);
  ASSERT_OK_AND_ASSIGN(std::string from_tuple, EncodeIndexKey(tuple, {0, 1}));
  ASSERT_OK_AND_ASSIGN(
      std::string direct,
      EncodeIndexKeyValues({Value(int64_t{7}), Value(std::string("x"))}));
  EXPECT_EQ(from_tuple, direct);
}

// ---------------------------------------------------------------------------
// VersionedRecord

TEST(VersionedRecordTest, VisibleVersionPicksHighestInSnapshot) {
  VersionedRecord record;
  record.PutVersion(5, "v5");
  record.PutVersion(10, "v10");
  record.PutVersion(20, "v20");

  SnapshotDescriptor snapshot(12);
  const RecordVersion* v = record.VisibleVersion(snapshot);
  ASSERT_NE(v, nullptr);
  EXPECT_EQ(v->payload, "v10");
}

TEST(VersionedRecordTest, OwnTidVisible) {
  VersionedRecord record;
  record.PutVersion(5, "v5");
  record.PutVersion(99, "mine");
  SnapshotDescriptor snapshot(10);
  const RecordVersion* v = record.VisibleVersion(snapshot, /*own_tid=*/99);
  ASSERT_NE(v, nullptr);
  EXPECT_EQ(v->payload, "mine");
}

TEST(VersionedRecordTest, NothingVisibleBeforeFirstVersion) {
  VersionedRecord record;
  record.PutVersion(50, "v");
  SnapshotDescriptor snapshot(10);
  EXPECT_EQ(record.VisibleVersion(snapshot), nullptr);
}

TEST(VersionedRecordTest, VersionsStaySorted) {
  VersionedRecord record;
  record.PutVersion(10, "b");
  record.PutVersion(5, "a");
  record.PutVersion(20, "c");
  ASSERT_EQ(record.NumVersions(), 3u);
  EXPECT_EQ(record.versions()[0].version, 5u);
  EXPECT_EQ(record.versions()[2].version, 20u);
}

TEST(VersionedRecordTest, RemoveVersion) {
  VersionedRecord record;
  record.PutVersion(5, "a");
  record.PutVersion(10, "b");
  EXPECT_TRUE(record.RemoveVersion(5));
  EXPECT_FALSE(record.RemoveVersion(5));
  EXPECT_EQ(record.NumVersions(), 1u);
}

TEST(VersionedRecordTest, GarbageCollectionKeepsNewestVisibleToAll) {
  VersionedRecord record;
  record.PutVersion(5, "a");
  record.PutVersion(10, "b");
  record.PutVersion(20, "c");
  // lav = 15: versions 5 and 10 are visible to all; only max(C)=10 stays.
  EXPECT_EQ(record.CollectGarbage(15), 1u);
  ASSERT_EQ(record.NumVersions(), 2u);
  EXPECT_EQ(record.versions()[0].version, 10u);
  EXPECT_EQ(record.versions()[1].version, 20u);
}

TEST(VersionedRecordTest, GcKeepsAtLeastOneVersion) {
  VersionedRecord record;
  record.PutVersion(5, "a");
  record.PutVersion(10, "b");
  // Everything below lav: max(C) must survive (§5.4: at least one version
  // of the item always remains).
  EXPECT_EQ(record.CollectGarbage(100), 1u);
  ASSERT_EQ(record.NumVersions(), 1u);
  EXPECT_EQ(record.versions()[0].version, 10u);
}

TEST(VersionedRecordTest, GcNoopWhenNothingCollectable) {
  VersionedRecord record;
  record.PutVersion(50, "a");
  record.PutVersion(60, "b");
  EXPECT_EQ(record.CollectGarbage(10), 0u);
  EXPECT_EQ(record.NumVersions(), 2u);
}

TEST(VersionedRecordTest, TombstoneVisibleAsDeleted) {
  VersionedRecord record;
  record.PutVersion(5, "v");
  record.PutVersion(10, "", /*tombstone=*/true);
  SnapshotDescriptor snapshot(20);
  const RecordVersion* v = record.VisibleVersion(snapshot);
  ASSERT_NE(v, nullptr);
  EXPECT_TRUE(v->tombstone);
  // Older snapshot still sees the record alive.
  SnapshotDescriptor old_snapshot(7);
  const RecordVersion* old_v = record.VisibleVersion(old_snapshot);
  ASSERT_NE(old_v, nullptr);
  EXPECT_FALSE(old_v->tombstone);
}

TEST(VersionedRecordTest, DeadAtDetectsCollectableTombstone) {
  VersionedRecord record;
  record.PutVersion(5, "v");
  record.PutVersion(10, "", /*tombstone=*/true);
  EXPECT_FALSE(record.DeadAt(7));   // delete not yet visible to all
  EXPECT_TRUE(record.DeadAt(10));   // everyone sees the tombstone
}

TEST(VersionedRecordTest, SerializationRoundTrip) {
  VersionedRecord record;
  record.PutVersion(5, "hello");
  record.PutVersion(9, "", true);
  ASSERT_OK_AND_ASSIGN(VersionedRecord copy,
                       VersionedRecord::Deserialize(record.Serialize()));
  ASSERT_EQ(copy.NumVersions(), 2u);
  EXPECT_EQ(copy.versions()[0].payload, "hello");
  EXPECT_TRUE(copy.versions()[1].tombstone);
}

TEST(VersionedRecordTest, CorruptBytesRejected) {
  EXPECT_FALSE(VersionedRecord::Deserialize("garbage!").ok());
}

}  // namespace
}  // namespace tell::schema
