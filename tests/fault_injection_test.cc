// Fault-injection and commit-path hardening tests.
//
// Three layers:
//   1. Unit tests of sim::FaultInjector (determinism, skip/max_fires
//      windows, Disarm).
//   2. Regression tests for the commit-path bugs fixed alongside the
//      retry layer: secondary-index scan truncation under garbage,
//      leaked index entries on commit rollback, record reverts under
//      transient faults, and the commit-flag/commit-manager divergence.
//   3. A seeded chaos suite: randomized fault plans (drops, ambiguous
//      responses, latency spikes, one node kill) against a live cluster,
//      with full invariant checks afterwards.

#include <gtest/gtest.h>

#include <iterator>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "common/random.h"
#include "common/serde.h"
#include "db/tell_db.h"
#include "schema/versioned_record.h"
#include "sim/fault_injector.h"
#include "tests/test_util.h"

namespace tell::tx {
namespace {

using schema::Tuple;
using schema::Value;
using sim::FaultInjector;
using sim::FaultOpClass;
using sim::FaultPlan;
using sim::FaultRule;

// ---------------------------------------------------------------------------
// FaultInjector unit tests
// ---------------------------------------------------------------------------

TEST(FaultInjectorTest, RandomizedPlanIsDeterministicPerSeed) {
  FaultPlan a = FaultPlan::Randomized(42, 4, /*allow_node_kill=*/true);
  FaultPlan b = FaultPlan::Randomized(42, 4, /*allow_node_kill=*/true);
  FaultPlan c = FaultPlan::Randomized(43, 4, /*allow_node_kill=*/true);
  ASSERT_EQ(a.rules.size(), b.rules.size());
  for (size_t i = 0; i < a.rules.size(); ++i) {
    EXPECT_EQ(a.rules[i].ToString(), b.rules[i].ToString());
  }
  // Different seed -> different plan (rule-list fingerprint differs).
  std::string fa, fc;
  for (const auto& r : a.rules) fa += r.ToString() + ";";
  for (const auto& r : c.rules) fc += r.ToString() + ";";
  EXPECT_NE(fa, fc);
}

TEST(FaultInjectorTest, SameSeedSameDecisionStream) {
  FaultPlan plan = FaultPlan::Randomized(7, 3, /*allow_node_kill=*/false);
  FaultInjector x(plan);
  FaultInjector y(plan);
  for (int i = 0; i < 500; ++i) {
    FaultOpClass op = static_cast<FaultOpClass>(1 + (i % 7));
    uint32_t table = 1 + (i % 5);
    FaultInjector::Decision dx = x.OnRequest(op, table);
    FaultInjector::Decision dy = y.OnRequest(op, table);
    EXPECT_EQ(dx.drop_request, dy.drop_request) << "request " << i;
    EXPECT_EQ(dx.drop_response, dy.drop_response) << "request " << i;
    EXPECT_EQ(dx.extra_latency_ns, dy.extra_latency_ns) << "request " << i;
    EXPECT_EQ(dx.kill_node, dy.kill_node) << "request " << i;
  }
  EXPECT_EQ(x.stats().injected, y.stats().injected);
  EXPECT_EQ(x.stats().requests_seen, y.stats().requests_seen);
}

TEST(FaultInjectorTest, SkipWindowAndMaxFires) {
  FaultRule rule;
  rule.kind = FaultRule::Kind::kDropRequest;
  rule.op = FaultOpClass::kGet;
  rule.skip_matches = 2;
  rule.probability = 1.0;
  rule.max_fires = 2;
  FaultInjector injector(FaultPlan{.seed = 1, .rules = {rule}});

  // Non-matching op class never fires.
  EXPECT_FALSE(injector.OnRequest(FaultOpClass::kPut, 1).drop_request);
  // Matches 1-2 are skipped, 3-4 fire, 5+ pass (rule exhausted).
  EXPECT_FALSE(injector.OnRequest(FaultOpClass::kGet, 1).drop_request);
  EXPECT_FALSE(injector.OnRequest(FaultOpClass::kGet, 1).drop_request);
  EXPECT_TRUE(injector.OnRequest(FaultOpClass::kGet, 1).drop_request);
  EXPECT_TRUE(injector.OnRequest(FaultOpClass::kGet, 1).drop_request);
  EXPECT_FALSE(injector.OnRequest(FaultOpClass::kGet, 1).drop_request);
  EXPECT_EQ(injector.stats().injected, 2u);
  EXPECT_EQ(injector.stats().dropped_requests, 2u);
}

TEST(FaultInjectorTest, DisarmStopsInjection) {
  FaultRule rule;
  rule.kind = FaultRule::Kind::kDropRequest;
  rule.probability = 1.0;
  rule.max_fires = 0;  // unlimited
  FaultInjector injector(FaultPlan{.seed = 1, .rules = {rule}});
  EXPECT_TRUE(injector.OnRequest(FaultOpClass::kGet, 1).drop_request);
  injector.Disarm();
  EXPECT_FALSE(injector.OnRequest(FaultOpClass::kGet, 1).drop_request);
  injector.Arm();
  EXPECT_TRUE(injector.OnRequest(FaultOpClass::kGet, 1).drop_request);
}

// ---------------------------------------------------------------------------
// Regression: secondary-index scan truncation under garbage
// ---------------------------------------------------------------------------

// A version-unaware B-tree accumulates obsolete entries faster than lazy GC
// removes them. The scan used to fetch a single window of limit*4+16 tree
// entries and give up; with more garbage than that in front of the live
// entries it silently returned fewer rows than exist. The fixed scan
// continues from the last fetched key until the limit is reached or the
// tree range is exhausted.
TEST(ScanTruncationRegressionTest, ScanSurvivesGarbageHeavyIndexRange) {
  db::TellDbOptions options;
  options.network = sim::NetworkModel::Instant();
  db::TellDb db(options);
  schema::IndexDef by_val;
  by_val.name = "by_val";
  by_val.key_columns = {1};
  by_val.unique = false;
  ASSERT_OK(db.CreateTable("t",
                           schema::SchemaBuilder()
                               .AddInt64("id")
                               .AddString("val")
                               .SetPrimaryKey({"id"})
                               .Build(),
                           {by_val}));
  auto session = db.OpenSession(0, 0);
  auto table = *db.GetTable(0, "t");

  auto pad = [](int i) {
    char buf[8];
    std::snprintf(buf, sizeof(buf), "%04d", i);
    return std::string(buf);
  };

  // 200 rows whose indexed value starts in the scanned range ["k", "l").
  constexpr int kDead = 200;
  std::vector<uint64_t> rids;
  for (int batch = 0; batch < kDead; batch += 25) {
    Transaction txn(session.get());
    ASSERT_OK(txn.Begin());
    for (int i = batch; i < batch + 25; ++i) {
      Tuple t(2);
      t.Set(0, int64_t{i});
      t.Set(1, "ka" + pad(i));
      ASSERT_OK_AND_ASSIGN(uint64_t rid, txn.Insert(table, t, false));
      rids.push_back(rid);
    }
    ASSERT_OK(txn.Commit());
  }
  // Two rounds of updates moving the value out of the range. Round one
  // leaves the insert version alive (eager GC keeps the newest all-visible
  // version); round two prunes it, after which no version carries the "ka"
  // key and the 200 index entries in the range are pure garbage.
  for (int round = 0; round < 2; ++round) {
    for (int batch = 0; batch < kDead; batch += 25) {
      Transaction txn(session.get());
      ASSERT_OK(txn.Begin());
      for (int i = batch; i < batch + 25; ++i) {
        Tuple t(2);
        t.Set(0, int64_t{i});
        t.Set(1, (round == 0 ? "zza" : "zzb") + pad(i));
        ASSERT_OK(txn.Update(table, rids[static_cast<size_t>(i)], t));
      }
      ASSERT_OK(txn.Commit());
    }
  }
  // 8 live rows at the END of the range, behind all the garbage.
  constexpr int kLive = 8;
  {
    Transaction txn(session.get());
    ASSERT_OK(txn.Begin());
    for (int i = 0; i < kLive; ++i) {
      Tuple t(2);
      t.Set(0, int64_t{1000 + i});
      t.Set(1, "kz" + pad(i));
      ASSERT_OK(txn.Insert(table, t, false).status());
    }
    ASSERT_OK(txn.Commit());
  }

  // Garbage-to-live is 25x; the old single-window scan (limit*4+16 = 48
  // entries) saw only garbage and returned 0 rows.
  Transaction txn(session.get());
  ASSERT_OK(txn.Begin());
  ASSERT_OK_AND_ASSIGN(
      auto rows,
      txn.ScanIndex(table, 0, {Value(std::string("k"))},
                    {Value(std::string("l"))}, kLive));
  ASSERT_EQ(rows.size(), static_cast<size_t>(kLive));
  for (int i = 0; i < kLive; ++i) {
    EXPECT_EQ(rows[static_cast<size_t>(i)].second.GetString(1), "kz" + pad(i));
  }
  // And an unlimited scan over the same range agrees.
  ASSERT_OK_AND_ASSIGN(
      auto all,
      txn.ScanIndex(table, 0, {Value(std::string("k"))},
                    {Value(std::string("l"))}, 0));
  EXPECT_EQ(all.size(), static_cast<size_t>(kLive));
  ASSERT_OK(txn.Commit());
}

// ---------------------------------------------------------------------------
// Regression: leaked index entries when a later index insert aborts the
// commit
// ---------------------------------------------------------------------------

// Commit inserts index entries one by one; when entry k fails (unique
// conflict), entries 0..k-1 used to stay in their trees even though the
// transaction aborted. The leaked primary-key entry then made a fast-path
// insert (check_unique=false, the TPC-C loader idiom) of the same key abort
// spuriously with AlreadyExists.
TEST(IndexLeakRegressionTest, AbortedCommitLeavesNoIndexEntries) {
  db::TellDbOptions options;
  options.network = sim::NetworkModel::Instant();
  db::TellDb db(options);
  schema::IndexDef by_email;
  by_email.name = "by_email";
  by_email.key_columns = {1};
  by_email.unique = true;
  ASSERT_OK(db.CreateTable("users",
                           schema::SchemaBuilder()
                               .AddInt64("id")
                               .AddString("email")
                               .SetPrimaryKey({"id"})
                               .Build(),
                           {by_email}));
  auto session = db.OpenSession(0, 0);
  auto table = *db.GetTable(0, "users");

  auto insert = [&](int64_t id, const std::string& email) {
    Transaction txn(session.get());
    EXPECT_TRUE(txn.Begin().ok());
    Tuple t(2);
    t.Set(0, id);
    t.Set(1, email);
    // check_unique=false reaches commit without the read-time probe, so
    // conflicts are resolved purely by the unique index at commit.
    auto rid = txn.Insert(table, t, /*check_unique=*/false);
    EXPECT_TRUE(rid.ok()) << rid.status().ToString();
    return txn.Commit();
  };

  ASSERT_OK(insert(1, "x@example.com"));
  // Loser: same email, different id. The primary-key entry for id=2 goes
  // into the tree first; the unique email entry then conflicts and the
  // commit aborts.
  Status loser = insert(2, "x@example.com");
  ASSERT_FALSE(loser.ok());
  EXPECT_TRUE(loser.IsAborted()) << loser.ToString();
  EXPECT_GE(session->metrics()->index_rollbacks, 1u);

  // The id=2 slot must be reusable: before the fix this aborted with
  // AlreadyExists from the leaked primary-key entry.
  ASSERT_OK(insert(2, "y@example.com"));

  Transaction check(session.get());
  ASSERT_OK(check.Begin());
  ASSERT_OK_AND_ASSIGN(auto row, check.ReadByKey(table, {Value(int64_t{2})}));
  ASSERT_TRUE(row.has_value());
  EXPECT_EQ(row->GetString(1), "y@example.com");
  // The winner's unique entry is the only one under the contended email.
  ASSERT_OK_AND_ASSIGN(
      auto rids,
      check.LookupIndex(table, 0, {Value(std::string("x@example.com"))}));
  EXPECT_EQ(rids.size(), 1u);
  ASSERT_OK(check.Commit());
}

// ---------------------------------------------------------------------------
// Regression: record reverts retried through transient faults
// ---------------------------------------------------------------------------

// RollbackApplied used to abandon a revert on the first Unavailable,
// leaving the aborted transaction's version in the record forever (an
// invisible-but-permanent leak). The unified retry layer now rides through
// transient failures; reverts that still fail are counted in
// tx.rollback_unresolved.
TEST(RollbackRetryTest, RevertSurvivesDroppedRead) {
  auto make_db = [](sim::FaultInjector* injector) {
    db::TellDbOptions options;
    options.network = sim::NetworkModel::Instant();
    options.fault_injector = injector;
    auto db = std::make_unique<db::TellDb>(options);
    schema::IndexDef by_email;
    by_email.name = "by_email";
    by_email.key_columns = {1};
    by_email.unique = true;
    Status st = db->CreateTable("users",
                                schema::SchemaBuilder()
                                    .AddInt64("id")
                                    .AddString("email")
                                    .SetPrimaryKey({"id"})
                                    .Build(),
                                {by_email});
    EXPECT_TRUE(st.ok()) << st.ToString();
    return db;
  };

  // Table ids are assigned deterministically during construction, so a
  // fault-free probe instance tells us the data table id to scope the rule
  // to before the real injector is built.
  const store::TableId data_table =
      (*make_db(nullptr)->GetTable(0, "users"))->meta->data_table;

  // The rule drops the SECOND Get on the data table: the first is the
  // update's read of row A, the second is the rollback's re-read of A after
  // the unique-index conflict aborts the commit.
  sim::FaultInjector injector(FaultPlan{
      .seed = 99,
      .rules = {FaultRule{.kind = FaultRule::Kind::kDropRequest,
                          .op = FaultOpClass::kGet,
                          .table = data_table,
                          .skip_matches = 1,
                          .probability = 1.0,
                          .max_fires = 1}}});
  injector.Disarm();

  auto db_owner = make_db(&injector);
  db::TellDb& db = *db_owner;
  auto session = db.OpenSession(0, 0);
  auto table = *db.GetTable(0, "users");
  ASSERT_EQ(table->meta->data_table, data_table);

  uint64_t rid_a = 0;
  {
    Transaction txn(session.get());
    ASSERT_OK(txn.Begin());
    Tuple a(2);
    a.Set(0, int64_t{1});
    a.Set(1, "a@example.com");
    ASSERT_OK_AND_ASSIGN(rid_a, txn.Insert(table, a, false));
    Tuple b(2);
    b.Set(0, int64_t{2});
    b.Set(1, "b@example.com");
    ASSERT_OK(txn.Insert(table, b, false).status());
    ASSERT_OK(txn.Commit());
  }

  injector.Arm();
  Transaction txn(session.get());
  ASSERT_OK(txn.Begin());
  const commitmgr::Tid doomed_tid = txn.tid();
  // Get #1 on the data table: fetch A for the update (skipped by the rule).
  Tuple a2(2);
  a2.Set(0, int64_t{1});
  a2.Set(1, "a2@example.com");
  ASSERT_OK(txn.Update(table, rid_a, a2));
  // Insert C with B's email; the unique index rejects it at commit, after
  // A's new version was already applied — forcing a rollback whose re-read
  // of A (Get #2) is dropped by the rule.
  Tuple c(2);
  c.Set(0, int64_t{3});
  c.Set(1, "b@example.com");
  ASSERT_OK(txn.Insert(table, c, /*check_unique=*/false).status());
  Status st = txn.Commit();
  injector.Disarm();
  ASSERT_FALSE(st.ok());
  EXPECT_TRUE(st.IsAborted()) << st.ToString();

  // The dropped read was retried, not abandoned.
  EXPECT_GT(session->metrics()->storage_retries, 0u);
  EXPECT_EQ(session->metrics()->rollback_unresolved, 0u);
  EXPECT_GT(injector.stats().dropped_requests, 0u);

  // No version of the aborted transaction survives anywhere in the table.
  ASSERT_OK_AND_ASSIGN(auto cells, db.cluster()->Scan(data_table, "", "", 0));
  for (const auto& cell : cells) {
    if (cell.key.size() != 8) continue;  // meta cells (rid counter)
    ASSERT_OK_AND_ASSIGN(auto record,
                         schema::VersionedRecord::Deserialize(cell.value));
    EXPECT_FALSE(record.HasVersion(doomed_tid))
        << "dangling version of aborted tid " << doomed_tid << " at rid "
        << DecodeOrderedU64(cell.key);
  }

  // A still reads as before the aborted update.
  Transaction check(session.get());
  ASSERT_OK(check.Begin());
  ASSERT_OK_AND_ASSIGN(auto row, check.Read(table, rid_a));
  ASSERT_TRUE(row.has_value());
  EXPECT_EQ(row->GetString(1), "a@example.com");
  ASSERT_OK(check.Commit());
}

// ---------------------------------------------------------------------------
// Regression: commit flag is the source of truth
// ---------------------------------------------------------------------------

// If the log's committed-flag write fails, the transaction used to report
// success to the client while recovery (which reads the log) would treat it
// as uncommitted and roll it back — a lost acknowledged commit. Now the
// client aborts and fully undoes the transaction, agreeing with recovery.
TEST(CommitFlagRegressionTest, FailedFlagWriteAbortsAndRollsBack) {
  // In the default configuration the commit flag is the ONLY unconditional
  // Put a worker session issues (log appends and record/tree writes are
  // conditional), so an op-class filter pins the fault precisely.
  sim::FaultInjector injector(FaultPlan{
      .seed = 5,
      .rules = {FaultRule{.kind = FaultRule::Kind::kDropRequest,
                          .op = FaultOpClass::kPut,
                          .probability = 1.0,
                          .max_fires = 0}}});
  injector.Disarm();

  db::TellDbOptions options;
  options.network = sim::NetworkModel::Instant();
  options.fault_injector = &injector;
  db::TellDb db(options);
  schema::IndexDef by_email;
  by_email.name = "by_email";
  by_email.key_columns = {1};
  by_email.unique = true;
  ASSERT_OK(db.CreateTable("users",
                           schema::SchemaBuilder()
                               .AddInt64("id")
                               .AddString("email")
                               .SetPrimaryKey({"id"})
                               .Build(),
                           {by_email}));
  auto session = db.OpenSession(0, 0);
  auto table = *db.GetTable(0, "users");

  injector.Arm();
  Transaction txn(session.get());
  ASSERT_OK(txn.Begin());
  const commitmgr::Tid tid = txn.tid();
  Tuple t(2);
  t.Set(0, int64_t{1});
  t.Set(1, "x@example.com");
  ASSERT_OK(txn.Insert(table, t, false).status());
  Status st = txn.Commit();
  injector.Disarm();

  ASSERT_FALSE(st.ok());
  EXPECT_TRUE(st.IsAborted()) << st.ToString();
  EXPECT_EQ(txn.state(), TxnState::kAborted);
  EXPECT_EQ(session->metrics()->commit_flag_failures, 1u);
  EXPECT_GT(session->metrics()->storage_retries_exhausted, 0u);
  // Both index entries (primary + unique secondary) were undone.
  EXPECT_GE(session->metrics()->index_rollbacks, 2u);

  // Nothing of the transaction is visible: not the record, not the entries.
  Transaction check(session.get());
  ASSERT_OK(check.Begin());
  ASSERT_OK_AND_ASSIGN(auto row, check.ReadByKey(table, {Value(int64_t{1})}));
  EXPECT_FALSE(row.has_value());
  ASSERT_OK_AND_ASSIGN(
      auto rids,
      check.LookupIndex(table, 0, {Value(std::string("x@example.com"))}));
  EXPECT_TRUE(rids.empty());
  ASSERT_OK(check.Commit());

  // The log agrees with what the client reported: the entry exists but is
  // NOT committed, so a recovery replaying the log treats the transaction
  // as aborted instead of resurrecting it. (Before the fix the client said
  // "committed" here while the log said "uncommitted" — a lost ack.)
  ASSERT_OK_AND_ASSIGN(auto entry,
                       db.transaction_log()->Get(session->client(), tid));
  ASSERT_TRUE(entry.has_value());
  EXPECT_FALSE(entry->committed);
  // Recovery for this PN is a no-op: the tid was completed as aborted at
  // the commit manager and the client already reverted every write.
  ASSERT_OK_AND_ASSIGN(auto stats,
                       db.recovery()->RecoverProcessingNode(
                           session->client(), /*failed_pn=*/0));
  EXPECT_EQ(stats.versions_removed, 0u);
}

// ---------------------------------------------------------------------------
// Chaos suite: randomized fault plans, full invariant check
// ---------------------------------------------------------------------------

class ChaosSuite : public ::testing::TestWithParam<uint64_t> {};

TEST_P(ChaosSuite, InvariantsHoldUnderRandomizedFaults) {
  const uint64_t seed = GetParam();
  constexpr uint32_t kStorageNodes = 4;
  sim::FaultInjector injector(
      FaultPlan::Randomized(seed, kStorageNodes, /*allow_node_kill=*/true));
  injector.Disarm();  // setup runs fault-free

  db::TellDbOptions options;
  options.num_storage_nodes = kStorageNodes;
  options.replication_factor = 2;  // a node kill must be survivable
  options.network = sim::NetworkModel::Instant();
  options.fault_injector = &injector;
  db::TellDb db(options);

  ASSERT_OK(db.CreateTable("accounts",
                           schema::SchemaBuilder()
                               .AddInt64("id")
                               .AddDouble("balance")
                               .SetPrimaryKey({"id"})
                               .Build(),
                           {}));
  schema::IndexDef by_tag;
  by_tag.name = "by_tag";
  by_tag.key_columns = {1};
  by_tag.unique = true;
  ASSERT_OK(db.CreateTable("orders",
                           schema::SchemaBuilder()
                               .AddInt64("id")
                               .AddString("tag")
                               .SetPrimaryKey({"id"})
                               .Build(),
                           {by_tag}));
  // Determinism requires a single-threaded driver: one session, sequential
  // transactions (see FaultInjector's class comment).
  auto session = db.OpenSession(0, 0);
  auto accounts = *db.GetTable(0, "accounts");
  auto orders = *db.GetTable(0, "orders");

  constexpr int kAccounts = 8;
  constexpr double kInitialBalance = 1000.0;
  std::set<commitmgr::Tid> committed;
  std::set<commitmgr::Tid> aborted;
  std::vector<uint64_t> account_rids;
  {
    Transaction txn(session.get());
    ASSERT_OK(txn.Begin());
    for (int64_t i = 0; i < kAccounts; ++i) {
      Tuple t(2);
      t.Set(0, i);
      t.Set(1, kInitialBalance);
      ASSERT_OK_AND_ASSIGN(uint64_t rid, txn.Insert(accounts, t, false));
      account_rids.push_back(rid);
    }
    ASSERT_OK(txn.Commit());
    committed.insert(txn.tid());
  }

  // Model of the expected committed state.
  std::vector<double> expected(kAccounts, kInitialBalance);
  std::map<std::string, uint64_t> live_tags;  // tag -> rid
  int64_t next_order_id = 0;

  injector.Arm();
  Random rng(seed ^ 0xABCD1234u);
  constexpr int kTxns = 250;
  constexpr int kTagPool = 12;
  for (int i = 0; i < kTxns; ++i) {
    Transaction txn(session.get());
    if (!txn.Begin().ok()) continue;
    const uint64_t kind = rng.Uniform(100);
    bool ops_ok = true;
    if (kind < 55 || (kind >= 80 && live_tags.empty())) {
      // Transfer between two distinct accounts.
      const size_t a = rng.Uniform(kAccounts);
      size_t b = rng.Uniform(kAccounts - 1);
      if (b >= a) ++b;
      const double amount = 1.0 + static_cast<double>(rng.Uniform(50));
      double bal_a = 0, bal_b = 0;
      auto ra = txn.Read(accounts, account_rids[a]);
      auto rb = txn.Read(accounts, account_rids[b]);
      ops_ok = ra.ok() && rb.ok() && ra->has_value() && rb->has_value();
      if (ops_ok) {
        bal_a = (*ra)->GetDouble(1);
        bal_b = (*rb)->GetDouble(1);
        Tuple ta(2), tb(2);
        ta.Set(0, static_cast<int64_t>(a));
        ta.Set(1, bal_a - amount);
        tb.Set(0, static_cast<int64_t>(b));
        tb.Set(1, bal_b + amount);
        ops_ok = txn.Update(accounts, account_rids[a], ta).ok() &&
                 txn.Update(accounts, account_rids[b], tb).ok();
      }
      if (!ops_ok) {
        (void)txn.Abort();
        aborted.insert(txn.tid());
        continue;
      }
      if (txn.Commit().ok()) {
        committed.insert(txn.tid());
        expected[a] -= amount;
        expected[b] += amount;
      } else {
        aborted.insert(txn.tid());
      }
    } else if (kind < 80) {
      // Insert an order under a pooled tag; the unique index arbitrates.
      const std::string tag = "tag" + std::to_string(rng.Uniform(kTagPool));
      Tuple t(2);
      t.Set(0, next_order_id++);
      t.Set(1, tag);
      auto rid = txn.Insert(orders, t, /*check_unique=*/false);
      if (!rid.ok()) {
        (void)txn.Abort();
        aborted.insert(txn.tid());
        continue;
      }
      if (txn.Commit().ok()) {
        committed.insert(txn.tid());
        // A committed duplicate would be a unique-enforcement violation.
        ASSERT_EQ(live_tags.count(tag), 0u)
            << "duplicate tag committed: " << tag;
        live_tags[tag] = *rid;
      } else {
        aborted.insert(txn.tid());
      }
    } else {
      // Delete a live order by tag.
      size_t pick = rng.Uniform(live_tags.size());
      auto it = live_tags.begin();
      std::advance(it, static_cast<long>(pick));
      const std::string tag = it->first;
      const uint64_t rid = it->second;
      if (!txn.Delete(orders, rid).ok()) {
        (void)txn.Abort();
        aborted.insert(txn.tid());
        continue;
      }
      if (txn.Commit().ok()) {
        committed.insert(txn.tid());
        live_tags.erase(tag);
      } else {
        aborted.insert(txn.tid());
      }
    }
  }
  injector.Disarm();
  // Let the management node finish any pending fail-over before verifying.
  (void)db.management()->DetectAndRecover();

  const sim::FaultStats stats = injector.stats();
  EXPECT_GT(stats.requests_seen, 0u);
  EXPECT_GT(stats.injected, 0u) << "plan for seed " << seed << " never fired";
  if (stats.dropped_requests + stats.dropped_responses > 0) {
    EXPECT_GT(session->metrics()->storage_retries, 0u);
  }

  // Invariant 1: committed balances match the model exactly and the total
  // is conserved (no lost committed writes, no resurrected aborted ones).
  {
    Transaction txn(session.get());
    ASSERT_OK(txn.Begin());
    double total = 0;
    for (int i = 0; i < kAccounts; ++i) {
      ASSERT_OK_AND_ASSIGN(auto row,
                           txn.Read(accounts, account_rids[static_cast<size_t>(i)]));
      ASSERT_TRUE(row.has_value());
      EXPECT_NEAR(row->GetDouble(1), expected[static_cast<size_t>(i)], 1e-6)
          << "account " << i;
      total += row->GetDouble(1);
    }
    EXPECT_NEAR(total, kAccounts * kInitialBalance, 1e-6);

    // Invariant 2: every pooled tag resolves to exactly the modelled order
    // (no stale unique-index entries, no lost ones).
    for (int k = 0; k < kTagPool; ++k) {
      const std::string tag = "tag" + std::to_string(k);
      ASSERT_OK_AND_ASSIGN(auto rids,
                           txn.LookupIndex(orders, 0, {Value(tag)}));
      auto it = live_tags.find(tag);
      if (it == live_tags.end()) {
        EXPECT_TRUE(rids.empty()) << "stale index entry under " << tag;
      } else {
        ASSERT_EQ(rids.size(), 1u) << "tag " << tag;
        EXPECT_EQ(rids[0], it->second);
      }
    }
    ASSERT_OK(txn.Commit());
    committed.insert(txn.tid());
  }

  // Invariant 3: no dangling uncommitted versions. Every version in the
  // store belongs to a committed transaction, except reverts the rollback
  // path explicitly abandoned (counted in tx.rollback_unresolved).
  uint64_t dangling = 0;
  for (const auto* meta : {accounts->meta, orders->meta}) {
    ASSERT_OK_AND_ASSIGN(auto cells,
                         db.cluster()->Scan(meta->data_table, "", "", 0));
    for (const auto& cell : cells) {
      if (cell.key.size() != 8) continue;  // meta cells (rid counter)
      ASSERT_OK_AND_ASSIGN(auto record,
                           schema::VersionedRecord::Deserialize(cell.value));
      for (const auto& version : record.versions()) {
        if (committed.count(version.version)) continue;
        EXPECT_TRUE(aborted.count(version.version))
            << "version from unknown tid " << version.version;
        ++dangling;
      }
    }
  }
  EXPECT_LE(dangling, session->metrics()->rollback_unresolved)
      << "aborted versions in the store beyond the ones rollback reported "
         "unresolved";
}

// ---------------------------------------------------------------------------
// Commit-manager path under injected faults (delta-protocol begins now run
// through the fault-injectable, retry-covered client like storage requests)
// ---------------------------------------------------------------------------

TEST(CommitMgrFaultTest, BeginRetriesThroughDroppedStarts) {
  sim::FaultInjector injector(
      FaultPlan{.seed = 5,
                .rules = {FaultRule{.kind = FaultRule::Kind::kDropRequest,
                                    .op = FaultOpClass::kCommitMgrStart,
                                    .probability = 1.0,
                                    .max_fires = 2}}});
  injector.Disarm();
  db::TellDbOptions options;
  options.network = sim::NetworkModel::Instant();
  options.fault_injector = &injector;
  db::TellDb db(options);
  auto session = db.OpenSession(0, 0);

  injector.Arm();
  Transaction txn(session.get());
  ASSERT_OK(txn.Begin());
  ASSERT_OK(txn.Commit());
  injector.Disarm();

  EXPECT_EQ(injector.stats().dropped_requests, 2u);
  EXPECT_GE(session->metrics()->cm_retries, 2u);
}

TEST(CommitMgrFaultTest, AmbiguousBeginDoesNotLeakTids) {
  // A begin whose response is lost was already executed at the manager: the
  // retried begin re-sends the same start token and must get the original
  // tid back instead of leaking an active entry that pins the snapshot base
  // (and thus the GC horizon) forever.
  sim::FaultInjector injector(
      FaultPlan{.seed = 7,
                .rules = {FaultRule{.kind = FaultRule::Kind::kDropResponse,
                                    .op = FaultOpClass::kCommitMgrStart,
                                    .probability = 1.0,
                                    .max_fires = 1}}});
  injector.Disarm();
  db::TellDbOptions options;
  options.network = sim::NetworkModel::Instant();
  options.fault_injector = &injector;
  db::TellDb db(options);
  auto session = db.OpenSession(0, 0);

  injector.Arm();
  Transaction txn(session.get());
  ASSERT_OK(txn.Begin());
  ASSERT_OK(txn.Commit());
  injector.Disarm();
  ASSERT_EQ(injector.stats().dropped_responses, 1u);

  // Flush any finish notification still riding with the next begin, then
  // check nothing is pinning the base: it must equal the last tid issued.
  Transaction probe(session.get());
  ASSERT_OK(probe.Begin());
  ASSERT_OK(probe.Commit());
  session->commitmgr_client()->FlushPendingAccounting();
  commitmgr::CommitManager* cm = db.commit_managers()->manager(0);
  EXPECT_EQ(cm->CurrentSnapshot().base(), probe.tid())
      << "a lost begin response leaked an active tid";
}

INSTANTIATE_TEST_SUITE_P(Seeds, ChaosSuite,
                         ::testing::Values(uint64_t{0x5EED0001},
                                           uint64_t{0x5EED0002},
                                           uint64_t{0x5EED0003}));

}  // namespace
}  // namespace tell::tx
