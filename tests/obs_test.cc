// Tests for the observability layer: metrics registry sharding/merge,
// histogram percentiles, phase tracing attribution, JSON export round-trip
// and the docs/METRICS.md coverage contract.
#include <cctype>
#include <fstream>
#include <set>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "obs/bench_export.h"
#include "obs/metrics_registry.h"
#include "obs/trace.h"
#include "sim/histogram.h"
#include "sim/metrics.h"
#include "sim/virtual_clock.h"

namespace tell {
namespace {

// ---------------------------------------------------------------------------
// Minimal JSON parser — just enough for the exporter's output (objects,
// arrays, strings with the writer's escapes, numbers, bools).
// ---------------------------------------------------------------------------

struct JsonValue {
  enum Type { kNull, kBool, kNumber, kString, kArray, kObject };
  Type type = kNull;
  bool boolean = false;
  double number = 0;
  std::string str;
  std::vector<JsonValue> array;
  std::vector<std::pair<std::string, JsonValue>> object;

  const JsonValue* Get(const std::string& key) const {
    for (const auto& [k, v] : object) {
      if (k == key) return &v;
    }
    return nullptr;
  }
};

class JsonParser {
 public:
  explicit JsonParser(const std::string& text) : text_(text) {}

  bool Parse(JsonValue* out) {
    SkipWs();
    if (!ParseValue(out)) return false;
    SkipWs();
    return pos_ == text_.size();
  }

 private:
  void SkipWs() {
    while (pos_ < text_.size() && (text_[pos_] == ' ' || text_[pos_] == '\n' ||
                                   text_[pos_] == '\r' || text_[pos_] == '\t')) {
      ++pos_;
    }
  }

  bool Consume(char c) {
    SkipWs();
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  bool ParseString(std::string* out) {
    if (!Consume('"')) return false;
    out->clear();
    while (pos_ < text_.size() && text_[pos_] != '"') {
      char c = text_[pos_++];
      if (c == '\\' && pos_ < text_.size()) {
        char e = text_[pos_++];
        switch (e) {
          case 'n': out->push_back('\n'); break;
          case 'r': out->push_back('\r'); break;
          case 't': out->push_back('\t'); break;
          case 'u':
            // The writer only emits \u00xx for control bytes; decode as-is.
            if (pos_ + 4 > text_.size()) return false;
            out->push_back(static_cast<char>(
                std::stoi(text_.substr(pos_, 4), nullptr, 16)));
            pos_ += 4;
            break;
          default: out->push_back(e);
        }
      } else {
        out->push_back(c);
      }
    }
    return pos_ < text_.size() && text_[pos_++] == '"';
  }

  bool ParseValue(JsonValue* out) {
    SkipWs();
    if (pos_ >= text_.size()) return false;
    char c = text_[pos_];
    if (c == '{') {
      ++pos_;
      out->type = JsonValue::kObject;
      SkipWs();
      if (Consume('}')) return true;
      while (true) {
        std::string key;
        if (!ParseString(&key) || !Consume(':')) return false;
        JsonValue value;
        if (!ParseValue(&value)) return false;
        out->object.emplace_back(std::move(key), std::move(value));
        if (Consume(',')) continue;
        return Consume('}');
      }
    }
    if (c == '[') {
      ++pos_;
      out->type = JsonValue::kArray;
      SkipWs();
      if (Consume(']')) return true;
      while (true) {
        JsonValue value;
        if (!ParseValue(&value)) return false;
        out->array.push_back(std::move(value));
        if (Consume(',')) continue;
        return Consume(']');
      }
    }
    if (c == '"') {
      out->type = JsonValue::kString;
      return ParseString(&out->str);
    }
    if (text_.compare(pos_, 4, "true") == 0) {
      out->type = JsonValue::kBool;
      out->boolean = true;
      pos_ += 4;
      return true;
    }
    if (text_.compare(pos_, 5, "false") == 0) {
      out->type = JsonValue::kBool;
      pos_ += 5;
      return true;
    }
    if (text_.compare(pos_, 4, "null") == 0) {
      pos_ += 4;
      return true;
    }
    size_t end = pos_;
    while (end < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[end])) ||
            text_[end] == '-' || text_[end] == '+' || text_[end] == '.' ||
            text_[end] == 'e' || text_[end] == 'E')) {
      ++end;
    }
    if (end == pos_) return false;
    out->type = JsonValue::kNumber;
    out->number = std::stod(text_.substr(pos_, end - pos_));
    pos_ = end;
    return true;
  }

  const std::string& text_;
  size_t pos_ = 0;
};

// ---------------------------------------------------------------------------
// MetricsRegistry
// ---------------------------------------------------------------------------

TEST(MetricsRegistryTest, MergesRacingShards) {
  obs::MetricsRegistry registry(/*builtins=*/false);
  obs::MetricId counter = registry.AddCounter("test.ops", "ops", "test");
  obs::MetricId hist = registry.AddHistogram("test.latency", "ns", "test");

  constexpr int kWorkers = 4;
  constexpr int kPerWorker = 20000;
  std::vector<obs::MetricsRegistry::Shard*> shards;
  for (int w = 0; w < kWorkers; ++w) shards.push_back(registry.NewShard());

  std::vector<std::thread> threads;
  for (int w = 0; w < kWorkers; ++w) {
    threads.emplace_back([&, w] {
      for (int i = 0; i < kPerWorker; ++i) {
        shards[w]->Add(counter);
        shards[w]->Record(hist, static_cast<uint64_t>(i % 1000) + 1);
      }
    });
  }
  for (auto& t : threads) t.join();

  obs::MetricsSnapshot snapshot = registry.Snapshot();
  EXPECT_EQ(snapshot.Scalar("test.ops"),
            std::optional<uint64_t>(kWorkers * kPerWorker));
  const sim::Histogram* h = snapshot.Hist("test.latency");
  ASSERT_NE(h, nullptr);
  EXPECT_EQ(h->count(), static_cast<uint64_t>(kWorkers * kPerWorker));
  EXPECT_EQ(h->min(), 1u);
  EXPECT_EQ(h->max(), 1000u);
}

TEST(MetricsRegistryTest, RegistrationIsIdempotentAndKindChecked) {
  obs::MetricsRegistry registry(/*builtins=*/false);
  obs::MetricId a = registry.AddCounter("x", "ops", "first");
  obs::MetricId b = registry.AddCounter("x", "other", "second");
  EXPECT_EQ(a, b);
  EXPECT_EQ(registry.metrics().size(), 1u);
  EXPECT_EQ(registry.metrics()[0].unit, "ops");
  EXPECT_TRUE(registry.Find("x").has_value());
  EXPECT_FALSE(registry.Find("y").has_value());
}

TEST(MetricsRegistryTest, GaugesAreAbsolute) {
  obs::MetricsRegistry registry(/*builtins=*/false);
  obs::MetricId g = registry.AddGauge("test.gauge", "items", "test");
  registry.SetGauge(g, 7);
  registry.SetGauge(g, 5);  // last write wins, no accumulation
  EXPECT_EQ(registry.Snapshot().Scalar("test.gauge"),
            std::optional<uint64_t>(5));
  EXPECT_TRUE(registry.SetGauge("test.gauge", 9));
  EXPECT_FALSE(registry.SetGauge("missing", 1));
}

TEST(MetricsRegistryTest, AbsorbsWorkerMetricsThroughDescriptorTables) {
  obs::MetricsRegistry registry;  // builtin catalog
  sim::WorkerMetrics worker;
  worker.committed = 11;
  worker.aborted = 3;
  worker.buffer_hits = 5;
  worker.response_time.Record(1000);
  worker.phase_ns[static_cast<size_t>(sim::TxnPhase::kCommit)].Record(42);
  registry.AbsorbWorker(worker);
  registry.AbsorbWorker(worker);  // accumulates like WorkerMetrics::Merge

  obs::MetricsSnapshot snapshot = registry.Snapshot();
  EXPECT_EQ(snapshot.Scalar("tx.committed"), std::optional<uint64_t>(22));
  EXPECT_EQ(snapshot.Scalar("tx.aborted"), std::optional<uint64_t>(6));
  EXPECT_EQ(snapshot.Scalar("buffer.hits"), std::optional<uint64_t>(10));
  const sim::Histogram* resp = snapshot.Hist("tx.response_time");
  ASSERT_NE(resp, nullptr);
  EXPECT_EQ(resp->count(), 2u);
  const sim::Histogram* commit = snapshot.Hist("tx.phase.commit");
  ASSERT_NE(commit, nullptr);
  EXPECT_EQ(commit->count(), 2u);
}

// ---------------------------------------------------------------------------
// Histogram percentiles
// ---------------------------------------------------------------------------

TEST(HistogramTest, PercentilesWithinBucketError) {
  sim::Histogram h;
  for (uint64_t v = 1; v <= 10000; ++v) h.Record(v);
  EXPECT_EQ(h.count(), 10000u);
  EXPECT_EQ(h.min(), 1u);
  EXPECT_EQ(h.max(), 10000u);
  EXPECT_NEAR(h.Mean(), 5000.5, 0.5);
  // 4 buckets per doubling => <= ~19% relative bucket error.
  for (double p : {50.0, 95.0, 99.0}) {
    double exact = p / 100.0 * 10000.0;
    double approx = static_cast<double>(h.Percentile(p));
    EXPECT_NEAR(approx, exact, exact * 0.19)
        << "p" << p << " = " << approx << " vs exact " << exact;
  }
  EXPECT_LE(h.Percentile(50), h.Percentile(95));
  EXPECT_LE(h.Percentile(95), h.Percentile(99));
}

TEST(HistogramTest, MergePreservesMoments) {
  sim::Histogram a, b;
  for (uint64_t v = 1; v <= 100; ++v) a.Record(v);
  for (uint64_t v = 101; v <= 200; ++v) b.Record(v);
  a.Merge(b);
  EXPECT_EQ(a.count(), 200u);
  EXPECT_EQ(a.min(), 1u);
  EXPECT_EQ(a.max(), 200u);
  EXPECT_NEAR(a.Mean(), 100.5, 1e-9);
}

// ---------------------------------------------------------------------------
// TxnTracer
// ---------------------------------------------------------------------------

TEST(TxnTracerTest, NestedSpansAttributeExclusively) {
  sim::VirtualClock clock;
  sim::WorkerMetrics metrics;
  obs::TxnTracer tracer(&clock, &metrics);

  tracer.BeginTxn();
  tracer.Enter(sim::TxnPhase::kRead);
  clock.Advance(100);
  tracer.Enter(sim::TxnPhase::kIndexLookup);  // suspends kRead
  clock.Advance(50);
  tracer.Exit();
  clock.Advance(25);
  tracer.Exit();
  clock.Advance(10);  // outside any span: unattributed
  tracer.Enter(sim::TxnPhase::kCommit);
  clock.Advance(5);
  tracer.Exit();

  EXPECT_EQ(tracer.accumulated_ns(sim::TxnPhase::kRead), 125u);
  EXPECT_EQ(tracer.accumulated_ns(sim::TxnPhase::kIndexLookup), 50u);
  EXPECT_EQ(tracer.accumulated_ns(sim::TxnPhase::kCommit), 5u);
  EXPECT_EQ(tracer.depth(), 0u);

  tracer.EndTxn();
  auto count_of = [&](sim::TxnPhase p) {
    return metrics.phase_ns[static_cast<size_t>(p)].count();
  };
  EXPECT_EQ(count_of(sim::TxnPhase::kRead), 1u);
  EXPECT_EQ(count_of(sim::TxnPhase::kIndexLookup), 1u);
  EXPECT_EQ(count_of(sim::TxnPhase::kCommit), 1u);
  EXPECT_EQ(count_of(sim::TxnPhase::kWrite), 0u);
  // One sample per phase per transaction; the mean IS the attributed time.
  EXPECT_NEAR(
      metrics.phase_ns[static_cast<size_t>(sim::TxnPhase::kRead)].Mean(), 125,
      1e-9);

  tracer.EndTxn();  // idempotent (abort path + destructor both call it)
  EXPECT_EQ(count_of(sim::TxnPhase::kRead), 1u);
}

TEST(TxnTracerTest, SpansOutsideTransactionAreNoOps) {
  sim::VirtualClock clock;
  sim::WorkerMetrics metrics;
  obs::TxnTracer tracer(&clock, &metrics);
  {
    obs::PhaseScope scope(&tracer, sim::TxnPhase::kRead);
    clock.Advance(100);
  }
  tracer.EndTxn();
  EXPECT_EQ(metrics.phase_ns[static_cast<size_t>(sim::TxnPhase::kRead)].count(),
            0u);
}

TEST(TxnTracerTest, BeginTxnResetsPreviousAccumulation) {
  sim::VirtualClock clock;
  sim::WorkerMetrics metrics;
  obs::TxnTracer tracer(&clock, &metrics);
  tracer.BeginTxn();
  {
    obs::PhaseScope scope(&tracer, sim::TxnPhase::kValidate);
    clock.Advance(30);
  }
  tracer.EndTxn();
  tracer.BeginTxn();
  EXPECT_EQ(tracer.accumulated_ns(sim::TxnPhase::kValidate), 0u);
  tracer.EndTxn();
  EXPECT_EQ(
      metrics.phase_ns[static_cast<size_t>(sim::TxnPhase::kValidate)].count(),
      1u);
}

// ---------------------------------------------------------------------------
// JSON export round-trip
// ---------------------------------------------------------------------------

TEST(BenchExportTest, JsonRoundTrip) {
  obs::MetricsRegistry registry;
  sim::WorkerMetrics worker;
  worker.committed = 42;
  worker.response_time.Record(5000);
  worker.response_time.Record(7000);
  registry.AbsorbWorker(worker);
  registry.SetGauge("commitmgr.commits", 42);

  obs::BenchReport report("roundtrip");
  report.AddConfig("mix", "write \"intensive\"\n");
  obs::BenchRun run;
  run.label = "r0";
  run.derived.emplace_back("tpmc", 123.5);
  run.snapshot = registry.Snapshot();
  run.nodes.push_back({"sn0", {{"gets", 9}}});
  report.AddRun(std::move(run));

  JsonValue doc;
  ASSERT_TRUE(JsonParser(report.ToJson()).Parse(&doc));
  ASSERT_EQ(doc.type, JsonValue::kObject);
  EXPECT_EQ(doc.Get("schema_version")->number, 1);
  EXPECT_EQ(doc.Get("bench")->str, "roundtrip");
  EXPECT_EQ(doc.Get("config")->Get("mix")->str, "write \"intensive\"\n");

  const JsonValue* runs = doc.Get("runs");
  ASSERT_NE(runs, nullptr);
  ASSERT_EQ(runs->array.size(), 1u);
  const JsonValue& r = runs->array[0];
  EXPECT_EQ(r.Get("label")->str, "r0");
  EXPECT_EQ(r.Get("derived")->Get("tpmc")->number, 123.5);
  EXPECT_EQ(r.Get("counters")->Get("tx.committed")->number, 42);
  EXPECT_EQ(r.Get("gauges")->Get("commitmgr.commits")->number, 42);
  const JsonValue* resp = r.Get("histograms")->Get("tx.response_time");
  ASSERT_NE(resp, nullptr);
  EXPECT_EQ(resp->Get("count")->number, 2);
  EXPECT_EQ(resp->Get("unit")->str, "ns");
  EXPECT_EQ(resp->Get("min")->number, 5000);
  EXPECT_EQ(resp->Get("max")->number, 7000);
  EXPECT_NEAR(resp->Get("mean")->number, 6000, 1e-6);
  EXPECT_EQ(r.Get("nodes")->Get("sn0")->Get("gets")->number, 9);

  // Every registered metric appears in the run, even untouched ones.
  size_t emitted = r.Get("counters")->object.size() +
                   r.Get("gauges")->object.size() +
                   r.Get("histograms")->object.size();
  EXPECT_EQ(emitted, registry.metrics().size());
}

TEST(BenchExportTest, WriteFileRoundTrip) {
  obs::MetricsRegistry registry;
  obs::BenchReport report("file_roundtrip");
  obs::BenchRun run;
  run.label = "only";
  run.snapshot = registry.Snapshot();
  report.AddRun(std::move(run));

  std::string dir = ::testing::TempDir();
  auto path = report.WriteFile(dir);
  ASSERT_TRUE(path.ok()) << path.status().ToString();
  EXPECT_NE(path->find("BENCH_file_roundtrip.json"), std::string::npos);

  std::ifstream in(*path);
  ASSERT_TRUE(in.good());
  std::stringstream buffer;
  buffer << in.rdbuf();
  JsonValue doc;
  ASSERT_TRUE(JsonParser(buffer.str()).Parse(&doc));
  EXPECT_EQ(doc.Get("bench")->str, "file_roundtrip");
  ASSERT_EQ(doc.Get("runs")->array.size(), 1u);
  EXPECT_EQ(doc.Get("runs")->array[0].Get("label")->str, "only");
}

// ---------------------------------------------------------------------------
// docs/METRICS.md coverage: the builtin catalog and the document must list
// exactly the same metric names (both directions).
// ---------------------------------------------------------------------------

TEST(MetricsDocTest, DocumentCoversRegistryExactly) {
  std::string path = std::string(TELL_SOURCE_DIR) + "/docs/METRICS.md";
  std::ifstream in(path);
  ASSERT_TRUE(in.good()) << "cannot open " << path;

  // Documented names: the first `backticked` token of each table row.
  std::set<std::string> documented;
  std::string line;
  while (std::getline(in, line)) {
    if (line.rfind("| `", 0) != 0) continue;
    size_t start = line.find('`') + 1;
    size_t end = line.find('`', start);
    ASSERT_NE(end, std::string::npos) << "malformed row: " << line;
    documented.insert(line.substr(start, end - start));
  }

  std::set<std::string> registered;
  obs::MetricsRegistry registry;  // builtin catalog
  for (const obs::MetricDef& def : registry.metrics()) {
    registered.insert(def.name);
  }

  for (const std::string& name : registered) {
    EXPECT_TRUE(documented.count(name))
        << "metric " << name << " is registered but missing from "
        << "docs/METRICS.md";
  }
  for (const std::string& name : documented) {
    EXPECT_TRUE(registered.count(name))
        << "docs/METRICS.md documents " << name
        << " which is not registered (stale doc?)";
  }
}

// docs/RUNTIME.md names the executor's scheduler gauges inline; every
// `exec.*` token it mentions must exist in the registry (so the runtime
// doc cannot drift from the catalog), and the registry's exec.* gauges
// must all be mentioned (the doc promises the complete list).
TEST(MetricsDocTest, RuntimeDocExecGaugesMatchRegistry) {
  std::string path = std::string(TELL_SOURCE_DIR) + "/docs/RUNTIME.md";
  std::ifstream in(path);
  ASSERT_TRUE(in.good()) << "cannot open " << path;

  std::set<std::string> mentioned;
  std::string line;
  while (std::getline(in, line)) {
    size_t pos = 0;
    while ((pos = line.find("`exec.", pos)) != std::string::npos) {
      size_t start = pos + 1;
      size_t end = line.find('`', start);
      if (end == std::string::npos) break;
      std::string token = line.substr(start, end - start);
      // Skip prose references like `exec.*`; keep concrete gauge names.
      if (token.find('*') == std::string::npos) mentioned.insert(token);
      pos = end + 1;
    }
  }
  ASSERT_FALSE(mentioned.empty()) << "docs/RUNTIME.md no longer names the "
                                  << "exec.* gauges";

  std::set<std::string> registered;
  obs::MetricsRegistry registry;
  for (const obs::MetricDef& def : registry.metrics()) {
    if (def.name.rfind("exec.", 0) == 0) registered.insert(def.name);
  }

  for (const std::string& name : mentioned) {
    EXPECT_TRUE(registered.count(name))
        << "docs/RUNTIME.md mentions " << name
        << " which is not a registered gauge";
  }
  for (const std::string& name : registered) {
    EXPECT_TRUE(mentioned.count(name))
        << "exec gauge " << name << " is missing from docs/RUNTIME.md";
  }
}

// docs/RECOVERY.md promises the complete list of replication/migration
// observability: every concrete `commitmgr.repl.*`, `store.migration.*`
// and `fault.leader_kills` token it mentions must be a registered gauge,
// and every such registered gauge must be mentioned in the document.
TEST(MetricsDocTest, RecoveryDocGaugesMatchRegistry) {
  std::string path = std::string(TELL_SOURCE_DIR) + "/docs/RECOVERY.md";
  std::ifstream in(path);
  ASSERT_TRUE(in.good()) << "cannot open " << path;

  const char* kPrefixes[] = {"commitmgr.repl.", "store.migration.",
                             "fault.leader_kills"};
  std::set<std::string> mentioned;
  std::string line;
  while (std::getline(in, line)) {
    size_t pos = 0;
    while ((pos = line.find('`', pos)) != std::string::npos) {
      size_t start = pos + 1;
      size_t end = line.find('`', start);
      if (end == std::string::npos) break;
      std::string token = line.substr(start, end - start);
      if (token.find('*') == std::string::npos) {
        for (const char* prefix : kPrefixes) {
          if (token.rfind(prefix, 0) == 0) {
            mentioned.insert(token);
            break;
          }
        }
      }
      pos = end + 1;
    }
  }
  ASSERT_FALSE(mentioned.empty()) << "docs/RECOVERY.md no longer names the "
                                  << "replication/migration gauges";

  std::set<std::string> registered;
  obs::MetricsRegistry registry;
  for (const obs::MetricDef& def : registry.metrics()) {
    for (const char* prefix : kPrefixes) {
      if (def.name.rfind(prefix, 0) == 0) {
        registered.insert(def.name);
        break;
      }
    }
  }

  for (const std::string& name : mentioned) {
    EXPECT_TRUE(registered.count(name))
        << "docs/RECOVERY.md mentions " << name
        << " which is not a registered gauge";
  }
  for (const std::string& name : registered) {
    EXPECT_TRUE(mentioned.count(name))
        << "gauge " << name << " is missing from docs/RECOVERY.md";
  }
}

}  // namespace
}  // namespace tell
