// Cross-module integration tests: full TPC-C under concurrency with
// consistency audits, elasticity during load, mixed SQL/native access, and
// failures injected mid-workload.
#include <gtest/gtest.h>

#include <atomic>
#include <thread>

#include "tests/test_util.h"
#include "workload/tpcc/tpcc_driver.h"
#include "workload/tpcc/tpcc_loader.h"

namespace tell {
namespace {

using schema::Tuple;
using schema::Value;

tpcc::TpccScale SmallScale() {
  tpcc::TpccScale scale;
  scale.warehouses = 4;
  scale.districts_per_warehouse = 4;
  scale.customers_per_district = 16;
  scale.items = 80;
  scale.initial_orders_per_district = 8;
  return scale;
}

class IntegrationTest : public ::testing::Test {
 protected:
  IntegrationTest() {
    db::TellDbOptions options;
    options.num_processing_nodes = 2;
    options.num_storage_nodes = 3;
    options.replication_factor = 2;
    options.network = sim::NetworkModel::Instant();
    db_ = std::make_unique<db::TellDb>(options);
    scale_ = SmallScale();
    EXPECT_OK(tpcc::CreateTpccTables(db_.get()));
    EXPECT_OK(tpcc::LoadTpcc(db_.get(), scale_));
  }

  /// TPC-C consistency conditions over all warehouses/districts:
  ///  (1) d_next_o_id - 1 == max(o_id) == max(no_o_id where present),
  ///  (2) every order has exactly o_ol_cnt order lines.
  void AuditConsistency() {
    auto session = db_->OpenSession(0, 900);
    auto tables = *tpcc::OpenTpccTables(db_.get(), 0);
    tx::Transaction txn(session.get());
    ASSERT_OK(txn.Begin());
    for (int64_t w = 1; w <= scale_.warehouses; ++w) {
      for (int64_t d = 1; d <= scale_.districts_per_warehouse; ++d) {
        ASSERT_OK_AND_ASSIGN(
            std::optional<Tuple> district,
            txn.ReadByKey(tables.district, {Value(w), Value(d)}));
        ASSERT_TRUE(district.has_value());
        int64_t next_o_id = district->GetInt(tpcc::col::kDNextOId);
        ASSERT_OK_AND_ASSIGN(
            auto orders,
            txn.ScanIndex(tables.orders, -1, {Value(w), Value(d)},
                          {Value(w), Value(d + 1)}, 0));
        int64_t max_o_id = 0;
        for (const auto& [rid, order] : orders) {
          max_o_id = std::max(max_o_id, order.GetInt(tpcc::col::kOId));
        }
        EXPECT_EQ(next_o_id, max_o_id + 1) << "w=" << w << " d=" << d;
        // Condition 2 on a sample of orders (first / last).
        for (const auto& [rid, order] : orders) {
          int64_t o_id = order.GetInt(tpcc::col::kOId);
          if (o_id != max_o_id && o_id != 1) continue;
          int64_t ol_cnt = order.GetInt(tpcc::col::kOOlCnt);
          ASSERT_OK_AND_ASSIGN(
              auto lines,
              txn.ScanIndex(tables.order_line, -1,
                            {Value(w), Value(d), Value(o_id)},
                            {Value(w), Value(d), Value(o_id + 1)}, 0));
          EXPECT_EQ(static_cast<int64_t>(lines.size()), ol_cnt)
              << "w=" << w << " d=" << d << " o=" << o_id;
        }
      }
    }
    ASSERT_OK(txn.Commit());
  }

  std::unique_ptr<db::TellDb> db_;
  tpcc::TpccScale scale_;
};

TEST_F(IntegrationTest, ConcurrentTpccKeepsInvariants) {
  tpcc::TellBackend backend(db_.get());
  tpcc::DriverOptions options;
  options.scale = scale_;
  options.mix = tpcc::Mix::kWriteIntensive;
  options.num_workers = 6;
  options.duration_virtual_ms = 40;
  ASSERT_OK_AND_ASSIGN(tpcc::DriverResult result,
                       tpcc::RunTpcc(&backend, options));
  EXPECT_GT(result.committed, 100u);
  AuditConsistency();
}

TEST_F(IntegrationTest, ElasticityMidWorkload) {
  // Run a short workload, grow the cluster by two PNs, run again with more
  // workers — the new PNs serve immediately and invariants hold.
  tpcc::TellBackend backend(db_.get());
  tpcc::DriverOptions options;
  options.scale = scale_;
  options.num_workers = 4;
  options.duration_virtual_ms = 20;
  ASSERT_OK(tpcc::RunTpcc(&backend, options).status());

  db_->AddProcessingNode();
  db_->AddProcessingNode();
  ASSERT_EQ(db_->num_processing_nodes(), 4u);

  tpcc::TellBackend grown(db_.get());
  options.num_workers = 8;
  ASSERT_OK_AND_ASSIGN(tpcc::DriverResult result,
                       tpcc::RunTpcc(&grown, options));
  EXPECT_GT(result.committed, 0u);
  AuditConsistency();
}

TEST_F(IntegrationTest, StorageFailoverMidWorkload) {
  std::atomic<bool> stop{false};
  std::atomic<uint64_t> committed{0};
  std::thread worker([&] {
    auto session = db_->OpenSession(0, 1);
    auto tables = *tpcc::OpenTpccTables(db_.get(), 0);
    tpcc::TpccExecutor executor(session.get(), tables);
    tpcc::InputGenerator generator(scale_, tpcc::Mix::kWriteIntensive, 5, 1);
    while (!stop.load()) {
      auto outcome = executor.Execute(generator.Next());
      ASSERT_TRUE(outcome.ok()) << outcome.status().ToString();
      if (outcome->committed) committed.fetch_add(1);
    }
  });
  // Let it run a moment, then kill a storage node under it.
  while (committed.load() < 20) std::this_thread::yield();
  ASSERT_OK(db_->KillStorageNode(2));
  uint64_t at_failure = committed.load();
  while (committed.load() < at_failure + 20) std::this_thread::yield();
  stop.store(true);
  worker.join();
  EXPECT_GT(committed.load(), at_failure) << "no progress after fail-over";
  AuditConsistency();
}

TEST_F(IntegrationTest, SqlOverTpccData) {
  // The SQL front-end works on the TPC-C tables the native loader built.
  auto session = db_->OpenSession(0, 7);
  auto count = db_->AutoCommitSql(session.get(),
                                  "SELECT COUNT(*) FROM warehouse");
  ASSERT_TRUE(count.ok()) << count.status().ToString();
  EXPECT_EQ(std::get<int64_t>(count->rows[0].at(0)),
            static_cast<int64_t>(scale_.warehouses));

  auto join_free = db_->AutoCommitSql(
      session.get(),
      "SELECT d_id, d_next_o_id FROM district WHERE d_w_id = 1 ORDER BY "
      "d_id");
  ASSERT_TRUE(join_free.ok());
  EXPECT_EQ(join_free->rows.size(), scale_.districts_per_warehouse);

  auto aggregate = db_->AutoCommitSql(
      session.get(),
      "SELECT s_w_id, COUNT(*), AVG(s_quantity) FROM stock GROUP BY s_w_id");
  ASSERT_TRUE(aggregate.ok());
  EXPECT_EQ(aggregate->rows.size(), scale_.warehouses);
}

TEST_F(IntegrationTest, GcAfterWorkloadKeepsDataCorrect) {
  tpcc::TellBackend backend(db_.get());
  tpcc::DriverOptions options;
  options.scale = scale_;
  options.num_workers = 4;
  options.duration_virtual_ms = 30;
  ASSERT_OK(tpcc::RunTpcc(&backend, options).status());
  ASSERT_OK_AND_ASSIGN(tx::GcStats stats, db_->RunGarbageCollection());
  EXPECT_GT(stats.log_entries_truncated, 0u);
  AuditConsistency();
}

TEST_F(IntegrationTest, ReadIntensiveMixLowAborts) {
  tpcc::TellBackend backend(db_.get());
  tpcc::DriverOptions options;
  options.scale = scale_;
  options.mix = tpcc::Mix::kReadIntensive;
  options.num_workers = 4;
  options.duration_virtual_ms = 30;
  ASSERT_OK_AND_ASSIGN(tpcc::DriverResult result,
                       tpcc::RunTpcc(&backend, options));
  EXPECT_LT(result.abort_rate, 0.05);
}

}  // namespace
}  // namespace tell
