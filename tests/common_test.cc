#include <gtest/gtest.h>

#include <set>

#include "common/bitset.h"
#include "common/random.h"
#include "common/result.h"
#include "common/serde.h"
#include "common/status.h"
#include "sim/histogram.h"
#include "tests/test_util.h"

namespace tell {
namespace {

TEST(StatusTest, OkByDefault) {
  Status st;
  EXPECT_TRUE(st.ok());
  EXPECT_EQ(st.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status st = Status::NotFound("missing key");
  EXPECT_FALSE(st.ok());
  EXPECT_TRUE(st.IsNotFound());
  EXPECT_EQ(st.ToString(), "NotFound: missing key");
}

TEST(StatusTest, PredicatesMatchCodes) {
  EXPECT_TRUE(Status::ConditionFailed().IsConditionFailed());
  EXPECT_TRUE(Status::Aborted().IsAborted());
  EXPECT_TRUE(Status::Unavailable("x").IsUnavailable());
  EXPECT_TRUE(Status::AlreadyExists().IsAlreadyExists());
  EXPECT_TRUE(Status::CapacityExceeded("x").IsCapacityExceeded());
  EXPECT_FALSE(Status::NotFound().IsAborted());
}

TEST(ResultTest, HoldsValue) {
  Result<int> r(42);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 42);
  EXPECT_TRUE(r.status().ok());
}

TEST(ResultTest, HoldsError) {
  Result<int> r(Status::NotFound("nope"));
  ASSERT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsNotFound());
  EXPECT_EQ(r.ValueOr(-1), -1);
}

TEST(ResultTest, AssignOrReturnMacro) {
  auto fn = [](bool fail) -> Result<int> {
    auto inner = [&]() -> Result<int> {
      if (fail) return Status::InvalidArgument("bad");
      return 7;
    };
    TELL_ASSIGN_OR_RETURN(int v, inner());
    return v + 1;
  };
  EXPECT_EQ(*fn(false), 8);
  EXPECT_TRUE(fn(true).status().code() == StatusCode::kInvalidArgument);
}

TEST(BitsetTest, SetTestClear) {
  DenseBitset bits;
  EXPECT_TRUE(bits.empty());
  bits.Set(5);
  EXPECT_TRUE(bits.Test(5));
  EXPECT_FALSE(bits.Test(4));
  EXPECT_EQ(bits.size(), 6u);
  bits.Clear(5);
  EXPECT_FALSE(bits.Test(5));
}

TEST(BitsetTest, FirstZeroFindsHole) {
  DenseBitset bits;
  bits.Set(0);
  bits.Set(1);
  bits.Set(3);
  EXPECT_EQ(bits.FirstZero(), 2u);
  bits.Set(2);
  EXPECT_EQ(bits.FirstZero(), 4u);
}

TEST(BitsetTest, FirstZeroAllSet) {
  DenseBitset bits;
  for (size_t i = 0; i < 130; ++i) bits.Set(i);
  EXPECT_EQ(bits.FirstZero(), 130u);
}

TEST(BitsetTest, DropFrontShifts) {
  DenseBitset bits;
  bits.Set(0);
  bits.Set(64);
  bits.Set(100);
  bits.DropFront(64);
  EXPECT_TRUE(bits.Test(0));    // old 64
  EXPECT_TRUE(bits.Test(36));   // old 100
  EXPECT_EQ(bits.Count(), 2u);
}

TEST(BitsetTest, DropFrontPastEndClears) {
  DenseBitset bits;
  bits.Set(3);
  bits.DropFront(10);
  EXPECT_TRUE(bits.empty());
}

TEST(BitsetTest, CountAcrossWords) {
  DenseBitset bits;
  std::set<size_t> positions = {0, 1, 63, 64, 65, 127, 128, 200};
  for (size_t p : positions) bits.Set(p);
  EXPECT_EQ(bits.Count(), positions.size());
}

TEST(SerdeTest, RoundTripScalars) {
  BufferWriter writer;
  writer.PutU8(7);
  writer.PutU32(0xDEADBEEF);
  writer.PutU64(1ULL << 60);
  writer.PutI64(-12345);
  writer.PutDouble(3.25);
  writer.PutString("hello");
  BufferReader reader(writer.data());
  ASSERT_OK_AND_ASSIGN(uint8_t a, reader.GetU8());
  ASSERT_OK_AND_ASSIGN(uint32_t b, reader.GetU32());
  ASSERT_OK_AND_ASSIGN(uint64_t c, reader.GetU64());
  ASSERT_OK_AND_ASSIGN(int64_t d, reader.GetI64());
  ASSERT_OK_AND_ASSIGN(double e, reader.GetDouble());
  ASSERT_OK_AND_ASSIGN(std::string_view f, reader.GetString());
  EXPECT_EQ(a, 7);
  EXPECT_EQ(b, 0xDEADBEEF);
  EXPECT_EQ(c, 1ULL << 60);
  EXPECT_EQ(d, -12345);
  EXPECT_EQ(e, 3.25);
  EXPECT_EQ(f, "hello");
  EXPECT_TRUE(reader.AtEnd());
}

TEST(SerdeTest, TruncatedReadFails) {
  BufferWriter writer;
  writer.PutU32(99);
  BufferReader reader(writer.data());
  EXPECT_FALSE(reader.GetU64().ok());
}

TEST(SerdeTest, OrderedU64PreservesOrder) {
  uint64_t values[] = {0, 1, 255, 256, 1ULL << 32, UINT64_MAX};
  for (uint64_t a : values) {
    for (uint64_t b : values) {
      EXPECT_EQ(a < b, EncodeOrderedU64(a) < EncodeOrderedU64(b));
      EXPECT_EQ(DecodeOrderedU64(EncodeOrderedU64(a)), a);
    }
  }
}

TEST(SerdeTest, OrderedI64PreservesOrder) {
  int64_t values[] = {INT64_MIN, -1000, -1, 0, 1, 1000, INT64_MAX};
  for (int64_t a : values) {
    for (int64_t b : values) {
      EXPECT_EQ(a < b, EncodeOrderedI64(a) < EncodeOrderedI64(b));
      EXPECT_EQ(DecodeOrderedI64(EncodeOrderedI64(a)), a);
    }
  }
}

TEST(RandomTest, DeterministicForSeed) {
  Random a(123), b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.Next(), b.Next());
  }
}

TEST(RandomTest, UniformIntWithinBounds) {
  Random rng(7);
  for (int i = 0; i < 1000; ++i) {
    int64_t v = rng.UniformInt(5, 15);
    EXPECT_GE(v, 5);
    EXPECT_LE(v, 15);
  }
}

TEST(RandomTest, NonUniformWithinBounds) {
  Random rng(7);
  for (int i = 0; i < 1000; ++i) {
    int64_t v = rng.NonUniform(255, 123, 0, 999);
    EXPECT_GE(v, 0);
    EXPECT_LE(v, 999);
  }
}

TEST(RandomTest, BernoulliRoughlyCalibrated) {
  Random rng(99);
  int hits = 0;
  for (int i = 0; i < 100000; ++i) {
    if (rng.Bernoulli(0.25)) ++hits;
  }
  EXPECT_NEAR(hits / 100000.0, 0.25, 0.01);
}

TEST(RandomTest, AlphaStringLengthInRange) {
  Random rng(5);
  for (int i = 0; i < 100; ++i) {
    std::string s = rng.AlphaString(8, 16);
    EXPECT_GE(s.size(), 8u);
    EXPECT_LE(s.size(), 16u);
  }
}

TEST(HistogramTest, MeanAndCount) {
  sim::Histogram h;
  h.Record(100);
  h.Record(200);
  h.Record(300);
  EXPECT_EQ(h.count(), 3u);
  EXPECT_DOUBLE_EQ(h.Mean(), 200.0);
  EXPECT_EQ(h.min(), 100u);
  EXPECT_EQ(h.max(), 300u);
}

TEST(HistogramTest, PercentileApproximation) {
  sim::Histogram h;
  for (uint64_t i = 1; i <= 1000; ++i) h.Record(i * 1000);
  uint64_t p50 = h.Percentile(50);
  uint64_t p99 = h.Percentile(99);
  // Log buckets: ~19% relative error budget.
  EXPECT_NEAR(static_cast<double>(p50), 500000.0, 500000.0 * 0.25);
  EXPECT_NEAR(static_cast<double>(p99), 990000.0, 990000.0 * 0.25);
  EXPECT_LE(p50, p99);
}

TEST(HistogramTest, MergeCombines) {
  sim::Histogram a, b;
  a.Record(10);
  b.Record(30);
  a.Merge(b);
  EXPECT_EQ(a.count(), 2u);
  EXPECT_DOUBLE_EQ(a.Mean(), 20.0);
}

TEST(HistogramTest, StdDev) {
  sim::Histogram h;
  h.Record(10);
  h.Record(20);
  h.Record(30);
  EXPECT_NEAR(h.StdDev(), 10.0, 1e-9);
}

}  // namespace
}  // namespace tell
