#include <gtest/gtest.h>

#include <thread>

#include "sim/metrics.h"
#include "sim/virtual_clock.h"
#include "store/cluster.h"
#include "store/management_node.h"
#include "store/storage_client.h"
#include "store/storage_node.h"
#include "tests/test_util.h"

namespace tell::store {
namespace {

class StorageNodeTest : public ::testing::Test {
 protected:
  StorageNodeTest() : node_(0, 64 << 20) { node_.CreatePartition(1, 0); }
  StorageNode node_;
};

TEST_F(StorageNodeTest, PutGetRoundTrip) {
  ASSERT_OK_AND_ASSIGN(uint64_t stamp, node_.Put(1, 0, "k", "v"));
  EXPECT_GT(stamp, kStampAbsent);
  ASSERT_OK_AND_ASSIGN(VersionedCell cell, node_.Get(1, 0, "k"));
  EXPECT_EQ(cell.value, "v");
  EXPECT_EQ(cell.stamp, stamp);
}

TEST_F(StorageNodeTest, GetMissingIsNotFound) {
  EXPECT_TRUE(node_.Get(1, 0, "nope").status().IsNotFound());
}

TEST_F(StorageNodeTest, HighPartitionIdsDoNotAlias) {
  // Regression: the partition map key used to be (table << 16) | partition,
  // which silently aliased partition 65536 of a table onto partition 0 —
  // writes meant for one landed in the other. The key now keeps the full
  // 32-bit partition id.
  node_.CreatePartition(1, 65536);
  ASSERT_OK(node_.Put(1, 0, "k", "low").status());
  ASSERT_OK(node_.Put(1, 65536, "k", "high").status());
  ASSERT_OK_AND_ASSIGN(VersionedCell low, node_.Get(1, 0, "k"));
  ASSERT_OK_AND_ASSIGN(VersionedCell high, node_.Get(1, 65536, "k"));
  EXPECT_EQ(low.value, "low");
  EXPECT_EQ(high.value, "high");
  EXPECT_EQ(node_.PartitionSize(1, 0), 1u);
  EXPECT_EQ(node_.PartitionSize(1, 65536), 1u);
  // And a neighbouring table's partition 0 is its own partition too.
  node_.CreatePartition(2, 0);
  EXPECT_TRUE(node_.Get(2, 0, "k").status().IsNotFound());
}

TEST_F(StorageNodeTest, ConditionalPutInsertSemantics) {
  // kStampAbsent means "must not exist".
  ASSERT_OK_AND_ASSIGN(uint64_t stamp,
                       node_.ConditionalPut(1, 0, "k", kStampAbsent, "v1"));
  EXPECT_GT(stamp, 0u);
  // Second insert fails.
  EXPECT_TRUE(node_.ConditionalPut(1, 0, "k", kStampAbsent, "v2")
                  .status()
                  .IsConditionFailed());
}

TEST_F(StorageNodeTest, LlScDetectsIntermediateWrite) {
  ASSERT_OK_AND_ASSIGN(uint64_t s1, node_.Put(1, 0, "k", "v1"));
  // Another writer changes the cell...
  ASSERT_OK_AND_ASSIGN(uint64_t s2, node_.Put(1, 0, "k", "v2"));
  // ...and even changes it *back* to the original value (ABA):
  ASSERT_OK_AND_ASSIGN(uint64_t s3, node_.Put(1, 0, "k", "v1"));
  EXPECT_LT(s1, s2);
  EXPECT_LT(s2, s3);
  // Store-conditional against the first stamp still fails: LL/SC is
  // ABA-safe, unlike value-compare-and-swap.
  EXPECT_TRUE(node_.ConditionalPut(1, 0, "k", s1, "v3")
                  .status()
                  .IsConditionFailed());
  // Against the current stamp it succeeds.
  EXPECT_OK(node_.ConditionalPut(1, 0, "k", s3, "v3").status());
}

TEST_F(StorageNodeTest, ConditionalEraseChecksStamp) {
  ASSERT_OK_AND_ASSIGN(uint64_t stamp, node_.Put(1, 0, "k", "v"));
  EXPECT_TRUE(node_.ConditionalErase(1, 0, "k", stamp + 1).IsConditionFailed());
  EXPECT_OK(node_.ConditionalErase(1, 0, "k", stamp));
  EXPECT_TRUE(node_.Get(1, 0, "k").status().IsNotFound());
}

TEST_F(StorageNodeTest, ScanOrderedAndBounded) {
  for (char c = 'a'; c <= 'e'; ++c) {
    ASSERT_OK(node_.Put(1, 0, std::string(1, c), "v").status());
  }
  ASSERT_OK_AND_ASSIGN(std::vector<KeyCell> cells,
                       node_.Scan(1, 0, "b", "e", 0));
  ASSERT_EQ(cells.size(), 3u);
  EXPECT_EQ(cells[0].key, "b");
  EXPECT_EQ(cells[2].key, "d");
}

TEST_F(StorageNodeTest, ReverseScan) {
  for (char c = 'a'; c <= 'e'; ++c) {
    ASSERT_OK(node_.Put(1, 0, std::string(1, c), "v").status());
  }
  ASSERT_OK_AND_ASSIGN(std::vector<KeyCell> cells,
                       node_.Scan(1, 0, "", "", 2, /*reverse=*/true));
  ASSERT_EQ(cells.size(), 2u);
  EXPECT_EQ(cells[0].key, "e");
  EXPECT_EQ(cells[1].key, "d");
}

TEST_F(StorageNodeTest, AtomicIncrementCreatesAndAdds) {
  ASSERT_OK_AND_ASSIGN(int64_t v1, node_.AtomicIncrement(1, 0, "ctr", 10));
  EXPECT_EQ(v1, 10);
  ASSERT_OK_AND_ASSIGN(int64_t v2, node_.AtomicIncrement(1, 0, "ctr", 5));
  EXPECT_EQ(v2, 15);
}

TEST_F(StorageNodeTest, AtomicIncrementIsAtomicUnderThreads) {
  constexpr int kThreads = 8;
  constexpr int kIncrements = 1000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < kIncrements; ++i) {
        ASSERT_TRUE(node_.AtomicIncrement(1, 0, "ctr", 1).ok());
      }
    });
  }
  for (auto& thread : threads) thread.join();
  ASSERT_OK_AND_ASSIGN(int64_t total, node_.AtomicIncrement(1, 0, "ctr", 0));
  EXPECT_EQ(total, kThreads * kIncrements);
}

TEST_F(StorageNodeTest, ConcurrentLlScExactlyOneWinner) {
  ASSERT_OK_AND_ASSIGN(uint64_t stamp, node_.Put(1, 0, "k", "v0"));
  constexpr int kThreads = 8;
  std::atomic<int> winners{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      auto result = node_.ConditionalPut(1, 0, "k", stamp,
                                         "v" + std::to_string(t + 1));
      if (result.ok()) winners.fetch_add(1);
    });
  }
  for (auto& thread : threads) thread.join();
  EXPECT_EQ(winners.load(), 1);
}

TEST_F(StorageNodeTest, DeadNodeRejectsRequests) {
  node_.Kill();
  EXPECT_TRUE(node_.Get(1, 0, "k").status().IsUnavailable());
  EXPECT_TRUE(node_.Put(1, 0, "k", "v").status().IsUnavailable());
  node_.Revive();
  EXPECT_OK(node_.Put(1, 0, "k", "v").status());
}

TEST_F(StorageNodeTest, CapacityLimitEnforced) {
  StorageNode tiny(1, 256);
  tiny.CreatePartition(1, 0);
  std::string big(300, 'x');
  EXPECT_TRUE(tiny.Put(1, 0, "k", big).status().IsCapacityExceeded());
}

TEST_F(StorageNodeTest, MemoryAccountingTracksPutsAndErases) {
  uint64_t before = node_.memory_used();
  ASSERT_OK(node_.Put(1, 0, "key1", std::string(100, 'a')).status());
  EXPECT_GT(node_.memory_used(), before);
  ASSERT_OK(node_.Erase(1, 0, "key1"));
  EXPECT_EQ(node_.memory_used(), before);
}

// ---------------------------------------------------------------------------
// PartitionMap

TEST(PartitionMapTest, DeterministicPlacement) {
  PartitionMap map;
  ASSERT_OK(map.AddTable(1, 8, {0, 1, 2}, 1));
  ASSERT_OK_AND_ASSIGN(uint32_t p1, map.PartitionFor(1, "somekey"));
  ASSERT_OK_AND_ASSIGN(uint32_t p2, map.PartitionFor(1, "somekey"));
  EXPECT_EQ(p1, p2);
  EXPECT_LT(p1, 8u);
}

TEST(PartitionMapTest, ReplicasOnDistinctNodes) {
  PartitionMap map;
  ASSERT_OK(map.AddTable(1, 6, {0, 1, 2}, 3));
  for (uint32_t p = 0; p < 6; ++p) {
    ASSERT_OK_AND_ASSIGN(PartitionPlacement placement, map.PlacementOf(1, p));
    EXPECT_EQ(placement.replicas.size(), 2u);
    for (uint32_t r : placement.replicas) {
      EXPECT_NE(r, placement.master);
    }
  }
}

TEST(PartitionMapTest, RfLargerThanNodesRejected) {
  PartitionMap map;
  EXPECT_FALSE(map.AddTable(1, 4, {0, 1}, 3).ok());
}

TEST(PartitionMapTest, RemoveNodeReturnsOrphanedMasters) {
  PartitionMap map;
  ASSERT_OK(map.AddTable(1, 3, {0, 1, 2}, 2));
  auto orphaned = map.RemoveNode(0);
  // Node 0 was master of partition 0 (round robin).
  ASSERT_EQ(orphaned.size(), 1u);
  EXPECT_EQ(orphaned[0].second, 0u);
}

TEST(PartitionMapTest, PromoteReplicaChangesMaster) {
  PartitionMap map;
  ASSERT_OK(map.AddTable(1, 3, {0, 1, 2}, 2));
  map.RemoveNode(0);
  ASSERT_OK_AND_ASSIGN(PartitionPlacement placement, map.PlacementOf(1, 0));
  ASSERT_EQ(placement.replicas.size(), 1u);
  ASSERT_OK(map.PromoteReplica(1, 0, placement.replicas[0]));
  ASSERT_OK_AND_ASSIGN(PartitionPlacement after, map.PlacementOf(1, 0));
  EXPECT_EQ(after.master, placement.replicas[0]);
  EXPECT_TRUE(after.replicas.empty());
}

TEST(PartitionMapTest, VersionBumpsOnChange) {
  PartitionMap map;
  uint64_t v0 = map.version();
  ASSERT_OK(map.AddTable(1, 2, {0, 1}, 1));
  EXPECT_GT(map.version(), v0);
}

// ---------------------------------------------------------------------------
// Cluster + replication + fail-over

class ClusterTest : public ::testing::Test {
 protected:
  ClusterTest() {
    ClusterOptions options;
    options.num_storage_nodes = 3;
    options.replication_factor = 2;
    options.partitions_per_node = 2;
    cluster_ = std::make_unique<Cluster>(options);
    management_ = std::make_unique<ManagementNode>(cluster_.get());
    auto table = cluster_->CreateTable("t");
    EXPECT_TRUE(table.ok());
    table_ = *table;
  }

  std::unique_ptr<Cluster> cluster_;
  std::unique_ptr<ManagementNode> management_;
  TableId table_;
};

TEST_F(ClusterTest, WritesAreReplicated) {
  ASSERT_OK(cluster_->Put(table_, "key", "value").status());
  // The cell must exist on RF=2 nodes in total.
  int copies = 0;
  ASSERT_OK_AND_ASSIGN(uint32_t partition,
                       cluster_->partition_map().PartitionFor(table_, "key"));
  for (uint32_t n = 0; n < cluster_->num_nodes(); ++n) {
    auto cell = cluster_->node(n)->Get(table_, partition, "key");
    if (cell.ok()) ++copies;
  }
  EXPECT_EQ(copies, 2);
}

TEST_F(ClusterTest, FailoverServesDataFromReplica) {
  ASSERT_OK(cluster_->Put(table_, "key", "value").status());
  ASSERT_OK_AND_ASSIGN(uint32_t master, cluster_->MasterOf(table_, "key"));
  cluster_->node(master)->Kill();
  // Before fail-over the read fails...
  EXPECT_TRUE(cluster_->Get(table_, "key").status().IsUnavailable());
  // ...the management node recovers...
  ASSERT_OK_AND_ASSIGN(uint32_t recovered, management_->DetectAndRecover());
  EXPECT_EQ(recovered, 1u);
  // ...and the replica serves the value with the same LL/SC stamp.
  ASSERT_OK_AND_ASSIGN(VersionedCell cell, cluster_->Get(table_, "key"));
  EXPECT_EQ(cell.value, "value");
  ASSERT_OK_AND_ASSIGN(uint32_t new_master, cluster_->MasterOf(table_, "key"));
  EXPECT_NE(new_master, master);
}

TEST_F(ClusterTest, FailoverRestoresReplicationLevel) {
  ASSERT_OK(cluster_->Put(table_, "key", "value").status());
  ASSERT_OK_AND_ASSIGN(uint32_t master, cluster_->MasterOf(table_, "key"));
  cluster_->node(master)->Kill();
  ASSERT_TRUE(management_->DetectAndRecover().ok());
  EXPECT_TRUE(management_->ReplicationLevelRestored());
}

TEST_F(ClusterTest, StampsSurviveFailover) {
  ASSERT_OK_AND_ASSIGN(uint64_t stamp, cluster_->Put(table_, "key", "v1"));
  ASSERT_OK_AND_ASSIGN(uint32_t master, cluster_->MasterOf(table_, "key"));
  cluster_->node(master)->Kill();
  ASSERT_TRUE(management_->DetectAndRecover().ok());
  // LL/SC tokens held by clients remain valid against the promoted replica.
  EXPECT_OK(cluster_->ConditionalPut(table_, "key", stamp, "v2").status());
}

TEST_F(ClusterTest, ScanMergesPartitions) {
  for (int i = 0; i < 20; ++i) {
    ASSERT_OK(cluster_->Put(table_, "k" + std::to_string(i), "v").status());
  }
  ASSERT_OK_AND_ASSIGN(std::vector<KeyCell> cells,
                       cluster_->Scan(table_, "", "", 0));
  EXPECT_EQ(cells.size(), 20u);
  EXPECT_TRUE(std::is_sorted(cells.begin(), cells.end(),
                             [](const KeyCell& a, const KeyCell& b) {
                               return a.key < b.key;
                             }));
}

// ---------------------------------------------------------------------------
// StorageClient cost accounting

class StorageClientTest : public ::testing::Test {
 protected:
  StorageClientTest() {
    ClusterOptions options;
    options.num_storage_nodes = 4;
    cluster_ = std::make_unique<Cluster>(options);
    auto table = cluster_->CreateTable("t");
    table_ = *table;
  }

  std::unique_ptr<StorageClient> MakeClient(const ClientOptions& options) {
    return std::make_unique<StorageClient>(cluster_.get(), nullptr, options,
                                           &clock_, &metrics_);
  }

  std::unique_ptr<Cluster> cluster_;
  sim::VirtualClock clock_;
  sim::WorkerMetrics metrics_;
  TableId table_;
};

TEST_F(StorageClientTest, GetChargesOneRoundTrip) {
  ClientOptions options;
  options.network = sim::NetworkModel::InfiniBand();
  options.cpu.per_op_ns = 0;
  auto client = MakeClient(options);
  ASSERT_OK(client->Put(table_, "k", "v").status());
  uint64_t before = clock_.now_ns();
  ASSERT_OK(client->Get(table_, "k").status());
  uint64_t cost = clock_.now_ns() - before;
  EXPECT_GE(cost, options.network.base_rtt_ns);
  EXPECT_LT(cost, options.network.base_rtt_ns + 1000);
  EXPECT_EQ(metrics_.storage_requests, 2u);
}

TEST_F(StorageClientTest, BatchingChargesMaxNotSum) {
  ClientOptions options;
  options.cpu.per_op_ns = 0;
  auto client = MakeClient(options);
  std::vector<GetOp> ops;
  for (int i = 0; i < 32; ++i) {
    std::string key = "key" + std::to_string(i);
    ASSERT_OK(client->Put(table_, key, "v").status());
    ops.push_back({table_, key});
  }
  uint64_t before = clock_.now_ns();
  auto results = client->BatchGet(ops);
  uint64_t cost = clock_.now_ns() - before;
  for (const auto& r : results) EXPECT_TRUE(r.ok());
  // 32 ops over 4 storage nodes: max 4 parallel requests — far below 32
  // sequential round trips.
  EXPECT_LT(cost, 4 * options.network.base_rtt_ns);
}

TEST_F(StorageClientTest, UnbatchedChargesSum) {
  ClientOptions batched;
  batched.cpu.per_op_ns = 0;
  ClientOptions unbatched = batched;
  unbatched.batching = false;

  std::vector<GetOp> ops;
  {
    auto client = MakeClient(batched);
    for (int i = 0; i < 16; ++i) {
      std::string key = "key" + std::to_string(i);
      ASSERT_OK(client->Put(table_, key, "v").status());
      ops.push_back({table_, key});
    }
  }
  sim::VirtualClock clock_batched, clock_unbatched;
  sim::WorkerMetrics m1, m2;
  StorageClient c1(cluster_.get(), nullptr, batched, &clock_batched, &m1);
  StorageClient c2(cluster_.get(), nullptr, unbatched, &clock_unbatched, &m2);
  c1.BatchGet(ops);
  c2.BatchGet(ops);
  EXPECT_GT(clock_unbatched.now_ns(), 3 * clock_batched.now_ns());
}

TEST_F(StorageClientTest, ReplicationChargesExtraHops) {
  ClientOptions rf1;
  rf1.cpu.per_op_ns = 0;
  ClientOptions rf3 = rf1;
  rf3.replication_extra_hops = 2;
  sim::VirtualClock clock1, clock3;
  sim::WorkerMetrics m1, m3;
  StorageClient c1(cluster_.get(), nullptr, rf1, &clock1, &m1);
  StorageClient c3(cluster_.get(), nullptr, rf3, &clock3, &m3);
  ASSERT_OK(c1.Put(table_, "a", "v").status());
  ASSERT_OK(c3.Put(table_, "b", "v").status());
  // 2 extra hops, each costing the backup write path (2 rtt-equivalents).
  EXPECT_EQ(clock3.now_ns() - clock1.now_ns(),
            2 * 2 * (rf1.network.base_rtt_ns +
                     rf1.network.software_overhead_ns));
}

TEST_F(StorageClientTest, EthernetCostsMoreThanInfiniBand) {
  ClientOptions ib;
  ib.cpu.per_op_ns = 0;
  ClientOptions eth = ib;
  eth.network = sim::NetworkModel::TenGbEthernet();
  sim::VirtualClock clock_ib, clock_eth;
  sim::WorkerMetrics m1, m2;
  StorageClient c1(cluster_.get(), nullptr, ib, &clock_ib, &m1);
  StorageClient c2(cluster_.get(), nullptr, eth, &clock_eth, &m2);
  ASSERT_OK(c1.Put(table_, "a", "v").status());
  ASSERT_OK(c2.Put(table_, "b", "v").status());
  EXPECT_GT(clock_eth.now_ns(), 5 * clock_ib.now_ns());
}

TEST_F(StorageClientTest, MetricsCountBytes) {
  ClientOptions options;
  auto client = MakeClient(options);
  ASSERT_OK(client->Put(table_, "key", std::string(1000, 'x')).status());
  EXPECT_GT(metrics_.bytes_sent, 1000u);
}

// Regression (PR 7): the exponential backoff used to multiply the base once
// per attempt with no early exit, so huge attempt counters both took O(retry)
// time and overflowed the double past the cap into garbage delays. The
// computed backoff must saturate at max_backoff_ns for ANY attempt number and
// never come back as zero (or wrapped-negative) virtual time.
TEST(RetryPolicyTest, BackoffSaturatesAtHighAttemptCounts) {
  RetryPolicy policy;
  policy.jitter = 0;  // deterministic: backoff == computed b exactly
  Random rng(7);
  uint64_t at_cap = policy.BackoffNs(/*retry=*/20, &rng);
  EXPECT_EQ(at_cap, policy.max_backoff_ns);
  // The old code left-shifted (multiplied) once per attempt: attempt 63+ and
  // beyond overflowed. These must all still be exactly the ceiling — and
  // return promptly (the loop exits at the cap instead of iterating 2^31
  // times).
  for (uint32_t retry : {63u, 64u, 100u, 1u << 20, UINT32_MAX}) {
    EXPECT_EQ(policy.BackoffNs(retry, &rng), policy.max_backoff_ns)
        << "retry=" << retry;
  }
}

TEST(RetryPolicyTest, BackoffJitterStaysWithinBandAtHighAttempts) {
  RetryPolicy policy;  // jitter = 0.5
  Random rng(11);
  for (uint32_t retry : {70u, 1000u, UINT32_MAX}) {
    uint64_t b = policy.BackoffNs(retry, &rng);
    EXPECT_GE(b, policy.max_backoff_ns / 2) << "retry=" << retry;
    EXPECT_LE(b, policy.max_backoff_ns) << "retry=" << retry;
  }
}

TEST(RetryPolicyTest, BackoffHandlesDegenerateMultipliers) {
  RetryPolicy policy;
  policy.jitter = 0;
  policy.multiplier = 1.0;  // no growth: every retry waits the initial delay
  Random rng(3);
  EXPECT_EQ(policy.BackoffNs(UINT32_MAX, &rng), policy.initial_backoff_ns);
  policy.multiplier = 0.5;  // shrinking multipliers must not loop either
  EXPECT_EQ(policy.BackoffNs(UINT32_MAX, &rng), policy.initial_backoff_ns);
}

}  // namespace
}  // namespace tell::store
