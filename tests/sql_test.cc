#include <gtest/gtest.h>

#include "db/tell_db.h"
#include "sql/lexer.h"
#include "sql/parser.h"
#include "tests/test_util.h"

namespace tell::sql {
namespace {

// ---------------------------------------------------------------------------
// Lexer

TEST(LexerTest, TokenizesKeywordsIdentifiersLiterals) {
  ASSERT_OK_AND_ASSIGN(auto tokens,
                       Tokenize("SELECT name FROM users WHERE id = 42"));
  ASSERT_EQ(tokens.size(), 9u);  // incl. end token
  EXPECT_EQ(tokens[0].type, TokenType::kKeyword);
  EXPECT_EQ(tokens[0].text, "SELECT");
  EXPECT_EQ(tokens[1].type, TokenType::kIdentifier);
  EXPECT_EQ(tokens[1].text, "name");
  EXPECT_EQ(tokens[7].type, TokenType::kInteger);
  EXPECT_EQ(tokens[7].text, "42");
}

TEST(LexerTest, CaseInsensitiveKeywordsLowercaseIdentifiers) {
  ASSERT_OK_AND_ASSIGN(auto tokens, Tokenize("select FOO from Bar"));
  EXPECT_EQ(tokens[0].text, "SELECT");
  EXPECT_EQ(tokens[1].text, "foo");
  EXPECT_EQ(tokens[3].text, "bar");
}

TEST(LexerTest, StringLiteralWithEscapedQuote) {
  ASSERT_OK_AND_ASSIGN(auto tokens, Tokenize("'it''s'"));
  EXPECT_EQ(tokens[0].type, TokenType::kString);
  EXPECT_EQ(tokens[0].text, "it's");
}

TEST(LexerTest, TwoCharOperators) {
  ASSERT_OK_AND_ASSIGN(auto tokens, Tokenize("a <= b >= c <> d != e"));
  EXPECT_EQ(tokens[1].text, "<=");
  EXPECT_EQ(tokens[3].text, ">=");
  EXPECT_EQ(tokens[5].text, "<>");
  EXPECT_EQ(tokens[7].text, "<>");  // != normalizes
}

TEST(LexerTest, NegativeNumbersAndFloats) {
  ASSERT_OK_AND_ASSIGN(auto tokens, Tokenize("WHERE x = -5 AND y = 2.75"));
  EXPECT_EQ(tokens[3].text, "-5");
  EXPECT_EQ(tokens[3].type, TokenType::kInteger);
  EXPECT_EQ(tokens[7].type, TokenType::kFloat);
}

TEST(LexerTest, UnterminatedStringFails) {
  EXPECT_FALSE(Tokenize("SELECT 'oops").ok());
}

// ---------------------------------------------------------------------------
// Parser

TEST(ParserTest, SelectStarWithWhere) {
  ASSERT_OK_AND_ASSIGN(Statement stmt,
                       Parse("SELECT * FROM t WHERE a = 1 AND b < 'x'"));
  EXPECT_EQ(stmt.kind, Statement::Kind::kSelect);
  EXPECT_TRUE(stmt.select.select_star);
  EXPECT_EQ(stmt.select.table, "t");
  ASSERT_NE(stmt.select.where, nullptr);
  EXPECT_EQ(stmt.select.where->op, BinaryOp::kAnd);
}

TEST(ParserTest, SelectWithAggregatesGroupOrderLimit) {
  ASSERT_OK_AND_ASSIGN(
      Statement stmt,
      Parse("SELECT dept, COUNT(*), AVG(salary) AS avg_sal FROM emp "
            "GROUP BY dept ORDER BY dept DESC LIMIT 10"));
  ASSERT_EQ(stmt.select.items.size(), 3u);
  EXPECT_EQ(stmt.select.items[1].aggregate, AggregateFunc::kCount);
  EXPECT_TRUE(stmt.select.items[1].count_star);
  EXPECT_EQ(stmt.select.items[2].aggregate, AggregateFunc::kAvg);
  EXPECT_EQ(stmt.select.items[2].alias, "avg_sal");
  ASSERT_EQ(stmt.select.group_by.size(), 1u);
  ASSERT_EQ(stmt.select.order_by.size(), 1u);
  EXPECT_TRUE(stmt.select.order_by[0].descending);
  EXPECT_EQ(stmt.select.limit, 10u);
}

TEST(ParserTest, InsertMultiRow) {
  ASSERT_OK_AND_ASSIGN(
      Statement stmt,
      Parse("INSERT INTO t (a, b) VALUES (1, 'x'), (2, 'y')"));
  EXPECT_EQ(stmt.kind, Statement::Kind::kInsert);
  EXPECT_EQ(stmt.insert.columns.size(), 2u);
  EXPECT_EQ(stmt.insert.rows.size(), 2u);
}

TEST(ParserTest, UpdateWithArithmetic) {
  ASSERT_OK_AND_ASSIGN(Statement stmt,
                       Parse("UPDATE t SET a = a + 1, b = 2 WHERE id = 3"));
  EXPECT_EQ(stmt.kind, Statement::Kind::kUpdate);
  ASSERT_EQ(stmt.update.assignments.size(), 2u);
  EXPECT_EQ(stmt.update.assignments[0].second->op, BinaryOp::kAdd);
}

TEST(ParserTest, DeleteAndCreate) {
  ASSERT_OK_AND_ASSIGN(Statement del, Parse("DELETE FROM t WHERE a = 1"));
  EXPECT_EQ(del.kind, Statement::Kind::kDelete);

  ASSERT_OK_AND_ASSIGN(
      Statement create,
      Parse("CREATE TABLE t (id INT, name VARCHAR(20), bal DOUBLE, "
            "PRIMARY KEY (id))"));
  EXPECT_EQ(create.kind, Statement::Kind::kCreateTable);
  EXPECT_EQ(create.create_table.columns.size(), 3u);
  ASSERT_EQ(create.create_table.primary_key.size(), 1u);

  ASSERT_OK_AND_ASSIGN(Statement index,
                       Parse("CREATE UNIQUE INDEX idx ON t (name, bal)"));
  EXPECT_EQ(index.kind, Statement::Kind::kCreateIndex);
  EXPECT_TRUE(index.create_index.unique);
  EXPECT_EQ(index.create_index.columns.size(), 2u);
}

TEST(ParserTest, OperatorPrecedence) {
  // a = 1 OR b = 2 AND c = 3  parses as  a = 1 OR (b = 2 AND c = 3)
  ASSERT_OK_AND_ASSIGN(Statement stmt,
                       Parse("SELECT * FROM t WHERE a = 1 OR b = 2 AND c = 3"));
  EXPECT_EQ(stmt.select.where->op, BinaryOp::kOr);
  EXPECT_EQ(stmt.select.where->right->op, BinaryOp::kAnd);
}

TEST(ParserTest, SyntaxErrorsRejected) {
  EXPECT_FALSE(Parse("SELECT FROM t").ok());
  EXPECT_FALSE(Parse("SELECT * FORM t").ok());
  EXPECT_FALSE(Parse("INSERT INTO t VALUES").ok());
  EXPECT_FALSE(Parse("CREATE TABLE t (id INT)").ok());  // missing PK
  EXPECT_FALSE(Parse("SELECT * FROM t extra garbage").ok());
}

// ---------------------------------------------------------------------------
// End-to-end on TellDb

class SqlEndToEndTest : public ::testing::Test {
 protected:
  SqlEndToEndTest() {
    db::TellDbOptions options;
    options.network = sim::NetworkModel::Instant();
    db_ = std::make_unique<db::TellDb>(options);
    EXPECT_OK(db_->ExecuteDdl(
        "CREATE TABLE emp (id INT, name VARCHAR(30), dept VARCHAR(10), "
        "salary DOUBLE, PRIMARY KEY (id))"));
    EXPECT_OK(db_->ExecuteDdl("CREATE INDEX by_dept ON emp (dept)"));
    session_ = db_->OpenSession(0, 0);
    Exec("INSERT INTO emp VALUES (1, 'alice', 'eng', 120.0)");
    Exec("INSERT INTO emp VALUES (2, 'bob', 'eng', 100.0)");
    Exec("INSERT INTO emp VALUES (3, 'carol', 'sales', 90.0)");
    Exec("INSERT INTO emp VALUES (4, 'dave', 'sales', 80.0)");
  }

  ResultSet Exec(const std::string& sql) {
    auto result = db_->AutoCommitSql(session_.get(), sql);
    EXPECT_TRUE(result.ok()) << sql << ": " << result.status().ToString();
    if (!result.ok()) return {};
    return std::move(*result);
  }

  std::unique_ptr<db::TellDb> db_;
  std::unique_ptr<tx::Session> session_;
};

TEST_F(SqlEndToEndTest, SelectStarAll) {
  ResultSet rs = Exec("SELECT * FROM emp");
  EXPECT_EQ(rs.rows.size(), 4u);
  EXPECT_EQ(rs.columns.size(), 4u);
}

TEST_F(SqlEndToEndTest, PointLookupUsesPrimaryIndex) {
  ResultSet rs = Exec("SELECT name FROM emp WHERE id = 2");
  ASSERT_EQ(rs.rows.size(), 1u);
  EXPECT_EQ(std::get<std::string>(rs.rows[0].at(0)), "bob");
}

TEST_F(SqlEndToEndTest, SecondaryIndexEquality) {
  ResultSet rs = Exec("SELECT name FROM emp WHERE dept = 'eng'");
  EXPECT_EQ(rs.rows.size(), 2u);
}

TEST_F(SqlEndToEndTest, RangePredicate) {
  ResultSet rs = Exec("SELECT name FROM emp WHERE id > 1 AND id <= 3");
  EXPECT_EQ(rs.rows.size(), 2u);
}

TEST_F(SqlEndToEndTest, ResidualFilterOnNonIndexedColumn) {
  ResultSet rs = Exec("SELECT name FROM emp WHERE salary > 95.0");
  EXPECT_EQ(rs.rows.size(), 2u);
}

TEST_F(SqlEndToEndTest, OrderByAndLimit) {
  ResultSet rs = Exec("SELECT name, salary FROM emp ORDER BY salary DESC "
                      "LIMIT 2");
  ASSERT_EQ(rs.rows.size(), 2u);
  EXPECT_EQ(std::get<std::string>(rs.rows[0].at(0)), "alice");
  EXPECT_EQ(std::get<std::string>(rs.rows[1].at(0)), "bob");
}

TEST_F(SqlEndToEndTest, AggregatesWithoutGroup) {
  ResultSet rs = Exec("SELECT COUNT(*), SUM(salary), MIN(salary), "
                      "MAX(salary) FROM emp");
  ASSERT_EQ(rs.rows.size(), 1u);
  EXPECT_EQ(std::get<int64_t>(rs.rows[0].at(0)), 4);
  EXPECT_DOUBLE_EQ(std::get<double>(rs.rows[0].at(1)), 390.0);
  EXPECT_EQ(schema::CompareValues(rs.rows[0].at(2), schema::Value(80.0)), 0);
  EXPECT_EQ(schema::CompareValues(rs.rows[0].at(3), schema::Value(120.0)), 0);
}

TEST_F(SqlEndToEndTest, GroupByAggregates) {
  ResultSet rs = Exec("SELECT dept, COUNT(*), AVG(salary) FROM emp "
                      "GROUP BY dept ORDER BY dept");
  ASSERT_EQ(rs.rows.size(), 2u);
  EXPECT_EQ(std::get<std::string>(rs.rows[0].at(0)), "eng");
  EXPECT_EQ(std::get<int64_t>(rs.rows[0].at(1)), 2);
  EXPECT_DOUBLE_EQ(std::get<double>(rs.rows[0].at(2)), 110.0);
}

TEST_F(SqlEndToEndTest, UpdateChangesRows) {
  ResultSet rs = Exec("UPDATE emp SET salary = salary + 10.0 "
                      "WHERE dept = 'sales'");
  EXPECT_EQ(rs.affected_rows, 2u);
  ResultSet check = Exec("SELECT salary FROM emp WHERE id = 4");
  EXPECT_DOUBLE_EQ(std::get<double>(check.rows[0].at(0)), 90.0);
}

TEST_F(SqlEndToEndTest, DeleteRemovesRows) {
  ResultSet rs = Exec("DELETE FROM emp WHERE dept = 'sales'");
  EXPECT_EQ(rs.affected_rows, 2u);
  ResultSet check = Exec("SELECT COUNT(*) FROM emp");
  EXPECT_EQ(std::get<int64_t>(check.rows[0].at(0)), 2);
}

TEST_F(SqlEndToEndTest, DuplicatePkInsertFails) {
  auto result = db_->AutoCommitSql(session_.get(),
                                   "INSERT INTO emp VALUES (1, 'dup', 'x', 0.0)");
  EXPECT_FALSE(result.ok());
  EXPECT_TRUE(result.status().IsAlreadyExists());
}

TEST_F(SqlEndToEndTest, MultiStatementTransaction) {
  tx::Transaction txn(session_.get());
  ASSERT_OK(txn.Begin());
  ASSERT_OK(db_->ExecuteSql(&txn, 0,
                            "INSERT INTO emp VALUES (5, 'erin', 'eng', 70.0)")
                .status());
  ASSERT_OK_AND_ASSIGN(
      ResultSet mid,
      db_->ExecuteSql(&txn, 0, "SELECT COUNT(*) FROM emp WHERE dept = 'eng'"));
  EXPECT_EQ(std::get<int64_t>(mid.rows[0].at(0)), 3);  // own insert visible
  ASSERT_OK(txn.Commit());
  ResultSet after = Exec("SELECT COUNT(*) FROM emp WHERE dept = 'eng'");
  EXPECT_EQ(std::get<int64_t>(after.rows[0].at(0)), 3);
}

TEST_F(SqlEndToEndTest, AbortedSqlTransactionRollsBack) {
  tx::Transaction txn(session_.get());
  ASSERT_OK(txn.Begin());
  ASSERT_OK(db_->ExecuteSql(&txn, 0,
                            "UPDATE emp SET salary = 0.0 WHERE id = 1")
                .status());
  ASSERT_OK(txn.Abort());
  ResultSet check = Exec("SELECT salary FROM emp WHERE id = 1");
  EXPECT_DOUBLE_EQ(std::get<double>(check.rows[0].at(0)), 120.0);
}

TEST_F(SqlEndToEndTest, IsNullPredicate) {
  Exec("INSERT INTO emp (id, name) VALUES (9, 'ghost')");
  ResultSet rs = Exec("SELECT name FROM emp WHERE dept IS NULL");
  ASSERT_EQ(rs.rows.size(), 1u);
  EXPECT_EQ(std::get<std::string>(rs.rows[0].at(0)), "ghost");
  ResultSet rs2 = Exec("SELECT COUNT(*) FROM emp WHERE dept IS NOT NULL");
  EXPECT_EQ(std::get<int64_t>(rs2.rows[0].at(0)), 4);
}

}  // namespace
}  // namespace tell::sql
