#include <gtest/gtest.h>

#include <atomic>
#include <thread>

#include "db/tell_db.h"
#include "sql/lexer.h"
#include "sql/parser.h"
#include "tests/test_util.h"
#include "workload/tpcc/tpcc_loader.h"
#include "workload/tpcc/tpcc_transactions.h"

namespace tell::sql {
namespace {

// ---------------------------------------------------------------------------
// Lexer

TEST(LexerTest, TokenizesKeywordsIdentifiersLiterals) {
  ASSERT_OK_AND_ASSIGN(auto tokens,
                       Tokenize("SELECT name FROM users WHERE id = 42"));
  ASSERT_EQ(tokens.size(), 9u);  // incl. end token
  EXPECT_EQ(tokens[0].type, TokenType::kKeyword);
  EXPECT_EQ(tokens[0].text, "SELECT");
  EXPECT_EQ(tokens[1].type, TokenType::kIdentifier);
  EXPECT_EQ(tokens[1].text, "name");
  EXPECT_EQ(tokens[7].type, TokenType::kInteger);
  EXPECT_EQ(tokens[7].text, "42");
}

TEST(LexerTest, CaseInsensitiveKeywordsLowercaseIdentifiers) {
  ASSERT_OK_AND_ASSIGN(auto tokens, Tokenize("select FOO from Bar"));
  EXPECT_EQ(tokens[0].text, "SELECT");
  EXPECT_EQ(tokens[1].text, "foo");
  EXPECT_EQ(tokens[3].text, "bar");
}

TEST(LexerTest, StringLiteralWithEscapedQuote) {
  ASSERT_OK_AND_ASSIGN(auto tokens, Tokenize("'it''s'"));
  EXPECT_EQ(tokens[0].type, TokenType::kString);
  EXPECT_EQ(tokens[0].text, "it's");
}

TEST(LexerTest, TwoCharOperators) {
  ASSERT_OK_AND_ASSIGN(auto tokens, Tokenize("a <= b >= c <> d != e"));
  EXPECT_EQ(tokens[1].text, "<=");
  EXPECT_EQ(tokens[3].text, ">=");
  EXPECT_EQ(tokens[5].text, "<>");
  EXPECT_EQ(tokens[7].text, "<>");  // != normalizes
}

TEST(LexerTest, NegativeNumbersAndFloats) {
  ASSERT_OK_AND_ASSIGN(auto tokens, Tokenize("WHERE x = -5 AND y = 2.75"));
  EXPECT_EQ(tokens[3].text, "-5");
  EXPECT_EQ(tokens[3].type, TokenType::kInteger);
  EXPECT_EQ(tokens[7].type, TokenType::kFloat);
}

TEST(LexerTest, UnterminatedStringFails) {
  EXPECT_FALSE(Tokenize("SELECT 'oops").ok());
}

// ---------------------------------------------------------------------------
// Parser

TEST(ParserTest, SelectStarWithWhere) {
  ASSERT_OK_AND_ASSIGN(Statement stmt,
                       Parse("SELECT * FROM t WHERE a = 1 AND b < 'x'"));
  EXPECT_EQ(stmt.kind, Statement::Kind::kSelect);
  EXPECT_TRUE(stmt.select.select_star);
  EXPECT_EQ(stmt.select.table, "t");
  ASSERT_NE(stmt.select.where, nullptr);
  EXPECT_EQ(stmt.select.where->op, BinaryOp::kAnd);
}

TEST(ParserTest, SelectWithAggregatesGroupOrderLimit) {
  ASSERT_OK_AND_ASSIGN(
      Statement stmt,
      Parse("SELECT dept, COUNT(*), AVG(salary) AS avg_sal FROM emp "
            "GROUP BY dept ORDER BY dept DESC LIMIT 10"));
  ASSERT_EQ(stmt.select.items.size(), 3u);
  EXPECT_EQ(stmt.select.items[1].aggregate, AggregateFunc::kCount);
  EXPECT_TRUE(stmt.select.items[1].count_star);
  EXPECT_EQ(stmt.select.items[2].aggregate, AggregateFunc::kAvg);
  EXPECT_EQ(stmt.select.items[2].alias, "avg_sal");
  ASSERT_EQ(stmt.select.group_by.size(), 1u);
  ASSERT_EQ(stmt.select.order_by.size(), 1u);
  EXPECT_TRUE(stmt.select.order_by[0].descending);
  EXPECT_EQ(stmt.select.limit, 10u);
}

TEST(ParserTest, InsertMultiRow) {
  ASSERT_OK_AND_ASSIGN(
      Statement stmt,
      Parse("INSERT INTO t (a, b) VALUES (1, 'x'), (2, 'y')"));
  EXPECT_EQ(stmt.kind, Statement::Kind::kInsert);
  EXPECT_EQ(stmt.insert.columns.size(), 2u);
  EXPECT_EQ(stmt.insert.rows.size(), 2u);
}

TEST(ParserTest, UpdateWithArithmetic) {
  ASSERT_OK_AND_ASSIGN(Statement stmt,
                       Parse("UPDATE t SET a = a + 1, b = 2 WHERE id = 3"));
  EXPECT_EQ(stmt.kind, Statement::Kind::kUpdate);
  ASSERT_EQ(stmt.update.assignments.size(), 2u);
  EXPECT_EQ(stmt.update.assignments[0].second->op, BinaryOp::kAdd);
}

TEST(ParserTest, DeleteAndCreate) {
  ASSERT_OK_AND_ASSIGN(Statement del, Parse("DELETE FROM t WHERE a = 1"));
  EXPECT_EQ(del.kind, Statement::Kind::kDelete);

  ASSERT_OK_AND_ASSIGN(
      Statement create,
      Parse("CREATE TABLE t (id INT, name VARCHAR(20), bal DOUBLE, "
            "PRIMARY KEY (id))"));
  EXPECT_EQ(create.kind, Statement::Kind::kCreateTable);
  EXPECT_EQ(create.create_table.columns.size(), 3u);
  ASSERT_EQ(create.create_table.primary_key.size(), 1u);

  ASSERT_OK_AND_ASSIGN(Statement index,
                       Parse("CREATE UNIQUE INDEX idx ON t (name, bal)"));
  EXPECT_EQ(index.kind, Statement::Kind::kCreateIndex);
  EXPECT_TRUE(index.create_index.unique);
  EXPECT_EQ(index.create_index.columns.size(), 2u);
}

TEST(ParserTest, OperatorPrecedence) {
  // a = 1 OR b = 2 AND c = 3  parses as  a = 1 OR (b = 2 AND c = 3)
  ASSERT_OK_AND_ASSIGN(Statement stmt,
                       Parse("SELECT * FROM t WHERE a = 1 OR b = 2 AND c = 3"));
  EXPECT_EQ(stmt.select.where->op, BinaryOp::kOr);
  EXPECT_EQ(stmt.select.where->right->op, BinaryOp::kAnd);
}

TEST(ParserTest, SyntaxErrorsRejected) {
  EXPECT_FALSE(Parse("SELECT FROM t").ok());
  EXPECT_FALSE(Parse("SELECT * FORM t").ok());
  EXPECT_FALSE(Parse("INSERT INTO t VALUES").ok());
  EXPECT_FALSE(Parse("CREATE TABLE t (id INT)").ok());  // missing PK
  EXPECT_FALSE(Parse("SELECT * FROM t extra garbage").ok());
}

// ---------------------------------------------------------------------------
// End-to-end on TellDb

class SqlEndToEndTest : public ::testing::Test {
 protected:
  SqlEndToEndTest() {
    db::TellDbOptions options;
    options.network = sim::NetworkModel::Instant();
    db_ = std::make_unique<db::TellDb>(options);
    EXPECT_OK(db_->ExecuteDdl(
        "CREATE TABLE emp (id INT, name VARCHAR(30), dept VARCHAR(10), "
        "salary DOUBLE, PRIMARY KEY (id))"));
    EXPECT_OK(db_->ExecuteDdl("CREATE INDEX by_dept ON emp (dept)"));
    session_ = db_->OpenSession(0, 0);
    Exec("INSERT INTO emp VALUES (1, 'alice', 'eng', 120.0)");
    Exec("INSERT INTO emp VALUES (2, 'bob', 'eng', 100.0)");
    Exec("INSERT INTO emp VALUES (3, 'carol', 'sales', 90.0)");
    Exec("INSERT INTO emp VALUES (4, 'dave', 'sales', 80.0)");
  }

  ResultSet Exec(const std::string& sql) {
    auto result = db_->AutoCommitSql(session_.get(), sql);
    EXPECT_TRUE(result.ok()) << sql << ": " << result.status().ToString();
    if (!result.ok()) return {};
    return std::move(*result);
  }

  std::unique_ptr<db::TellDb> db_;
  std::unique_ptr<tx::Session> session_;
};

TEST_F(SqlEndToEndTest, SelectStarAll) {
  ResultSet rs = Exec("SELECT * FROM emp");
  EXPECT_EQ(rs.rows.size(), 4u);
  EXPECT_EQ(rs.columns.size(), 4u);
}

TEST_F(SqlEndToEndTest, PointLookupUsesPrimaryIndex) {
  ResultSet rs = Exec("SELECT name FROM emp WHERE id = 2");
  ASSERT_EQ(rs.rows.size(), 1u);
  EXPECT_EQ(std::get<std::string>(rs.rows[0].at(0)), "bob");
}

TEST_F(SqlEndToEndTest, SecondaryIndexEquality) {
  ResultSet rs = Exec("SELECT name FROM emp WHERE dept = 'eng'");
  EXPECT_EQ(rs.rows.size(), 2u);
}

TEST_F(SqlEndToEndTest, RangePredicate) {
  ResultSet rs = Exec("SELECT name FROM emp WHERE id > 1 AND id <= 3");
  EXPECT_EQ(rs.rows.size(), 2u);
}

TEST_F(SqlEndToEndTest, ResidualFilterOnNonIndexedColumn) {
  ResultSet rs = Exec("SELECT name FROM emp WHERE salary > 95.0");
  EXPECT_EQ(rs.rows.size(), 2u);
}

TEST_F(SqlEndToEndTest, OrderByAndLimit) {
  ResultSet rs = Exec("SELECT name, salary FROM emp ORDER BY salary DESC "
                      "LIMIT 2");
  ASSERT_EQ(rs.rows.size(), 2u);
  EXPECT_EQ(std::get<std::string>(rs.rows[0].at(0)), "alice");
  EXPECT_EQ(std::get<std::string>(rs.rows[1].at(0)), "bob");
}

TEST_F(SqlEndToEndTest, AggregatesWithoutGroup) {
  ResultSet rs = Exec("SELECT COUNT(*), SUM(salary), MIN(salary), "
                      "MAX(salary) FROM emp");
  ASSERT_EQ(rs.rows.size(), 1u);
  EXPECT_EQ(std::get<int64_t>(rs.rows[0].at(0)), 4);
  EXPECT_DOUBLE_EQ(std::get<double>(rs.rows[0].at(1)), 390.0);
  EXPECT_EQ(schema::CompareValues(rs.rows[0].at(2), schema::Value(80.0)), 0);
  EXPECT_EQ(schema::CompareValues(rs.rows[0].at(3), schema::Value(120.0)), 0);
}

TEST_F(SqlEndToEndTest, GroupByAggregates) {
  ResultSet rs = Exec("SELECT dept, COUNT(*), AVG(salary) FROM emp "
                      "GROUP BY dept ORDER BY dept");
  ASSERT_EQ(rs.rows.size(), 2u);
  EXPECT_EQ(std::get<std::string>(rs.rows[0].at(0)), "eng");
  EXPECT_EQ(std::get<int64_t>(rs.rows[0].at(1)), 2);
  EXPECT_DOUBLE_EQ(std::get<double>(rs.rows[0].at(2)), 110.0);
}

TEST_F(SqlEndToEndTest, UpdateChangesRows) {
  ResultSet rs = Exec("UPDATE emp SET salary = salary + 10.0 "
                      "WHERE dept = 'sales'");
  EXPECT_EQ(rs.affected_rows, 2u);
  ResultSet check = Exec("SELECT salary FROM emp WHERE id = 4");
  EXPECT_DOUBLE_EQ(std::get<double>(check.rows[0].at(0)), 90.0);
}

TEST_F(SqlEndToEndTest, DeleteRemovesRows) {
  ResultSet rs = Exec("DELETE FROM emp WHERE dept = 'sales'");
  EXPECT_EQ(rs.affected_rows, 2u);
  ResultSet check = Exec("SELECT COUNT(*) FROM emp");
  EXPECT_EQ(std::get<int64_t>(check.rows[0].at(0)), 2);
}

TEST_F(SqlEndToEndTest, DuplicatePkInsertFails) {
  auto result = db_->AutoCommitSql(session_.get(),
                                   "INSERT INTO emp VALUES (1, 'dup', 'x', 0.0)");
  EXPECT_FALSE(result.ok());
  EXPECT_TRUE(result.status().IsAlreadyExists());
}

TEST_F(SqlEndToEndTest, MultiStatementTransaction) {
  tx::Transaction txn(session_.get());
  ASSERT_OK(txn.Begin());
  ASSERT_OK(db_->ExecuteSql(&txn, 0,
                            "INSERT INTO emp VALUES (5, 'erin', 'eng', 70.0)")
                .status());
  ASSERT_OK_AND_ASSIGN(
      ResultSet mid,
      db_->ExecuteSql(&txn, 0, "SELECT COUNT(*) FROM emp WHERE dept = 'eng'"));
  EXPECT_EQ(std::get<int64_t>(mid.rows[0].at(0)), 3);  // own insert visible
  ASSERT_OK(txn.Commit());
  ResultSet after = Exec("SELECT COUNT(*) FROM emp WHERE dept = 'eng'");
  EXPECT_EQ(std::get<int64_t>(after.rows[0].at(0)), 3);
}

TEST_F(SqlEndToEndTest, AbortedSqlTransactionRollsBack) {
  tx::Transaction txn(session_.get());
  ASSERT_OK(txn.Begin());
  ASSERT_OK(db_->ExecuteSql(&txn, 0,
                            "UPDATE emp SET salary = 0.0 WHERE id = 1")
                .status());
  ASSERT_OK(txn.Abort());
  ResultSet check = Exec("SELECT salary FROM emp WHERE id = 1");
  EXPECT_DOUBLE_EQ(std::get<double>(check.rows[0].at(0)), 120.0);
}

TEST_F(SqlEndToEndTest, IsNullPredicate) {
  Exec("INSERT INTO emp (id, name) VALUES (9, 'ghost')");
  ResultSet rs = Exec("SELECT name FROM emp WHERE dept IS NULL");
  ASSERT_EQ(rs.rows.size(), 1u);
  EXPECT_EQ(std::get<std::string>(rs.rows[0].at(0)), "ghost");
  ResultSet rs2 = Exec("SELECT COUNT(*) FROM emp WHERE dept IS NOT NULL");
  EXPECT_EQ(std::get<int64_t>(rs2.rows[0].at(0)), 4);
}

// ---------------------------------------------------------------------------
// Vectorized aggregate pushdown: on/off parity

/// Runs every query against two identical databases — operator pushdown on
/// (vectorized scan fragments) and off (row path) — and requires
/// bit-identical ResultSets: same columns, same row order, exact variant
/// equality including doubles. Data uses exactly-representable amounts
/// (multiples of 0.25) so the fragment path's per-partition sum
/// reassociation cannot hide behind rounding.
class PushdownParityTest : public ::testing::Test {
 protected:
  PushdownParityTest() {
    with_ = MakeDb(/*pushdown=*/true);
    without_ = MakeDb(/*pushdown=*/false);
    with_session_ = with_->OpenSession(0, 0);
    without_session_ = without_->OpenSession(0, 0);
  }

  static std::unique_ptr<db::TellDb> MakeDb(bool pushdown) {
    db::TellDbOptions options;
    options.network = sim::NetworkModel::Instant();
    options.operator_pushdown = pushdown;
    options.scan_chunk_cells = 4;  // several chunks even on a tiny table
    auto db = std::make_unique<db::TellDb>(options);
    EXPECT_OK(db->ExecuteDdl(
        "CREATE TABLE sale (id INT, region VARCHAR(8), qty INT, "
        "amount DOUBLE, note VARCHAR(8), PRIMARY KEY (id))"));
    auto session = db->OpenSession(0, 0);
    const char* regions[] = {"north", "south", "east", "west"};
    for (int i = 0; i < 48; ++i) {
      std::string sql = "INSERT INTO sale VALUES (" + std::to_string(i) +
                        ", '" + regions[i % 4] + "', " +
                        std::to_string(i % 7) + ", " +
                        std::to_string(i * 25) + ".25, 'n" +
                        std::to_string(i % 5) + "')";
      EXPECT_OK(db->AutoCommitSql(session.get(), sql).status());
    }
    // Rows with NULL qty/amount/note: aggregates must skip them.
    for (int i = 48; i < 52; ++i) {
      std::string sql = "INSERT INTO sale (id, region) VALUES (" +
                        std::to_string(i) + ", '" + regions[i % 4] + "')";
      EXPECT_OK(db->AutoCommitSql(session.get(), sql).status());
    }
    return db;
  }

  void ExpectParity(const std::string& sql) {
    ASSERT_OK_AND_ASSIGN(ResultSet on,
                         with_->AutoCommitSql(with_session_.get(), sql));
    ASSERT_OK_AND_ASSIGN(ResultSet off,
                         without_->AutoCommitSql(without_session_.get(), sql));
    EXPECT_EQ(on.columns, off.columns) << sql;
    ASSERT_EQ(on.rows.size(), off.rows.size()) << sql;
    for (size_t r = 0; r < on.rows.size(); ++r) {
      ASSERT_EQ(on.rows[r].size(), off.rows[r].size()) << sql;
      for (size_t c = 0; c < on.rows[r].size(); ++c) {
        // Exact variant equality: same alternative, bit-identical value.
        EXPECT_TRUE(on.rows[r].at(c) == off.rows[r].at(c))
            << sql << " row " << r << " col " << c << ": pushdown="
            << schema::ValueToString(on.rows[r].at(c)) << " row-path="
            << schema::ValueToString(off.rows[r].at(c));
      }
    }
  }

  std::unique_ptr<db::TellDb> with_;
  std::unique_ptr<db::TellDb> without_;
  std::unique_ptr<tx::Session> with_session_;
  std::unique_ptr<tx::Session> without_session_;
};

TEST_F(PushdownParityTest, PlainAggregatesBitIdentical) {
  uint64_t fragments = with_session_->metrics()->scan_fragments;
  ExpectParity("SELECT COUNT(*) FROM sale");
  ExpectParity("SELECT COUNT(*), SUM(qty), MIN(qty), MAX(qty), AVG(qty) "
               "FROM sale");
  ExpectParity("SELECT SUM(amount), AVG(amount) FROM sale");
  ExpectParity("SELECT COUNT(qty) FROM sale");  // NULLs skipped
  ExpectParity("SELECT MIN(note), MAX(note) FROM sale");  // string min/max
  ExpectParity("SELECT SUM(amount) FROM sale WHERE qty >= 3");
  ExpectParity("SELECT COUNT(*), SUM(qty) FROM sale WHERE qty > 999");
  // The pushdown database really took the fragment path.
  EXPECT_GT(with_session_->metrics()->scan_fragments, fragments);
}

TEST_F(PushdownParityTest, GroupByBitIdentical) {
  ExpectParity("SELECT region, COUNT(*) FROM sale GROUP BY region");
  ExpectParity("SELECT region, COUNT(*), SUM(amount), AVG(qty) FROM sale "
               "GROUP BY region");
  ExpectParity("SELECT region, MIN(amount), MAX(amount) FROM sale "
               "WHERE qty > 1 GROUP BY region");
  ExpectParity("SELECT qty, COUNT(*) FROM sale GROUP BY qty "
               "ORDER BY qty DESC");
  ExpectParity("SELECT region, COUNT(*) FROM sale GROUP BY region LIMIT 2");
  ExpectParity("SELECT region, SUM(qty) FROM sale WHERE amount > 300.0 "
               "GROUP BY region ORDER BY region");
}

TEST_F(PushdownParityTest, DirtyWritesFallBackToRowPath) {
  // A transaction with buffered writes on the table cannot use storage-side
  // fragments (the nodes can't see its private buffer); results must still
  // include the uncommitted rows.
  tx::Transaction txn(with_session_.get());
  ASSERT_OK(txn.Begin());
  ASSERT_OK(with_
                ->ExecuteSql(&txn, 0,
                             "INSERT INTO sale VALUES (99, 'north', 7, "
                             "5000.25, 'zz')")
                .status());
  uint64_t fragments = with_session_->metrics()->scan_fragments;
  ASSERT_OK_AND_ASSIGN(
      ResultSet rs,
      with_->ExecuteSql(&txn, 0, "SELECT COUNT(*), MAX(amount) FROM sale"));
  EXPECT_EQ(with_session_->metrics()->scan_fragments, fragments);
  EXPECT_EQ(std::get<int64_t>(rs.rows[0].at(0)), 53);
  EXPECT_DOUBLE_EQ(std::get<double>(rs.rows[0].at(1)), 5000.25);
  ASSERT_OK(txn.Abort());
}

TEST_F(PushdownParityTest, LimitPushedToStorageNodes) {
  ExpectParity("SELECT id FROM sale WHERE qty >= 0 LIMIT 5");
  // With LIMIT 1 the merged scan returns exactly one row to the PN.
  uint64_t returned = with_session_->metrics()->scan_rows_returned;
  ASSERT_OK_AND_ASSIGN(ResultSet rs,
                       with_->AutoCommitSql(
                           with_session_.get(),
                           "SELECT id FROM sale WHERE qty >= 0 LIMIT 1"));
  ASSERT_EQ(rs.rows.size(), 1u);
  EXPECT_EQ(with_session_->metrics()->scan_rows_returned, returned + 1);
}

// ---------------------------------------------------------------------------
// Snapshot consistency of chunked fragment scans under concurrent writers

TEST(SqlScanConsistencyTest, AggregatesSeeConsistentSnapshotUnderTransfers) {
  db::TellDbOptions options;
  options.network = sim::NetworkModel::Instant();
  options.operator_pushdown = true;
  options.scan_chunk_cells = 4;  // many lock drops per fragment scan
  db::TellDb db(options);
  ASSERT_OK(db.ExecuteDdl(
      "CREATE TABLE acct (id INT, bal INT, PRIMARY KEY (id))"));
  auto loader = db.OpenSession(0, 0);
  constexpr int kAccounts = 64;
  constexpr int64_t kTotal = kAccounts * 100;
  for (int i = 0; i < kAccounts; ++i) {
    ASSERT_OK(db.AutoCommitSql(loader.get(),
                               "INSERT INTO acct VALUES (" +
                                   std::to_string(i) + ", 100)")
                  .status());
  }

  // Writer: balance-preserving transfers. Any snapshot-consistent reader
  // must see the invariants below; a scan that mixed chunks from different
  // snapshots would catch a transfer halfway.
  std::atomic<bool> stop{false};
  std::atomic<int> transfers{0};
  std::thread writer([&] {
    auto session = db.OpenSession(0, 1);
    uint64_t x = 0x9E3779B97F4A7C15ULL;
    while (!stop.load(std::memory_order_relaxed)) {
      x = x * 6364136223846793005ULL + 1442695040888963407ULL;
      int from = static_cast<int>((x >> 33) % kAccounts);
      int to = (from + 1 + static_cast<int>((x >> 20) % (kAccounts - 1))) %
               kAccounts;
      tx::Transaction txn(session.get());
      if (!txn.Begin().ok()) continue;
      Status st = db.ExecuteSql(&txn, 0,
                                "UPDATE acct SET bal = bal - 5 WHERE id = " +
                                    std::to_string(from))
                      .status();
      if (st.ok()) {
        st = db.ExecuteSql(&txn, 0,
                           "UPDATE acct SET bal = bal + 5 WHERE id = " +
                               std::to_string(to))
                 .status();
      }
      if (st.ok() && txn.Commit().ok()) {
        transfers.fetch_add(1, std::memory_order_relaxed);
      } else {
        (void)txn.Abort();
      }
    }
  });

  auto reader = db.OpenSession(0, 2);
  for (int i = 0; i < 50 || transfers.load() < 20; ++i) {
    ASSERT_LT(i, 5000) << "writer made no progress";
    ASSERT_OK_AND_ASSIGN(
        ResultSet rs,
        db.AutoCommitSql(reader.get(),
                         "SELECT COUNT(*), SUM(bal), MIN(bal) FROM acct"));
    ASSERT_EQ(rs.rows.size(), 1u);
    EXPECT_EQ(std::get<int64_t>(rs.rows[0].at(0)), kAccounts);
    // SUM over ints folds through exactly-representable doubles.
    EXPECT_DOUBLE_EQ(std::get<double>(rs.rows[0].at(1)),
                     static_cast<double>(kTotal));
  }
  stop.store(true);
  writer.join();
  EXPECT_GT(transfers.load(), 0);
  EXPECT_GT(reader->metrics()->scan_fragments, 0u);
  EXPECT_GT(reader->metrics()->scan_chunk_lock_releases, 0u);
}

TEST(SqlScanConsistencyTest, OrderLineAggregatesStayCoherentUnderTpcc) {
  db::TellDbOptions options;
  options.network = sim::NetworkModel::Instant();
  options.operator_pushdown = true;
  options.scan_chunk_cells = 16;
  db::TellDb db(options);
  tpcc::TpccScale scale;
  scale.warehouses = 2;
  scale.districts_per_warehouse = 2;
  scale.customers_per_district = 8;
  scale.items = 20;
  scale.initial_orders_per_district = 4;
  ASSERT_OK(tpcc::CreateTpccTables(&db));
  ASSERT_OK(tpcc::LoadTpcc(&db, scale));

  std::atomic<bool> stop{false};
  std::thread writer([&] {
    auto session = db.OpenSession(0, 1);
    auto tables = tpcc::OpenTpccTables(&db, 0);
    ASSERT_OK(tables.status());
    tpcc::TpccExecutor exec(session.get(), *tables);
    tpcc::InputGenerator gen(scale, tpcc::Mix::kWriteIntensive, /*seed=*/7,
                             /*home_warehouse=*/1);
    while (!stop.load(std::memory_order_relaxed)) {
      auto outcome = exec.Execute(gen.Next());
      ASSERT_OK(outcome.status());
    }
  });

  // Order lines are append-only and every quantity is in [1, 10]: any
  // snapshot gives count monotone non-decreasing and count <= sum <=
  // 10 * count. A scan mixing chunks from different snapshots could break
  // monotonicity or the sum bounds.
  auto reader = db.OpenSession(0, 2);
  int64_t last_count = 0;
  for (int i = 0; i < 40; ++i) {
    ASSERT_OK_AND_ASSIGN(
        ResultSet rs,
        db.AutoCommitSql(reader.get(),
                         "SELECT COUNT(*), SUM(ol_quantity), "
                         "MIN(ol_quantity), MAX(ol_quantity) "
                         "FROM order_line"));
    ASSERT_EQ(rs.rows.size(), 1u);
    int64_t count = std::get<int64_t>(rs.rows[0].at(0));
    double sum = std::get<double>(rs.rows[0].at(1));
    EXPECT_GE(count, last_count);
    last_count = count;
    EXPECT_GE(sum, static_cast<double>(count));
    EXPECT_LE(sum, 10.0 * static_cast<double>(count));
    EXPECT_GE(std::get<int64_t>(rs.rows[0].at(2)), 1);
    EXPECT_LE(std::get<int64_t>(rs.rows[0].at(3)), 10);
  }
  stop.store(true);
  writer.join();
  EXPECT_GT(reader->metrics()->scan_fragments, 0u);
}

}  // namespace
}  // namespace tell::sql
