#include <gtest/gtest.h>

#include "tests/test_util.h"
#include "workload/tpcc/tpcc_driver.h"
#include "workload/tpcc/tpcc_loader.h"

namespace tell::tpcc {
namespace {

using schema::Tuple;
using schema::Value;

TpccScale TinyScale() {
  TpccScale scale;
  scale.warehouses = 2;
  scale.districts_per_warehouse = 3;
  scale.customers_per_district = 12;
  scale.items = 50;
  scale.initial_orders_per_district = 9;
  return scale;
}

class TpccTest : public ::testing::Test {
 protected:
  TpccTest() {
    db::TellDbOptions options;
    options.num_processing_nodes = 2;
    options.num_storage_nodes = 3;
    options.network = sim::NetworkModel::Instant();
    db_ = std::make_unique<db::TellDb>(options);
    scale_ = TinyScale();
    EXPECT_OK(CreateTpccTables(db_.get()));
    EXPECT_OK(LoadTpcc(db_.get(), scale_));
    session_ = db_->OpenSession(0, 0);
    auto tables = OpenTpccTables(db_.get(), 0);
    EXPECT_TRUE(tables.ok());
    tables_ = *tables;
    executor_ = std::make_unique<TpccExecutor>(session_.get(), tables_);
  }

  /// Sum over all districts of (d_next_o_id - 1) must equal the number of
  /// orders per district (TPC-C consistency condition 3.3.2.1-ish).
  void CheckOrderConsistency() {
    tx::Transaction txn(session_.get());
    ASSERT_OK(txn.Begin());
    for (int64_t w = 1; w <= scale_.warehouses; ++w) {
      for (int64_t d = 1; d <= scale_.districts_per_warehouse; ++d) {
        ASSERT_OK_AND_ASSIGN(
            std::optional<Tuple> district,
            txn.ReadByKey(tables_.district, {Value(w), Value(d)}));
        ASSERT_TRUE(district.has_value());
        int64_t next_o_id = district->GetInt(col::kDNextOId);
        ASSERT_OK_AND_ASSIGN(
            auto orders,
            txn.ScanIndex(tables_.orders, -1, {Value(w), Value(d)},
                          {Value(w), Value(d + 1)}, 0));
        int64_t max_o_id = 0;
        for (const auto& [rid, order] : orders) {
          max_o_id = std::max(max_o_id, order.GetInt(col::kOId));
        }
        EXPECT_EQ(next_o_id, max_o_id + 1)
            << "w=" << w << " d=" << d << ": d_next_o_id must equal "
            << "max(o_id)+1";
      }
    }
    ASSERT_OK(txn.Commit());
  }

  std::unique_ptr<db::TellDb> db_;
  TpccScale scale_;
  std::unique_ptr<tx::Session> session_;
  TpccTables tables_;
  std::unique_ptr<TpccExecutor> executor_;
};

TEST_F(TpccTest, LoaderPopulatesAllTables) {
  tx::Transaction txn(session_.get());
  ASSERT_OK(txn.Begin());
  // Every warehouse row exists.
  for (int64_t w = 1; w <= scale_.warehouses; ++w) {
    ASSERT_OK_AND_ASSIGN(std::optional<Tuple> row,
                         txn.ReadByKey(tables_.warehouse, {Value(w)}));
    EXPECT_TRUE(row.has_value());
  }
  // Stock exists for every (warehouse, item).
  ASSERT_OK_AND_ASSIGN(
      std::optional<Tuple> stock,
      txn.ReadByKey(tables_.stock,
                    {Value(int64_t{2}), Value(int64_t{scale_.items})}));
  EXPECT_TRUE(stock.has_value());
  // Customers found by the last-name index.
  ASSERT_OK_AND_ASSIGN(
      auto by_name,
      txn.ScanIndex(tables_.customer, kCustomerByNameIndex,
                    {Value(int64_t{1}), Value(int64_t{1})},
                    {Value(int64_t{1}), Value(int64_t{2})}, 0));
  EXPECT_EQ(by_name.size(), scale_.customers_per_district);
  ASSERT_OK(txn.Commit());
  CheckOrderConsistency();
}

TEST_F(TpccTest, NewOrderCommitsAndAdvancesDistrict) {
  NewOrderInput input;
  input.warehouse = 1;
  input.district = 1;
  input.customer = 3;
  input.lines = {{1, 1, 5}, {2, 1, 3}};
  ASSERT_OK_AND_ASSIGN(TxnOutcome outcome, executor_->NewOrder(input));
  EXPECT_TRUE(outcome.committed);

  tx::Transaction txn(session_.get());
  ASSERT_OK(txn.Begin());
  ASSERT_OK_AND_ASSIGN(
      std::optional<Tuple> district,
      txn.ReadByKey(tables_.district, {Value(int64_t{1}), Value(int64_t{1})}));
  int64_t o_id = district->GetInt(col::kDNextOId) - 1;
  EXPECT_EQ(o_id, scale_.initial_orders_per_district + 1);
  // The order, its lines and the new-order row exist.
  ASSERT_OK_AND_ASSIGN(
      std::optional<Tuple> order,
      txn.ReadByKey(tables_.orders,
                    {Value(int64_t{1}), Value(int64_t{1}), Value(o_id)}));
  ASSERT_TRUE(order.has_value());
  EXPECT_EQ(order->GetInt(col::kOOlCnt), 2);
  ASSERT_OK_AND_ASSIGN(
      std::optional<Tuple> line2,
      txn.ReadByKey(tables_.order_line, {Value(int64_t{1}), Value(int64_t{1}),
                                         Value(o_id), Value(int64_t{2})}));
  ASSERT_TRUE(line2.has_value());
  ASSERT_OK_AND_ASSIGN(
      std::optional<Tuple> new_order,
      txn.ReadByKey(tables_.new_order,
                    {Value(int64_t{1}), Value(int64_t{1}), Value(o_id)}));
  EXPECT_TRUE(new_order.has_value());
  ASSERT_OK(txn.Commit());
  CheckOrderConsistency();
}

TEST_F(TpccTest, NewOrderStockDecremented) {
  tx::Transaction before(session_.get());
  ASSERT_OK(before.Begin());
  ASSERT_OK_AND_ASSIGN(
      std::optional<Tuple> stock_before,
      before.ReadByKey(tables_.stock, {Value(int64_t{1}), Value(int64_t{1})}));
  ASSERT_OK(before.Commit());
  int64_t qty_before = stock_before->GetInt(col::kSQuantity);

  NewOrderInput input;
  input.warehouse = 1;
  input.district = 2;
  input.customer = 1;
  input.lines = {{1, 1, 4}};
  ASSERT_OK_AND_ASSIGN(TxnOutcome outcome, executor_->NewOrder(input));
  ASSERT_TRUE(outcome.committed);

  tx::Transaction after(session_.get());
  ASSERT_OK(after.Begin());
  ASSERT_OK_AND_ASSIGN(
      std::optional<Tuple> stock_after,
      after.ReadByKey(tables_.stock, {Value(int64_t{1}), Value(int64_t{1})}));
  ASSERT_OK(after.Commit());
  int64_t qty_after = stock_after->GetInt(col::kSQuantity);
  int64_t expected = qty_before >= 14 ? qty_before - 4 : qty_before - 4 + 91;
  EXPECT_EQ(qty_after, expected);
  EXPECT_EQ(stock_after->GetInt(col::kSOrderCnt), 1);
}

TEST_F(TpccTest, NewOrderInvalidItemRollsBack) {
  NewOrderInput input;
  input.warehouse = 1;
  input.district = 1;
  input.customer = 1;
  input.lines = {{1, 1, 1},
                 {static_cast<int64_t>(scale_.items) + 1, 1, 1}};
  input.rollback = true;
  ASSERT_OK_AND_ASSIGN(TxnOutcome outcome, executor_->NewOrder(input));
  EXPECT_FALSE(outcome.committed);
  EXPECT_TRUE(outcome.user_abort);
  CheckOrderConsistency();  // no partial effects
}

TEST_F(TpccTest, PaymentUpdatesBalancesAndYtd) {
  PaymentInput input;
  input.warehouse = 1;
  input.district = 1;
  input.customer_warehouse = 1;
  input.customer_district = 1;
  input.customer_id = 2;
  input.amount = 123.0;
  ASSERT_OK_AND_ASSIGN(TxnOutcome outcome, executor_->Payment(input));
  ASSERT_TRUE(outcome.committed);

  tx::Transaction txn(session_.get());
  ASSERT_OK(txn.Begin());
  ASSERT_OK_AND_ASSIGN(std::optional<Tuple> warehouse,
                       txn.ReadByKey(tables_.warehouse, {Value(int64_t{1})}));
  EXPECT_DOUBLE_EQ(warehouse->GetDouble(col::kWYtd), 300000.0 + 123.0);
  ASSERT_OK_AND_ASSIGN(
      std::optional<Tuple> customer,
      txn.ReadByKey(tables_.customer,
                    {Value(int64_t{1}), Value(int64_t{1}), Value(int64_t{2})}));
  EXPECT_DOUBLE_EQ(customer->GetDouble(col::kCBalance), -10.0 - 123.0);
  EXPECT_EQ(customer->GetInt(col::kCPaymentCnt), 2);
  ASSERT_OK(txn.Commit());
}

TEST_F(TpccTest, PaymentByLastNameFindsMiddleCustomer) {
  PaymentInput input;
  input.warehouse = 1;
  input.district = 1;
  input.customer_warehouse = 1;
  input.customer_district = 1;
  input.by_last_name = true;
  input.customer_last = LastName(0);  // loader names customers 0..n-1
  input.amount = 10.0;
  ASSERT_OK_AND_ASSIGN(TxnOutcome outcome, executor_->Payment(input));
  EXPECT_TRUE(outcome.committed);
}

TEST_F(TpccTest, DeliveryClearsOldestNewOrders) {
  tx::Transaction before(session_.get());
  ASSERT_OK(before.Begin());
  ASSERT_OK_AND_ASSIGN(
      auto pending_before,
      before.ScanIndex(tables_.new_order, -1, {Value(int64_t{1})},
                       {Value(int64_t{2})}, 0));
  ASSERT_OK(before.Commit());
  ASSERT_FALSE(pending_before.empty());

  DeliveryInput input{1, 5};
  ASSERT_OK_AND_ASSIGN(TxnOutcome outcome, executor_->Delivery(input));
  ASSERT_TRUE(outcome.committed);

  tx::Transaction after(session_.get());
  ASSERT_OK(after.Begin());
  ASSERT_OK_AND_ASSIGN(
      auto pending_after,
      after.ScanIndex(tables_.new_order, -1, {Value(int64_t{1})},
                      {Value(int64_t{2})}, 0));
  ASSERT_OK(after.Commit());
  // One new-order per non-empty district was delivered.
  EXPECT_EQ(pending_after.size(),
            pending_before.size() - scale_.districts_per_warehouse);
}

TEST_F(TpccTest, OrderStatusAndStockLevelComplete) {
  OrderStatusInput os;
  os.warehouse = 1;
  os.district = 1;
  os.customer_id = 1;
  ASSERT_OK_AND_ASSIGN(TxnOutcome outcome1, executor_->OrderStatus(os));
  EXPECT_TRUE(outcome1.committed);

  StockLevelInput sl;
  sl.warehouse = 1;
  sl.district = 1;
  sl.threshold = 15;
  ASSERT_OK_AND_ASSIGN(TxnOutcome outcome2, executor_->StockLevel(sl));
  EXPECT_TRUE(outcome2.committed);
}

TEST_F(TpccTest, GeneratorRespectsScaleBounds) {
  InputGenerator generator(scale_, Mix::kWriteIntensive, 11, 1);
  for (int i = 0; i < 500; ++i) {
    TxnInput input = generator.Next();
    if (input.type == TxnType::kNewOrder) {
      EXPECT_EQ(input.new_order.warehouse, 1);
      EXPECT_GE(input.new_order.district, 1);
      EXPECT_LE(input.new_order.district,
                scale_.districts_per_warehouse);
      for (const auto& line : input.new_order.lines) {
        if (!input.new_order.rollback) {
          EXPECT_LE(line.item_id, scale_.items);
        }
        EXPECT_GE(line.quantity, 1);
        EXPECT_LE(line.quantity, 10);
      }
    }
  }
}

TEST_F(TpccTest, GeneratorShardableNeverRemote) {
  InputGenerator generator(scale_, Mix::kShardable, 13, 1);
  for (int i = 0; i < 500; ++i) {
    TxnInput input = generator.Next();
    if (input.type == TxnType::kNewOrder) {
      EXPECT_FALSE(input.new_order.remote);
      for (const auto& line : input.new_order.lines) {
        EXPECT_EQ(line.supply_warehouse, input.new_order.warehouse);
      }
    }
    if (input.type == TxnType::kPayment) {
      EXPECT_FALSE(input.payment.remote);
    }
  }
}

TEST_F(TpccTest, GeneratorMixRatiosApproximatelyCorrect) {
  InputGenerator generator(scale_, Mix::kWriteIntensive, 17, 1);
  int counts[5] = {0};
  constexpr int kSamples = 20000;
  for (int i = 0; i < kSamples; ++i) {
    counts[static_cast<int>(generator.Next().type)]++;
  }
  EXPECT_NEAR(counts[0] / double(kSamples), 0.45, 0.02);  // new-order
  EXPECT_NEAR(counts[1] / double(kSamples), 0.43, 0.02);  // payment
  EXPECT_NEAR(counts[2] / double(kSamples), 0.04, 0.01);  // delivery
  EXPECT_NEAR(counts[3] / double(kSamples), 0.04, 0.01);  // order-status
  EXPECT_NEAR(counts[4] / double(kSamples), 0.04, 0.01);  // stock-level
}

TEST_F(TpccTest, DriverRunsMultiWorkerWorkload) {
  TellBackend backend(db_.get());
  DriverOptions options;
  options.scale = scale_;
  options.mix = Mix::kWriteIntensive;
  options.num_workers = 4;
  options.duration_virtual_ms = 20;
  ASSERT_OK_AND_ASSIGN(DriverResult result, RunTpcc(&backend, options));
  EXPECT_GT(result.committed, 0u);
  EXPECT_GT(result.tps, 0.0);
  EXPECT_GT(result.committed_new_order, 0u);
  EXPECT_LT(result.abort_rate, 0.9);
  CheckOrderConsistency();
}

TEST_F(TpccTest, DriverReadIntensiveMixMostlyReads) {
  TellBackend backend(db_.get());
  DriverOptions options;
  options.scale = scale_;
  options.mix = Mix::kReadIntensive;
  options.num_workers = 2;
  options.duration_virtual_ms = 20;
  ASSERT_OK_AND_ASSIGN(DriverResult result, RunTpcc(&backend, options));
  EXPECT_GT(result.committed, 0u);
  // Read-dominated mix: very few conflicts.
  EXPECT_LT(result.abort_rate, 0.1);
}

}  // namespace
}  // namespace tell::tpcc
