// Property-style parameterized sweeps over the core invariants:
// snapshot-descriptor algebra, ordered key encodings, versioned-record GC,
// B+tree equivalence under random workloads, and serializable-history
// checks for concurrent counter increments.
#include <gtest/gtest.h>

#include <map>
#include <thread>

#include "common/random.h"
#include "common/serde.h"
#include "commitmgr/snapshot_descriptor.h"
#include "db/tell_db.h"
#include "index/btree.h"
#include "schema/versioned_record.h"
#include "tests/test_util.h"

namespace tell {
namespace {

// ---------------------------------------------------------------------------
// SnapshotDescriptor algebra under random completion orders

class SnapshotPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(SnapshotPropertyTest, BaseEqualsContiguousPrefixForAnyOrder) {
  Random rng(GetParam());
  constexpr commitmgr::Tid kMax = 200;
  std::vector<commitmgr::Tid> tids;
  for (commitmgr::Tid t = 1; t <= kMax; ++t) tids.push_back(t);
  for (size_t i = tids.size(); i > 1; --i) {
    std::swap(tids[i - 1], tids[rng.Uniform(i)]);
  }
  commitmgr::SnapshotDescriptor snapshot;
  std::set<commitmgr::Tid> completed;
  for (commitmgr::Tid tid : tids) {
    snapshot.MarkCompleted(tid);
    completed.insert(tid);
    // Invariant: base = length of the contiguous completed prefix.
    commitmgr::Tid expected_base = 0;
    while (completed.count(expected_base + 1)) ++expected_base;
    ASSERT_EQ(snapshot.base(), expected_base);
    // Invariant: CanRead(t) == t completed, for every t.
    for (commitmgr::Tid t = 1; t <= kMax; ++t) {
      ASSERT_EQ(snapshot.CanRead(t), completed.count(t) > 0) << "tid " << t;
    }
  }
  EXPECT_EQ(snapshot.base(), kMax);
}

TEST_P(SnapshotPropertyTest, SerializeRoundTripAnyState) {
  Random rng(GetParam() * 31 + 7);
  commitmgr::SnapshotDescriptor snapshot;
  for (int i = 0; i < 300; ++i) {
    snapshot.MarkCompleted(1 + rng.Uniform(500));
  }
  ASSERT_OK_AND_ASSIGN(commitmgr::SnapshotDescriptor copy,
                       commitmgr::SnapshotDescriptor::Deserialize(
                           snapshot.Serialize()));
  EXPECT_TRUE(copy == snapshot);
}

TEST_P(SnapshotPropertyTest, MergeIsUnionAndMonotone) {
  Random rng(GetParam() * 97 + 3);
  commitmgr::SnapshotDescriptor a, b;
  std::set<commitmgr::Tid> set_a, set_b;
  for (int i = 0; i < 150; ++i) {
    commitmgr::Tid tid = 1 + rng.Uniform(300);
    if (rng.Bernoulli(0.5)) {
      a.MarkCompleted(tid);
      set_a.insert(tid);
    } else {
      b.MarkCompleted(tid);
      set_b.insert(tid);
    }
  }
  // Record what each side can read pre-merge.
  commitmgr::SnapshotDescriptor merged = a;
  merged.MergeFrom(b);
  for (commitmgr::Tid t = 1; t <= 300; ++t) {
    bool expected = a.CanRead(t) || b.CanRead(t);
    ASSERT_EQ(merged.CanRead(t), expected) << "tid " << t;
  }
  // Both inputs are subsets of the merge.
  EXPECT_TRUE(a.IsSubsetOf(merged));
  EXPECT_TRUE(b.IsSubsetOf(merged));
}

INSTANTIATE_TEST_SUITE_P(Seeds, SnapshotPropertyTest,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34));

// ---------------------------------------------------------------------------
// Ordered key encoding: byte order == value order, for random tuples

class KeyOrderPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(KeyOrderPropertyTest, CompositeKeyOrderMatchesValueOrder) {
  Random rng(GetParam());
  auto random_values = [&]() {
    std::vector<schema::Value> values;
    values.push_back(schema::Value(rng.UniformInt(-1000, 1000)));
    values.push_back(schema::Value(rng.AlphaString(0, 6)));
    values.push_back(
        schema::Value(static_cast<double>(rng.UniformInt(-500, 500)) / 7.0));
    return values;
  };
  auto compare_values = [](const std::vector<schema::Value>& a,
                           const std::vector<schema::Value>& b) {
    for (size_t i = 0; i < a.size(); ++i) {
      int c = schema::CompareValues(a[i], b[i]);
      if (c != 0) return c;
    }
    return 0;
  };
  for (int trial = 0; trial < 500; ++trial) {
    auto a = random_values();
    auto b = random_values();
    ASSERT_OK_AND_ASSIGN(std::string ka, schema::EncodeIndexKeyValues(a));
    ASSERT_OK_AND_ASSIGN(std::string kb, schema::EncodeIndexKeyValues(b));
    int value_order = compare_values(a, b);
    int key_order = ka.compare(kb);
    ASSERT_EQ(value_order < 0, key_order < 0);
    ASSERT_EQ(value_order == 0, key_order == 0);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, KeyOrderPropertyTest,
                         ::testing::Values(11, 22, 33, 44));

// ---------------------------------------------------------------------------
// VersionedRecord GC safety: GC never removes a version some snapshot with
// base >= lav could need.

class GcPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(GcPropertyTest, GcPreservesVisibilityForAllFutureSnapshots) {
  Random rng(GetParam());
  for (int trial = 0; trial < 200; ++trial) {
    schema::VersionedRecord record;
    std::vector<commitmgr::Tid> versions;
    commitmgr::Tid v = 0;
    int count = 1 + static_cast<int>(rng.Uniform(8));
    for (int i = 0; i < count; ++i) {
      v += 1 + rng.Uniform(20);
      record.PutVersion(v, "v" + std::to_string(v));
      versions.push_back(v);
    }
    commitmgr::Tid lav = rng.Uniform(v + 10);
    schema::VersionedRecord collected = record;
    collected.CollectGarbage(lav);
    // Any transaction alive now has snapshot base >= lav; for every such
    // base the visible version must be identical before and after GC.
    for (commitmgr::Tid base = lav; base <= v + 5; ++base) {
      commitmgr::SnapshotDescriptor snapshot(base);
      const schema::RecordVersion* before = record.VisibleVersion(snapshot);
      const schema::RecordVersion* after = collected.VisibleVersion(snapshot);
      if (before == nullptr) {
        ASSERT_EQ(after, nullptr);
      } else {
        ASSERT_NE(after, nullptr) << "GC lost a visible version";
        ASSERT_EQ(before->version, after->version);
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, GcPropertyTest,
                         ::testing::Values(101, 202, 303, 404, 505));

// ---------------------------------------------------------------------------
// B+tree equals std::multimap under random op sequences, across fanouts

class BTreePropertyTest : public ::testing::TestWithParam<uint32_t> {};

TEST_P(BTreePropertyTest, MatchesModelUnderRandomOps) {
  store::ClusterOptions cluster_options;
  cluster_options.num_storage_nodes = 2;
  store::Cluster cluster(cluster_options);
  auto table = *cluster.CreateTable("idx");
  sim::VirtualClock clock;
  sim::WorkerMetrics metrics;
  store::ClientOptions client_options;
  client_options.network = sim::NetworkModel::Instant();
  client_options.cpu.per_op_ns = 0;
  store::StorageClient client(&cluster, nullptr, client_options, &clock,
                              &metrics);
  ASSERT_OK(index::BTree::Create(&client, table));
  index::NodeCache cache;
  index::BTreeOptions tree_options;
  tree_options.fanout = GetParam();
  index::BTree tree(table, tree_options, &cache);

  std::multimap<std::string, uint64_t> model;
  Random rng(GetParam() * 1000 + 1);
  for (int op = 0; op < 1500; ++op) {
    std::string key = EncodeOrderedU64(rng.Uniform(120));
    uint64_t rid = rng.Uniform(6) + 1;
    if (rng.Bernoulli(0.65)) {
      bool model_has = false;
      for (auto [it, end] = model.equal_range(key); it != end; ++it) {
        if (it->second == rid) model_has = true;
      }
      ASSERT_OK(tree.Insert(&client, key, rid, false));
      if (!model_has) model.emplace(key, rid);
    } else {
      ASSERT_OK(tree.Remove(&client, key, rid));
      for (auto [it, end] = model.equal_range(key); it != end; ++it) {
        if (it->second == rid) {
          model.erase(it);
          break;
        }
      }
    }
    if (op % 300 == 0) {
      // Spot-check lookups against the model.
      for (uint64_t probe = 0; probe < 120; probe += 17) {
        std::string probe_key = EncodeOrderedU64(probe);
        ASSERT_OK_AND_ASSIGN(std::vector<uint64_t> rids,
                             tree.Lookup(&client, probe_key));
        ASSERT_EQ(rids.size(), model.count(probe_key));
      }
    }
  }
  ASSERT_OK_AND_ASSIGN(std::vector<index::IndexEntry> entries,
                       tree.RangeScan(&client, "", "", 0));
  ASSERT_EQ(entries.size(), model.size());
}

INSTANTIATE_TEST_SUITE_P(Fanouts, BTreePropertyTest,
                         ::testing::Values(4, 8, 16, 64));

// ---------------------------------------------------------------------------
// End-to-end SI invariant: concurrent increments never lose updates,
// across PN counts and buffer strategies.

struct SiSweepParam {
  uint32_t pns;
  db::BufferStrategy buffer;
};

class SiInvariantTest : public ::testing::TestWithParam<SiSweepParam> {};

TEST_P(SiInvariantTest, CommittedIncrementsAllVisible) {
  db::TellDbOptions options;
  options.num_processing_nodes = GetParam().pns;
  options.num_storage_nodes = 3;
  options.network = sim::NetworkModel::Instant();
  options.buffer_strategy = GetParam().buffer;
  db::TellDb db(options);
  ASSERT_OK(db.CreateTable("c",
                           schema::SchemaBuilder()
                               .AddInt64("id")
                               .AddInt64("n")
                               .SetPrimaryKey({"id"})
                               .Build(),
                           {}));
  uint64_t rid;
  {
    auto session = db.OpenSession(0, 0);
    auto table = *db.GetTable(0, "c");
    tx::Transaction txn(session.get());
    ASSERT_OK(txn.Begin());
    schema::Tuple row(2);
    row.Set(0, int64_t{1});
    row.Set(1, int64_t{0});
    ASSERT_OK_AND_ASSIGN(rid, txn.Insert(table, row));
    ASSERT_OK(txn.Commit());
  }
  constexpr int kPerWorker = 40;
  const uint32_t workers = GetParam().pns * 2;
  std::vector<std::thread> threads;
  for (uint32_t w = 0; w < workers; ++w) {
    threads.emplace_back([&, w] {
      auto session = db.OpenSession(w % GetParam().pns, w + 1);
      tx::TableHandle* table = *db.GetTable(w % GetParam().pns, "c");
      int committed = 0;
      while (committed < kPerWorker) {
        tx::Transaction txn(session.get());
        ASSERT_TRUE(txn.Begin().ok());
        auto row = txn.Read(table, rid);
        ASSERT_TRUE(row.ok() && row->has_value());
        schema::Tuple updated = **row;
        updated.Set(1, updated.GetInt(1) + 1);
        Status st = txn.Update(table, rid, updated);
        if (st.ok()) st = txn.Commit();
        if (st.ok()) {
          ++committed;
        } else {
          ASSERT_TRUE(st.IsAborted()) << st.ToString();
          if (txn.state() == tx::TxnState::kRunning) (void)txn.Abort();
        }
      }
    });
  }
  for (auto& thread : threads) thread.join();
  auto session = db.OpenSession(0, 999);
  tx::TableHandle* table = *db.GetTable(0, "c");
  tx::Transaction check(session.get());
  ASSERT_OK(check.Begin());
  ASSERT_OK_AND_ASSIGN(auto row, check.Read(table, rid));
  ASSERT_TRUE(row.has_value());
  EXPECT_EQ(row->GetInt(1), static_cast<int64_t>(workers) * kPerWorker);
  ASSERT_OK(check.Commit());
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, SiInvariantTest,
    ::testing::Values(SiSweepParam{1, db::BufferStrategy::kTransactionOnly},
                      SiSweepParam{2, db::BufferStrategy::kTransactionOnly},
                      SiSweepParam{2, db::BufferStrategy::kSharedRecord},
                      SiSweepParam{2, db::BufferStrategy::kVersionSync}),
    [](const ::testing::TestParamInfo<SiSweepParam>& info) {
      std::string name = "pns" + std::to_string(info.param.pns);
      switch (info.param.buffer) {
        case db::BufferStrategy::kTransactionOnly: name += "_TB"; break;
        case db::BufferStrategy::kSharedRecord: name += "_SB"; break;
        case db::BufferStrategy::kVersionSync: name += "_SBVS"; break;
      }
      return name;
    });

}  // namespace
}  // namespace tell
