#include <gtest/gtest.h>

#include "db/tell_db.h"
#include "tests/test_util.h"

namespace tell::tx {
namespace {

using schema::Tuple;
using schema::Value;

class RecoveryTest : public ::testing::Test {
 protected:
  RecoveryTest() {
    db::TellDbOptions options;
    options.num_processing_nodes = 3;
    options.num_storage_nodes = 3;
    options.replication_factor = 2;
    options.network = sim::NetworkModel::Instant();
    db_ = std::make_unique<db::TellDb>(options);
    EXPECT_OK(db_->CreateTable("t",
                               schema::SchemaBuilder()
                                   .AddInt64("id")
                                   .AddDouble("v")
                                   .SetPrimaryKey({"id"})
                                   .Build(),
                               {}));
  }

  Tuple Row(int64_t id, double v) {
    Tuple t(2);
    t.Set(0, id);
    t.Set(1, v);
    return t;
  }

  std::unique_ptr<db::TellDb> db_;
};

TEST_F(RecoveryTest, PnFailureWithIdleTransactionsIsCheap) {
  auto session = db_->OpenSession(1, 0);
  auto table = *db_->GetTable(1, "t");
  // Begin transactions that never try to commit on PN 1.
  Transaction t1(session.get());
  Transaction t2(session.get());
  ASSERT_OK(t1.Begin());
  ASSERT_OK(t2.Begin());
  ASSERT_OK(t1.Insert(table, Row(1, 1.0)).status());

  ASSERT_OK_AND_ASSIGN(RecoveryStats stats, db_->KillProcessingNode(1));
  // Nothing was applied, so nothing is rolled back — but the abandoned tids
  // are completed so the snapshot base can advance.
  EXPECT_EQ(stats.transactions_rolled_back, 0u);
  EXPECT_EQ(stats.transactions_abandoned, 2u);

  // The snapshot base moves past the abandoned tids for new transactions.
  auto session0 = db_->OpenSession(0, 1);
  Transaction fresh(session0.get());
  ASSERT_OK(fresh.Begin());
  EXPECT_TRUE(fresh.snapshot().CanRead(t1.tid()));
  EXPECT_TRUE(fresh.snapshot().CanRead(t2.tid()));
  ASSERT_OK(fresh.Commit());
}

TEST_F(RecoveryTest, PartiallyAppliedUpdatesAreRolledBack) {
  // Commit a baseline row from PN 0.
  auto session0 = db_->OpenSession(0, 0);
  auto table0 = *db_->GetTable(0, "t");
  uint64_t rid;
  {
    Transaction txn(session0.get());
    ASSERT_OK(txn.Begin());
    ASSERT_OK_AND_ASSIGN(rid, txn.Insert(table0, Row(1, 100.0)));
    ASSERT_OK(txn.Commit());
  }

  // Simulate a PN crash in the middle of Try-Commit: write the log entry
  // and apply the data update, but never set the commit flag (this is
  // exactly the state a crash between §4.3 steps 3 and 4a leaves behind).
  auto session1 = db_->OpenSession(1, 1);
  auto table1 = *db_->GetTable(1, "t");
  Transaction doomed(session1.get());
  ASSERT_OK(doomed.Begin());
  Tid doomed_tid = doomed.tid();
  {
    // Manually mimic the crash: append log entry + apply one version.
    LogEntry entry;
    entry.tid = doomed_tid;
    entry.pn_id = 1;
    entry.write_set = {{table1->meta->data_table, rid}};
    ASSERT_OK(db_->transaction_log()->Append(session1->client(), entry));
    auto cell = db_->cluster()->Get(table1->meta->data_table,
                                    EncodeOrderedU64(rid));
    ASSERT_TRUE(cell.ok());
    ASSERT_OK_AND_ASSIGN(schema::VersionedRecord record,
                         schema::VersionedRecord::Deserialize(cell->value));
    record.PutVersion(doomed_tid, Row(1, -999.0).Serialize(table1->meta->schema));
    ASSERT_OK(db_->cluster()
                  ->ConditionalPut(table1->meta->data_table,
                                   EncodeOrderedU64(rid), cell->stamp,
                                   record.Serialize())
                  .status());
  }

  // Recovery rolls the orphaned version back.
  ASSERT_OK_AND_ASSIGN(RecoveryStats stats, db_->KillProcessingNode(1));
  EXPECT_EQ(stats.transactions_rolled_back, 1u);
  EXPECT_EQ(stats.versions_removed, 1u);

  // The record is back to its committed state and the version is gone.
  auto cell = db_->cluster()->Get(table1->meta->data_table,
                                  EncodeOrderedU64(rid));
  ASSERT_TRUE(cell.ok());
  ASSERT_OK_AND_ASSIGN(schema::VersionedRecord record,
                       schema::VersionedRecord::Deserialize(cell->value));
  EXPECT_FALSE(record.HasVersion(doomed_tid));
  Transaction check(session0.get());
  ASSERT_OK(check.Begin());
  ASSERT_OK_AND_ASSIGN(std::optional<Tuple> row, check.Read(table0, rid));
  ASSERT_TRUE(row.has_value());
  EXPECT_EQ(row->GetDouble(1), 100.0);
  ASSERT_OK(check.Commit());
}

TEST_F(RecoveryTest, CommittedTransactionsSurvivePnFailure) {
  auto session1 = db_->OpenSession(1, 0);
  auto table1 = *db_->GetTable(1, "t");
  uint64_t rid;
  {
    Transaction txn(session1.get());
    ASSERT_OK(txn.Begin());
    ASSERT_OK_AND_ASSIGN(rid, txn.Insert(table1, Row(7, 7.0)));
    ASSERT_OK(txn.Commit());
  }
  ASSERT_OK(db_->KillProcessingNode(1).status());
  // The committed insert is still there.
  auto session0 = db_->OpenSession(0, 1);
  auto table0 = *db_->GetTable(0, "t");
  Transaction check(session0.get());
  ASSERT_OK(check.Begin());
  ASSERT_OK_AND_ASSIGN(std::optional<Tuple> row, check.Read(table0, rid));
  ASSERT_TRUE(row.has_value());
  EXPECT_EQ(row->GetDouble(1), 7.0);
  ASSERT_OK(check.Commit());
}

TEST_F(RecoveryTest, StorageNodeFailureIsTransparentToTransactions) {
  auto session = db_->OpenSession(0, 0);
  auto table = *db_->GetTable(0, "t");
  std::vector<uint64_t> rids;
  {
    Transaction txn(session.get());
    ASSERT_OK(txn.Begin());
    for (int i = 0; i < 20; ++i) {
      ASSERT_OK_AND_ASSIGN(uint64_t rid, txn.Insert(table, Row(i, i)));
      rids.push_back(rid);
    }
    ASSERT_OK(txn.Commit());
  }
  // Kill one storage node; RF2 lets the system fail over.
  ASSERT_OK(db_->KillStorageNode(1));
  // All records still readable and writable.
  Transaction txn(session.get());
  ASSERT_OK(txn.Begin());
  for (size_t i = 0; i < rids.size(); ++i) {
    ASSERT_OK_AND_ASSIGN(std::optional<Tuple> row, txn.Read(table, rids[i]));
    ASSERT_TRUE(row.has_value()) << "rid " << rids[i];
    EXPECT_EQ(row->GetDouble(1), static_cast<double>(i));
  }
  ASSERT_OK(txn.Update(table, rids[0], Row(0, 42.0)));
  ASSERT_OK(txn.Commit());
}

TEST_F(RecoveryTest, TransactionsKeepRunningDuringFailover) {
  auto session = db_->OpenSession(0, 0);
  auto table = *db_->GetTable(0, "t");
  uint64_t rid;
  {
    Transaction txn(session.get());
    ASSERT_OK(txn.Begin());
    ASSERT_OK_AND_ASSIGN(rid, txn.Insert(table, Row(1, 1.0)));
    ASSERT_OK(txn.Commit());
  }
  // Kill the node WITHOUT running the management node first: the client's
  // Unavailable handler must trigger fail-over itself.
  ASSERT_OK_AND_ASSIGN(uint32_t master,
                       db_->cluster()->MasterOf(table->meta->data_table,
                                                EncodeOrderedU64(rid)));
  db_->cluster()->node(master)->Kill();
  Transaction txn(session.get());
  ASSERT_OK(txn.Begin());
  ASSERT_OK_AND_ASSIGN(std::optional<Tuple> row, txn.Read(table, rid));
  ASSERT_TRUE(row.has_value());
  ASSERT_OK(txn.Commit());
}

TEST_F(RecoveryTest, ElasticityAddProcessingNodeNoDataMovement) {
  auto session = db_->OpenSession(0, 0);
  auto table = *db_->GetTable(0, "t");
  uint64_t rid;
  {
    Transaction txn(session.get());
    ASSERT_OK(txn.Begin());
    ASSERT_OK_AND_ASSIGN(rid, txn.Insert(table, Row(1, 1.0)));
    ASSERT_OK(txn.Commit());
  }
  uint64_t memory_before = db_->cluster()->TotalMemoryUsed();
  uint32_t new_pn = db_->AddProcessingNode();
  // No storage data moved (this is the shared-data elasticity pitch).
  EXPECT_EQ(db_->cluster()->TotalMemoryUsed(), memory_before);
  // The new PN can serve transactions immediately.
  auto new_session = db_->OpenSession(new_pn, 99);
  auto new_table = *db_->GetTable(new_pn, "t");
  Transaction txn(new_session.get());
  ASSERT_OK(txn.Begin());
  ASSERT_OK_AND_ASSIGN(std::optional<Tuple> row, txn.Read(new_table, rid));
  ASSERT_TRUE(row.has_value());
  EXPECT_EQ(row->GetDouble(1), 1.0);
  ASSERT_OK(txn.Commit());
}

TEST_F(RecoveryTest, LazyGcSweepsOldVersionsAndLog) {
  auto session = db_->OpenSession(0, 0);
  auto table = *db_->GetTable(0, "t");
  uint64_t rid;
  {
    Transaction txn(session.get());
    ASSERT_OK(txn.Begin());
    ASSERT_OK_AND_ASSIGN(rid, txn.Insert(table, Row(1, 0.0)));
    ASSERT_OK(txn.Commit());
  }
  (void)rid;
  for (int i = 1; i <= 5; ++i) {
    Transaction txn(session.get());
    ASSERT_OK(txn.Begin());
    ASSERT_OK(txn.Update(table, rid, Row(1, i)));
    ASSERT_OK(txn.Commit());
  }
  ASSERT_OK_AND_ASSIGN(GcStats stats, db_->RunGarbageCollection());
  EXPECT_GT(stats.log_entries_truncated, 0u);
  // After GC plus a fresh update the row still reads correctly.
  Transaction check(session.get());
  ASSERT_OK(check.Begin());
  ASSERT_OK_AND_ASSIGN(std::optional<Tuple> row, check.Read(table, rid));
  ASSERT_TRUE(row.has_value());
  EXPECT_EQ(row->GetDouble(1), 5.0);
  ASSERT_OK(check.Commit());
}

TEST_F(RecoveryTest, DeletedRecordFullyCollected) {
  auto session = db_->OpenSession(0, 0);
  auto table = *db_->GetTable(0, "t");
  uint64_t rid;
  {
    Transaction txn(session.get());
    ASSERT_OK(txn.Begin());
    ASSERT_OK_AND_ASSIGN(rid, txn.Insert(table, Row(1, 1.0)));
    ASSERT_OK(txn.Commit());
  }
  {
    Transaction txn(session.get());
    ASSERT_OK(txn.Begin());
    ASSERT_OK(txn.Delete(table, rid));
    ASSERT_OK(txn.Commit());
  }
  // Advance the lav past the delete.
  {
    Transaction txn(session.get());
    ASSERT_OK(txn.Begin());
    ASSERT_OK(txn.Commit());
  }
  ASSERT_OK_AND_ASSIGN(GcStats stats, db_->RunGarbageCollection());
  EXPECT_EQ(stats.records_erased, 1u);
  // The cell is gone from the store entirely.
  auto cell = db_->cluster()->Get(table->meta->data_table,
                                  EncodeOrderedU64(rid));
  EXPECT_TRUE(cell.status().IsNotFound());
  // And the pk index no longer returns it.
  Transaction check(session.get());
  ASSERT_OK(check.Begin());
  ASSERT_OK_AND_ASSIGN(auto rids,
                       check.LookupIndex(table, -1, {Value(int64_t{1})}));
  EXPECT_TRUE(rids.empty());
  ASSERT_OK(check.Commit());
}

}  // namespace
}  // namespace tell::tx
