#include <gtest/gtest.h>

#include <set>
#include <thread>

#include "commitmgr/commit_manager.h"
#include "commitmgr/snapshot_descriptor.h"
#include "common/random.h"
#include "store/cluster.h"
#include "tests/test_util.h"

namespace tell::commitmgr {
namespace {

TEST(SnapshotDescriptorTest, BaseCoversLowTids) {
  SnapshotDescriptor snapshot(10);
  EXPECT_TRUE(snapshot.CanRead(1));
  EXPECT_TRUE(snapshot.CanRead(10));
  EXPECT_FALSE(snapshot.CanRead(11));
}

TEST(SnapshotDescriptorTest, MarkCompletedAdvancesBaseContiguously) {
  SnapshotDescriptor snapshot(0);
  snapshot.MarkCompleted(1);
  EXPECT_EQ(snapshot.base(), 1u);
  snapshot.MarkCompleted(3);  // hole at 2
  EXPECT_EQ(snapshot.base(), 1u);
  EXPECT_TRUE(snapshot.CanRead(3));
  EXPECT_FALSE(snapshot.CanRead(2));
  snapshot.MarkCompleted(2);
  EXPECT_EQ(snapshot.base(), 3u);
}

TEST(SnapshotDescriptorTest, HighestCompleted) {
  SnapshotDescriptor snapshot(5);
  EXPECT_EQ(snapshot.HighestCompleted(), 5u);
  snapshot.MarkCompleted(9);
  EXPECT_EQ(snapshot.HighestCompleted(), 9u);
}

TEST(SnapshotDescriptorTest, SerializationRoundTrip) {
  SnapshotDescriptor snapshot(100);
  snapshot.MarkCompleted(105);
  snapshot.MarkCompleted(170);
  ASSERT_OK_AND_ASSIGN(SnapshotDescriptor copy,
                       SnapshotDescriptor::Deserialize(snapshot.Serialize()));
  EXPECT_TRUE(copy == snapshot);
  EXPECT_TRUE(copy.CanRead(105));
  EXPECT_FALSE(copy.CanRead(106));
}

TEST(SnapshotDescriptorTest, MergeTakesUnion) {
  SnapshotDescriptor a(5);
  a.MarkCompleted(8);
  SnapshotDescriptor b(6);
  b.MarkCompleted(10);
  a.MergeFrom(b);
  EXPECT_GE(a.base(), 6u);
  EXPECT_TRUE(a.CanRead(8));
  EXPECT_TRUE(a.CanRead(10));
  EXPECT_FALSE(a.CanRead(9));
}

TEST(SnapshotDescriptorTest, MergeAdvancesOverCombinedPrefix) {
  SnapshotDescriptor a(0);
  a.MarkCompleted(2);  // knows 2
  SnapshotDescriptor b(1);  // knows 1 (via base)
  a.MergeFrom(b);
  EXPECT_EQ(a.base(), 2u);
}

TEST(SnapshotDescriptorTest, SubsetReflexive) {
  SnapshotDescriptor a(7);
  a.MarkCompleted(12);
  EXPECT_TRUE(a.IsSubsetOf(a));
}

TEST(SnapshotDescriptorTest, SubsetDetectsMissingTid) {
  SnapshotDescriptor small(5);
  SnapshotDescriptor big(5);
  big.MarkCompleted(7);
  EXPECT_TRUE(small.IsSubsetOf(big));
  EXPECT_FALSE(big.IsSubsetOf(small));
}

TEST(SnapshotDescriptorTest, SubsetAcrossDifferentBases) {
  SnapshotDescriptor newer(10);
  SnapshotDescriptor older(5);
  older.MarkCompleted(7);
  // newer covers 1..10; older covers 1..5 and 7.
  EXPECT_TRUE(older.IsSubsetOf(newer));
  EXPECT_FALSE(newer.IsSubsetOf(older));  // 6 not visible in older
}

TEST(SnapshotDescriptorTest, BitsetSizeStaysSmall) {
  // Paper §4.2: N is ~13 KB with 100,000 newly committed transactions.
  SnapshotDescriptor snapshot(0);
  // Leave tid 1 incomplete so the base cannot advance, then complete 100k.
  for (Tid tid = 2; tid <= 100'000; ++tid) snapshot.MarkCompleted(tid);
  EXPECT_LE(snapshot.BitsetBytes(), 14'000u);
  EXPECT_GE(snapshot.BitsetBytes(), 12'000u);
}

// ---------------------------------------------------------------------------
// CommitManager

class CommitManagerTest : public ::testing::Test {
 protected:
  CommitManagerTest() {
    store::ClusterOptions options;
    options.num_storage_nodes = 2;
    cluster_ = std::make_unique<store::Cluster>(options);
  }

  std::unique_ptr<CommitManagerGroup> MakeGroup(uint32_t n,
                                                uint32_t range = 16) {
    CommitManagerOptions options;
    options.tid_range_size = range;
    return std::make_unique<CommitManagerGroup>(cluster_.get(), n, options,
                                                /*sync_interval_ms=*/0);
  }

  std::unique_ptr<store::Cluster> cluster_;
};

TEST_F(CommitManagerTest, StartAssignsUniqueMonotonicTids) {
  auto group = MakeGroup(1);
  CommitManager* cm = group->manager(0);
  ASSERT_OK_AND_ASSIGN(TxnBegin t1, cm->Start(0));
  ASSERT_OK_AND_ASSIGN(TxnBegin t2, cm->Start(0));
  EXPECT_LT(t1.tid, t2.tid);
}

TEST_F(CommitManagerTest, SnapshotExcludesActiveTransactions) {
  auto group = MakeGroup(1);
  CommitManager* cm = group->manager(0);
  ASSERT_OK_AND_ASSIGN(TxnBegin t1, cm->Start(0));
  ASSERT_OK_AND_ASSIGN(TxnBegin t2, cm->Start(0));
  // t2's snapshot must not see t1 (still active).
  EXPECT_FALSE(t2.snapshot.CanRead(t1.tid));
  ASSERT_OK(cm->SetCommitted(t1.tid));
  ASSERT_OK_AND_ASSIGN(TxnBegin t3, cm->Start(0));
  EXPECT_TRUE(t3.snapshot.CanRead(t1.tid));
  EXPECT_FALSE(t3.snapshot.CanRead(t2.tid));
}

TEST_F(CommitManagerTest, AbortedCountsAsCompleted) {
  auto group = MakeGroup(1);
  CommitManager* cm = group->manager(0);
  ASSERT_OK_AND_ASSIGN(TxnBegin t1, cm->Start(0));
  ASSERT_OK(cm->SetAborted(t1.tid));
  ASSERT_OK_AND_ASSIGN(TxnBegin t2, cm->Start(0));
  EXPECT_TRUE(t2.snapshot.CanRead(t1.tid));
}

TEST_F(CommitManagerTest, LavTracksOldestActive) {
  auto group = MakeGroup(1);
  CommitManager* cm = group->manager(0);
  ASSERT_OK_AND_ASSIGN(TxnBegin t1, cm->Start(0));
  ASSERT_OK_AND_ASSIGN(TxnBegin t2, cm->Start(0));
  (void)t2;
  // While t1 runs, the lav stays at t1's snapshot base.
  EXPECT_EQ(cm->Lav(), t1.snapshot.base());
  ASSERT_OK(cm->SetCommitted(t1.tid));
  ASSERT_OK(cm->SetCommitted(t2.tid));
  ASSERT_OK_AND_ASSIGN(TxnBegin t3, cm->Start(0));
  EXPECT_GE(t3.lav, t1.tid);
}

TEST_F(CommitManagerTest, TidRangesAvoidCounterRoundTrips) {
  auto group = MakeGroup(1, /*range=*/256);
  CommitManager* cm = group->manager(0);
  // All tids of the first range are continuous.
  Tid previous = 0;
  for (int i = 0; i < 256; ++i) {
    ASSERT_OK_AND_ASSIGN(TxnBegin begin, cm->Start(0));
    if (previous != 0) EXPECT_EQ(begin.tid, previous + 1);
    previous = begin.tid;
    ASSERT_OK(cm->SetCommitted(begin.tid));
  }
}

TEST_F(CommitManagerTest, TwoManagersGetDisjointRanges) {
  auto group = MakeGroup(2, /*range=*/8);
  ASSERT_OK_AND_ASSIGN(TxnBegin a, group->manager(0)->Start(0));
  ASSERT_OK_AND_ASSIGN(TxnBegin b, group->manager(1)->Start(0));
  EXPECT_NE(a.tid, b.tid);
  // Ranges of 8: manager 0 got [1,8], manager 1 [9,16].
  EXPECT_EQ(a.tid, 1u);
  EXPECT_EQ(b.tid, 9u);
}

TEST_F(CommitManagerTest, PeersLearnCommitsViaSync) {
  auto group = MakeGroup(2, /*range=*/8);
  CommitManager* cm0 = group->manager(0);
  CommitManager* cm1 = group->manager(1);
  ASSERT_OK_AND_ASSIGN(TxnBegin t0, cm0->Start(0));
  ASSERT_OK(cm0->SetCommitted(t0.tid));
  // Before sync, manager 1 does not know about t0.
  ASSERT_OK_AND_ASSIGN(TxnBegin before, cm1->Start(1));
  EXPECT_FALSE(before.snapshot.CanRead(t0.tid));
  ASSERT_OK(cm1->SetCommitted(before.tid));
  // One sync round propagates the state.
  ASSERT_OK(group->SyncAll());
  ASSERT_OK(group->SyncAll());  // second round: read-back of peer states
  ASSERT_OK_AND_ASSIGN(TxnBegin after, cm1->Start(1));
  EXPECT_TRUE(after.snapshot.CanRead(t0.tid));
}

TEST_F(CommitManagerTest, ManagerForSkipsDeadManagers) {
  auto group = MakeGroup(3);
  group->manager(1)->Kill();
  CommitManager* cm = group->ManagerFor(1);
  ASSERT_NE(cm, nullptr);
  EXPECT_NE(cm->manager_id(), 1u);
}

TEST_F(CommitManagerTest, RecoverFromStoreRestoresState) {
  auto group = MakeGroup(2, /*range=*/8);
  CommitManager* cm0 = group->manager(0);
  ASSERT_OK_AND_ASSIGN(TxnBegin t0, cm0->Start(0));
  ASSERT_OK(cm0->SetCommitted(t0.tid));
  ASSERT_OK(group->SyncAll());
  // Manager 1 "fails" and a replacement rebuilds from the store.
  CommitManager* cm1 = group->manager(1);
  cm1->Kill();
  cm1->Revive();
  ASSERT_OK(cm1->RecoverFromStore(group->size()));
  ASSERT_OK_AND_ASSIGN(TxnBegin begin, cm1->Start(1));
  EXPECT_TRUE(begin.snapshot.CanRead(t0.tid));
  EXPECT_GT(begin.tid, t0.tid);
}

TEST_F(CommitManagerTest, AbortActiveOfCompletesPnTids) {
  auto group = MakeGroup(1);
  CommitManager* cm = group->manager(0);
  ASSERT_OK_AND_ASSIGN(TxnBegin pn0_txn, cm->Start(/*pn_id=*/0));
  ASSERT_OK_AND_ASSIGN(TxnBegin pn1_txn, cm->Start(/*pn_id=*/1));
  std::vector<Tid> aborted = cm->AbortActiveOf(0);
  ASSERT_EQ(aborted.size(), 1u);
  EXPECT_EQ(aborted[0], pn0_txn.tid);
  // pn1's transaction is still active.
  ASSERT_OK(cm->SetCommitted(pn1_txn.tid));
  ASSERT_OK_AND_ASSIGN(TxnBegin after, cm->Start(0));
  EXPECT_TRUE(after.snapshot.CanRead(pn0_txn.tid));
  EXPECT_TRUE(after.snapshot.CanRead(pn1_txn.tid));
}

TEST_F(CommitManagerTest, InterleavedTidsAreDisjointStrides) {
  CommitManagerOptions options;
  options.interleaved_tids = true;
  auto group = std::make_unique<CommitManagerGroup>(cluster_.get(), 3,
                                                    options, 0.0);
  for (int round = 0; round < 5; ++round) {
    for (uint32_t m = 0; m < 3; ++m) {
      ASSERT_OK_AND_ASSIGN(TxnBegin begin, group->manager(m)->Start(0));
      // Manager m hands out m+1, m+1+3, m+1+6, ...
      EXPECT_EQ(begin.tid, m + 1 + static_cast<Tid>(round) * 3);
      ASSERT_OK(group->manager(m)->SetCommitted(begin.tid));
    }
  }
}

TEST_F(CommitManagerTest, InterleavedBaseAdvancesAfterSync) {
  CommitManagerOptions options;
  options.interleaved_tids = true;
  auto group = std::make_unique<CommitManagerGroup>(cluster_.get(), 2,
                                                    options, 0.0);
  // Both managers complete one transaction each (tids 1 and 2).
  ASSERT_OK_AND_ASSIGN(TxnBegin a, group->manager(0)->Start(0));
  ASSERT_OK_AND_ASSIGN(TxnBegin b, group->manager(1)->Start(0));
  ASSERT_OK(group->manager(0)->SetCommitted(a.tid));
  ASSERT_OK(group->manager(1)->SetCommitted(b.tid));
  ASSERT_OK(group->SyncAll());
  ASSERT_OK(group->SyncAll());
  // After merging, both managers' bases cover tids 1 and 2.
  EXPECT_GE(group->manager(0)->CurrentSnapshot().base(), 2u);
  EXPECT_GE(group->manager(1)->CurrentSnapshot().base(), 2u);
}

TEST_F(CommitManagerTest, InterleavedWorksEndToEnd) {
  CommitManagerOptions options;
  options.interleaved_tids = true;
  auto group = std::make_unique<CommitManagerGroup>(cluster_.get(), 2,
                                                    options, 0.0);
  // Interleaved tids stay unique and monotone per manager under load.
  std::set<Tid> seen;
  for (int i = 0; i < 50; ++i) {
    for (uint32_t m = 0; m < 2; ++m) {
      ASSERT_OK_AND_ASSIGN(TxnBegin begin, group->manager(m)->Start(0));
      EXPECT_TRUE(seen.insert(begin.tid).second) << "duplicate " << begin.tid;
      ASSERT_OK(group->manager(m)->SetCommitted(begin.tid));
    }
  }
}

TEST_F(CommitManagerTest, ConcurrentStartsUniqueTids) {
  auto group = MakeGroup(2, /*range=*/32);
  constexpr int kThreads = 8;
  constexpr int kPerThread = 200;
  std::vector<std::vector<Tid>> tids(kThreads);
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      CommitManager* cm = group->ManagerFor(static_cast<uint32_t>(t));
      for (int i = 0; i < kPerThread; ++i) {
        auto begin = cm->Start(0);
        ASSERT_TRUE(begin.ok());
        tids[t].push_back(begin->tid);
        ASSERT_TRUE(cm->SetCommitted(begin->tid).ok());
      }
    });
  }
  for (auto& thread : threads) thread.join();
  std::set<Tid> all;
  for (const auto& list : tids) {
    for (Tid tid : list) {
      EXPECT_TRUE(all.insert(tid).second) << "duplicate tid " << tid;
    }
  }
  EXPECT_EQ(all.size(), static_cast<size_t>(kThreads * kPerThread));
}

// ---------------------------------------------------------------------------
// Delta protocol (StartDelta / SnapshotDelta).

/// What tx::CommitManagerClient keeps per manager: the acked (generation,
/// epoch) and the descriptor reconstructed from deltas.
struct ClientCache {
  uint32_t generation = 0;
  uint64_t epoch = 0;
  SnapshotDescriptor snapshot;
};

/// Issues a delta-protocol begin and applies the response to `cache`, the way
/// the client library does.
Result<TxnBeginDelta> BeginVia(CommitManager* cm, ClientCache* cache,
                               uint64_t token = 0) {
  BeginRequest request;
  request.pn_id = 0;
  request.start_token = token;
  request.ack_generation = cache->generation;
  request.ack_epoch = cache->epoch;
  auto begin = cm->StartDelta(request);
  if (begin.ok()) {
    cache->snapshot.ApplyDelta(begin->delta);
    cache->generation = begin->delta.generation;
    cache->epoch = begin->delta.epoch;
  }
  return begin;
}

TEST_F(CommitManagerTest, StartDeltaFirstContactIsFull) {
  auto group = MakeGroup(1);
  CommitManager* cm = group->manager(0);
  ClientCache cache;
  ASSERT_OK_AND_ASSIGN(TxnBeginDelta begin, BeginVia(cm, &cache));
  EXPECT_TRUE(begin.delta.full);
  EXPECT_EQ(cache.snapshot, cm->CurrentSnapshot());
  EXPECT_EQ(cm->stats().full_starts, 1u);
  EXPECT_EQ(cm->stats().delta_starts, 0u);
}

TEST_F(CommitManagerTest, StartDeltaIncrementalReconstructsDescriptor) {
  auto group = MakeGroup(1);
  CommitManager* cm = group->manager(0);
  ClientCache cache;
  ASSERT_OK_AND_ASSIGN(TxnBeginDelta t1, BeginVia(cm, &cache));

  // A gap keeps the base back so the next delta carries above-base tids.
  ASSERT_OK_AND_ASSIGN(TxnBeginDelta hole, BeginVia(cm, &cache));
  ASSERT_OK_AND_ASSIGN(TxnBeginDelta t3, BeginVia(cm, &cache));
  ASSERT_OK(cm->SetCommitted(t3.tid));
  ASSERT_OK(cm->SetAborted(t1.tid));

  ASSERT_OK_AND_ASSIGN(TxnBeginDelta t4, BeginVia(cm, &cache));
  EXPECT_FALSE(t4.delta.full);
  EXPECT_EQ(cache.snapshot, cm->CurrentSnapshot());
  EXPECT_TRUE(cache.snapshot.CanRead(t3.tid));
  EXPECT_FALSE(cache.snapshot.CanRead(hole.tid));
  EXPECT_GE(cm->stats().delta_starts, 1u);
}

TEST_F(CommitManagerTest, StartDeltaBaseAdvanceOnly) {
  auto group = MakeGroup(1);
  CommitManager* cm = group->manager(0);
  ClientCache cache;
  // Commit everything so the next delta is a pure base advance.
  for (int i = 0; i < 5; ++i) {
    ASSERT_OK_AND_ASSIGN(TxnBeginDelta begin, BeginVia(cm, &cache));
    ASSERT_OK(cm->SetCommitted(begin.tid));
  }
  ASSERT_OK_AND_ASSIGN(TxnBeginDelta next, BeginVia(cm, &cache));
  EXPECT_FALSE(next.delta.full);
  EXPECT_TRUE(next.delta.completed.empty());
  EXPECT_EQ(next.delta.base, 5u);
  EXPECT_EQ(cache.snapshot, cm->CurrentSnapshot());
}

TEST_F(CommitManagerTest, StartDeltaStaleGenerationForcesFullResync) {
  auto group = MakeGroup(1);
  CommitManager* cm = group->manager(0);
  ClientCache cache;
  ASSERT_OK_AND_ASSIGN(TxnBeginDelta t1, BeginVia(cm, &cache));
  ASSERT_OK(cm->SetCommitted(t1.tid));
  ASSERT_OK(cm->SyncWithPeers(1));

  // Recovery bumps the generation: the client's acked epoch is no longer
  // comparable and the next begin must resync with a full descriptor.
  auto [gen_before, epoch_before] = cm->SyncState();
  ASSERT_OK(cm->RecoverFromStore(1));
  auto [gen_after, epoch_after] = cm->SyncState();
  EXPECT_GT(gen_after, gen_before);

  ASSERT_OK_AND_ASSIGN(TxnBeginDelta t2, BeginVia(cm, &cache));
  EXPECT_TRUE(t2.delta.full);
  EXPECT_EQ(cache.snapshot, cm->CurrentSnapshot());
}

TEST_F(CommitManagerTest, StartDeltaFallsBackToFullWhenDeltaIsLarger) {
  auto group = MakeGroup(1, /*range=*/512);
  CommitManager* cm = group->manager(0);
  ClientCache cache;
  // An open transaction pins the base while many tids complete above it, so
  // the per-tid delta encoding (4 bytes each) overtakes the bitset.
  ASSERT_OK_AND_ASSIGN(TxnBeginDelta pin, BeginVia(cm, &cache));
  std::vector<Tid> committed;
  for (int i = 0; i < 100; ++i) {
    ASSERT_OK_AND_ASSIGN(TxnBeginDelta begin, cm->StartDelta({}));
    committed.push_back(begin.tid);
    ASSERT_OK(cm->SetCommitted(begin.tid));
  }
  ASSERT_OK_AND_ASSIGN(TxnBeginDelta next, BeginVia(cm, &cache));
  EXPECT_TRUE(next.delta.full);
  EXPECT_EQ(cache.snapshot, cm->CurrentSnapshot());
  for (Tid tid : committed) EXPECT_TRUE(cache.snapshot.CanRead(tid));
  EXPECT_FALSE(cache.snapshot.CanRead(pin.tid));
}

TEST_F(CommitManagerTest, StartTokenRetryReturnsSameTid) {
  auto group = MakeGroup(1);
  CommitManager* cm = group->manager(0);
  ClientCache cache;
  ASSERT_OK_AND_ASSIGN(TxnBeginDelta first, BeginVia(cm, &cache, /*token=*/77));
  // The response was lost: the client re-sends the same token and must get
  // the same tid back instead of leaking a second active entry.
  ASSERT_OK_AND_ASSIGN(TxnBeginDelta retry, BeginVia(cm, &cache, /*token=*/77));
  EXPECT_EQ(retry.tid, first.tid);
  ASSERT_OK(cm->SetCommitted(first.tid));
  // Completion releases the token; re-use after that is a fresh begin.
  ASSERT_OK_AND_ASSIGN(TxnBeginDelta fresh, BeginVia(cm, &cache, /*token=*/77));
  EXPECT_NE(fresh.tid, first.tid);
  ASSERT_OK(cm->SetCommitted(fresh.tid));
  // No leaked active entries: the base catches up to the last tid.
  EXPECT_EQ(cm->CurrentSnapshot().base(), fresh.tid);
}

TEST_F(CommitManagerTest, DuplicateFinishIsIdempotent) {
  auto group = MakeGroup(1);
  CommitManager* cm = group->manager(0);
  ASSERT_OK_AND_ASSIGN(TxnBegin t1, cm->Start(0));
  ASSERT_OK(cm->SetCommitted(t1.tid));
  // A retried finish whose first delivery actually landed must not
  // double-count stats or disturb the snapshot.
  auto [gen, epoch_after_first] = cm->SyncState();
  ASSERT_OK(cm->SetCommitted(t1.tid));
  ASSERT_OK(cm->SetAborted(t1.tid));
  EXPECT_EQ(cm->stats().commits, 1u);
  EXPECT_EQ(cm->stats().aborts, 0u);
  EXPECT_EQ(cm->SyncState().second, epoch_after_first);
  EXPECT_EQ(cm->CurrentSnapshot().base(), t1.tid);
}

TEST_F(CommitManagerTest, DeltaPropertyRandomInterleavings) {
  // Property: under any interleaving of begins, commits and aborts, a client
  // that applies every delta it is handed reconstructs the manager's exact
  // descriptor, and SnapshotDelta survives a serialize/deserialize round
  // trip with WireBytes() telling the truth.
  for (uint64_t seed : {1u, 7u, 42u, 1337u}) {
    store::ClusterOptions cluster_options;
    cluster_options.num_storage_nodes = 2;
    store::Cluster cluster(cluster_options);
    CommitManagerOptions options;
    options.tid_range_size = 8;
    CommitManagerGroup group(&cluster, 1, options, /*sync_interval_ms=*/0);
    CommitManager* cm = group.manager(0);

    Random rng(seed);
    ClientCache cache;
    std::vector<Tid> open;
    for (int step = 0; step < 400; ++step) {
      uint64_t action = rng.Uniform(4);
      if (action == 0 || open.empty()) {
        BeginRequest request;
        request.ack_generation = cache.generation;
        request.ack_epoch = cache.epoch;
        // Randomly drop the ack to exercise the resync path mid-stream.
        if (rng.Bernoulli(0.05)) request.ack_generation = 0;
        ASSERT_OK_AND_ASSIGN(TxnBeginDelta begin, cm->StartDelta(request));

        std::string wire = begin.delta.Serialize();
        EXPECT_EQ(wire.size(), begin.delta.WireBytes());
        ASSERT_OK_AND_ASSIGN(SnapshotDelta decoded,
                             SnapshotDelta::Deserialize(wire));
        EXPECT_EQ(decoded, begin.delta);

        cache.snapshot.ApplyDelta(begin.delta);
        cache.generation = begin.delta.generation;
        cache.epoch = begin.delta.epoch;
        ASSERT_EQ(cache.snapshot, cm->CurrentSnapshot())
            << "seed " << seed << " step " << step;
        open.push_back(begin.tid);
      } else {
        size_t pick = rng.Uniform(open.size());
        Tid tid = open[pick];
        open.erase(open.begin() + static_cast<long>(pick));
        if (rng.Bernoulli(0.3)) {
          ASSERT_OK(cm->SetAborted(tid));
        } else {
          ASSERT_OK(cm->SetCommitted(tid));
        }
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Fast-path tid leases (single-partition fast path)

TEST_F(CommitManagerTest, LeaseFastTidsContinuesTheStartStream) {
  auto group = MakeGroup(1, /*range=*/8);
  CommitManager* cm = group->manager(0);
  ASSERT_OK_AND_ASSIGN(TxnBegin before, cm->Start(0));
  // Leased tids are distinct, increasing, and all above every tid Start
  // handed out earlier — one monotone assignment stream across both phases.
  ASSERT_OK_AND_ASSIGN(std::vector<Tid> leased, cm->LeaseFastTids(12));
  ASSERT_EQ(leased.size(), 12u);
  Tid prev = before.tid;
  for (Tid tid : leased) {
    EXPECT_GT(tid, prev);
    prev = tid;
  }
  // A Start after the lease continues above it (the lease crossed a range
  // refill boundary with range=8, so this checks the refill path too).
  ASSERT_OK_AND_ASSIGN(TxnBegin after, cm->Start(0));
  EXPECT_GT(after.tid, leased.back());
  EXPECT_EQ(cm->HighestAssignedTid(), after.tid);
}

TEST_F(CommitManagerTest, CompleteFastMakesLeasedTidsReadable) {
  auto group = MakeGroup(1);
  CommitManager* cm = group->manager(0);
  ASSERT_OK_AND_ASSIGN(std::vector<Tid> leased, cm->LeaseFastTids(3));
  // Until completed, the leased tids hold the snapshot base back.
  ASSERT_OK_AND_ASSIGN(TxnBegin blocked, cm->Start(0));
  EXPECT_FALSE(blocked.snapshot.CanRead(leased[0]));
  ASSERT_OK(cm->SetCommitted(blocked.tid));

  ASSERT_OK(cm->CompleteFast(leased));
  // Duplicate delivery is harmless (a failed flush gets re-queued).
  ASSERT_OK(cm->CompleteFast(leased));
  ASSERT_OK_AND_ASSIGN(TxnBegin begin, cm->Start(0));
  for (Tid tid : leased) {
    EXPECT_TRUE(begin.snapshot.CanRead(tid)) << "tid " << tid;
  }
  ASSERT_OK(cm->SetCommitted(begin.tid));
  EXPECT_GE(cm->Lav(), leased.back());
}

TEST_F(CommitManagerTest, LeaseFastTidsRejectsInterleavedMode) {
  CommitManagerOptions options;
  options.interleaved_tids = true;
  auto group = std::make_unique<CommitManagerGroup>(cluster_.get(), 2, options,
                                                    /*sync_interval_ms=*/0);
  EXPECT_EQ(group->manager(0)->LeaseFastTids(4).status().code(),
            StatusCode::kNotSupported);
}

TEST_F(CommitManagerTest, LeaseFastTidsRejectsZeroCount) {
  auto group = MakeGroup(1);
  EXPECT_EQ(group->manager(0)->LeaseFastTids(0).status().code(),
            StatusCode::kInvalidArgument);
}

TEST_F(CommitManagerTest, LeaseFastTidsRefillFailureDoesNotPinSnapshotBase) {
  // Regression: a lease that crosses a range boundary draws tids from the
  // remaining range BEFORE the refill; if the refill fails (storage down),
  // those drawn tids were discarded by the error return but stayed consumed
  // from the range — never handed out, never completed — permanently
  // pinning the snapshot base and GC horizon. They must be marked completed
  // on the failure path.
  auto group = MakeGroup(1, /*range=*/4);
  CommitManager* cm = group->manager(0);
  // Consume tid 1 of range [1,4] so the lease below exhausts the remainder.
  ASSERT_OK_AND_ASSIGN(TxnBegin first, cm->Start(0));
  ASSERT_OK(cm->SetCommitted(first.tid));

  for (uint32_t i = 0; i < cluster_->num_nodes(); ++i) {
    cluster_->node(i)->Kill();
  }
  // Draws tids 2..4, then fails refilling for the rest.
  EXPECT_FALSE(cm->LeaseFastTids(8).ok());
  for (uint32_t i = 0; i < cluster_->num_nodes(); ++i) {
    cluster_->node(i)->Revive();
  }

  // The discarded tids must not hold the base back: a transaction begun and
  // completed now lets the base advance contiguously over them.
  ASSERT_OK_AND_ASSIGN(TxnBegin after, cm->Start(0));
  ASSERT_OK(cm->SetCommitted(after.tid));
  ASSERT_OK_AND_ASSIGN(TxnBegin probe, cm->Start(0));
  EXPECT_GE(probe.snapshot.base(), after.tid)
      << "discarded lease tids still pin the snapshot base";
  ASSERT_OK(cm->SetCommitted(probe.tid));
  EXPECT_GE(cm->Lav(), after.tid);
}

}  // namespace
}  // namespace tell::commitmgr
