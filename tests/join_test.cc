// INNER JOIN tests: the shared-data architecture runs any query on any
// processing node — including cross-table joins, which partitioned cloud
// databases restrict (the paper's §3 contrast with Azure SQL Database).
#include <gtest/gtest.h>

#include "db/tell_db.h"
#include "sql/parser.h"
#include "tests/test_util.h"

namespace tell::sql {
namespace {

TEST(JoinParserTest, QualifiedColumnNamesParse) {
  ASSERT_OK_AND_ASSIGN(
      Statement stmt,
      Parse("SELECT orders.id FROM orders WHERE orders.amount > 1"));
  ASSERT_EQ(stmt.select.items.size(), 1u);
  EXPECT_EQ(stmt.select.items[0].expr->column_name, "orders.id");
}

TEST(JoinParserTest, JoinClauseRecognized) {
  ASSERT_OK_AND_ASSIGN(
      Statement stmt,
      Parse("SELECT * FROM orders JOIN customers ON orders.cid = "
            "customers.id WHERE amount > 5"));
  EXPECT_EQ(stmt.select.table, "orders");
  EXPECT_EQ(stmt.select.join_table, "customers");
  ASSERT_NE(stmt.select.join_left, nullptr);
  EXPECT_EQ(stmt.select.join_left->column_name, "orders.cid");
  EXPECT_EQ(stmt.select.join_right->column_name, "customers.id");
}

TEST(JoinParserTest, InnerKeywordOptional) {
  ASSERT_OK_AND_ASSIGN(
      Statement stmt,
      Parse("SELECT * FROM a INNER JOIN b ON a.x = b.y"));
  EXPECT_EQ(stmt.select.join_table, "b");
}

TEST(JoinParserTest, NonEqualityJoinRejected) {
  EXPECT_FALSE(Parse("SELECT * FROM a JOIN b ON a.x < b.y").ok());
  EXPECT_FALSE(Parse("SELECT * FROM a JOIN b ON a.x = 5").ok());
}

class JoinExecutionTest : public ::testing::Test {
 protected:
  JoinExecutionTest() {
    db::TellDbOptions options;
    options.network = sim::NetworkModel::Instant();
    db_ = std::make_unique<db::TellDb>(options);
    EXPECT_OK(db_->ExecuteDdl(
        "CREATE TABLE customers (id INT, name VARCHAR(20), region "
        "VARCHAR(8), PRIMARY KEY (id))"));
    EXPECT_OK(db_->ExecuteDdl(
        "CREATE TABLE orders (id INT, cid INT, amount DOUBLE, "
        "PRIMARY KEY (id))"));
    session_ = db_->OpenSession(0, 0);
    Exec("INSERT INTO customers VALUES (1, 'alice', 'emea')");
    Exec("INSERT INTO customers VALUES (2, 'bob', 'amer')");
    Exec("INSERT INTO customers VALUES (3, 'carol', 'emea')");
    Exec("INSERT INTO orders VALUES (100, 1, 10.0)");
    Exec("INSERT INTO orders VALUES (101, 1, 20.0)");
    Exec("INSERT INTO orders VALUES (102, 2, 5.0)");
    Exec("INSERT INTO orders VALUES (103, 9, 99.0)");  // dangling cid
  }

  ResultSet Exec(const std::string& sql) {
    auto result = db_->AutoCommitSql(session_.get(), sql);
    EXPECT_TRUE(result.ok()) << sql << ": " << result.status().ToString();
    return result.ok() ? std::move(*result) : ResultSet{};
  }

  std::unique_ptr<db::TellDb> db_;
  std::unique_ptr<tx::Session> session_;
};

TEST_F(JoinExecutionTest, BasicEquiJoin) {
  ResultSet rs = Exec(
      "SELECT name, amount FROM orders JOIN customers ON orders.cid = "
      "customers.id ORDER BY amount");
  ASSERT_EQ(rs.rows.size(), 3u);  // dangling order excluded
  EXPECT_EQ(std::get<std::string>(rs.rows[0].at(0)), "bob");
  EXPECT_DOUBLE_EQ(std::get<double>(rs.rows[0].at(1)), 5.0);
  EXPECT_EQ(std::get<std::string>(rs.rows[2].at(0)), "alice");
}

TEST_F(JoinExecutionTest, ReversedOnConditionWorks) {
  ResultSet rs = Exec(
      "SELECT COUNT(*) FROM orders JOIN customers ON customers.id = "
      "orders.cid");
  EXPECT_EQ(std::get<int64_t>(rs.rows[0].at(0)), 3);
}

TEST_F(JoinExecutionTest, WhereOverBothSides) {
  ResultSet rs = Exec(
      "SELECT orders.id FROM orders JOIN customers ON orders.cid = "
      "customers.id WHERE region = 'emea' AND amount > 15.0");
  ASSERT_EQ(rs.rows.size(), 1u);
  EXPECT_EQ(std::get<int64_t>(rs.rows[0].at(0)), 101);
}

TEST_F(JoinExecutionTest, AggregateOverJoinWithGroupBy) {
  ResultSet rs = Exec(
      "SELECT region, COUNT(*), SUM(amount) FROM orders JOIN customers "
      "ON orders.cid = customers.id GROUP BY region ORDER BY region");
  ASSERT_EQ(rs.rows.size(), 2u);
  EXPECT_EQ(std::get<std::string>(rs.rows[0].at(0)), "amer");
  EXPECT_EQ(std::get<int64_t>(rs.rows[0].at(1)), 1);
  EXPECT_EQ(std::get<std::string>(rs.rows[1].at(0)), "emea");
  EXPECT_DOUBLE_EQ(std::get<double>(rs.rows[1].at(2)), 30.0);
}

TEST_F(JoinExecutionTest, SelectStarConcatenatesColumns) {
  ResultSet rs = Exec(
      "SELECT * FROM orders JOIN customers ON orders.cid = customers.id "
      "WHERE orders.id = 100");
  ASSERT_EQ(rs.rows.size(), 1u);
  // orders(id, cid, amount) ++ customers(id, name, region) = 6 columns.
  EXPECT_EQ(rs.rows[0].size(), 6u);
  EXPECT_EQ(std::get<std::string>(rs.rows[0].at(4)), "alice");
}

TEST_F(JoinExecutionTest, AmbiguousColumnRejected) {
  auto result = db_->AutoCommitSql(
      session_.get(),
      "SELECT id FROM orders JOIN customers ON orders.cid = customers.id");
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
}

TEST_F(JoinExecutionTest, NullKeysNeverJoin) {
  Exec("INSERT INTO orders (id, amount) VALUES (104, 1.0)");  // cid NULL
  ResultSet rs = Exec(
      "SELECT COUNT(*) FROM orders JOIN customers ON orders.cid = "
      "customers.id");
  EXPECT_EQ(std::get<int64_t>(rs.rows[0].at(0)), 3);
}

TEST_F(JoinExecutionTest, JoinSeesSnapshotConsistentData) {
  // A join inside a transaction must not see concurrent commits.
  tx::Transaction txn(session_.get());
  ASSERT_OK(txn.Begin());
  auto before = db_->ExecuteSql(
      &txn, 0,
      "SELECT COUNT(*) FROM orders JOIN customers ON orders.cid = "
      "customers.id");
  ASSERT_TRUE(before.ok());
  {
    auto session2 = db_->OpenSession(0, 1);
    auto insert = db_->AutoCommitSql(
        session2.get(), "INSERT INTO orders VALUES (105, 3, 7.0)");
    ASSERT_TRUE(insert.ok());
  }
  auto after = db_->ExecuteSql(
      &txn, 0,
      "SELECT COUNT(*) FROM orders JOIN customers ON orders.cid = "
      "customers.id");
  ASSERT_TRUE(after.ok());
  EXPECT_EQ(std::get<int64_t>(before->rows[0].at(0)),
            std::get<int64_t>(after->rows[0].at(0)));
  ASSERT_OK(txn.Commit());
}

TEST_F(JoinExecutionTest, TableAliasesResolve) {
  ResultSet rs = Exec(
      "SELECT c.name, o.amount FROM orders o JOIN customers c "
      "ON o.cid = c.id WHERE c.region = 'amer'");
  ASSERT_EQ(rs.rows.size(), 1u);
  EXPECT_EQ(std::get<std::string>(rs.rows[0].at(0)), "bob");
}

TEST_F(JoinExecutionTest, AsKeywordAlias) {
  ResultSet rs = Exec(
      "SELECT COUNT(*) FROM orders AS o JOIN customers AS c "
      "ON o.cid = c.id");
  EXPECT_EQ(std::get<int64_t>(rs.rows[0].at(0)), 3);
}

TEST_F(JoinExecutionTest, BetweenPredicate) {
  ResultSet rs = Exec(
      "SELECT id FROM orders WHERE amount BETWEEN 5.0 AND 15.0 ORDER BY id");
  ASSERT_EQ(rs.rows.size(), 2u);
  EXPECT_EQ(std::get<int64_t>(rs.rows[0].at(0)), 100);
  EXPECT_EQ(std::get<int64_t>(rs.rows[1].at(0)), 102);
}

TEST_F(JoinExecutionTest, BetweenUsesIndexRange) {
  // BETWEEN desugars to >= AND <=, which the planner turns into an index
  // range on the primary key.
  ResultSet rs = Exec("SELECT COUNT(*) FROM orders WHERE id BETWEEN 100 "
                      "AND 102");
  EXPECT_EQ(std::get<int64_t>(rs.rows[0].at(0)), 3);
}

}  // namespace
}  // namespace tell::sql
