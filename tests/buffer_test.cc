#include <gtest/gtest.h>

#include "buffer/shared_record_buffer.h"
#include "buffer/version_sync_buffer.h"
#include "db/tell_db.h"
#include "tests/test_util.h"

namespace tell::buffer {
namespace {

using schema::Tuple;
using schema::Value;

/// Fixture exercising the buffer strategies through the full database with
/// two PNs, so cross-PN invalidation behaviour is real.
class BufferStrategyTest : public ::testing::TestWithParam<db::BufferStrategy> {
 protected:
  BufferStrategyTest() {
    db::TellDbOptions options;
    options.num_processing_nodes = 2;
    options.network = sim::NetworkModel::Instant();
    options.buffer_strategy = GetParam();
    options.buffer_unit_size = 4;
    db_ = std::make_unique<db::TellDb>(options);
    EXPECT_OK(db_->CreateTable("t",
                               schema::SchemaBuilder()
                                   .AddInt64("id")
                                   .AddDouble("v")
                                   .SetPrimaryKey({"id"})
                                   .Build(),
                               {}));
    table0_ = *db_->GetTable(0, "t");
    table1_ = *db_->GetTable(1, "t");
    session0_ = db_->OpenSession(0, 0);
    session1_ = db_->OpenSession(1, 1);
  }

  Tuple Row(int64_t id, double v) {
    Tuple t(2);
    t.Set(0, id);
    t.Set(1, v);
    return t;
  }

  uint64_t InsertRow(int64_t id, double v) {
    tx::Transaction txn(session0_.get());
    EXPECT_TRUE(txn.Begin().ok());
    auto rid = txn.Insert(table0_, Row(id, v));
    EXPECT_TRUE(rid.ok());
    EXPECT_TRUE(txn.Commit().ok());
    return *rid;
  }

  double ReadOn(tx::Session* session, tx::TableHandle* table, uint64_t rid) {
    tx::Transaction txn(session);
    EXPECT_TRUE(txn.Begin().ok());
    auto row = txn.Read(table, rid);
    EXPECT_TRUE(row.ok() && row->has_value());
    double v = (*row)->GetDouble(1);
    EXPECT_TRUE(txn.Commit().ok());
    return v;
  }

  std::unique_ptr<db::TellDb> db_;
  tx::TableHandle* table0_;
  tx::TableHandle* table1_;
  std::unique_ptr<tx::Session> session0_;
  std::unique_ptr<tx::Session> session1_;
};

TEST_P(BufferStrategyTest, CrossPnUpdatesAlwaysVisible) {
  uint64_t rid = InsertRow(1, 10.0);
  // Warm both PNs' buffers.
  EXPECT_EQ(ReadOn(session0_.get(), table0_, rid), 10.0);
  EXPECT_EQ(ReadOn(session1_.get(), table1_, rid), 10.0);
  // PN 1 updates; PN 0 must see it (no stale buffer serving).
  {
    tx::Transaction txn(session1_.get());
    ASSERT_OK(txn.Begin());
    ASSERT_OK(txn.Update(table1_, rid, Row(1, 20.0)));
    ASSERT_OK(txn.Commit());
  }
  EXPECT_EQ(ReadOn(session0_.get(), table0_, rid), 20.0);
  EXPECT_EQ(ReadOn(session1_.get(), table1_, rid), 20.0);
}

TEST_P(BufferStrategyTest, RepeatedUpdatesStayCoherent) {
  uint64_t rid = InsertRow(1, 0.0);
  for (int i = 1; i <= 10; ++i) {
    tx::Session* writer = (i % 2 == 0) ? session0_.get() : session1_.get();
    tx::TableHandle* table = (i % 2 == 0) ? table0_ : table1_;
    tx::Transaction txn(writer);
    ASSERT_OK(txn.Begin());
    ASSERT_OK(txn.Update(table, rid, Row(1, i)));
    ASSERT_OK(txn.Commit());
    EXPECT_EQ(ReadOn(session0_.get(), table0_, rid), i);
    EXPECT_EQ(ReadOn(session1_.get(), table1_, rid), i);
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllStrategies, BufferStrategyTest,
    ::testing::Values(db::BufferStrategy::kTransactionOnly,
                      db::BufferStrategy::kSharedRecord,
                      db::BufferStrategy::kVersionSync),
    [](const ::testing::TestParamInfo<db::BufferStrategy>& info) {
      switch (info.param) {
        case db::BufferStrategy::kTransactionOnly: return "TB";
        case db::BufferStrategy::kSharedRecord: return "SB";
        case db::BufferStrategy::kVersionSync: return "SBVS";
      }
      return "?";
    });

// ---------------------------------------------------------------------------
// Strategy-specific behaviour

class SharedBufferUnitTest : public ::testing::Test {
 protected:
  SharedBufferUnitTest() {
    db::TellDbOptions options;
    options.num_processing_nodes = 1;
    options.network = sim::NetworkModel::Instant();
    options.buffer_strategy = db::BufferStrategy::kSharedRecord;
    db_ = std::make_unique<db::TellDb>(options);
    EXPECT_OK(db_->CreateTable("t",
                               schema::SchemaBuilder()
                                   .AddInt64("id")
                                   .AddDouble("v")
                                   .SetPrimaryKey({"id"})
                                   .Build(),
                               {}));
    table_ = *db_->GetTable(0, "t");
  }
  std::unique_ptr<db::TellDb> db_;
  tx::TableHandle* table_;
};

TEST_F(SharedBufferUnitTest, OlderOverlappingTransactionHitsBuffer) {
  // Paper §5.5.2's own example: "if a transaction retrieves a record, the
  // same record can be reused by a transaction that has started before the
  // first one (i.e., a transaction with an older snapshot)".
  auto s1 = db_->OpenSession(0, 0);
  auto s2 = db_->OpenSession(0, 1);
  uint64_t rid;
  {
    tx::Transaction txn(s1.get());
    ASSERT_OK(txn.Begin());
    schema::Tuple row(2);
    row.Set(0, int64_t{1});
    row.Set(1, 5.0);
    ASSERT_OK_AND_ASSIGN(rid, txn.Insert(table_, row));
    ASSERT_OK(txn.Commit());
  }
  // Older transaction begins FIRST...
  tx::Transaction older(s2.get());
  ASSERT_OK(older.Begin());
  // ...then a newer one begins and reads the record (fetch, B = V_max =
  // the newer snapshot).
  tx::Transaction newer(s1.get());
  ASSERT_OK(newer.Begin());
  ASSERT_OK(newer.Read(table_, rid).status());
  uint64_t misses_before = s2->metrics()->buffer_misses;
  uint64_t hits_before = s2->metrics()->buffer_hits;
  // The older transaction's V_tx ⊆ B: served from the shared buffer.
  ASSERT_OK(older.Read(table_, rid).status());
  EXPECT_EQ(s2->metrics()->buffer_misses, misses_before);
  EXPECT_GT(s2->metrics()->buffer_hits, hits_before);
  ASSERT_OK(older.Commit());
  ASSERT_OK(newer.Commit());
}

TEST(SnapshotSubsetTest, BufferValidityRule) {
  // The SB validity condition V_tx ⊆ B from §5.5.2 in isolation.
  tx::SnapshotDescriptor b(10);
  b.MarkCompleted(12);
  tx::SnapshotDescriptor v_old(8);
  EXPECT_TRUE(v_old.IsSubsetOf(b));  // older txn can use the buffer
  tx::SnapshotDescriptor v_new(13);
  EXPECT_FALSE(v_new.IsSubsetOf(b));  // newer txn must refetch
}

}  // namespace
}  // namespace tell::buffer
