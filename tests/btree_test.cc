#include <gtest/gtest.h>

#include <map>
#include <thread>

#include "common/random.h"
#include "common/serde.h"
#include "index/btree.h"
#include "store/cluster.h"
#include "tests/test_util.h"

namespace tell::index {
namespace {

class BTreeTest : public ::testing::Test {
 protected:
  BTreeTest() {
    store::ClusterOptions cluster_options;
    cluster_options.num_storage_nodes = 3;
    cluster_ = std::make_unique<store::Cluster>(cluster_options);
    auto table = cluster_->CreateTable("idx");
    table_ = *table;
  }

  std::unique_ptr<store::StorageClient> MakeClient() {
    clocks_.push_back(std::make_unique<sim::VirtualClock>());
    metrics_.push_back(std::make_unique<sim::WorkerMetrics>());
    store::ClientOptions options;  // instant-ish network irrelevant here
    options.network = sim::NetworkModel::Instant();
    options.cpu.per_op_ns = 0;
    return std::make_unique<store::StorageClient>(
        cluster_.get(), nullptr, options, clocks_.back().get(),
        metrics_.back().get());
  }

  BTree MakeTree(uint32_t fanout = 8, bool cache = true) {
    BTreeOptions options;
    options.fanout = fanout;
    options.cache_inner_nodes = cache;
    return BTree(table_, options, &cache_);
  }

  std::unique_ptr<store::Cluster> cluster_;
  std::vector<std::unique_ptr<sim::VirtualClock>> clocks_;
  std::vector<std::unique_ptr<sim::WorkerMetrics>> metrics_;
  NodeCache cache_;
  store::TableId table_;
};

TEST_F(BTreeTest, InsertAndLookup) {
  auto client = MakeClient();
  ASSERT_OK(BTree::Create(client.get(), table_));
  BTree tree = MakeTree();
  ASSERT_OK(tree.Insert(client.get(), "apple", 1, false));
  ASSERT_OK(tree.Insert(client.get(), "banana", 2, false));
  ASSERT_OK_AND_ASSIGN(std::vector<uint64_t> rids,
                       tree.Lookup(client.get(), "apple"));
  ASSERT_EQ(rids.size(), 1u);
  EXPECT_EQ(rids[0], 1u);
  ASSERT_OK_AND_ASSIGN(rids, tree.Lookup(client.get(), "cherry"));
  EXPECT_TRUE(rids.empty());
}

TEST_F(BTreeTest, SplitsKeepAllKeysReachable) {
  auto client = MakeClient();
  ASSERT_OK(BTree::Create(client.get(), table_));
  BTree tree = MakeTree(/*fanout=*/4);
  constexpr int kKeys = 500;
  for (int i = 0; i < kKeys; ++i) {
    ASSERT_OK(tree.Insert(client.get(), tell::EncodeOrderedU64(i),
                          static_cast<uint64_t>(i + 1), true));
  }
  ASSERT_OK_AND_ASSIGN(uint32_t height, tree.Height(client.get()));
  EXPECT_GE(height, 3u);
  for (int i = 0; i < kKeys; ++i) {
    ASSERT_OK_AND_ASSIGN(std::vector<uint64_t> rids,
                         tree.Lookup(client.get(), tell::EncodeOrderedU64(i)));
    ASSERT_EQ(rids.size(), 1u) << "key " << i;
    EXPECT_EQ(rids[0], static_cast<uint64_t>(i + 1));
  }
}

TEST_F(BTreeTest, UniqueIndexRejectsDuplicateKey) {
  auto client = MakeClient();
  ASSERT_OK(BTree::Create(client.get(), table_));
  BTree tree = MakeTree();
  ASSERT_OK(tree.Insert(client.get(), "key", 1, true));
  EXPECT_TRUE(tree.Insert(client.get(), "key", 2, true).IsAlreadyExists());
  // Same (key, rid) is idempotent, not a violation.
  EXPECT_OK(tree.Insert(client.get(), "key", 1, true));
}

TEST_F(BTreeTest, NonUniqueIndexStoresDuplicates) {
  auto client = MakeClient();
  ASSERT_OK(BTree::Create(client.get(), table_));
  BTree tree = MakeTree();
  for (uint64_t rid = 1; rid <= 5; ++rid) {
    ASSERT_OK(tree.Insert(client.get(), "same", rid, false));
  }
  ASSERT_OK_AND_ASSIGN(std::vector<uint64_t> rids,
                       tree.Lookup(client.get(), "same"));
  EXPECT_EQ(rids.size(), 5u);
}

TEST_F(BTreeTest, RemoveDeletesOnlyThatEntry) {
  auto client = MakeClient();
  ASSERT_OK(BTree::Create(client.get(), table_));
  BTree tree = MakeTree();
  ASSERT_OK(tree.Insert(client.get(), "k", 1, false));
  ASSERT_OK(tree.Insert(client.get(), "k", 2, false));
  ASSERT_OK(tree.Remove(client.get(), "k", 1));
  ASSERT_OK_AND_ASSIGN(std::vector<uint64_t> rids,
                       tree.Lookup(client.get(), "k"));
  ASSERT_EQ(rids.size(), 1u);
  EXPECT_EQ(rids[0], 2u);
  // Removing an absent entry is a no-op.
  EXPECT_OK(tree.Remove(client.get(), "k", 99));
}

TEST_F(BTreeTest, RangeScanOrderedAndBounded) {
  auto client = MakeClient();
  ASSERT_OK(BTree::Create(client.get(), table_));
  BTree tree = MakeTree(/*fanout=*/4);
  for (int i = 0; i < 100; ++i) {
    ASSERT_OK(tree.Insert(client.get(), tell::EncodeOrderedU64(i),
                          static_cast<uint64_t>(i), true));
  }
  ASSERT_OK_AND_ASSIGN(
      std::vector<IndexEntry> entries,
      tree.RangeScan(client.get(), tell::EncodeOrderedU64(10), tell::EncodeOrderedU64(20),
                     0));
  ASSERT_EQ(entries.size(), 10u);
  for (size_t i = 0; i < entries.size(); ++i) {
    EXPECT_EQ(entries[i].rid, 10 + i);
  }
}

TEST_F(BTreeTest, RangeScanWithLimit) {
  auto client = MakeClient();
  ASSERT_OK(BTree::Create(client.get(), table_));
  BTree tree = MakeTree(/*fanout=*/4);
  for (int i = 0; i < 50; ++i) {
    ASSERT_OK(tree.Insert(client.get(), tell::EncodeOrderedU64(i),
                          static_cast<uint64_t>(i), true));
  }
  ASSERT_OK_AND_ASSIGN(std::vector<IndexEntry> entries,
                       tree.RangeScan(client.get(), "", "", 7));
  EXPECT_EQ(entries.size(), 7u);
}

TEST_F(BTreeTest, ModelCheckAgainstStdMap) {
  auto client = MakeClient();
  ASSERT_OK(BTree::Create(client.get(), table_));
  BTree tree = MakeTree(/*fanout=*/6);
  std::multimap<std::string, uint64_t> model;
  Random rng(77);
  for (int op = 0; op < 3000; ++op) {
    std::string key = tell::EncodeOrderedU64(rng.Uniform(200));
    uint64_t rid = rng.Uniform(10) + 1;
    if (rng.Bernoulli(0.7)) {
      bool model_has = false;
      for (auto [it, end] = model.equal_range(key); it != end; ++it) {
        if (it->second == rid) model_has = true;
      }
      ASSERT_OK(tree.Insert(client.get(), key, rid, false));
      if (!model_has) model.emplace(key, rid);
    } else {
      ASSERT_OK(tree.Remove(client.get(), key, rid));
      for (auto [it, end] = model.equal_range(key); it != end; ++it) {
        if (it->second == rid) {
          model.erase(it);
          break;
        }
      }
    }
  }
  // Full scan must equal the model.
  ASSERT_OK_AND_ASSIGN(std::vector<IndexEntry> entries,
                       tree.RangeScan(client.get(), "", "", 0));
  ASSERT_EQ(entries.size(), model.size());
  auto it = model.begin();
  for (const IndexEntry& entry : entries) {
    EXPECT_EQ(entry.key, it->first);
    ++it;
  }
}

TEST_F(BTreeTest, ConcurrentInsertsAllSurvive) {
  auto setup_client = MakeClient();
  ASSERT_OK(BTree::Create(setup_client.get(), table_));
  constexpr int kThreads = 8;
  constexpr int kPerThread = 300;
  std::vector<std::thread> threads;
  std::vector<std::unique_ptr<store::StorageClient>> clients;
  std::vector<std::unique_ptr<NodeCache>> caches;
  for (int t = 0; t < kThreads; ++t) {
    clients.push_back(MakeClient());
    caches.push_back(std::make_unique<NodeCache>());
  }
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      BTreeOptions options;
      options.fanout = 8;
      BTree tree(table_, options, caches[static_cast<size_t>(t)].get());
      for (int i = 0; i < kPerThread; ++i) {
        uint64_t key = static_cast<uint64_t>(t) * kPerThread +
                       static_cast<uint64_t>(i);
        ASSERT_TRUE(
            tree.Insert(clients[static_cast<size_t>(t)].get(),
                        tell::EncodeOrderedU64(key), key + 1, true)
                .ok());
      }
    });
  }
  for (auto& thread : threads) thread.join();
  // Verify every key from a fresh handle.
  BTree tree = MakeTree(/*fanout=*/8);
  auto client = MakeClient();
  for (uint64_t key = 0; key < kThreads * kPerThread; ++key) {
    ASSERT_OK_AND_ASSIGN(std::vector<uint64_t> rids,
                         tree.Lookup(client.get(), tell::EncodeOrderedU64(key)));
    ASSERT_EQ(rids.size(), 1u) << "key " << key;
    EXPECT_EQ(rids[0], key + 1);
  }
}

TEST_F(BTreeTest, StaleCacheRecoversAfterRemoteSplits) {
  auto client_a = MakeClient();
  auto client_b = MakeClient();
  ASSERT_OK(BTree::Create(client_a.get(), table_));
  NodeCache cache_a, cache_b;
  BTreeOptions options;
  options.fanout = 4;
  BTree tree_a(table_, options, &cache_a);
  BTree tree_b(table_, options, &cache_b);
  // PN A builds some structure and caches the inner nodes.
  for (uint64_t i = 0; i < 40; ++i) {
    ASSERT_OK(tree_a.Insert(client_a.get(), tell::EncodeOrderedU64(i * 2), i, true));
  }
  ASSERT_OK(tree_a.Lookup(client_a.get(), tell::EncodeOrderedU64(10)).status());
  // PN B splits nodes underneath A's cache.
  for (uint64_t i = 0; i < 40; ++i) {
    ASSERT_OK(
        tree_b.Insert(client_b.get(), tell::EncodeOrderedU64(i * 2 + 1), 100 + i,
                      true));
  }
  // A's stale cache must still find everything (right-links + refresh).
  for (uint64_t i = 0; i < 40; ++i) {
    ASSERT_OK_AND_ASSIGN(
        std::vector<uint64_t> rids,
        tree_a.Lookup(client_a.get(), tell::EncodeOrderedU64(i * 2 + 1)));
    ASSERT_EQ(rids.size(), 1u) << "key " << i * 2 + 1;
    EXPECT_EQ(rids[0], 100 + i);
  }
}

TEST_F(BTreeTest, CachingReducesStorageRequests) {
  auto client = MakeClient();
  ASSERT_OK(BTree::Create(client.get(), table_));
  BTree cached = MakeTree(/*fanout=*/8, /*cache=*/true);
  for (uint64_t i = 0; i < 200; ++i) {
    ASSERT_OK(cached.Insert(client.get(), tell::EncodeOrderedU64(i), i + 1, true));
  }
  auto measure = [&](BTree* tree) {
    auto c = MakeClient();
    uint64_t before = metrics_.back()->storage_requests;
    for (uint64_t i = 0; i < 200; ++i) {
      EXPECT_TRUE(tree->Lookup(c.get(), tell::EncodeOrderedU64(i)).ok());
    }
    return metrics_.back()->storage_requests - before;
  };
  NodeCache warm_cache;
  BTreeOptions with_cache;
  with_cache.fanout = 8;
  BTree tree_cached(table_, with_cache, &warm_cache);
  uint64_t cached_requests = measure(&tree_cached);

  BTreeOptions without;
  without.fanout = 8;
  without.cache_inner_nodes = false;
  BTree tree_uncached(table_, without, nullptr);
  uint64_t uncached_requests = measure(&tree_uncached);
  EXPECT_LT(cached_requests, uncached_requests);
}

}  // namespace
}  // namespace tell::index
