#include <gtest/gtest.h>

#include <thread>

#include "db/tell_db.h"
#include "tests/test_util.h"

namespace tell::tx {
namespace {

using schema::Tuple;
using schema::Value;

class TransactionTest : public ::testing::Test {
 protected:
  TransactionTest() {
    db::TellDbOptions options;
    options.num_processing_nodes = 2;
    options.num_storage_nodes = 3;
    options.network = sim::NetworkModel::Instant();
    db_ = std::make_unique<db::TellDb>(options);
    schema::IndexDef by_name;
    by_name.name = "by_name";
    by_name.key_columns = {1};
    by_name.unique = false;
    Status st = db_->CreateTable("accounts",
                                 schema::SchemaBuilder()
                                     .AddInt64("id")
                                     .AddString("name")
                                     .AddDouble("balance")
                                     .SetPrimaryKey({"id"})
                                     .Build(),
                                 {by_name});
    EXPECT_TRUE(st.ok()) << st.ToString();
    auto table = db_->GetTable(0, "accounts");
    EXPECT_TRUE(table.ok());
    table_ = *table;
    session_ = db_->OpenSession(0, 0);
  }

  Tuple Account(int64_t id, const std::string& name, double balance) {
    Tuple t(3);
    t.Set(0, id);
    t.Set(1, name);
    t.Set(2, balance);
    return t;
  }

  /// Inserts and commits one row; returns the rid.
  uint64_t MustInsert(int64_t id, const std::string& name, double balance) {
    Transaction txn(session_.get());
    EXPECT_TRUE(txn.Begin().ok());
    auto rid = txn.Insert(table_, Account(id, name, balance));
    EXPECT_TRUE(rid.ok()) << rid.status().ToString();
    EXPECT_TRUE(txn.Commit().ok());
    return *rid;
  }

  std::unique_ptr<db::TellDb> db_;
  TableHandle* table_;
  std::unique_ptr<Session> session_;
};

TEST_F(TransactionTest, InsertCommitRead) {
  uint64_t rid = MustInsert(1, "alice", 100.0);
  Transaction txn(session_.get());
  ASSERT_OK(txn.Begin());
  ASSERT_OK_AND_ASSIGN(std::optional<Tuple> row, txn.Read(table_, rid));
  ASSERT_TRUE(row.has_value());
  EXPECT_EQ(row->GetString(1), "alice");
  EXPECT_EQ(row->GetDouble(2), 100.0);
  ASSERT_OK(txn.Commit());
}

TEST_F(TransactionTest, ReadByPrimaryKey) {
  MustInsert(7, "bob", 5.0);
  Transaction txn(session_.get());
  ASSERT_OK(txn.Begin());
  ASSERT_OK_AND_ASSIGN(std::optional<Tuple> row,
                       txn.ReadByKey(table_, {Value(int64_t{7})}));
  ASSERT_TRUE(row.has_value());
  EXPECT_EQ(row->GetString(1), "bob");
  ASSERT_OK_AND_ASSIGN(std::optional<Tuple> missing,
                       txn.ReadByKey(table_, {Value(int64_t{999})}));
  EXPECT_FALSE(missing.has_value());
  ASSERT_OK(txn.Commit());
}

TEST_F(TransactionTest, OwnWritesVisibleBeforeCommit) {
  Transaction txn(session_.get());
  ASSERT_OK(txn.Begin());
  ASSERT_OK_AND_ASSIGN(uint64_t rid,
                       txn.Insert(table_, Account(1, "alice", 1.0)));
  ASSERT_OK_AND_ASSIGN(std::optional<Tuple> row, txn.Read(table_, rid));
  ASSERT_TRUE(row.has_value());
  EXPECT_EQ(row->GetString(1), "alice");
  // Own insert also visible through the index.
  ASSERT_OK_AND_ASSIGN(std::optional<Tuple> by_key,
                       txn.ReadByKey(table_, {Value(int64_t{1})}));
  EXPECT_TRUE(by_key.has_value());
  ASSERT_OK(txn.Commit());
}

TEST_F(TransactionTest, UncommittedWritesInvisibleToOthers) {
  Transaction writer(session_.get());
  ASSERT_OK(writer.Begin());
  ASSERT_OK(writer.Insert(table_, Account(1, "alice", 1.0)).status());

  auto session2 = db_->OpenSession(0, 1);
  Transaction reader(session2.get());
  ASSERT_OK(reader.Begin());
  ASSERT_OK_AND_ASSIGN(std::optional<Tuple> row,
                       reader.ReadByKey(table_, {Value(int64_t{1})}));
  EXPECT_FALSE(row.has_value()) << "dirty read!";
  ASSERT_OK(reader.Commit());
  ASSERT_OK(writer.Commit());
}

TEST_F(TransactionTest, SnapshotIgnoresLaterCommits) {
  uint64_t rid = MustInsert(1, "alice", 100.0);
  // Reader starts first.
  Transaction reader(session_.get());
  ASSERT_OK(reader.Begin());
  // A later transaction updates the balance and commits.
  auto session2 = db_->OpenSession(0, 1);
  Transaction writer(session2.get());
  ASSERT_OK(writer.Begin());
  ASSERT_OK(writer.Update(table_, rid, Account(1, "alice", 999.0)));
  ASSERT_OK(writer.Commit());
  // The reader still sees its snapshot.
  ASSERT_OK_AND_ASSIGN(std::optional<Tuple> row, reader.Read(table_, rid));
  ASSERT_TRUE(row.has_value());
  EXPECT_EQ(row->GetDouble(2), 100.0);
  ASSERT_OK(reader.Commit());
  // A fresh transaction sees the update.
  Transaction fresh(session_.get());
  ASSERT_OK(fresh.Begin());
  ASSERT_OK_AND_ASSIGN(row, fresh.Read(table_, rid));
  EXPECT_EQ(row->GetDouble(2), 999.0);
  ASSERT_OK(fresh.Commit());
}

TEST_F(TransactionTest, WriteWriteConflictAbortsSecondCommitter) {
  uint64_t rid = MustInsert(1, "alice", 100.0);
  auto session2 = db_->OpenSession(1, 1);
  auto table2 = db_->GetTable(1, "accounts");
  ASSERT_TRUE(table2.ok());

  Transaction t1(session_.get());
  Transaction t2(session2.get());
  ASSERT_OK(t1.Begin());
  ASSERT_OK(t2.Begin());
  ASSERT_OK(t1.Update(table_, rid, Account(1, "alice", 110.0)));
  ASSERT_OK(t2.Update(*table2, rid, Account(1, "alice", 120.0)));
  ASSERT_OK(t1.Commit());
  Status st = t2.Commit();
  EXPECT_TRUE(st.IsAborted()) << st.ToString();
  EXPECT_EQ(t2.state(), TxnState::kAborted);
  // t1's value survived; no lost update.
  Transaction check(session_.get());
  ASSERT_OK(check.Begin());
  ASSERT_OK_AND_ASSIGN(std::optional<Tuple> row, check.Read(table_, rid));
  EXPECT_EQ(row->GetDouble(2), 110.0);
  ASSERT_OK(check.Commit());
}

TEST_F(TransactionTest, AbortedTransactionLeavesNoTrace) {
  uint64_t rid = MustInsert(1, "alice", 100.0);
  Transaction txn(session_.get());
  ASSERT_OK(txn.Begin());
  ASSERT_OK(txn.Update(table_, rid, Account(1, "alice", 0.0)));
  ASSERT_OK(txn.Abort());
  Transaction check(session_.get());
  ASSERT_OK(check.Begin());
  ASSERT_OK_AND_ASSIGN(std::optional<Tuple> row, check.Read(table_, rid));
  EXPECT_EQ(row->GetDouble(2), 100.0);
  ASSERT_OK(check.Commit());
}

TEST_F(TransactionTest, DeleteHidesRecordFromNewSnapshots) {
  uint64_t rid = MustInsert(1, "alice", 100.0);
  // A long-running reader starts before the delete.
  Transaction old_reader(session_.get());
  ASSERT_OK(old_reader.Begin());

  auto session2 = db_->OpenSession(0, 1);
  Transaction deleter(session2.get());
  ASSERT_OK(deleter.Begin());
  ASSERT_OK(deleter.Delete(table_, rid));
  ASSERT_OK(deleter.Commit());

  // Old snapshot still sees the record (time travel).
  ASSERT_OK_AND_ASSIGN(std::optional<Tuple> row, old_reader.Read(table_, rid));
  EXPECT_TRUE(row.has_value());
  ASSERT_OK(old_reader.Commit());

  // New snapshot does not.
  Transaction fresh(session_.get());
  ASSERT_OK(fresh.Begin());
  ASSERT_OK_AND_ASSIGN(row, fresh.Read(table_, rid));
  EXPECT_FALSE(row.has_value());
  ASSERT_OK_AND_ASSIGN(std::optional<Tuple> by_key,
                       fresh.ReadByKey(table_, {Value(int64_t{1})}));
  EXPECT_FALSE(by_key.has_value());
  ASSERT_OK(fresh.Commit());
}

TEST_F(TransactionTest, DuplicatePrimaryKeyRejected) {
  MustInsert(1, "alice", 1.0);
  Transaction txn(session_.get());
  ASSERT_OK(txn.Begin());
  Status st = txn.Insert(table_, Account(1, "clone", 2.0)).status();
  EXPECT_TRUE(st.IsAlreadyExists()) << st.ToString();
  ASSERT_OK(txn.Abort());
}

TEST_F(TransactionTest, RacingInsertsSamePkOnlyOneWins) {
  auto session2 = db_->OpenSession(1, 1);
  auto table2 = db_->GetTable(1, "accounts");
  ASSERT_TRUE(table2.ok());
  Transaction t1(session_.get());
  Transaction t2(session2.get());
  ASSERT_OK(t1.Begin());
  ASSERT_OK(t2.Begin());
  // Both pass the pre-check (neither sees the other's insert)...
  ASSERT_OK(t1.Insert(table_, Account(5, "a", 0.0)).status());
  ASSERT_OK(t2.Insert(*table2, Account(5, "b", 0.0)).status());
  // ...but the unique primary index catches the race at commit.
  Status s1 = t1.Commit();
  Status s2 = t2.Commit();
  EXPECT_NE(s1.ok(), s2.ok());
  Transaction check(session_.get());
  ASSERT_OK(check.Begin());
  ASSERT_OK_AND_ASSIGN(auto rids,
                       check.LookupIndex(table_, -1, {Value(int64_t{5})}));
  EXPECT_EQ(rids.size(), 1u);
  ASSERT_OK(check.Commit());
}

TEST_F(TransactionTest, SecondaryIndexLookup) {
  MustInsert(1, "alice", 1.0);
  MustInsert(2, "bob", 2.0);
  MustInsert(3, "alice", 3.0);
  Transaction txn(session_.get());
  ASSERT_OK(txn.Begin());
  ASSERT_OK_AND_ASSIGN(
      auto rids, txn.LookupIndex(table_, 0, {Value(std::string("alice"))}));
  EXPECT_EQ(rids.size(), 2u);
  ASSERT_OK(txn.Commit());
}

TEST_F(TransactionTest, SecondaryIndexFollowsKeyChange) {
  uint64_t rid = MustInsert(1, "alice", 1.0);
  Transaction rename(session_.get());
  ASSERT_OK(rename.Begin());
  ASSERT_OK(rename.Update(table_, rid, Account(1, "alicia", 1.0)));
  ASSERT_OK(rename.Commit());

  Transaction txn(session_.get());
  ASSERT_OK(txn.Begin());
  ASSERT_OK_AND_ASSIGN(
      auto new_rids, txn.LookupIndex(table_, 0, {Value(std::string("alicia"))}));
  EXPECT_EQ(new_rids.size(), 1u);
  // The old entry is version-unaware and may still exist, but must not
  // produce a visible hit.
  ASSERT_OK_AND_ASSIGN(
      auto old_rids, txn.LookupIndex(table_, 0, {Value(std::string("alice"))}));
  EXPECT_TRUE(old_rids.empty());
  ASSERT_OK(txn.Commit());
}

TEST_F(TransactionTest, ScanIndexRange) {
  for (int64_t id = 1; id <= 10; ++id) {
    MustInsert(id, "user" + std::to_string(id), static_cast<double>(id));
  }
  Transaction txn(session_.get());
  ASSERT_OK(txn.Begin());
  ASSERT_OK_AND_ASSIGN(
      auto rows, txn.ScanIndex(table_, -1, {Value(int64_t{3})},
                               {Value(int64_t{7})}, 0));
  ASSERT_EQ(rows.size(), 4u);
  EXPECT_EQ(rows[0].second.GetInt(0), 3);
  EXPECT_EQ(rows[3].second.GetInt(0), 6);
  ASSERT_OK(txn.Commit());
}

TEST_F(TransactionTest, BatchReadMixesHitsAndMisses) {
  uint64_t r1 = MustInsert(1, "a", 1.0);
  uint64_t r2 = MustInsert(2, "b", 2.0);
  Transaction txn(session_.get());
  ASSERT_OK(txn.Begin());
  ASSERT_OK_AND_ASSIGN(auto rows,
                       txn.BatchRead(table_, {r1, 424242, r2}));
  ASSERT_EQ(rows.size(), 3u);
  EXPECT_TRUE(rows[0].has_value());
  EXPECT_FALSE(rows[1].has_value());
  EXPECT_TRUE(rows[2].has_value());
  ASSERT_OK(txn.Commit());
}

TEST_F(TransactionTest, ReadOnlyCommitSkipsLogAndApply) {
  uint64_t rid = MustInsert(1, "a", 1.0);
  uint64_t requests_before = session_->metrics()->storage_requests;
  Transaction txn(session_.get());
  ASSERT_OK(txn.Begin());
  ASSERT_OK(txn.Read(table_, rid).status());
  uint64_t after_read = session_->metrics()->storage_requests;
  ASSERT_OK(txn.Commit());
  // Commit of a read-only transaction issues no further storage requests.
  EXPECT_EQ(session_->metrics()->storage_requests, after_read);
  EXPECT_GT(after_read, requests_before);
}

TEST_F(TransactionTest, EagerGcTrimsOldVersions) {
  uint64_t rid = MustInsert(1, "a", 0.0);
  // Many sequential updates; with no concurrent readers the lav advances,
  // so commit-time GC keeps the version count bounded.
  for (int i = 1; i <= 20; ++i) {
    Transaction txn(session_.get());
    ASSERT_OK(txn.Begin());
    ASSERT_OK(txn.Update(table_, rid, Account(1, "a", i)));
    ASSERT_OK(txn.Commit());
  }
  // Fetch the raw record and count versions.
  auto cell = db_->cluster()->Get(table_->meta->data_table,
                                  EncodeOrderedU64(rid));
  ASSERT_TRUE(cell.ok());
  ASSERT_OK_AND_ASSIGN(schema::VersionedRecord record,
                       schema::VersionedRecord::Deserialize(cell->value));
  EXPECT_LE(record.NumVersions(), 3u)
      << "eager GC should keep the version chain short";
}

TEST_F(TransactionTest, LostUpdateAnomalyPreventedUnderConcurrency) {
  uint64_t rid = MustInsert(1, "counter", 0.0);
  constexpr int kThreads = 4;
  constexpr int kIncrementsEach = 50;
  std::atomic<int> total_committed{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      auto session = db_->OpenSession(t % 2, 10 + t);
      auto table = db_->GetTable(t % 2, "accounts");
      ASSERT_TRUE(table.ok());
      int committed = 0;
      while (committed < kIncrementsEach) {
        Transaction txn(session.get());
        ASSERT_TRUE(txn.Begin().ok());
        auto row = txn.Read(*table, rid);
        ASSERT_TRUE(row.ok());
        ASSERT_TRUE(row->has_value());
        double balance = (*row)->GetDouble(2);
        Status st = txn.Update(*table, rid, [&] {
          Tuple u(3);
          u.Set(0, int64_t{1});
          u.Set(1, std::string("counter"));
          u.Set(2, balance + 1.0);
          return u;
        }());
        // Update itself may detect the conflict (§4.1 scenario 1: the
        // record already carries a newer invisible version) — that counts
        // as an aborted attempt to retry, same as a commit-time conflict.
        Status commit = st.ok() ? txn.Commit() : st;
        if (commit.ok()) {
          ++committed;
          total_committed.fetch_add(1);
        } else {
          ASSERT_TRUE(commit.IsAborted()) << commit.ToString();
          if (txn.state() == tx::TxnState::kRunning) (void)txn.Abort();
        }
      }
    });
  }
  for (auto& thread : threads) thread.join();
  Transaction check(session_.get());
  ASSERT_OK(check.Begin());
  ASSERT_OK_AND_ASSIGN(std::optional<Tuple> row, check.Read(table_, rid));
  // Every committed increment is reflected: snapshot isolation prevents
  // lost updates via first-committer-wins (LL/SC).
  EXPECT_EQ(row->GetDouble(2),
            static_cast<double>(kThreads * kIncrementsEach));
  ASSERT_OK(check.Commit());
}

TEST_F(TransactionTest, GcHorizonHonorsDeltaCachedReaderSnapshot) {
  // Regression test for the delta-sync protocol: a reader whose session
  // reconstructs snapshots from cached deltas must still hold the GC horizon
  // back — lazy GC must never reclaim a version the reader can see.
  uint64_t rid = MustInsert(1, "a", 1.0);
  auto session2 = db_->OpenSession(1, 0);
  // Warm both sessions' delta caches past the first-contact full sync.
  for (int i = 0; i < 3; ++i) {
    Transaction t1(session_.get());
    ASSERT_OK(t1.Begin());
    ASSERT_OK(t1.Commit());
    Transaction t2(session2.get());
    ASSERT_OK(t2.Begin());
    ASSERT_OK(t2.Commit());
  }

  Transaction reader(session2.get());
  ASSERT_OK(reader.Begin());
  ASSERT_OK_AND_ASSIGN(std::optional<Tuple> before, reader.Read(table_, rid));
  ASSERT_TRUE(before.has_value());
  EXPECT_EQ(before->GetDouble(2), 1.0);

  // Meanwhile the other session commits newer versions through its warm
  // delta cache.
  for (int i = 1; i <= 10; ++i) {
    Transaction writer(session_.get());
    ASSERT_OK(writer.Begin());
    ASSERT_OK(writer.Update(table_, rid, Account(1, "a", 100.0 + i)));
    ASSERT_OK(writer.Commit());
  }

  // The GC horizon must not pass the open reader's snapshot.
  EXPECT_LE(db_->commit_managers()->GlobalLav(), reader.tid());
  ASSERT_OK(db_->RunGarbageCollection().status());

  // The reader's version survived the sweep.
  ASSERT_OK_AND_ASSIGN(std::optional<Tuple> after, reader.Read(table_, rid));
  ASSERT_TRUE(after.has_value());
  EXPECT_EQ(after->GetDouble(2), 1.0) << "GC reclaimed a visible version";
  ASSERT_OK(reader.Commit());

  // With the reader gone the horizon is free to advance and reclaim.
  Transaction check(session_.get());
  ASSERT_OK(check.Begin());
  ASSERT_OK_AND_ASSIGN(std::optional<Tuple> latest, check.Read(table_, rid));
  ASSERT_TRUE(latest.has_value());
  EXPECT_EQ(latest->GetDouble(2), 110.0);
  ASSERT_OK(check.Commit());
}

TEST_F(TransactionTest, DeltaAndBatchingOffMatchesOnOutcomes) {
  // The delta/batching client is a transport optimization: with the same
  // seeds and the same scripted workload, commit/abort outcomes and tids
  // must be identical with the optimization on and off.
  auto run = [&](bool delta, bool batching) {
    db::TellDbOptions options;
    options.num_processing_nodes = 2;
    options.num_storage_nodes = 3;
    options.network = sim::NetworkModel::Instant();
    options.session.commit_delta = delta;
    options.session.commit_batching = batching;
    db::TellDb db(options);
    EXPECT_TRUE(db.CreateTable("accounts",
                               schema::SchemaBuilder()
                                   .AddInt64("id")
                                   .AddString("name")
                                   .AddDouble("balance")
                                   .SetPrimaryKey({"id"})
                                   .Build(),
                               {})
                    .ok());
    auto table = db.GetTable(0, "accounts");
    EXPECT_TRUE(table.ok());
    auto s1 = db.OpenSession(0, 0);
    auto s2 = db.OpenSession(1, 0);

    std::vector<std::pair<Tid, bool>> outcomes;
    uint64_t rid = 0;
    {
      Transaction seedtxn(s1.get());
      EXPECT_TRUE(seedtxn.Begin().ok());
      auto r = seedtxn.Insert(*table, Account(1, "a", 0.0));
      EXPECT_TRUE(r.ok());
      rid = *r;
      EXPECT_TRUE(seedtxn.Commit().ok());
      outcomes.emplace_back(seedtxn.tid(), true);
    }
    // Scripted conflicting interleaving: both sessions race updates to the
    // same row; first committer wins, second aborts on the write conflict.
    for (int round = 0; round < 8; ++round) {
      Transaction a(s1.get());
      Transaction b(s2.get());
      EXPECT_TRUE(a.Begin().ok());
      EXPECT_TRUE(b.Begin().ok());
      EXPECT_TRUE(a.Update(*table, rid, Account(1, "a", round)).ok());
      EXPECT_TRUE(b.Update(*table, rid, Account(1, "a", -round)).ok());
      Status sa = a.Commit();
      Status sb = b.Commit();
      outcomes.emplace_back(a.tid(), sa.ok());
      outcomes.emplace_back(b.tid(), sb.ok());
    }
    return outcomes;
  };

  auto baseline = run(false, false);
  EXPECT_EQ(run(true, false), baseline);
  EXPECT_EQ(run(false, true), baseline);
  EXPECT_EQ(run(true, true), baseline);
}

}  // namespace
}  // namespace tell::tx
