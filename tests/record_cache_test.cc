// One-sided reads + lease-based client record caching (DESIGN.md
// "One-sided reads & client caching"):
//
//   1. LeaseEpochTable / RecordCache mechanics: epoch bumps, invalidation
//      on epoch movement, the LRU entry bound, and the frozen-epoch test
//      fault.
//   2. StorageClient integration: hits skip the network and are
//      byte-identical, writes invalidate, one-sided reads bypass the
//      storage node's request counters, kernel-TCP models never go
//      one-sided, and injected one_sided_get faults fall back cleanly.
//   3. The determinism contract (tsan label): TPC-C with the cache and
//      one-sided reads on — including a mid-run partition migration —
//      produces a bit-identical final state to the plain two-sided run,
//      and a storage node that "forgets" lease invalidation (frozen
//      epochs) is caught by the same digest harness.
//   4. Real-thread churn (tsan): concurrent fills, probes and bumps race
//      without losing the entry bound.

#include <gtest/gtest.h>

#include <atomic>
#include <iomanip>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "db/tell_db.h"
#include "sim/fault_injector.h"
#include "store/cluster.h"
#include "store/record_cache.h"
#include "store/storage_client.h"
#include "tests/test_util.h"
#include "tx/transaction.h"
#include "workload/tpcc/tpcc_driver.h"
#include "workload/tpcc/tpcc_loader.h"

namespace tell::store {
namespace {

using sim::FaultInjector;
using sim::FaultOpClass;
using sim::FaultPlan;
using sim::FaultRule;
using tx::Transaction;

// ---------------------------------------------------------------------------
// LeaseEpochTable
// ---------------------------------------------------------------------------

TEST(LeaseEpochTableTest, BumpAdvancesOnlyThatPartition) {
  LeaseEpochTable epochs;
  EXPECT_EQ(epochs.Epoch(1, 0), 0u);
  epochs.Bump(1, 0);
  epochs.Bump(1, 0);
  EXPECT_EQ(epochs.Epoch(1, 0), 2u);
  // A different (table, partition) hashes to its own slot here.
  EXPECT_EQ(epochs.Epoch(1, 1), 0u);
  EXPECT_EQ(epochs.Epoch(2, 0), 0u);
}

TEST(LeaseEpochTableTest, FrozenSuppressesBumps) {
  LeaseEpochTable epochs;
  epochs.set_frozen_for_testing(true);
  epochs.Bump(1, 0);
  EXPECT_EQ(epochs.Epoch(1, 0), 0u);
  epochs.set_frozen_for_testing(false);
  epochs.Bump(1, 0);
  EXPECT_EQ(epochs.Epoch(1, 0), 1u);
}

// ---------------------------------------------------------------------------
// RecordCache mechanics
// ---------------------------------------------------------------------------

VersionedCell MakeCell(std::string value, uint64_t stamp) {
  VersionedCell cell;
  cell.value = std::move(value);
  cell.stamp = stamp;
  return cell;
}

TEST(RecordCacheTest, MissFillHitRoundTrip) {
  RecordCacheOptions options;
  options.enabled = true;
  RecordCache cache(options);
  VersionedCell out;
  EXPECT_FALSE(cache.Get(1, "k", /*current_epoch=*/7, &out));
  cache.Put(1, "k", MakeCell("v", 42), /*fill_epoch=*/7);
  ASSERT_TRUE(cache.Get(1, "k", /*current_epoch=*/7, &out));
  EXPECT_EQ(out.value, "v");
  EXPECT_EQ(out.stamp, 42u);
  RecordCacheStats stats = cache.stats();
  EXPECT_EQ(stats.hits, 1u);
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_EQ(stats.entries, 1u);
}

TEST(RecordCacheTest, EpochMovementInvalidates) {
  RecordCacheOptions options;
  options.enabled = true;
  RecordCache cache(options);
  cache.Put(1, "k", MakeCell("old", 1), /*fill_epoch=*/7);
  VersionedCell out;
  // The partition's epoch moved past the fill: the entry must be dropped
  // and reported as a miss, never served.
  EXPECT_FALSE(cache.Get(1, "k", /*current_epoch=*/8, &out));
  RecordCacheStats stats = cache.stats();
  EXPECT_EQ(stats.invalidations, 1u);
  EXPECT_EQ(stats.entries, 0u);
  // A refill at the new epoch serves again.
  cache.Put(1, "k", MakeCell("new", 2), /*fill_epoch=*/8);
  ASSERT_TRUE(cache.Get(1, "k", /*current_epoch=*/8, &out));
  EXPECT_EQ(out.value, "new");
}

TEST(RecordCacheTest, LruBoundEvictsOldestFirst) {
  RecordCacheOptions options;
  options.enabled = true;
  options.max_entries = 4;
  options.stripes = 1;  // one LRU list so the eviction order is exact
  RecordCache cache(options);
  for (int i = 0; i < 4; ++i) {
    cache.Put(1, "k" + std::to_string(i), MakeCell("v", 1), 0);
  }
  VersionedCell out;
  // Touch k0 so k1 becomes the LRU victim.
  ASSERT_TRUE(cache.Get(1, "k0", 0, &out));
  cache.Put(1, "k4", MakeCell("v", 1), 0);
  EXPECT_EQ(cache.entries(), 4u);
  EXPECT_EQ(cache.stats().evictions, 1u);
  EXPECT_TRUE(cache.Get(1, "k0", 0, &out));
  EXPECT_FALSE(cache.Get(1, "k1", 0, &out));  // evicted
  EXPECT_TRUE(cache.Get(1, "k4", 0, &out));
}

// ---------------------------------------------------------------------------
// StorageClient integration
// ---------------------------------------------------------------------------

class ClientCacheTest : public ::testing::Test {
 protected:
  ClientCacheTest() {
    ClusterOptions options;
    options.num_storage_nodes = 3;
    cluster_ = std::make_unique<Cluster>(options);
    table_ = *cluster_->CreateTable("t");
    cache_options_.enabled = true;
    cache_ = std::make_unique<RecordCache>(cache_options_);
  }

  std::unique_ptr<StorageClient> MakeClient(ClientOptions options) {
    options.record_cache = cache_.get();
    return std::make_unique<StorageClient>(cluster_.get(), nullptr, options,
                                           &clock_, &metrics_);
  }

  uint64_t NodeGets() const {
    uint64_t total = 0;
    for (uint32_t i = 0; i < cluster_->num_nodes(); ++i) {
      total += cluster_->node(i)->stats().gets;
    }
    return total;
  }

  std::unique_ptr<Cluster> cluster_;
  RecordCacheOptions cache_options_;
  std::unique_ptr<RecordCache> cache_;
  sim::VirtualClock clock_;
  sim::WorkerMetrics metrics_;
  TableId table_;
};

TEST_F(ClientCacheTest, HitSkipsNetworkAndIsByteIdentical) {
  auto client = MakeClient(ClientOptions{});
  ASSERT_OK(client->Put(table_, "k", "value-bytes").status());
  ASSERT_OK_AND_ASSIGN(VersionedCell first, client->Get(table_, "k"));
  const uint64_t requests = metrics_.storage_requests;
  EXPECT_EQ(metrics_.cache_misses, 1u);
  ASSERT_OK_AND_ASSIGN(VersionedCell second, client->Get(table_, "k"));
  // No new request, and the hit is byte-identical to the fresh fetch.
  EXPECT_EQ(metrics_.storage_requests, requests);
  EXPECT_EQ(metrics_.cache_hits, 1u);
  EXPECT_EQ(second.value, first.value);
  EXPECT_EQ(second.stamp, first.stamp);
}

TEST_F(ClientCacheTest, WriteInvalidatesCachedEntry) {
  auto client = MakeClient(ClientOptions{});
  ASSERT_OK(client->Put(table_, "k", "v0").status());
  ASSERT_OK(client->Get(table_, "k").status());  // fill
  // The write bumps the partition's lease epoch inside the storage node's
  // critical section, so the cached v0 can never be served again.
  ASSERT_OK(client->Put(table_, "k", "v1").status());
  ASSERT_OK_AND_ASSIGN(VersionedCell cell, client->Get(table_, "k"));
  EXPECT_EQ(cell.value, "v1");
  EXPECT_EQ(metrics_.cache_hits, 0u);
  EXPECT_EQ(cache_->stats().invalidations, 1u);
}

TEST_F(ClientCacheTest, OneSidedReadBypassesStorageNodeRequestPath) {
  ClientOptions options;  // InfiniBand default: RDMA-class
  options.one_sided_reads = true;
  auto client = MakeClient(options);
  ASSERT_OK(client->Put(table_, "k", "v").status());
  const uint64_t gets_before = NodeGets();
  ASSERT_OK_AND_ASSIGN(VersionedCell cell, client->Get(table_, "k"));
  EXPECT_EQ(cell.value, "v");
  EXPECT_EQ(metrics_.onesided_reads, 1u);
  EXPECT_EQ(metrics_.onesided_fallbacks, 0u);
  // An RDMA READ never dispatches through the node's request path.
  EXPECT_EQ(NodeGets(), gets_before);
}

TEST_F(ClientCacheTest, KernelTcpModelNeverGoesOneSided) {
  ClientOptions options;
  options.network = sim::NetworkModel::TenGbEthernet();
  options.one_sided_reads = true;  // requested, but the model can't
  auto client = MakeClient(options);
  ASSERT_OK(client->Put(table_, "k", "v").status());
  const uint64_t gets_before = NodeGets();
  ASSERT_OK(client->Get(table_, "k").status());
  EXPECT_EQ(metrics_.onesided_reads, 0u);
  EXPECT_EQ(NodeGets(), gets_before + 1);  // ordinary two-sided dispatch
}

TEST_F(ClientCacheTest, ExplicitAsyncOneSidedGetIgnoresClientDefault) {
  ClientOptions options;  // one_sided_reads left off
  auto client = MakeClient(options);
  ASSERT_OK(client->Put(table_, "k", "v").status());
  ASSERT_OK(client->Get(table_, "k").status());
  metrics_.onesided_reads = 0;
  // Bump the epoch so the cached fill can't shadow the one-sided path.
  ASSERT_OK(client->Put(table_, "k", "v2").status());
  ASSERT_OK_AND_ASSIGN(VersionedCell cell,
                       client->AsyncOneSidedGet(table_, "k").Await());
  EXPECT_EQ(cell.value, "v2");
  EXPECT_EQ(metrics_.onesided_reads, 1u);
}

TEST_F(ClientCacheTest, InjectedOneSidedFaultFallsBackTwoSided) {
  FaultRule rule;
  rule.kind = FaultRule::Kind::kDropRequest;
  rule.op = FaultOpClass::kOneSidedGet;
  rule.max_fires = 1;
  FaultInjector injector(FaultPlan{.seed = 1, .rules = {rule}});
  ClientOptions options;
  options.one_sided_reads = true;
  options.fault_injector = &injector;
  auto client = MakeClient(options);
  ASSERT_OK(client->Put(table_, "k", "v").status());
  // The one-sided attempt is dropped; the read must still succeed via the
  // two-sided retry path, counting the validation failure and the fallback.
  ASSERT_OK_AND_ASSIGN(VersionedCell cell, client->Get(table_, "k"));
  EXPECT_EQ(cell.value, "v");
  EXPECT_EQ(metrics_.onesided_validation_failures, 1u);
  EXPECT_EQ(metrics_.onesided_fallbacks, 1u);
  EXPECT_EQ(metrics_.onesided_reads, 0u);
  // The rule disarmed: the next read goes one-sided again.
  ASSERT_OK(client->Put(table_, "k", "v2").status());
  ASSERT_OK(client->Get(table_, "k").status());
  EXPECT_EQ(metrics_.onesided_reads, 1u);
}

// ---------------------------------------------------------------------------
// Determinism contract: TPC-C digest, cache+one-sided on vs off
// ---------------------------------------------------------------------------

std::string ValueToString(const schema::Value& value) {
  std::ostringstream out;
  out << std::setprecision(17);
  if (const int64_t* i = std::get_if<int64_t>(&value)) {
    out << 'i' << *i;
  } else if (const double* d = std::get_if<double>(&value)) {
    out << 'd' << *d;
  } else if (const std::string* s = std::get_if<std::string>(&value)) {
    out << 's' << *s;
  } else {
    out << "null";
  }
  return out.str();
}

void DigestTable(Transaction* txn, tx::TableHandle* table,
                 const std::vector<uint32_t>& cols, std::ostringstream* out) {
  const std::string hi(16, '\xFF');
  auto rows = txn->ScanIndexEncoded(table, -1, "", hi, 0);
  ASSERT_TRUE(rows.ok()) << rows.status().ToString();
  *out << "#" << rows->size() << "\n";
  for (const auto& [rid, tuple] : *rows) {
    for (uint32_t col : cols) *out << ValueToString(tuple.at(col)) << "|";
    *out << "\n";
  }
}

struct DigestRunConfig {
  bool cache = false;
  bool one_sided = false;
  bool migrate = false;
  /// Test fault: suppress all lease-epoch bumps (a storage tier that
  /// "forgets" invalidation). Individual transactions may then fail on the
  /// stale data they read; the run tolerates that and digests whatever
  /// final state results.
  bool freeze_epochs = false;
};

void RunTpccDigest(const DigestRunConfig& config, std::string* digest) {
  db::TellDbOptions options;
  options.network = sim::NetworkModel::Instant();
  options.record_cache.enabled = config.cache;
  options.one_sided_reads = config.one_sided;
  db::TellDb db(options);
  ASSERT_OK(tpcc::CreateTpccTables(&db));
  tpcc::TpccScale scale;
  scale.warehouses = 2;
  scale.districts_per_warehouse = 2;
  scale.customers_per_district = 10;
  scale.items = 40;
  scale.initial_orders_per_district = 8;
  ASSERT_OK(tpcc::LoadTpcc(&db, scale));
  if (config.freeze_epochs) {
    db.cluster()->lease_epochs().set_frozen_for_testing(true);
  }
  auto session = db.OpenSession(0, 0);
  auto tables = tpcc::OpenTpccTables(&db, 0);
  ASSERT_TRUE(tables.ok()) << tables.status().ToString();
  tpcc::TpccExecutor executor(session.get(), *tables);
  tpcc::InputGenerator generator(scale, tpcc::Mix::kWriteIntensive,
                                 /*seed=*/9090, /*home_warehouse=*/1);

  constexpr int kInputs = 120;
  for (int i = 0; i < kInputs; ++i) {
    if (config.migrate && i == kInputs / 2) {
      const store::TableId stock = tables->stock->meta->data_table;
      ASSERT_OK_AND_ASSIGN(
          store::PartitionPlacement placement,
          db.cluster()->partition_map().PlacementOf(stock, 0));
      const uint32_t dest =
          (placement.master + 1) % db.cluster()->num_nodes();
      ASSERT_OK(db.management()->MigratePartition(stock, 0, dest));
    }
    tpcc::TxnInput input = generator.Next();
    auto outcome = executor.Execute(input);
    if (!config.freeze_epochs) {
      ASSERT_TRUE(outcome.ok()) << outcome.status().ToString();
    }
  }

  auto reader = db.OpenSession(0, 1);
  Transaction txn(reader.get());
  ASSERT_OK(txn.Begin());
  std::ostringstream out;
  namespace col = tpcc::col;
  DigestTable(&txn, tables->warehouse, {0, col::kWYtd}, &out);
  DigestTable(&txn, tables->district, {0, 1, col::kDYtd, col::kDNextOId},
              &out);
  DigestTable(&txn, tables->customer,
              {0, 1, 2, col::kCBalance, col::kCYtdPayment, col::kCPaymentCnt,
               col::kCDeliveryCnt, col::kCData},
              &out);
  DigestTable(&txn, tables->new_order, {0, 1, 2}, &out);
  DigestTable(&txn, tables->orders,
              {0, 1, 2, col::kOCId, col::kOCarrierId, col::kOOlCnt,
               col::kOAllLocal},
              &out);
  DigestTable(&txn, tables->order_line,
              {0, 1, 2, 3, col::kOlIId, col::kOlSupplyWId, col::kOlQuantity,
               col::kOlAmount, col::kOlDistInfo},
              &out);
  DigestTable(&txn, tables->stock,
              {0, 1, col::kSQuantity, col::kSYtd, col::kSOrderCnt,
               col::kSRemoteCnt},
              &out);
  ASSERT_OK(txn.Commit());
  *digest = out.str();
}

TEST(ClientCacheTpccTest, CacheAndOneSidedOnVsOffBitIdentical) {
  std::string baseline;
  std::string cached;
  RunTpccDigest({}, &baseline);
  RunTpccDigest({.cache = true, .one_sided = true}, &cached);
  ASSERT_FALSE(baseline.empty());
  EXPECT_EQ(cached, baseline)
      << "a lease-coherent cache must be invisible to transaction semantics";
}

TEST(ClientCacheTpccTest, MigrationUnderCachedRunStaysBitIdentical) {
  std::string baseline;
  std::string migrated;
  RunTpccDigest({}, &baseline);
  RunTpccDigest({.cache = true, .one_sided = true, .migrate = true},
                &migrated);
  ASSERT_FALSE(baseline.empty());
  EXPECT_EQ(migrated, baseline)
      << "migration writes (bulk install + deltas) must invalidate leases";
}

// Mutation test for the contract above: if the storage tier skipped lease
// invalidation, the digest harness MUST catch it. Frozen epochs leave every
// cached entry "valid" forever, so the workload reads stale records and the
// final state diverges — proving the bit-identical assertions have teeth.
TEST(ClientCacheTpccTest, FrozenLeaseEpochsAreCaughtByTheDigest) {
  std::string baseline;
  std::string stale;
  RunTpccDigest({}, &baseline);
  RunTpccDigest({.cache = true, .freeze_epochs = true}, &stale);
  ASSERT_FALSE(baseline.empty());
  EXPECT_NE(stale, baseline)
      << "suppressed lease invalidation went unnoticed: the cache served "
         "stale records yet produced the baseline final state";
}

// ---------------------------------------------------------------------------
// Real-thread churn (tsan)
// ---------------------------------------------------------------------------

TEST(RecordCacheConcurrencyTest, ConcurrentFillsProbesAndBumpsKeepBound) {
  RecordCacheOptions options;
  options.enabled = true;
  options.max_entries = 64;
  options.stripes = 4;
  RecordCache cache(options);
  LeaseEpochTable epochs;

  constexpr int kThreads = 4;
  constexpr int kOpsPerThread = 3000;
  std::atomic<bool> start{false};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      while (!start.load(std::memory_order_acquire)) std::this_thread::yield();
      for (int i = 0; i < kOpsPerThread; ++i) {
        const TableId table = 1 + (i % 3);
        const uint32_t partition = i % 5;
        const std::string key =
            "k" + std::to_string((t * 31 + i) % 200);
        const uint64_t epoch = epochs.Epoch(table, partition);
        VersionedCell out;
        if (!cache.Get(table, key, epoch, &out)) {
          cache.Put(table, key, MakeCell("v" + std::to_string(i), i), epoch);
        }
        if (i % 7 == 0) epochs.Bump(table, partition);
      }
    });
  }
  start.store(true, std::memory_order_release);
  for (std::thread& thread : threads) thread.join();

  RecordCacheStats stats = cache.stats();
  EXPECT_LE(stats.entries, 64u);
  EXPECT_EQ(stats.hits + stats.misses,
            uint64_t{kThreads} * kOpsPerThread);
}

}  // namespace
}  // namespace tell::store
