#ifndef TELL_TESTS_TEST_UTIL_H_
#define TELL_TESTS_TEST_UTIL_H_

#include <gtest/gtest.h>

#include "common/result.h"
#include "common/status.h"

#define ASSERT_OK(expr)                                   \
  do {                                                    \
    ::tell::Status _st = (expr);                          \
    ASSERT_TRUE(_st.ok()) << _st.ToString();              \
  } while (false)

#define EXPECT_OK(expr)                                   \
  do {                                                    \
    ::tell::Status _st = (expr);                          \
    EXPECT_TRUE(_st.ok()) << _st.ToString();              \
  } while (false)

/// Asserts a Result is OK and assigns its value.
#define ASSERT_OK_AND_ASSIGN(lhs, expr)                   \
  ASSERT_OK_AND_ASSIGN_IMPL(                              \
      TELL_ASSIGN_OR_RETURN_CONCAT(_test_tmp_, __LINE__), lhs, expr)

#define ASSERT_OK_AND_ASSIGN_IMPL(tmp, lhs, expr)         \
  auto tmp = (expr);                                      \
  ASSERT_TRUE(tmp.ok()) << tmp.status().ToString();       \
  lhs = std::move(tmp).value()

#endif  // TELL_TESTS_TEST_UTIL_H_
