// Live partition migration tests (docs/RECOVERY.md):
//
//   1. StorageNode delta machinery: watermark soundness (writes and erases
//      after the bulk copy are caught by catch-up rounds), stamp-guarded
//      idempotent apply, and the sealed final round.
//   2. Routing: a write-frozen partition bounces writes and keeps serving
//      reads; ManagementNode::MigratePartition re-points the master and the
//      destination serves both.
//   3. The determinism contract: a TPC-C run with a mid-run migration
//      produces a bit-identical final state to the same run without it.
//   4. Real-thread races (tsan): atomic increments and puts against a
//      partition while it migrates lose and duplicate nothing.

#include <gtest/gtest.h>

#include <atomic>
#include <iomanip>
#include <map>
#include <memory>
#include <set>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "db/tell_db.h"
#include "store/cluster.h"
#include "store/management_node.h"
#include "store/storage_node.h"
#include "tests/test_util.h"
#include "tx/transaction.h"
#include "workload/tpcc/tpcc_driver.h"
#include "workload/tpcc/tpcc_loader.h"

namespace tell {
namespace {

using store::KeyCell;
using store::MigrationOp;
using store::StorageNode;
using tx::Transaction;

// ---------------------------------------------------------------------------
// StorageNode delta machinery
// ---------------------------------------------------------------------------

std::vector<MigrationOp> MergeDelta(const std::vector<KeyCell>& puts,
                                    const std::vector<MigrationOp>& erases) {
  std::vector<MigrationOp> ops;
  for (const KeyCell& cell : puts) {
    ops.push_back({cell.key, cell.value, cell.stamp, /*is_erase=*/false});
  }
  ops.insert(ops.end(), erases.begin(), erases.end());
  return ops;
}

std::map<std::string, std::string> Contents(const StorageNode& node,
                                            store::TableId table,
                                            uint32_t partition) {
  auto cells = node.Scan(table, partition, "", "", 0);
  EXPECT_TRUE(cells.ok()) << cells.status().ToString();
  std::map<std::string, std::string> out;
  for (const KeyCell& cell : *cells) out[cell.key] = cell.value;
  return out;
}

TEST(MigrationDeltaTest, WatermarkedDeltaCatchesWritesAndErases) {
  constexpr store::TableId kTable = 1;
  constexpr uint32_t kPartition = 0;
  StorageNode src(0, 1ULL << 30);
  StorageNode dest(1, 1ULL << 30);
  src.CreatePartition(kTable, kPartition);
  dest.CreatePartition(kTable, kPartition);

  for (int i = 1; i <= 5; ++i) {
    ASSERT_OK(
        src.Put(kTable, kPartition, "k" + std::to_string(i), "v0").status());
  }

  // Phase 1: journal on, watermark, bulk copy.
  ASSERT_OK(src.BeginMigrationLogging(kTable, kPartition));
  ASSERT_OK_AND_ASSIGN(uint64_t watermark,
                       src.PartitionNextStamp(kTable, kPartition));
  ASSERT_OK_AND_ASSIGN(auto bulk, src.DumpPartition(kTable, kPartition));
  ASSERT_OK(dest.InstallPartition(kTable, kPartition, bulk));

  // Writes that race the copy: a new key, an overwrite, and an erase.
  ASSERT_OK(src.Put(kTable, kPartition, "k6", "v0").status());
  ASSERT_OK(src.Put(kTable, kPartition, "k2", "v1").status());
  ASSERT_OK(src.Erase(kTable, kPartition, "k3"));

  // Catch-up round: everything since the watermark, puts and erases.
  ASSERT_OK_AND_ASSIGN(uint64_t next_watermark,
                       src.PartitionNextStamp(kTable, kPartition));
  ASSERT_OK_AND_ASSIGN(auto puts,
                       src.DumpPartitionSince(kTable, kPartition, watermark));
  ASSERT_OK_AND_ASSIGN(auto erases,
                       src.ErasesSince(kTable, kPartition, watermark));
  ASSERT_EQ(erases.size(), 1u);
  EXPECT_EQ(erases[0].key, "k3");
  std::vector<MigrationOp> delta = MergeDelta(puts, erases);
  uint64_t erases_applied = 0;
  ASSERT_OK(dest.InstallMigrationDelta(kTable, kPartition, delta,
                                       &erases_applied));
  EXPECT_EQ(erases_applied, 1u);

  // Replaying the same delta is harmless: the stamp guard rejects every op
  // (nothing on the destination is older any more).
  erases_applied = 0;
  ASSERT_OK(dest.InstallMigrationDelta(kTable, kPartition, delta,
                                       &erases_applied));
  EXPECT_EQ(erases_applied, 0u);
  std::map<std::string, std::string> mid = Contents(dest, kTable, kPartition);
  EXPECT_EQ(mid.size(), 5u);  // k1, k2(v1), k4, k5, k6
  EXPECT_EQ(mid.at("k2"), "v1");
  EXPECT_EQ(mid.count("k3"), 0u);

  // Final writes, then the sealed cut-over round.
  ASSERT_OK(src.Put(kTable, kPartition, "k7", "v0").status());
  ASSERT_OK(src.Erase(kTable, kPartition, "k1"));
  ASSERT_OK_AND_ASSIGN(
      auto final_delta,
      src.SealPartitionAndDump(kTable, kPartition, next_watermark));
  ASSERT_OK(dest.InstallMigrationDelta(kTable, kPartition, final_delta));

  // The partition is sealed: every write on the source now bounces.
  EXPECT_TRUE(
      src.Put(kTable, kPartition, "k8", "v").status().IsUnavailable());
  EXPECT_TRUE(src.Erase(kTable, kPartition, "k4").IsUnavailable());
  EXPECT_TRUE(src.AtomicIncrement(kTable, kPartition, "ctr", 1)
                  .status()
                  .IsUnavailable());

  // Destination contents == source contents at the seal, exactly.
  std::map<std::string, std::string> want = Contents(src, kTable, kPartition);
  EXPECT_EQ(Contents(dest, kTable, kPartition), want);
  EXPECT_EQ(want.count("k1"), 0u);
  EXPECT_EQ(want.at("k7"), "v0");
}

TEST(MigrationDeltaTest, EraseJournalClearedByEndMigrationLogging) {
  constexpr store::TableId kTable = 1;
  StorageNode src(0, 1ULL << 30);
  src.CreatePartition(kTable, 0);
  ASSERT_OK(src.Put(kTable, 0, "a", "1").status());
  ASSERT_OK(src.BeginMigrationLogging(kTable, 0));
  ASSERT_OK(src.Erase(kTable, 0, "a"));
  ASSERT_OK_AND_ASSIGN(auto journaled, src.ErasesSince(kTable, 0, 0));
  ASSERT_EQ(journaled.size(), 1u);
  // Aborting the migration drops the journal and stops logging.
  ASSERT_OK(src.EndMigrationLogging(kTable, 0));
  ASSERT_OK_AND_ASSIGN(auto after, src.ErasesSince(kTable, 0, 0));
  EXPECT_TRUE(after.empty());
  // Erases outside a migration are not journaled.
  ASSERT_OK(src.Put(kTable, 0, "b", "1").status());
  ASSERT_OK(src.Erase(kTable, 0, "b"));
  ASSERT_OK_AND_ASSIGN(auto still, src.ErasesSince(kTable, 0, 0));
  EXPECT_TRUE(still.empty());
}

// ---------------------------------------------------------------------------
// Routing: freeze and cut-over
// ---------------------------------------------------------------------------

TEST(MigrationRoutingTest, FrozenPartitionBouncesWritesServesReads) {
  store::ClusterOptions options;
  options.num_storage_nodes = 2;
  store::Cluster cluster(options);
  ASSERT_OK_AND_ASSIGN(store::TableId table, cluster.CreateTable("t"));
  ASSERT_OK(cluster.Put(table, "key", "v0").status());
  ASSERT_OK_AND_ASSIGN(uint32_t partition,
                       cluster.partition_map().PartitionFor(table, "key"));

  ASSERT_OK(cluster.partition_map().FreezeWrites(table, partition));
  EXPECT_TRUE(cluster.Put(table, "key", "v1").status().IsUnavailable());
  EXPECT_TRUE(cluster.Erase(table, "key").IsUnavailable());
  ASSERT_OK_AND_ASSIGN(auto cell, cluster.Get(table, "key"));
  EXPECT_EQ(cell.value, "v0");  // reads pass: the data is static

  ASSERT_OK(cluster.partition_map().UnfreezeWrites(table, partition));
  ASSERT_OK(cluster.Put(table, "key", "v1").status());
}

TEST(MigrationRoutingTest, MigrateMovesMasterAndAllData) {
  store::ClusterOptions options;
  options.num_storage_nodes = 3;
  store::Cluster cluster(options);
  store::ManagementNode management(&cluster);
  ASSERT_OK_AND_ASSIGN(store::TableId table, cluster.CreateTable("t"));
  for (int i = 0; i < 60; ++i) {
    const std::string key = "key" + std::to_string(i);
    ASSERT_OK(cluster.Put(table, key, "v" + std::to_string(i)).status());
  }
  ASSERT_OK_AND_ASSIGN(uint32_t partition,
                       cluster.partition_map().PartitionFor(table, "key0"));
  ASSERT_OK_AND_ASSIGN(store::PartitionPlacement before,
                       cluster.partition_map().PlacementOf(table, partition));
  const uint32_t dest = (before.master + 1) % cluster.num_nodes();

  // Migrating onto the current master is rejected.
  EXPECT_FALSE(management.MigratePartition(table, partition, before.master)
                   .ok());

  ASSERT_OK(management.MigratePartition(table, partition, dest));
  ASSERT_OK_AND_ASSIGN(store::PartitionPlacement after,
                       cluster.partition_map().PlacementOf(table, partition));
  EXPECT_EQ(after.master, dest);
  EXPECT_FALSE(after.write_frozen);

  // Every key still reads through the cluster, and writes land on the
  // destination (the sealed source would bounce them).
  for (int i = 0; i < 60; ++i) {
    const std::string key = "key" + std::to_string(i);
    ASSERT_OK_AND_ASSIGN(auto cell, cluster.Get(table, key));
    EXPECT_EQ(cell.value, "v" + std::to_string(i)) << key;
  }
  ASSERT_OK(cluster.Put(table, "key0", "post-migration").status());
  ASSERT_OK_AND_ASSIGN(auto cell, cluster.Get(table, "key0"));
  EXPECT_EQ(cell.value, "post-migration");

  store::MigrationStats stats = management.migration_stats();
  EXPECT_EQ(stats.started, 1u);
  EXPECT_EQ(stats.completed, 1u);
  EXPECT_GT(stats.cells_copied, 0u);
  EXPECT_GE(stats.delta_rounds, 1u);  // at least the sealed final round
}

// ---------------------------------------------------------------------------
// Determinism contract: migrate under TPC-C, bit-identical final state
// ---------------------------------------------------------------------------

std::string ValueToString(const schema::Value& value) {
  std::ostringstream out;
  out << std::setprecision(17);
  if (const int64_t* i = std::get_if<int64_t>(&value)) {
    out << 'i' << *i;
  } else if (const double* d = std::get_if<double>(&value)) {
    out << 'd' << *d;
  } else if (const std::string* s = std::get_if<std::string>(&value)) {
    out << 's' << *s;
  } else {
    out << "null";
  }
  return out.str();
}

/// Digest of every visible tuple of `table`, restricted to `cols` —
/// timestamp columns are excluded by the callers because the two runs
/// advance virtual time differently.
void DigestTable(Transaction* txn, tx::TableHandle* table,
                 const std::vector<uint32_t>& cols, std::ostringstream* out) {
  const std::string hi(16, '\xFF');
  auto rows = txn->ScanIndexEncoded(table, -1, "", hi, 0);
  ASSERT_TRUE(rows.ok()) << rows.status().ToString();
  *out << "#" << rows->size() << "\n";
  for (const auto& [rid, tuple] : *rows) {
    for (uint32_t col : cols) *out << ValueToString(tuple.at(col)) << "|";
    *out << "\n";
  }
}

void RunTpccWithOptionalMigration(bool migrate, std::string* digest) {
  db::TellDbOptions options;
  options.network = sim::NetworkModel::Instant();
  db::TellDb db(options);
  ASSERT_OK(tpcc::CreateTpccTables(&db));
  tpcc::TpccScale scale;
  scale.warehouses = 2;
  scale.districts_per_warehouse = 2;
  scale.customers_per_district = 10;
  scale.items = 40;
  scale.initial_orders_per_district = 8;
  ASSERT_OK(tpcc::LoadTpcc(&db, scale));
  auto session = db.OpenSession(0, 0);
  auto tables = tpcc::OpenTpccTables(&db, 0);
  ASSERT_TRUE(tables.ok()) << tables.status().ToString();
  tpcc::TpccExecutor executor(session.get(), *tables);
  tpcc::InputGenerator generator(scale, tpcc::Mix::kWriteIntensive,
                                 /*seed=*/9090, /*home_warehouse=*/1);

  constexpr int kInputs = 120;
  for (int i = 0; i < kInputs; ++i) {
    if (migrate && i == kInputs / 2) {
      // Move a hot partition (the stock table is written by every NewOrder)
      // mid-run. The migration is synchronous; the workload resumes against
      // the destination.
      const store::TableId stock = tables->stock->meta->data_table;
      ASSERT_OK_AND_ASSIGN(
          store::PartitionPlacement placement,
          db.cluster()->partition_map().PlacementOf(stock, 0));
      const uint32_t dest =
          (placement.master + 1) % db.cluster()->num_nodes();
      ASSERT_OK(db.management()->MigratePartition(stock, 0, dest));
    }
    tpcc::TxnInput input = generator.Next();
    auto outcome = executor.Execute(input);
    ASSERT_TRUE(outcome.ok()) << outcome.status().ToString();
  }
  if (migrate) {
    store::MigrationStats stats = db.management()->migration_stats();
    EXPECT_EQ(stats.completed, 1u);
  }

  auto reader = db.OpenSession(0, 1);
  Transaction txn(reader.get());
  ASSERT_OK(txn.Begin());
  std::ostringstream out;
  namespace col = tpcc::col;
  DigestTable(&txn, tables->warehouse, {0, col::kWYtd}, &out);
  DigestTable(&txn, tables->district, {0, 1, col::kDYtd, col::kDNextOId},
              &out);
  DigestTable(&txn, tables->customer,
              {0, 1, 2, col::kCBalance, col::kCYtdPayment, col::kCPaymentCnt,
               col::kCDeliveryCnt, col::kCData},
              &out);
  DigestTable(&txn, tables->new_order, {0, 1, 2}, &out);
  DigestTable(&txn, tables->orders,
              {0, 1, 2, col::kOCId, col::kOCarrierId, col::kOOlCnt,
               col::kOAllLocal},
              &out);
  DigestTable(&txn, tables->order_line,
              {0, 1, 2, 3, col::kOlIId, col::kOlSupplyWId, col::kOlQuantity,
               col::kOlAmount, col::kOlDistInfo},
              &out);
  DigestTable(&txn, tables->stock,
              {0, 1, col::kSQuantity, col::kSYtd, col::kSOrderCnt,
               col::kSRemoteCnt},
              &out);
  ASSERT_OK(txn.Commit());
  *digest = out.str();
}

TEST(MigrationTpccTest, MidRunMigrationKeepsFinalStateBitIdentical) {
  std::string baseline;
  std::string migrated;
  RunTpccWithOptionalMigration(false, &baseline);
  RunTpccWithOptionalMigration(true, &migrated);
  ASSERT_FALSE(baseline.empty());
  EXPECT_EQ(migrated, baseline)
      << "a live migration must be invisible to transaction semantics";
}

// ---------------------------------------------------------------------------
// Real-thread races (tsan): migrate while writers hammer the partition
// ---------------------------------------------------------------------------

TEST(MigrationConcurrencyTest, AtomicIncrementsExactAcrossCutOver) {
  store::ClusterOptions options;
  options.num_storage_nodes = 3;
  store::Cluster cluster(options);
  store::ManagementNode management(&cluster);
  ASSERT_OK_AND_ASSIGN(store::TableId table, cluster.CreateTable("t"));
  ASSERT_OK(cluster.AtomicIncrement(table, "ctr", 0).status());
  ASSERT_OK_AND_ASSIGN(uint32_t partition,
                       cluster.partition_map().PartitionFor(table, "ctr"));
  ASSERT_OK_AND_ASSIGN(store::PartitionPlacement placement,
                       cluster.partition_map().PlacementOf(table, partition));
  const uint32_t dest = (placement.master + 1) % cluster.num_nodes();

  constexpr int kThreads = 4;
  constexpr int kIncrementsPerThread = 400;
  constexpr int kKeysPerThread = 50;
  std::atomic<bool> start{false};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      while (!start.load(std::memory_order_acquire)) std::this_thread::yield();
      // Writes bounce with Unavailable during the freeze window; callers
      // retry into the new route, exactly like store::RetryPolicy would.
      for (int i = 0; i < kIncrementsPerThread; ++i) {
        while (!cluster.AtomicIncrement(table, "ctr", 1).ok()) {
          std::this_thread::yield();
        }
      }
      for (int i = 0; i < kKeysPerThread; ++i) {
        const std::string key =
            "w" + std::to_string(t) + "-" + std::to_string(i);
        while (!cluster.Put(table, key, key).ok()) {
          std::this_thread::yield();
        }
      }
    });
  }
  start.store(true, std::memory_order_release);
  ASSERT_OK(management.MigratePartition(table, partition, dest));
  for (std::thread& thread : threads) thread.join();

  // Exactness: every acknowledged increment counted once — none lost at the
  // cut-over, none applied twice by delta replay.
  ASSERT_OK_AND_ASSIGN(auto cell, cluster.Get(table, "ctr"));
  ASSERT_OK_AND_ASSIGN(int64_t final_value,
                       cluster.AtomicIncrement(table, "ctr", 0));
  (void)cell;
  EXPECT_EQ(final_value,
            int64_t{kThreads} * kIncrementsPerThread);

  // Every acknowledged put is readable, wherever its partition lives now.
  for (int t = 0; t < kThreads; ++t) {
    for (int i = 0; i < kKeysPerThread; ++i) {
      const std::string key = "w" + std::to_string(t) + "-" + std::to_string(i);
      ASSERT_OK_AND_ASSIGN(auto got, cluster.Get(table, key));
      EXPECT_EQ(got.value, key);
    }
  }
  ASSERT_OK_AND_ASSIGN(store::PartitionPlacement after,
                       cluster.partition_map().PlacementOf(table, partition));
  EXPECT_EQ(after.master, dest);
  EXPECT_EQ(management.migration_stats().completed, 1u);
}

}  // namespace
}  // namespace tell
