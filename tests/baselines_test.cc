#include <gtest/gtest.h>

#include <thread>

#include "baselines/central_validation_db.h"
#include "baselines/partitioned_serial_db.h"
#include "baselines/two_pc_partitioned_db.h"
#include "baselines/virtual_queue.h"
#include "tests/test_util.h"

namespace tell::baselines {
namespace {

tpcc::TpccScale SmallScale() {
  tpcc::TpccScale scale;
  scale.warehouses = 4;
  scale.districts_per_warehouse = 4;
  scale.customers_per_district = 20;
  scale.items = 100;
  scale.initial_orders_per_district = 10;
  return scale;
}

// ---------------------------------------------------------------------------
// VirtualQueue

TEST(VirtualQueueTest, NoWaitUnderLowLoad) {
  VirtualQueue queue;
  // Arrivals far apart in virtual time never wait.
  EXPECT_EQ(queue.Enqueue(0, 100), 100u);
  EXPECT_EQ(queue.Enqueue(1000, 100), 1100u);
  EXPECT_EQ(queue.Enqueue(5000, 100), 5100u);
}

TEST(VirtualQueueTest, SaturationConvergesToCapacity) {
  VirtualQueue queue;
  // All arrivals at t=0: the k-th finishes at k*service.
  for (uint64_t k = 1; k <= 10; ++k) {
    EXPECT_EQ(queue.Enqueue(0, 50), k * 50);
  }
}

TEST(VirtualQueueTest, LaggardDoesNotPayPhantomWait) {
  VirtualQueue queue;
  // A worker far ahead reserves...
  (void)queue.Enqueue(1'000'000, 100);
  // ...a laggard arriving "in the past" only waits for reserved WORK (100),
  // not for the leader's wall-clock position.
  EXPECT_EQ(queue.Enqueue(10, 100), 200u);
}

TEST(VirtualQueueTest, EnqueueAllBlocksEveryQueue) {
  VirtualQueue a, b;
  (void)a.Enqueue(0, 300);  // backlog on a
  std::vector<VirtualQueue*> queues{&a, &b};
  uint64_t finish = EnqueueAll(queues, 0, 100);
  EXPECT_EQ(finish, 400u);  // starts after a's backlog
  // Both queues now carry the reservation.
  EXPECT_GE(a.backlog_until(), 400u);
  EXPECT_GE(b.backlog_until(), 100u);
}

TEST(VirtualQueueTest, ThreadSafeTotalWork) {
  VirtualQueue queue;
  constexpr int kThreads = 8;
  constexpr int kOps = 1000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < kOps; ++i) (void)queue.Enqueue(0, 7);
    });
  }
  for (auto& thread : threads) thread.join();
  EXPECT_EQ(queue.backlog_until(), static_cast<uint64_t>(kThreads) * kOps * 7);
}

// ---------------------------------------------------------------------------
// TpccData

TEST(TpccDataTest, NewOrderAdvancesDistrictAndStock) {
  TpccData data(SmallScale());
  tpcc::TxnInput input;
  input.type = tpcc::TxnType::kNewOrder;
  input.new_order.warehouse = 1;
  input.new_order.district = 1;
  input.new_order.customer = 1;
  input.new_order.lines = {{1, 1, 5}};
  int64_t next_before = data.warehouse(1)->districts[0].next_o_id;
  int64_t qty_before = data.warehouse(1)->stock[0].quantity;
  ASSERT_OK_AND_ASSIGN(ExecStats stats, data.Apply(input));
  EXPECT_FALSE(stats.user_abort);
  EXPECT_EQ(stats.warehouses, std::vector<int64_t>{1});
  EXPECT_EQ(data.warehouse(1)->districts[0].next_o_id, next_before + 1);
  EXPECT_NE(data.warehouse(1)->stock[0].quantity, qty_before);
}

TEST(TpccDataTest, RemoteNewOrderTouchesBothWarehouses) {
  TpccData data(SmallScale());
  tpcc::TxnInput input;
  input.type = tpcc::TxnType::kNewOrder;
  input.new_order.warehouse = 1;
  input.new_order.district = 1;
  input.new_order.customer = 1;
  input.new_order.lines = {{1, 2, 5}};  // supplied from warehouse 2
  input.new_order.remote = true;
  ASSERT_OK_AND_ASSIGN(ExecStats stats, data.Apply(input));
  EXPECT_EQ(stats.warehouses.size(), 2u);
}

TEST(TpccDataTest, RollbackNewOrderChangesNothing) {
  TpccData data(SmallScale());
  tpcc::TxnInput input;
  input.type = tpcc::TxnType::kNewOrder;
  input.new_order.warehouse = 1;
  input.new_order.district = 1;
  input.new_order.customer = 1;
  input.new_order.lines = {{101, 1, 1}};  // invalid item
  input.new_order.rollback = true;
  int64_t next_before = data.warehouse(1)->districts[0].next_o_id;
  ASSERT_OK_AND_ASSIGN(ExecStats stats, data.Apply(input));
  EXPECT_TRUE(stats.user_abort);
  EXPECT_EQ(data.warehouse(1)->districts[0].next_o_id, next_before);
}

TEST(TpccDataTest, DeliveryDrainsNewOrders) {
  TpccData data(SmallScale());
  size_t pending_before = data.warehouse(1)->new_orders[0].size();
  ASSERT_GT(pending_before, 0u);
  tpcc::TxnInput input;
  input.type = tpcc::TxnType::kDelivery;
  input.delivery = {1, 5};
  ASSERT_OK_AND_ASSIGN(ExecStats stats, data.Apply(input));
  (void)stats;
  EXPECT_EQ(data.warehouse(1)->new_orders[0].size(), pending_before - 1);
}

TEST(TpccDataTest, ConcurrentApplyIsSafe) {
  TpccData data(SmallScale());
  constexpr int kThreads = 4;
  constexpr int kTxns = 200;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      tpcc::InputGenerator generator(SmallScale(),
                                     tpcc::Mix::kWriteIntensive,
                                     static_cast<uint64_t>(t) + 1,
                                     t % 4 + 1);
      for (int i = 0; i < kTxns; ++i) {
        ASSERT_TRUE(data.Apply(generator.Next()).ok());
      }
    });
  }
  for (auto& thread : threads) thread.join();
  // Districts stayed internally consistent: next_o_id == orders + 1.
  for (int64_t w = 1; w <= 4; ++w) {
    WarehousePartition* part = data.warehouse(w);
    for (size_t d = 0; d < part->districts.size(); ++d) {
      int64_t max_order =
          part->orders[d].empty() ? 0 : part->orders[d].rbegin()->first;
      EXPECT_EQ(part->districts[d].next_o_id, max_order + 1);
    }
  }
}

// ---------------------------------------------------------------------------
// Engines through the shared driver

template <typename Engine, typename Options>
tpcc::DriverResult RunEngine(Options options, tpcc::Mix mix,
                             uint32_t workers) {
  Engine engine(SmallScale(), options);
  tpcc::DriverOptions driver;
  driver.scale = SmallScale();
  driver.mix = mix;
  driver.num_workers = workers;
  driver.duration_virtual_ms = 100;
  auto result = tpcc::RunTpcc(&engine, driver);
  EXPECT_TRUE(result.ok()) << result.status().ToString();
  // No DriverResult{} braced temporary here: gcc 12 ICEs
  // (check_noexcept_r) building the cleanup for its nested histogram array
  // inside a template function.
  if (result.ok()) return *std::move(result);
  tpcc::DriverResult empty;
  return empty;
}

TEST(PartitionedSerialDbTest, RunsTheWorkload) {
  auto result = RunEngine<PartitionedSerialDb>(PartitionedSerialOptions{},
                                               tpcc::Mix::kWriteIntensive, 4);
  EXPECT_GT(result.committed, 0u);
  EXPECT_GT(result.tpmc, 0.0);
}

TEST(PartitionedSerialDbTest, ShardableFasterThanStandard) {
  // The defining VoltDB behaviour: multi-partition transactions stall
  // every partition, so the standard mix is far slower than shardable.
  auto standard = RunEngine<PartitionedSerialDb>(
      PartitionedSerialOptions{}, tpcc::Mix::kWriteIntensive, 8);
  auto shardable = RunEngine<PartitionedSerialDb>(
      PartitionedSerialOptions{}, tpcc::Mix::kShardable, 8);
  EXPECT_GT(shardable.tps, standard.tps * 2);
}

TEST(PartitionedSerialDbTest, ReplicationSlowsItDown) {
  PartitionedSerialOptions rf1;
  PartitionedSerialOptions rf3;
  rf3.replication_factor = 3;
  auto fast = RunEngine<PartitionedSerialDb>(rf1, tpcc::Mix::kShardable, 4);
  auto slow = RunEngine<PartitionedSerialDb>(rf3, tpcc::Mix::kShardable, 4);
  EXPECT_GT(fast.tps, slow.tps);
}

TEST(TwoPcPartitionedDbTest, RunsTheWorkload) {
  auto result = RunEngine<TwoPcPartitionedDb>(TwoPcOptions{},
                                              tpcc::Mix::kWriteIntensive, 4);
  EXPECT_GT(result.committed, 0u);
}

TEST(TwoPcPartitionedDbTest, StandardMixTolerable) {
  // Unlike VoltDB, distributed transactions only slow down their own
  // participants — the standard mix costs far less than 2x.
  auto standard = RunEngine<TwoPcPartitionedDb>(
      TwoPcOptions{}, tpcc::Mix::kWriteIntensive, 8);
  auto shardable =
      RunEngine<TwoPcPartitionedDb>(TwoPcOptions{}, tpcc::Mix::kShardable, 8);
  EXPECT_LT(shardable.tps, standard.tps * 2);
}

TEST(CentralValidationDbTest, RunsTheWorkload) {
  auto result = RunEngine<CentralValidationDb>(
      CentralValidationOptions{}, tpcc::Mix::kWriteIntensive, 4);
  EXPECT_GT(result.committed, 0u);
}

TEST(CentralValidationDbTest, ResolverCapsScaling) {
  // Doubling workers past the resolver's capacity must not double
  // throughput.
  CentralValidationOptions options;
  options.per_read_ns = 50'000;        // fast client...
  options.resolver_base_ns = 2'000'000;  // ...but a slow central resolver
  auto few = RunEngine<CentralValidationDb>(options,
                                            tpcc::Mix::kWriteIntensive, 4);
  auto many = RunEngine<CentralValidationDb>(options,
                                             tpcc::Mix::kWriteIntensive, 16);
  EXPECT_LT(many.tps, few.tps * 3);
}

}  // namespace
}  // namespace tell::baselines
