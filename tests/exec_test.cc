// Tests for the thread-per-core executor runtime (src/exec, docs/RUNTIME.md):
// scheduler correctness (FIFO determinism at one thread, work stealing, no
// lost wakeups on park/unpark), future continuation ordering, the
// executor_threads=1 determinism contract against the legacy thread-per-
// worker driver, and a seeded chaos sweep driving TPC-C through the
// executor with the fault injector armed. Labelled `tsan` — the stealing
// and wakeup tests are exactly the races ThreadSanitizer should vet.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <memory>
#include <set>
#include <thread>
#include <vector>

#include "common/future.h"
#include "exec/runtime.h"
#include "sim/fault_injector.h"
#include "tests/test_util.h"
#include "workload/tpcc/tpcc_driver.h"
#include "workload/tpcc/tpcc_loader.h"

namespace tell::exec {
namespace {

// ---------------------------------------------------------------------------
// Runtime core
// ---------------------------------------------------------------------------

TEST(RuntimeTest, SingleThreadRunsTasksInSubmissionOrder) {
  Runtime runtime(RuntimeOptions{.threads = 1, .pin_cores = false});
  std::vector<int> order;
  for (int i = 0; i < 8; ++i) {
    runtime.Submit([&order, i] { order.push_back(i); });
  }
  runtime.Run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4, 5, 6, 7}));
  const RuntimeStats& stats = runtime.stats();
  EXPECT_EQ(stats.threads, 1u);
  EXPECT_EQ(stats.Total(&RuntimeStats::PerCore::tasks_completed), 8u);
  EXPECT_EQ(stats.Total(&RuntimeStats::PerCore::steals), 0u);
  EXPECT_GE(stats.QueuePeak(), 8u);
}

TEST(RuntimeTest, YieldRoundRobinsOnOneThread) {
  // Two yielding tasks on one executor thread must interleave exactly:
  // yield sends the running task to the back of its own queue, and the
  // single owner pops from the front — the determinism contract's
  // scheduling order (docs/RUNTIME.md).
  Runtime runtime(RuntimeOptions{.threads = 1, .pin_cores = false});
  std::vector<char> trace;
  for (char name : {'A', 'B'}) {
    runtime.Submit([&trace, name] {
      for (int i = 0; i < 3; ++i) {
        trace.push_back(name);
        Runtime::Yield();
      }
    });
  }
  runtime.Run();
  EXPECT_EQ(trace, (std::vector<char>{'A', 'B', 'A', 'B', 'A', 'B'}));
  EXPECT_EQ(runtime.stats().Total(&RuntimeStats::PerCore::yields), 6u);
}

TEST(RuntimeTest, IdleThreadsStealQueuedTasks) {
  // Round-robin Submit puts task i on queue i % threads, so with 4 threads
  // every 4th task lands on queue 0. Make exactly those tasks slow and
  // yield-rich and the rest trivial: cores 1..3 drain their own queues
  // immediately and must steal core 0's backlog to keep busy. All tasks
  // complete either way; at least one steal must be observed.
  constexpr uint32_t kThreads = 4;
  constexpr int kTasks = 32;
  Runtime runtime(RuntimeOptions{.threads = kThreads, .pin_cores = false});
  std::atomic<int> completed{0};
  for (int i = 0; i < kTasks; ++i) {
    const bool heavy = (i % kThreads == 0);
    runtime.Submit([&completed, heavy] {
      if (heavy) {
        for (int y = 0; y < 8; ++y) {
          std::this_thread::sleep_for(std::chrono::milliseconds(1));
          Runtime::Yield();
        }
      }
      completed.fetch_add(1, std::memory_order_relaxed);
    });
  }
  runtime.Run();
  EXPECT_EQ(completed.load(), kTasks);
  const RuntimeStats& stats = runtime.stats();
  EXPECT_EQ(stats.Total(&RuntimeStats::PerCore::tasks_completed),
            static_cast<uint64_t>(kTasks));
  EXPECT_GT(stats.Total(&RuntimeStats::PerCore::steals), 0u);
}

TEST(RuntimeTest, PinnedTasksNeverMigrateOffTheirQueue) {
  // Pinned submission (home-partition affinity for the fast path): every
  // task names queue 0, yields a few times mid-run, and the other three
  // cores — idle the whole time — must NOT steal any of them. Yield-requeue
  // goes back to the home queue, so pinning holds across suspensions.
  constexpr uint32_t kThreads = 4;
  constexpr int kTasks = 24;
  Runtime runtime(RuntimeOptions{.threads = kThreads, .pin_cores = false});
  std::atomic<int> completed{0};
  for (int i = 0; i < kTasks; ++i) {
    runtime.Submit(
        [&completed] {
          for (int y = 0; y < 3; ++y) Runtime::Yield();
          completed.fetch_add(1, std::memory_order_relaxed);
        },
        /*queue_hint=*/kThreads * 7);  // hint % threads == 0
  }
  runtime.Run();
  EXPECT_EQ(completed.load(), kTasks);
  const RuntimeStats& stats = runtime.stats();
  EXPECT_EQ(stats.Total(&RuntimeStats::PerCore::steals), 0u);
  EXPECT_EQ(stats.cores[0].tasks_completed, static_cast<uint64_t>(kTasks));
  for (uint32_t core = 1; core < kThreads; ++core) {
    EXPECT_EQ(stats.cores[core].tasks_completed, 0u) << "core " << core;
  }
}

TEST(RuntimeTest, PinnedAndUnpinnedTasksCoexist) {
  // A mixed load: pinned tasks on queue 1 plus round-robin fillers. Thieves
  // must skip the pinned backlog but may steal the fillers; everything
  // completes and the pinned work all runs on core 1.
  constexpr uint32_t kThreads = 3;
  Runtime runtime(RuntimeOptions{.threads = kThreads, .pin_cores = false});
  std::atomic<int> pinned_done{0};
  std::atomic<int> free_done{0};
  for (int i = 0; i < 12; ++i) {
    runtime.Submit(
        [&pinned_done] {
          Runtime::Yield();
          pinned_done.fetch_add(1, std::memory_order_relaxed);
        },
        /*queue_hint=*/1);
    runtime.Submit([&free_done] {
      free_done.fetch_add(1, std::memory_order_relaxed);
    });
  }
  runtime.Run();
  EXPECT_EQ(pinned_done.load(), 12);
  EXPECT_EQ(free_done.load(), 12);
}

TEST(RuntimeTest, NoLostWakeupsOnParkUnpark) {
  // One producer task trickles follow-on tasks out with real delays while
  // the other executor threads go idle and park. Every submission must wake
  // a sleeper (or find one already running); if a wakeup were lost the
  // runtime would either deadlock (task queued, everyone asleep) or finish
  // with tasks unrun. Completing with the full count is the proof.
  constexpr int kFollowOns = 50;
  Runtime runtime(RuntimeOptions{.threads = 3, .pin_cores = false});
  std::atomic<int> completed{0};
  runtime.Submit([&runtime, &completed] {
    for (int i = 0; i < kFollowOns; ++i) {
      std::this_thread::sleep_for(std::chrono::microseconds(200));
      runtime.Submit(
          [&completed] { completed.fetch_add(1, std::memory_order_relaxed); });
    }
    completed.fetch_add(1, std::memory_order_relaxed);
  });
  runtime.Run();
  EXPECT_EQ(completed.load(), kFollowOns + 1);
  const RuntimeStats& stats = runtime.stats();
  EXPECT_EQ(stats.Total(&RuntimeStats::PerCore::tasks_completed),
            static_cast<uint64_t>(kFollowOns + 1));
  // With 3 threads and a dripping producer, the two consumers must have
  // parked and been woken at least once each.
  EXPECT_GT(stats.Total(&RuntimeStats::PerCore::parks), 0u);
  EXPECT_GT(stats.Total(&RuntimeStats::PerCore::unparks), 0u);
}

TEST(RuntimeTest, InTaskPinnedSubmitWakesTheHomeCore) {
  // Regression: a pinned task's enqueue used notify_one, which may wake a
  // core that skips pinned work in its steal loop — that core finds
  // nothing, re-parks, and the notification is consumed while the task's
  // home core stays parked, stranding the task until an unrelated enqueue.
  // Submitting pinned tasks from INSIDE a task after the other cores have
  // drained and parked hits exactly that window; completing the full count
  // is the proof the home core was woken.
  constexpr int kThreads = 4;
  constexpr int kRounds = 25;
  Runtime runtime(RuntimeOptions{.threads = kThreads, .pin_cores = false});
  std::atomic<int> completed{0};
  runtime.Submit([&runtime, &completed] {
    for (int round = 0; round < kRounds; ++round) {
      // Give the other cores time to go idle and park.
      std::this_thread::sleep_for(std::chrono::microseconds(300));
      for (int core = 0; core < kThreads; ++core) {
        runtime.Submit(
            [&completed] {
              completed.fetch_add(1, std::memory_order_relaxed);
            },
            /*queue_hint=*/static_cast<uint64_t>(core));
      }
    }
    completed.fetch_add(1, std::memory_order_relaxed);
  });
  runtime.Run();
  EXPECT_EQ(completed.load(), kThreads * kRounds + 1);
}

TEST(RuntimeTest, YieldAndInTaskAreSafeOutsideTheExecutor) {
  // Shared driver code calls Runtime::Yield() unconditionally; outside a
  // task it must be a no-op, not a crash (that is what keeps the legacy
  // thread-per-worker path byte-identical).
  EXPECT_FALSE(Runtime::InTask());
  Runtime::Yield();  // must not crash or block

  Runtime runtime(RuntimeOptions{.threads = 1, .pin_cores = false});
  bool in_task = false;
  runtime.Submit([&in_task] { in_task = Runtime::InTask(); });
  runtime.Run();
  EXPECT_TRUE(in_task);
  EXPECT_FALSE(Runtime::InTask());
}

TEST(RuntimeTest, ExportStatsSetsEveryExecGauge) {
  Runtime runtime(RuntimeOptions{.threads = 2, .pin_cores = false});
  for (int i = 0; i < 4; ++i) {
    runtime.Submit([] { Runtime::Yield(); });
  }
  runtime.Run();

  obs::MetricsRegistry registry;
  ExportStats(runtime.stats(), &registry);
  obs::MetricsSnapshot snapshot = registry.Snapshot();
  for (const char* name :
       {"exec.threads", "exec.tasks", "exec.yields", "exec.steals",
        "exec.parks", "exec.unparks", "exec.run_queue_peak", "exec.busy_ns",
        "exec.wall_ns"}) {
    EXPECT_TRUE(snapshot.Scalar(name).has_value()) << name;
  }
  EXPECT_EQ(snapshot.Scalar("exec.threads"), 2u);
  EXPECT_EQ(snapshot.Scalar("exec.tasks"), 4u);
  EXPECT_EQ(snapshot.Scalar("exec.yields"), 4u);

  auto rows = PerCoreRows(runtime.stats());
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_EQ(rows[0].first, "exec0");
  EXPECT_EQ(rows[1].first, "exec1");
  uint64_t tasks = 0;
  for (const auto& row : rows) {
    for (const auto& [key, value] : row.second) {
      if (key == "tasks_completed") tasks += value;
    }
  }
  EXPECT_EQ(tasks, 4u);
}

// ---------------------------------------------------------------------------
// Future continuations
// ---------------------------------------------------------------------------

TEST(FutureContinuationTest, ThenOnReadyFutureFiresInlineInOrder) {
  Promise<uint64_t> promise;
  Future<uint64_t> future = promise.future();
  promise.Set(Result<uint64_t>(uint64_t{41}));

  std::vector<int> order;
  future.Then([&order](const Result<uint64_t>& r) {
    ASSERT_OK(r.status());
    EXPECT_EQ(*r, 41u);
    order.push_back(1);
  });
  // Fired inline, before the next statement runs.
  ASSERT_EQ(order, (std::vector<int>{1}));
  future.Then([&order](const Result<uint64_t>&) { order.push_back(2); });
  EXPECT_EQ(order, (std::vector<int>{1, 2}));
  ASSERT_OK_AND_ASSIGN(uint64_t value, future.Await());
  EXPECT_EQ(value, 41u);
}

TEST(FutureContinuationTest, ResolveFiresRegistrationOrder) {
  Promise<uint64_t> promise;
  Future<uint64_t> future = promise.future();

  std::vector<int> order;
  future.Then([&order](const Result<uint64_t>&) { order.push_back(1); });
  future.Then([&order, &future](const Result<uint64_t>&) {
    order.push_back(2);
    // A continuation registering a continuation: the state is resolved by
    // now, so the nested one runs inline — overall order stays 1, 2, 3.
    future.Then([&order](const Result<uint64_t>&) { order.push_back(3); });
  });
  EXPECT_TRUE(order.empty());  // nothing fires before resolution
  promise.Set(Result<uint64_t>(uint64_t{7}));
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

// ---------------------------------------------------------------------------
// Determinism contract vs the legacy driver (docs/RUNTIME.md)
// ---------------------------------------------------------------------------

tpcc::TpccScale SmallScale() {
  tpcc::TpccScale scale;
  scale.warehouses = 4;
  scale.districts_per_warehouse = 3;
  scale.customers_per_district = 12;
  scale.items = 60;
  scale.initial_orders_per_district = 9;
  return scale;
}

std::unique_ptr<db::TellDb> FreshDb(sim::FaultInjector* injector = nullptr) {
  db::TellDbOptions options;
  options.num_processing_nodes = 2;
  options.num_storage_nodes = 3;
  options.network = sim::NetworkModel::Instant();
  if (injector != nullptr) {
    options.fault_injector = injector;
    options.replication_factor = 2;
    options.retry.max_attempts = 8;  // absorb the bounded drop rules
  }
  return std::make_unique<db::TellDb>(options);
}

Result<tpcc::DriverResult> RunWorkload(db::TellDb* db, uint32_t num_workers,
                                       uint32_t executor_threads,
                                       uint64_t virtual_ms = 20) {
  Status st = tpcc::CreateTpccTables(db);
  if (st.ok()) st = tpcc::LoadTpcc(db, SmallScale());
  if (!st.ok()) return st;
  tpcc::TellBackend backend(db);
  tpcc::DriverOptions options;
  options.scale = SmallScale();
  options.mix = tpcc::Mix::kWriteIntensive;
  options.num_workers = num_workers;
  options.duration_virtual_ms = virtual_ms;
  options.executor_threads = executor_threads;
  options.pin_cores = false;
  return tpcc::RunTpcc(&backend, options);
}

// Every virtual-time outcome must match exactly. wall_seconds / wall_tps and
// exec_stats are the only host-dependent fields, so they are the only ones
// excluded.
void ExpectSameOutcome(const tpcc::DriverResult& a,
                       const tpcc::DriverResult& b) {
  EXPECT_EQ(a.committed, b.committed);
  EXPECT_EQ(a.aborted, b.aborted);
  EXPECT_EQ(a.committed_new_order, b.committed_new_order);
  EXPECT_EQ(a.tpmc, b.tpmc);
  EXPECT_EQ(a.tps, b.tps);
  EXPECT_EQ(a.abort_rate, b.abort_rate);
  EXPECT_EQ(a.mean_response_ms, b.mean_response_ms);
  EXPECT_EQ(a.std_response_ms, b.std_response_ms);
  EXPECT_EQ(a.p50_response_ms, b.p50_response_ms);
  EXPECT_EQ(a.p95_response_ms, b.p95_response_ms);
  EXPECT_EQ(a.p99_response_ms, b.p99_response_ms);
  EXPECT_EQ(a.p999_response_ms, b.p999_response_ms);
  EXPECT_EQ(a.buffer_hit_rate, b.buffer_hit_rate);
  EXPECT_EQ(a.merged.storage_requests, b.merged.storage_requests);
  EXPECT_EQ(a.merged.storage_ops, b.merged.storage_ops);
  EXPECT_EQ(a.merged.bytes_sent, b.merged.bytes_sent);
  EXPECT_EQ(a.merged.bytes_received, b.merged.bytes_received);
  EXPECT_EQ(a.merged.llsc_failures, b.merged.llsc_failures);
  EXPECT_EQ(a.merged.log_appends, b.merged.log_appends);
  EXPECT_EQ(a.merged.index_lookups, b.merged.index_lookups);
  EXPECT_EQ(a.merged.buffer_hits, b.merged.buffer_hits);
  EXPECT_EQ(a.merged.buffer_misses, b.merged.buffer_misses);
  EXPECT_EQ(a.merged.response_time.count(), b.merged.response_time.count());
}

TEST(ExecDeterminismTest, OneWorkerExecutorMatchesLegacyExactly) {
  // A single worker has no cross-worker interleaving at all, so the
  // executor must reproduce the legacy run outcome for outcome.
  auto legacy_db = FreshDb();
  ASSERT_OK_AND_ASSIGN(tpcc::DriverResult legacy,
                       RunWorkload(legacy_db.get(), 1, 0));
  auto exec_db = FreshDb();
  ASSERT_OK_AND_ASSIGN(tpcc::DriverResult executor,
                       RunWorkload(exec_db.get(), 1, 1));
  ASSERT_GT(legacy.committed, 0u);
  ExpectSameOutcome(legacy, executor);
  EXPECT_EQ(executor.exec_stats.threads, 1u);
  EXPECT_EQ(executor.exec_stats.Total(&RuntimeStats::PerCore::steals), 0u);
}

TEST(ExecDeterminismTest, SingleExecutorThreadIsRunToRunIdentical) {
  // Multi-worker under executor_threads=1: the cooperative FIFO schedule
  // fixes the interleaving, so two runs on fresh identical databases agree
  // on every virtual-time number (the legacy multi-thread driver cannot
  // promise this — OS scheduling reorders conflicting workers).
  auto db1 = FreshDb();
  ASSERT_OK_AND_ASSIGN(tpcc::DriverResult first,
                       RunWorkload(db1.get(), 4, 1));
  auto db2 = FreshDb();
  ASSERT_OK_AND_ASSIGN(tpcc::DriverResult second,
                       RunWorkload(db2.get(), 4, 1));
  ASSERT_GT(first.committed, 0u);
  ExpectSameOutcome(first, second);
  // Parking actually happened: the workload pipelines storage requests and
  // begins transactions, both of which yield under the executor.
  EXPECT_GT(first.exec_stats.Total(&RuntimeStats::PerCore::yields), 0u);
  EXPECT_EQ(first.exec_stats.Total(&RuntimeStats::PerCore::yields),
            second.exec_stats.Total(&RuntimeStats::PerCore::yields));
}

// ---------------------------------------------------------------------------
// Chaos: TPC-C through the executor with the fault injector armed
// ---------------------------------------------------------------------------

class ExecChaosSuite : public ::testing::TestWithParam<uint64_t> {};

TEST_P(ExecChaosSuite, TpccSurvivesRandomizedFaultsUnderExecutor) {
  const uint64_t seed = GetParam();
  // Bounded transient faults only (no node kill): the randomized drop and
  // latency rules disarm after a bounded number of firings, so the retry
  // budget set in FreshDb absorbs them and the run must complete. Node
  // kills stay with the single-threaded chaos suite in
  // fault_injection_test.cc, where recovery is checked deterministically.
  sim::FaultInjector injector(sim::FaultPlan::Randomized(
      seed, /*num_nodes=*/3, /*allow_node_kill=*/false));
  injector.Disarm();  // table creation + load run fault-free
  auto db = FreshDb(&injector);

  Status st = tpcc::CreateTpccTables(db.get());
  ASSERT_OK(st);
  ASSERT_OK(tpcc::LoadTpcc(db.get(), SmallScale()));
  injector.Arm();

  tpcc::TellBackend backend(db.get());
  tpcc::DriverOptions options;
  options.scale = SmallScale();
  options.mix = tpcc::Mix::kWriteIntensive;
  options.num_workers = 4;
  options.duration_virtual_ms = 20;
  options.executor_threads = 2;
  options.pin_cores = false;
  ASSERT_OK_AND_ASSIGN(tpcc::DriverResult result,
                       tpcc::RunTpcc(&backend, options));
  injector.Disarm();

  EXPECT_GT(result.committed, 0u);
  EXPECT_EQ(result.exec_stats.threads, 2u);
  EXPECT_EQ(result.exec_stats.Total(&RuntimeStats::PerCore::tasks_completed),
            4u);
  EXPECT_GT(result.exec_stats.Total(&RuntimeStats::PerCore::yields), 0u);

  // The chaos was real: the injector saw traffic and fired faults, and the
  // workers' retry machinery dealt with them.
  sim::FaultStats fault_stats = injector.stats();
  EXPECT_GT(fault_stats.requests_seen, 0u);
  EXPECT_GT(fault_stats.injected, 0u) << "plan never fired for seed " << seed;
  // Dropped traffic must have been retried (some seeds draw plans whose
  // drop rules filter on ops this workload never issues — then only
  // latency spikes fire and there is nothing to retry).
  if (fault_stats.dropped_requests + fault_stats.dropped_responses > 0) {
    EXPECT_GT(result.merged.storage_retries +
                  result.merged.ambiguous_resolved, 0u);
  }
  EXPECT_EQ(result.merged.storage_retries_exhausted, 0u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, ExecChaosSuite,
                         ::testing::Values(uint64_t{0x5EED0001},
                                           uint64_t{0x5EED0002},
                                           uint64_t{0x5EED0003}));

}  // namespace
}  // namespace tell::exec
