// Replicated commit-manager tests (docs/RECOVERY.md):
//
//   1. Unit tests of the slot/replica machinery: change-log replay,
//      snapshot-bounded catch-up, deterministic elections, promotion
//      invariants (orphaned-range completion, monotone tid stream,
//      begin-token idempotency across fail-over).
//   2. The fast-path gate: multiple commit managers are a tested HARD
//      disable (MVCC-only), while replicating the single slot keeps the
//      fast path legal.
//   3. A seeded kill-the-leader chaos suite: the leader dies mid-Start,
//      mid-Finish and with an ambiguous (executed-but-unacked) begin;
//      a follower is elected, TPC-C-style traffic resumes, and no tid is
//      lost or duplicated (the snapshot base catches up to the last tid).

#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "commitmgr/commit_manager.h"
#include "commitmgr/replication.h"
#include "common/random.h"
#include "db/tell_db.h"
#include "schema/schema.h"
#include "sim/fault_injector.h"
#include "store/cluster.h"
#include "tests/test_util.h"
#include "tx/transaction.h"
#include "workload/tpcc/tpcc_driver.h"
#include "workload/tpcc/tpcc_loader.h"

namespace tell {
namespace {

using commitmgr::CommitManager;
using commitmgr::CommitManagerGroup;
using commitmgr::CommitManagerOptions;
using commitmgr::ReplicaRole;
using commitmgr::ReplicationOptions;
using schema::Tuple;
using sim::FaultInjector;
using sim::FaultOpClass;
using sim::FaultPlan;
using sim::FaultRule;
using tx::Transaction;

// ---------------------------------------------------------------------------
// Unit tests: slot/replica machinery
// ---------------------------------------------------------------------------

class ReplicatedGroupTest : public ::testing::Test {
 protected:
  ReplicatedGroupTest() {
    store::ClusterOptions options;
    options.num_storage_nodes = 2;
    cluster_ = std::make_unique<store::Cluster>(options);
  }

  std::unique_ptr<CommitManagerGroup> MakeGroup(
      uint32_t slots, uint32_t replicas, uint32_t range = 16,
      uint64_t snapshot_interval = 256) {
    CommitManagerOptions options;
    options.tid_range_size = range;
    ReplicationOptions replication;
    replication.replicas = replicas;
    replication.snapshot_interval = snapshot_interval;
    return std::make_unique<CommitManagerGroup>(cluster_.get(), slots, options,
                                                /*sync_interval_ms=*/0,
                                                replication);
  }

  std::unique_ptr<store::Cluster> cluster_;
};

TEST_F(ReplicatedGroupTest, ReplicasOffBehavesAsBefore) {
  auto group = MakeGroup(2, /*replicas=*/1);
  EXPECT_EQ(group->num_replicas(), 1u);
  ASSERT_OK_AND_ASSIGN(commitmgr::TxnBegin t, group->manager(0)->Start(0));
  ASSERT_OK(group->manager(0)->SetCommitted(t.tid));
  commitmgr::GroupReplicationStats repl = group->ReplStats();
  EXPECT_EQ(repl.log_appends, 0u);
  EXPECT_EQ(repl.elections, 0u);
}

TEST_F(ReplicatedGroupTest, FollowerCatchUpReproducesLeaderState) {
  auto group = MakeGroup(1, /*replicas=*/3);
  CommitManager* leader = group->manager(0);
  ASSERT_EQ(leader->role(), ReplicaRole::kLeader);

  std::vector<commitmgr::Tid> tids;
  for (int i = 0; i < 10; ++i) {
    ASSERT_OK_AND_ASSIGN(commitmgr::TxnBegin t, leader->Start(0));
    tids.push_back(t.tid);
  }
  for (size_t i = 0; i + 2 < tids.size(); ++i) {
    ASSERT_OK(leader->SetCommitted(tids[i]));
  }

  // Followers replay lazily at sync rounds.
  ASSERT_OK(group->SyncAll());
  const uint32_t leader_idx = group->leader_index(0);
  for (uint32_t r = 0; r < 3; ++r) {
    if (r == leader_idx) continue;
    CommitManager* follower = group->replica(0, r);
    EXPECT_EQ(follower->role(), ReplicaRole::kFollower);
    EXPECT_EQ(follower->CurrentSnapshot().base(),
              leader->CurrentSnapshot().base())
        << "replica " << r;
    EXPECT_EQ(follower->HighestAssignedTid(), leader->HighestAssignedTid());
  }

  commitmgr::GroupReplicationStats repl = group->ReplStats();
  EXPECT_GT(repl.log_appends, 0u);
  EXPECT_GT(repl.log_bytes, 0u);
  EXPECT_GT(repl.records_replayed, 0u);

  // A follower rejects requests (single-leader-per-slot invariant).
  CommitManager* follower = group->replica(0, (leader_idx + 1) % 3);
  EXPECT_TRUE(follower->Start(0).status().IsUnavailable());
}

TEST_F(ReplicatedGroupTest, ElectionIsDeterministicPerSeed) {
  auto run_election = [this]() {
    store::ClusterOptions coptions;
    coptions.num_storage_nodes = 2;
    store::Cluster cluster(coptions);
    CommitManagerOptions options;
    options.tid_range_size = 16;
    ReplicationOptions replication;
    replication.replicas = 3;
    CommitManagerGroup group(&cluster, 1, options, /*sync_interval_ms=*/0,
                             replication);
    EXPECT_OK(group.manager(0)->Start(0).status());
    group.manager(0)->Kill();
    uint64_t election_ns = 0;
    CommitManager* next = group.ManagerFor(0, &election_ns);
    EXPECT_NE(next, nullptr);
    EXPECT_GT(election_ns, 0u) << "the electing client pays the timeout";
    EXPECT_EQ(group.ReplStats().elections, 1u);
    EXPECT_EQ(group.ReplStats().term, 1u);
    return group.leader_index(0);
  };
  const uint32_t first = run_election();
  EXPECT_EQ(first, run_election()) << "same seed must elect the same leader";
}

TEST_F(ReplicatedGroupTest, PromotionCompletesOrphanedRangeAndStaysMonotone) {
  auto group = MakeGroup(1, /*replicas=*/2, /*range=*/16);
  CommitManager* old_leader = group->manager(0);
  ASSERT_OK_AND_ASSIGN(commitmgr::TxnBegin t1, old_leader->Start(0));
  EXPECT_EQ(t1.tid, 1u);  // range [1, 16] was granted
  ASSERT_OK(old_leader->SetCommitted(t1.tid));
  const commitmgr::Tid highest = old_leader->HighestAssignedTid();

  old_leader->Kill();
  uint64_t election_ns = 0;
  CommitManager* new_leader = group->ManagerFor(0, &election_ns);
  ASSERT_NE(new_leader, nullptr);
  ASSERT_NE(new_leader, old_leader);
  EXPECT_EQ(new_leader->role(), ReplicaRole::kLeader);

  // The dead leader's granted-but-unassigned remainder [2, 16] was completed
  // at promotion — it can never be assigned, so it must not pin the base.
  EXPECT_GE(new_leader->CurrentSnapshot().base(), 16u)
      << "orphaned range remainder still pins the snapshot base";

  // The new leader's first tid comes from a fresh counter range, strictly
  // above everything the dead leader ever granted (monotone stream).
  ASSERT_OK_AND_ASSIGN(commitmgr::TxnBegin t2, new_leader->Start(0));
  EXPECT_GT(t2.tid, 16u);
  EXPECT_GT(t2.tid, highest);
  ASSERT_OK(new_leader->SetCommitted(t2.tid));
  EXPECT_EQ(new_leader->CurrentSnapshot().base(), t2.tid);
}

TEST_F(ReplicatedGroupTest, BeginTokenReplayedAcrossFailoverReturnsSameTid) {
  auto group = MakeGroup(1, /*replicas=*/2);
  CommitManager* old_leader = group->manager(0);

  commitmgr::BeginRequest request;
  request.pn_id = 0;
  request.start_token = 0xDEAD'BEEF'0001;
  ASSERT_OK_AND_ASSIGN(commitmgr::TxnBeginDelta first,
                       old_leader->StartDelta(request));

  // The leader dies holding the (executed) begin; the client's retry lands
  // on the elected successor with the same token.
  old_leader->Kill();
  CommitManager* new_leader = group->ManagerFor(0);
  ASSERT_NE(new_leader, nullptr);
  ASSERT_NE(new_leader, old_leader);
  ASSERT_OK_AND_ASSIGN(commitmgr::TxnBeginDelta replay,
                       new_leader->StartDelta(request));
  EXPECT_EQ(replay.tid, first.tid)
      << "a replayed begin token must resolve to the original tid";

  // Completing it once releases the active entry — nothing pins the base.
  ASSERT_OK(new_leader->SetCommitted(first.tid));
  EXPECT_GE(new_leader->CurrentSnapshot().base(), first.tid);
}

TEST_F(ReplicatedGroupTest, SnapshotBoundsCatchUpReplay) {
  auto group = MakeGroup(1, /*replicas=*/2, /*range=*/16,
                         /*snapshot_interval=*/8);
  CommitManager* leader = group->manager(0);
  for (int i = 0; i < 40; ++i) {
    ASSERT_OK_AND_ASSIGN(commitmgr::TxnBegin t, leader->Start(0));
    ASSERT_OK(leader->SetCommitted(t.tid));
  }
  const commitmgr::Tid base_before = leader->CurrentSnapshot().base();

  leader->Kill();
  CommitManager* promoted = group->ManagerFor(0);
  ASSERT_NE(promoted, nullptr);

  commitmgr::GroupReplicationStats repl = group->ReplStats();
  EXPECT_GT(repl.snapshots, 0u);
  EXPECT_GT(repl.log_truncated, 0u);
  EXPECT_GT(repl.snapshot_installs, 0u)
      << "a follower this far behind must catch up via a log snapshot";
  EXPECT_GE(promoted->CurrentSnapshot().base(), base_before);

  ASSERT_OK_AND_ASSIGN(commitmgr::TxnBegin t, promoted->Start(0));
  EXPECT_GT(t.tid, base_before);
  ASSERT_OK(promoted->SetCommitted(t.tid));
}

TEST_F(ReplicatedGroupTest, RevivedOldLeaderRejoinsAsFollower) {
  auto group = MakeGroup(1, /*replicas=*/3);
  CommitManager* old_leader = group->manager(0);
  ASSERT_OK(old_leader->Start(0).status());
  old_leader->Kill();
  CommitManager* new_leader = group->ManagerFor(0);
  ASSERT_NE(new_leader, old_leader);

  old_leader->Revive();
  EXPECT_EQ(old_leader->role(), ReplicaRole::kFollower)
      << "a revived leader must not serve the slot it lost";
  EXPECT_TRUE(old_leader->Start(0).status().IsUnavailable());
  EXPECT_EQ(group->ManagerFor(0), new_leader);
}

TEST_F(ReplicatedGroupTest, SlotUnavailableOnlyWhenAllReplicasDead) {
  auto group = MakeGroup(1, /*replicas=*/2);
  group->replica(0, 0)->Kill();
  group->replica(0, 1)->Kill();
  EXPECT_EQ(group->ManagerFor(0), nullptr);
  group->replica(0, 1)->Revive();
  // A dead leader whose follower was revived is electable again.
  EXPECT_NE(group->ManagerFor(0), nullptr);
}

// ---------------------------------------------------------------------------
// Fast-path gate: multi-manager is a tested hard disable; a replicated
// single slot stays compatible
// ---------------------------------------------------------------------------

TEST(FastPathGateTest, MultipleCommitManagersHardDisableFastPath) {
  db::TellDbOptions options;
  options.network = sim::NetworkModel::Instant();
  options.fastpath.enabled = true;
  options.num_commit_managers = 2;
  db::TellDb db(options);
  EXPECT_EQ(db.fastpath(), nullptr) << "fast path must be OFF, not degraded";
  EXPECT_NE(db.fastpath_disabled_reason().find("single commit manager"),
            std::string::npos)
      << "actual reason: " << db.fastpath_disabled_reason();

  // MVCC-only execution still works.
  ASSERT_OK(db.CreateTable("t",
                           schema::SchemaBuilder()
                               .AddInt64("id")
                               .AddInt64("v")
                               .SetPrimaryKey({"id"})
                               .Build(),
                           {}));
  auto session = db.OpenSession(0, 0);
  auto table = *db.GetTable(0, "t");
  Transaction txn(session.get());
  ASSERT_OK(txn.Begin());
  Tuple t(2);
  t.Set(0, int64_t{1});
  t.Set(1, int64_t{42});
  ASSERT_OK(txn.Insert(table, t, false).status());
  ASSERT_OK(txn.Commit());
  EXPECT_EQ(session->metrics()->fastpath_hits, 0u);
}

TEST(FastPathGateTest, InterleavedTidsHardDisableFastPath) {
  db::TellDbOptions options;
  options.network = sim::NetworkModel::Instant();
  options.fastpath.enabled = true;
  options.commit_manager.interleaved_tids = true;
  db::TellDb db(options);
  EXPECT_EQ(db.fastpath(), nullptr);
  EXPECT_NE(db.fastpath_disabled_reason().find("interleaved_tids"),
            std::string::npos)
      << "actual reason: " << db.fastpath_disabled_reason();
}

TEST(FastPathGateTest, ReplicatedSingleSlotKeepsFastPathEnabled) {
  db::TellDbOptions options;
  options.network = sim::NetworkModel::Instant();
  options.fastpath.enabled = true;
  options.num_commit_managers = 1;
  options.commit_replication.replicas = 3;
  db::TellDb db(options);
  EXPECT_NE(db.fastpath(), nullptr)
      << "replicating the single slot must not disable the fast path: "
      << db.fastpath_disabled_reason();
  EXPECT_TRUE(db.fastpath_disabled_reason().empty());
  EXPECT_EQ(db.commit_managers()->num_replicas(), 3u);
}

// ---------------------------------------------------------------------------
// Kill-the-leader chaos suite (3 seeds)
// ---------------------------------------------------------------------------

// One workload run with a replicated commit-manager slot and three injected
// leader kills: one mid-Start (request lost), one mid-Finish, and one
// ambiguous begin (executed, then the leader dies holding the response — the
// begin token resolves it on the successor). Four replicas, so after three
// kills a live leader remains. Transfers between accounts give an exact
// model to check against; the final probe asserts the snapshot base caught
// up to the last tid issued — i.e. zero lost or leaked (duplicated) tids.
class LeaderKillChaosSuite : public ::testing::TestWithParam<uint64_t> {};

TEST_P(LeaderKillChaosSuite, ElectsReplacementsAndLosesNoTids) {
  const uint64_t seed = GetParam();
  // Seed-dependent offsets move the kills around the request stream.
  const uint64_t skip_start = 3 + seed % 7;
  const uint64_t skip_finish = 5 + seed % 5;
  const uint64_t skip_ambiguous = 12 + seed % 9;
  sim::FaultInjector injector(FaultPlan{
      .seed = seed,
      .rules = {
          // Kill #1: leader dies BEFORE a begin executes (request lost).
          FaultRule{.kind = FaultRule::Kind::kKillCommitLeader,
                    .op = FaultOpClass::kCommitMgrStart,
                    .skip_matches = skip_start,
                    .probability = 1.0,
                    .max_fires = 1},
          // Kill #2: leader dies on a finish notification.
          FaultRule{.kind = FaultRule::Kind::kKillCommitLeader,
                    .op = FaultOpClass::kCommitMgrFinish,
                    .skip_matches = skip_finish,
                    .probability = 1.0,
                    .max_fires = 1},
          // Kill #3: ambiguous begin — both rules fire on the same request,
          // so it executes, the leader dies, and the response is lost.
          FaultRule{.kind = FaultRule::Kind::kKillCommitLeader,
                    .op = FaultOpClass::kCommitMgrStart,
                    .skip_matches = skip_ambiguous,
                    .probability = 1.0,
                    .max_fires = 1},
          FaultRule{.kind = FaultRule::Kind::kDropResponse,
                    .op = FaultOpClass::kCommitMgrStart,
                    .skip_matches = skip_ambiguous,
                    .probability = 1.0,
                    .max_fires = 1},
      }});
  injector.Disarm();

  db::TellDbOptions options;
  options.network = sim::NetworkModel::Instant();
  options.fault_injector = &injector;
  options.num_commit_managers = 1;
  options.commit_replication.replicas = 4;
  options.commit_replication.snapshot_interval = 32;
  // Unbatched finishes: each one is its own injectable message, so the
  // mid-Finish kill rule fires on a finish request instead of riding the
  // next begin's coalesced message (where it would merge with a start kill
  // into a single fault).
  options.session.commit_batching = false;
  options.fastpath.enabled = false;
  db::TellDb db(options);

  ASSERT_OK(db.CreateTable("accounts",
                           schema::SchemaBuilder()
                               .AddInt64("id")
                               .AddDouble("balance")
                               .SetPrimaryKey({"id"})
                               .Build(),
                           {}));
  auto session = db.OpenSession(0, 0);
  auto accounts = *db.GetTable(0, "accounts");

  constexpr int kAccounts = 6;
  constexpr double kInitialBalance = 500.0;
  std::vector<uint64_t> rids;
  {
    Transaction txn(session.get());
    ASSERT_OK(txn.Begin());
    for (int64_t i = 0; i < kAccounts; ++i) {
      Tuple t(2);
      t.Set(0, i);
      t.Set(1, kInitialBalance);
      ASSERT_OK_AND_ASSIGN(uint64_t rid, txn.Insert(accounts, t, false));
      rids.push_back(rid);
    }
    ASSERT_OK(txn.Commit());
  }

  std::vector<double> expected(kAccounts, kInitialBalance);
  injector.Arm();
  Random rng(seed ^ 0x715EED);
  constexpr int kTxns = 120;
  int committed = 0;
  for (int i = 0; i < kTxns; ++i) {
    Transaction txn(session.get());
    if (!txn.Begin().ok()) continue;
    const size_t a = rng.Uniform(kAccounts);
    size_t b = rng.Uniform(kAccounts - 1);
    if (b >= a) ++b;
    const double amount = 1.0 + static_cast<double>(rng.Uniform(20));
    auto ra = txn.Read(accounts, rids[a]);
    auto rb = txn.Read(accounts, rids[b]);
    if (!(ra.ok() && rb.ok() && ra->has_value() && rb->has_value())) {
      (void)txn.Abort();
      continue;
    }
    Tuple ta(2), tb(2);
    ta.Set(0, static_cast<int64_t>(a));
    ta.Set(1, (*ra)->GetDouble(1) - amount);
    tb.Set(0, static_cast<int64_t>(b));
    tb.Set(1, (*rb)->GetDouble(1) + amount);
    if (!(txn.Update(accounts, rids[a], ta).ok() &&
          txn.Update(accounts, rids[b], tb).ok())) {
      (void)txn.Abort();
      continue;
    }
    if (txn.Commit().ok()) {
      ++committed;
      expected[a] -= amount;
      expected[b] += amount;
    }
  }
  injector.Disarm();

  // All three kills fired and each one forced an election.
  const sim::FaultStats stats = injector.stats();
  EXPECT_EQ(stats.leader_kills, 3u) << "seed " << seed;
  commitmgr::GroupReplicationStats repl = db.commit_managers()->ReplStats();
  EXPECT_GE(repl.elections, 3u);
  EXPECT_GE(repl.term, 3u);
  EXPECT_GT(committed, 0) << "traffic must resume after every fail-over";

  // Committed balances match the model exactly: nothing lost, nothing
  // applied twice.
  {
    Transaction txn(session.get());
    ASSERT_OK(txn.Begin());
    double total = 0;
    for (int i = 0; i < kAccounts; ++i) {
      ASSERT_OK_AND_ASSIGN(
          auto row, txn.Read(accounts, rids[static_cast<size_t>(i)]));
      ASSERT_TRUE(row.has_value());
      EXPECT_NEAR(row->GetDouble(1), expected[static_cast<size_t>(i)], 1e-6)
          << "account " << i << " seed " << seed;
      total += row->GetDouble(1);
    }
    EXPECT_NEAR(total, kAccounts * kInitialBalance, 1e-6);
    ASSERT_OK(txn.Commit());
  }

  // GC-horizon progress: after flushing accounting, nothing pins the
  // snapshot base below the last tid issued — a leaked active entry (lost
  // or duplicated begin) would hold it back forever.
  Transaction probe(session.get());
  ASSERT_OK(probe.Begin());
  ASSERT_OK(probe.Commit());
  session->commitmgr_client()->FlushPendingAccounting();
  CommitManager* leader = db.commit_managers()->ManagerFor(0);
  ASSERT_NE(leader, nullptr);
  EXPECT_EQ(leader->CurrentSnapshot().base(), probe.tid())
      << "a fail-over leaked or lost a tid (seed " << seed << ")";
  EXPECT_GE(db.commit_managers()->GlobalLav(), probe.tid());
}

INSTANTIATE_TEST_SUITE_P(Seeds, LeaderKillChaosSuite,
                         ::testing::Values(uint64_t{0xC0FFEE01},
                                           uint64_t{0xC0FFEE02},
                                           uint64_t{0xC0FFEE03}));

// The third request class of the chaos spec: the leader dies mid-
// LeaseFastTids. The lease path treats the loss as kill-before-issue (a
// leased-but-unacked batch would orphan its tids until the next election),
// retries against the elected successor, and the fast path keeps running.
TEST(LeaderKillChaosSuite2, LeaderDiesMidLeaseAndFastPathResumes) {
  sim::FaultInjector injector(FaultPlan{
      .seed = 21,
      .rules = {FaultRule{.kind = FaultRule::Kind::kKillCommitLeader,
                          .op = FaultOpClass::kCommitMgrLease,
                          .skip_matches = 1,
                          .probability = 1.0,
                          .max_fires = 1}}});
  injector.Disarm();

  db::TellDbOptions options;
  options.network = sim::NetworkModel::Instant();
  options.fault_injector = &injector;
  options.num_commit_managers = 1;
  options.commit_replication.replicas = 3;
  options.fastpath.enabled = true;
  options.fastpath.tid_lease_size = 8;  // several lease messages per run
  db::TellDb db(options);
  ASSERT_NE(db.fastpath(), nullptr) << db.fastpath_disabled_reason();

  ASSERT_OK(tpcc::CreateTpccTables(&db));
  tpcc::TpccScale scale;
  scale.warehouses = 1;
  scale.districts_per_warehouse = 2;
  scale.customers_per_district = 10;
  scale.items = 30;
  scale.initial_orders_per_district = 5;
  ASSERT_OK(tpcc::LoadTpcc(&db, scale));
  auto session = db.OpenSession(0, 0);
  auto tables = tpcc::OpenTpccTables(&db, 0);
  ASSERT_TRUE(tables.ok()) << tables.status().ToString();
  tpcc::TpccExecutor executor(session.get(), *tables);
  tpcc::InputGenerator generator(scale, tpcc::Mix::kShardable, /*seed=*/77,
                                 /*home_warehouse=*/1);

  injector.Arm();
  int committed = 0;
  for (int i = 0; i < 80; ++i) {
    tpcc::TxnInput input = generator.Next();
    auto outcome = executor.Execute(input);
    ASSERT_TRUE(outcome.ok()) << outcome.status().ToString();
    committed += outcome->committed ? 1 : 0;
  }
  injector.Disarm();

  EXPECT_EQ(injector.stats().leader_kills, 1u);
  EXPECT_GE(db.commit_managers()->ReplStats().elections, 1u);
  EXPECT_GT(session->metrics()->fastpath_hits, 0u)
      << "the fast path must keep running after the lease fail-over";
  EXPECT_GT(committed, 0);

  // An MVCC probe still begins and commits against the promoted leader.
  Transaction probe(session.get());
  ASSERT_OK(probe.Begin());
  ASSERT_OK(probe.Commit());
}

}  // namespace
}  // namespace tell
