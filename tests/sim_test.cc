#include <gtest/gtest.h>

#include "sim/histogram.h"
#include "sim/metrics.h"
#include "sim/network_model.h"
#include "sim/virtual_clock.h"

namespace tell::sim {
namespace {

TEST(VirtualClockTest, AdvanceAccumulates) {
  VirtualClock clock;
  EXPECT_EQ(clock.now_ns(), 0u);
  clock.Advance(100);
  clock.Advance(50);
  EXPECT_EQ(clock.now_ns(), 150u);
}

TEST(VirtualClockTest, AdvanceToNeverMovesBackwards) {
  VirtualClock clock;
  clock.Advance(1000);
  clock.AdvanceTo(500);
  EXPECT_EQ(clock.now_ns(), 1000u);
  clock.AdvanceTo(2000);
  EXPECT_EQ(clock.now_ns(), 2000u);
}

TEST(VirtualClockTest, ResetZeroes) {
  VirtualClock clock;
  clock.Advance(42);
  clock.Reset();
  EXPECT_EQ(clock.now_ns(), 0u);
}

TEST(NetworkModelTest, RequestCostLatencyFloor) {
  NetworkModel ib = NetworkModel::InfiniBand();
  // An empty request still pays the round trip.
  EXPECT_EQ(ib.RequestCost(0, 0), ib.base_rtt_ns);
}

TEST(NetworkModelTest, RequestCostScalesWithBytes) {
  NetworkModel ib = NetworkModel::InfiniBand();
  uint64_t small = ib.RequestCost(100, 100);
  uint64_t large = ib.RequestCost(100, 1'000'000);
  // 1 MB at 0.2 ns/byte = 200 us on top of the 5 us floor.
  EXPECT_GT(large, small + 150'000);
}

TEST(NetworkModelTest, EthernetSlowerThanInfiniBand) {
  NetworkModel ib = NetworkModel::InfiniBand();
  NetworkModel eth = NetworkModel::TenGbEthernet();
  // Small requests: latency dominated; paper needs >6x.
  EXPECT_GT(eth.RequestCost(64, 512), 6 * ib.RequestCost(64, 512));
}

TEST(NetworkModelTest, InstantIsFree) {
  NetworkModel instant = NetworkModel::Instant();
  EXPECT_EQ(instant.RequestCost(1000, 1000), 0u);
}

TEST(WorkerMetricsTest, MergeSumsEverything) {
  WorkerMetrics a, b;
  a.committed = 3;
  a.aborted = 1;
  a.storage_requests = 10;
  a.bytes_sent = 100;
  a.buffer_hits = 2;
  b.committed = 7;
  b.aborted = 2;
  b.storage_requests = 5;
  b.bytes_sent = 50;
  b.buffer_misses = 4;
  a.Merge(b);
  EXPECT_EQ(a.committed, 10u);
  EXPECT_EQ(a.aborted, 3u);
  EXPECT_EQ(a.storage_requests, 15u);
  EXPECT_EQ(a.bytes_sent, 150u);
  EXPECT_EQ(a.buffer_hits, 2u);
  EXPECT_EQ(a.buffer_misses, 4u);
}

TEST(WorkerMetricsTest, AbortRate) {
  WorkerMetrics m;
  EXPECT_EQ(m.AbortRate(), 0.0);
  m.committed = 9;
  m.aborted = 1;
  EXPECT_DOUBLE_EQ(m.AbortRate(), 0.1);
}

TEST(WorkerMetricsTest, BufferHitRate) {
  WorkerMetrics m;
  EXPECT_EQ(m.BufferHitRate(), 0.0);
  m.buffer_hits = 3;
  m.buffer_misses = 1;
  EXPECT_DOUBLE_EQ(m.BufferHitRate(), 0.75);
}

TEST(HistogramTest, EmptyHistogramSafe) {
  Histogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.Mean(), 0.0);
  EXPECT_EQ(h.StdDev(), 0.0);
  EXPECT_EQ(h.Percentile(99), 0u);
  EXPECT_EQ(h.min(), 0u);
}

TEST(HistogramTest, SingleValue) {
  Histogram h;
  h.Record(1000);
  EXPECT_EQ(h.count(), 1u);
  EXPECT_EQ(h.Mean(), 1000.0);
  EXPECT_EQ(h.StdDev(), 0.0);
  // Percentiles land in the value's bucket (within log-bucket error).
  EXPECT_NEAR(static_cast<double>(h.Percentile(50)), 1000.0, 200.0);
}

TEST(HistogramTest, ResetClears) {
  Histogram h;
  h.Record(5);
  h.Reset();
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.max(), 0u);
}

TEST(HistogramTest, PercentilesMonotone) {
  Histogram h;
  for (uint64_t i = 1; i <= 10'000; ++i) h.Record(i);
  uint64_t previous = 0;
  for (double p : {10.0, 25.0, 50.0, 75.0, 90.0, 99.0, 99.9}) {
    uint64_t value = h.Percentile(p);
    EXPECT_GE(value, previous) << "p" << p;
    previous = value;
  }
}

TEST(HistogramTest, HugeValuesClampToLastBucket) {
  Histogram h;
  h.Record(UINT64_MAX / 2);
  EXPECT_EQ(h.count(), 1u);
  EXPECT_GT(h.Percentile(50), 0u);
}

}  // namespace
}  // namespace tell::sim
