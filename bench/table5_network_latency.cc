// Table 5: latency detail for the fastest configuration (8 PNs) on both
// networks: mean ± σ, 99th and 99.9th percentile response times.
#include "bench/bench_util.h"

using namespace tell;
using namespace tell::bench;

int main() {
  PrintHeader("Table 5", "Network latency (write-intensive, 8 PN, RF1)",
              "InfiniBand: 958,187 TpmC, 14.4±2.2 ms, TP99 22 / TP999 23; "
              "Ethernet: 151,079 TpmC, 91.1±9.4 ms, TP99 102 / TP999 103 — "
              "few outliers on either network (not congested)");

  BenchJson json("table5_network_latency");
  json.AddConfig("mix", "write_intensive");
  json.AddConfig("replication_factor", uint64_t{1});
  json.AddConfig("processing_nodes", uint64_t{8});
  json.AddConfig("virtual_ms", uint64_t{300});

  std::printf("%-12s %12s %16s %10s %10s\n", "network", "TpmC",
              "resp ms (±σ)", "TP99", "TP999");
  for (bool infiniband : {true, false}) {
    db::TellDbOptions options;
    options.num_processing_nodes = 8;
    options.num_storage_nodes = 7;
    options.replication_factor = 1;
    options.network = infiniband ? sim::NetworkModel::InfiniBand()
                                 : sim::NetworkModel::TenGbEthernet();
    TellFixture fixture(options, BenchScale());
    auto result = fixture.Run(8, tpcc::Mix::kWriteIntensive, kWorkersPerPn,
                              /*virtual_ms=*/300);
    if (!result.ok()) {
      std::printf("%-12s run failed: %s\n", options.network.name.c_str(),
                  result.status().ToString().c_str());
      continue;
    }
    std::printf("%-12s %12.0f %8.2f ± %-5.2f %10.2f %10.2f\n",
                options.network.name.c_str(), result->tpmc,
                result->mean_response_ms, result->std_response_ms,
                result->p99_response_ms, result->p999_response_ms);
    const obs::MetricsSnapshot& snap = json.Add(
        infiniband ? "infiniband" : "ethernet", *result, fixture.db());
    PrintPhaseBreakdown(snap);
  }
  std::printf("\nshape checks: Ethernet mean ~6-10x InfiniBand; tail "
              "percentiles close to the mean on both networks (low outlier "
              "count = no congestion).\n");
  json.Write();
  PrintFooter();
  return 0;
}
