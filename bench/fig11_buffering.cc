// Figure 11: buffering strategies (paper §5.5/§6.7). With fast RDMA the
// plain transaction buffer (TB) wins; the shared record buffer (SB) pays
// management overhead for a ~1.4% hit rate; version-set synchronization
// (SBVS) buys a much better hit rate but pays two storage requests per
// update — a net loss under the write-heavy TPC-C.
#include "bench/bench_util.h"

using namespace tell;
using namespace tell::bench;

int main() {
  PrintHeader("Figure 11", "Buffering strategies (write-intensive, RF1)",
              "TB fastest; SB worse (1.42% hit rate, overhead > benefit); "
              "SBVS10/SBVS1000 worst (extra version-set update requests; "
              "SBVS1000 hit rate 37.37% still cannot pay for them)");

  struct Config {
    const char* name;
    db::BufferStrategy strategy;
    uint64_t unit;
    bool pipelining;
  };
  // TBpipe: the transaction buffer again, with the async request pipeline on
  // (coalesced messages, overlapped round trips) — the §5.1 batching effect
  // measured rather than only modeled.
  const Config configs[] = {
      {"TB", db::BufferStrategy::kTransactionOnly, 0, false},
      {"TBpipe", db::BufferStrategy::kTransactionOnly, 0, true},
      {"SB", db::BufferStrategy::kSharedRecord, 0, false},
      {"SBVS10", db::BufferStrategy::kVersionSync, 10, false},
      {"SBVS1000", db::BufferStrategy::kVersionSync, 1000, false},
  };

  BenchJson json("fig11_buffering");
  json.AddConfig("mix", "write_intensive");
  json.AddConfig("replication_factor", uint64_t{1});
  json.AddConfig("virtual_ms", uint64_t{kVirtualMs});

  std::printf("%-10s %-4s %12s %12s\n", "strategy", "PN", "TpmC",
              "buffer hit%");
  double peak[5] = {0};
  int i = 0;
  for (const Config& config : configs) {
    db::TellDbOptions options;
    options.num_processing_nodes = 1;
    options.num_storage_nodes = 7;
    options.replication_factor = 1;
    options.buffer_strategy = config.strategy;
    options.buffer_unit_size = config.unit;
    options.pipelining = config.pipelining;
    TellFixture fixture(options, BenchScale());
    for (uint32_t pns : {1u, 4u, 8u}) {
      auto result = fixture.Run(pns, tpcc::Mix::kWriteIntensive);
      if (!result.ok()) continue;
      std::printf("%-10s %-4u %12.0f %11.2f%%\n", config.name, pns,
                  result->tpmc, result->buffer_hit_rate * 100);
      json.Add(std::string(config.name) + "_pn" + std::to_string(pns),
               *result, fixture.db());
      peak[i] = std::max(peak[i], result->tpmc);
    }
    ++i;
  }
  std::printf("\nshape checks (paper: TB > SB > SBVS):\n");
  std::printf("  TB peak:       %.0f TpmC\n", peak[0]);
  std::printf("  TBpipe/TB:     %.2f (pipelining; expect >1)\n",
              peak[1] / peak[0]);
  std::printf("  SB/TB:         %.2f (paper <1)\n", peak[2] / peak[0]);
  std::printf("  SBVS10/TB:     %.2f (paper <1)\n", peak[3] / peak[0]);
  std::printf("  SBVS1000/TB:   %.2f (paper <1)\n", peak[4] / peak[0]);
  json.Write();
  PrintFooter();
  return 0;
}
