// Micro-benchmarks (google-benchmark) for the hot primitives: storage node
// operations, LL/SC, B+tree, serialization and snapshot bookkeeping.
// In addition to the google-benchmark console output, main() runs a short
// deterministic storage workload in virtual time and exports its metrics to
// BENCH_micro_bench.json like every other bench binary.
#include <benchmark/benchmark.h>

#include <cstdio>

#include "obs/bench_export.h"
#include "obs/metrics_registry.h"

#include "common/random.h"
#include "common/serde.h"
#include "commitmgr/snapshot_descriptor.h"
#include "index/btree.h"
#include "schema/versioned_record.h"
#include "sim/metrics.h"
#include "sim/virtual_clock.h"
#include "store/cluster.h"
#include "store/storage_client.h"

namespace tell {
namespace {

void BM_StorageNodePut(benchmark::State& state) {
  store::StorageNode node(0, 1ULL << 30);
  node.CreatePartition(1, 0);
  std::string value(128, 'x');
  uint64_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        node.Put(1, 0, EncodeOrderedU64(i++ % 100000), value));
  }
}
BENCHMARK(BM_StorageNodePut);

void BM_StorageNodeGet(benchmark::State& state) {
  store::StorageNode node(0, 1ULL << 30);
  node.CreatePartition(1, 0);
  std::string value(128, 'x');
  for (uint64_t i = 0; i < 10000; ++i) {
    (void)node.Put(1, 0, EncodeOrderedU64(i), value);
  }
  uint64_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(node.Get(1, 0, EncodeOrderedU64(i++ % 10000)));
  }
}
BENCHMARK(BM_StorageNodeGet);

void BM_LlScConditionalPut(benchmark::State& state) {
  store::StorageNode node(0, 1ULL << 30);
  node.CreatePartition(1, 0);
  uint64_t stamp = *node.Put(1, 0, "cell", "v0");
  for (auto _ : state) {
    auto result = node.ConditionalPut(1, 0, "cell", stamp, "v");
    stamp = *result;
    benchmark::DoNotOptimize(stamp);
  }
}
BENCHMARK(BM_LlScConditionalPut);

void BM_VersionedRecordSerialize(benchmark::State& state) {
  schema::VersionedRecord record;
  for (int v = 1; v <= state.range(0); ++v) {
    record.PutVersion(static_cast<uint64_t>(v), std::string(200, 'x'));
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(record.Serialize());
  }
}
BENCHMARK(BM_VersionedRecordSerialize)->Arg(1)->Arg(3)->Arg(8);

void BM_VersionedRecordVisible(benchmark::State& state) {
  schema::VersionedRecord record;
  for (int v = 1; v <= 8; ++v) {
    record.PutVersion(static_cast<uint64_t>(v * 10), "payload");
  }
  commitmgr::SnapshotDescriptor snapshot(45);
  for (auto _ : state) {
    benchmark::DoNotOptimize(record.VisibleVersion(snapshot));
  }
}
BENCHMARK(BM_VersionedRecordVisible);

void BM_SnapshotMarkCompleted(benchmark::State& state) {
  commitmgr::SnapshotDescriptor snapshot;
  uint64_t tid = 1;
  for (auto _ : state) {
    snapshot.MarkCompleted(tid++);
    benchmark::DoNotOptimize(snapshot.base());
  }
}
BENCHMARK(BM_SnapshotMarkCompleted);

void BM_SnapshotSerialize(benchmark::State& state) {
  commitmgr::SnapshotDescriptor snapshot;
  // A realistic gap: 1000 in-flight transactions above the base.
  for (uint64_t tid = 2; tid < 1000; tid += 2) snapshot.MarkCompleted(tid);
  for (auto _ : state) {
    benchmark::DoNotOptimize(snapshot.Serialize());
  }
}
BENCHMARK(BM_SnapshotSerialize);

class BTreeFixture : public benchmark::Fixture {
 public:
  void SetUp(const benchmark::State&) override {
    store::ClusterOptions options;
    options.num_storage_nodes = 3;
    cluster_ = std::make_unique<store::Cluster>(options);
    table_ = *cluster_->CreateTable("idx");
    clock_ = std::make_unique<sim::VirtualClock>();
    metrics_ = std::make_unique<sim::WorkerMetrics>();
    store::ClientOptions client_options;
    client_options.network = sim::NetworkModel::Instant();
    client_ = std::make_unique<store::StorageClient>(
        cluster_.get(), nullptr, client_options, clock_.get(),
        metrics_.get());
    (void)index::BTree::Create(client_.get(), table_);
    cache_ = std::make_unique<index::NodeCache>();
    index::BTreeOptions tree_options;
    tree_ = std::make_unique<index::BTree>(table_, tree_options,
                                           cache_.get());
    for (uint64_t i = 0; i < 10000; ++i) {
      (void)tree_->Insert(client_.get(), EncodeOrderedU64(i), i + 1, true);
    }
  }
  void TearDown(const benchmark::State&) override {
    tree_.reset();
    cache_.reset();
    client_.reset();
    cluster_.reset();
  }

 protected:
  std::unique_ptr<store::Cluster> cluster_;
  std::unique_ptr<sim::VirtualClock> clock_;
  std::unique_ptr<sim::WorkerMetrics> metrics_;
  std::unique_ptr<store::StorageClient> client_;
  std::unique_ptr<index::NodeCache> cache_;
  std::unique_ptr<index::BTree> tree_;
  store::TableId table_;
};

BENCHMARK_F(BTreeFixture, Lookup)(benchmark::State& state) {
  Random rng(3);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        tree_->Lookup(client_.get(), EncodeOrderedU64(rng.Uniform(10000))));
  }
}

BENCHMARK_F(BTreeFixture, Insert)(benchmark::State& state) {
  uint64_t next = 10000;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        tree_->Insert(client_.get(), EncodeOrderedU64(next), next + 1, true));
    ++next;
  }
}

BENCHMARK_F(BTreeFixture, RangeScan100)(benchmark::State& state) {
  Random rng(5);
  for (auto _ : state) {
    uint64_t start = rng.Uniform(9900);
    benchmark::DoNotOptimize(tree_->RangeScan(
        client_.get(), EncodeOrderedU64(start), EncodeOrderedU64(start + 100),
        0));
  }
}

// A deterministic virtual-time storage workload whose metrics feed the JSON
// artifact: 1000 Puts then 4000 Gets through the StorageClient.
void ExportJsonArtifact() {
  store::ClusterOptions cluster_options;
  cluster_options.num_storage_nodes = 3;
  store::Cluster cluster(cluster_options);
  auto table = *cluster.CreateTable("micro");
  sim::VirtualClock clock;
  sim::WorkerMetrics metrics;
  store::ClientOptions client_options;
  store::StorageClient client(&cluster, nullptr, client_options, &clock,
                              &metrics);
  std::string value(128, 'x');
  for (uint64_t i = 0; i < 1000; ++i) {
    (void)client.Put(table, EncodeOrderedU64(i), value);
  }
  Random rng(11);
  for (int i = 0; i < 4000; ++i) {
    (void)client.Get(table, EncodeOrderedU64(rng.Uniform(1000)));
  }

  obs::MetricsRegistry registry;
  registry.AbsorbWorker(metrics);
  obs::BenchReport report("micro_bench");
  report.AddConfig("workload", "1000 puts + 4000 gets, 3 SNs");
  obs::BenchRun run;
  run.label = "storage_client";
  run.derived.emplace_back(
      "virtual_ms", static_cast<double>(clock.now_ns()) / 1e6);
  run.snapshot = registry.Snapshot();
  report.AddRun(std::move(run));
  auto path = report.WriteFile();
  if (path.ok()) std::printf("artifact: %s\n", path->c_str());
}

}  // namespace
}  // namespace tell

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  tell::ExportJsonArtifact();
  return 0;
}
