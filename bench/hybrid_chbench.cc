// Hybrid OLTP/OLAP suite in the CH-benCHmark style: TPC-C runs at full
// speed while an analytical session fires aggregate queries over
// `order_line` — the mixed workload the paper names as the motivation for
// pushing operators into the storage layer (§5.2). Three runs on identical
// populations:
//
//   tpcc_only          TPC-C alone — the TpmC baseline.
//   hybrid_pushdown    TPC-C + OLAP with vectorized scan fragments: the
//                      storage nodes fold matching rows into partial
//                      aggregate states chunk by chunk, dropping the stripe
//                      locks between chunks so point operations interleave.
//   hybrid_nopushdown  same OLAP queries with pushdown off: every row of
//                      the table crosses the (modelled) network per query.
//
// Reported: TpmC and its wall-clock dip vs the baseline, OLAP queries/sec,
// per-query response bytes for both OLAP modes (the pushdown bytes ratio),
// and the sql.scan.* counters — rows scanned vs returned, bytes saved,
// chunk lock releases.
// Quick mode: set TELL_HYBRID_CHBENCH_QUICK=1 (the ctest round trip).
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <thread>

#include "bench/bench_util.h"

using namespace tell;
using namespace tell::bench;

namespace {

/// CH-benCHmark-flavoured analytical queries over the TPC-C order lines
/// (quantities are 1..10, amounts are positive for paid lines). All are
/// full-scan aggregates, so with pushdown on each runs as scan fragments.
const char* kOlapQueries[] = {
    // CH Q1-style: per-line-number volume summary of delivered lines.
    "SELECT ol_number, COUNT(*), SUM(ol_quantity), AVG(ol_amount) "
    "FROM order_line WHERE ol_delivery_d > 0 GROUP BY ol_number",
    // Selective revenue aggregate (CH Q6-style).
    "SELECT SUM(ol_amount) FROM order_line "
    "WHERE ol_quantity >= 1 AND ol_quantity <= 5 AND ol_amount > 0.01",
    // Plain table cardinality.
    "SELECT COUNT(*) FROM order_line",
};
constexpr int kNumOlapQueries =
    static_cast<int>(sizeof(kOlapQueries) / sizeof(kOlapQueries[0]));

struct OlapStats {
  uint64_t queries = 0;
  uint64_t bytes_received = 0;
  uint64_t rows_scanned = 0;
  uint64_t rows_returned = 0;
  uint64_t bytes_saved = 0;
  uint64_t chunk_lock_releases = 0;
  uint64_t fragments = 0;
};

struct RunOutcome {
  tpcc::DriverResult driver;
  OlapStats olap;
  sim::WorkerMetrics merged;  // driver workers + the OLAP session
  double wall_seconds = 0.0;
};

enum class Mode { kTpccOnly, kHybridPushdown, kHybridNoPushdown };

RunOutcome RunMode(Mode mode, const tpcc::TpccScale& scale,
                   uint32_t scan_chunk_cells, uint64_t virtual_ms,
                   uint32_t workers) {
  db::TellDbOptions options;
  options.operator_pushdown = mode == Mode::kHybridPushdown;
  options.scan_chunk_cells = scan_chunk_cells;
  TellFixture fixture(options, scale);

  auto olap_session = fixture.db()->OpenSession(0, /*worker_id=*/77);
  std::atomic<bool> stop{false};
  OlapStats olap;

  auto run_olap_pass = [&]() -> bool {
    for (const char* sql : kOlapQueries) {
      auto result = fixture.db()->AutoCommitSql(olap_session.get(), sql);
      if (!result.ok()) {
        std::fprintf(stderr, "olap query failed: %s\n",
                     result.status().ToString().c_str());
        return false;
      }
      ++olap.queries;
    }
    return true;
  };

  std::thread olap_thread;
  bool olap_failed = false;
  if (mode != Mode::kTpccOnly) {
    // One synchronous pass first so every hybrid run reports at least one
    // query even if the OLTP window closes immediately.
    if (!run_olap_pass()) std::exit(1);
    olap_thread = std::thread([&] {
      while (!stop.load(std::memory_order_relaxed)) {
        if (!run_olap_pass()) {
          olap_failed = true;
          return;
        }
      }
    });
  }

  auto wall_start = std::chrono::steady_clock::now();
  auto result = fixture.Run(/*num_pns=*/1, tpcc::Mix::kWriteIntensive,
                            workers, virtual_ms);
  stop.store(true);
  if (olap_thread.joinable()) olap_thread.join();
  if (!result.ok()) {
    std::fprintf(stderr, "driver failed: %s\n",
                 result.status().ToString().c_str());
    std::exit(1);
  }
  if (olap_failed) std::exit(1);

  RunOutcome out;
  out.driver = std::move(*result);
  out.wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    wall_start)
          .count();
  const sim::WorkerMetrics& m = *olap_session->metrics();
  olap.bytes_received = m.bytes_received;
  olap.rows_scanned = m.scan_rows_scanned;
  olap.rows_returned = m.scan_rows_returned;
  olap.bytes_saved = m.scan_bytes_saved;
  olap.chunk_lock_releases = m.scan_chunk_lock_releases;
  olap.fragments = m.scan_fragments;
  out.olap = olap;
  out.merged = out.driver.merged;
  out.merged.Merge(m);  // artifact carries the sql.scan.* counters
  return out;
}

const char* ModeLabel(Mode mode) {
  switch (mode) {
    case Mode::kTpccOnly: return "tpcc_only";
    case Mode::kHybridPushdown: return "hybrid_pushdown";
    case Mode::kHybridNoPushdown: return "hybrid_nopushdown";
  }
  return "?";
}

}  // namespace

int main() {
  PrintHeader("Hybrid", "CH-benCHmark-style OLTP/OLAP mix",
              "mixed workloads motivate pushing operators into the storage "
              "layer (§5.2): with vectorized scan fragments the analytical "
              "response is O(groups) instead of O(rows), and chunked scans "
              "release the stripe locks so TPC-C keeps running");

  const bool quick = std::getenv("TELL_HYBRID_CHBENCH_QUICK") != nullptr;
  tpcc::TpccScale scale = BenchScale();
  if (quick) {
    scale.warehouses = 4;
    scale.districts_per_warehouse = 2;
    scale.customers_per_district = 8;
    scale.items = 50;
    scale.initial_orders_per_district = 8;
  }
  const uint64_t virtual_ms = quick ? 40 : kVirtualMs;
  const uint32_t workers = quick ? 2 : kWorkersPerPn;
  const uint32_t scan_chunk_cells = quick ? 16 : 256;

  BenchJson json("hybrid_chbench");
  json.AddConfig("warehouses", static_cast<uint64_t>(scale.warehouses));
  json.AddConfig("scan_chunk_cells", static_cast<uint64_t>(scan_chunk_cells));
  json.AddConfig("olap_query_kinds", static_cast<uint64_t>(kNumOlapQueries));

  std::printf("%-18s %10s %12s %10s %14s %16s\n", "mode", "tpmc", "wall_tps",
              "olap_qps", "olap B/query", "chunk releases");

  double baseline_wall_tps = 0.0;
  double bytes_per_query_on = 0.0;
  double bytes_per_query_off = 0.0;
  uint64_t releases_on = 0;
  for (Mode mode : {Mode::kTpccOnly, Mode::kHybridPushdown,
                    Mode::kHybridNoPushdown}) {
    RunOutcome out = RunMode(mode, scale, scan_chunk_cells, virtual_ms,
                             workers);
    double olap_qps = out.wall_seconds > 0.0
                          ? static_cast<double>(out.olap.queries) /
                                out.wall_seconds
                          : 0.0;
    double bytes_per_query =
        out.olap.queries > 0 ? static_cast<double>(out.olap.bytes_received) /
                                   static_cast<double>(out.olap.queries)
                             : 0.0;
    double dip_pct = 0.0;
    if (mode == Mode::kTpccOnly) {
      baseline_wall_tps = out.driver.wall_tps;
    } else if (baseline_wall_tps > 0.0) {
      dip_pct = (baseline_wall_tps - out.driver.wall_tps) /
                baseline_wall_tps * 100.0;
    }
    if (mode == Mode::kHybridPushdown) {
      bytes_per_query_on = bytes_per_query;
      releases_on = out.olap.chunk_lock_releases;
    }
    if (mode == Mode::kHybridNoPushdown) bytes_per_query_off = bytes_per_query;

    std::printf("%-18s %10.0f %12.0f %10.1f %14.0f %16llu\n",
                ModeLabel(mode), out.driver.tpmc, out.driver.wall_tps,
                olap_qps, bytes_per_query,
                static_cast<unsigned long long>(
                    out.olap.chunk_lock_releases));

    auto derived = DerivedOf(out.driver);
    derived.emplace_back("olap_queries",
                         static_cast<double>(out.olap.queries));
    derived.emplace_back("olap_qps", olap_qps);
    derived.emplace_back("olap_bytes_per_query", bytes_per_query);
    derived.emplace_back("olap_rows_scanned",
                         static_cast<double>(out.olap.rows_scanned));
    derived.emplace_back("olap_rows_returned",
                         static_cast<double>(out.olap.rows_returned));
    derived.emplace_back("olap_bytes_saved",
                         static_cast<double>(out.olap.bytes_saved));
    derived.emplace_back("olap_chunk_lock_releases",
                         static_cast<double>(out.olap.chunk_lock_releases));
    derived.emplace_back("tpmc_dip_pct", dip_pct);
    json.AddMetrics(ModeLabel(mode), out.merged, std::move(derived));
  }

  // Shape gates (the acceptance contract of this suite): the vectorized
  // response is at least 10x smaller per query than shipping the rows, and
  // the chunked scans really dropped the stripe locks mid-query.
  double bytes_ratio = bytes_per_query_on > 0.0
                           ? bytes_per_query_off / bytes_per_query_on
                           : 0.0;
  json.AddConfig("olap_bytes_ratio", bytes_ratio);
  std::printf("\npushdown bytes ratio (off/on per query): %.1fx\n",
              bytes_ratio);
  if (bytes_ratio <= 10.0) {
    std::fprintf(stderr,
                 "FAIL: pushdown bytes ratio %.1fx <= 10x (on=%.0f B/query, "
                 "off=%.0f B/query)\n",
                 bytes_ratio, bytes_per_query_on, bytes_per_query_off);
    return 1;
  }
  if (releases_on == 0) {
    std::fprintf(stderr,
                 "FAIL: no chunk lock releases under the hybrid mix\n");
    return 1;
  }
  json.Write();
  PrintFooter();
  return 0;
}
