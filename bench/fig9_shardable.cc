// Figure 9: "TPC-C shardable" — remote new-order/payment replaced with
// single-warehouse equivalents. The workload partitioned databases were
// built for: VoltDB now wins, but Tell stays within ~12%.
#include "baselines/partitioned_serial_db.h"
#include "baselines/two_pc_partitioned_db.h"
#include "bench/bench_util.h"

using namespace tell;
using namespace tell::bench;

int main() {
  PrintHeader("Figure 9", "Throughput, TPC-C shardable mix, RF1 and RF3",
              "with zero cross-partition transactions VoltDB fulfills its "
              "scalability promise (1.43M TpmC RF1); Tell reaches 1.32M — "
              "11.7% less, 'the same ballpark'; MySQL barely improves");

  BenchJson json("fig9_shardable");
  json.AddConfig("mix", "shardable");
  json.AddConfig("virtual_ms", uint64_t{400});

  std::printf("%-22s %-4s %6s %12s\n", "system", "RF", "cores", "TpmC");
  double tell_peak[4] = {0}, volt_peak[4] = {0};
  for (uint32_t rf : {1u, 3u}) {
    db::TellDbOptions options;
    options.num_processing_nodes = 2;
    options.num_storage_nodes = 7;
    options.replication_factor = rf;
    TellFixture fixture(options, BenchScale());
    for (uint32_t pns : {2u, 4u, 8u}) {
      auto result = fixture.Run(pns, tpcc::Mix::kShardable);
      if (!result.ok()) continue;
      std::printf("%-22s %-4u %6u %12.0f\n", "Tell", rf, 22 + (pns - 1) * 8,
                  result->tpmc);
      json.Add("tell_rf" + std::to_string(rf) + "_pn" + std::to_string(pns),
               *result, fixture.db());
      tell_peak[rf] = std::max(tell_peak[rf], result->tpmc);
    }
  }
  for (uint32_t rf : {1u, 3u}) {
    for (uint32_t nodes : {3u, 7u, 11u}) {
      baselines::PartitionedSerialOptions options;
      options.replication_factor = rf;
      baselines::PartitionedSerialDb voltdb(BenchScale(), options);
      tpcc::DriverOptions driver;
      driver.scale = BenchScale();
      driver.mix = tpcc::Mix::kShardable;
      driver.num_workers = nodes * 4;
      driver.duration_virtual_ms = 400;
      auto result = tpcc::RunTpcc(&voltdb, driver);
      if (!result.ok()) continue;
      std::printf("%-22s %-4u %6u %12.0f\n", "VoltDB-style", rf, nodes * 8,
                  result->tpmc);
      json.Add("voltdb_rf" + std::to_string(rf) + "_n" + std::to_string(nodes),
               *result);
      volt_peak[rf] = std::max(volt_peak[rf], result->tpmc);
    }
  }
  for (uint32_t rf : {1u, 3u}) {
    for (uint32_t dns : {3u, 9u}) {
      baselines::TwoPcOptions options;
      options.num_data_nodes = dns;
      options.replication_factor = rf;
      baselines::TwoPcPartitionedDb mysql(BenchScale(), options);
      tpcc::DriverOptions driver;
      driver.scale = BenchScale();
      driver.mix = tpcc::Mix::kShardable;
      driver.num_workers = dns * 4;
      driver.duration_virtual_ms = 400;
      auto result = tpcc::RunTpcc(&mysql, driver);
      if (!result.ok()) continue;
      std::printf("%-22s %-4u %6u %12.0f\n", "MySQL-Cluster-style", rf,
                  dns * 8, result->tpmc);
      json.Add("mysql_rf" + std::to_string(rf) + "_dn" + std::to_string(dns),
               *result);
    }
  }
  std::printf("\nshape checks (paper: VoltDB wins on its home turf, Tell "
              "within ~12%%):\n");
  std::printf("  Tell RF1 peak / VoltDB RF1 peak: %.2f (paper 0.88)\n",
              tell_peak[1] / volt_peak[1]);
  std::printf("  Tell RF3 peak / VoltDB RF3 peak: %.2f\n",
              tell_peak[3] / volt_peak[3]);
  json.Write();
  PrintFooter();
  return 0;
}
