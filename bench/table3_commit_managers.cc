// Table 3: the commit manager is not a bottleneck — 1 to 4 managers give
// the same throughput and abort rate despite the 1 ms state-sync delay.
#include "bench/bench_util.h"

using namespace tell;
using namespace tell::bench;

int main() {
  PrintHeader("Table 3", "Commit managers (write-intensive, 8 PN, RF1)",
              "1/2/3/4 commit managers: 944k/941k/940k/944k TpmC, abort "
              "14.72/14.75/14.73/14.74% — flat; the 1 ms sync interval does "
              "not raise the abort rate");

  BenchJson json("table3_commit_managers");
  json.AddConfig("mix", "write_intensive");
  json.AddConfig("replication_factor", uint64_t{1});
  json.AddConfig("commit_manager_sync_ms", 1.0);
  json.AddConfig("virtual_ms", uint64_t{kVirtualMs});

  std::printf("%-16s %12s %10s %14s\n", "Commit Managers", "TpmC", "abort%",
              "cm_bytes/txn");
  for (uint32_t cms : {1u, 2u, 3u, 4u}) {
    db::TellDbOptions options;
    options.num_processing_nodes = 1;
    options.num_storage_nodes = 7;
    options.num_commit_managers = cms;
    options.replication_factor = 1;
    options.commit_manager_sync_ms = 1.0;
    TellFixture fixture(options, BenchScale());
    auto result = fixture.Run(8, tpcc::Mix::kWriteIntensive);
    if (!result.ok()) {
      std::printf("%-16u run failed: %s\n", cms,
                  result.status().ToString().c_str());
      continue;
    }
    const double bytes_per_txn =
        static_cast<double>(result->merged.cm_bytes) /
        static_cast<double>(result->committed + result->aborted);
    std::printf("%-16u %12.0f %9.2f%% %14.1f\n", cms, result->tpmc,
                result->abort_rate * 100, bytes_per_txn);
    auto derived = DerivedOf(*result);
    derived.emplace_back("cm_bytes_per_txn", bytes_per_txn);
    json.AddMetrics("cm" + std::to_string(cms), result->merged,
                    std::move(derived), fixture.db());
  }
  std::printf("\nshape checks: TpmC and abort rate stay flat across manager "
              "counts — the commit manager component is not a bottleneck.\n");
  json.Write();
  PrintFooter();
  return 0;
}
