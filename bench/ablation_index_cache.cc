// Ablation: B+tree inner-node caching (paper §5.3.1 — "all index nodes
// with exception of the leaf level are cached"). Without the cache every
// index traversal pays one round trip per tree level instead of one for
// the leaf.
#include "bench/bench_util.h"

using namespace tell;
using namespace tell::bench;

int main() {
  PrintHeader("Ablation", "Index inner-node caching (write-intensive, 8 PN)",
              "§5.3.1: caching inner nodes improves traversal speed and "
              "minimizes storage system requests; leaves are always fetched "
              "fresh");

  BenchJson json("ablation_index_cache");
  json.AddConfig("mix", "write_intensive");
  json.AddConfig("virtual_ms", uint64_t{kVirtualMs});

  std::printf("%-10s %12s %16s %14s\n", "cache", "TpmC", "requests/txn",
              "resp(ms)");
  double with = 0, without = 0;
  for (bool cache : {true, false}) {
    db::TellDbOptions options;
    options.num_processing_nodes = 1;
    options.num_storage_nodes = 7;
    options.btree.cache_inner_nodes = cache;
    TellFixture fixture(options, BenchScale());
    auto result = fixture.Run(8, tpcc::Mix::kWriteIntensive);
    if (!result.ok()) continue;
    double requests_per_txn =
        static_cast<double>(result->merged.storage_requests) /
        static_cast<double>(result->committed + result->aborted);
    std::printf("%-10s %12.0f %16.1f %14.3f\n", cache ? "on" : "off",
                result->tpmc, requests_per_txn, result->mean_response_ms);
    json.Add(cache ? "cache_on" : "cache_off", *result, fixture.db());
    (cache ? with : without) = result->tpmc;
  }
  std::printf("\nshape checks: caching on / off = %.2fx\n", with / without);
  json.Write();
  PrintFooter();
  return 0;
}
