// Extension bench: the cost of SERIALIZABLE snapshot isolation (the paper's
// §4.1 future-work item, implemented as commit-time read-set validation).
// Under TPC-C: one extra batched read round per read-write transaction,
// plus aborts whenever a concurrently committed write invalidates a read.
#include "bench/bench_util.h"

using namespace tell;
using namespace tell::bench;

int main() {
  PrintHeader("Extension", "Serializable SI (§4.1, future work implemented)",
              "snapshot isolation admits write skew; serializable mode "
              "validates the read set at commit — measurable but modest "
              "overhead under TPC-C (whose transactions are mostly "
              "read-modify-write on the records they lock anyway)");

  BenchJson json("ablation_serializable");
  json.AddConfig("mix", "write_intensive");
  json.AddConfig("virtual_ms", uint64_t{kVirtualMs});

  std::printf("%-14s %12s %10s %12s\n", "isolation", "TpmC", "abort%",
              "resp(ms)");
  for (bool serializable : {false, true}) {
    db::TellDbOptions options;
    options.num_processing_nodes = 1;
    options.num_storage_nodes = 7;
    TellFixture fixture(options, BenchScale());
    fixture.EnsureProcessingNodes(8);
    tx::TxnOptions txn_options;
    txn_options.serializable = serializable;
    tpcc::TellBackend backend(fixture.db(), txn_options);
    tpcc::DriverOptions driver;
    driver.scale = BenchScale();
    driver.mix = tpcc::Mix::kWriteIntensive;
    driver.num_workers = 8 * kWorkersPerPn;
    driver.duration_virtual_ms = kVirtualMs;
    auto result = tpcc::RunTpcc(&backend, driver);
    if (!result.ok()) {
      std::printf("%-14s failed: %s\n",
                  serializable ? "serializable" : "snapshot",
                  result.status().ToString().c_str());
      continue;
    }
    std::printf("%-14s %12.0f %9.2f%% %12.3f\n",
                serializable ? "serializable" : "snapshot", result->tpmc,
                result->abort_rate * 100, result->mean_response_ms);
    json.Add(serializable ? "serializable" : "snapshot", *result,
             fixture.db());
  }
  std::printf("\nshape checks: serializable costs one validation round per "
              "read-write commit and some additional aborts.\n");
  json.Write();
  PrintFooter();
  return 0;
}
