// Observability smoke bench: the smallest TPC-C run that exercises the full
// metrics pipeline — worker metrics, phase tracing, node-side stats, JSON
// export. Fast enough to run under ctest, where
// tools/check_bench_json.py validates the BENCH_obs_smoke.json it writes.
#include "bench/bench_util.h"

using namespace tell;
using namespace tell::bench;

int main() {
  PrintHeader("Smoke", "Observability pipeline (tiny TPC-C run)",
              "not a paper figure — emits BENCH_obs_smoke.json so the JSON "
              "schema checker has a fast artifact to validate");

  tpcc::TpccScale scale;
  scale.warehouses = 2;
  scale.districts_per_warehouse = 10;
  scale.customers_per_district = 8;
  scale.items = 64;
  scale.initial_orders_per_district = 4;

  BenchJson json("obs_smoke");
  json.AddConfig("mix", "write_intensive");
  json.AddConfig("warehouses", uint64_t{2});
  json.AddConfig("virtual_ms", uint64_t{20});

  db::TellDbOptions options;
  options.num_processing_nodes = 1;
  options.num_storage_nodes = 3;
  TellFixture fixture(options, scale);
  auto result = fixture.Run(1, tpcc::Mix::kWriteIntensive,
                            /*workers_per_pn=*/2, /*virtual_ms=*/20);
  if (!result.ok()) {
    std::fprintf(stderr, "run failed: %s\n",
                 result.status().ToString().c_str());
    return 1;
  }
  std::printf("committed %llu, aborted %llu, TpmC %.0f\n",
              static_cast<unsigned long long>(result->committed),
              static_cast<unsigned long long>(result->aborted),
              result->tpmc);
  const obs::MetricsSnapshot& snap =
      json.Add("smoke", *result, fixture.db());
  PrintPhaseBreakdown(snap);
  json.Write();
  PrintFooter();
  return 0;
}
