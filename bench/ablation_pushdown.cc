// Extension bench: operator push-down (paper §5.2 — implemented here as the
// paper's "promising direction for future work"). An analytical query with
// a selective WHERE over a large table: without push-down the PN pulls the
// whole table over the network ("data is shipped to the query"); with
// push-down the aggregate runs as vectorized scan fragments on the storage
// nodes and only O(groups) partial states travel.
// Quick mode: set TELL_PUSHDOWN_QUICK=1 (the ctest round trip).
#include <cstdio>
#include <cstdlib>

#include "bench/bench_util.h"

using namespace tell;
using namespace tell::bench;

namespace {

void Populate(db::TellDb* db, int rows) {
  auto session = db->OpenSession(0, 0);
  auto table = *db->GetTable(0, "events");
  tx::Transaction* txn = nullptr;
  std::unique_ptr<tx::Transaction> owner;
  Random rng(3);
  for (int i = 0; i < rows; ++i) {
    if (i % 512 == 0) {
      if (owner) (void)owner->Commit();
      owner = std::make_unique<tx::Transaction>(session.get());
      (void)owner->Begin();
      txn = owner.get();
    }
    schema::Tuple row(3);
    row.Set(0, static_cast<int64_t>(i));
    row.Set(1, rng.UniformInt(0, 99));  // selectivity knob
    row.Set(2, rng.AlphaString(120, 120));
    (void)txn->Insert(table, row, false);
  }
  if (owner) (void)owner->Commit();
}

}  // namespace

int main() {
  PrintHeader("Extension", "Operator push-down (§5.2, future work implemented)",
              "pushing selection into the storage layer reduces the result "
              "set size and the amount of data sent over the network — the "
              "prerequisite for efficient mixed (OLTP+OLAP) workloads");

  const bool quick = std::getenv("TELL_PUSHDOWN_QUICK") != nullptr;
  const int kRows = quick ? 1500 : 8000;
  const int kQueries = quick ? 2 : 5;
  BenchJson json("ablation_pushdown");
  json.AddConfig("rows", static_cast<uint64_t>(kRows));
  json.AddConfig("queries", static_cast<uint64_t>(kQueries));
  std::printf("%-10s %14s %14s %16s\n", "pushdown", "MB received",
              "requests", "virtual ms/query");
  for (bool pushdown : {false, true}) {
    db::TellDbOptions options;
    options.num_storage_nodes = 7;
    options.operator_pushdown = pushdown;
    db::TellDb db(options);
    if (!db.ExecuteDdl("CREATE TABLE events (id INT, class INT, payload "
                       "VARCHAR(120), PRIMARY KEY (id))")
             .ok()) {
      return 1;
    }
    Populate(&db, kRows);
    auto session = db.OpenSession(0, 1);
    uint64_t bytes_before = session->metrics()->bytes_received;
    uint64_t requests_before = session->metrics()->storage_requests;
    uint64_t t0 = session->clock()->now_ns();
    for (int q = 0; q < kQueries; ++q) {
      // Selective analytical query: ~3% of the table matches.
      auto result = db.AutoCommitSql(
          session.get(),
          "SELECT COUNT(*), AVG(id) FROM events WHERE class < 3");
      if (!result.ok()) {
        std::fprintf(stderr, "query: %s\n",
                     result.status().ToString().c_str());
        return 1;
      }
    }
    double mb_received =
        static_cast<double>(session->metrics()->bytes_received -
                            bytes_before) /
        (1 << 20);
    uint64_t requests =
        session->metrics()->storage_requests - requests_before;
    double virtual_ms_per_query =
        static_cast<double>(session->clock()->now_ns() - t0) / 1e6 / kQueries;
    std::printf("%-10s %14.2f %14llu %16.2f\n", pushdown ? "on" : "off",
                mb_received, static_cast<unsigned long long>(requests),
                virtual_ms_per_query);
    json.AddMetrics(
        pushdown ? "pushdown_on" : "pushdown_off", *session->metrics(),
        {{"mb_received", mb_received},
         {"query_requests", static_cast<double>(requests)},
         {"virtual_ms_per_query", virtual_ms_per_query},
         // Vectorized-scan accounting (0 on the row path): cells examined on
         // the nodes vs partial states shipped, and the response bytes the
         // fragment path avoided.
         {"rows_scanned",
          static_cast<double>(session->metrics()->scan_rows_scanned)},
         {"rows_returned",
          static_cast<double>(session->metrics()->scan_rows_returned)},
         {"bytes_saved",
          static_cast<double>(session->metrics()->scan_bytes_saved)}});
  }
  std::printf("\nshape checks: push-down cuts transferred bytes by roughly "
              "the query's selectivity and shortens the query.\n");
  json.Write();
  PrintFooter();
  return 0;
}
