// Ablation: commit manager synchronization interval (paper §4.2/§6.3.3).
// Stale snapshots are legitimate — they only raise the conflict
// probability. The paper found 1 ms harmless.
#include "bench/bench_util.h"

using namespace tell;
using namespace tell::bench;

int main() {
  PrintHeader("Ablation",
              "Commit manager sync interval (write-intensive, 8 PN, 2 CMs)",
              "§6.3.3: a 1 ms synchronization delay causes no significant "
              "impact on throughput or abort rate; only much longer delays "
              "should hurt");

  BenchJson json("ablation_sync_interval");
  json.AddConfig("mix", "write_intensive");
  json.AddConfig("commit_managers", uint64_t{2});
  json.AddConfig("virtual_ms", uint64_t{kVirtualMs});

  std::printf("%-14s %12s %10s\n", "interval(ms)", "TpmC", "abort%");
  for (double interval : {0.1, 1.0, 10.0, 50.0}) {
    db::TellDbOptions options;
    options.num_processing_nodes = 1;
    options.num_storage_nodes = 7;
    options.num_commit_managers = 2;
    options.commit_manager_sync_ms = interval;
    TellFixture fixture(options, BenchScale());
    auto result = fixture.Run(8, tpcc::Mix::kWriteIntensive);
    if (!result.ok()) {
      std::printf("%-14.1f failed: %s\n", interval,
                  result.status().ToString().c_str());
      continue;
    }
    std::printf("%-14.1f %12.0f %9.2f%%\n", interval, result->tpmc,
                result->abort_rate * 100);
    char label[32];
    std::snprintf(label, sizeof(label), "interval_%.1fms", interval);
    json.Add(label, *result, fixture.db());
  }
  std::printf("\nshape checks: throughput and abort rate flat at ~1 ms, "
              "degradation only at much longer intervals.\n");
  json.Write();
  PrintFooter();
  return 0;
}
