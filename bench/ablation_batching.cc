// Ablation: request batching/pipelining (paper §5.1 — "Tell aggressively
// batches operations"). Without batching every logical operation pays a
// full sequential round trip; the pipelined mode additionally coalesces
// independent requests of one worker into one message per SN and overlaps
// the round trips (async StorageClient pipeline).
#include "bench/bench_util.h"

using namespace tell;
using namespace tell::bench;

int main() {
  PrintHeader("Ablation", "Request batching (write-intensive, RF1, 8 PN)",
              "§5.1: batching several operations into one request (and "
              "issuing requests to distinct SNs in parallel) is a key "
              "technique for minimizing network requests; the pipelined "
              "mode measures the overlap, not just the message count");

  BenchJson json("ablation_batching");
  json.AddConfig("mix", "write_intensive");
  json.AddConfig("replication_factor", uint64_t{1});
  json.AddConfig("virtual_ms", uint64_t{kVirtualMs});

  struct Config {
    const char* name;
    const char* label;
    bool batching;
    bool pipelining;
  };
  const Config configs[] = {
      {"off", "batching_off", false, false},
      {"on", "batching_on", true, false},
      {"pipelined", "pipelined", true, true},
  };

  std::printf("%-10s %12s %16s %14s\n", "mode", "TpmC", "requests/txn",
              "resp(ms)");
  double sync = 0, batched = 0, pipelined = 0;
  for (const Config& config : configs) {
    db::TellDbOptions options;
    options.num_processing_nodes = 1;
    options.num_storage_nodes = 7;
    options.batching = config.batching;
    options.pipelining = config.pipelining;
    TellFixture fixture(options, BenchScale());
    auto result = fixture.Run(8, tpcc::Mix::kWriteIntensive);
    if (!result.ok()) continue;
    double requests_per_txn =
        static_cast<double>(result->merged.storage_requests) /
        static_cast<double>(result->committed + result->aborted);
    std::printf("%-10s %12.0f %16.1f %14.3f\n", config.name, result->tpmc,
                requests_per_txn, result->mean_response_ms);
    json.Add(config.label, *result, fixture.db());
    if (config.pipelining) {
      pipelined = result->tpmc;
    } else if (config.batching) {
      batched = result->tpmc;
    } else {
      sync = result->tpmc;
    }
  }
  std::printf("\nshape checks: batching on / off = %.2fx\n", batched / sync);
  std::printf("shape checks: pipelined / synchronous = %.2fx (expect >= 2x)\n",
              pipelined / sync);
  json.Write();
  PrintFooter();
  return 0;
}
