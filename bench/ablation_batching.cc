// Ablation: request batching on/off (paper §5.1 — "Tell aggressively
// batches operations"). Without batching every logical operation pays a
// full sequential round trip.
#include "bench/bench_util.h"

using namespace tell;
using namespace tell::bench;

int main() {
  PrintHeader("Ablation", "Request batching (write-intensive, RF1, 8 PN)",
              "§5.1: batching several operations into one request (and "
              "issuing requests to distinct SNs in parallel) is a key "
              "technique for minimizing network requests");

  BenchJson json("ablation_batching");
  json.AddConfig("mix", "write_intensive");
  json.AddConfig("replication_factor", uint64_t{1});
  json.AddConfig("virtual_ms", uint64_t{kVirtualMs});

  std::printf("%-10s %12s %16s %14s\n", "batching", "TpmC", "requests/txn",
              "resp(ms)");
  double with = 0, without = 0;
  for (bool batching : {true, false}) {
    db::TellDbOptions options;
    options.num_processing_nodes = 1;
    options.num_storage_nodes = 7;
    options.batching = batching;
    TellFixture fixture(options, BenchScale());
    auto result = fixture.Run(8, tpcc::Mix::kWriteIntensive);
    if (!result.ok()) continue;
    double requests_per_txn =
        static_cast<double>(result->merged.storage_requests) /
        static_cast<double>(result->committed + result->aborted);
    std::printf("%-10s %12.0f %16.1f %14.3f\n", batching ? "on" : "off",
                result->tpmc, requests_per_txn, result->mean_response_ms);
    json.Add(batching ? "batching_on" : "batching_off", *result,
             fixture.db());
    (batching ? with : without) = result->tpmc;
  }
  std::printf("\nshape checks: batching on / off = %.2fx\n", with / without);
  json.Write();
  PrintFooter();
  return 0;
}
