// Ablation: thread-per-core executor runtime (docs/RUNTIME.md).
// The paper's processing nodes turn many concurrent client sessions into
// pipelined storage traffic (§4.1); the legacy driver models a session as a
// blocking OS thread, so in-flight transactions = OS threads and the
// PR-5 striped storage engine never sees more runnable work than cores
// unless the OS oversubscribes. The executor runtime breaks that coupling:
// workers become fiber tasks that park at pipeline flushes and
// commit-manager begins, multiplexed onto a fixed pool of core-pinned
// executor threads with per-core run queues and work stealing.
//
// This bench sweeps executor threads 1/2/4/8 x in-flight transactions and
// reports both axes:
//   * wall_tps (host-dependent, real concurrency) — should scale with
//     executor threads on a multi-core host until cores or contention run
//     out; `host_cores` in the config makes 1-core hosts interpretable.
//   * virtual-time TpmC (host-independent) — must stay in the same band as
//     the legacy driver: the modelled costs per worker do not change with
//     the scheduler.
// A legacy thread-per-worker baseline per in-flight count anchors the
// comparison, and the exec.* scheduler gauges (yields, steals, parks,
// per-core busy time) land in the artifact next to the per-core exec<i>
// node rows.
//
// Quick mode: set TELL_EXECUTOR_QUICK=1 for a small sweep (used by the
// ctest JSON round trip, where wall-clock budget matters more).
#include <cstdlib>
#include <thread>

#include "bench/bench_util.h"

using namespace tell;
using namespace tell::bench;

namespace {

void PrintRow(const char* label, uint32_t threads, uint32_t workers,
              const tpcc::DriverResult& r) {
  const exec::RuntimeStats& es = r.exec_stats;
  const double util =
      (es.threads > 0 && es.wall_ns > 0)
          ? static_cast<double>(es.Total(
                &exec::RuntimeStats::PerCore::busy_ns)) /
                (static_cast<double>(es.threads) * es.wall_ns)
          : 0.0;
  std::printf("%-12s %8u %8u %12.0f %9.2f%% %10.3f %10.0f %10llu %8llu %7.0f%%\n",
              label, threads, workers, r.tpmc, r.abort_rate * 100,
              r.wall_seconds, r.wall_tps,
              static_cast<unsigned long long>(
                  es.Total(&exec::RuntimeStats::PerCore::yields)),
              static_cast<unsigned long long>(
                  es.Total(&exec::RuntimeStats::PerCore::steals)),
              util * 100);
}

}  // namespace

int main() {
  const bool quick = std::getenv("TELL_EXECUTOR_QUICK") != nullptr;
  const unsigned cores = std::thread::hardware_concurrency();

  PrintHeader("Ablation", "Thread-per-core executor runtime "
              "(workers as fiber tasks vs thread-per-worker)",
              "PNs multiplex many sessions into pipelined storage traffic; "
              "decoupling in-flight transactions from OS threads lets "
              "wall-clock throughput scale with executor threads");

  const uint64_t virtual_ms = quick ? 30 : kVirtualMs;
  const std::vector<uint32_t> thread_counts =
      quick ? std::vector<uint32_t>{1, 2} : std::vector<uint32_t>{1, 2, 4, 8};
  // In-flight transactions = PNs x workers-per-PN; 2 PNs fixed so the
  // pipeline coalescing pattern matches the paper benches.
  const uint32_t pns = 2;
  const std::vector<uint32_t> workers_per_pn_counts =
      quick ? std::vector<uint32_t>{4} : std::vector<uint32_t>{4, 16};

  BenchJson json("ablation_executor");
  json.AddConfig("mix", "write_intensive");
  json.AddConfig("processing_nodes", uint64_t{pns});
  json.AddConfig("virtual_ms", virtual_ms);
  json.AddConfig("host_cores", uint64_t{cores});
  json.AddConfig("quick", quick ? uint64_t{1} : uint64_t{0});

  std::printf("%-12s %8s %8s %12s %10s %10s %10s %10s %8s %8s\n", "driver",
              "threads", "inflight", "TpmC", "abort%", "wall_s", "wall_tps",
              "yields", "steals", "util");

  // One fresh fixture per sweep point (the ablation_storage_stripes idiom):
  // the driver reuses the seed, so re-running on mutated data replays the
  // same keys into changed state and the abort rate stops meaning anything.
  auto run_point = [&](uint32_t wpp, uint32_t threads)
      -> Result<tpcc::DriverResult> {
    db::TellDbOptions options;
    options.num_processing_nodes = pns;
    options.num_storage_nodes = 3;
    TellFixture fixture(options, BenchScale());
    auto result =
        fixture.Run(pns, tpcc::Mix::kWriteIntensive, wpp, virtual_ms, threads);
    if (result.ok()) {
      json.Add((threads == 0
                    ? "legacy_w" + std::to_string(pns * wpp)
                    : "exec_t" + std::to_string(threads) + "_w" +
                          std::to_string(pns * wpp)),
               *result, fixture.db());
    }
    return result;
  };

  // wall_tps by executor thread count, for the shape check (last in-flight
  // sweep, i.e. the most loaded one).
  std::vector<std::pair<uint32_t, double>> wall_curve;
  for (uint32_t wpp : workers_per_pn_counts) {
    const uint32_t inflight = pns * wpp;
    wall_curve.clear();

    auto legacy = run_point(wpp, 0);
    if (!legacy.ok()) {
      std::fprintf(stderr, "legacy run failed: %s\n",
                   legacy.status().ToString().c_str());
      return 1;
    }
    PrintRow("legacy", 0, inflight, *legacy);

    for (uint32_t threads : thread_counts) {
      auto result = run_point(wpp, threads);
      if (!result.ok()) {
        std::fprintf(stderr, "executor run failed: %s\n",
                     result.status().ToString().c_str());
        return 1;
      }
      PrintRow("executor", threads, inflight, *result);
      wall_curve.emplace_back(threads, result->wall_tps);
    }
  }

  // Shape check on the most loaded sweep: wall_tps should rise 1 -> 4
  // executor threads where the hardware can actually run them in parallel.
  double tps_1 = 0, tps_top = 0;
  uint32_t top_threads = 0;
  for (const auto& [threads, tps] : wall_curve) {
    if (threads == 1) tps_1 = tps;
    if (threads <= 4 && threads > top_threads) {
      top_threads = threads;
      tps_top = tps;
    }
  }
  if (tps_1 > 0 && top_threads > 1) {
    std::printf("\nshape checks: wall_tps, %u executor threads / 1 thread = "
                "%.2fx on %u core(s) — expect a monotonic rise 1->4 threads "
                "on multi-core hosts; on a single core the extra threads "
                "only add scheduler handoffs, so the curve is flat to "
                "slightly negative there (host_cores in the artifact says "
                "which regime this is)\n",
                top_threads, tps_top / tps_1, cores);
  }
  std::printf("shape checks: virtual TpmC and abort rate stay flat across "
              "executor thread counts — parking is free in virtual time. "
              "Versus the legacy driver the abort rate can differ at high "
              "in-flight counts: preemptive OS interleaving opens conflict "
              "windows anywhere, while tasks only switch at park points, so "
              "the executor sees fewer write-write conflicts.\n");

  json.Write();
  PrintFooter();
  return 0;
}
