// Figure 5: processing scale-out under the write-intensive (standard) TPC-C
// mix, replication factors 1-3, 7 storage nodes, 1 commit manager.
#include "bench/bench_util.h"

using namespace tell;
using namespace tell::bench;

int main() {
  PrintHeader("Figure 5", "Scale-out processing (write-intensive)",
              "RF1 throughput grows 143k->958k TpmC from 1 to 8 PNs "
              "(sub-linear: warehouse contention; abort rate 2.91%->14.72%); "
              "RF3 costs ~63% of throughput under the write-heavy mix");

  BenchJson json("fig5_scaleout_write");
  json.AddConfig("mix", "write_intensive");
  json.AddConfig("storage_nodes", uint64_t{7});
  json.AddConfig("workers_per_pn", uint64_t{kWorkersPerPn});
  json.AddConfig("virtual_ms", uint64_t{kVirtualMs});

  std::printf("%-4s %-4s %12s %10s %12s\n", "RF", "PN", "TpmC", "abort%",
              "resp(ms)");
  double rf1_at[9] = {0};
  double rf3_peak = 0, rf1_peak = 0;
  for (uint32_t rf : {1u, 2u, 3u}) {
    db::TellDbOptions options;
    options.num_processing_nodes = 1;
    options.num_storage_nodes = 7;
    options.num_commit_managers = 1;
    options.replication_factor = rf;
    TellFixture fixture(options, BenchScale());
    for (uint32_t pns : {1u, 2u, 4u, 8u}) {
      auto result = fixture.Run(pns, tpcc::Mix::kWriteIntensive);
      if (!result.ok()) {
        std::printf("%-4u %-4u run failed: %s\n", rf, pns,
                    result.status().ToString().c_str());
        continue;
      }
      std::printf("%-4u %-4u %12.0f %9.2f%% %12.3f\n", rf, pns, result->tpmc,
                  result->abort_rate * 100, result->mean_response_ms);
      json.Add("rf" + std::to_string(rf) + "_pn" + std::to_string(pns),
               *result, fixture.db());
      if (rf == 1) {
        rf1_at[pns] = result->tpmc;
        rf1_peak = std::max(rf1_peak, result->tpmc);
      }
      if (rf == 3) rf3_peak = std::max(rf3_peak, result->tpmc);
    }
  }
  std::printf("\nshape checks:\n");
  std::printf("  RF1 8PN/1PN speedup: %.1fx   (paper: 6.7x)\n",
              rf1_at[8] / rf1_at[1]);
  std::printf("  RF3 peak vs RF1 peak: -%.0f%%  (paper: -63.2%%)\n",
              (1.0 - rf3_peak / rf1_peak) * 100);
  json.Write();
  PrintFooter();
  return 0;
}
