// Ablation: commit manager tid range size (paper §4.2). Ranges keep the
// shared tid counter off the critical path; but a continuous range also
// delays snapshot-base advancement (tids of the range stay "incomplete"
// until assigned), which the paper notes raises the abort rate.
#include "bench/bench_util.h"

using namespace tell;
using namespace tell::bench;

int main() {
  PrintHeader("Ablation", "Tid range size (write-intensive, 8 PN, 2 CMs)",
              "§4.2: continuous tid ranges avoid a counter bottleneck but "
              "larger ranges can raise the abort rate (the paper chose 256; "
              "interleaved ranges are its future work)");

  BenchJson json("ablation_tid_ranges");
  json.AddConfig("mix", "write_intensive");
  json.AddConfig("commit_managers", uint64_t{2});
  json.AddConfig("commit_manager_sync_ms", 1.0);
  json.AddConfig("virtual_ms", uint64_t{kVirtualMs});

  std::printf("%-12s %12s %10s\n", "range size", "TpmC", "abort%");
  for (uint32_t range : {1u, 16u, 256u, 4096u}) {
    db::TellDbOptions options;
    options.num_processing_nodes = 1;
    options.num_storage_nodes = 7;
    options.num_commit_managers = 2;
    options.commit_manager.tid_range_size = range;
    options.commit_manager_sync_ms = 1.0;
    TellFixture fixture(options, BenchScale());
    auto result = fixture.Run(8, tpcc::Mix::kWriteIntensive);
    if (!result.ok()) {
      std::printf("%-12u failed: %s\n", range,
                  result.status().ToString().c_str());
      continue;
    }
    std::printf("%-12u %12.0f %9.2f%%\n", range, result->tpmc,
                result->abort_rate * 100);
    json.Add("range_" + std::to_string(range), *result, fixture.db());
  }
  {
    // Future-work variant: interleaved tids (§4.2, after Tu et al. [58]).
    db::TellDbOptions options;
    options.num_processing_nodes = 1;
    options.num_storage_nodes = 7;
    options.num_commit_managers = 2;
    options.commit_manager.interleaved_tids = true;
    options.commit_manager_sync_ms = 1.0;
    TellFixture fixture(options, BenchScale());
    auto result = fixture.Run(8, tpcc::Mix::kWriteIntensive);
    if (result.ok()) {
      std::printf("%-12s %12.0f %9.2f%%\n", "interleaved", result->tpmc,
                  result->abort_rate * 100);
      json.Add("interleaved", *result, fixture.db());
    }
  }
  std::printf(
      "\nshape checks: range size itself is flat (the counter is never the\n"
      "bottleneck at this scale). The interleaved variant removes the shared\n"
      "counter but makes every other tid belong to the peer manager, so the\n"
      "snapshot base only advances at sync rounds — with a 1 ms interval\n"
      "that measurably raises staleness aborts. The paper expected\n"
      "interleaving to help; in this reproduction its benefit is contingent\n"
      "on a much shorter sync interval (documented in EXPERIMENTS.md).\n");
  json.Write();
  PrintFooter();
  return 0;
}
