// Figure 6: processing scale-out under the read-intensive TPC-C mix.
// Reads are served by the master copy only, so replication barely hurts.
#include "bench/bench_util.h"

using namespace tell;
using namespace tell::bench;

int main() {
  PrintHeader("Figure 6", "Scale-out processing (read-intensive)",
              "under the 95% read mix RF3 costs only ~25.7% vs RF1 (reads "
              "are not replicated; only the rare writes pay)");

  BenchJson json("fig6_scaleout_read");
  json.AddConfig("mix", "read_intensive");
  json.AddConfig("storage_nodes", uint64_t{7});
  json.AddConfig("workers_per_pn", uint64_t{kWorkersPerPn});
  json.AddConfig("virtual_ms", uint64_t{kVirtualMs});

  std::printf("%-4s %-4s %12s %10s %12s\n", "RF", "PN", "Tps", "abort%",
              "resp(ms)");
  double rf1_peak = 0, rf3_peak = 0;
  for (uint32_t rf : {1u, 2u, 3u}) {
    db::TellDbOptions options;
    options.num_processing_nodes = 1;
    options.num_storage_nodes = 7;
    options.replication_factor = rf;
    TellFixture fixture(options, BenchScale());
    for (uint32_t pns : {1u, 2u, 4u, 8u}) {
      auto result = fixture.Run(pns, tpcc::Mix::kReadIntensive);
      if (!result.ok()) {
        std::printf("%-4u %-4u run failed: %s\n", rf, pns,
                    result.status().ToString().c_str());
        continue;
      }
      std::printf("%-4u %-4u %12.0f %9.2f%% %12.3f\n", rf, pns, result->tps,
                  result->abort_rate * 100, result->mean_response_ms);
      json.Add("rf" + std::to_string(rf) + "_pn" + std::to_string(pns),
               *result, fixture.db());
      if (rf == 1) rf1_peak = std::max(rf1_peak, result->tps);
      if (rf == 3) rf3_peak = std::max(rf3_peak, result->tps);
    }
  }
  std::printf("\nshape checks:\n");
  std::printf("  RF3 peak vs RF1 peak: -%.0f%%  (paper: -25.7%%; "
              "write-heavy mix in Fig 5 loses far more)\n",
              (1.0 - rf3_peak / rf1_peak) * 100);
  json.Write();
  PrintFooter();
  return 0;
}
