// Ablation: delta-encoded snapshot descriptors + group begin/commit
// (DESIGN.md "Snapshot delta sync & group begin/commit"). The commit
// manager's start() response carries the snapshot descriptor — a base plus
// a bitset of completed tids that the paper sizes at ~13 KB under load
// (§4.2) — on EVERY begin, and setCommitted/setAborted each paid their own
// round trip. The delta protocol acknowledges the last received state and
// ships only the increment; group begin/commit piggybacks the finish
// notifications on the worker's next begin. This bench measures the
// commit-manager bytes and messages per transaction with each optimization
// toggled, at worker counts where the descriptor window is wide (many
// in-flight transactions across several managers hold the base back).
//
// Quick mode: set TELL_SNAPSHOT_DELTA_QUICK=1 to run a small sweep (used by
// the ctest JSON round trip, where wall-clock matters more than the sweep).
#include <cstdlib>

#include "bench/bench_util.h"

using namespace tell;
using namespace tell::bench;

namespace {

struct Mode {
  const char* name;
  bool delta;
  bool batching;
};

}  // namespace

int main() {
  const bool quick = std::getenv("TELL_SNAPSHOT_DELTA_QUICK") != nullptr;

  PrintHeader("Ablation", "Snapshot delta sync + group begin/commit "
              "(write-intensive, 4 CM, RF1)",
              "every begin used to ship the full snapshot descriptor and "
              "every finish its own round trip; delta encoding + batching "
              "cut commit-manager bytes/txn by >= 2x at 32 workers");

  BenchJson json("ablation_snapshot_delta");
  json.AddConfig("mix", "write_intensive");
  json.AddConfig("replication_factor", uint64_t{1});
  json.AddConfig("commit_managers", uint64_t{4});
  json.AddConfig("commit_manager_sync_ms", 1.0);
  // Wider tid ranges than the 256 default: the paper sizes the descriptor
  // bitset at ~13 KB under production load (§4.2); the scaled-down
  // population would otherwise keep the completed window — and with it the
  // full-descriptor cost the delta protocol avoids — unrealistically small.
  json.AddConfig("tid_range_size", uint64_t{1024});
  json.AddConfig("virtual_ms", uint64_t{quick ? 30 : kVirtualMs});
  json.AddConfig("quick", uint64_t{quick ? 1 : 0});

  const Mode modes[] = {
      {"off", false, false},
      {"delta_only", true, false},
      {"batch_only", false, true},
      {"on", true, true},
  };

  // Worker count = PNs x kWorkersPerPn. The full sweep measures 8 and 32
  // workers; the descriptor window (and with it the full-descriptor cost)
  // widens with concurrency, so the saving grows with the worker count.
  std::vector<uint32_t> pn_counts = quick ? std::vector<uint32_t>{1}
                                          : std::vector<uint32_t>{2, 8};

  std::printf("%-12s %8s %12s %10s %14s %12s\n", "mode", "workers", "TpmC",
              "abort%", "cm_bytes/txn", "cm_msgs/txn");
  double off_bytes_32 = 0, on_bytes_32 = 0;
  for (uint32_t pns : pn_counts) {
    for (const Mode& mode : modes) {
      // The full-vs-delta comparison only matters at the top worker count;
      // run the intermediate points with the endpoints of the ladder.
      if (pns != pn_counts.back() && mode.delta != mode.batching) continue;
      db::TellDbOptions options;
      options.num_processing_nodes = 1;
      options.num_storage_nodes = 7;
      options.num_commit_managers = 4;
      options.replication_factor = 1;
      options.commit_manager_sync_ms = 1.0;
      options.commit_manager.tid_range_size = 1024;
      options.session.commit_delta = mode.delta;
      options.session.commit_batching = mode.batching;
      TellFixture fixture(options, BenchScale());
      auto result = fixture.Run(pns, tpcc::Mix::kWriteIntensive, kWorkersPerPn,
                                quick ? 30 : kVirtualMs);
      if (!result.ok()) {
        std::printf("%-12s %8u run failed: %s\n", mode.name,
                    pns * kWorkersPerPn, result.status().ToString().c_str());
        continue;
      }
      const uint32_t workers = pns * kWorkersPerPn;
      const double txns =
          static_cast<double>(result->committed + result->aborted);
      const double bytes_per_txn =
          static_cast<double>(result->merged.cm_bytes) / txns;
      const double msgs_per_txn =
          static_cast<double>(result->merged.cm_messages) / txns;
      std::printf("%-12s %8u %12.0f %9.2f%% %14.1f %12.2f\n", mode.name,
                  workers, result->tpmc, result->abort_rate * 100,
                  bytes_per_txn, msgs_per_txn);
      auto derived = DerivedOf(*result);
      derived.emplace_back("cm_bytes_per_txn", bytes_per_txn);
      derived.emplace_back("cm_msgs_per_txn", msgs_per_txn);
      json.AddMetrics(mode.name + std::string("_w") + std::to_string(workers),
                      result->merged, std::move(derived), fixture.db());
      if (pns == pn_counts.back()) {
        if (!mode.delta && !mode.batching) off_bytes_32 = bytes_per_txn;
        if (mode.delta && mode.batching) on_bytes_32 = bytes_per_txn;
      }
    }
  }
  if (on_bytes_32 > 0) {
    std::printf("\nshape checks: cm bytes/txn off / on = %.2fx at the top "
                "worker count (expect >= 2x)\n",
                off_bytes_32 / on_bytes_32);
    std::printf("shape checks: abort rates stay flat across modes — the "
                "delta protocol reconstructs the exact descriptor, so "
                "visibility (and with it the conflict pattern) is "
                "unchanged.\n");
  }
  json.Write();
  PrintFooter();
  return 0;
}
