// Chaos recovery bench (docs/RECOVERY.md): what fail-over and live
// migration cost under TPC-C load.
//
// Three runs on identical populations:
//   * baseline        — replicated commit slot (3 replicas), no faults;
//   * kill_leader     — the fault injector murders the commit-slot leader
//     twice mid-run (one begin lost, one ambiguous begin whose response
//     dies with the leader). Clients elect a successor deterministically
//     and resume; recovery_time_ms is the modelled leader outage — the
//     election timeout every election charged to the electing worker —
//     and kills_injected counts the fired kill rules;
//   * migrate_under_load — a stock partition's master copy moves to
//     another storage node while the workload runs (bulk copy, catch-up
//     deltas, freeze/seal cut-over). migration_dip_pct is the committed-
//     throughput dip vs the baseline run on the same virtual window.
//
// tools/check_bench_json.py enforces the coherence of the new derived
// fields (recovery_time_ms > 0 iff kills_injected > 0, dip bounded) and
// tools/bench_compare.py treats both as lower-is-better.
//
// Quick mode: set TELL_CHAOS_RECOVERY_QUICK=1 (the ctest round trip).
#include <cstdlib>
#include <thread>

#include "bench/bench_util.h"
#include "sim/fault_injector.h"
#include "workload/tpcc/tpcc_schema.h"

using namespace tell;
using namespace tell::bench;

namespace {

void PrintRow(const char* run, const tpcc::DriverResult& r, double extra,
              const char* extra_name) {
  std::printf("%-18s %12.0f %12.2f %9.2f%%   %s=%.3f\n", run, r.tpmc, r.tps,
              r.abort_rate * 100, extra_name, extra);
}

}  // namespace

int main() {
  const bool quick = std::getenv("TELL_CHAOS_RECOVERY_QUICK") != nullptr;

  PrintHeader("Chaos", "Leader fail-over and live partition migration "
              "under TPC-C",
              "the commit manager concentrates snapshot/ordering authority "
              "(§4.2); replicating it and migrating partitions online are "
              "what \"no single point of failure, elastic scale\" costs — "
              "measured here as recovery time and throughput dip");

  const uint64_t virtual_ms = quick ? 30 : kVirtualMs;
  const uint32_t workers = quick ? 4 : 8;
  tpcc::TpccScale scale = BenchScale();
  if (quick) {
    scale.warehouses = 4;
    scale.customers_per_district = 8;
    scale.items = 100;
    scale.initial_orders_per_district = 8;
  }

  BenchJson json("chaos_recovery");
  json.AddConfig("mix", "write_intensive");
  json.AddConfig("workers", uint64_t{workers});
  json.AddConfig("virtual_ms", virtual_ms);
  json.AddConfig("commit_replicas", uint64_t{3});
  json.AddConfig("quick", quick ? uint64_t{1} : uint64_t{0});

  double baseline_tps = 0;  // set by the first run, read by the migrate run
  auto run_one = [&](sim::FaultInjector* injector, bool migrate,
                     double* out_tps) -> int {
    db::TellDbOptions options;
    options.commit_replication.replicas = 3;
    options.fault_injector = injector;
    if (injector != nullptr) injector->Disarm();  // not during the load
    TellFixture fixture(options, scale);
    tpcc::TellBackend backend(fixture.db());
    tpcc::DriverOptions driver;
    driver.scale = scale;
    driver.mix = tpcc::Mix::kWriteIntensive;
    driver.num_workers = workers;
    driver.duration_virtual_ms = virtual_ms;

    // The migration races the workload on real threads: pick the stock
    // partition that owns warehouse 1 and move its master one node over
    // while the drivers run. Frozen-window writes bounce into the client
    // retry loop; the dip is whatever that plus the copy traffic costs.
    std::thread migrator;
    if (migrate) {
      auto tables = tpcc::OpenTpccTables(fixture.db(), 0);
      if (!tables.ok()) {
        std::fprintf(stderr, "open tables failed: %s\n",
                     tables.status().ToString().c_str());
        return 1;
      }
      const store::TableId stock = tables->stock->meta->data_table;
      store::Cluster* cluster = fixture.db()->cluster();
      auto placement = cluster->partition_map().PlacementOf(stock, 0);
      if (!placement.ok()) {
        std::fprintf(stderr, "placement lookup failed\n");
        return 1;
      }
      const uint32_t dest = (placement->master + 1) % cluster->num_nodes();
      migrator = std::thread([db = fixture.db(), stock, dest] {
        Status st = db->management()->MigratePartition(stock, 0, dest);
        if (!st.ok()) {
          std::fprintf(stderr, "migration failed: %s\n",
                       st.ToString().c_str());
        }
      });
    }
    if (injector != nullptr) injector->Arm();
    auto result = tpcc::RunTpcc(&backend, driver);
    if (injector != nullptr) injector->Disarm();
    if (migrator.joinable()) migrator.join();
    if (!result.ok()) {
      std::fprintf(stderr, "run failed: %s\n",
                   result.status().ToString().c_str());
      return 1;
    }
    if (out_tps != nullptr) *out_tps = result->tps;

    const char* label = injector != nullptr ? "kill_leader"
                        : migrate          ? "migrate_under_load"
                                           : "baseline";
    auto derived = DerivedOf(*result);
    if (injector != nullptr) {
      // Modelled leader outage: every election charged its timeout to the
      // electing worker's virtual clock (docs/RECOVERY.md "Elections").
      const commitmgr::GroupReplicationStats repl =
          fixture.db()->commit_managers()->ReplStats();
      const double recovery_ms =
          static_cast<double>(repl.elections) *
          static_cast<double>(options.commit_replication.election_timeout_ns) /
          1e6;
      derived.emplace_back("recovery_time_ms", recovery_ms);
      derived.emplace_back(
          "kills_injected",
          static_cast<double>(injector->stats().leader_kills));
      derived.emplace_back("elections", static_cast<double>(repl.elections));
      PrintRow(label, *result, recovery_ms, "recovery_time_ms");
    } else if (migrate) {
      const double dip_pct =
          baseline_tps > 0
              ? (baseline_tps - result->tps) / baseline_tps * 100.0
              : 0.0;
      derived.emplace_back("migration_dip_pct", dip_pct);
      PrintRow(label, *result, dip_pct, "migration_dip_pct");
      const store::MigrationStats mig =
          fixture.db()->management()->migration_stats();
      std::printf("  migration: %llu completed, %llu cells copied, "
                  "%llu delta rounds\n",
                  static_cast<unsigned long long>(mig.completed),
                  static_cast<unsigned long long>(mig.cells_copied),
                  static_cast<unsigned long long>(mig.delta_rounds));
    } else {
      PrintRow(label, *result, 0.0, "recovery_time_ms");
    }
    json.AddMetrics(label, result->merged, std::move(derived), fixture.db());
    return 0;
  };

  std::printf("%-18s %12s %12s %10s\n", "run", "TpmC", "tps", "abort%");

  if (run_one(nullptr, false, &baseline_tps) != 0) return 1;

  // Two leader kills: one begin killed before it executes (request lost),
  // one ambiguous (executed, then the leader dies holding the response —
  // the begin token resolves it on the successor). Skips land them inside
  // the measured window; with 3 replicas a live leader always remains.
  sim::FaultInjector injector(sim::FaultPlan{
      .seed = 0xC40C0FFE,
      .rules = {
          sim::FaultRule{.kind = sim::FaultRule::Kind::kKillCommitLeader,
                         .op = sim::FaultOpClass::kCommitMgrStart,
                         .skip_matches = 8,
                         .probability = 1.0,
                         .max_fires = 1},
          sim::FaultRule{.kind = sim::FaultRule::Kind::kKillCommitLeader,
                         .op = sim::FaultOpClass::kCommitMgrStart,
                         .skip_matches = 80,
                         .probability = 1.0,
                         .max_fires = 1},
          sim::FaultRule{.kind = sim::FaultRule::Kind::kDropResponse,
                         .op = sim::FaultOpClass::kCommitMgrStart,
                         .skip_matches = 80,
                         .probability = 1.0,
                         .max_fires = 1},
      }});
  if (run_one(&injector, false, nullptr) != 0) return 1;

  double migrate_tps = 0;
  if (run_one(nullptr, true, &migrate_tps) != 0) return 1;
  std::printf("\nmigration window: committed tps %.1f -> %.1f vs baseline\n",
              baseline_tps, migrate_tps);

  json.Write();
  PrintFooter();
  return 0;
}
