// Ablation: lock-striped storage-node engine (DESIGN.md "Storage engine").
// The paper's storage layer is RamCloud — a hash table built to absorb
// requests from many processing-node workers at once (§4, §6.1). The old
// engine guarded each table partition with ONE shared_mutex over one
// std::map, so every write to a partition serialized even for disjoint
// keys; the striped engine splits each partition into N independently
// locked stripes selected by key hash. This bench measures the effect on
// the REAL-concurrency axis — wall-clock throughput of real threads — which
// virtual time deliberately cannot see:
//
//   * write-heavy micro: W threads hammer Put/Get on disjoint keys of one
//     partition of one StorageNode, stripe count 1/4/16/64 x 8/32 workers.
//     With one stripe every op pays a contended lock handoff; with 64 the
//     fast path is an uncontended try_lock.
//   * TPC-C write-intensive mix on the full database, stripes 1 vs 64: the
//     virtual-time TpmC and abort rate must stay flat (the modelled costs
//     and the LL/SC conflict pattern do not change), while wall-clock
//     elapsed improves with contention removed.
//
// The contention counters (`store.node.stripe_conflicts`,
// `store.node.lock_wait_ns`) land in the JSON artifact alongside the new
// wall-clock derived fields (wall_seconds, wall_ops_per_sec / wall_tps).
//
// Quick mode: set TELL_STORAGE_STRIPES_QUICK=1 for a small sweep (used by
// the ctest JSON round trip, where wall-clock budget matters more).
#include <chrono>
#include <cstdlib>
#include <thread>

#include "bench/bench_util.h"
#include "store/storage_node.h"

using namespace tell;
using namespace tell::bench;

namespace {

struct MicroResult {
  double wall_seconds = 0;
  double ops_per_sec = 0;
  store::StorageNodeStats node_stats;
};

/// Write-heavy micro: `workers` threads, each issuing `ops_per_worker`
/// operations (90% Put / 10% Get, per-thread LCG) over its own pre-built
/// key set within ONE partition. Keys are disjoint across threads, so all
/// contention is lock contention, not LL/SC conflict. Keys are inserted
/// before timing starts so every rep measures the steady-state overwrite
/// path, and the best of `reps` timings is kept (scheduler noise on a busy
/// host only ever slows a rep down).
MicroResult RunMicro(uint32_t stripes, uint32_t workers,
                     uint32_t ops_per_worker, uint32_t reps) {
  store::StorageNode node(0, 1ULL << 30, stripes);
  node.CreatePartition(1, 0);

  constexpr uint32_t kKeysPerWorker = 512;
  const std::string value(16, 'v');
  std::vector<std::vector<std::string>> keys(workers);
  for (uint32_t w = 0; w < workers; ++w) {
    keys[w].reserve(kKeysPerWorker);
    for (uint32_t k = 0; k < kKeysPerWorker; ++k) {
      keys[w].push_back("t" + std::to_string(w) + "_k" + std::to_string(k));
      (void)node.Put(1, 0, keys[w].back(), value);
    }
  }

  MicroResult r;
  for (uint32_t rep = 0; rep < reps; ++rep) {
    std::vector<std::thread> threads;
    threads.reserve(workers);
    const auto start = std::chrono::steady_clock::now();
    for (uint32_t w = 0; w < workers; ++w) {
      threads.emplace_back([&, w] {
        uint64_t rng = 0x9E3779B97F4A7C15ULL ^ (w + 1);
        const std::vector<std::string>& my_keys = keys[w];
        for (uint32_t i = 0; i < ops_per_worker; ++i) {
          rng = rng * 6364136223846793005ULL + 1442695040888963407ULL;
          const std::string& key = my_keys[(rng >> 33) % kKeysPerWorker];
          if ((rng >> 8) % 10 == 0) {
            (void)node.Get(1, 0, key);
          } else {
            (void)node.Put(1, 0, key, value);
          }
        }
      });
    }
    for (std::thread& thread : threads) thread.join();
    const double wall = std::chrono::duration<double>(
                            std::chrono::steady_clock::now() - start)
                            .count();
    if (rep == 0 || wall < r.wall_seconds) r.wall_seconds = wall;
  }
  r.ops_per_sec = r.wall_seconds > 0
                      ? static_cast<double>(workers) * ops_per_worker /
                            r.wall_seconds
                      : 0;
  r.node_stats = node.stats();
  return r;
}

}  // namespace

int main() {
  const bool quick = std::getenv("TELL_STORAGE_STRIPES_QUICK") != nullptr;

  PrintHeader("Ablation", "Lock-striped storage-node engine "
              "(write-heavy micro + TPC-C write mix)",
              "RamCloud absorbs concurrent requests per partition; one lock "
              "per partition serializes disjoint-key writes — striping "
              "restores >= 2x wall-clock throughput at 32 workers");

  BenchJson json("ablation_storage_stripes");
  const uint32_t ops_per_worker = quick ? 4000 : 20000;
  const uint32_t reps = quick ? 1 : 3;
  const unsigned cores = std::thread::hardware_concurrency();
  json.AddConfig("micro_ops_per_worker", uint64_t{ops_per_worker});
  json.AddConfig("micro_reps", uint64_t{reps});
  json.AddConfig("host_cores", uint64_t{cores});
  json.AddConfig("micro_mix", "90% put / 10% get, disjoint keys");
  json.AddConfig("tpcc_mix", "write_intensive");
  json.AddConfig("virtual_ms", uint64_t{quick ? 30 : kVirtualMs});
  json.AddConfig("quick", uint64_t{quick ? 1 : 0});

  const std::vector<uint32_t> stripe_counts =
      quick ? std::vector<uint32_t>{1, 64} : std::vector<uint32_t>{1, 4, 16, 64};
  const std::vector<uint32_t> worker_counts =
      quick ? std::vector<uint32_t>{8} : std::vector<uint32_t>{8, 32};

  // --- Part 1: write-heavy micro on one storage node --------------------
  std::printf("write-heavy micro (one partition, disjoint keys)\n");
  std::printf("%-8s %8s %14s %12s %14s %14s\n", "stripes", "workers",
              "wall_ops/s", "wall_s", "conflicts", "lock_wait_ms");
  double ops_1_stripe_top = 0, ops_max_stripe_top = 0;
  for (uint32_t workers : worker_counts) {
    for (uint32_t stripes : stripe_counts) {
      MicroResult r = RunMicro(stripes, workers, ops_per_worker, reps);
      std::printf("%-8u %8u %14.0f %12.3f %14llu %14.2f\n", stripes, workers,
                  r.ops_per_sec, r.wall_seconds,
                  static_cast<unsigned long long>(
                      r.node_stats.stripe_conflicts),
                  static_cast<double>(r.node_stats.lock_wait_ns) / 1e6);
      sim::WorkerMetrics merged;
      merged.storage_ops =
          static_cast<uint64_t>(workers) * ops_per_worker;
      std::vector<std::pair<std::string, double>> derived = {
          {"wall_seconds", r.wall_seconds},
          {"wall_ops_per_sec", r.ops_per_sec},
          {"stripe_conflicts",
           static_cast<double>(r.node_stats.stripe_conflicts)},
          {"lock_wait_ms",
           static_cast<double>(r.node_stats.lock_wait_ns) / 1e6},
      };
      json.AddMetrics("micro_s" + std::to_string(stripes) + "_w" +
                          std::to_string(workers),
                      merged, std::move(derived));
      if (workers == worker_counts.back()) {
        if (stripes == 1) ops_1_stripe_top = r.ops_per_sec;
        if (stripes == stripe_counts.back()) ops_max_stripe_top = r.ops_per_sec;
      }
    }
  }

  // --- Part 2: TPC-C write mix on the full database ---------------------
  std::printf("\nTPC-C write-intensive (virtual TpmC must stay flat; wall "
              "axis moves)\n");
  std::printf("%-8s %8s %12s %10s %12s %12s\n", "stripes", "workers", "TpmC",
              "abort%", "wall_s", "wall_tps");
  const std::vector<uint32_t> pn_counts =
      quick ? std::vector<uint32_t>{1} : std::vector<uint32_t>{2, 8};
  for (uint32_t pns : pn_counts) {
    for (uint32_t stripes : {1u, 64u}) {
      db::TellDbOptions options;
      options.num_processing_nodes = 1;
      options.num_storage_nodes = 3;
      options.stripes_per_partition = stripes;
      TellFixture fixture(options, BenchScale());
      auto result = fixture.Run(pns, tpcc::Mix::kWriteIntensive, kWorkersPerPn,
                                quick ? 30 : kVirtualMs);
      const uint32_t workers = pns * kWorkersPerPn;
      if (!result.ok()) {
        std::printf("%-8u %8u run failed: %s\n", stripes, workers,
                    result.status().ToString().c_str());
        continue;
      }
      std::printf("%-8u %8u %12.0f %9.2f%% %12.3f %12.0f\n", stripes, workers,
                  result->tpmc, result->abort_rate * 100, result->wall_seconds,
                  result->wall_tps);
      json.Add("tpcc_s" + std::to_string(stripes) + "_w" +
                   std::to_string(workers),
               *result, fixture.db());
    }
  }

  if (ops_1_stripe_top > 0) {
    std::printf("\nshape checks: micro wall ops/s, %u stripes / 1 stripe at "
                "%u workers = %.2fx on %u core(s) — expect >= 2x on "
                "multi-core hosts; on a single core blocked writers cost "
                "only context switches, not lost parallelism, so the gap "
                "narrows\n",
                stripe_counts.back(), worker_counts.back(),
                ops_max_stripe_top / ops_1_stripe_top, cores);
    std::printf("shape checks: TPC-C virtual TpmC and abort rate flat across "
                "stripe counts — stamps stay monotonic and scans keep exact "
                "order, so visibility and conflicts are unchanged; only the "
                "wall-clock axis moves.\n");
  }
  json.Write();
  PrintFooter();
  return 0;
}
