// Figure 8: TPC-C standard mix (11.25% cross-partition transactions), RF3,
// Tell vs the three comparator architectures, swept over cluster size
// ("total CPU cores" on the paper's x-axis).
#include "baselines/central_validation_db.h"
#include "baselines/partitioned_serial_db.h"
#include "baselines/two_pc_partitioned_db.h"
#include "bench/bench_util.h"

using namespace tell;
using namespace tell::bench;

namespace {

Result<tpcc::DriverResult> RunBaseline(tpcc::TpccBackend* backend,
                                       uint32_t workers) {
  tpcc::DriverOptions options;
  options.scale = BenchScale();
  options.mix = tpcc::Mix::kWriteIntensive;
  options.num_workers = workers;
  options.duration_virtual_ms = 400;
  return tpcc::RunTpcc(backend, options);
}

void Row(const char* system, uint32_t cores, double tpmc) {
  std::printf("%-22s %6u %12.0f\n", system, cores, tpmc);
}

}  // namespace

int main() {
  PrintHeader("Figure 8", "Throughput, TPC-C standard mix, RF3",
              "Tell scales with cores (374,894 TpmC @ 78 cores); MySQL "
              "Cluster flattens (83,524); VoltDB DEGRADES as nodes are "
              "added (23,183 — cross-partition txns stall every partition); "
              "FoundationDB scales but lands ~30x below Tell "
              "(2,706 @ 24 -> 10,047 @ 72 cores)");

  BenchJson json("fig8_vs_partitioned");
  json.AddConfig("mix", "write_intensive");
  json.AddConfig("replication_factor", uint64_t{3});
  json.AddConfig("virtual_ms", uint64_t{400});

  std::printf("%-22s %6s %12s\n", "system", "cores", "TpmC");
  double tell_peak = 0, volt_peak = 0, mysql_peak = 0, fdb_peak = 0;
  double volt_first = 0, volt_last = 0;

  {
    db::TellDbOptions options;
    options.num_processing_nodes = 2;
    options.num_storage_nodes = 7;
    options.replication_factor = 3;
    TellFixture fixture(options, BenchScale());
    for (uint32_t pns : {2u, 4u, 6u, 8u}) {
      auto result = fixture.Run(pns, tpcc::Mix::kWriteIntensive);
      if (!result.ok()) continue;
      // Paper core accounting: PN=4 cores each + 7 SN / CM / MN overheads.
      Row("Tell", 22 + (pns - 1) * 8, result->tpmc);
      json.Add("tell_pn" + std::to_string(pns), *result, fixture.db());
      tell_peak = std::max(tell_peak, result->tpmc);
    }
  }
  for (uint32_t nodes : {3u, 5u, 7u, 9u, 11u}) {
    baselines::PartitionedSerialOptions options;
    options.replication_factor = 3;
    // Multi-partition coordination spans more initiators on bigger
    // clusters.
    options.mp_service_ns = 1'500'000 + 300'000 * nodes;
    baselines::PartitionedSerialDb voltdb(BenchScale(), options);
    auto result = RunBaseline(&voltdb, nodes * 4);
    if (!result.ok()) continue;
    Row("VoltDB-style", nodes * 8, result->tpmc);
    json.Add("voltdb_n" + std::to_string(nodes), *result);
    volt_peak = std::max(volt_peak, result->tpmc);
    if (nodes == 3) volt_first = result->tpmc;
    if (nodes == 11) volt_last = result->tpmc;
  }
  for (uint32_t dns : {3u, 6u, 9u}) {
    baselines::TwoPcOptions options;
    options.num_data_nodes = dns;
    options.replication_factor = 3;
    baselines::TwoPcPartitionedDb mysql(BenchScale(), options);
    auto result = RunBaseline(&mysql, dns * 4);
    if (!result.ok()) continue;
    Row("MySQL-Cluster-style", dns * 8, result->tpmc);
    json.Add("mysql_dn" + std::to_string(dns), *result);
    mysql_peak = std::max(mysql_peak, result->tpmc);
  }
  for (uint32_t nodes : {3u, 6u, 9u}) {
    baselines::CentralValidationOptions options;
    options.num_storage_servers = nodes;
    baselines::CentralValidationDb fdb(BenchScale(), options);
    auto result = RunBaseline(&fdb, nodes * 8);
    if (!result.ok()) continue;
    Row("FoundationDB-style", nodes * 8, result->tpmc);
    json.Add("fdb_n" + std::to_string(nodes), *result);
    fdb_peak = std::max(fdb_peak, result->tpmc);
  }

  std::printf("\nshape checks (paper: Tell/MySQL 4.5x, Tell/VoltDB 16x, "
              "Tell/FDB ~30x, VoltDB decreasing):\n");
  std::printf("  Tell peak / MySQL peak:  %5.1fx\n", tell_peak / mysql_peak);
  std::printf("  Tell peak / VoltDB peak: %5.1fx\n", tell_peak / volt_peak);
  std::printf("  Tell peak / FDB peak:    %5.1fx\n", tell_peak / fdb_peak);
  std::printf("  VoltDB 11-node vs 3-node: %+.0f%% (should be negative)\n",
              (volt_last / volt_first - 1.0) * 100);
  json.Write();
  PrintFooter();
  return 0;
}
