// Table 4: TPC-C transaction response times (mean ± σ) on a small and a
// large cluster, standard and shardable mixes, across the four systems.
//
// Single source of truth: every number printed below is read back from the
// obs::MetricsSnapshot that BenchJson::Add recorded — the stdout table and
// BENCH_table4_response_times.json can never disagree.
#include "baselines/central_validation_db.h"
#include "baselines/partitioned_serial_db.h"
#include "baselines/two_pc_partitioned_db.h"
#include "bench/bench_util.h"

using namespace tell;
using namespace tell::bench;

namespace {

void Row(const char* mix, const char* system, const char* size,
         const obs::MetricsSnapshot& snap) {
  const sim::Histogram* resp = snap.Hist("tx.response_time");
  if (resp == nullptr || resp->count() == 0) return;
  std::printf("%-10s %-22s %-7s %10.3f ± %-8.3f\n", mix, system, size,
              resp->Mean() / 1e6, resp->StdDev() / 1e6);
}

Result<tpcc::DriverResult> RunBackend(tpcc::TpccBackend* backend,
                                      tpcc::Mix mix, uint32_t workers) {
  tpcc::DriverOptions options;
  options.scale = BenchScale();
  options.mix = mix;
  options.num_workers = workers;
  options.duration_virtual_ms = 400;
  return tpcc::RunTpcc(backend, options);
}

}  // namespace

int main() {
  PrintHeader(
      "Table 4", "TPC-C transaction response times (mean ± σ, ms)",
      "standard mix — Tell 14±2 (small) / 21±41 (large); MySQL 34±40 / "
      "40±40; VoltDB 706±1561 / 4868+-1875 (multi-partition stalls); FDB "
      "149±138 / 192±138. Shardable — VoltDB drops to 62±59 / 68±59. "
      "Absolute values differ (scaled population & modelled cluster); the "
      "ORDER of the systems is the claim.");

  BenchJson json("table4_response_times");
  json.AddConfig("replication_factor", uint64_t{3});
  json.AddConfig("virtual_ms", uint64_t{400});

  std::printf("%-10s %-22s %-7s %12s\n", "mix", "system", "size",
              "resp ms (mean±σ)");
  for (bool large : {false, true}) {
    const char* size = large ? "large" : "small";
    const std::string suffix = std::string("_") + size;
    // Tell — standard and shardable.
    {
      db::TellDbOptions options;
      options.num_processing_nodes = large ? 8 : 2;
      options.num_storage_nodes = 7;
      options.replication_factor = 3;
      {
        TellFixture fixture(options, BenchScale());
        auto standard =
            fixture.Run(large ? 8 : 2, tpcc::Mix::kWriteIntensive);
        if (standard.ok()) {
          const obs::MetricsSnapshot& snap = json.Add(
              "tell_standard" + suffix, *standard, fixture.db());
          Row("standard", "Tell", size, snap);
          PrintPhaseBreakdown(snap);
        }
      }
      {
        TellFixture fixture(options, BenchScale());
        auto shard = fixture.Run(large ? 8 : 2, tpcc::Mix::kShardable);
        if (shard.ok()) {
          Row("shardable", "Tell", size,
              json.Add("tell_shardable" + suffix, *shard, fixture.db()));
        }
      }
      // Tell with the RDMA direction on: one-sided READs + the leased
      // client record cache (DESIGN.md "One-sided reads & client caching")
      // shave the read share of every transaction's response time.
      {
        db::TellDbOptions cached = options;
        cached.one_sided_reads = true;
        cached.record_cache.enabled = true;
        TellFixture fixture(cached, BenchScale());
        auto standard =
            fixture.Run(large ? 8 : 2, tpcc::Mix::kWriteIntensive);
        if (standard.ok()) {
          Row("standard", "Tell+1sided", size,
              json.Add("tell_onesided" + suffix, *standard, fixture.db()));
        }
      }
    }
    // VoltDB-style.
    {
      uint32_t nodes = large ? 9 : 3;
      baselines::PartitionedSerialOptions options;
      options.replication_factor = 3;
      options.mp_service_ns = 1'500'000 + 300'000 * nodes;
      baselines::PartitionedSerialDb voltdb(BenchScale(), options);
      auto standard =
          RunBackend(&voltdb, tpcc::Mix::kWriteIntensive, nodes * 4);
      if (standard.ok()) {
        Row("standard", "VoltDB-style", size,
            json.Add("voltdb_standard" + suffix, *standard));
      }
      baselines::PartitionedSerialDb voltdb2(BenchScale(), options);
      auto shard = RunBackend(&voltdb2, tpcc::Mix::kShardable, nodes * 4);
      if (shard.ok()) {
        Row("shardable", "VoltDB-style", size,
            json.Add("voltdb_shardable" + suffix, *shard));
      }
    }
    // MySQL-Cluster-style.
    {
      baselines::TwoPcOptions options;
      options.num_data_nodes = large ? 9 : 3;
      options.replication_factor = 3;
      baselines::TwoPcPartitionedDb mysql(BenchScale(), options);
      auto standard = RunBackend(&mysql, tpcc::Mix::kWriteIntensive,
                                 options.num_data_nodes * 4);
      if (standard.ok()) {
        Row("standard", "MySQL-Cluster-style", size,
            json.Add("mysql_standard" + suffix, *standard));
      }
    }
    // FoundationDB-style.
    {
      baselines::CentralValidationOptions options;
      options.num_storage_servers = large ? 9 : 3;
      baselines::CentralValidationDb fdb(BenchScale(), options);
      auto standard = RunBackend(&fdb, tpcc::Mix::kWriteIntensive,
                                 (large ? 9 : 3) * 8);
      if (standard.ok()) {
        Row("standard", "FoundationDB-style", size,
            json.Add("fdb_standard" + suffix, *standard));
      }
    }
  }
  std::printf("\nshape checks: Tell fastest; VoltDB's standard-mix latency "
              "explodes vs its shardable latency; FDB an order of magnitude "
              "above Tell.\n");
  json.Write();
  PrintFooter();
  return 0;
}
