// Figure 7: storage scale-out. 3/5/7 storage nodes deliver the same
// throughput (the storage layer is not the bottleneck); with 3 SNs the
// cluster runs out of MEMORY beyond 5 PNs — "storage resources should be
// determined by the required memory capacity, not the available CPU power".
#include "bench/bench_util.h"

using namespace tell;
using namespace tell::bench;

int main() {
  PrintHeader("Figure 7", "Scale-out storage (write-intensive, RF3)",
              "3/5/7 SNs: near-identical TpmC; 3-SN configuration cannot run "
              "beyond 5 PNs — the TPC-C inserts outgrow its memory");

  BenchJson json("fig7_scaleout_storage");
  json.AddConfig("mix", "write_intensive");
  json.AddConfig("replication_factor", uint64_t{3});
  json.AddConfig("memory_per_sn_mb", uint64_t{36});
  json.AddConfig("virtual_ms", uint64_t{250});

  std::printf("%-4s %-4s %12s %14s\n", "SN", "PN", "TpmC", "memory used");
  for (uint32_t sns : {3u, 5u, 7u}) {
    db::TellDbOptions options;
    options.num_processing_nodes = 1;
    options.num_storage_nodes = sns;
    options.replication_factor = 3;
    // Model the fixed DRAM budget: enough for the initial population plus
    // bounded growth. The 3-SN cluster has the least total memory and hits
    // the wall first as inserted orders accumulate.
    options.memory_per_storage_node = 36ULL << 20;  // 36 MB per node
    TellFixture fixture(options, BenchScale());
    for (uint32_t pns : {1u, 2u, 4u, 6u, 8u}) {
      auto result = fixture.Run(pns, tpcc::Mix::kWriteIntensive,
                                kWorkersPerPn, /*virtual_ms=*/250);
      if (!result.ok()) {
        std::printf("%-4u %-4u %12s (%s)\n", sns, pns, "—",
                    result.status().IsCapacityExceeded()
                        ? "out of memory — like the paper's 3-SN limit"
                        : result.status().ToString().c_str());
        break;
      }
      std::printf("%-4u %-4u %12.0f %11.1f MB\n", sns, pns, result->tpmc,
                  static_cast<double>(fixture.db()->cluster()->TotalMemoryUsed()) /
                      (1 << 20));
      json.Add("sn" + std::to_string(sns) + "_pn" + std::to_string(pns),
               *result, fixture.db());
    }
  }
  std::printf("\nshape checks: SN count barely moves TpmC until the memory "
              "wall; capacity, not CPU, sizes the storage layer.\n");
  json.Write();
  PrintFooter();
  return 0;
}
