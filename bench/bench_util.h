#ifndef TELL_BENCH_BENCH_UTIL_H_
#define TELL_BENCH_BENCH_UTIL_H_

#include <cstdio>
#include <memory>
#include <string>

#include "workload/tpcc/tpcc_driver.h"
#include "workload/tpcc/tpcc_loader.h"

namespace tell::bench {

/// The benchmark TPC-C population. The paper loads 200 warehouses on a
/// 12-server cluster; this reproduction runs the whole cluster inside one
/// process, so the population is scaled down (and with it the absolute
/// numbers) while keeping the per-warehouse shape — 10 districts, the
/// standard transaction mixes, NURand skew — that drives every effect the
/// figures show. EXPERIMENTS.md records paper-vs-measured per figure.
inline tpcc::TpccScale BenchScale() {
  tpcc::TpccScale scale;
  scale.warehouses = 16;
  scale.districts_per_warehouse = 10;
  scale.customers_per_district = 32;
  scale.items = 400;
  scale.initial_orders_per_district = 16;
  return scale;
}

/// Worker threads per processing node (the paper runs ~64 synchronous
/// threads per PN on 8 cores; this host has far fewer cores, so 4 per PN
/// keeps real-time scheduling artifacts small).
inline constexpr uint32_t kWorkersPerPn = 4;

/// Virtual measurement interval per worker (the paper measures 12 minutes;
/// throughput is a rate, so a shorter window only widens confidence bands).
inline constexpr uint64_t kVirtualMs = 150;

/// A loaded Tell cluster ready to run TPC-C sweeps. Processing nodes can be
/// added between runs (that is the architecture's elasticity story — no
/// reload needed when the PN count grows).
class TellFixture {
 public:
  TellFixture(db::TellDbOptions options, const tpcc::TpccScale& scale)
      : scale_(scale) {
    db_ = std::make_unique<db::TellDb>(options);
    Status st = tpcc::CreateTpccTables(db_.get());
    if (st.ok()) st = tpcc::LoadTpcc(db_.get(), scale_);
    if (!st.ok()) {
      std::fprintf(stderr, "fixture setup failed: %s\n",
                   st.ToString().c_str());
      std::abort();
    }
  }

  db::TellDb* db() { return db_.get(); }
  const tpcc::TpccScale& scale() const { return scale_; }

  void EnsureProcessingNodes(uint32_t n) {
    while (db_->num_processing_nodes() < n) db_->AddProcessingNode();
  }

  Result<tpcc::DriverResult> Run(uint32_t num_pns, tpcc::Mix mix,
                                 uint32_t workers_per_pn = kWorkersPerPn,
                                 uint64_t virtual_ms = kVirtualMs) {
    EnsureProcessingNodes(num_pns);
    tpcc::TellBackend backend(db_.get());
    tpcc::DriverOptions options;
    options.scale = scale_;
    options.mix = mix;
    options.num_workers = num_pns * workers_per_pn;
    options.duration_virtual_ms = virtual_ms;
    return tpcc::RunTpcc(&backend, options);
  }

 private:
  tpcc::TpccScale scale_;
  std::unique_ptr<db::TellDb> db_;
};

inline void PrintHeader(const char* id, const char* title,
                        const char* paper_claim) {
  std::printf("==============================================================\n");
  std::printf("%s — %s\n", id, title);
  std::printf("paper: %s\n", paper_claim);
  std::printf("==============================================================\n");
}

inline void PrintFooter() { std::printf("\n"); }

}  // namespace tell::bench

#endif  // TELL_BENCH_BENCH_UTIL_H_
