#ifndef TELL_BENCH_BENCH_UTIL_H_
#define TELL_BENCH_BENCH_UTIL_H_

#include <cstdio>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "obs/bench_export.h"
#include "workload/tpcc/tpcc_driver.h"
#include "workload/tpcc/tpcc_loader.h"

namespace tell::bench {

/// The benchmark TPC-C population. The paper loads 200 warehouses on a
/// 12-server cluster; this reproduction runs the whole cluster inside one
/// process, so the population is scaled down (and with it the absolute
/// numbers) while keeping the per-warehouse shape — 10 districts, the
/// standard transaction mixes, NURand skew — that drives every effect the
/// figures show. EXPERIMENTS.md records paper-vs-measured per figure.
inline tpcc::TpccScale BenchScale() {
  tpcc::TpccScale scale;
  scale.warehouses = 16;
  scale.districts_per_warehouse = 10;
  scale.customers_per_district = 32;
  scale.items = 400;
  scale.initial_orders_per_district = 16;
  return scale;
}

/// Worker threads per processing node (the paper runs ~64 synchronous
/// threads per PN on 8 cores; this host has far fewer cores, so 4 per PN
/// keeps real-time scheduling artifacts small).
inline constexpr uint32_t kWorkersPerPn = 4;

/// Virtual measurement interval per worker (the paper measures 12 minutes;
/// throughput is a rate, so a shorter window only widens confidence bands).
inline constexpr uint64_t kVirtualMs = 150;

/// A loaded Tell cluster ready to run TPC-C sweeps. Processing nodes can be
/// added between runs (that is the architecture's elasticity story — no
/// reload needed when the PN count grows).
class TellFixture {
 public:
  TellFixture(db::TellDbOptions options, const tpcc::TpccScale& scale)
      : scale_(scale) {
    db_ = std::make_unique<db::TellDb>(options);
    Status st = tpcc::CreateTpccTables(db_.get());
    if (st.ok()) st = tpcc::LoadTpcc(db_.get(), scale_);
    if (!st.ok()) {
      std::fprintf(stderr, "fixture setup failed: %s\n",
                   st.ToString().c_str());
      std::abort();
    }
  }

  db::TellDb* db() { return db_.get(); }
  const tpcc::TpccScale& scale() const { return scale_; }

  void EnsureProcessingNodes(uint32_t n) {
    while (db_->num_processing_nodes() < n) db_->AddProcessingNode();
  }

  /// `executor_threads` = 0 runs the legacy thread-per-worker driver; N>=1
  /// multiplexes the workers as fiber tasks onto N executor threads
  /// (docs/RUNTIME.md). The virtual-time numbers are the same either way;
  /// the wall axis and the exec.* scheduler gauges are what move.
  Result<tpcc::DriverResult> Run(uint32_t num_pns, tpcc::Mix mix,
                                 uint32_t workers_per_pn = kWorkersPerPn,
                                 uint64_t virtual_ms = kVirtualMs,
                                 uint32_t executor_threads = 0) {
    EnsureProcessingNodes(num_pns);
    tpcc::TellBackend backend(db_.get());
    tpcc::DriverOptions options;
    options.scale = scale_;
    options.mix = mix;
    options.num_workers = num_pns * workers_per_pn;
    options.duration_virtual_ms = virtual_ms;
    options.executor_threads = executor_threads;
    return tpcc::RunTpcc(&backend, options);
  }

 private:
  tpcc::TpccScale scale_;
  std::unique_ptr<db::TellDb> db_;
};

/// Derived key/value rows for one DriverResult (rates in the JSON "derived"
/// object; the counters/histograms come from the registry snapshot).
inline std::vector<std::pair<std::string, double>> DerivedOf(
    const tpcc::DriverResult& r) {
  std::vector<std::pair<std::string, double>> rows = {
      {"tpmc", r.tpmc},
      {"tps", r.tps},
      {"abort_rate", r.abort_rate},
      {"buffer_hit_rate", r.buffer_hit_rate},
      {"mean_response_ms", r.mean_response_ms},
      {"std_response_ms", r.std_response_ms},
      {"p50_response_ms", r.p50_response_ms},
      {"p95_response_ms", r.p95_response_ms},
      {"p99_response_ms", r.p99_response_ms},
      {"p999_response_ms", r.p999_response_ms},
      {"virtual_seconds", r.virtual_seconds},
      // Wall-clock axis (host-dependent, unlike everything above): how long
      // the run really took and the committed-txn rate in real time. This
      // is what real-thread scalability work (storage-engine striping)
      // moves; the virtual-time numbers deliberately cannot see it.
      {"wall_seconds", r.wall_seconds},
      {"wall_tps", r.wall_tps},
  };
  if (r.exec_stats.threads > 0) {
    // Executor runs: thread count next to the per-core exec<i> node rows
    // (check_bench_json.py cross-checks the two).
    rows.emplace_back("executor_threads",
                      static_cast<double>(r.exec_stats.threads));
  }
  return rows;
}

/// Collects every run of a bench binary into the BENCH_<name>.json artifact
/// (obs::BenchReport). Each Add() builds a fresh registry so runs do not
/// bleed into each other: the run's merged worker metrics are absorbed, and
/// — when the TellDb is supplied — the node-side gauges and the per-node
/// breakdown come from TellDb::ExportStats / PerNodeStats.
class BenchJson {
 public:
  explicit BenchJson(std::string name) : report_(std::move(name)) {}

  void AddConfig(std::string key, std::string value) {
    report_.AddConfig(std::move(key), std::move(value));
  }
  void AddConfig(std::string key, uint64_t value) {
    report_.AddConfig(std::move(key), std::to_string(value));
  }
  void AddConfig(std::string key, double value) {
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%g", value);
    report_.AddConfig(std::move(key), buf);
  }

  /// One sweep point backed by a full DriverResult (+ node stats if `db`).
  /// Returns the run's snapshot so callers can print FROM the registry data
  /// (the artifact and the stdout table then share one source of truth).
  /// Executor runs (result.exec_stats.threads > 0) additionally get the
  /// exec.* scheduler gauges and per-core `exec<i>` node rows.
  const obs::MetricsSnapshot& Add(const std::string& label,
                                  const tpcc::DriverResult& result,
                                  db::TellDb* db = nullptr) {
    return AddMetrics(label, result.merged, DerivedOf(result), db,
                      result.exec_stats.threads > 0 ? &result.exec_stats
                                                    : nullptr);
  }

  /// Lower-level entry for benches that aggregate WorkerMetrics themselves
  /// (micro benches, baseline engines without a TellDb).
  const obs::MetricsSnapshot& AddMetrics(
      const std::string& label, const sim::WorkerMetrics& merged,
      std::vector<std::pair<std::string, double>> derived = {},
      db::TellDb* db = nullptr,
      const exec::RuntimeStats* exec_stats = nullptr) {
    obs::MetricsRegistry registry;
    registry.AbsorbWorker(merged);
    obs::BenchRun run;
    run.label = label;
    run.derived = std::move(derived);
    if (db != nullptr) {
      db->ExportStats(&registry);
      run.nodes = db->PerNodeStats();
    }
    if (exec_stats != nullptr) {
      exec::ExportStats(*exec_stats, &registry);
      for (auto& row : exec::PerCoreRows(*exec_stats)) {
        run.nodes.push_back(std::move(row));
      }
    }
    run.snapshot = registry.Snapshot();
    report_.AddRun(std::move(run));
    return report_.last_run().snapshot;
  }

  /// Writes BENCH_<name>.json into the working directory and reports the
  /// path (or the error) on stdout.
  void Write() {
    auto path = report_.WriteFile();
    if (path.ok()) {
      std::printf("artifact: %s\n", path->c_str());
    } else {
      std::fprintf(stderr, "artifact write failed: %s\n",
                   path.status().ToString().c_str());
    }
  }

 private:
  obs::BenchReport report_;
};

/// Table-4-style per-phase response-time breakdown: one line per phase with
/// p50/p95/p99 of the virtual time a transaction spent in that phase.
inline void PrintPhaseLine(const char* name, const sim::Histogram& h) {
  std::printf("  %-14s %10.1f %10.1f %10.1f %10.1f\n", name, h.Mean() / 1e3,
              static_cast<double>(h.Percentile(50)) / 1e3,
              static_cast<double>(h.Percentile(95)) / 1e3,
              static_cast<double>(h.Percentile(99)) / 1e3);
}

inline void PrintPhaseHeader() {
  std::printf("  %-14s %10s %10s %10s %10s\n", "phase", "mean_us", "p50_us",
              "p95_us", "p99_us");
}

inline void PrintPhaseBreakdown(const sim::WorkerMetrics& merged) {
  PrintPhaseHeader();
  for (size_t p = 0; p < sim::kNumTxnPhases; ++p) {
    const sim::Histogram& h = merged.phase_ns[p];
    if (h.count() == 0) continue;
    PrintPhaseLine(sim::kTxnPhaseNames[p], h);
  }
}

/// Snapshot flavour: reads the tx.phase.* histograms back out of the
/// registry snapshot (exactly what the JSON artifact carries).
inline void PrintPhaseBreakdown(const obs::MetricsSnapshot& snapshot) {
  PrintPhaseHeader();
  for (size_t p = 0; p < sim::kNumTxnPhases; ++p) {
    std::string name = std::string("tx.phase.") + sim::kTxnPhaseNames[p];
    const sim::Histogram* h = snapshot.Hist(name);
    if (h == nullptr || h->count() == 0) continue;
    PrintPhaseLine(sim::kTxnPhaseNames[p], *h);
  }
}

inline void PrintHeader(const char* id, const char* title,
                        const char* paper_claim) {
  std::printf("==============================================================\n");
  std::printf("%s — %s\n", id, title);
  std::printf("paper: %s\n", paper_claim);
  std::printf("==============================================================\n");
}

inline void PrintFooter() { std::printf("\n"); }

}  // namespace tell::bench

#endif  // TELL_BENCH_BENCH_UTIL_H_
