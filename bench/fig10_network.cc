// Figure 10: InfiniBand vs 10 Gb Ethernet. Low-latency RDMA is THE enabling
// technology for the shared-data architecture: every PN<->SN interaction
// pays the network round trip, and the synchronous processing model turns
// latency directly into (lost) throughput.
#include "bench/bench_util.h"

using namespace tell;
using namespace tell::bench;

int main() {
  PrintHeader("Figure 10", "Network technology (write-intensive, RF1, 7 SN)",
              "InfiniBand gives >6x the TpmC of 10 GbE at every PN count "
              "(958,187 vs 151,079 at 8 PNs)");

  BenchJson json("fig10_network");
  json.AddConfig("mix", "write_intensive");
  json.AddConfig("replication_factor", uint64_t{1});
  json.AddConfig("storage_nodes", uint64_t{7});
  json.AddConfig("virtual_ms", uint64_t{kVirtualMs});

  std::printf("%-22s %-4s %12s %12s\n", "network", "PN", "TpmC", "resp(ms)");
  // Three series: plain two-sided on both networks (the paper's Fig. 10)
  // plus the RDMA direction — one-sided READs and the leased client record
  // cache — which only InfiniBand can exploit, widening the gap further.
  double ib_at[9] = {0}, eth_at[9] = {0}, ib_onesided_at[9] = {0};
  struct Series {
    const char* label;
    const char* display;
    bool infiniband;
    bool one_sided;
    double* at;
  };
  const Series series[] = {
      {"infiniband", "InfiniBand", true, false, ib_at},
      {"infiniband_onesided", "InfiniBand+1sided", true, true, ib_onesided_at},
      {"ethernet", "Ethernet", false, false, eth_at},
  };
  for (const Series& s : series) {
    db::TellDbOptions options;
    options.num_processing_nodes = 1;
    options.num_storage_nodes = 7;
    options.replication_factor = 1;
    options.network = s.infiniband ? sim::NetworkModel::InfiniBand()
                                   : sim::NetworkModel::TenGbEthernet();
    options.one_sided_reads = s.one_sided;
    options.record_cache.enabled = s.one_sided;
    TellFixture fixture(options, BenchScale());
    for (uint32_t pns : {1u, 2u, 4u, 8u}) {
      auto result = fixture.Run(pns, tpcc::Mix::kWriteIntensive);
      if (!result.ok()) continue;
      std::printf("%-22s %-4u %12.0f %12.3f\n", s.display, pns, result->tpmc,
                  result->mean_response_ms);
      json.Add(std::string(s.label) + "_pn" + std::to_string(pns), *result,
               fixture.db());
      s.at[pns] = result->tpmc;
    }
  }
  std::printf("\nshape checks (paper: >6x at every PN count; one-sided "
              "reads + caching widen it):\n");
  for (uint32_t pns : {1u, 2u, 4u, 8u}) {
    if (eth_at[pns] > 0) {
      std::printf("  PN=%u: InfiniBand/Ethernet = %.1fx, with one-sided "
                  "reads = %.1fx\n",
                  pns, ib_at[pns] / eth_at[pns],
                  ib_onesided_at[pns] / eth_at[pns]);
    }
  }
  json.Write();
  PrintFooter();
  return 0;
}
