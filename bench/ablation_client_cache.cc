// Ablation: lease-based client record caching + one-sided reads — the RDMA
// direction (DESIGN.md "One-sided reads & client caching"). On an RDMA-class
// network a read either hits the PN-shared record cache (no round trip at
// all) or travels as a one-sided READ that skips the kernel/software
// overhead AND the storage node's request dispatch. The cache helps any
// transport; the one-sided path exists only on RDMA-class models, so the
// full package widens InfiniBand's advantage over a plain (uncached,
// two-sided) Ethernet deployment — the Fig. 10 gap.
//
// Quick mode: set TELL_CLIENT_CACHE_QUICK=1 to run a small population and a
// short window (used by the ctest JSON round trip).
#include <cstdlib>

#include "bench/bench_util.h"

using namespace tell;
using namespace tell::bench;

int main() {
  const bool quick = std::getenv("TELL_CLIENT_CACHE_QUICK") != nullptr;
  const uint32_t pns = quick ? 1 : 4;
  const uint64_t virtual_ms = quick ? 30 : kVirtualMs;
  tpcc::TpccScale scale = BenchScale();
  if (quick) {
    scale.warehouses = 4;
    scale.customers_per_district = 8;
    scale.initial_orders_per_district = 4;
  }

  PrintHeader("Ablation",
              "Client record cache + one-sided reads (read-intensive)",
              "the RDMA direction beyond §5.1: leased caching and one-sided "
              "READs cut read latency on InfiniBand and widen the Fig. 10 "
              "IB-vs-Ethernet gap (no effect on kernel TCP)");

  BenchJson json("ablation_client_cache");
  json.AddConfig("mix", "read_intensive");
  json.AddConfig("storage_nodes", uint64_t{7});
  json.AddConfig("processing_nodes", uint64_t{pns});
  json.AddConfig("virtual_ms", virtual_ms);
  json.AddConfig("quick", uint64_t{quick ? 1 : 0});

  std::printf("%-12s %-6s %12s %10s %10s %10s %12s\n", "network", "cache",
              "TpmC", "hit_rate", "resp(ms)", "p95(ms)", "1sided_reads");
  double tpmc[2][2] = {{0, 0}, {0, 0}};
  double resp[2][2] = {{0, 0}, {0, 0}};
  for (bool infiniband : {true, false}) {
    for (bool cached : {true, false}) {
      db::TellDbOptions options;
      options.num_processing_nodes = 1;
      options.num_storage_nodes = 7;
      options.network = infiniband ? sim::NetworkModel::InfiniBand()
                                   : sim::NetworkModel::TenGbEthernet();
      options.record_cache.enabled = cached;
      // One package: the cache and the one-sided read path ship together.
      // The one-sided half is inert on kernel TCP (HasOneSidedReads gates
      // it); the cache half works on any transport.
      options.one_sided_reads = cached;
      TellFixture fixture(options, scale);
      auto result =
          fixture.Run(pns, tpcc::Mix::kReadIntensive, kWorkersPerPn,
                      virtual_ms);
      if (!result.ok()) continue;

      const sim::WorkerMetrics& m = result->merged;
      const double probes =
          static_cast<double>(m.cache_hits + m.cache_misses);
      const double hit_rate =
          probes > 0 ? static_cast<double>(m.cache_hits) / probes : 0.0;
      std::printf("%-12s %-6s %12.0f %10.3f %10.3f %10.3f %12llu\n",
                  options.network.name.c_str(), cached ? "on" : "off",
                  result->tpmc, hit_rate, result->mean_response_ms,
                  result->p95_response_ms,
                  static_cast<unsigned long long>(m.onesided_reads));

      auto derived = DerivedOf(*result);
      // Self-describing coherence hooks for tools/check_bench_json.py:
      // hit_rate must equal hits/(hits+misses), and a run whose network has
      // no one-sided support must report zero one-sided reads.
      derived.emplace_back("one_sided_capable",
                           options.network.HasOneSidedReads() ? 1.0 : 0.0);
      if (probes > 0) derived.emplace_back("cache_hit_rate", hit_rate);
      const std::string label = std::string(infiniband ? "ib" : "eth") +
                                (cached ? "_cache_on" : "_cache_off");
      json.AddMetrics(label, m, std::move(derived), fixture.db());
      tpmc[infiniband ? 0 : 1][cached ? 0 : 1] = result->tpmc;
      resp[infiniband ? 0 : 1][cached ? 0 : 1] = result->mean_response_ms;
    }
  }

  std::printf("\nshape checks:\n");
  if (tpmc[0][1] > 0 && resp[0][0] > 0) {
    std::printf("  InfiniBand: cache on / off TpmC = %.2fx, read response "
                "%.3f -> %.3f ms\n",
                tpmc[0][0] / tpmc[0][1], resp[0][1], resp[0][0]);
  }
  if (tpmc[1][0] > 0 && tpmc[1][1] > 0) {
    std::printf("  Ethernet:   cache on / off TpmC = %.2fx (the cache helps "
                "any transport; one-sided READs stay RDMA-only)\n",
                tpmc[1][0] / tpmc[1][1]);
    std::printf("  IB advantage over a plain Ethernet deployment: %.1fx "
                "two-sided uncached -> %.1fx with the RDMA direction on\n",
                tpmc[0][1] / tpmc[1][1], tpmc[0][0] / tpmc[1][1]);
  }
  json.Write();
  PrintFooter();
  return 0;
}
