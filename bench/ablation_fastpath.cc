// Ablation: phase-switching single-partition fast path (DESIGN.md
// "Phase-switching fast path").
//
// The deterministic-partitioned comparators (VoltDB in Fig. 8, the fig9
// shardable-mix discussion) win on perfectly shardable load because a
// single-partition transaction costs them one serial stored-procedure slot
// — no begin, no validation, no distributed commit. Tell's MVCC protocol
// pays the commit-manager round trip and the LL/SC conditional puts on
// every transaction regardless. The fast path closes that gap from inside
// the shared-data architecture: a transaction whose read/write set stays in
// its home warehouse runs on a serial per-partition lane (no Start, no
// snapshot, no LL/SC — one coalesced message to the owning storage node),
// while cross-partition transactions keep the full MVCC protocol, with
// epoch-based phase fences keeping the two interleavings consistent.
//
// This bench sweeps the multi-partition fraction of the write-intensive mix
// and reports Tell with the fast path on, off, and the VoltDB-style
// partitioned-serial baseline on identical input streams:
//   * at 0% multi-partition the fast path should show a clear TpmC gain
//     over fastpath-off Tell (every transaction skips the commit protocol);
//   * the gain must decay as the fraction grows (fast share shrinks and
//     phase fences add waits) and cross over: the partitioned baseline
//     degrades much faster with the fraction (a multi-partition txn stalls
//     EVERY partition there), so Tell overtakes it early — the paper's
//     architectural argument, now measurable inside one binary.
// A fig9-style shardable-mix pair plus an executor run with home-affinity
// core pinning (each warehouse's lane stays cache-local) round it out.
//
// Quick mode: set TELL_FASTPATH_QUICK=1 for a two-point sweep (used by the
// ctest JSON round trip, where wall-clock budget matters more).
#include <cstdlib>

#include "baselines/partitioned_serial_db.h"
#include "bench/bench_util.h"

using namespace tell;
using namespace tell::bench;

namespace {

void PrintRow(const char* system, double fraction,
              const tpcc::DriverResult& r) {
  std::printf("%-18s %9.2f %12.0f %9.2f%% %10llu %10llu %12llu\n", system,
              fraction * 100, r.tpmc, r.abort_rate * 100,
              static_cast<unsigned long long>(r.merged.fastpath_hits),
              static_cast<unsigned long long>(r.merged.fastpath_fallbacks),
              static_cast<unsigned long long>(r.merged.fastpath_fence_waits));
}

}  // namespace

int main() {
  const bool quick = std::getenv("TELL_FASTPATH_QUICK") != nullptr;

  PrintHeader("Ablation", "Single-partition fast path vs MVCC vs "
              "partitioned-serial, by multi-partition fraction",
              "deterministic-partitioned engines win shardable load but "
              "stall every partition on a cross-partition txn (Fig. 8/9); "
              "phase-switching gives the shared-data architecture the same "
              "single-partition economics without giving up cheap "
              "cross-partition MVCC commits");

  const uint64_t virtual_ms = quick ? 30 : kVirtualMs;
  const uint32_t workers = 8;
  const std::vector<double> fractions =
      quick ? std::vector<double>{0.0, 0.5}
            : std::vector<double>{0.0, 0.05, 0.1, 0.2, 0.5, 1.0};

  BenchJson json("ablation_fastpath");
  json.AddConfig("mix", "write_intensive");
  json.AddConfig("workers", uint64_t{workers});
  json.AddConfig("virtual_ms", virtual_ms);
  json.AddConfig("quick", quick ? uint64_t{1} : uint64_t{0});

  auto run_tell = [&](bool fastpath_on, tpcc::Mix mix, double fraction,
                      uint32_t executor_threads, bool home_affinity)
      -> Result<tpcc::DriverResult> {
    // Fresh fixture per point (the ablation_storage_stripes idiom): the
    // driver reuses the seed, so re-running on mutated data replays the
    // same keys into changed state.
    db::TellDbOptions options;
    options.fastpath.enabled = fastpath_on;
    TellFixture fixture(options, BenchScale());
    tpcc::TellBackend backend(fixture.db());
    tpcc::DriverOptions driver;
    driver.scale = fixture.scale();
    driver.mix = mix;
    driver.num_workers = workers;
    driver.duration_virtual_ms = virtual_ms;
    driver.multi_partition_fraction = fraction;
    driver.executor_threads = executor_threads;
    driver.home_affinity = home_affinity;
    auto result = tpcc::RunTpcc(&backend, driver);
    if (result.ok() && fastpath_on && !result->merged.fastpath_hits) {
      std::fprintf(stderr, "fast path enabled but never hit\n");
      return Status::InternalError("fast path enabled but never hit");
    }
    return result;
  };

  std::printf("%-18s %9s %12s %10s %10s %10s %12s\n", "system", "mp_frac%",
              "TpmC", "abort%", "fast_hits", "fallbacks", "fence_waits");

  double fast_at_0 = 0, mvcc_at_0 = 0;
  double crossover_fraction = -1;  // first fraction where Tell-fast >= serial
  for (double fraction : fractions) {
    auto fast = run_tell(true, tpcc::Mix::kWriteIntensive, fraction, 0, false);
    if (!fast.ok()) {
      std::fprintf(stderr, "fastpath run failed: %s\n",
                   fast.status().ToString().c_str());
      return 1;
    }
    auto mvcc = run_tell(false, tpcc::Mix::kWriteIntensive, fraction, 0, false);
    if (!mvcc.ok()) {
      std::fprintf(stderr, "mvcc run failed: %s\n",
                   mvcc.status().ToString().c_str());
      return 1;
    }

    baselines::PartitionedSerialDb serial(BenchScale(),
                                          baselines::PartitionedSerialOptions{});
    tpcc::DriverOptions driver;
    driver.scale = BenchScale();
    driver.mix = tpcc::Mix::kWriteIntensive;
    driver.num_workers = workers;
    driver.duration_virtual_ms = virtual_ms;
    driver.multi_partition_fraction = fraction;
    auto baseline = tpcc::RunTpcc(&serial, driver);
    if (!baseline.ok()) {
      std::fprintf(stderr, "baseline run failed: %s\n",
                   baseline.status().ToString().c_str());
      return 1;
    }

    const std::string pct = std::to_string(static_cast<int>(fraction * 100));
    PrintRow("tell_fastpath", fraction, *fast);
    PrintRow("tell_mvcc", fraction, *mvcc);
    PrintRow("partitioned", fraction, *baseline);
    json.Add("fast_mp" + pct, *fast);
    json.Add("mvcc_mp" + pct, *mvcc);
    json.Add("serial_mp" + pct, *baseline);

    if (fraction == 0.0) {
      fast_at_0 = fast->tpmc;
      mvcc_at_0 = mvcc->tpmc;
    }
    if (crossover_fraction < 0 && fast->tpmc >= baseline->tpmc) {
      crossover_fraction = fraction;
    }
  }

  // Fig. 9's shardable mix — the best case the partitioned comparators
  // have; with the fast path it runs with no commit-manager begins at all.
  auto shard_fast = run_tell(true, tpcc::Mix::kShardable, 0.0, 0, false);
  auto shard_mvcc = run_tell(false, tpcc::Mix::kShardable, 0.0, 0, false);
  if (shard_fast.ok() && shard_mvcc.ok()) {
    PrintRow("tell_fast_shard", 0.0, *shard_fast);
    PrintRow("tell_mvcc_shard", 0.0, *shard_mvcc);
    json.Add("fast_shardable", *shard_fast);
    json.Add("mvcc_shardable", *shard_mvcc);
  }

  // Executor mode with home affinity: each warehouse's fiber tasks pin to
  // core `home % threads`, keeping a lane's serial queue cache-local.
  if (!quick) {
    auto affinity = run_tell(true, tpcc::Mix::kWriteIntensive, 0.0, 2, true);
    if (affinity.ok()) {
      PrintRow("tell_fast_affin", 0.0, *affinity);
      json.Add("fast_affinity_t2", *affinity);
    }
  }

  std::printf("\nshape checks:\n");
  if (mvcc_at_0 > 0) {
    std::printf("  fastpath/mvcc TpmC at 0%% multi-partition: %.2fx "
                "(expect > 1: every txn skips begin + LL/SC)\n",
                fast_at_0 / mvcc_at_0);
  }
  if (crossover_fraction >= 0) {
    std::printf("  Tell-fastpath overtakes partitioned-serial at %.0f%% "
                "multi-partition (expect early: a cross-partition txn "
                "stalls every partition of the serial engine but only "
                "fences two lanes here)\n",
                crossover_fraction * 100);
  } else {
    std::printf("  Tell-fastpath never overtook partitioned-serial in this "
                "sweep (unexpected — check the fence-wait column)\n");
  }

  json.Write();
  PrintFooter();
  return 0;
}
