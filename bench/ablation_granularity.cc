// Ablation: storage granularity (paper §5.1). Tell stores one RECORD (with
// all its versions) per key-value pair. This bench measures the same access
// pattern against three layouts on the real store:
//   * record  — one cell per record (Tell's choice),
//   * page    — 16 records per cell (disk-DB style),
//   * version — one cell per record VERSION (fine-grained).
// Claim: pages don't reduce the number of requests (each record must be
// re-fetched anyway — remote PNs may have changed it) but inflate traffic;
// per-version cells need extra requests to discover versions and make
// conflict detection more expensive.
#include <cstdio>

#include "common/random.h"
#include "common/serde.h"
#include "sim/metrics.h"
#include "sim/virtual_clock.h"
#include "store/cluster.h"
#include "store/storage_client.h"
#include "bench/bench_util.h"

using namespace tell;

int main() {
  bench::PrintHeader("Ablation", "Storage granularity (§5.1)",
                     "record granularity minimizes network requests without "
                     "the traffic blow-up of pages; per-version cells need "
                     "extra requests for version discovery and write-back");

  constexpr int kRecords = 4096;
  constexpr int kRecordBytes = 500;  // typical TPC-C row with 2-3 versions
  constexpr int kPageSize = 16;
  constexpr int kVersionsPerRecord = 3;
  constexpr int kAccesses = 20000;

  store::ClusterOptions cluster_options;
  cluster_options.num_storage_nodes = 7;
  store::Cluster cluster(cluster_options);
  auto record_table = *cluster.CreateTable("records");
  auto page_table = *cluster.CreateTable("pages");
  auto version_table = *cluster.CreateTable("versions");

  sim::VirtualClock setup_clock;
  sim::WorkerMetrics setup_metrics;
  store::ClientOptions client_options;
  store::StorageClient setup(&cluster, nullptr, client_options, &setup_clock,
                             &setup_metrics);
  Random rng(1);
  std::string record_value = rng.AlphaString(kRecordBytes, kRecordBytes);
  std::string page_value =
      rng.AlphaString(kRecordBytes * kPageSize, kRecordBytes * kPageSize);
  std::string version_value = rng.AlphaString(kRecordBytes / kVersionsPerRecord,
                                              kRecordBytes / kVersionsPerRecord);
  for (int i = 0; i < kRecords; ++i) {
    (void)setup.Put(record_table, EncodeOrderedU64(i), record_value);
    if (i % kPageSize == 0) {
      (void)setup.Put(page_table, EncodeOrderedU64(i / kPageSize), page_value);
    }
    for (int v = 0; v < kVersionsPerRecord; ++v) {
      (void)setup.Put(version_table,
                      EncodeOrderedU64(static_cast<uint64_t>(i) * 8 + v),
                      version_value);
    }
  }

  bench::BenchJson json("ablation_granularity");
  json.AddConfig("records", uint64_t{kRecords});
  json.AddConfig("record_bytes", uint64_t{kRecordBytes});
  json.AddConfig("page_size", uint64_t{kPageSize});
  json.AddConfig("versions_per_record", uint64_t{kVersionsPerRecord});
  json.AddConfig("accesses", uint64_t{kAccesses});

  std::printf("%-10s %12s %14s %16s\n", "layout", "requests",
              "MB transferred", "virtual time ms");
  auto report = [&json](const char* name, const sim::WorkerMetrics& metrics,
                        const sim::VirtualClock& clock) {
    double mb = static_cast<double>(metrics.bytes_received) / (1 << 20);
    double virtual_ms = static_cast<double>(clock.now_ns()) / 1e6;
    std::printf("%-10s %12llu %14.2f %16.2f\n", name,
                static_cast<unsigned long long>(metrics.storage_requests),
                mb, virtual_ms);
    json.AddMetrics(name, metrics,
                    {{"mb_received", mb}, {"virtual_ms", virtual_ms}});
  };

  {
    // Record granularity: one Get per access.
    sim::VirtualClock clock;
    sim::WorkerMetrics metrics;
    store::StorageClient client(&cluster, nullptr, client_options, &clock,
                                &metrics);
    Random access(7);
    for (int i = 0; i < kAccesses; ++i) {
      (void)client.Get(record_table, EncodeOrderedU64(access.Uniform(kRecords)));
    }
    report("record", metrics, clock);
  }
  {
    // Page granularity: SAME number of requests (no reuse possible — a
    // remote PN may have changed any record, §5.1), but each fetches a
    // whole page.
    sim::VirtualClock clock;
    sim::WorkerMetrics metrics;
    store::StorageClient client(&cluster, nullptr, client_options, &clock,
                                &metrics);
    Random access(7);
    for (int i = 0; i < kAccesses; ++i) {
      (void)client.Get(page_table,
                       EncodeOrderedU64(access.Uniform(kRecords) / kPageSize));
    }
    report("page", metrics, clock);
  }
  {
    // Per-version cells: one request to discover the version list (modelled
    // as reading the newest) plus one per additional version needed.
    sim::VirtualClock clock;
    sim::WorkerMetrics metrics;
    store::StorageClient client(&cluster, nullptr, client_options, &clock,
                                &metrics);
    Random access(7);
    for (int i = 0; i < kAccesses; ++i) {
      uint64_t record = access.Uniform(kRecords);
      for (int v = 0; v < kVersionsPerRecord; ++v) {
        (void)client.Get(version_table, EncodeOrderedU64(record * 8 +
                                                         static_cast<uint64_t>(v)));
      }
    }
    report("version", metrics, clock);
  }
  std::printf("\nshape checks: record = fewest requests at modest traffic; "
              "page = same requests, ~%dx traffic; version = %dx requests.\n",
              kPageSize, kVersionsPerRecord);
  json.Write();
  bench::PrintFooter();
  return 0;
}
