#include "db/tell_db.h"

#include "common/logging.h"
#include "common/serde.h"
#include "schema/versioned_record.h"

namespace tell::db {

namespace {

store::ClientOptions MakeClientOptions(const TellDbOptions& options,
                                       uint32_t pn_id, uint32_t worker_id,
                                       bool with_faults) {
  store::ClientOptions client;
  client.network = options.network;
  client.cpu = options.cpu;
  client.batching = options.batching;
  client.pipelining = options.pipelining;
  client.replication_extra_hops = options.replication_factor - 1;
  client.retry = options.retry;
  // Distinct per-worker jitter streams that stay reproducible run-to-run.
  client.retry_seed = options.retry_seed ^
                      (static_cast<uint64_t>(pn_id) * 0x9E3779B97F4A7C15ULL) ^
                      (static_cast<uint64_t>(worker_id) << 32);
  client.fault_injector = with_faults ? options.fault_injector : nullptr;
  // The record cache is per-PN and attached by OpenSession; the admin
  // session stays uncached and two-sided so DDL/recovery/GC accounting is
  // independent of the read-path configuration.
  client.one_sided_reads = with_faults && options.one_sided_reads;
  client.scan_chunk_cells = options.scan_chunk_cells;
  return client;
}

}  // namespace

TellDb::TellDb(const TellDbOptions& options)
    : options_(options), executor_(options.operator_pushdown) {
  store::ClusterOptions cluster_options;
  cluster_options.num_storage_nodes = options_.num_storage_nodes;
  cluster_options.replication_factor = options_.replication_factor;
  cluster_options.partitions_per_node = options_.partitions_per_storage_node;
  cluster_options.memory_per_node_bytes = options_.memory_per_storage_node;
  cluster_options.stripes_per_partition = options_.stripes_per_partition;
  cluster_ = std::make_unique<store::Cluster>(cluster_options);
  management_ = std::make_unique<store::ManagementNode>(cluster_.get());
  commit_managers_ = std::make_unique<commitmgr::CommitManagerGroup>(
      cluster_.get(), options_.num_commit_managers, options_.commit_manager,
      options_.commit_manager_sync_ms, options_.commit_replication);

  if (options_.fastpath.enabled) {
    // The fast path needs one monotone tid stream (fast leases and MVCC
    // begins interleave in assignment order — the basis of the "fast write
    // is the newest version" invariant, see CommitManager::LeaseFastTids)
    // and private transaction buffers (a fast commit never runs OnApply, so
    // a PN-shared buffer would go stale). Incompatible configurations are a
    // HARD disable: fastpath_ stays null, every transaction runs MVCC-only,
    // and the reason is queryable (fastpath_disabled_reason). Replication
    // of the single slot is fine — a promoted leader restarts the range
    // strictly above every granted tid, so the stream stays monotone.
    if (options_.commit_manager.interleaved_tids) {
      fastpath_disabled_reason_ =
          "requires range-based tid assignment (interleaved_tids=false)";
    } else if (options_.num_commit_managers != 1) {
      fastpath_disabled_reason_ =
          "requires a single commit manager (tids from one sequential "
          "stream)";
    } else if (options_.buffer_strategy != BufferStrategy::kTransactionOnly) {
      fastpath_disabled_reason_ =
          "requires the TB (transaction-only) buffer strategy";
    } else {
      fastpath_ = std::make_unique<tx::FastPathCoordinator>(
          options_.fastpath, commit_managers_.get());
    }
    if (fastpath_ == nullptr) {
      TELL_LOG(kWarn) << "fast path disabled: " << fastpath_disabled_reason_;
    }
  }

  auto log_table = cluster_->CreateTable("__transaction_log");
  TELL_CHECK(log_table.ok());
  log_ = std::make_unique<tx::TransactionLog>(*log_table);

  if (options_.buffer_strategy == BufferStrategy::kVersionSync) {
    auto vs_table = cluster_->CreateTable("__version_sets");
    TELL_CHECK(vs_table.ok());
    version_set_table_ = *vs_table;
  }

  recovery_ =
      std::make_unique<tx::RecoveryManager>(log_.get(), commit_managers_.get());
  gc_ = std::make_unique<tx::GarbageCollector>(commit_managers_.get());

  admin_buffer_ = std::make_unique<tx::PassthroughBuffer>();
  admin_session_ = std::make_unique<tx::Session>(
      /*pn_id=*/UINT32_MAX, /*worker_id=*/0, cluster_.get(),
      management_.get(),
      MakeClientOptions(options_, /*pn_id=*/UINT32_MAX, /*worker_id=*/0,
                        /*with_faults=*/false),
      commit_managers_.get(), log_.get(), admin_buffer_.get(),
      options_.session, fastpath_.get());

  for (uint32_t i = 0; i < options_.num_processing_nodes; ++i) {
    AddProcessingNode();
  }
}

TellDb::~TellDb() {
  if (fastpath_ != nullptr) {
    // Deliver any still-queued fast completions so the final commit-manager
    // state (snapshot base, GC horizon) reflects every fast commit.
    fastpath_->FlushPending(admin_session_->worker_id(),
                            admin_session_->client());
  }
}

std::unique_ptr<tx::RecordBuffer> TellDb::MakeBuffer() {
  switch (options_.buffer_strategy) {
    case BufferStrategy::kTransactionOnly:
      return std::make_unique<tx::PassthroughBuffer>();
    case BufferStrategy::kSharedRecord:
      return std::make_unique<buffer::SharedRecordBuffer>();
    case BufferStrategy::kVersionSync:
      return std::make_unique<buffer::VersionSyncBuffer>(
          version_set_table_, options_.buffer_unit_size);
  }
  return std::make_unique<tx::PassthroughBuffer>();
}

uint32_t TellDb::AddProcessingNode() {
  std::lock_guard<std::mutex> lock(pns_mutex_);
  auto pn = std::make_unique<ProcessingNode>();
  pn->buffer = MakeBuffer();
  if (options_.record_cache.enabled) {
    pn->record_cache =
        std::make_unique<store::RecordCache>(options_.record_cache);
  }
  pns_.push_back(std::move(pn));
  return static_cast<uint32_t>(pns_.size() - 1);
}

uint32_t TellDb::num_processing_nodes() const {
  std::lock_guard<std::mutex> lock(pns_mutex_);
  return static_cast<uint32_t>(pns_.size());
}

Status TellDb::CreateTable(
    const std::string& name, schema::Schema schema,
    const std::vector<schema::IndexDef>& secondary_indexes) {
  if (schema.primary_key().empty()) {
    return Status::InvalidArgument("table needs a primary key");
  }
  tx::TableMeta meta;
  meta.name = name;
  TELL_ASSIGN_OR_RETURN(meta.data_table, cluster_->CreateTable(name));

  meta.primary.def.name = name + "_pk";
  meta.primary.def.key_columns = schema.primary_key();
  meta.primary.def.unique = true;
  TELL_ASSIGN_OR_RETURN(meta.primary.store_table,
                        cluster_->CreateTable("__index_" + name + "_pk"));
  TELL_RETURN_NOT_OK(
      index::BTree::Create(admin_client(), meta.primary.store_table));

  for (const schema::IndexDef& def : secondary_indexes) {
    tx::IndexMeta index;
    index.def = def;
    for (uint32_t column : def.key_columns) {
      if (column >= schema.num_columns()) {
        return Status::InvalidArgument("index key column out of range");
      }
    }
    TELL_ASSIGN_OR_RETURN(
        index.store_table,
        cluster_->CreateTable("__index_" + name + "_" + def.name));
    TELL_RETURN_NOT_OK(
        index::BTree::Create(admin_client(), index.store_table));
    meta.secondaries.push_back(std::move(index));
  }
  meta.schema = std::move(schema);
  return catalog_.Register(std::move(meta));
}

std::unique_ptr<tx::Session> TellDb::OpenSession(uint32_t pn_id,
                                                 uint32_t worker_id) {
  std::lock_guard<std::mutex> lock(pns_mutex_);
  TELL_CHECK(pn_id < pns_.size());
  TELL_CHECK(pns_[pn_id]->alive);
  store::ClientOptions client =
      MakeClientOptions(options_, pn_id, worker_id, /*with_faults=*/true);
  client.record_cache = pns_[pn_id]->record_cache.get();
  return std::make_unique<tx::Session>(
      pn_id, worker_id, cluster_.get(), management_.get(), client,
      commit_managers_.get(), log_.get(), pns_[pn_id]->buffer.get(),
      options_.session, fastpath_.get());
}

Result<tx::TableHandle*> TellDb::GetTable(uint32_t pn_id,
                                          const std::string& name) {
  TELL_ASSIGN_OR_RETURN(const tx::TableMeta* meta, catalog_.Find(name));
  std::lock_guard<std::mutex> lock(pns_mutex_);
  if (pn_id >= pns_.size() || !pns_[pn_id]->alive) {
    return Status::InvalidArgument("no live processing node " +
                                   std::to_string(pn_id));
  }
  return pns_[pn_id]->registry.Open(meta, options_.btree);
}

Status TellDb::ExecuteDdl(const std::string& sql) {
  TELL_ASSIGN_OR_RETURN(sql::Statement stmt, sql::Parse(sql));
  if (stmt.kind == sql::Statement::Kind::kCreateTable) {
    const sql::CreateTableStatement& create = stmt.create_table;
    schema::SchemaBuilder builder;
    for (const schema::Column& column : create.columns) {
      switch (column.type) {
        case schema::ColumnType::kInt64:
          builder.AddInt64(column.name);
          break;
        case schema::ColumnType::kDouble:
          builder.AddDouble(column.name);
          break;
        case schema::ColumnType::kString:
          builder.AddString(column.name);
          break;
      }
    }
    builder.SetPrimaryKey(create.primary_key);
    return CreateTable(create.table, builder.Build(), {});
  }
  if (stmt.kind == sql::Statement::Kind::kCreateIndex) {
    const sql::CreateIndexStatement& create = stmt.create_index;
    TELL_ASSIGN_OR_RETURN(const tx::TableMeta* existing,
                          catalog_.Find(create.table));
    // Build the new index meta.
    schema::IndexDef def;
    def.name = create.index_name;
    def.unique = create.unique;
    for (const std::string& column : create.columns) {
      TELL_ASSIGN_OR_RETURN(uint32_t idx,
                            existing->schema.ColumnIndex(column));
      def.key_columns.push_back(idx);
    }
    tx::IndexMeta index;
    index.def = def;
    TELL_ASSIGN_OR_RETURN(index.store_table,
                          cluster_->CreateTable("__index_" + create.table +
                                                "_" + create.index_name));
    TELL_RETURN_NOT_OK(
        index::BTree::Create(admin_client(), index.store_table));
    // Backfill from existing records (all versions — the index is
    // version-unaware).
    index::NodeCache backfill_cache;
    index::BTree tree(index.store_table, options_.btree, &backfill_cache);
    TELL_ASSIGN_OR_RETURN(
        std::vector<store::KeyCell> cells,
        admin_client()->Scan(existing->data_table, "", "", /*limit=*/0));
    for (const store::KeyCell& cell : cells) {
      if (cell.key.size() != sizeof(uint64_t)) continue;  // meta cells
      auto record = schema::VersionedRecord::Deserialize(cell.value);
      if (!record.ok()) continue;
      uint64_t rid = DecodeOrderedU64(cell.key);
      for (const schema::RecordVersion& version : record->versions()) {
        if (version.tombstone) continue;
        auto tuple =
            schema::Tuple::Deserialize(existing->schema, version.payload);
        if (!tuple.ok()) continue;
        auto key = schema::EncodeIndexKey(*tuple, def.key_columns);
        if (!key.ok()) continue;
        TELL_RETURN_NOT_OK(
            tree.Insert(admin_client(), *key, rid, def.unique));
      }
    }
    // Publish: the catalog owns the metas, so re-register a copy with the
    // new index appended. (CREATE INDEX must precede first use on a PN.)
    const_cast<tx::TableMeta*>(existing)->secondaries.push_back(
        std::move(index));
    return Status::OK();
  }
  return Status::InvalidArgument("not a DDL statement");
}

Result<sql::ResultSet> TellDb::ExecuteSql(tx::Transaction* txn,
                                          uint32_t pn_id,
                                          const std::string& sql_text) {
  TELL_ASSIGN_OR_RETURN(sql::Statement stmt, sql::Parse(sql_text));
  if (stmt.kind == sql::Statement::Kind::kCreateTable ||
      stmt.kind == sql::Statement::Kind::kCreateIndex) {
    TELL_RETURN_NOT_OK(ExecuteDdl(sql_text));
    return sql::ResultSet{};
  }
  if (txn == nullptr) {
    return Status::InvalidArgument("DML needs a transaction");
  }
  // SQL text path: charge the parse/plan cost (the TPC-C drivers use
  // pre-compiled plans instead, like VoltDB stored procedures).
  txn->snapshot();  // (txn must be running)
  TELL_ASSIGN_OR_RETURN(sql::Plan plan,
                        sql::PlanStatement(std::move(stmt), &catalog_));
  // Make sure the table(s) are open on this PN.
  TELL_RETURN_NOT_OK(GetTable(pn_id, plan.table->name).status());
  if (plan.join_table != nullptr) {
    TELL_RETURN_NOT_OK(GetTable(pn_id, plan.join_table->name).status());
  }
  tx::TableRegistry* registry;
  {
    std::lock_guard<std::mutex> lock(pns_mutex_);
    registry = &pns_[pn_id]->registry;  // ProcessingNode storage is stable
  }
  return executor_.Execute(txn, registry, plan);
}

Result<sql::ResultSet> TellDb::AutoCommitSql(tx::Session* session,
                                             const std::string& sql_text) {
  session->client()->ChargeCpu(options_.cpu.per_parse_ns);
  tx::Transaction txn(session);
  TELL_RETURN_NOT_OK(txn.Begin());
  auto result = ExecuteSql(&txn, session->pn_id(), sql_text);
  if (!result.ok()) {
    if (txn.state() == tx::TxnState::kRunning) (void)txn.Abort();
    return result.status();
  }
  TELL_RETURN_NOT_OK(txn.Commit());
  return result;
}

Result<tx::RecoveryStats> TellDb::KillProcessingNode(uint32_t pn_id) {
  {
    std::lock_guard<std::mutex> lock(pns_mutex_);
    if (pn_id >= pns_.size() || !pns_[pn_id]->alive) {
      return Status::InvalidArgument("no live processing node");
    }
    pns_[pn_id]->alive = false;
  }
  // The management node's failure detector fires and starts the recovery
  // process (§4.4.1).
  return recovery_->RecoverProcessingNode(admin_client(), pn_id);
}

Status TellDb::KillStorageNode(uint32_t node_id) {
  cluster_->node(node_id)->Kill();
  TELL_ASSIGN_OR_RETURN(uint32_t recovered, management_->DetectAndRecover());
  (void)recovered;
  return Status::OK();
}

Result<tx::GcStats> TellDb::RunGarbageCollection() {
  std::vector<tx::TableHandle*> handles;
  {
    std::lock_guard<std::mutex> lock(pns_mutex_);
    TELL_CHECK(!pns_.empty());
    // Open every catalog table on PN 0 for the sweep.
    for (const tx::TableMeta* meta : catalog_.AllTables()) {
      handles.push_back(pns_[0]->registry.Open(meta, options_.btree));
    }
  }
  return gc_->Sweep(admin_client(), handles, log_.get());
}

void TellDb::ExportStats(obs::MetricsRegistry* registry) const {
  store::StorageNodeStats sn;
  for (uint32_t i = 0; i < cluster_->num_nodes(); ++i) {
    sn.Accumulate(cluster_->node(i)->stats());
  }
  registry->SetGauge("store.node.gets", sn.gets);
  registry->SetGauge("store.node.puts", sn.puts);
  registry->SetGauge("store.node.conditional_puts", sn.conditional_puts);
  registry->SetGauge("store.node.llsc_failures", sn.llsc_failures);
  registry->SetGauge("store.node.erases", sn.erases);
  registry->SetGauge("store.node.scans", sn.scans);
  registry->SetGauge("store.node.cells_scanned", sn.cells_scanned);
  registry->SetGauge("store.node.atomic_increments", sn.atomic_increments);
  registry->SetGauge("store.node.stripe_conflicts", sn.stripe_conflicts);
  registry->SetGauge("store.node.lock_wait_ns", sn.lock_wait_ns);

  commitmgr::CommitManagerStats cm;
  for (uint32_t i = 0; i < commit_managers_->size(); ++i) {
    cm.Accumulate(commit_managers_->manager(i)->stats());
  }
  registry->SetGauge("commitmgr.starts", cm.starts);
  registry->SetGauge("commitmgr.commits", cm.commits);
  registry->SetGauge("commitmgr.aborts", cm.aborts);
  registry->SetGauge("commitmgr.syncs", cm.syncs);
  registry->SetGauge("commitmgr.tid_range_refills", cm.tid_range_refills);
  registry->SetGauge("commitmgr.delta_starts", cm.delta_starts);
  registry->SetGauge("commitmgr.full_starts", cm.full_starts);

  commitmgr::GroupReplicationStats repl = commit_managers_->ReplStats();
  registry->SetGauge("commitmgr.repl.log_appends", repl.log_appends);
  registry->SetGauge("commitmgr.repl.log_bytes", repl.log_bytes);
  registry->SetGauge("commitmgr.repl.snapshots", repl.snapshots);
  registry->SetGauge("commitmgr.repl.log_truncated", repl.log_truncated);
  registry->SetGauge("commitmgr.repl.snapshot_installs",
                     repl.snapshot_installs);
  registry->SetGauge("commitmgr.repl.records_replayed",
                     repl.records_replayed);
  registry->SetGauge("commitmgr.repl.elections", repl.elections);
  registry->SetGauge("commitmgr.repl.term", repl.term);

  store::MigrationStats mig = management_->migration_stats();
  registry->SetGauge("store.migration.started", mig.started);
  registry->SetGauge("store.migration.completed", mig.completed);
  registry->SetGauge("store.migration.cells_copied", mig.cells_copied);
  registry->SetGauge("store.migration.delta_rounds", mig.delta_rounds);
  registry->SetGauge("store.migration.delta_cells", mig.delta_cells);
  registry->SetGauge("store.migration.erases_applied", mig.erases_applied);

  tx::BufferStats buf;
  store::RecordCacheStats cache;
  uint64_t index_cache_entries = 0;
  {
    std::lock_guard<std::mutex> lock(pns_mutex_);
    for (const std::unique_ptr<ProcessingNode>& pn : pns_) {
      pn->buffer->AccumulateStats(&buf);
      if (pn->record_cache != nullptr) {
        store::RecordCacheStats s = pn->record_cache->stats();
        cache.hits += s.hits;
        cache.misses += s.misses;
        cache.evictions += s.evictions;
        cache.invalidations += s.invalidations;
        cache.entries += s.entries;
      }
      index_cache_entries += pn->registry.IndexCacheStats().entries;
    }
  }
  registry->SetGauge("store.cache.entries", cache.entries);
  registry->SetGauge("store.cache.evictions", cache.evictions);
  registry->SetGauge("store.cache.invalidations", cache.invalidations);
  registry->SetGauge("index.cache.entries", index_cache_entries);
  registry->SetGauge("buffer.shared.hits", buf.hits);
  registry->SetGauge("buffer.shared.misses", buf.misses);
  registry->SetGauge("buffer.shared.evictions", buf.evictions);
  registry->SetGauge("buffer.shared.write_throughs", buf.write_throughs);

  tx::GcStats gc = gc_->totals();
  registry->SetGauge("gc.records_rewritten", gc.records_rewritten);
  registry->SetGauge("gc.versions_removed", gc.versions_removed);
  registry->SetGauge("gc.records_erased", gc.records_erased);
  registry->SetGauge("gc.index_entries_removed", gc.index_entries_removed);
  registry->SetGauge("gc.log_entries_truncated", gc.log_entries_truncated);

  if (options_.fault_injector != nullptr) {
    sim::FaultStats fs = options_.fault_injector->stats();
    registry->SetGauge("fault.requests_seen", fs.requests_seen);
    registry->SetGauge("fault.injected", fs.injected);
    registry->SetGauge("fault.dropped_requests", fs.dropped_requests);
    registry->SetGauge("fault.dropped_responses", fs.dropped_responses);
    registry->SetGauge("fault.latency_spikes", fs.latency_spikes);
    registry->SetGauge("fault.node_kills", fs.node_kills);
    registry->SetGauge("fault.leader_kills", fs.leader_kills);
  }
}

std::vector<std::pair<std::string,
                      std::vector<std::pair<std::string, uint64_t>>>>
TellDb::PerNodeStats() const {
  std::vector<std::pair<std::string,
                        std::vector<std::pair<std::string, uint64_t>>>> rows;
  for (uint32_t i = 0; i < cluster_->num_nodes(); ++i) {
    store::StorageNodeStats s = cluster_->node(i)->stats();
    rows.emplace_back(
        "sn" + std::to_string(i),
        std::vector<std::pair<std::string, uint64_t>>{
            {"gets", s.gets},
            {"puts", s.puts},
            {"conditional_puts", s.conditional_puts},
            {"llsc_failures", s.llsc_failures},
            {"erases", s.erases},
            {"scans", s.scans},
            {"cells_scanned", s.cells_scanned},
            {"atomic_increments", s.atomic_increments},
            {"stripe_conflicts", s.stripe_conflicts},
            {"lock_wait_ns", s.lock_wait_ns},
        });
  }
  for (uint32_t i = 0; i < commit_managers_->size(); ++i) {
    commitmgr::CommitManagerStats s = commit_managers_->manager(i)->stats();
    rows.emplace_back("cm" + std::to_string(i),
                      std::vector<std::pair<std::string, uint64_t>>{
                          {"starts", s.starts},
                          {"commits", s.commits},
                          {"aborts", s.aborts},
                          {"syncs", s.syncs},
                          {"tid_range_refills", s.tid_range_refills},
                          {"delta_starts", s.delta_starts},
                          {"full_starts", s.full_starts},
                      });
  }
  {
    std::lock_guard<std::mutex> lock(pns_mutex_);
    for (size_t i = 0; i < pns_.size(); ++i) {
      tx::BufferStats s;
      pns_[i]->buffer->AccumulateStats(&s);
      if (s.hits == 0 && s.misses == 0 && s.evictions == 0 &&
          s.write_throughs == 0) {
        continue;  // PassthroughBuffer (TB) keeps no PN-level stats
      }
      rows.emplace_back("pn" + std::to_string(i) + ".buffer",
                        std::vector<std::pair<std::string, uint64_t>>{
                            {"hits", s.hits},
                            {"misses", s.misses},
                            {"evictions", s.evictions},
                            {"write_throughs", s.write_throughs},
                        });
    }
    for (size_t i = 0; i < pns_.size(); ++i) {
      if (pns_[i]->record_cache == nullptr) continue;
      store::RecordCacheStats s = pns_[i]->record_cache->stats();
      if (s.hits == 0 && s.misses == 0 && s.evictions == 0 &&
          s.invalidations == 0 && s.entries == 0) {
        continue;
      }
      rows.emplace_back("pn" + std::to_string(i) + ".cache",
                        std::vector<std::pair<std::string, uint64_t>>{
                            {"hits", s.hits},
                            {"misses", s.misses},
                            {"evictions", s.evictions},
                            {"invalidations", s.invalidations},
                            {"entries", s.entries},
                        });
    }
  }
  return rows;
}

}  // namespace tell::db
