#ifndef TELL_DB_TELL_DB_H_
#define TELL_DB_TELL_DB_H_

#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "buffer/shared_record_buffer.h"
#include "buffer/version_sync_buffer.h"
#include "commitmgr/commit_manager.h"
#include "common/result.h"
#include "index/btree.h"
#include "obs/metrics_registry.h"
#include "sql/executor.h"
#include "sql/parser.h"
#include "sql/planner.h"
#include "store/cluster.h"
#include "store/management_node.h"
#include "store/storage_client.h"
#include "tx/catalog.h"
#include "tx/fast_path.h"
#include "tx/garbage_collector.h"
#include "tx/recovery.h"
#include "tx/transaction.h"
#include "tx/transaction_log.h"

namespace tell::db {

/// Which record buffering strategy the processing nodes use (paper §5.5,
/// evaluated in Fig. 11).
enum class BufferStrategy {
  kTransactionOnly,  // TB: private per-transaction buffers only (default)
  kSharedRecord,     // SB: PN-wide shared record buffer
  kVersionSync,      // SBVS: shared buffer with version set synchronization
};

/// Full cluster configuration. Defaults give a small single-box cluster
/// with the paper's technique choices (InfiniBand model, batching, inner
/// node caching, TB buffering, RF1).
struct TellDbOptions {
  uint32_t num_processing_nodes = 1;
  uint32_t num_storage_nodes = 3;
  uint32_t num_commit_managers = 1;
  uint32_t replication_factor = 1;

  sim::NetworkModel network = sim::NetworkModel::InfiniBand();
  sim::CpuModel cpu;
  bool batching = true;
  /// Asynchronous request pipelining: workers coalesce independent storage
  /// requests into one message per SN and overlap the round trips (see
  /// ClientOptions::pipelining and DESIGN.md "Request pipelining").
  bool pipelining = false;

  index::BTreeOptions btree;
  /// Per-PN client record cache under lease epochs (store/record_cache.h;
  /// DESIGN.md "One-sided reads & client caching"). Off by default.
  store::RecordCacheOptions record_cache;
  /// Model reads as one-sided RDMA READs where the NetworkModel supports
  /// them (see ClientOptions::one_sided_reads). Off by default; a no-op on
  /// kernel-TCP models either way.
  bool one_sided_reads = false;
  /// §5.2 operator push-down: full-scan WHERE clauses evaluate on the
  /// storage nodes (the paper's mixed-workload direction, implemented).
  /// Also enables the vectorized aggregate path: eligible aggregate queries
  /// run as storage-side scan fragments (DESIGN.md "Vectorized scans &
  /// aggregate pushdown").
  bool operator_pushdown = false;
  /// Batch size (cells) a storage node decodes per stripe-lock acquisition
  /// during a fragment scan; between chunks the locks drop so OLTP point
  /// ops are never blocked behind an analytical scan.
  uint32_t scan_chunk_cells = 1024;
  BufferStrategy buffer_strategy = BufferStrategy::kTransactionOnly;
  uint64_t buffer_unit_size = 10;  // SBVS cache unit size

  /// Phase-switching single-partition fast path (DESIGN.md). Requires
  /// range-based tid assignment, a single commit manager and the TB buffer
  /// strategy; incompatible combinations disable the fast path with a
  /// warning.
  tx::FastPathOptions fastpath;

  commitmgr::CommitManagerOptions commit_manager;
  /// <= 0 disables the background sync thread (then call SyncCommitManagers
  /// manually; irrelevant with one manager).
  double commit_manager_sync_ms = 1.0;
  /// Commit-manager replication (docs/RECOVERY.md): `replicas` > 1 runs
  /// each commit-manager slot as a leader + followers group with a change
  /// log and deterministic re-election on leader death. Requires range-based
  /// tid assignment (interleaved_tids=false). Orthogonal to the fast path:
  /// a replicated single slot still supports it.
  commitmgr::ReplicationOptions commit_replication;

  uint64_t memory_per_storage_node = 4ULL << 30;
  uint32_t partitions_per_storage_node = 4;
  /// Lock stripes per partition on each storage node (power of two; see
  /// DESIGN.md "Storage engine"). More stripes let concurrent workers write
  /// disjoint keys of one partition in parallel; 1 = one lock per partition.
  uint32_t stripes_per_partition = store::kDefaultStripesPerPartition;

  /// Retry/backoff policy every worker's StorageClient uses on Unavailable
  /// (fail-over, injected faults).
  store::RetryPolicy retry;
  /// Base seed for the per-worker retry-jitter RNGs; each session derives
  /// its own seed from (base, pn_id, worker_id).
  uint64_t retry_seed = 0x7E11;
  /// Optional fault injector (not owned; must outlive the database). Worker
  /// sessions consult it on every storage request; the admin session (DDL,
  /// recovery, GC) is exempt so recovery itself stays deterministic.
  sim::FaultInjector* fault_injector = nullptr;

  tx::SessionOptions session;
};

/// The Tell database: a complete shared-data cluster in one process —
/// storage nodes, commit managers, a management node, the transaction log,
/// and any number of processing nodes, each with its own index caches and
/// shared record buffer. Worker threads open Sessions against a PN and run
/// Transactions; the SQL front-end sits on top.
class TellDb {
 public:
  explicit TellDb(const TellDbOptions& options);
  ~TellDb();

  TellDb(const TellDb&) = delete;
  TellDb& operator=(const TellDb&) = delete;

  const TellDbOptions& options() const { return options_; }

  // --- DDL -----------------------------------------------------------------

  /// Creates a relational table with a unique primary key index and the
  /// given secondary indexes.
  Status CreateTable(const std::string& name, schema::Schema schema,
                     const std::vector<schema::IndexDef>& secondary_indexes);

  /// Executes a DDL statement (CREATE TABLE / CREATE [UNIQUE] INDEX).
  /// CREATE INDEX backfills from existing data; it must run before the
  /// table is first used on any processing node.
  Status ExecuteDdl(const std::string& sql);

  // --- Sessions / transactions ----------------------------------------------

  /// Opens a worker session bound to processing node `pn_id`. `worker_id`
  /// must be unique per live session (it picks the commit manager and seeds
  /// determinism). The caller owns the session; a session is single-owner:
  /// driven by one OS thread (legacy drivers) or by one executor fiber task
  /// (exec::Runtime — the task may migrate across executor threads between
  /// parks, but never runs on two at once; see docs/RUNTIME.md).
  std::unique_ptr<tx::Session> OpenSession(uint32_t pn_id,
                                           uint32_t worker_id);

  /// Per-PN table handle (opens it on first use).
  Result<tx::TableHandle*> GetTable(uint32_t pn_id, const std::string& name);

  /// Parses, plans and executes one DML/query statement inside `txn`
  /// (running on PN `pn_id`). DDL is executed immediately, outside any
  /// transaction.
  Result<sql::ResultSet> ExecuteSql(tx::Transaction* txn, uint32_t pn_id,
                                    const std::string& sql);

  /// Convenience: runs `sql` in its own transaction (begin/commit) on the
  /// given session.
  Result<sql::ResultSet> AutoCommitSql(tx::Session* session,
                                       const std::string& sql);

  // --- Elasticity & fault injection -----------------------------------------

  /// Adds a processing node at runtime; returns its id. This is the cheap
  /// elasticity the shared-data architecture promises — no data moves.
  uint32_t AddProcessingNode();

  uint32_t num_processing_nodes() const;

  /// Crash-stops a processing node and runs the recovery process (rolls
  /// back its in-flight transactions). Sessions bound to it must not be
  /// used afterwards.
  Result<tx::RecoveryStats> KillProcessingNode(uint32_t pn_id);

  /// Crash-stops a storage node and lets the management node fail over.
  Status KillStorageNode(uint32_t node_id);

  /// One lazy-GC sweep over all tables opened on PN 0 plus log truncation.
  Result<tx::GcStats> RunGarbageCollection();

  // --- Observability --------------------------------------------------------

  /// Exports the node-side counters into the registry's gauges: storage-node
  /// request counts (`store.node.*`, summed over SNs), commit manager calls
  /// (`commitmgr.*`, summed over the group), shared-buffer stats
  /// (`buffer.shared.*`, summed over PNs) and lazy-GC sweep totals (`gc.*`).
  void ExportStats(obs::MetricsRegistry* registry) const;

  /// Per-node breakdown of the same counters, for the JSON artifact's
  /// "nodes" object: one row per storage node ("sn0", ...), commit manager
  /// ("cm0", ...) and processing-node buffer ("pn0.buffer", ...).
  std::vector<std::pair<std::string,
                        std::vector<std::pair<std::string, uint64_t>>>>
  PerNodeStats() const;

  // --- Internals exposed for tests and benches ------------------------------

  store::Cluster* cluster() { return cluster_.get(); }
  store::ManagementNode* management() { return management_.get(); }
  commitmgr::CommitManagerGroup* commit_managers() {
    return commit_managers_.get();
  }
  const tx::TransactionLog* transaction_log() const { return log_.get(); }
  tx::Catalog* catalog() { return &catalog_; }
  tx::RecoveryManager* recovery() { return recovery_.get(); }
  /// Null when the fast path is off (or was disabled at construction).
  tx::FastPathCoordinator* fastpath() { return fastpath_.get(); }
  /// Why the fast path is off despite fastpath.enabled=true: empty when it
  /// is running (or was never requested). The incompatible configurations
  /// are a hard disable — MVCC-only operation, never a half-armed fast
  /// path.
  const std::string& fastpath_disabled_reason() const {
    return fastpath_disabled_reason_;
  }

 private:
  struct ProcessingNode {
    bool alive = true;
    tx::TableRegistry registry;
    std::unique_ptr<tx::RecordBuffer> buffer;
    /// Shared record cache of this PN's workers; null when disabled.
    std::unique_ptr<store::RecordCache> record_cache;
  };

  std::unique_ptr<tx::RecordBuffer> MakeBuffer();
  store::StorageClient* admin_client() { return admin_session_->client(); }

  const TellDbOptions options_;
  std::unique_ptr<store::Cluster> cluster_;
  std::unique_ptr<store::ManagementNode> management_;
  std::unique_ptr<commitmgr::CommitManagerGroup> commit_managers_;
  std::unique_ptr<tx::FastPathCoordinator> fastpath_;
  std::string fastpath_disabled_reason_;
  std::unique_ptr<tx::TransactionLog> log_;
  tx::Catalog catalog_;
  std::unique_ptr<tx::RecoveryManager> recovery_;
  std::unique_ptr<tx::GarbageCollector> gc_;
  store::TableId version_set_table_ = 0;

  mutable std::mutex pns_mutex_;
  std::vector<std::unique_ptr<ProcessingNode>> pns_;

  // Admin context (DDL, recovery, GC) — its costs are not part of any
  // benchmark worker's virtual time.
  std::unique_ptr<tx::PassthroughBuffer> admin_buffer_;
  std::unique_ptr<tx::Session> admin_session_;

  sql::Executor executor_;
};

}  // namespace tell::db

#endif  // TELL_DB_TELL_DB_H_
