#include "workload/tpcc/tpcc_loader.h"

#include <algorithm>
#include <numeric>
#include <vector>

#include "common/logging.h"

namespace tell::tpcc {

namespace {

using schema::Tuple;
using schema::Value;

constexpr const char* kSyllables[] = {"BAR", "OUGHT", "ABLE", "PRI", "PRES",
                                      "ESE", "ANTI", "CALLY", "ATION", "EING"};

/// Commits the running transaction and opens a fresh one every
/// `kRowsPerTxn` inserts so loader transactions stay small.
class ChunkedWriter {
 public:
  static constexpr size_t kRowsPerTxn = 256;

  ChunkedWriter(tx::Session* session) : session_(session) { Reset(); }

  Status Insert(tx::TableHandle* table, const Tuple& tuple) {
    TELL_RETURN_NOT_OK(
        txn_->Insert(table, tuple, /*check_unique=*/false).status());
    if (++rows_ >= kRowsPerTxn) {
      TELL_RETURN_NOT_OK(Flush());
    }
    return Status::OK();
  }

  Status Flush() {
    if (txn_ != nullptr) {
      TELL_RETURN_NOT_OK(txn_->Commit());
    }
    Reset();
    return Status::OK();
  }

 private:
  void Reset() {
    txn_ = std::make_unique<tx::Transaction>(session_);
    Status st = txn_->Begin();
    TELL_CHECK(st.ok());
    rows_ = 0;
  }

  tx::Session* session_;
  std::unique_ptr<tx::Transaction> txn_;
  size_t rows_ = 0;
};

std::string DataString(Random* rng, int min_len, int max_len,
                       bool original_10pct) {
  std::string data = rng->AlphaString(min_len, max_len);
  if (original_10pct && rng->Bernoulli(0.1) && data.size() >= 8) {
    size_t pos = rng->Uniform(data.size() - 8 + 1);
    data.replace(pos, 8, "ORIGINAL");
  }
  return data;
}

std::string ZipCode(Random* rng) { return rng->DigitString(4) + "11111"; }

}  // namespace

std::string LastName(int64_t number) {
  return std::string(kSyllables[(number / 100) % 10]) +
         kSyllables[(number / 10) % 10] + kSyllables[number % 10];
}

Status LoadTpcc(db::TellDb* db, const TpccScale& scale, uint64_t seed) {
  Random rng(seed);
  auto session = db->OpenSession(/*pn_id=*/0, /*worker_id=*/0);
  TELL_ASSIGN_OR_RETURN(TpccTables tables, OpenTpccTables(db, 0));
  ChunkedWriter writer(session.get());

  // ITEM table (shared across warehouses).
  for (uint32_t i = 1; i <= scale.items; ++i) {
    Tuple item(5);
    item.Set(col::kIId, static_cast<int64_t>(i));
    item.Set(col::kIImId, rng.UniformInt(1, 10000));
    item.Set(col::kIName, rng.AlphaString(14, 24));
    item.Set(col::kIPrice, static_cast<double>(rng.UniformInt(100, 10000)) / 100.0);
    item.Set(col::kIData, DataString(&rng, 26, 50, true));
    TELL_RETURN_NOT_OK(writer.Insert(tables.item, item));
  }

  int64_t next_history_id = 1;
  int64_t now = 1234567890;

  for (uint32_t w = 1; w <= scale.warehouses; ++w) {
    Tuple warehouse(9);
    warehouse.Set(col::kWId, static_cast<int64_t>(w));
    warehouse.Set(col::kWName, rng.AlphaString(6, 10));
    warehouse.Set(col::kWStreet1, rng.AlphaString(10, 20));
    warehouse.Set(col::kWStreet2, rng.AlphaString(10, 20));
    warehouse.Set(col::kWCity, rng.AlphaString(10, 20));
    warehouse.Set(col::kWState, rng.AlphaString(2, 2));
    warehouse.Set(col::kWZip, ZipCode(&rng));
    warehouse.Set(col::kWTax, static_cast<double>(rng.UniformInt(0, 2000)) / 10000.0);
    warehouse.Set(col::kWYtd, 300000.0);
    TELL_RETURN_NOT_OK(writer.Insert(tables.warehouse, warehouse));

    // STOCK for every item of this warehouse.
    for (uint32_t i = 1; i <= scale.items; ++i) {
      Tuple stock(17);
      stock.Set(col::kSWId, static_cast<int64_t>(w));
      stock.Set(col::kSIId, static_cast<int64_t>(i));
      stock.Set(col::kSQuantity, rng.UniformInt(10, 100));
      for (uint32_t d = 0; d < 10; ++d) {
        stock.Set(col::kSDist01 + d, rng.AlphaString(24, 24));
      }
      stock.Set(col::kSYtd, 0.0);
      stock.Set(col::kSOrderCnt, int64_t{0});
      stock.Set(col::kSRemoteCnt, int64_t{0});
      stock.Set(col::kSData, DataString(&rng, 26, 50, true));
      TELL_RETURN_NOT_OK(writer.Insert(tables.stock, stock));
    }

    for (uint32_t d = 1; d <= scale.districts_per_warehouse; ++d) {
      Tuple district(11);
      district.Set(col::kDWId, static_cast<int64_t>(w));
      district.Set(col::kDId, static_cast<int64_t>(d));
      district.Set(col::kDName, rng.AlphaString(6, 10));
      district.Set(col::kDStreet1, rng.AlphaString(10, 20));
      district.Set(col::kDStreet2, rng.AlphaString(10, 20));
      district.Set(col::kDCity, rng.AlphaString(10, 20));
      district.Set(col::kDState, rng.AlphaString(2, 2));
      district.Set(col::kDZip, ZipCode(&rng));
      district.Set(col::kDTax, static_cast<double>(rng.UniformInt(0, 2000)) / 10000.0);
      district.Set(col::kDYtd, 30000.0);
      district.Set(col::kDNextOId,
                   static_cast<int64_t>(scale.initial_orders_per_district + 1));
      TELL_RETURN_NOT_OK(writer.Insert(tables.district, district));

      // CUSTOMERs of this district.
      for (uint32_t c = 1; c <= scale.customers_per_district; ++c) {
        Tuple customer(21);
        customer.Set(col::kCWId, static_cast<int64_t>(w));
        customer.Set(col::kCDId, static_cast<int64_t>(d));
        customer.Set(col::kCId, static_cast<int64_t>(c));
        customer.Set(col::kCFirst, rng.AlphaString(8, 16));
        customer.Set(col::kCMiddle, std::string("OE"));
        // First 1000 customers get sequential last names, the rest NURand.
        int64_t name_number =
            c <= 1000 ? static_cast<int64_t>(c - 1)
                      : rng.NonUniform(255, kCLast, 0, 999);
        customer.Set(col::kCLast, LastName(name_number));
        customer.Set(col::kCStreet1, rng.AlphaString(10, 20));
        customer.Set(col::kCStreet2, rng.AlphaString(10, 20));
        customer.Set(col::kCCity, rng.AlphaString(10, 20));
        customer.Set(col::kCState, rng.AlphaString(2, 2));
        customer.Set(col::kCZip, ZipCode(&rng));
        customer.Set(col::kCPhone, rng.DigitString(16));
        customer.Set(col::kCSince, now);
        customer.Set(col::kCCredit,
                     std::string(rng.Bernoulli(0.1) ? "BC" : "GC"));
        customer.Set(col::kCCreditLim, 50000.0);
        customer.Set(col::kCDiscount,
                     static_cast<double>(rng.UniformInt(0, 5000)) / 10000.0);
        customer.Set(col::kCBalance, -10.0);
        customer.Set(col::kCYtdPayment, 10.0);
        customer.Set(col::kCPaymentCnt, int64_t{1});
        customer.Set(col::kCDeliveryCnt, int64_t{0});
        customer.Set(col::kCData, rng.AlphaString(300, 500));
        TELL_RETURN_NOT_OK(writer.Insert(tables.customer, customer));

        Tuple history(9);
        history.Set(col::kHId, next_history_id++);
        history.Set(col::kHCId, static_cast<int64_t>(c));
        history.Set(col::kHCDId, static_cast<int64_t>(d));
        history.Set(col::kHCWId, static_cast<int64_t>(w));
        history.Set(col::kHDId, static_cast<int64_t>(d));
        history.Set(col::kHWId, static_cast<int64_t>(w));
        history.Set(col::kHDate, now);
        history.Set(col::kHAmount, 10.0);
        history.Set(col::kHData, rng.AlphaString(12, 24));
        TELL_RETURN_NOT_OK(writer.Insert(tables.history, history));
      }

      // ORDERS: one per customer, customers in random permutation.
      uint32_t num_orders = std::min(scale.initial_orders_per_district,
                                     scale.customers_per_district);
      std::vector<int64_t> customer_permutation(
          scale.customers_per_district);
      std::iota(customer_permutation.begin(), customer_permutation.end(), 1);
      for (size_t i = customer_permutation.size(); i > 1; --i) {
        std::swap(customer_permutation[i - 1],
                  customer_permutation[rng.Uniform(i)]);
      }
      uint32_t first_undelivered = num_orders - num_orders / 3 + 1;
      for (uint32_t o = 1; o <= num_orders; ++o) {
        int64_t ol_cnt = rng.UniformInt(5, 15);
        bool delivered = o < first_undelivered;
        Tuple order(8);
        order.Set(col::kOWId, static_cast<int64_t>(w));
        order.Set(col::kODId, static_cast<int64_t>(d));
        order.Set(col::kOId, static_cast<int64_t>(o));
        order.Set(col::kOCId, customer_permutation[o - 1]);
        order.Set(col::kOEntryD, now);
        if (delivered) {
          order.Set(col::kOCarrierId, rng.UniformInt(1, 10));
        } else {
          order.Set(col::kOCarrierId, std::monostate{});
        }
        order.Set(col::kOOlCnt, ol_cnt);
        order.Set(col::kOAllLocal, int64_t{1});
        TELL_RETURN_NOT_OK(writer.Insert(tables.orders, order));

        for (int64_t ol = 1; ol <= ol_cnt; ++ol) {
          Tuple line(10);
          line.Set(col::kOlWId, static_cast<int64_t>(w));
          line.Set(col::kOlDId, static_cast<int64_t>(d));
          line.Set(col::kOlOId, static_cast<int64_t>(o));
          line.Set(col::kOlNumber, ol);
          line.Set(col::kOlIId,
                   rng.UniformInt(1, static_cast<int64_t>(scale.items)));
          line.Set(col::kOlSupplyWId, static_cast<int64_t>(w));
          if (delivered) {
            line.Set(col::kOlDeliveryD, now);
            line.Set(col::kOlAmount, 0.0);
          } else {
            line.Set(col::kOlDeliveryD, std::monostate{});
            line.Set(col::kOlAmount,
                     static_cast<double>(rng.UniformInt(1, 999999)) / 100.0);
          }
          line.Set(col::kOlQuantity, int64_t{5});
          line.Set(col::kOlDistInfo, rng.AlphaString(24, 24));
          TELL_RETURN_NOT_OK(writer.Insert(tables.order_line, line));
        }

        if (!delivered) {
          Tuple new_order(3);
          new_order.Set(col::kNoWId, static_cast<int64_t>(w));
          new_order.Set(col::kNoDId, static_cast<int64_t>(d));
          new_order.Set(col::kNoOId, static_cast<int64_t>(o));
          TELL_RETURN_NOT_OK(writer.Insert(tables.new_order, new_order));
        }
      }
    }
  }
  return writer.Flush();
}

}  // namespace tell::tpcc
