#ifndef TELL_WORKLOAD_TPCC_TPCC_LOADER_H_
#define TELL_WORKLOAD_TPCC_TPCC_LOADER_H_

#include "common/status.h"
#include "common/random.h"
#include "db/tell_db.h"
#include "workload/tpcc/tpcc_schema.h"

namespace tell::tpcc {

/// Populates the TPC-C tables per clause 4.3 of the spec (sized by `scale`):
/// items; per warehouse stock and 10 districts; per district customers (10%
/// bad credit), one order per customer in random permutation (the newest
/// third undelivered, with NEW-ORDER rows), 5-15 order lines each, and one
/// history row per customer. Deterministic for a given seed.
Status LoadTpcc(db::TellDb* db, const TpccScale& scale, uint64_t seed = 42);

/// C-Load constants for NURand (clause 2.1.6.1); fixed so runs are
/// reproducible. Exposed for the input generator.
inline constexpr int64_t kCLast = 123;
inline constexpr int64_t kCId = 987;
inline constexpr int64_t kOlIId = 4321;

/// Customer last names per clause 4.3.2.3: concatenation of three syllables
/// indexed by the digits of `number` (0-999).
std::string LastName(int64_t number);

}  // namespace tell::tpcc

#endif  // TELL_WORKLOAD_TPCC_TPCC_LOADER_H_
