#include "workload/tpcc/tpcc_driver.h"

#include <atomic>
#include <chrono>
#include <mutex>
#include <thread>

#include "common/logging.h"

namespace tell::tpcc {

Status TellBackend::Prepare(uint32_t num_workers) {
  uint32_t num_pns = db_->num_processing_nodes();
  workers_.clear();
  workers_.resize(num_workers);
  for (uint32_t w = 0; w < num_workers; ++w) {
    uint32_t pn = w % num_pns;
    workers_[w].session = db_->OpenSession(pn, w);
    TELL_ASSIGN_OR_RETURN(TpccTables tables, OpenTpccTables(db_, pn));
    workers_[w].executor = std::make_unique<TpccExecutor>(
        workers_[w].session.get(), tables, txn_options_);
  }
  return Status::OK();
}

Result<TxnOutcome> TellBackend::Execute(uint32_t worker_id,
                                        const TxnInput& input) {
  return workers_[worker_id].executor->Execute(input);
}

sim::VirtualClock* TellBackend::clock(uint32_t worker_id) {
  return workers_[worker_id].session->clock();
}

sim::WorkerMetrics* TellBackend::metrics(uint32_t worker_id) {
  return workers_[worker_id].session->metrics();
}

Result<DriverResult> RunTpcc(TpccBackend* backend,
                             const DriverOptions& options) {
  TELL_RETURN_NOT_OK(backend->Prepare(options.num_workers));
  const uint64_t horizon_ns = options.duration_virtual_ms * 1'000'000ULL;

  std::vector<Status> statuses(options.num_workers);
  std::mutex status_mutex;

  // The per-worker terminal loop — identical under both drivers, so the
  // virtual-time stream of a worker cannot depend on which one ran it. The
  // executor parks/resumes inside backend->Execute (pipeline flushes,
  // commit-manager begins); the loop body itself never blocks.
  auto worker_body = [&](uint32_t w) {
    // Terminals are bound to a home warehouse, spread evenly.
    int64_t home = static_cast<int64_t>(w % options.scale.warehouses) + 1;
    InputGenerator generator(options.scale, options.mix,
                             options.seed * 1000003ULL + w, home);
    generator.set_multi_partition_fraction(options.multi_partition_fraction);
    sim::VirtualClock* clock = backend->clock(w);
    sim::WorkerMetrics* metrics = backend->metrics(w);
    while (clock->now_ns() < horizon_ns) {
      TxnInput input = generator.Next();
      uint64_t start_ns = clock->now_ns();
      auto outcome = backend->Execute(w, input);
      if (!outcome.ok()) {
        std::lock_guard<std::mutex> lock(status_mutex);
        if (statuses[w].ok()) statuses[w] = outcome.status();
        return;
      }
      if (outcome->committed) {
        metrics->response_time.Record(clock->now_ns() - start_ns);
        if (input.type == TxnType::kNewOrder) {
          metrics->committed_new_order += 1;
        }
      }
    }
  };

  DriverResult result;
  const auto wall_start = std::chrono::steady_clock::now();
  if (options.executor_threads > 0) {
    exec::RuntimeOptions exec_options;
    exec_options.threads = options.executor_threads;
    exec_options.pin_cores = options.pin_cores;
    exec::Runtime runtime(exec_options);
    for (uint32_t w = 0; w < options.num_workers; ++w) {
      if (options.home_affinity) {
        // All terminals of one warehouse on one core (see DriverOptions).
        const uint64_t home = w % options.scale.warehouses;
        runtime.Submit([&worker_body, w] { worker_body(w); }, home);
      } else {
        runtime.Submit([&worker_body, w] { worker_body(w); });
      }
    }
    runtime.Run();
    result.exec_stats = runtime.stats();
  } else {
    std::vector<std::thread> threads;
    threads.reserve(options.num_workers);
    for (uint32_t w = 0; w < options.num_workers; ++w) {
      threads.emplace_back([&worker_body, w] { worker_body(w); });
    }
    for (std::thread& thread : threads) thread.join();
  }
  const double wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    wall_start)
          .count();
  for (const Status& status : statuses) {
    TELL_RETURN_NOT_OK(status);
  }

  result.wall_seconds = wall_seconds;
  result.virtual_seconds =
      static_cast<double>(options.duration_virtual_ms) / 1000.0;
  double tpmc = 0;
  double tps = 0;
  for (uint32_t w = 0; w < options.num_workers; ++w) {
    sim::WorkerMetrics* metrics = backend->metrics(w);
    double worker_seconds =
        static_cast<double>(backend->clock(w)->now_ns()) / 1e9;
    if (worker_seconds > 0) {
      tpmc += static_cast<double>(metrics->committed_new_order) * 60.0 /
              worker_seconds;
      tps += static_cast<double>(metrics->committed) / worker_seconds;
    }
    result.merged.Merge(*metrics);
  }
  result.committed = result.merged.committed;
  if (wall_seconds > 0) {
    result.wall_tps = static_cast<double>(result.committed) / wall_seconds;
  }
  result.aborted = result.merged.aborted;
  result.committed_new_order = result.merged.committed_new_order;
  result.tpmc = tpmc;
  result.tps = tps;
  result.abort_rate = result.merged.AbortRate();
  result.buffer_hit_rate = result.merged.BufferHitRate();
  result.mean_response_ms = result.merged.response_time.Mean() / 1e6;
  result.std_response_ms = result.merged.response_time.StdDev() / 1e6;
  result.p50_response_ms =
      static_cast<double>(result.merged.response_time.Percentile(50)) / 1e6;
  result.p95_response_ms =
      static_cast<double>(result.merged.response_time.Percentile(95)) / 1e6;
  result.p99_response_ms =
      static_cast<double>(result.merged.response_time.Percentile(99)) / 1e6;
  result.p999_response_ms =
      static_cast<double>(result.merged.response_time.Percentile(99.9)) / 1e6;
  return result;
}

}  // namespace tell::tpcc
