#include "workload/tpcc/tpcc_schema.h"

namespace tell::tpcc {

using schema::IndexDef;
using schema::SchemaBuilder;

Status CreateTpccTables(db::TellDb* db) {
  TELL_RETURN_NOT_OK(db->CreateTable(
      "warehouse",
      SchemaBuilder()
          .AddInt64("w_id").AddString("w_name").AddString("w_street_1")
          .AddString("w_street_2").AddString("w_city").AddString("w_state")
          .AddString("w_zip").AddDouble("w_tax").AddDouble("w_ytd")
          .SetPrimaryKey({"w_id"})
          .Build(),
      {}));

  TELL_RETURN_NOT_OK(db->CreateTable(
      "district",
      SchemaBuilder()
          .AddInt64("d_w_id").AddInt64("d_id").AddString("d_name")
          .AddString("d_street_1").AddString("d_street_2").AddString("d_city")
          .AddString("d_state").AddString("d_zip").AddDouble("d_tax")
          .AddDouble("d_ytd").AddInt64("d_next_o_id")
          .SetPrimaryKey({"d_w_id", "d_id"})
          .Build(),
      {}));

  IndexDef customer_by_name;
  customer_by_name.name = "by_name";
  customer_by_name.key_columns = {col::kCWId, col::kCDId, col::kCLast,
                                  col::kCFirst};
  customer_by_name.unique = false;
  TELL_RETURN_NOT_OK(db->CreateTable(
      "customer",
      SchemaBuilder()
          .AddInt64("c_w_id").AddInt64("c_d_id").AddInt64("c_id")
          .AddString("c_first").AddString("c_middle").AddString("c_last")
          .AddString("c_street_1").AddString("c_street_2").AddString("c_city")
          .AddString("c_state").AddString("c_zip").AddString("c_phone")
          .AddInt64("c_since").AddString("c_credit").AddDouble("c_credit_lim")
          .AddDouble("c_discount").AddDouble("c_balance")
          .AddDouble("c_ytd_payment").AddInt64("c_payment_cnt")
          .AddInt64("c_delivery_cnt").AddString("c_data")
          .SetPrimaryKey({"c_w_id", "c_d_id", "c_id"})
          .Build(),
      {customer_by_name}));

  TELL_RETURN_NOT_OK(db->CreateTable(
      "history",
      SchemaBuilder()
          .AddInt64("h_id").AddInt64("h_c_id").AddInt64("h_c_d_id")
          .AddInt64("h_c_w_id").AddInt64("h_d_id").AddInt64("h_w_id")
          .AddInt64("h_date").AddDouble("h_amount").AddString("h_data")
          .SetPrimaryKey({"h_id"})
          .Build(),
      {}));

  TELL_RETURN_NOT_OK(db->CreateTable(
      "new_order",
      SchemaBuilder()
          .AddInt64("no_w_id").AddInt64("no_d_id").AddInt64("no_o_id")
          .SetPrimaryKey({"no_w_id", "no_d_id", "no_o_id"})
          .Build(),
      {}));

  IndexDef orders_by_customer;
  orders_by_customer.name = "by_customer";
  orders_by_customer.key_columns = {col::kOWId, col::kODId, col::kOCId,
                                    col::kOId};
  orders_by_customer.unique = false;
  TELL_RETURN_NOT_OK(db->CreateTable(
      "orders",
      SchemaBuilder()
          .AddInt64("o_w_id").AddInt64("o_d_id").AddInt64("o_id")
          .AddInt64("o_c_id").AddInt64("o_entry_d").AddInt64("o_carrier_id")
          .AddInt64("o_ol_cnt").AddInt64("o_all_local")
          .SetPrimaryKey({"o_w_id", "o_d_id", "o_id"})
          .Build(),
      {orders_by_customer}));

  TELL_RETURN_NOT_OK(db->CreateTable(
      "order_line",
      SchemaBuilder()
          .AddInt64("ol_w_id").AddInt64("ol_d_id").AddInt64("ol_o_id")
          .AddInt64("ol_number").AddInt64("ol_i_id")
          .AddInt64("ol_supply_w_id").AddInt64("ol_delivery_d")
          .AddInt64("ol_quantity").AddDouble("ol_amount")
          .AddString("ol_dist_info")
          .SetPrimaryKey({"ol_w_id", "ol_d_id", "ol_o_id", "ol_number"})
          .Build(),
      {}));

  TELL_RETURN_NOT_OK(db->CreateTable(
      "item",
      SchemaBuilder()
          .AddInt64("i_id").AddInt64("i_im_id").AddString("i_name")
          .AddDouble("i_price").AddString("i_data")
          .SetPrimaryKey({"i_id"})
          .Build(),
      {}));

  TELL_RETURN_NOT_OK(db->CreateTable(
      "stock",
      SchemaBuilder()
          .AddInt64("s_w_id").AddInt64("s_i_id").AddInt64("s_quantity")
          .AddString("s_dist_01").AddString("s_dist_02").AddString("s_dist_03")
          .AddString("s_dist_04").AddString("s_dist_05").AddString("s_dist_06")
          .AddString("s_dist_07").AddString("s_dist_08").AddString("s_dist_09")
          .AddString("s_dist_10").AddDouble("s_ytd").AddInt64("s_order_cnt")
          .AddInt64("s_remote_cnt").AddString("s_data")
          .SetPrimaryKey({"s_w_id", "s_i_id"})
          .Build(),
      {}));

  // Home-partition declarations for the phase-switching fast path: TPC-C
  // partitions by warehouse, so every table names its warehouse column.
  // `item` stays unpartitioned — it is read-only reference data, shared by
  // every partition and guarded by the global reference fence.
  tx::Catalog* catalog = db->catalog();
  TELL_RETURN_NOT_OK(catalog->SetPartitionColumn("warehouse", 0));
  TELL_RETURN_NOT_OK(catalog->SetPartitionColumn("district", 0));
  TELL_RETURN_NOT_OK(catalog->SetPartitionColumn("customer", 0));
  TELL_RETURN_NOT_OK(catalog->SetPartitionColumn("history", col::kHWId));
  TELL_RETURN_NOT_OK(catalog->SetPartitionColumn("new_order", 0));
  TELL_RETURN_NOT_OK(catalog->SetPartitionColumn("orders", 0));
  TELL_RETURN_NOT_OK(catalog->SetPartitionColumn("order_line", 0));
  TELL_RETURN_NOT_OK(catalog->SetPartitionColumn("stock", 0));
  return Status::OK();
}

Result<TpccTables> OpenTpccTables(db::TellDb* db, uint32_t pn_id) {
  TpccTables tables;
  TELL_ASSIGN_OR_RETURN(tables.warehouse, db->GetTable(pn_id, "warehouse"));
  TELL_ASSIGN_OR_RETURN(tables.district, db->GetTable(pn_id, "district"));
  TELL_ASSIGN_OR_RETURN(tables.customer, db->GetTable(pn_id, "customer"));
  TELL_ASSIGN_OR_RETURN(tables.history, db->GetTable(pn_id, "history"));
  TELL_ASSIGN_OR_RETURN(tables.new_order, db->GetTable(pn_id, "new_order"));
  TELL_ASSIGN_OR_RETURN(tables.orders, db->GetTable(pn_id, "orders"));
  TELL_ASSIGN_OR_RETURN(tables.order_line, db->GetTable(pn_id, "order_line"));
  TELL_ASSIGN_OR_RETURN(tables.item, db->GetTable(pn_id, "item"));
  TELL_ASSIGN_OR_RETURN(tables.stock, db->GetTable(pn_id, "stock"));
  return tables;
}

}  // namespace tell::tpcc
