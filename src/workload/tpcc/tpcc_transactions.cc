#include "workload/tpcc/tpcc_transactions.h"

#include <algorithm>

#include "common/logging.h"
#include "workload/tpcc/tpcc_loader.h"

namespace tell::tpcc {

using schema::Tuple;
using schema::Value;

// ---------------------------------------------------------------------------
// InputGenerator

int64_t InputGenerator::NURandCustomer() {
  int64_t max_c = static_cast<int64_t>(scale_.customers_per_district);
  return rng_.NonUniform(1023, kCId, 1, max_c);
}

std::string InputGenerator::NURandLastName() {
  int64_t max_name =
      std::min<int64_t>(999, scale_.customers_per_district - 1);
  return LastName(rng_.NonUniform(255, kCLast, 0, max_name));
}

NewOrderInput InputGenerator::MakeNewOrder() {
  NewOrderInput input;
  input.warehouse = home_;
  input.district = rng_.UniformInt(1, scale_.districts_per_warehouse);
  input.customer = NURandCustomer();
  int64_t ol_cnt = rng_.UniformInt(5, 15);
  bool allow_remote = mix_ != Mix::kShardable && scale_.warehouses > 1;
  // Sweep override: decide per TRANSACTION whether it is multi-partition
  // (one remote line) instead of per line — the ablation controls the
  // multi-partition share of transactions, not of lines.
  const bool sweep = multi_partition_fraction_ >= 0.0;
  int64_t remote_line = -1;
  if (sweep && allow_remote && rng_.Bernoulli(multi_partition_fraction_)) {
    remote_line = rng_.UniformInt(1, ol_cnt) - 1;
  }
  for (int64_t i = 0; i < ol_cnt; ++i) {
    NewOrderLine line;
    line.item_id = rng_.NonUniform(8191, kOlIId, 1,
                                   static_cast<int64_t>(scale_.items));
    line.supply_warehouse = input.warehouse;
    // Clause 2.4.1.5.2: 1% of items come from a remote warehouse.
    const bool make_remote = sweep ? i == remote_line
                                   : allow_remote && rng_.Bernoulli(0.01);
    if (make_remote) {
      do {
        line.supply_warehouse = rng_.UniformInt(1, scale_.warehouses);
      } while (line.supply_warehouse == input.warehouse);
      input.remote = true;
    }
    line.quantity = rng_.UniformInt(1, 10);
    input.lines.push_back(line);
  }
  // Clause 2.4.1.4: 1% of new-orders use an invalid item and roll back.
  if (rng_.Bernoulli(0.01)) {
    input.lines.back().item_id = static_cast<int64_t>(scale_.items) + 1;
    input.rollback = true;
  }
  return input;
}

PaymentInput InputGenerator::MakePayment() {
  PaymentInput input;
  input.warehouse = home_;
  input.district = rng_.UniformInt(1, scale_.districts_per_warehouse);
  bool allow_remote = mix_ != Mix::kShardable && scale_.warehouses > 1;
  const double remote_fraction =
      multi_partition_fraction_ >= 0.0 ? multi_partition_fraction_ : 0.15;
  // Clause 2.5.1.2: 85% pay through the home warehouse, 15% remote (or the
  // sweep override's fraction).
  if (allow_remote && rng_.Bernoulli(remote_fraction)) {
    do {
      input.customer_warehouse = rng_.UniformInt(1, scale_.warehouses);
    } while (input.customer_warehouse == input.warehouse);
    input.customer_district =
        rng_.UniformInt(1, scale_.districts_per_warehouse);
    input.remote = true;
  } else {
    input.customer_warehouse = input.warehouse;
    input.customer_district = input.district;
  }
  // 60% select the customer by last name.
  if (rng_.Bernoulli(0.6)) {
    input.by_last_name = true;
    input.customer_last = NURandLastName();
  } else {
    input.customer_id = NURandCustomer();
  }
  input.amount = static_cast<double>(rng_.UniformInt(100, 500000)) / 100.0;
  return input;
}

DeliveryInput InputGenerator::MakeDelivery() {
  return DeliveryInput{home_, rng_.UniformInt(1, 10)};
}

OrderStatusInput InputGenerator::MakeOrderStatus() {
  OrderStatusInput input;
  input.warehouse = home_;
  input.district = rng_.UniformInt(1, scale_.districts_per_warehouse);
  if (rng_.Bernoulli(0.6)) {
    input.by_last_name = true;
    input.customer_last = NURandLastName();
  } else {
    input.customer_id = NURandCustomer();
  }
  return input;
}

StockLevelInput InputGenerator::MakeStockLevel() {
  StockLevelInput input;
  input.warehouse = home_;
  input.district = rng_.UniformInt(1, scale_.districts_per_warehouse);
  input.threshold = rng_.UniformInt(10, 20);
  return input;
}

TxnInput InputGenerator::Next() {
  TxnInput input;
  uint64_t roll = rng_.Uniform(100);
  if (mix_ == Mix::kReadIntensive) {
    // Paper Table 2: 9% new-order, 84% order-status, 7% stock-level.
    if (roll < 9) {
      input.type = TxnType::kNewOrder;
      input.new_order = MakeNewOrder();
    } else if (roll < 93) {
      input.type = TxnType::kOrderStatus;
      input.order_status = MakeOrderStatus();
    } else {
      input.type = TxnType::kStockLevel;
      input.stock_level = MakeStockLevel();
    }
    return input;
  }
  // Standard mix: 45/43/4/4/4.
  if (roll < 45) {
    input.type = TxnType::kNewOrder;
    input.new_order = MakeNewOrder();
  } else if (roll < 88) {
    input.type = TxnType::kPayment;
    input.payment = MakePayment();
  } else if (roll < 92) {
    input.type = TxnType::kDelivery;
    input.delivery = MakeDelivery();
  } else if (roll < 96) {
    input.type = TxnType::kOrderStatus;
    input.order_status = MakeOrderStatus();
  } else {
    input.type = TxnType::kStockLevel;
    input.stock_level = MakeStockLevel();
  }
  return input;
}

// ---------------------------------------------------------------------------
// TpccExecutor

namespace {

/// Commit helper: maps a write-write conflict abort to outcome, propagates
/// real errors.
Result<TxnOutcome> FinishCommit(tx::Transaction* txn) {
  Status st = txn->Commit();
  TxnOutcome outcome;
  if (st.ok()) {
    outcome.committed = true;
    return outcome;
  }
  if (st.IsAborted()) return outcome;  // conflict; counted in metrics
  return st;
}

}  // namespace

tx::TxnOptions TpccExecutor::TxnOptionsFor(int64_t home) const {
  tx::TxnOptions options = txn_options_;
  options.home_partition = force_mvcc_ ? -1 : home;
  return options;
}

Result<std::optional<std::pair<uint64_t, Tuple>>> TpccExecutor::FindCustomer(
    tx::Transaction* txn, int64_t w, int64_t d, bool by_last_name,
    int64_t c_id, const std::string& c_last) {
  if (!by_last_name) {
    return txn->ReadByKeyWithRid(tables_.customer,
                                 {Value(w), Value(d), Value(c_id)});
  }
  // Clause 2.5.2.2 case 2: all customers with the last name, sorted by
  // first name ascending; take the row at position ceil(n/2).
  TELL_ASSIGN_OR_RETURN(
      std::string lo,
      schema::EncodeIndexKeyValues({Value(w), Value(d), Value(c_last)}));
  std::string hi = lo + '\xFF';
  TELL_ASSIGN_OR_RETURN(
      auto matches,
      txn->ScanIndexEncoded(tables_.customer, kCustomerByNameIndex, lo, hi,
                            /*limit=*/0));
  if (matches.empty()) {
    return std::optional<std::pair<uint64_t, Tuple>>{};
  }
  size_t idx = (matches.size() - 1) / 2;  // ceil(n/2) as 1-based position
  return std::optional<std::pair<uint64_t, Tuple>>(std::move(matches[idx]));
}

Result<TxnOutcome> TpccExecutor::NewOrder(const NewOrderInput& input) {
  // A known-remote order (clause 2.4.1.5.2) goes straight to MVCC; a local
  // one declares its warehouse as home and may run on the fast lane.
  tx::Transaction txn(session_,
                      TxnOptionsFor(input.remote ? -1 : input.warehouse));
  TELL_RETURN_NOT_OK(txn.Begin());
  int64_t w = input.warehouse;
  int64_t d = input.district;
  int64_t now = static_cast<int64_t>(session_->clock()->now_ns());

  TELL_ASSIGN_OR_RETURN(std::optional<Tuple> warehouse,
                        txn.ReadByKey(tables_.warehouse, {Value(w)}));
  if (!warehouse.has_value()) return Status::NotFound("warehouse missing");
  double w_tax = warehouse->GetDouble(col::kWTax);
  (void)w_tax;

  TELL_ASSIGN_OR_RETURN(
      auto district,
      txn.ReadByKeyWithRid(tables_.district, {Value(w), Value(d)}));
  if (!district.has_value()) return Status::NotFound("district missing");
  int64_t o_id = district->second.GetInt(col::kDNextOId);
  Tuple district_updated = district->second;
  district_updated.Set(col::kDNextOId, o_id + 1);
  TELL_RETURN_NOT_OK(
      txn.Update(tables_.district, district->first, district_updated));

  TELL_ASSIGN_OR_RETURN(
      std::optional<Tuple> customer,
      txn.ReadByKey(tables_.customer,
                    {Value(w), Value(d), Value(input.customer)}));
  if (!customer.has_value()) return Status::NotFound("customer missing");
  double c_discount = customer->GetDouble(col::kCDiscount);
  (void)c_discount;

  // Look up all items and stocks first, then fetch the records in two
  // batched requests (paper §5.1: aggressive batching). The per-line index
  // lookups go through BatchLookupPrimary, which coalesces the B+tree
  // descents level-by-level when request pipelining is on.
  std::vector<std::vector<Value>> item_keys;
  std::vector<std::vector<Value>> stock_keys;
  item_keys.reserve(input.lines.size());
  stock_keys.reserve(input.lines.size());
  for (const NewOrderLine& line : input.lines) {
    item_keys.push_back({Value(line.item_id)});
    stock_keys.push_back({Value(line.supply_warehouse), Value(line.item_id)});
  }
  TELL_ASSIGN_OR_RETURN(auto item_rid_opts,
                        txn.BatchLookupPrimary(tables_.item, item_keys));
  bool bad_item = false;
  std::vector<uint64_t> item_rids;
  item_rids.reserve(item_rid_opts.size());
  for (const auto& rid : item_rid_opts) {
    if (!rid.has_value()) {
      bad_item = true;
      break;
    }
    item_rids.push_back(*rid);
  }
  if (bad_item) {
    // Clause 2.4.2.3: unused item id -> the transaction rolls back.
    TELL_RETURN_NOT_OK(txn.Abort());
    TxnOutcome outcome;
    outcome.user_abort = true;
    return outcome;
  }
  TELL_ASSIGN_OR_RETURN(auto stock_rid_opts,
                        txn.BatchLookupPrimary(tables_.stock, stock_keys));
  std::vector<uint64_t> stock_rids;
  stock_rids.reserve(stock_rid_opts.size());
  for (const auto& rid : stock_rid_opts) {
    if (!rid.has_value()) {
      return Status::NotFound("stock row missing");
    }
    stock_rids.push_back(*rid);
  }
  TELL_ASSIGN_OR_RETURN(auto items, txn.BatchRead(tables_.item, item_rids));
  TELL_ASSIGN_OR_RETURN(auto stocks, txn.BatchRead(tables_.stock, stock_rids));

  int64_t all_local = input.remote ? 0 : 1;
  Tuple order(8);
  order.Set(col::kOWId, w);
  order.Set(col::kODId, d);
  order.Set(col::kOId, o_id);
  order.Set(col::kOCId, input.customer);
  order.Set(col::kOEntryD, now);
  order.Set(col::kOCarrierId, std::monostate{});
  order.Set(col::kOOlCnt, static_cast<int64_t>(input.lines.size()));
  order.Set(col::kOAllLocal, all_local);
  TELL_RETURN_NOT_OK(
      txn.Insert(tables_.orders, order, /*check_unique=*/false).status());

  Tuple new_order(3);
  new_order.Set(col::kNoWId, w);
  new_order.Set(col::kNoDId, d);
  new_order.Set(col::kNoOId, o_id);
  TELL_RETURN_NOT_OK(
      txn.Insert(tables_.new_order, new_order, /*check_unique=*/false)
          .status());

  for (size_t i = 0; i < input.lines.size(); ++i) {
    const NewOrderLine& line = input.lines[i];
    if (!items[i].has_value() || !stocks[i].has_value()) {
      return Status::NotFound("item/stock row vanished");
    }
    double price = items[i]->GetDouble(col::kIPrice);
    Tuple stock = std::move(*stocks[i]);
    int64_t quantity = stock.GetInt(col::kSQuantity);
    if (quantity >= line.quantity + 10) {
      quantity -= line.quantity;
    } else {
      quantity = quantity - line.quantity + 91;
    }
    stock.Set(col::kSQuantity, quantity);
    stock.Set(col::kSYtd,
              stock.GetDouble(col::kSYtd) + static_cast<double>(line.quantity));
    stock.Set(col::kSOrderCnt, stock.GetInt(col::kSOrderCnt) + 1);
    if (line.supply_warehouse != w) {
      stock.Set(col::kSRemoteCnt, stock.GetInt(col::kSRemoteCnt) + 1);
    }
    TELL_RETURN_NOT_OK(txn.Update(tables_.stock, stock_rids[i], stock));

    Tuple order_line(10);
    order_line.Set(col::kOlWId, w);
    order_line.Set(col::kOlDId, d);
    order_line.Set(col::kOlOId, o_id);
    order_line.Set(col::kOlNumber, static_cast<int64_t>(i + 1));
    order_line.Set(col::kOlIId, line.item_id);
    order_line.Set(col::kOlSupplyWId, line.supply_warehouse);
    order_line.Set(col::kOlDeliveryD, std::monostate{});
    order_line.Set(col::kOlQuantity, line.quantity);
    order_line.Set(col::kOlAmount,
                   static_cast<double>(line.quantity) * price);
    order_line.Set(col::kOlDistInfo,
                   stock.GetString(col::kSDist01 +
                                   static_cast<size_t>(d - 1)));
    TELL_RETURN_NOT_OK(
        txn.Insert(tables_.order_line, order_line, /*check_unique=*/false)
            .status());
  }
  return FinishCommit(&txn);
}

Result<TxnOutcome> TpccExecutor::Payment(const PaymentInput& input) {
  // Remote payments (clause 2.5.1.2) touch the customer's warehouse too.
  tx::Transaction txn(session_,
                      TxnOptionsFor(input.remote ? -1 : input.warehouse));
  TELL_RETURN_NOT_OK(txn.Begin());
  int64_t now = static_cast<int64_t>(session_->clock()->now_ns());

  TELL_ASSIGN_OR_RETURN(
      auto warehouse,
      txn.ReadByKeyWithRid(tables_.warehouse, {Value(input.warehouse)}));
  if (!warehouse.has_value()) return Status::NotFound("warehouse missing");
  Tuple w_row = warehouse->second;
  w_row.Set(col::kWYtd, w_row.GetDouble(col::kWYtd) + input.amount);
  TELL_RETURN_NOT_OK(txn.Update(tables_.warehouse, warehouse->first, w_row));

  TELL_ASSIGN_OR_RETURN(
      auto district,
      txn.ReadByKeyWithRid(tables_.district,
                           {Value(input.warehouse), Value(input.district)}));
  if (!district.has_value()) return Status::NotFound("district missing");
  Tuple d_row = district->second;
  d_row.Set(col::kDYtd, d_row.GetDouble(col::kDYtd) + input.amount);
  TELL_RETURN_NOT_OK(txn.Update(tables_.district, district->first, d_row));

  TELL_ASSIGN_OR_RETURN(
      auto customer,
      FindCustomer(&txn, input.customer_warehouse, input.customer_district,
                   input.by_last_name, input.customer_id,
                   input.customer_last));
  if (!customer.has_value()) return Status::NotFound("customer missing");
  Tuple c_row = customer->second;
  c_row.Set(col::kCBalance, c_row.GetDouble(col::kCBalance) - input.amount);
  c_row.Set(col::kCYtdPayment,
            c_row.GetDouble(col::kCYtdPayment) + input.amount);
  c_row.Set(col::kCPaymentCnt, c_row.GetInt(col::kCPaymentCnt) + 1);
  if (c_row.GetString(col::kCCredit) == "BC") {
    // Clause 2.5.2.2: bad-credit customers get the payment prepended to
    // c_data, truncated to 500 characters.
    std::string data = std::to_string(c_row.GetInt(col::kCId)) + " " +
                       std::to_string(input.customer_district) + " " +
                       std::to_string(input.customer_warehouse) + " " +
                       std::to_string(input.district) + " " +
                       std::to_string(input.warehouse) + " " +
                       std::to_string(input.amount) + "|" +
                       c_row.GetString(col::kCData);
    if (data.size() > 500) data.resize(500);
    c_row.Set(col::kCData, std::move(data));
  }
  TELL_RETURN_NOT_OK(txn.Update(tables_.customer, customer->first, c_row));

  Tuple history(9);
  int64_t h_id =
      (static_cast<int64_t>(session_->worker_id()) + 1) * (int64_t{1} << 40) +
      next_history_seq_++;
  history.Set(col::kHId, h_id);
  history.Set(col::kHCId, c_row.GetInt(col::kCId));
  history.Set(col::kHCDId, input.customer_district);
  history.Set(col::kHCWId, input.customer_warehouse);
  history.Set(col::kHDId, input.district);
  history.Set(col::kHWId, input.warehouse);
  history.Set(col::kHDate, now);
  history.Set(col::kHAmount, input.amount);
  history.Set(col::kHData, w_row.GetString(col::kWName) + "    " +
                               d_row.GetString(col::kDName));
  TELL_RETURN_NOT_OK(
      txn.Insert(tables_.history, history, /*check_unique=*/false).status());
  return FinishCommit(&txn);
}

Result<TxnOutcome> TpccExecutor::Delivery(const DeliveryInput& input) {
  tx::Transaction txn(session_, TxnOptionsFor(input.warehouse));
  TELL_RETURN_NOT_OK(txn.Begin());
  int64_t w = input.warehouse;
  int64_t now = static_cast<int64_t>(session_->clock()->now_ns());

  // Clause 2.7.4: process each district in turn; skip districts with no
  // undelivered orders.
  for (int64_t d = 1; d <= 10; ++d) {
    TELL_ASSIGN_OR_RETURN(
        auto oldest,
        txn.ScanIndex(tables_.new_order, /*index=*/-1, {Value(w), Value(d)},
                      {Value(w), Value(d + 1)}, /*limit=*/1));
    if (oldest.empty()) continue;
    int64_t o_id = oldest[0].second.GetInt(col::kNoOId);
    TELL_RETURN_NOT_OK(txn.Delete(tables_.new_order, oldest[0].first));

    TELL_ASSIGN_OR_RETURN(
        auto order,
        txn.ReadByKeyWithRid(tables_.orders,
                             {Value(w), Value(d), Value(o_id)}));
    if (!order.has_value()) continue;  // should not happen
    Tuple o_row = order->second;
    int64_t c_id = o_row.GetInt(col::kOCId);
    int64_t ol_cnt = o_row.GetInt(col::kOOlCnt);
    o_row.Set(col::kOCarrierId, input.carrier);
    TELL_RETURN_NOT_OK(txn.Update(tables_.orders, order->first, o_row));

    // All lines of the order in one batched lookup (the records stay
    // buffered, so the Reads below are free and the Updates stay local
    // until commit).
    std::vector<std::vector<Value>> line_keys;
    line_keys.reserve(static_cast<size_t>(ol_cnt));
    for (int64_t ol = 1; ol <= ol_cnt; ++ol) {
      line_keys.push_back({Value(w), Value(d), Value(o_id), Value(ol)});
    }
    TELL_ASSIGN_OR_RETURN(auto line_rids,
                          txn.BatchLookupPrimary(tables_.order_line,
                                                 line_keys));
    double total = 0;
    for (const auto& line_rid : line_rids) {
      if (!line_rid.has_value()) continue;
      TELL_ASSIGN_OR_RETURN(std::optional<Tuple> line,
                            txn.Read(tables_.order_line, *line_rid));
      if (!line.has_value()) continue;
      Tuple l_row = std::move(*line);
      total += l_row.GetDouble(col::kOlAmount);
      l_row.Set(col::kOlDeliveryD, now);
      TELL_RETURN_NOT_OK(txn.Update(tables_.order_line, *line_rid, l_row));
    }

    TELL_ASSIGN_OR_RETURN(
        auto customer,
        txn.ReadByKeyWithRid(tables_.customer,
                             {Value(w), Value(d), Value(c_id)}));
    if (!customer.has_value()) continue;
    Tuple c_row = customer->second;
    c_row.Set(col::kCBalance, c_row.GetDouble(col::kCBalance) + total);
    c_row.Set(col::kCDeliveryCnt, c_row.GetInt(col::kCDeliveryCnt) + 1);
    TELL_RETURN_NOT_OK(txn.Update(tables_.customer, customer->first, c_row));
  }
  return FinishCommit(&txn);
}

Result<TxnOutcome> TpccExecutor::OrderStatus(const OrderStatusInput& input) {
  tx::Transaction txn(session_, TxnOptionsFor(input.warehouse));
  TELL_RETURN_NOT_OK(txn.Begin());
  int64_t w = input.warehouse;
  int64_t d = input.district;

  TELL_ASSIGN_OR_RETURN(
      auto customer,
      FindCustomer(&txn, w, d, input.by_last_name, input.customer_id,
                   input.customer_last));
  if (!customer.has_value()) {
    // A NURand last name can miss under scaled-down population; that is a
    // completed (empty) read.
    return FinishCommit(&txn);
  }
  int64_t c_id = customer->second.GetInt(col::kCId);

  // Most recent order of this customer (orders-by-customer index).
  TELL_ASSIGN_OR_RETURN(
      auto orders,
      txn.ScanIndex(tables_.orders, kOrdersByCustomerIndex,
                    {Value(w), Value(d), Value(c_id)},
                    {Value(w), Value(d), Value(c_id + 1)}, /*limit=*/0));
  if (orders.empty()) return FinishCommit(&txn);
  const Tuple& o_row = orders.back().second;
  int64_t o_id = o_row.GetInt(col::kOId);
  int64_t ol_cnt = o_row.GetInt(col::kOOlCnt);

  std::vector<std::vector<Value>> line_keys;
  line_keys.reserve(static_cast<size_t>(ol_cnt));
  for (int64_t ol = 1; ol <= ol_cnt; ++ol) {
    line_keys.push_back({Value(w), Value(d), Value(o_id), Value(ol)});
  }
  TELL_ASSIGN_OR_RETURN(
      auto line_rids, txn.BatchLookupPrimary(tables_.order_line, line_keys));
  for (const auto& line_rid : line_rids) {
    if (!line_rid.has_value()) continue;
    TELL_ASSIGN_OR_RETURN(std::optional<Tuple> line,
                          txn.Read(tables_.order_line, *line_rid));
    (void)line;
  }
  return FinishCommit(&txn);
}

Result<TxnOutcome> TpccExecutor::StockLevel(const StockLevelInput& input) {
  tx::Transaction txn(session_, TxnOptionsFor(input.warehouse));
  TELL_RETURN_NOT_OK(txn.Begin());
  int64_t w = input.warehouse;
  int64_t d = input.district;

  TELL_ASSIGN_OR_RETURN(std::optional<Tuple> district,
                        txn.ReadByKey(tables_.district, {Value(w), Value(d)}));
  if (!district.has_value()) return Status::NotFound("district missing");
  int64_t next_o_id = district->GetInt(col::kDNextOId);

  // Clause 2.8.2.2: distinct items of the last 20 orders.
  int64_t from = std::max<int64_t>(1, next_o_id - 20);
  TELL_ASSIGN_OR_RETURN(
      auto lines,
      txn.ScanIndex(tables_.order_line, /*index=*/-1,
                    {Value(w), Value(d), Value(from)},
                    {Value(w), Value(d), Value(next_o_id)}, /*limit=*/0));
  std::vector<int64_t> item_ids;
  for (const auto& [rid, line] : lines) {
    item_ids.push_back(line.GetInt(col::kOlIId));
  }
  std::sort(item_ids.begin(), item_ids.end());
  item_ids.erase(std::unique(item_ids.begin(), item_ids.end()),
                 item_ids.end());

  // One batched lookup for every distinct item (clause 2.8.2.2 touches up
  // to 20 orders x 15 lines): with pipelining the descents and record
  // fetches coalesce instead of paying ~200 serial round trips.
  std::vector<std::vector<Value>> stock_keys;
  stock_keys.reserve(item_ids.size());
  for (int64_t item : item_ids) {
    stock_keys.push_back({Value(w), Value(item)});
  }
  TELL_ASSIGN_OR_RETURN(auto stock_rid_opts,
                        txn.BatchLookupPrimary(tables_.stock, stock_keys));
  std::vector<uint64_t> stock_rids;
  for (const auto& rid : stock_rid_opts) {
    if (rid.has_value()) stock_rids.push_back(*rid);
  }
  TELL_ASSIGN_OR_RETURN(auto stocks, txn.BatchRead(tables_.stock, stock_rids));
  int64_t low_stock = 0;
  for (const auto& stock : stocks) {
    if (stock.has_value() &&
        stock->GetInt(col::kSQuantity) < input.threshold) {
      ++low_stock;
    }
  }
  (void)low_stock;
  return FinishCommit(&txn);
}

Result<TxnOutcome> TpccExecutor::Dispatch(const TxnInput& input) {
  switch (input.type) {
    case TxnType::kNewOrder:
      return NewOrder(input.new_order);
    case TxnType::kPayment:
      return Payment(input.payment);
    case TxnType::kDelivery:
      return Delivery(input.delivery);
    case TxnType::kOrderStatus:
      return OrderStatus(input.order_status);
    case TxnType::kStockLevel:
      return StockLevel(input.stock_level);
  }
  return Status::InvalidArgument("unknown type");
}

Result<TxnOutcome> TpccExecutor::Execute(const TxnInput& input) {
  Result<TxnOutcome> result = Dispatch(input);
  if (!result.ok() && result.status().IsCrossPartition()) {
    // The fast attempt touched data outside its declared home warehouse
    // (e.g. a secondary-index hit in another partition) and fell back
    // BEFORE any of its writes became visible. Re-run the same input on
    // the MVCC path; the fallback was counted in tx.fastpath.fallbacks,
    // not tx.aborted.
    force_mvcc_ = true;
    result = Dispatch(input);
    force_mvcc_ = false;
  }
  if (!result.ok() && (result.status().IsAborted() ||
                       result.status().IsNotFound())) {
    // Aborted: conflict detected mid-transaction (a newer invisible
    // version). NotFound: the snapshot is stale enough (multi-manager sync
    // delay, §4.2) that rows committed through another commit manager are
    // not visible yet — a legitimate consequence of delayed snapshots; the
    // terminal simply retries. The Transaction destructor notified the
    // commit manager either way.
    return TxnOutcome{};
  }
  return result;
}

}  // namespace tell::tpcc
