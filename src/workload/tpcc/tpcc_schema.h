#ifndef TELL_WORKLOAD_TPCC_TPCC_SCHEMA_H_
#define TELL_WORKLOAD_TPCC_TPCC_SCHEMA_H_

#include <cstdint>

#include "common/status.h"
#include "db/tell_db.h"

namespace tell::tpcc {

/// Scale parameters. The TPC-C spec fixes districts=10, customers=3000,
/// items=100000, orders=3000; the reproduction makes them configurable so
/// benchmark binaries finish in seconds (documented in EXPERIMENTS.md).
struct TpccScale {
  uint32_t warehouses = 4;
  uint32_t districts_per_warehouse = 10;
  uint32_t customers_per_district = 120;
  uint32_t items = 2000;
  uint32_t initial_orders_per_district = 60;  // last third are undelivered

  /// Spec-sized population (200 warehouses as in the paper's runs would
  /// need the paper's cluster; this is the per-warehouse spec shape).
  static TpccScale Spec() {
    TpccScale s;
    s.districts_per_warehouse = 10;
    s.customers_per_district = 3000;
    s.items = 100000;
    s.initial_orders_per_district = 3000;
    return s;
  }
};

// Column indices, in schema order. Kept as plain enums so transaction code
// reads like the spec.
namespace col {

enum Warehouse : uint32_t {
  kWId = 0, kWName, kWStreet1, kWStreet2, kWCity, kWState, kWZip, kWTax,
  kWYtd,
};
enum District : uint32_t {
  kDWId = 0, kDId, kDName, kDStreet1, kDStreet2, kDCity, kDState, kDZip,
  kDTax, kDYtd, kDNextOId,
};
enum Customer : uint32_t {
  kCWId = 0, kCDId, kCId, kCFirst, kCMiddle, kCLast, kCStreet1, kCStreet2,
  kCCity, kCState, kCZip, kCPhone, kCSince, kCCredit, kCCreditLim,
  kCDiscount, kCBalance, kCYtdPayment, kCPaymentCnt, kCDeliveryCnt, kCData,
};
enum History : uint32_t {
  kHId = 0, kHCId, kHCDId, kHCWId, kHDId, kHWId, kHDate, kHAmount, kHData,
};
enum NewOrder : uint32_t { kNoWId = 0, kNoDId, kNoOId };
enum Orders : uint32_t {
  kOWId = 0, kODId, kOId, kOCId, kOEntryD, kOCarrierId, kOOlCnt, kOAllLocal,
};
enum OrderLine : uint32_t {
  kOlWId = 0, kOlDId, kOlOId, kOlNumber, kOlIId, kOlSupplyWId, kOlDeliveryD,
  kOlQuantity, kOlAmount, kOlDistInfo,
};
enum Item : uint32_t { kIId = 0, kIImId, kIName, kIPrice, kIData };
enum Stock : uint32_t {
  kSWId = 0, kSIId, kSQuantity, kSDist01, kSDist02, kSDist03, kSDist04,
  kSDist05, kSDist06, kSDist07, kSDist08, kSDist09, kSDist10, kSYtd,
  kSOrderCnt, kSRemoteCnt, kSData,
};

}  // namespace col

/// Creates the nine TPC-C tables with their primary keys and the two
/// secondary indexes (customer by last name, orders by customer).
Status CreateTpccTables(db::TellDb* db);

/// Handles to all nine tables on one processing node.
struct TpccTables {
  tx::TableHandle* warehouse = nullptr;
  tx::TableHandle* district = nullptr;
  tx::TableHandle* customer = nullptr;
  tx::TableHandle* history = nullptr;
  tx::TableHandle* new_order = nullptr;
  tx::TableHandle* orders = nullptr;
  tx::TableHandle* order_line = nullptr;
  tx::TableHandle* item = nullptr;
  tx::TableHandle* stock = nullptr;
};

Result<TpccTables> OpenTpccTables(db::TellDb* db, uint32_t pn_id);

/// Secondary index positions (into TableMeta::secondaries).
inline constexpr int kCustomerByNameIndex = 0;  // (w, d, last, first)
inline constexpr int kOrdersByCustomerIndex = 0;  // (w, d, c, o_id)

}  // namespace tell::tpcc

#endif  // TELL_WORKLOAD_TPCC_TPCC_SCHEMA_H_
