#ifndef TELL_WORKLOAD_TPCC_TPCC_DRIVER_H_
#define TELL_WORKLOAD_TPCC_TPCC_DRIVER_H_

#include <memory>
#include <vector>

#include "common/result.h"
#include "db/tell_db.h"
#include "exec/runtime.h"
#include "sim/metrics.h"
#include "sim/virtual_clock.h"
#include "workload/tpcc/tpcc_transactions.h"

namespace tell::tpcc {

/// A system under test for the TPC-C driver: Tell itself, or one of the
/// baseline engines (VoltDB-like, MySQL-Cluster-like, FoundationDB-like).
/// Workers are numbered 0..n-1; Execute(w, ...) is never called for the
/// same worker concurrently — by the worker's own OS thread in legacy mode,
/// or by whichever executor thread is running worker w's fiber task under
/// exec::Runtime (tasks migrate between cores but never run twice at once;
/// docs/RUNTIME.md). Each worker owns a VirtualClock and WorkerMetrics
/// supplied by the backend, and the driver stops a worker when its virtual
/// clock passes the horizon.
class TpccBackend {
 public:
  virtual ~TpccBackend() = default;

  virtual Status Prepare(uint32_t num_workers) = 0;
  virtual Result<TxnOutcome> Execute(uint32_t worker_id,
                                     const TxnInput& input) = 0;
  virtual sim::VirtualClock* clock(uint32_t worker_id) = 0;
  virtual sim::WorkerMetrics* metrics(uint32_t worker_id) = 0;
};

/// Backend running TPC-C on the Tell database: one session + executor per
/// worker, workers spread round-robin over the processing nodes.
class TellBackend final : public TpccBackend {
 public:
  explicit TellBackend(db::TellDb* db, const tx::TxnOptions& txn_options = {})
      : db_(db), txn_options_(txn_options) {}

  Status Prepare(uint32_t num_workers) override;
  Result<TxnOutcome> Execute(uint32_t worker_id,
                             const TxnInput& input) override;
  sim::VirtualClock* clock(uint32_t worker_id) override;
  sim::WorkerMetrics* metrics(uint32_t worker_id) override;

 private:
  struct Worker {
    std::unique_ptr<tx::Session> session;
    std::unique_ptr<TpccExecutor> executor;
  };
  db::TellDb* const db_;
  const tx::TxnOptions txn_options_;
  std::vector<Worker> workers_;
};

struct DriverOptions {
  TpccScale scale;
  Mix mix = Mix::kWriteIntensive;
  uint32_t num_workers = 8;
  /// Virtual measurement interval per worker.
  uint64_t duration_virtual_ms = 1000;
  uint64_t seed = 7;
  /// 0 = legacy thread-per-worker (one OS thread per worker, blocking
  /// Future waits). N >= 1 = thread-per-core executor: every worker becomes
  /// a fiber task multiplexed onto N executor threads, parking at pipeline
  /// flushes and commit-manager begins instead of blocking (docs/RUNTIME.md).
  /// Each worker's virtual-time stream is identical either way; only the
  /// wall-clock axis (and, with conflicts, cross-worker interleaving)
  /// changes. executor_threads=1 is fully deterministic.
  uint32_t executor_threads = 0;
  /// Pin executor threads to cores (ignored in legacy mode).
  bool pin_cores = true;
  /// < 0: spec remote probabilities. >= 0: the fraction of new-orders and
  /// payments that touch a second warehouse (InputGenerator override) —
  /// the sweep axis of bench/ablation_fastpath.
  double multi_partition_fraction = -1.0;
  /// Executor mode only: pin each worker's fiber task to executor core
  /// `home_warehouse % threads`, so all fast-path transactions of one
  /// warehouse share a core and its serial lane stays cache-local. Off by
  /// default (work stealing balances better when the fast path is off).
  bool home_affinity = false;
};

/// Aggregated run results; the benches print these next to the paper's
/// numbers.
struct DriverResult {
  uint64_t committed = 0;
  uint64_t aborted = 0;
  uint64_t committed_new_order = 0;
  double virtual_seconds = 0;  // per worker (the horizon)
  /// Wall-clock seconds the run actually took (thread launch to last join).
  /// Unlike every virtual-time number this IS host-dependent: it is the
  /// real-concurrency axis — how fast the real threads got through the real
  /// shared data structures — reported alongside virtual time so engine
  /// scalability changes (e.g. storage-node lock striping) are visible.
  double wall_seconds = 0;
  /// Committed transactions per wall-clock second (all workers combined).
  double wall_tps = 0;
  /// New-order transactions per virtual minute (the TPC-C metric).
  double tpmc = 0;
  /// Committed transactions per virtual second.
  double tps = 0;
  double abort_rate = 0;
  double mean_response_ms = 0;
  double std_response_ms = 0;
  double p50_response_ms = 0;
  double p95_response_ms = 0;
  double p99_response_ms = 0;
  double p999_response_ms = 0;
  double buffer_hit_rate = 0;
  /// Scheduler counters of the executor run (threads == 0 in legacy mode).
  exec::RuntimeStats exec_stats;
  sim::WorkerMetrics merged;
};

/// Runs the workload: each worker drives transactions from its own
/// deterministic InputGenerator until its virtual clock passes the horizon.
/// Terminals have no wait times (§6.2). Legacy mode spawns one OS thread
/// per worker; with `executor_threads` set, workers run as fiber tasks on
/// the exec::Runtime thread-per-core scheduler instead.
Result<DriverResult> RunTpcc(TpccBackend* backend,
                             const DriverOptions& options);

}  // namespace tell::tpcc

#endif  // TELL_WORKLOAD_TPCC_TPCC_DRIVER_H_
