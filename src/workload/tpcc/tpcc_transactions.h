#ifndef TELL_WORKLOAD_TPCC_TPCC_TRANSACTIONS_H_
#define TELL_WORKLOAD_TPCC_TPCC_TRANSACTIONS_H_

#include <cstdint>
#include <string>
#include <variant>
#include <vector>

#include "common/random.h"
#include "common/status.h"
#include "tx/transaction.h"
#include "workload/tpcc/tpcc_schema.h"

namespace tell::tpcc {

// ---------------------------------------------------------------------------
// Transaction inputs (shared by the Tell executor and the baseline engines).

struct NewOrderLine {
  int64_t item_id;
  int64_t supply_warehouse;
  int64_t quantity;
};

struct NewOrderInput {
  int64_t warehouse;
  int64_t district;
  int64_t customer;
  std::vector<NewOrderLine> lines;
  /// Clause 2.4.1.4: 1% of new-orders carry an unused item id and must roll
  /// back at the end.
  bool rollback = false;
  /// True if any line supplies from a remote warehouse (clause 2.4.1.5.2).
  bool remote = false;
};

struct PaymentInput {
  int64_t warehouse;
  int64_t district;
  int64_t customer_warehouse;  // != warehouse in 15% of cases
  int64_t customer_district;
  bool by_last_name = false;  // 60% select by last name
  int64_t customer_id = 0;
  std::string customer_last;
  double amount = 0;
  bool remote = false;
};

struct DeliveryInput {
  int64_t warehouse;
  int64_t carrier;
};

struct OrderStatusInput {
  int64_t warehouse;
  int64_t district;
  bool by_last_name = false;
  int64_t customer_id = 0;
  std::string customer_last;
};

struct StockLevelInput {
  int64_t warehouse;
  int64_t district;
  int64_t threshold;  // 10..20
};

enum class TxnType : int {
  kNewOrder = 0,
  kPayment,
  kDelivery,
  kOrderStatus,
  kStockLevel,
};

struct TxnInput {
  TxnType type;
  NewOrderInput new_order;
  PaymentInput payment;
  DeliveryInput delivery;
  OrderStatusInput order_status;
  StockLevelInput stock_level;
};

/// Workload mixes from the paper's Table 2.
enum class Mix {
  /// Standard TPC-C: 45% new-order, 43% payment, 4% delivery,
  /// 4% order-status, 4% stock-level; 35.84% writes.
  kWriteIntensive,
  /// Read-intensive: 9% new-order, 84% order-status, 7% stock-level;
  /// 4.89% writes.
  kReadIntensive,
  /// Standard percentages, but remote new-order and remote payment replaced
  /// with single-warehouse equivalents (§6.4, "TPC-C shardable").
  kShardable,
};

/// Generates transaction inputs per the spec's terminal rules. Each worker
/// owns one generator (deterministic per seed). `home_warehouse` anchors
/// the terminal (clause 2.4.1.1: terminals are bound to a warehouse).
class InputGenerator {
 public:
  InputGenerator(const TpccScale& scale, Mix mix, uint64_t seed,
                 int64_t home_warehouse)
      : scale_(scale), mix_(mix), rng_(seed), home_(home_warehouse) {}

  TxnInput Next();

  Random* rng() { return &rng_; }

  /// < 0 (default): spec remote probabilities (1% per new-order line, 15%
  /// of payments). >= 0: overrides BOTH — the given fraction of new-orders
  /// supplies one line from a remote warehouse and the same fraction of
  /// payments pays a remote customer — so a bench can sweep the
  /// multi-partition share directly (Fig. 9-style ablation). No effect on
  /// the shardable mix or with a single warehouse (never remote either way).
  void set_multi_partition_fraction(double fraction) {
    multi_partition_fraction_ = fraction;
  }

 private:
  NewOrderInput MakeNewOrder();
  PaymentInput MakePayment();
  DeliveryInput MakeDelivery();
  OrderStatusInput MakeOrderStatus();
  StockLevelInput MakeStockLevel();
  int64_t NURandCustomer();
  std::string NURandLastName();

  const TpccScale scale_;
  const Mix mix_;
  Random rng_;
  const int64_t home_;
  double multi_partition_fraction_ = -1.0;
};

// ---------------------------------------------------------------------------
// Tell executor

/// Per-transaction outcome counters the driver aggregates.
struct TxnOutcome {
  bool committed = false;
  bool user_abort = false;  // intentional rollback (1% of new-orders)
};

/// Executes TPC-C transactions on Tell through the native transaction API
/// (the equivalent of pre-compiled plans; no SQL parsing on the hot path).
class TpccExecutor {
 public:
  /// `txn_options` applies to every transaction (e.g. serializable SI for
  /// the ablation bench).
  TpccExecutor(tx::Session* session, const TpccTables& tables,
               const tx::TxnOptions& txn_options = {})
      : session_(session), tables_(tables), txn_options_(txn_options) {}

  /// Runs one transaction; Aborted status = write-write conflict (counted
  /// by the session metrics automatically).
  Result<TxnOutcome> Execute(const TxnInput& input);

  Result<TxnOutcome> NewOrder(const NewOrderInput& input);
  Result<TxnOutcome> Payment(const PaymentInput& input);
  Result<TxnOutcome> Delivery(const DeliveryInput& input);
  Result<TxnOutcome> OrderStatus(const OrderStatusInput& input);
  Result<TxnOutcome> StockLevel(const StockLevelInput& input);

 private:
  /// Customer lookup per clause 2.5.2.2: by id, or the middle row (ordered
  /// by first name) of all customers with the last name.
  Result<std::optional<std::pair<uint64_t, schema::Tuple>>> FindCustomer(
      tx::Transaction* txn, int64_t w, int64_t d, bool by_last_name,
      int64_t c_id, const std::string& c_last);

  /// Per-transaction options with the declared home partition (= warehouse)
  /// filled in: a single-warehouse transaction runs on the fast lane when
  /// the session has a fast-path coordinator. `home` < 0 (a known
  /// multi-warehouse input, or a re-run after a cross-partition fallback)
  /// forces the MVCC path.
  tx::TxnOptions TxnOptionsFor(int64_t home) const;

  Result<TxnOutcome> Dispatch(const TxnInput& input);

  tx::Session* const session_;
  TpccTables tables_;
  const tx::TxnOptions txn_options_;
  /// Set while re-running a transaction that fell back off the fast path.
  bool force_mvcc_ = false;
  int64_t next_history_seq_ = 0;
};

}  // namespace tell::tpcc

#endif  // TELL_WORKLOAD_TPCC_TPCC_TRANSACTIONS_H_
