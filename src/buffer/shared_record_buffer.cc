#include "buffer/shared_record_buffer.h"

#include "common/serde.h"

namespace tell::buffer {

namespace {
// Modelled CPU cost of one shared-buffer interaction (latch + hash probe +
// snapshot subset test + LRU maintenance).
constexpr uint64_t kManagementOverheadNs = 1'000;
}  // namespace

void SharedRecordBuffer::OnTransactionStart(
    const tx::SnapshotDescriptor& snapshot) {
  std::lock_guard<std::mutex> lock(mutex_);
  // Snapshots grow monotonically; merging keeps V_max the largest set seen.
  v_max_.MergeFrom(snapshot);
}

void SharedRecordBuffer::TouchLocked(const Key& key, Entry& entry) {
  lru_.erase(entry.lru_position);
  lru_.push_front(key);
  entry.lru_position = lru_.begin();
}

void SharedRecordBuffer::InsertLocked(const Key& key, std::string bytes,
                                      uint64_t stamp,
                                      tx::SnapshotDescriptor valid_for) {
  auto it = entries_.find(key);
  if (it != entries_.end()) {
    it->second.record_bytes = std::move(bytes);
    it->second.stamp = stamp;
    it->second.valid_for = std::move(valid_for);
    TouchLocked(key, it->second);
    return;
  }
  while (entries_.size() >= capacity_ && !lru_.empty()) {
    entries_.erase(lru_.back());
    lru_.pop_back();
    stats_.evictions += 1;
  }
  lru_.push_front(key);
  Entry entry;
  entry.record_bytes = std::move(bytes);
  entry.stamp = stamp;
  entry.valid_for = std::move(valid_for);
  entry.lru_position = lru_.begin();
  entries_.emplace(key, std::move(entry));
}

Result<tx::FetchedRecord> SharedRecordBuffer::Read(
    store::StorageClient* client, store::TableId table, uint64_t rid,
    const tx::SnapshotDescriptor& snapshot) {
  // Buffer management is not free (paper §5.5.2 / Fig. 11: "the overhead of
  // buffer management outweighs the caching benefits"): every probe pays
  // the lock + map lookup + version-set comparison.
  client->ChargeCpu(kManagementOverheadNs);
  Key key{table, rid};
  {
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = entries_.find(key);
    if (it != entries_.end() && snapshot.IsSubsetOf(it->second.valid_for)) {
      // Condition 1: V_tx ⊆ B — serve from the buffer, no storage trip.
      client->metrics()->buffer_hits += 1;
      stats_.hits += 1;
      TELL_ASSIGN_OR_RETURN(
          schema::VersionedRecord record,
          schema::VersionedRecord::Deserialize(it->second.record_bytes));
      uint64_t stamp = it->second.stamp;
      TouchLocked(key, it->second);
      return tx::FetchedRecord{std::move(record), stamp};
    }
  }
  // Condition 2: the cache might be outdated — fetch from the storage
  // system and replace the entry with B = V_max.
  client->metrics()->buffer_misses += 1;
  auto cell = client->Get(table, EncodeOrderedU64(rid));
  if (!cell.ok()) return cell.status();
  TELL_ASSIGN_OR_RETURN(schema::VersionedRecord record,
                        schema::VersionedRecord::Deserialize(cell->value));
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stats_.misses += 1;
    InsertLocked(key, cell->value, cell->stamp, v_max_);
  }
  return tx::FetchedRecord{std::move(record), cell->stamp};
}

void SharedRecordBuffer::OnApply(store::StorageClient* client,
                                 store::TableId table, uint64_t rid,
                                 const schema::VersionedRecord& record,
                                 uint64_t stamp, tx::Tid tid,
                                 const tx::SnapshotDescriptor& snapshot) {
  (void)snapshot;
  client->ChargeCpu(2 * kManagementOverheadNs);  // write-through + B update
  // Write-through: B = V_max ∪ {tid}. V_max is valid for the new copy
  // because any V_max transaction that had changed this record would have
  // made our LL/SC apply fail.
  std::lock_guard<std::mutex> lock(mutex_);
  stats_.write_throughs += 1;
  tx::SnapshotDescriptor valid_for = v_max_;
  valid_for.MarkCompleted(tid);
  InsertLocked({table, rid}, record.Serialize(), stamp, std::move(valid_for));
}

void SharedRecordBuffer::AccumulateStats(tx::BufferStats* out) const {
  std::lock_guard<std::mutex> lock(mutex_);
  out->Accumulate(stats_);
}

size_t SharedRecordBuffer::size() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return entries_.size();
}

}  // namespace tell::buffer
