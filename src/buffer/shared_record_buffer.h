#ifndef TELL_BUFFER_SHARED_RECORD_BUFFER_H_
#define TELL_BUFFER_SHARED_RECORD_BUFFER_H_

#include <cstdint>
#include <list>
#include <map>
#include <mutex>

#include "tx/record_buffer.h"

namespace tell::buffer {

/// Strategy SB (paper §5.5.2): a PN-wide record buffer shared by all
/// transactions of the processing node, between the per-transaction buffers
/// and the storage system.
///
/// Every buffered record carries a version number set B (represented as a
/// snapshot descriptor) stating for which snapshots the copy is valid. A
/// transaction with version set V_tx may read the buffered copy iff
/// V_tx ⊆ B; otherwise the record is re-fetched and B is reset to V_max, the
/// version set of the most recently started transaction on this PN (all
/// transactions in V_max committed before the fetch, so V_max is certainly
/// valid — and keeping B as large as possible maximizes future hits).
/// Updates are written through: after a successful commit apply, B becomes
/// V_max ∪ {tid}.
class SharedRecordBuffer final : public tx::RecordBuffer {
 public:
  explicit SharedRecordBuffer(size_t capacity = 1 << 18)
      : capacity_(capacity) {}

  Result<tx::FetchedRecord> Read(store::StorageClient* client,
                                 store::TableId table, uint64_t rid,
                                 const tx::SnapshotDescriptor& snapshot)
      override;

  void OnApply(store::StorageClient* client, store::TableId table,
               uint64_t rid, const schema::VersionedRecord& record,
               uint64_t stamp, tx::Tid tid,
               const tx::SnapshotDescriptor& snapshot) override;

  void OnTransactionStart(const tx::SnapshotDescriptor& snapshot) override;

  void AccumulateStats(tx::BufferStats* out) const override;

  size_t size() const;

 private:
  struct Entry {
    std::string record_bytes;
    uint64_t stamp = 0;
    tx::SnapshotDescriptor valid_for;  // B
    std::list<std::pair<store::TableId, uint64_t>>::iterator lru_position;
  };

  using Key = std::pair<store::TableId, uint64_t>;

  void TouchLocked(const Key& key, Entry& entry);
  void InsertLocked(const Key& key, std::string bytes, uint64_t stamp,
                    tx::SnapshotDescriptor valid_for);

  const size_t capacity_;
  mutable std::mutex mutex_;
  tx::BufferStats stats_;  // guarded by mutex_
  std::map<Key, Entry> entries_;
  std::list<Key> lru_;  // front = most recent
  /// V_max: snapshot of the most recently started transaction on this PN.
  tx::SnapshotDescriptor v_max_;
};

}  // namespace tell::buffer

#endif  // TELL_BUFFER_SHARED_RECORD_BUFFER_H_
