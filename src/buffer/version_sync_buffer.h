#ifndef TELL_BUFFER_VERSION_SYNC_BUFFER_H_
#define TELL_BUFFER_VERSION_SYNC_BUFFER_H_

#include <cstdint>
#include <map>
#include <mutex>
#include <string>

#include "tx/record_buffer.h"

namespace tell::buffer {

/// Strategy SBVS (paper §5.5.3): a shared record buffer whose validity is
/// synchronized *through the storage system*. Records are grouped into cache
/// units of `unit_size` consecutive rids; each unit has a version number set
/// cell in a dedicated storage table. A PN validates its buffered records by
/// fetching only the unit's (small) version set instead of the records —
/// saving bandwidth at the cost of extra requests:
///
///   1. V_tx ⊆ B(local unit)        -> serve from the buffer.
///   2. otherwise fetch B' from the store:
///      (a) B' == B  -> the buffered record is still valid;
///      (b) B' != B  -> invalidate the unit and re-fetch the record.
///
/// On every record update the committing transaction additionally rewrites
/// the unit's version set cell (B = V_max ∪ {tid}), which invalidates the
/// unit on every other PN. The higher the write ratio, the more the extra
/// update requests and unit-wide invalidations cost — which is exactly why
/// the paper's Fig. 11 shows SBVS losing to plain TB under TPC-C.
class VersionSyncBuffer final : public tx::RecordBuffer {
 public:
  /// `version_set_table` must be a dedicated storage table for the version
  /// set cells (created by TellDb). `unit_size` is the number of consecutive
  /// rids per cache unit (the paper evaluates 10 and 1000).
  VersionSyncBuffer(store::TableId version_set_table, uint64_t unit_size,
                    size_t capacity = 1 << 18)
      : version_set_table_(version_set_table),
        unit_size_(unit_size),
        capacity_(capacity) {}

  Result<tx::FetchedRecord> Read(store::StorageClient* client,
                                 store::TableId table, uint64_t rid,
                                 const tx::SnapshotDescriptor& snapshot)
      override;

  void OnApply(store::StorageClient* client, store::TableId table,
               uint64_t rid, const schema::VersionedRecord& record,
               uint64_t stamp, tx::Tid tid,
               const tx::SnapshotDescriptor& snapshot) override;

  void OnTransactionStart(const tx::SnapshotDescriptor& snapshot) override;

  void AccumulateStats(tx::BufferStats* out) const override;

  uint64_t unit_size() const { return unit_size_; }

 private:
  struct CachedRecord {
    std::string record_bytes;
    uint64_t stamp = 0;
  };
  struct Unit {
    tx::SnapshotDescriptor valid_for;  // B of the whole unit
    bool has_version_set = false;
    std::map<uint64_t, CachedRecord> records;  // rid -> copy
  };
  using UnitKey = std::pair<store::TableId, uint64_t>;

  UnitKey UnitFor(store::TableId table, uint64_t rid) const {
    return {table, rid / unit_size_};
  }
  std::string UnitCellKey(const UnitKey& unit) const;

  /// Fetches the record from the store and caches it under the unit.
  Result<tx::FetchedRecord> FetchAndCache(store::StorageClient* client,
                                          store::TableId table, uint64_t rid,
                                          Unit* unit);

  const store::TableId version_set_table_;
  const uint64_t unit_size_;
  const size_t capacity_;  // max cached records across all units

  mutable std::mutex mutex_;
  tx::BufferStats stats_;  // guarded by mutex_
  std::map<UnitKey, Unit> units_;
  size_t cached_records_ = 0;
  tx::SnapshotDescriptor v_max_;
};

}  // namespace tell::buffer

#endif  // TELL_BUFFER_VERSION_SYNC_BUFFER_H_
