#include "buffer/version_sync_buffer.h"

#include "common/serde.h"

namespace tell::buffer {

void VersionSyncBuffer::OnTransactionStart(
    const tx::SnapshotDescriptor& snapshot) {
  std::lock_guard<std::mutex> lock(mutex_);
  v_max_.MergeFrom(snapshot);
}

std::string VersionSyncBuffer::UnitCellKey(const UnitKey& unit) const {
  BufferWriter writer;
  writer.PutU32(unit.first);
  writer.PutU64(unit.second);
  return writer.Release();
}

Result<tx::FetchedRecord> VersionSyncBuffer::FetchAndCache(
    store::StorageClient* client, store::TableId table, uint64_t rid,
    Unit* unit) {
  client->metrics()->buffer_misses += 1;
  stats_.misses += 1;
  auto cell = client->Get(table, EncodeOrderedU64(rid));
  if (!cell.ok()) return cell.status();
  TELL_ASSIGN_OR_RETURN(schema::VersionedRecord record,
                        schema::VersionedRecord::Deserialize(cell->value));
  if (cached_records_ < capacity_) {
    auto [it, inserted] =
        unit->records.insert_or_assign(rid, CachedRecord{cell->value,
                                                         cell->stamp});
    if (inserted) ++cached_records_;
  }
  return tx::FetchedRecord{std::move(record), cell->stamp};
}

Result<tx::FetchedRecord> VersionSyncBuffer::Read(
    store::StorageClient* client, store::TableId table, uint64_t rid,
    const tx::SnapshotDescriptor& snapshot) {
  std::lock_guard<std::mutex> lock(mutex_);
  UnitKey unit_key = UnitFor(table, rid);
  Unit& unit = units_[unit_key];

  auto serve_cached = [&](const CachedRecord& cached)
      -> Result<tx::FetchedRecord> {
    client->metrics()->buffer_hits += 1;
    stats_.hits += 1;
    TELL_ASSIGN_OR_RETURN(
        schema::VersionedRecord record,
        schema::VersionedRecord::Deserialize(cached.record_bytes));
    return tx::FetchedRecord{std::move(record), cached.stamp};
  };

  auto cached_it = unit.records.find(rid);
  if (cached_it != unit.records.end() && unit.has_version_set &&
      snapshot.IsSubsetOf(unit.valid_for)) {
    // Condition 1: the local B already covers V_tx.
    return serve_cached(cached_it->second);
  }

  // Condition 2: validate via the unit's version set in the store — one
  // small request instead of re-fetching whole records.
  auto vs_cell = client->Get(version_set_table_, UnitCellKey(unit_key));
  if (vs_cell.ok()) {
    auto remote = tx::SnapshotDescriptor::Deserialize(vs_cell->value);
    if (remote.ok()) {
      if (unit.has_version_set && *remote == unit.valid_for &&
          cached_it != unit.records.end()) {
        // 2(a): nothing changed since we cached the unit.
        return serve_cached(cached_it->second);
      }
      // 2(b): the unit changed (or we never had its version set):
      // invalidate every buffered record of the unit and adopt B'.
      cached_records_ -= unit.records.size();
      stats_.evictions += unit.records.size();
      unit.records.clear();
      unit.valid_for = std::move(*remote);
      unit.has_version_set = true;
      return FetchAndCache(client, table, rid, &unit);
    }
  }
  // No version set cell yet (unit never written through SBVS): fall back to
  // labelling with V_max, like the plain shared buffer.
  cached_records_ -= unit.records.size();
  stats_.evictions += unit.records.size();
  unit.records.clear();
  unit.valid_for = v_max_;
  unit.has_version_set = true;
  return FetchAndCache(client, table, rid, &unit);
}

void VersionSyncBuffer::OnApply(store::StorageClient* client,
                                store::TableId table, uint64_t rid,
                                const schema::VersionedRecord& record,
                                uint64_t stamp, tx::Tid tid,
                                const tx::SnapshotDescriptor& snapshot) {
  std::lock_guard<std::mutex> lock(mutex_);
  UnitKey unit_key = UnitFor(table, rid);
  Unit& unit = units_[unit_key];
  // B = V_max ∪ {tid}; written to the store so other PNs see the change
  // (this is the extra update request SBVS pays per record update).
  tx::SnapshotDescriptor updated = v_max_;
  updated.MergeFrom(snapshot);
  updated.MarkCompleted(tid);
  (void)client->Put(version_set_table_, UnitCellKey(unit_key),
                    updated.Serialize());
  // Updating the version set invalidates every buffered record of the unit;
  // the freshly written record is re-inserted with the new B.
  stats_.write_throughs += 1;
  cached_records_ -= unit.records.size();
  stats_.evictions += unit.records.size();
  unit.records.clear();
  unit.valid_for = std::move(updated);
  unit.has_version_set = true;
  if (cached_records_ < capacity_) {
    unit.records.emplace(rid, CachedRecord{record.Serialize(), stamp});
    ++cached_records_;
  }
}

void VersionSyncBuffer::AccumulateStats(tx::BufferStats* out) const {
  std::lock_guard<std::mutex> lock(mutex_);
  out->Accumulate(stats_);
}

}  // namespace tell::buffer
