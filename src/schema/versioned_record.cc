#include "schema/versioned_record.h"

#include <cstddef>
#include <algorithm>

#include "common/serde.h"

namespace tell::schema {

void VersionedRecord::PutVersion(Tid tid, std::string payload,
                                 bool tombstone) {
  auto it = std::lower_bound(
      versions_.begin(), versions_.end(), tid,
      [](const RecordVersion& v, Tid t) { return v.version < t; });
  if (it != versions_.end() && it->version == tid) {
    it->payload = std::move(payload);
    it->tombstone = tombstone;
    return;
  }
  versions_.insert(it, RecordVersion{tid, tombstone, std::move(payload)});
}

bool VersionedRecord::RemoveVersion(Tid tid) {
  auto it = std::lower_bound(
      versions_.begin(), versions_.end(), tid,
      [](const RecordVersion& v, Tid t) { return v.version < t; });
  if (it == versions_.end() || it->version != tid) return false;
  versions_.erase(it);
  return true;
}

bool VersionedRecord::HasVersion(Tid tid) const {
  auto it = std::lower_bound(
      versions_.begin(), versions_.end(), tid,
      [](const RecordVersion& v, Tid t) { return v.version < t; });
  return it != versions_.end() && it->version == tid;
}

const RecordVersion* VersionedRecord::VisibleVersion(
    const SnapshotDescriptor& snapshot, Tid own_tid) const {
  // Versions are sorted ascending; walk from the newest down and return the
  // first visible one (v = max(V' ∩ V), paper §4.2).
  for (auto it = versions_.rbegin(); it != versions_.rend(); ++it) {
    if (it->version == own_tid || snapshot.CanRead(it->version)) {
      return &*it;
    }
  }
  return nullptr;
}

const RecordVersion* VersionedRecord::Newest() const {
  return versions_.empty() ? nullptr : &versions_.back();
}

size_t VersionedRecord::CollectGarbage(Tid lav) {
  // C := { x in V | x <= lav };  G := C \ { max(C) }.
  size_t visible_to_all = 0;
  for (const RecordVersion& v : versions_) {
    if (v.version <= lav) ++visible_to_all;
  }
  if (visible_to_all <= 1) return 0;
  size_t to_remove = visible_to_all - 1;  // keep max(C)
  versions_.erase(versions_.begin(),
                  versions_.begin() + static_cast<ptrdiff_t>(to_remove));
  return to_remove;
}

bool VersionedRecord::DeadAt(Tid lav) const {
  if (versions_.empty()) return true;
  const RecordVersion& newest = versions_.back();
  return newest.tombstone && newest.version <= lav;
}

std::string VersionedRecord::Serialize() const {
  BufferWriter writer;
  writer.PutU32(static_cast<uint32_t>(versions_.size()));
  for (const RecordVersion& v : versions_) {
    writer.PutU64(v.version);
    writer.PutU8(v.tombstone ? 1 : 0);
    writer.PutString(v.payload);
  }
  return writer.Release();
}

Result<VersionedRecord> VersionedRecord::Deserialize(std::string_view data) {
  BufferReader reader(data);
  TELL_ASSIGN_OR_RETURN(uint32_t count, reader.GetU32());
  VersionedRecord record;
  // Reserve only what the buffer could possibly hold (a corrupt count must
  // not trigger a huge allocation).
  record.versions_.reserve(
      std::min<size_t>(count, reader.remaining() / 10 + 1));
  Tid previous = 0;
  for (uint32_t i = 0; i < count; ++i) {
    RecordVersion v;
    TELL_ASSIGN_OR_RETURN(v.version, reader.GetU64());
    TELL_ASSIGN_OR_RETURN(uint8_t tombstone, reader.GetU8());
    v.tombstone = tombstone != 0;
    TELL_ASSIGN_OR_RETURN(std::string_view payload, reader.GetString());
    v.payload.assign(payload);
    if (i > 0 && v.version <= previous) {
      return Status::Corruption("record versions out of order");
    }
    previous = v.version;
    record.versions_.push_back(std::move(v));
  }
  return record;
}

}  // namespace tell::schema
