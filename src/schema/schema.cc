#include "schema/schema.h"

#include "common/logging.h"

namespace tell::schema {

std::string_view ColumnTypeName(ColumnType type) {
  switch (type) {
    case ColumnType::kInt64:
      return "INT";
    case ColumnType::kDouble:
      return "DOUBLE";
    case ColumnType::kString:
      return "VARCHAR";
  }
  return "?";
}

Schema::Schema(std::vector<Column> columns, std::vector<uint32_t> primary_key)
    : columns_(std::move(columns)), primary_key_(std::move(primary_key)) {
  for (uint32_t i = 0; i < columns_.size(); ++i) {
    by_name_.emplace(columns_[i].name, i);
  }
  for (uint32_t pk : primary_key_) {
    TELL_CHECK(pk < columns_.size());
  }
}

Result<uint32_t> Schema::ColumnIndex(std::string_view name) const {
  auto it = by_name_.find(name);
  if (it == by_name_.end()) {
    return Status::NotFound("no column '" + std::string(name) + "'");
  }
  return it->second;
}

SchemaBuilder& SchemaBuilder::AddInt64(std::string name) {
  columns_.push_back({std::move(name), ColumnType::kInt64});
  return *this;
}

SchemaBuilder& SchemaBuilder::AddDouble(std::string name) {
  columns_.push_back({std::move(name), ColumnType::kDouble});
  return *this;
}

SchemaBuilder& SchemaBuilder::AddString(std::string name) {
  columns_.push_back({std::move(name), ColumnType::kString});
  return *this;
}

SchemaBuilder& SchemaBuilder::SetPrimaryKey(
    const std::vector<std::string>& names) {
  primary_key_names_ = names;
  return *this;
}

Schema SchemaBuilder::Build() {
  std::vector<uint32_t> pk;
  for (const auto& name : primary_key_names_) {
    bool found = false;
    for (uint32_t i = 0; i < columns_.size(); ++i) {
      if (columns_[i].name == name) {
        pk.push_back(i);
        found = true;
        break;
      }
    }
    TELL_CHECK(found);
  }
  return Schema(std::move(columns_), std::move(pk));
}

}  // namespace tell::schema
