#ifndef TELL_SCHEMA_SCHEMA_H_
#define TELL_SCHEMA_SCHEMA_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/status.h"

namespace tell::schema {

/// Column data types. Kept deliberately small; everything TPC-C and the SQL
/// layer need.
enum class ColumnType : uint8_t {
  kInt64 = 0,
  kDouble = 1,
  kString = 2,
};

std::string_view ColumnTypeName(ColumnType type);

struct Column {
  std::string name;
  ColumnType type;
};

/// Definition of one index over a table: the ordered list of key columns.
/// `unique` enforces at most one rid per key (primary keys are unique).
struct IndexDef {
  std::string name;
  std::vector<uint32_t> key_columns;
  bool unique = false;
};

/// A relational table schema: ordered columns plus the primary key column
/// list. Immutable once built.
class Schema {
 public:
  Schema() = default;
  Schema(std::vector<Column> columns, std::vector<uint32_t> primary_key);

  const std::vector<Column>& columns() const { return columns_; }
  const std::vector<uint32_t>& primary_key() const { return primary_key_; }
  size_t num_columns() const { return columns_.size(); }

  /// Index of a column by name, or NotFound.
  Result<uint32_t> ColumnIndex(std::string_view name) const;

  const Column& column(uint32_t index) const { return columns_[index]; }

 private:
  std::vector<Column> columns_;
  std::vector<uint32_t> primary_key_;
  std::map<std::string, uint32_t, std::less<>> by_name_;
};

/// Convenience builder:
///   Schema s = SchemaBuilder()
///       .AddInt64("id").AddString("name").AddDouble("balance")
///       .SetPrimaryKey({"id"}).Build();
class SchemaBuilder {
 public:
  SchemaBuilder& AddInt64(std::string name);
  SchemaBuilder& AddDouble(std::string name);
  SchemaBuilder& AddString(std::string name);
  SchemaBuilder& SetPrimaryKey(const std::vector<std::string>& names);
  Schema Build();

 private:
  std::vector<Column> columns_;
  std::vector<std::string> primary_key_names_;
};

}  // namespace tell::schema

#endif  // TELL_SCHEMA_SCHEMA_H_
