#ifndef TELL_SCHEMA_TUPLE_H_
#define TELL_SCHEMA_TUPLE_H_

#include <cstdint>
#include <string>
#include <variant>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "schema/schema.h"

namespace tell::schema {

/// One column value. monostate = SQL NULL.
using Value = std::variant<std::monostate, int64_t, double, std::string>;

bool ValueIsNull(const Value& v);
/// Three-way comparison; NULL sorts first. Numeric types compare across
/// int64/double.
int CompareValues(const Value& a, const Value& b);
std::string ValueToString(const Value& v);

/// One row, positionally matching a Schema. Plain value container.
class Tuple {
 public:
  Tuple() = default;
  explicit Tuple(size_t num_columns) : values_(num_columns) {}
  explicit Tuple(std::vector<Value> values) : values_(std::move(values)) {}

  size_t size() const { return values_.size(); }
  const Value& at(size_t i) const { return values_[i]; }
  Value& at(size_t i) { return values_[i]; }
  void Set(size_t i, Value v) { values_[i] = std::move(v); }
  const std::vector<Value>& values() const { return values_; }

  int64_t GetInt(size_t i) const { return std::get<int64_t>(values_[i]); }
  double GetDouble(size_t i) const { return std::get<double>(values_[i]); }
  const std::string& GetString(size_t i) const {
    return std::get<std::string>(values_[i]);
  }

  /// Serializes against `schema` (types must match positionally; NULLs
  /// allowed anywhere).
  std::string Serialize(const Schema& schema) const;
  static Result<Tuple> Deserialize(const Schema& schema,
                                   std::string_view data);

  bool operator==(const Tuple& other) const;

 private:
  std::vector<Value> values_;
};

/// Builds the order-preserving index key for `tuple` over the given key
/// columns: fixed-width big-endian for numerics, NUL-terminated for strings
/// (embedded NULs are not supported in key columns — enforced at insert).
Result<std::string> EncodeIndexKey(const Tuple& tuple,
                                   const std::vector<uint32_t>& key_columns);

/// Encodes raw values (for building search keys without a full tuple).
Result<std::string> EncodeIndexKeyValues(const std::vector<Value>& values);

}  // namespace tell::schema

#endif  // TELL_SCHEMA_TUPLE_H_
