#include "schema/tuple.h"

#include <cmath>

#include "common/serde.h"

namespace tell::schema {

namespace {
// Value tags in the tuple wire format.
constexpr uint8_t kTagNull = 0;
constexpr uint8_t kTagInt64 = 1;
constexpr uint8_t kTagDouble = 2;
constexpr uint8_t kTagString = 3;
}  // namespace

bool ValueIsNull(const Value& v) {
  return std::holds_alternative<std::monostate>(v);
}

int CompareValues(const Value& a, const Value& b) {
  bool a_null = ValueIsNull(a);
  bool b_null = ValueIsNull(b);
  if (a_null || b_null) {
    if (a_null && b_null) return 0;
    return a_null ? -1 : 1;
  }
  // Numeric cross-type comparison.
  auto numeric = [](const Value& v, double* out) {
    if (const int64_t* i = std::get_if<int64_t>(&v)) {
      *out = static_cast<double>(*i);
      return true;
    }
    if (const double* d = std::get_if<double>(&v)) {
      *out = *d;
      return true;
    }
    return false;
  };
  double da, db;
  if (numeric(a, &da) && numeric(b, &db)) {
    if (da < db) return -1;
    if (da > db) return 1;
    return 0;
  }
  const std::string* sa = std::get_if<std::string>(&a);
  const std::string* sb = std::get_if<std::string>(&b);
  if (sa != nullptr && sb != nullptr) {
    int c = sa->compare(*sb);
    return c < 0 ? -1 : (c > 0 ? 1 : 0);
  }
  // Mixed string/number: order by type tag for a stable total order.
  return a.index() < b.index() ? -1 : 1;
}

std::string ValueToString(const Value& v) {
  if (ValueIsNull(v)) return "NULL";
  if (const int64_t* i = std::get_if<int64_t>(&v)) return std::to_string(*i);
  if (const double* d = std::get_if<double>(&v)) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.2f", *d);
    return buf;
  }
  return std::get<std::string>(v);
}

std::string Tuple::Serialize(const Schema& schema) const {
  (void)schema;  // format is self-describing; schema validates on read
  BufferWriter writer;
  writer.PutU32(static_cast<uint32_t>(values_.size()));
  for (const Value& v : values_) {
    if (ValueIsNull(v)) {
      writer.PutU8(kTagNull);
    } else if (const int64_t* i = std::get_if<int64_t>(&v)) {
      writer.PutU8(kTagInt64);
      writer.PutI64(*i);
    } else if (const double* d = std::get_if<double>(&v)) {
      writer.PutU8(kTagDouble);
      writer.PutDouble(*d);
    } else {
      writer.PutU8(kTagString);
      writer.PutString(std::get<std::string>(v));
    }
  }
  return writer.Release();
}

Result<Tuple> Tuple::Deserialize(const Schema& schema, std::string_view data) {
  BufferReader reader(data);
  TELL_ASSIGN_OR_RETURN(uint32_t count, reader.GetU32());
  if (count != schema.num_columns()) {
    return Status::Corruption("tuple column count mismatch");
  }
  Tuple tuple(count);
  for (uint32_t i = 0; i < count; ++i) {
    TELL_ASSIGN_OR_RETURN(uint8_t tag, reader.GetU8());
    switch (tag) {
      case kTagNull:
        tuple.Set(i, std::monostate{});
        break;
      case kTagInt64: {
        TELL_ASSIGN_OR_RETURN(int64_t v, reader.GetI64());
        tuple.Set(i, v);
        break;
      }
      case kTagDouble: {
        TELL_ASSIGN_OR_RETURN(double v, reader.GetDouble());
        tuple.Set(i, v);
        break;
      }
      case kTagString: {
        TELL_ASSIGN_OR_RETURN(std::string_view v, reader.GetString());
        tuple.Set(i, std::string(v));
        break;
      }
      default:
        return Status::Corruption("unknown value tag");
    }
  }
  return tuple;
}

bool Tuple::operator==(const Tuple& other) const {
  if (values_.size() != other.values_.size()) return false;
  for (size_t i = 0; i < values_.size(); ++i) {
    if (CompareValues(values_[i], other.values_[i]) != 0) return false;
  }
  return true;
}

namespace {

Status AppendKeyValue(const Value& v, std::string* out) {
  if (ValueIsNull(v)) {
    // NULLs are indexable (they sort before every non-NULL value); primary
    // keys reject NULLs separately at insert time.
    out->push_back('\x00');
    return Status::OK();
  }
  if (const int64_t* i = std::get_if<int64_t>(&v)) {
    out->push_back('\x01');  // type prefix keeps cross-type keys ordered
    out->append(EncodeOrderedI64(*i));
    return Status::OK();
  }
  if (const double* d = std::get_if<double>(&v)) {
    // Order-preserving double encoding: flip sign bit for positives, all
    // bits for negatives.
    uint64_t bits;
    std::memcpy(&bits, d, sizeof(bits));
    bits = (bits & (uint64_t{1} << 63)) ? ~bits : (bits | (uint64_t{1} << 63));
    out->push_back('\x02');
    out->append(EncodeOrderedU64(bits));
    return Status::OK();
  }
  const std::string& s = std::get<std::string>(v);
  if (s.find('\0') != std::string::npos) {
    return Status::InvalidArgument("NUL byte not allowed in key string");
  }
  out->push_back('\x03');
  out->append(s);
  out->push_back('\0');
  return Status::OK();
}

}  // namespace

Result<std::string> EncodeIndexKey(const Tuple& tuple,
                                   const std::vector<uint32_t>& key_columns) {
  std::string key;
  for (uint32_t column : key_columns) {
    if (column >= tuple.size()) {
      return Status::InvalidArgument("key column out of range");
    }
    TELL_RETURN_NOT_OK(AppendKeyValue(tuple.at(column), &key));
  }
  return key;
}

Result<std::string> EncodeIndexKeyValues(const std::vector<Value>& values) {
  std::string key;
  for (const Value& v : values) {
    TELL_RETURN_NOT_OK(AppendKeyValue(v, &key));
  }
  return key;
}

}  // namespace tell::schema
