#ifndef TELL_SCHEMA_VERSIONED_RECORD_H_
#define TELL_SCHEMA_VERSIONED_RECORD_H_

#include <cstdint>
#include <string>
#include <vector>

#include "commitmgr/snapshot_descriptor.h"
#include "common/result.h"
#include "common/status.h"

namespace tell::schema {

using commitmgr::SnapshotDescriptor;
using commitmgr::Tid;

/// One version of a record: the creating transaction's tid (= version
/// number), a tombstone flag for deletes, and the serialized tuple.
struct RecordVersion {
  Tid version = 0;
  bool tombstone = false;
  std::string payload;
};

/// The value stored under one rid: the serialized set of ALL versions of the
/// record (paper §5.1, Figure 4). Storing every version in one cell is the
/// row-level storage scheme that lets a single Get fetch everything a
/// transaction might need, and a single LL/SC Put apply an update or detect
/// the conflict.
///
/// Versions are kept sorted ascending by version number.
class VersionedRecord {
 public:
  VersionedRecord() = default;

  const std::vector<RecordVersion>& versions() const { return versions_; }
  bool Empty() const { return versions_.empty(); }
  size_t NumVersions() const { return versions_.size(); }

  /// Adds (or replaces) the version with number `tid`.
  void PutVersion(Tid tid, std::string payload, bool tombstone = false);

  /// Removes the version with number `tid` (recovery rollback / abort).
  /// Returns false if absent.
  bool RemoveVersion(Tid tid);

  bool HasVersion(Tid tid) const;

  /// Highest version visible under `snapshot`, also treating `own_tid`
  /// (the reading transaction's own updates) as visible. Returns nullptr if
  /// nothing is visible. A returned tombstone version means "deleted".
  const RecordVersion* VisibleVersion(const SnapshotDescriptor& snapshot,
                                      Tid own_tid = 0) const;

  /// Newest version regardless of visibility (GC, recovery, tests).
  const RecordVersion* Newest() const;

  /// Garbage collection (paper §5.4): with C = versions visible to all
  /// transactions (version <= lav), every version in C except max(C) can be
  /// deleted. If max(C) is a tombstone and it is also the newest version
  /// overall, the whole record is dead (caller should erase the cell).
  /// Returns the number of versions removed.
  size_t CollectGarbage(Tid lav);

  /// True if the record's newest version is a tombstone visible to all
  /// (version <= lav) — the cell itself can be erased from the store.
  bool DeadAt(Tid lav) const;

  std::string Serialize() const;
  static Result<VersionedRecord> Deserialize(std::string_view data);

 private:
  std::vector<RecordVersion> versions_;
};

}  // namespace tell::schema

#endif  // TELL_SCHEMA_VERSIONED_RECORD_H_
