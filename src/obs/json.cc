#include "obs/json.h"

#include <cmath>
#include <cstdio>

namespace tell::obs {

void JsonWriter::Double(double value) {
  Elem();
  if (!std::isfinite(value)) {
    out_ += '0';
    return;
  }
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.12g", value);
  out_ += buf;
}

void JsonWriter::AppendString(std::string_view s) {
  out_ += '"';
  for (char c : s) {
    switch (c) {
      case '"': out_ += "\\\""; break;
      case '\\': out_ += "\\\\"; break;
      case '\n': out_ += "\\n"; break;
      case '\r': out_ += "\\r"; break;
      case '\t': out_ += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned char>(c));
          out_ += buf;
        } else {
          out_ += c;
        }
    }
  }
  out_ += '"';
}

}  // namespace tell::obs
