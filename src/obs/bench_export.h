#ifndef TELL_OBS_BENCH_EXPORT_H_
#define TELL_OBS_BENCH_EXPORT_H_

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "common/result.h"
#include "obs/metrics_registry.h"

namespace tell::obs {

/// One (label, metrics) row of a bench artifact — typically one sweep point
/// (e.g. "pn4" of a scale-out curve or "tell_small" of Table 4).
struct BenchRun {
  std::string label;
  /// Derived numbers already computed by the bench (tpmc, abort_rate, ...).
  std::vector<std::pair<std::string, double>> derived;
  MetricsSnapshot snapshot;
  /// Optional per-node breakdown: (node label, counter name, value). The
  /// registry gauges carry the cross-node sums; this carries the split.
  std::vector<std::pair<std::string, std::vector<std::pair<std::string,
                                                           uint64_t>>>> nodes;
};

/// Machine-readable bench artifact, written as BENCH_<name>.json next to
/// the binary's stdout table. Schema v1 (validated by
/// tools/check_bench_json.py and documented in DESIGN.md "Observability"):
///
///   { "schema_version": 1,
///     "bench": "<name>",
///     "config": { "<key>": "<string>" , ... },
///     "runs": [ { "label": "...",
///                 "derived":    { "<key>": number, ... },
///                 "counters":   { "<metric>": integer, ... },
///                 "gauges":     { "<metric>": integer, ... },
///                 "histograms": { "<metric>": { "unit": "...",
///                                   "count": n, "min": n, "max": n,
///                                   "mean": x, "stddev": x,
///                                   "p50": n, "p95": n, "p99": n }, ... },
///                 "nodes":      { "<node>": { "<counter>": integer } } },
///               ... ] }
///
/// Every run contains ALL registered metrics (histograms of phases a run
/// never touched appear with count 0), so consumers can rely on the keys.
class BenchReport {
 public:
  explicit BenchReport(std::string name) : name_(std::move(name)) {}

  void AddConfig(std::string key, std::string value) {
    config_.emplace_back(std::move(key), std::move(value));
  }
  void AddRun(BenchRun run) { runs_.push_back(std::move(run)); }

  const std::string& name() const { return name_; }
  size_t num_runs() const { return runs_.size(); }
  const BenchRun& last_run() const { return runs_.back(); }

  std::string ToJson() const;

  /// Writes BENCH_<name>.json into `dir` (default: current directory).
  /// Returns the path written.
  Result<std::string> WriteFile(const std::string& dir = ".") const;

 private:
  std::string name_;
  std::vector<std::pair<std::string, std::string>> config_;
  std::vector<BenchRun> runs_;
};

}  // namespace tell::obs

#endif  // TELL_OBS_BENCH_EXPORT_H_
