#include "obs/metrics_registry.h"

#include "common/logging.h"

namespace tell::obs {

namespace {

struct BuiltinGauge {
  const char* name;
  const char* unit;
  const char* help;
};

/// Node-side stats exported by db::TellDb::ExportStats. Aggregated across
/// nodes so the metric names are fixed; the JSON exporter additionally
/// carries a per-node breakdown outside the registry.
const BuiltinGauge kBuiltinGauges[] = {
    // StorageNode request counters, summed over all SNs.
    {"store.node.gets", "ops", "Get requests served by storage nodes"},
    {"store.node.puts", "ops", "unconditional Put requests served"},
    {"store.node.conditional_puts", "ops",
     "store-conditional Put requests served"},
    {"store.node.llsc_failures", "ops",
     "store-conditionals rejected by stamp mismatch (server-side)"},
    {"store.node.erases", "ops", "Erase/ConditionalErase requests served"},
    {"store.node.scans", "ops", "scan requests served"},
    {"store.node.cells_scanned", "cells",
     "cells examined while serving scans"},
    {"store.node.atomic_increments", "ops",
     "atomic counter increments served"},
    {"store.node.stripe_conflicts", "acquisitions",
     "stripe-lock acquisitions that found the lock held (collisions)"},
    {"store.node.lock_wait_ns", "ns",
     "wall-clock time threads spent blocked on stripe locks"},
    // Live partition migration totals (management node; docs/RECOVERY.md).
    {"store.migration.started", "migrations",
     "live partition migrations started"},
    {"store.migration.completed", "migrations",
     "live partition migrations completed (master moved)"},
    {"store.migration.cells_copied", "cells",
     "cells moved by migration bulk copies"},
    {"store.migration.delta_rounds", "rounds",
     "migration catch-up delta rounds (including the sealed final round)"},
    {"store.migration.delta_cells", "cells",
     "put cells shipped by migration catch-up deltas"},
    {"store.migration.erases_applied", "erases",
     "journaled erases applied on migration destinations"},
    // CommitManager counters, summed over the group.
    {"commitmgr.starts", "txns", "start() calls served"},
    {"commitmgr.commits", "txns", "setCommitted() calls served"},
    {"commitmgr.aborts", "txns", "setAborted() calls served"},
    {"commitmgr.syncs", "rounds", "peer synchronization rounds"},
    {"commitmgr.tid_range_refills", "refills",
     "tid ranges acquired from the storage counter"},
    {"commitmgr.delta_starts", "txns",
     "delta-protocol starts answered with an incremental snapshot delta"},
    {"commitmgr.full_starts", "txns",
     "delta-protocol starts answered with the full descriptor"},
    // Commit-manager replication totals (docs/RECOVERY.md; all zero with
    // replicas=1).
    {"commitmgr.repl.log_appends", "records",
     "change records appended to replication logs by slot leaders"},
    {"commitmgr.repl.log_bytes", "bytes",
     "wire bytes of appended change records"},
    {"commitmgr.repl.snapshots", "snapshots",
     "replica-state snapshots installed into replication logs"},
    {"commitmgr.repl.log_truncated", "records",
     "change records truncated below a log snapshot"},
    {"commitmgr.repl.snapshot_installs", "snapshots",
     "log snapshots installed into follower state (catch-up shortcuts)"},
    {"commitmgr.repl.records_replayed", "records",
     "change records replayed by followers catching up"},
    {"commitmgr.repl.elections", "elections",
     "leader elections run by commit-manager slots"},
    {"commitmgr.repl.term", "term",
     "highest election term reached by any slot"},
    // Client record cache totals (store/record_cache.h), summed over
    // processing nodes; per-worker hit/miss counters live in
    // store.cache.hits / store.cache.misses. All zero with the cache off.
    {"store.cache.entries", "entries",
     "entries held by client record caches"},
    {"store.cache.evictions", "entries",
     "entries evicted from client record caches (LRU/capacity)"},
    {"store.cache.invalidations", "entries",
     "cache entries dropped because their partition's lease epoch moved"},
    // Per-PN B+tree inner-node caches, summed over processing nodes.
    {"index.cache.entries", "entries",
     "inner B+tree nodes held by per-PN node caches"},
    // Shared record buffer (SB/SBVS) stats, summed over processing nodes.
    {"buffer.shared.hits", "reads", "shared-buffer probes served locally"},
    {"buffer.shared.misses", "reads",
     "shared-buffer probes that fetched from storage"},
    {"buffer.shared.evictions", "records", "records evicted (LRU/capacity)"},
    {"buffer.shared.write_throughs", "records",
     "commit write-throughs into the shared buffer"},
    // Lazy GC sweep totals (admin-side; eager GC is the worker counter
    // gc.eager_versions_removed).
    {"gc.records_rewritten", "records",
     "records rewritten with pruned version chains by lazy GC sweeps"},
    {"gc.versions_removed", "versions",
     "record versions removed by lazy GC sweeps"},
    {"gc.records_erased", "records",
     "empty records erased by lazy GC sweeps"},
    {"gc.index_entries_removed", "entries",
     "obsolete index entries removed by lazy GC sweeps"},
    {"gc.log_entries_truncated", "entries",
     "transaction log entries truncated below the lav"},
    // Executor scheduler totals (exec::Runtime::stats, exported by
    // exec::ExportStats after a run under the thread-per-core runtime; all
    // zero under the legacy thread-per-worker drivers).
    {"exec.threads", "threads", "executor threads the runtime ran with"},
    {"exec.tasks", "tasks", "tasks run to completion"},
    {"exec.yields", "yields",
     "task suspensions (parks on unready futures / cooperative yields)"},
    {"exec.steals", "tasks", "tasks stolen from another core's run queue"},
    {"exec.parks", "parks", "executor threads sleeping on an empty queue"},
    {"exec.unparks", "wakeups", "wakeups issued to parked executor threads"},
    {"exec.run_queue_peak", "tasks", "peak run-queue depth on any core"},
    {"exec.busy_ns", "ns",
     "wall-clock time executor threads spent inside task code (summed)"},
    {"exec.wall_ns", "ns", "wall-clock duration of the executor run"},
    // Fault-injection totals (sim::FaultInjector::stats, when a fault plan
    // is attached to the database; all zero otherwise).
    {"fault.requests_seen", "requests",
     "storage requests evaluated by the fault injector"},
    {"fault.injected", "faults", "fault-rule firings of any kind"},
    {"fault.dropped_requests", "requests",
     "requests dropped before reaching storage (injected)"},
    {"fault.dropped_responses", "requests",
     "responses dropped after execution (injected, ambiguous outcome)"},
    {"fault.latency_spikes", "requests",
     "requests charged an injected latency spike"},
    {"fault.node_kills", "nodes",
     "storage nodes crash-stopped by the fault plan"},
    {"fault.leader_kills", "kills",
     "commit-manager leaders crash-stopped by the fault plan"},
};

}  // namespace

MetricsRegistry::MetricsRegistry(bool builtins) {
  if (!builtins) return;
  for (const sim::WorkerCounterField& f : sim::WorkerCounterFields()) {
    AddCounter(f.name, f.unit, f.help);
  }
  for (const sim::WorkerHistogramField& f : sim::WorkerHistogramFields()) {
    AddHistogram(f.name, f.unit, f.help);
  }
  for (const BuiltinGauge& g : kBuiltinGauges) {
    AddGauge(g.name, g.unit, g.help);
  }
}

MetricId MetricsRegistry::AddMetric(std::string name, std::string unit,
                                    std::string help, MetricKind kind) {
  std::lock_guard<std::mutex> lock(mutex_);
  for (MetricId id = 0; id < defs_.size(); ++id) {
    if (defs_[id].name == name) {
      TELL_CHECK(defs_[id].kind == kind);
      return id;
    }
  }
  TELL_CHECK(!frozen_);
  MetricId id = static_cast<MetricId>(defs_.size());
  defs_.push_back({std::move(name), std::move(unit), std::move(help), kind});
  if (kind == MetricKind::kHistogram) {
    hist_index_.push_back(static_cast<int32_t>(num_hists_++));
  } else {
    hist_index_.push_back(-1);
  }
  gauges_.push_back(0);
  return id;
}

MetricId MetricsRegistry::AddCounter(std::string name, std::string unit,
                                     std::string help) {
  return AddMetric(std::move(name), std::move(unit), std::move(help),
                   MetricKind::kCounter);
}

MetricId MetricsRegistry::AddGauge(std::string name, std::string unit,
                                   std::string help) {
  return AddMetric(std::move(name), std::move(unit), std::move(help),
                   MetricKind::kGauge);
}

MetricId MetricsRegistry::AddHistogram(std::string name, std::string unit,
                                       std::string help) {
  return AddMetric(std::move(name), std::move(unit), std::move(help),
                   MetricKind::kHistogram);
}

std::optional<MetricId> MetricsRegistry::Find(std::string_view name) const {
  std::lock_guard<std::mutex> lock(mutex_);
  for (MetricId id = 0; id < defs_.size(); ++id) {
    if (defs_[id].name == name) return id;
  }
  return std::nullopt;
}

MetricsRegistry::Shard* MetricsRegistry::NewShard() {
  std::lock_guard<std::mutex> lock(mutex_);
  frozen_ = true;
  shards_.push_back(std::unique_ptr<Shard>(
      new Shard(defs_.size(), &hist_index_, num_hists_)));
  return shards_.back().get();
}

void MetricsRegistry::SetGauge(MetricId id, uint64_t value) {
  std::lock_guard<std::mutex> lock(mutex_);
  TELL_CHECK(id < defs_.size() && defs_[id].kind == MetricKind::kGauge);
  gauges_[id] = value;
}

bool MetricsRegistry::SetGauge(std::string_view name, uint64_t value) {
  std::lock_guard<std::mutex> lock(mutex_);
  for (MetricId id = 0; id < defs_.size(); ++id) {
    if (defs_[id].name == name && defs_[id].kind == MetricKind::kGauge) {
      gauges_[id] = value;
      return true;
    }
  }
  return false;
}

void MetricsRegistry::AbsorbWorker(const sim::WorkerMetrics& metrics) {
  std::lock_guard<std::mutex> lock(mutex_);
  absorbed_.Merge(metrics);
}

MetricsSnapshot MetricsRegistry::Snapshot() const {
  std::lock_guard<std::mutex> lock(mutex_);
  MetricsSnapshot snap;
  snap.defs_ = defs_;
  snap.hist_index_ = hist_index_;
  snap.scalars_.assign(defs_.size(), 0);
  snap.hists_.assign(num_hists_, sim::Histogram());

  for (MetricId id = 0; id < defs_.size(); ++id) {
    if (defs_[id].kind == MetricKind::kGauge) snap.scalars_[id] = gauges_[id];
  }
  for (const std::unique_ptr<Shard>& shard : shards_) {
    for (MetricId id = 0; id < defs_.size(); ++id) {
      snap.scalars_[id] +=
          shard->scalars_[id].load(std::memory_order_relaxed);
    }
    for (size_t slot = 0; slot < shard->hists_.size(); ++slot) {
      snap.hists_[slot].Merge(shard->hists_[slot]);
    }
  }
  // Absorbed worker metrics, mapped through the shared descriptor tables.
  for (const sim::WorkerCounterField& f : sim::WorkerCounterFields()) {
    for (MetricId id = 0; id < defs_.size(); ++id) {
      if (defs_[id].name == f.name) {
        snap.scalars_[id] += absorbed_.*f.field;
        break;
      }
    }
  }
  for (const sim::WorkerHistogramField& f : sim::WorkerHistogramFields()) {
    for (MetricId id = 0; id < defs_.size(); ++id) {
      if (defs_[id].name == f.name && snap.hist_index_[id] >= 0) {
        snap.hists_[static_cast<size_t>(snap.hist_index_[id])].Merge(
            sim::GetWorkerHistogram(absorbed_, f));
        break;
      }
    }
  }
  return snap;
}

std::optional<uint64_t> MetricsSnapshot::Scalar(std::string_view name) const {
  for (MetricId id = 0; id < defs_.size(); ++id) {
    if (defs_[id].name == name && defs_[id].kind != MetricKind::kHistogram) {
      return scalars_[id];
    }
  }
  return std::nullopt;
}

const sim::Histogram* MetricsSnapshot::Hist(std::string_view name) const {
  for (MetricId id = 0; id < defs_.size(); ++id) {
    if (defs_[id].name == name && hist_index_[id] >= 0) {
      return &hists_[static_cast<size_t>(hist_index_[id])];
    }
  }
  return nullptr;
}

}  // namespace tell::obs
