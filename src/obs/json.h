#ifndef TELL_OBS_JSON_H_
#define TELL_OBS_JSON_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace tell::obs {

/// Minimal dependency-free streaming JSON writer (the container ships no
/// JSON library and the bench artifacts need none). Commas are inserted
/// automatically; keys must be emitted via Key() inside objects. The caller
/// is responsible for well-formed nesting (checked with asserts in tests via
/// the round-trip parser).
class JsonWriter {
 public:
  void BeginObject() { Elem(); out_ += '{'; stack_.push_back(false); }
  void EndObject() { stack_.pop_back(); out_ += '}'; }
  void BeginArray() { Elem(); out_ += '['; stack_.push_back(false); }
  void EndArray() { stack_.pop_back(); out_ += ']'; }

  void Key(std::string_view key) {
    Elem();
    AppendString(key);
    out_ += ':';
    pending_value_ = true;
  }

  void String(std::string_view value) { Elem(); AppendString(value); }
  void Uint(uint64_t value) { Elem(); out_ += std::to_string(value); }
  void Int(int64_t value) { Elem(); out_ += std::to_string(value); }
  void Bool(bool value) { Elem(); out_ += value ? "true" : "false"; }
  /// Non-finite doubles are not valid JSON; they serialize as 0.
  void Double(double value);

  const std::string& str() const { return out_; }

 private:
  void Elem() {
    if (pending_value_) {
      pending_value_ = false;
      return;
    }
    if (!stack_.empty()) {
      if (stack_.back()) out_ += ',';
      stack_.back() = true;
    }
  }
  void AppendString(std::string_view s);

  std::string out_;
  std::vector<bool> stack_;
  bool pending_value_ = false;
};

}  // namespace tell::obs

#endif  // TELL_OBS_JSON_H_
