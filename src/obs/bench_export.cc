#include "obs/bench_export.h"

#include <cstdio>

#include "obs/json.h"

namespace tell::obs {

namespace {

void WriteHistogram(JsonWriter* w, const MetricDef& def,
                    const sim::Histogram& hist) {
  w->BeginObject();
  w->Key("unit");
  w->String(def.unit);
  w->Key("count");
  w->Uint(hist.count());
  w->Key("min");
  w->Uint(hist.min());
  w->Key("max");
  w->Uint(hist.max());
  w->Key("mean");
  w->Double(hist.Mean());
  w->Key("stddev");
  w->Double(hist.StdDev());
  w->Key("p50");
  w->Uint(hist.Percentile(50));
  w->Key("p95");
  w->Uint(hist.Percentile(95));
  w->Key("p99");
  w->Uint(hist.Percentile(99));
  w->EndObject();
}

void WriteRun(JsonWriter* w, const BenchRun& run) {
  w->BeginObject();
  w->Key("label");
  w->String(run.label);
  w->Key("derived");
  w->BeginObject();
  for (const auto& [key, value] : run.derived) {
    w->Key(key);
    w->Double(value);
  }
  w->EndObject();

  const std::vector<MetricDef>& defs = run.snapshot.metrics();
  w->Key("counters");
  w->BeginObject();
  for (const MetricDef& def : defs) {
    if (def.kind != MetricKind::kCounter) continue;
    w->Key(def.name);
    w->Uint(*run.snapshot.Scalar(def.name));
  }
  w->EndObject();
  w->Key("gauges");
  w->BeginObject();
  for (const MetricDef& def : defs) {
    if (def.kind != MetricKind::kGauge) continue;
    w->Key(def.name);
    w->Uint(*run.snapshot.Scalar(def.name));
  }
  w->EndObject();
  w->Key("histograms");
  w->BeginObject();
  for (const MetricDef& def : defs) {
    if (def.kind != MetricKind::kHistogram) continue;
    w->Key(def.name);
    WriteHistogram(w, def, *run.snapshot.Hist(def.name));
  }
  w->EndObject();
  if (!run.nodes.empty()) {
    w->Key("nodes");
    w->BeginObject();
    for (const auto& [node, counters] : run.nodes) {
      w->Key(node);
      w->BeginObject();
      for (const auto& [name, value] : counters) {
        w->Key(name);
        w->Uint(value);
      }
      w->EndObject();
    }
    w->EndObject();
  }
  w->EndObject();
}

}  // namespace

std::string BenchReport::ToJson() const {
  JsonWriter w;
  w.BeginObject();
  w.Key("schema_version");
  w.Uint(1);
  w.Key("bench");
  w.String(name_);
  w.Key("config");
  w.BeginObject();
  for (const auto& [key, value] : config_) {
    w.Key(key);
    w.String(value);
  }
  w.EndObject();
  w.Key("runs");
  w.BeginArray();
  for (const BenchRun& run : runs_) WriteRun(&w, run);
  w.EndArray();
  w.EndObject();
  return w.str();
}

Result<std::string> BenchReport::WriteFile(const std::string& dir) const {
  std::string path = dir + "/BENCH_" + name_ + ".json";
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    return Status::InternalError("cannot open " + path + " for writing");
  }
  std::string json = ToJson();
  size_t written = std::fwrite(json.data(), 1, json.size(), f);
  int close_rc = std::fclose(f);
  if (written != json.size() || close_rc != 0) {
    return Status::InternalError("short write to " + path);
  }
  return path;
}

}  // namespace tell::obs
