#ifndef TELL_OBS_METRICS_REGISTRY_H_
#define TELL_OBS_METRICS_REGISTRY_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "sim/histogram.h"
#include "sim/metrics.h"

namespace tell::obs {

enum class MetricKind { kCounter, kGauge, kHistogram };

/// Identity of one registered metric. The full builtin catalog is documented
/// in docs/METRICS.md; obs_test diffs that document against the registry.
struct MetricDef {
  std::string name;
  std::string unit;
  std::string help;
  MetricKind kind;
};

using MetricId = uint32_t;

/// A consistent point-in-time view of a registry: merged shards + absorbed
/// worker metrics + gauges. Self-contained (owns copies), so it survives the
/// registry and can be handed to the JSON exporter.
class MetricsSnapshot {
 public:
  const std::vector<MetricDef>& metrics() const { return defs_; }

  /// Counter or gauge value; nullopt for unknown names and histograms.
  std::optional<uint64_t> Scalar(std::string_view name) const;

  /// Histogram by name; nullptr for unknown names and scalars.
  const sim::Histogram* Hist(std::string_view name) const;

 private:
  friend class MetricsRegistry;

  std::vector<MetricDef> defs_;
  /// Indexed by MetricId; histogram slots hold 0.
  std::vector<uint64_t> scalars_;
  /// MetricId -> index into hists_, or -1 for scalars.
  std::vector<int32_t> hist_index_;
  std::vector<sim::Histogram> hists_;
};

/// A registry of named counters, gauges and histograms.
///
/// Writers never contend: each worker obtains its own Shard whose counters
/// are relaxed atomics (so a racing Snapshot tears at worst by a few
/// increments, never corrupts) and whose histograms are single-writer.
/// Snapshot() merges all shards, everything absorbed from per-worker
/// sim::WorkerMetrics (the simulation's native metric carrier — absorbed
/// through the descriptor tables in sim/metrics.h, so the names always
/// match), and the gauges set from node-side stats.
///
/// Construction registers the builtin catalog: every WorkerMetrics field
/// plus the node-side gauges exported by db::TellDb. Additional metrics may
/// be registered until the first shard is handed out.
class MetricsRegistry {
 public:
  /// One worker's write handle. Owned by the registry; pointers stay valid
  /// for the registry's lifetime.
  class Shard {
   public:
    void Add(MetricId id, uint64_t delta = 1) {
      scalars_[id].fetch_add(delta, std::memory_order_relaxed);
    }
    /// Records into this shard's (single-writer) histogram.
    void Record(MetricId id, uint64_t value) {
      int32_t slot = (*hist_index_)[id];
      if (slot >= 0) hists_[static_cast<size_t>(slot)].Record(value);
    }

   private:
    friend class MetricsRegistry;
    Shard(size_t num_metrics, const std::vector<int32_t>* hist_index,
          size_t num_hists)
        : scalars_(num_metrics), hist_index_(hist_index), hists_(num_hists) {}

    std::vector<std::atomic<uint64_t>> scalars_;
    const std::vector<int32_t>* hist_index_;
    std::vector<sim::Histogram> hists_;
  };

  /// `builtins` = false creates an empty registry (tests).
  explicit MetricsRegistry(bool builtins = true);

  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// Registration. Re-registering an existing name returns the existing id
  /// (the kind must match; unit/help of the first registration win).
  MetricId AddCounter(std::string name, std::string unit, std::string help);
  MetricId AddGauge(std::string name, std::string unit, std::string help);
  MetricId AddHistogram(std::string name, std::string unit, std::string help);

  std::optional<MetricId> Find(std::string_view name) const;
  const std::vector<MetricDef>& metrics() const { return defs_; }

  /// Creates a per-worker shard; freezes registration.
  Shard* NewShard();

  /// Sets a gauge to an absolute value (last write wins).
  void SetGauge(MetricId id, uint64_t value);
  bool SetGauge(std::string_view name, uint64_t value);

  /// Folds a worker's native metrics into the registry via the descriptor
  /// tables of sim/metrics.h. Call once per worker at end of run (values
  /// accumulate across calls, mirroring WorkerMetrics::Merge).
  void AbsorbWorker(const sim::WorkerMetrics& metrics);

  MetricsSnapshot Snapshot() const;

 private:
  MetricId AddMetric(std::string name, std::string unit, std::string help,
                     MetricKind kind);

  mutable std::mutex mutex_;
  std::vector<MetricDef> defs_;
  std::vector<int32_t> hist_index_;  // MetricId -> hist slot or -1
  size_t num_hists_ = 0;
  bool frozen_ = false;
  std::vector<std::unique_ptr<Shard>> shards_;
  /// Everything AbsorbWorker collected, merged.
  sim::WorkerMetrics absorbed_;
  /// Gauge values, indexed by MetricId (0 for non-gauges).
  std::vector<uint64_t> gauges_;
};

}  // namespace tell::obs

#endif  // TELL_OBS_METRICS_REGISTRY_H_
