#ifndef TELL_OBS_TRACE_H_
#define TELL_OBS_TRACE_H_

#include <array>
#include <cstdint>
#include <vector>

#include "sim/metrics.h"
#include "sim/virtual_clock.h"

namespace tell::obs {

/// Per-worker transaction phase tracer. Attributes elapsed *virtual* time to
/// the phase on top of an explicit span stack — entering a nested span
/// suspends the parent, so each nanosecond of virtual time is charged to
/// exactly one phase (exclusive attribution). At EndTxn the per-phase totals
/// are recorded into the worker's phase histograms: one sample per phase per
/// transaction, so percentiles read as "per-transaction phase latency" and
/// the phase means sum to (at most) the mean response time.
///
/// Owned by tx::Session alongside the VirtualClock and WorkerMetrics it
/// observes; like them it is single-threaded. Spans are opened with RAII
/// PhaseScope guards inside Transaction's methods, which keeps the stack
/// balanced on every early return. Enter/Exit outside an active transaction
/// are no-ops, so admin paths sharing the code cost nothing.
class TxnTracer {
 public:
  TxnTracer(const sim::VirtualClock* clock, sim::WorkerMetrics* metrics)
      : clock_(clock), metrics_(metrics) {
    stack_.reserve(8);
  }

  TxnTracer(const TxnTracer&) = delete;
  TxnTracer& operator=(const TxnTracer&) = delete;

  /// Starts attributing: zeroes the per-phase accumulators of the previous
  /// transaction (they were flushed by its EndTxn).
  void BeginTxn() {
    accum_.fill(0);
    stack_.clear();
    mark_ns_ = clock_->now_ns();
    active_ = true;
  }

  void Enter(sim::TxnPhase phase) {
    if (!active_) return;
    Attribute();
    stack_.push_back(static_cast<uint32_t>(phase));
  }

  void Exit() {
    if (!active_ || stack_.empty()) return;
    Attribute();
    stack_.pop_back();
  }

  /// Flushes the accumulated per-phase time into the worker's histograms.
  /// Idempotent: the second call (e.g. abort followed by destruction) is a
  /// no-op.
  void EndTxn() {
    if (!active_) return;
    Attribute();
    for (size_t p = 0; p < sim::kNumTxnPhases; ++p) {
      if (accum_[p] != 0) metrics_->phase_ns[p].Record(accum_[p]);
    }
    active_ = false;
  }

  bool active() const { return active_; }
  size_t depth() const { return stack_.size(); }
  /// Accumulated (unflushed) time of `phase` in the current transaction.
  uint64_t accumulated_ns(sim::TxnPhase phase) const {
    return accum_[static_cast<size_t>(phase)];
  }

 private:
  /// Charges the virtual time since the last mark to the current top-of-stack
  /// phase (time outside any span — e.g. the driver's think path — is
  /// deliberately unattributed).
  void Attribute() {
    uint64_t now = clock_->now_ns();
    if (!stack_.empty()) accum_[stack_.back()] += now - mark_ns_;
    mark_ns_ = now;
  }

  const sim::VirtualClock* const clock_;
  sim::WorkerMetrics* const metrics_;
  std::array<uint64_t, sim::kNumTxnPhases> accum_{};
  std::vector<uint32_t> stack_;
  uint64_t mark_ns_ = 0;
  bool active_ = false;
};

/// RAII span guard; safe on every early-return path.
class PhaseScope {
 public:
  PhaseScope(TxnTracer* tracer, sim::TxnPhase phase) : tracer_(tracer) {
    tracer_->Enter(phase);
  }
  ~PhaseScope() { tracer_->Exit(); }

  PhaseScope(const PhaseScope&) = delete;
  PhaseScope& operator=(const PhaseScope&) = delete;

 private:
  TxnTracer* const tracer_;
};

}  // namespace tell::obs

#endif  // TELL_OBS_TRACE_H_
