#include "commitmgr/snapshot_descriptor.h"

#include "common/serde.h"

namespace tell::commitmgr {

void SnapshotDescriptor::MarkCompleted(Tid tid) {
  if (tid <= base_) return;  // already covered by the base
  completed_.Set(static_cast<size_t>(tid - base_ - 1));
  AdvanceBase();
}

void SnapshotDescriptor::AdvanceBase() {
  size_t prefix = completed_.FirstZero();
  if (prefix == 0) return;
  base_ += prefix;
  completed_.DropFront(prefix);
}

Tid SnapshotDescriptor::HighestCompleted() const {
  Tid highest = base_;
  for (size_t i = completed_.size(); i > 0; --i) {
    if (completed_.Test(i - 1)) {
      highest = base_ + i;
      break;
    }
  }
  return highest;
}

void SnapshotDescriptor::MergeFrom(const SnapshotDescriptor& other) {
  // Collect the other's completed tids before potentially moving our base.
  if (other.base_ > base_) {
    // Everything at or below other.base_ is globally complete.
    Tid shift = other.base_ - base_;
    completed_.DropFront(static_cast<size_t>(shift));
    base_ = other.base_;
  }
  for (size_t i = 0; i < other.completed_.size(); ++i) {
    if (other.completed_.Test(i)) {
      Tid tid = other.base_ + 1 + i;
      if (tid > base_) {
        completed_.Set(static_cast<size_t>(tid - base_ - 1));
      }
    }
  }
  AdvanceBase();
}

bool SnapshotDescriptor::IsSubsetOf(const SnapshotDescriptor& super) const {
  // Everything <= base_ is readable here; super must cover it.
  if (base_ > super.base_) {
    for (Tid tid = super.base_ + 1; tid <= base_; ++tid) {
      if (!super.CanRead(tid)) return false;
    }
  }
  for (size_t i = 0; i < completed_.size(); ++i) {
    if (completed_.Test(i) && !super.CanRead(base_ + 1 + i)) return false;
  }
  return true;
}

void SnapshotDescriptor::ApplyDelta(const SnapshotDelta& delta) {
  if (delta.full) {
    *this = delta.snapshot;
    return;
  }
  // The base advance subsumes every completion that already fell below it;
  // merging an empty descriptor at delta.base drops our own covered bits.
  MergeFrom(SnapshotDescriptor(delta.base));
  for (Tid tid : delta.completed) MarkCompleted(tid);
}

std::string SnapshotDescriptor::Serialize() const {
  BufferWriter writer;
  writer.PutU64(base_);
  writer.PutU64(completed_.size());
  for (uint64_t word : completed_.words()) writer.PutU64(word);
  return writer.Release();
}

Result<SnapshotDescriptor> SnapshotDescriptor::Deserialize(
    std::string_view data) {
  BufferReader reader(data);
  TELL_ASSIGN_OR_RETURN(uint64_t base, reader.GetU64());
  TELL_ASSIGN_OR_RETURN(uint64_t num_bits, reader.GetU64());
  SnapshotDescriptor snapshot(base);
  snapshot.completed_.Resize(static_cast<size_t>(num_bits));
  for (auto& word : snapshot.completed_.mutable_words()) {
    TELL_ASSIGN_OR_RETURN(word, reader.GetU64());
  }
  snapshot.AdvanceBase();
  return snapshot;
}

// ---------------------------------------------------------------------------
// SnapshotDelta

size_t SnapshotDelta::WireBytes() const {
  // generation + epoch + form flag.
  size_t envelope = 4 + 8 + 1;
  if (full) {
    return envelope + 4 + snapshot.SerializedBytes();  // u32 length prefix
  }
  return envelope + 8 + 4 + 4 * completed.size();
}

std::string SnapshotDelta::Serialize() const {
  BufferWriter writer;
  writer.PutU32(generation);
  writer.PutU64(epoch);
  writer.PutU8(full ? 1 : 0);
  if (full) {
    writer.PutString(snapshot.Serialize());
  } else {
    writer.PutU64(base);
    writer.PutU32(static_cast<uint32_t>(completed.size()));
    for (Tid tid : completed) {
      // tid > base always holds (the manager prunes at-or-below-base tids).
      writer.PutU32(static_cast<uint32_t>(tid - base - 1));
    }
  }
  return writer.Release();
}

Result<SnapshotDelta> SnapshotDelta::Deserialize(std::string_view data) {
  BufferReader reader(data);
  SnapshotDelta delta;
  TELL_ASSIGN_OR_RETURN(delta.generation, reader.GetU32());
  TELL_ASSIGN_OR_RETURN(delta.epoch, reader.GetU64());
  TELL_ASSIGN_OR_RETURN(uint8_t full, reader.GetU8());
  delta.full = full != 0;
  if (delta.full) {
    TELL_ASSIGN_OR_RETURN(std::string_view blob, reader.GetString());
    TELL_ASSIGN_OR_RETURN(delta.snapshot, SnapshotDescriptor::Deserialize(blob));
  } else {
    TELL_ASSIGN_OR_RETURN(delta.base, reader.GetU64());
    TELL_ASSIGN_OR_RETURN(uint32_t count, reader.GetU32());
    delta.completed.reserve(count);
    for (uint32_t i = 0; i < count; ++i) {
      TELL_ASSIGN_OR_RETURN(uint32_t offset, reader.GetU32());
      delta.completed.push_back(delta.base + 1 + offset);
    }
  }
  return delta;
}

}  // namespace tell::commitmgr
