#include "commitmgr/snapshot_descriptor.h"

#include "common/serde.h"

namespace tell::commitmgr {

void SnapshotDescriptor::MarkCompleted(Tid tid) {
  if (tid <= base_) return;  // already covered by the base
  completed_.Set(static_cast<size_t>(tid - base_ - 1));
  AdvanceBase();
}

void SnapshotDescriptor::AdvanceBase() {
  size_t prefix = completed_.FirstZero();
  if (prefix == 0) return;
  base_ += prefix;
  completed_.DropFront(prefix);
}

Tid SnapshotDescriptor::HighestCompleted() const {
  Tid highest = base_;
  for (size_t i = completed_.size(); i > 0; --i) {
    if (completed_.Test(i - 1)) {
      highest = base_ + i;
      break;
    }
  }
  return highest;
}

void SnapshotDescriptor::MergeFrom(const SnapshotDescriptor& other) {
  // Collect the other's completed tids before potentially moving our base.
  if (other.base_ > base_) {
    // Everything at or below other.base_ is globally complete.
    Tid shift = other.base_ - base_;
    completed_.DropFront(static_cast<size_t>(shift));
    base_ = other.base_;
  }
  for (size_t i = 0; i < other.completed_.size(); ++i) {
    if (other.completed_.Test(i)) {
      Tid tid = other.base_ + 1 + i;
      if (tid > base_) {
        completed_.Set(static_cast<size_t>(tid - base_ - 1));
      }
    }
  }
  AdvanceBase();
}

bool SnapshotDescriptor::IsSubsetOf(const SnapshotDescriptor& super) const {
  // Everything <= base_ is readable here; super must cover it.
  if (base_ > super.base_) {
    for (Tid tid = super.base_ + 1; tid <= base_; ++tid) {
      if (!super.CanRead(tid)) return false;
    }
  }
  for (size_t i = 0; i < completed_.size(); ++i) {
    if (completed_.Test(i) && !super.CanRead(base_ + 1 + i)) return false;
  }
  return true;
}

std::string SnapshotDescriptor::Serialize() const {
  BufferWriter writer;
  writer.PutU64(base_);
  writer.PutU64(completed_.size());
  for (uint64_t word : completed_.words()) writer.PutU64(word);
  return writer.Release();
}

Result<SnapshotDescriptor> SnapshotDescriptor::Deserialize(
    std::string_view data) {
  BufferReader reader(data);
  TELL_ASSIGN_OR_RETURN(uint64_t base, reader.GetU64());
  TELL_ASSIGN_OR_RETURN(uint64_t num_bits, reader.GetU64());
  SnapshotDescriptor snapshot(base);
  snapshot.completed_.Resize(static_cast<size_t>(num_bits));
  for (auto& word : snapshot.completed_.mutable_words()) {
    TELL_ASSIGN_OR_RETURN(word, reader.GetU64());
  }
  snapshot.AdvanceBase();
  return snapshot;
}

}  // namespace tell::commitmgr
