#ifndef TELL_COMMITMGR_COMMIT_MANAGER_H_
#define TELL_COMMITMGR_COMMIT_MANAGER_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "commitmgr/replication.h"
#include "commitmgr/snapshot_descriptor.h"
#include "common/result.h"
#include "common/status.h"
#include "store/cluster.h"

namespace tell::commitmgr {

/// Role of one replica inside a replicated manager slot (docs/RECOVERY.md).
/// Standalone managers (replication off) are leaders with no change log.
enum class ReplicaRole { kLeader, kFollower };

/// Aggregated replication counters of a CommitManagerGroup, exported as the
/// commitmgr.repl.* gauges by db::TellDb.
struct GroupReplicationStats {
  uint64_t log_appends = 0;
  uint64_t log_bytes = 0;
  uint64_t snapshots = 0;
  uint64_t log_truncated = 0;
  uint64_t snapshot_installs = 0;
  uint64_t records_replayed = 0;
  uint64_t elections = 0;
  uint64_t term = 0;
};

/// What a transaction receives from start() (paper §4.2): a system-wide
/// unique tid, the snapshot it may read, and the lowest active version
/// number (the GC horizon).
struct TxnBegin {
  Tid tid = 0;
  SnapshotDescriptor snapshot;
  Tid lav = 0;
};

/// Request half of a delta-protocol start() (DESIGN.md, "Snapshot delta sync
/// & group begin/commit"): carries the snapshot state the client already
/// holds, so the manager can answer with an incremental update instead of
/// the full bitset.
struct BeginRequest {
  uint32_t pn_id = 0;
  /// Idempotency token (0 = none): a begin retried after a lost response
  /// re-sends the same token and receives the previously assigned tid
  /// instead of leaking a second active entry that would hold the snapshot
  /// base back forever.
  uint64_t start_token = 0;
  /// (generation, epoch) of the client's cached descriptor; generation 0
  /// means first contact and always gets a full descriptor.
  uint32_t ack_generation = 0;
  uint64_t ack_epoch = 0;
  /// Force a full descriptor even when a delta would be smaller (delta sync
  /// disabled client-side — the ablation baseline).
  bool want_full = false;
};

/// start() response under the delta protocol.
struct TxnBeginDelta {
  Tid tid = 0;
  SnapshotDelta delta;
  Tid lav = 0;
};

/// Point-in-time copy of one commit manager's request counters (exported
/// into the obs::MetricsRegistry gauges `commitmgr.*` by db::TellDb).
struct CommitManagerStats {
  uint64_t starts = 0;
  uint64_t commits = 0;
  uint64_t aborts = 0;
  uint64_t syncs = 0;
  uint64_t tid_range_refills = 0;
  /// StartDelta() calls answered with an incremental delta.
  uint64_t delta_starts = 0;
  /// StartDelta() calls answered with the full descriptor (first contact,
  /// generation change, forced, or delta not smaller than the bitset).
  uint64_t full_starts = 0;

  void Accumulate(const CommitManagerStats& other) {
    starts += other.starts;
    commits += other.commits;
    aborts += other.aborts;
    syncs += other.syncs;
    tid_range_refills += other.tid_range_refills;
    delta_starts += other.delta_starts;
    full_starts += other.full_starts;
  }
};

struct CommitManagerOptions {
  /// Tids are acquired from the storage system's atomic counter in
  /// continuous ranges of this size, so the counter is not a bottleneck
  /// (paper §4.2; they use e.g. 256).
  uint32_t tid_range_size = 256;
  /// Interleaved tid assignment (paper §4.2's future-work item, after Tu et
  /// al. [58], implemented here): manager i of n hands out i+1, i+1+n,
  /// i+1+2n, ... — unique by construction, no shared counter, and the
  /// snapshot base trails each manager by at most one in-flight transaction
  /// per manager instead of a whole continuous range. The trade-off: an
  /// IDLE manager stalls the base at its next tid until it assigns (or
  /// syncs), whereas ranges only stall within acquired ranges.
  bool interleaved_tids = false;
};

/// The lightweight service managing global transaction state (paper §4.2).
///
/// Supports exactly the paper's three calls: Start() hands out a tid, a
/// snapshot descriptor and the lav; SetCommitted()/SetAborted() record a
/// transaction's completion. Several commit managers can run against the
/// same storage cluster: tid uniqueness comes from the store's atomic
/// counter (incremented in ranges), and snapshots are synchronized by
/// writing each manager's state to the store and merging the peers' states
/// (SyncWithPeers), at a configurable interval. Operating on snapshots that
/// are stale by the sync interval is legitimate — it can only raise the
/// abort rate, never break consistency.
///
/// Thread safe: many PN workers call into one manager concurrently.
class CommitManager {
 public:
  /// `state_table` must be a table created on `cluster` for commit manager
  /// state + the tid counter (use CommitManagerGroup to set everything up).
  /// `num_managers` is the group size (needed for interleaved assignment).
  CommitManager(uint32_t manager_id, store::Cluster* cluster,
                store::TableId state_table,
                const CommitManagerOptions& options,
                uint32_t num_managers = 1);

  CommitManager(const CommitManager&) = delete;
  CommitManager& operator=(const CommitManager&) = delete;

  uint32_t manager_id() const { return manager_id_; }

  /// Crash-stop failure injection: a dead manager rejects all calls.
  void Kill() { alive_.store(false, std::memory_order_release); }
  void Revive() { alive_.store(true, std::memory_order_release); }
  bool alive() const { return alive_.load(std::memory_order_acquire); }

  /// Wires this instance into a replicated slot (CommitManagerGroup does
  /// this once at construction). The leader appends a ChangeRecord for every
  /// state change while holding its own mutex; followers replay the log.
  void AttachReplication(ReplicationLog* log, ReplicaRole role);

  ReplicaRole role() const;

  /// Demotes to follower (election bookkeeping: a revived old leader must
  /// not serve — the slot's current leader owns the tid stream).
  void Demote();

  /// Follower side: installs the latest log snapshot if this replica fell
  /// behind it, then replays the log tail. No-op without replication.
  Status CatchUpFromLog();

  /// Promotes this replica to slot leader: catch up from the log, complete
  /// the dead leader's granted-but-never-assigned tid range (so the snapshot
  /// base and GC horizon can advance past it), bump the generation so every
  /// cached client re-syncs, and publish a fresh snapshot to the log.
  /// KEEPS active transactions and start tokens: a begin retried against the
  /// new leader resolves to the tid the old leader assigned (BeginRequest
  /// token idempotency), so fail-over cannot leak active tids. Leased
  /// fast-path tids stay pending until their lane flushes CompleteFast() to
  /// this new leader.
  Status PromoteToLeader();

  /// Replication counters of this replica (aggregated by the group).
  uint64_t ReplSnapshotInstalls() const {
    return repl_snapshot_installs_.load(std::memory_order_relaxed);
  }
  uint64_t ReplRecordsReplayed() const {
    return repl_records_replayed_.load(std::memory_order_relaxed);
  }

  /// start(): new tid + snapshot + lav. `pn_id` identifies the processing
  /// node starting the transaction, so that a PN failure can abort its
  /// in-flight transactions (otherwise their tids would block the snapshot
  /// base forever).
  Result<TxnBegin> Start(uint32_t pn_id);

  /// start() under the delta protocol: same tid assignment as Start(), but
  /// the snapshot comes back as an incremental update relative to the
  /// client's acknowledged (generation, epoch) — or as a full descriptor on
  /// first contact, generation change, or when the delta would not be
  /// smaller. Idempotent per `request.start_token` (see BeginRequest).
  Result<TxnBeginDelta> StartDelta(const BeginRequest& request);

  /// Marks every active transaction started by `pn_id` as aborted. Called
  /// by the recovery process after it rolled back the PN's applied writes.
  /// Returns the tids aborted.
  std::vector<Tid> AbortActiveOf(uint32_t pn_id);

  /// setCommitted(tid): the transaction applied all updates and committed.
  Status SetCommitted(Tid tid);

  /// setAborted(tid): the transaction rolled back.
  Status SetAborted(Tid tid);

  /// Leases `count` tids for the single-partition fast path (DESIGN.md
  /// "Phase-switching fast path"), taken from the SAME sequential stream as
  /// Start() (the manager's cached range, refilled from the global counter).
  /// Version order within a record is tid order, so the fast path needs tid
  /// assignment order to match begin order across both phases: every
  /// transaction beginning after a lease gets a larger tid, so a fast commit
  /// can write the newest version of a record without LL/SC (the lane-epoch
  /// invalidation in FastPathCoordinator covers MVCC tids handed out after
  /// the lease). This single-stream argument needs ONE range-based manager;
  /// TellDb disables the fast path otherwise. Leased tids are NOT registered
  /// as active: an uncompleted leased tid pins the snapshot base (and thus
  /// the GC horizon) by simply being a zero bit above it, which is exactly
  /// the safety we need until the owning lane completes it via
  /// CompleteFast(). NotSupported under interleaved tid assignment.
  Result<std::vector<Tid>> LeaseFastTids(uint32_t count);

  /// Marks fast-path tids completed (committed or discarded), batched.
  /// Duplicate-safe like SetCommitted; does not require the tids to be
  /// active here. Fast commits intentionally do NOT count in stats().commits
  /// (that gauge tracks MVCC finish notifications; the worker-side
  /// tx.fastpath.* counters cover the fast path).
  Status CompleteFast(const std::vector<Tid>& tids);

  /// Writes this manager's state to the store and merges the peers' states
  /// (called periodically by CommitManagerGroup's sync thread, or directly
  /// by tests).
  Status SyncWithPeers(uint32_t num_peers);

  /// Current lowest active version number as this manager sees it.
  Tid Lav() const;

  /// Current snapshot (copy) — recovery and tests.
  SnapshotDescriptor CurrentSnapshot() const;

  /// Highest tid this manager has handed out (recovery: bound for the
  /// backwards log scan).
  Tid HighestAssignedTid() const;

  /// Rebuilds state from the store after a commit manager failure: reads
  /// the peers' published states and the tid counter (paper §4.4.3).
  Status RecoverFromStore(uint32_t num_peers);

  /// Serialized size of the state blob written on sync (tests).
  size_t StateBlobBytes() const;

  /// Current (generation, epoch) of the delta protocol (tests).
  std::pair<uint32_t, uint64_t> SyncState() const;

  /// Table holding this manager's published state and the tid counter
  /// (clients use it to label injected faults on commit-manager messages).
  store::TableId state_table() const { return state_table_; }

  /// Copy of this manager's request counters. Relaxed atomics, so a snapshot
  /// racing live traffic is approximate but never torn per-counter.
  CommitManagerStats stats() const {
    CommitManagerStats s;
    s.starts = stats_.starts.load(std::memory_order_relaxed);
    s.commits = stats_.commits.load(std::memory_order_relaxed);
    s.aborts = stats_.aborts.load(std::memory_order_relaxed);
    s.syncs = stats_.syncs.load(std::memory_order_relaxed);
    s.tid_range_refills =
        stats_.tid_range_refills.load(std::memory_order_relaxed);
    s.delta_starts = stats_.delta_starts.load(std::memory_order_relaxed);
    s.full_starts = stats_.full_starts.load(std::memory_order_relaxed);
    return s;
  }

 private:
  Status RefillTidRangeLocked();
  /// Leader side: appends one change record (no-op for standalone and
  /// follower roles) and snapshots the state into the log when due. Called
  /// AFTER the state change it describes, so a log snapshot taken here is
  /// always consistent.
  void EmitLocked(const ChangeRecord& record);
  /// Follower side: applies one leader change record in log order.
  void ApplyChangeLocked(const ChangeRecord& record);
  Status CatchUpLocked();
  /// Full replica state (descriptor, active txns, tokens, range mirror) for
  /// log snapshots.
  std::string SerializeReplicaStateLocked() const;
  Status InstallReplicaStateLocked(std::string_view blob);
  /// Resets completed_epoch_ to "every readable tid became readable at the
  /// current epoch" — used when the epoch history is discarded (promotion,
  /// snapshot install), always together with a generation change.
  void RebuildCompletedEpochsLocked();
  /// Shared completion path of SetCommitted / SetAborted. `*newly` reports
  /// whether the tid was newly completed (false for a duplicate delivery,
  /// so retried finish notifications do not double-count stats).
  Status Complete(Tid tid, bool* newly);
  Tid ComputeLavLocked() const;
  std::string SerializeStateLocked() const;
  /// Records `tid` as completed at a fresh epoch and prunes entries the
  /// base has swept past. Callers must have already marked it in snapshot_.
  void RecordCompletionLocked(Tid tid);
  /// After a peer merge changed snapshot_: tags every tid that became
  /// readable (and is still above the new base) with a fresh epoch, so
  /// deltas cover merged-in completions too.
  void NoteMergedCompletionsLocked(const SnapshotDescriptor& before);
  void PruneCompletedEpochsLocked();
  /// Builds the delta (or full) response for a client acked at
  /// (request.ack_generation, request.ack_epoch).
  SnapshotDelta DeltaSinceLocked(const BeginRequest& request) const;

  const uint32_t manager_id_;
  store::Cluster* const cluster_;
  const store::TableId state_table_;
  const CommitManagerOptions options_;
  std::atomic<bool> alive_{true};

  struct AtomicStats {
    std::atomic<uint64_t> starts{0};
    std::atomic<uint64_t> commits{0};
    std::atomic<uint64_t> aborts{0};
    std::atomic<uint64_t> syncs{0};
    std::atomic<uint64_t> tid_range_refills{0};
    std::atomic<uint64_t> delta_starts{0};
    std::atomic<uint64_t> full_starts{0};
  };
  mutable AtomicStats stats_;

  mutable std::mutex mutex_;
  SnapshotDescriptor snapshot_;
  const uint32_t num_managers_;
  /// Next tid to hand out and end of the currently owned range (inclusive).
  /// In interleaved mode range_next_ strides by num_managers_ and
  /// range_end_ is unused.
  Tid range_next_ = 1;
  Tid range_end_ = 0;
  struct ActiveTxn {
    Tid snapshot_base;
    uint32_t pn_id;
    uint64_t start_token = 0;
  };
  /// Active transactions started here, keyed by tid.
  std::map<Tid, ActiveTxn> active_;
  /// Lav view published by peers (merged on sync).
  Tid peers_lav_ = 0;
  bool has_peer_lav_ = false;
  Tid highest_assigned_ = 0;

  // Delta-sync bookkeeping. Invariant: completed_epoch_'s keys are exactly
  // the set bits of snapshot_ above its current base, each tagged with the
  // epoch at which it became readable here. A client acked at epoch E holds
  // our descriptor as of E, so {current base} ∪ {tids with epoch > E}
  // reconstructs the current descriptor exactly.
  uint32_t generation_ = 1;
  uint64_t epoch_ = 0;
  std::map<Tid, uint64_t> completed_epoch_;
  /// Start-token dedup map (entries die with their active transaction).
  std::map<uint64_t, Tid> token_tids_;

  // Replication (docs/RECOVERY.md). Lock order: mutex_ before the log's own
  // mutex — the leader appends while holding mutex_, which makes log order
  // identical to state-machine order.
  ReplicationLog* repl_log_ = nullptr;
  ReplicaRole role_ = ReplicaRole::kLeader;
  /// Next log index this replica has not applied yet.
  uint64_t repl_applied_ = 0;
  std::atomic<uint64_t> repl_snapshot_installs_{0};
  std::atomic<uint64_t> repl_records_replayed_{0};
};

/// A cluster of commit managers sharing one storage-backed state, with an
/// optional background synchronization thread (default interval 1 ms, the
/// paper's setting). PN workers are assigned managers round-robin.
///
/// With `replication.replicas` > 1 each manager slot is a replicated state
/// machine (docs/RECOVERY.md): one leader serves requests and streams a
/// change log; when a kill is detected the group deterministically elects a
/// live follower (seeded tie-break), which catches up from the log — bounded
/// by periodic snapshots — and takes over the slot's tid stream. A slot is
/// unavailable only when ALL of its replicas are dead.
class CommitManagerGroup {
 public:
  /// Creates `num_managers` manager slots over `cluster`. Creates the state
  /// table. `sync_interval` <= 0 disables the background thread (callers
  /// then drive SyncAll() manually; single-manager setups need no sync).
  CommitManagerGroup(store::Cluster* cluster, uint32_t num_managers,
                     const CommitManagerOptions& options,
                     double sync_interval_ms = 1.0,
                     const ReplicationOptions& replication = {});
  ~CommitManagerGroup();

  CommitManagerGroup(const CommitManagerGroup&) = delete;
  CommitManagerGroup& operator=(const CommitManagerGroup&) = delete;

  uint32_t size() const { return static_cast<uint32_t>(slots_.size()); }

  /// Replicas per slot (1 = replication off).
  uint32_t num_replicas() const { return replication_.replicas; }

  /// Manager serving a given PN worker (round-robin by worker id). Skips
  /// dead slots — PNs "automatically switch to the next one" (§4.4.3). If
  /// the probed slot's leader is dead but a live follower exists, an
  /// election promotes it first; `election_ns` (when non-null) accumulates
  /// the virtual election timeout so the caller can charge its clock.
  CommitManager* ManagerFor(uint32_t worker_id, uint64_t* election_ns);
  CommitManager* ManagerFor(uint32_t worker_id) {
    return ManagerFor(worker_id, nullptr);
  }

  /// Current leader of a slot.
  CommitManager* manager(uint32_t id) {
    Slot& slot = *slots_[id];
    return slot.replicas[slot.leader.load(std::memory_order_acquire)].get();
  }

  /// A specific replica of a slot (tests).
  CommitManager* replica(uint32_t slot, uint32_t index) {
    return slots_[slot]->replicas[index].get();
  }

  /// Index of a slot's current leader replica (tests).
  uint32_t leader_index(uint32_t slot) const {
    return slots_[slot]->leader.load(std::memory_order_acquire);
  }

  /// One synchronization round: live slot leaders publish + merge peer
  /// state, followers catch up from their slot's change log.
  Status SyncAll();

  /// Global lav (min across slot leaders) — used by the lazy GC task.
  Tid GlobalLav() const;

  /// Aggregated replication counters (commitmgr.repl.* gauges).
  GroupReplicationStats ReplStats() const;

 private:
  struct Slot {
    std::vector<std::unique_ptr<CommitManager>> replicas;
    std::unique_ptr<ReplicationLog> log;  // null when replication is off
    std::atomic<uint32_t> leader{0};
    uint64_t term = 0;  // guarded by election_mutex
    std::mutex election_mutex;
  };

  /// Returns the slot's live leader, electing one first if the current
  /// leader is dead and a live follower exists; nullptr when all replicas
  /// of the slot are dead.
  CommitManager* EnsureLeader(Slot& slot, uint64_t* election_ns);
  void SyncLoop();

  store::Cluster* const cluster_;
  store::TableId state_table_ = 0;
  std::vector<std::unique_ptr<Slot>> slots_;
  ReplicationOptions replication_;
  std::atomic<uint64_t> elections_{0};
  std::atomic<uint64_t> max_term_{0};
  std::atomic<bool> stop_{false};
  double sync_interval_ms_;
  std::thread sync_thread_;
};

}  // namespace tell::commitmgr

#endif  // TELL_COMMITMGR_COMMIT_MANAGER_H_
