#ifndef TELL_COMMITMGR_REPLICATION_H_
#define TELL_COMMITMGR_REPLICATION_H_

#include <cstdint>
#include <deque>
#include <mutex>
#include <string>
#include <vector>

#include "commitmgr/snapshot_descriptor.h"

namespace tell::commitmgr {

/// Replication settings of a commit-manager group (docs/RECOVERY.md). With
/// `replicas` == 1 the group behaves exactly as before this layer existed:
/// one instance per manager slot, no change log, no elections.
struct ReplicationOptions {
  /// Total copies of each manager slot (leader + followers). 1 = off.
  uint32_t replicas = 1;
  /// Change-log records between two state snapshots in the log. Bounds a
  /// follower's catch-up replay at promotion time.
  uint64_t snapshot_interval = 256;
  /// Seed of the deterministic election tie-break: every observer computes
  /// the same winner from (seed, term, candidate id) with no communication.
  uint64_t election_seed = 0x5EED;
  /// Virtual nanoseconds a client is charged when its request triggered an
  /// election (the timeout a real deployment would wait before claiming the
  /// leader dead).
  uint64_t election_timeout_ns = 200'000;
};

/// One entry of a manager slot's change log. The leader appends a record for
/// every state change it makes while holding its own mutex, so log order is
/// exactly state-machine order: replaying the records from any snapshot
/// reproduces the leader's state sequence (docs/RECOVERY.md, "Change log").
struct ChangeRecord {
  enum class Type : uint8_t {
    kRangeGrant = 0,  ///< leader drew tids [tid, tid_end] from the counter
    kBegin,           ///< tid assigned to a transaction (pn_id, token)
    kComplete,        ///< tid completed: commit, abort, or fast completion
    kLease,           ///< tids [tid, tid_end] leased to the fast path
    kEpochBump,       ///< peer merge changed the descriptor (payload)
  };
  Type type = Type::kComplete;
  Tid tid = 0;
  Tid tid_end = 0;
  uint32_t pn_id = 0;
  uint64_t token = 0;
  /// kEpochBump only: the post-merge descriptor, SnapshotDescriptor wire
  /// format. Merging is not replayable from (tid, tid_end) alone.
  std::string payload;

  /// Modelled wire footprint (metrics; nothing is actually sent in-process).
  size_t WireBytes() const { return 1 + 8 + 8 + 4 + 8 + payload.size(); }
};

/// Counters of one slot's log, exported as commitmgr.repl.* gauges.
struct ReplicationLogStats {
  uint64_t appends = 0;
  uint64_t bytes = 0;
  uint64_t snapshots = 0;
  uint64_t truncated = 0;
};

/// The shared change log of one replicated manager slot. The leader appends
/// and periodically installs a full-state snapshot (which truncates the
/// records it covers); followers read the snapshot plus the tail to catch
/// up. Thread safe: the leader appends while followers read.
class ReplicationLog {
 public:
  explicit ReplicationLog(uint64_t snapshot_interval)
      : snapshot_interval_(snapshot_interval) {}

  ReplicationLog(const ReplicationLog&) = delete;
  ReplicationLog& operator=(const ReplicationLog&) = delete;

  /// Appends one record; returns its log index.
  uint64_t Append(const ChangeRecord& record);

  /// True when `snapshot_interval` records accumulated since the last
  /// snapshot — the leader then serializes its state into the log.
  bool SnapshotDue() const;

  /// Installs a full replica-state snapshot covering every record below
  /// `through_index` and truncates those records.
  void InstallSnapshot(std::string replica_state, uint64_t through_index);

  /// Index one past the last appended record.
  uint64_t TailIndex() const;

  /// Records below this index are covered by the current snapshot.
  uint64_t SnapshotIndex() const;

  /// Current snapshot blob (empty if none was ever installed).
  std::string SnapshotBlob() const;

  /// Records with index >= `from_index` (clamped to what is retained).
  std::vector<ChangeRecord> ReadFrom(uint64_t from_index) const;

  ReplicationLogStats stats() const;

 private:
  const uint64_t snapshot_interval_;
  mutable std::mutex mutex_;
  std::deque<ChangeRecord> records_;
  /// Log index of records_.front().
  uint64_t first_index_ = 0;
  uint64_t snapshot_index_ = 0;
  std::string snapshot_blob_;
  uint64_t appends_since_snapshot_ = 0;
  ReplicationLogStats stats_;
};

/// Deterministic election tie-break: mixes (seed, term, candidate) into a
/// rank; the live, caught-up candidate with the smallest rank wins. Pure, so
/// every node (and every test) computes the same winner.
uint64_t ElectionRank(uint64_t seed, uint64_t term, uint32_t candidate);

}  // namespace tell::commitmgr

#endif  // TELL_COMMITMGR_REPLICATION_H_
