#include "commitmgr/replication.h"

#include <algorithm>
#include <utility>

namespace tell::commitmgr {

uint64_t ReplicationLog::Append(const ChangeRecord& record) {
  std::lock_guard<std::mutex> lock(mutex_);
  uint64_t index = first_index_ + records_.size();
  stats_.appends += 1;
  stats_.bytes += record.WireBytes();
  ++appends_since_snapshot_;
  records_.push_back(record);
  return index;
}

bool ReplicationLog::SnapshotDue() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return snapshot_interval_ > 0 && appends_since_snapshot_ >= snapshot_interval_;
}

void ReplicationLog::InstallSnapshot(std::string replica_state,
                                     uint64_t through_index) {
  std::lock_guard<std::mutex> lock(mutex_);
  uint64_t tail = first_index_ + records_.size();
  through_index = std::min(through_index, tail);
  if (through_index < snapshot_index_) return;  // never regress
  snapshot_blob_ = std::move(replica_state);
  snapshot_index_ = through_index;
  while (first_index_ < through_index && !records_.empty()) {
    records_.pop_front();
    ++first_index_;
    stats_.truncated += 1;
  }
  appends_since_snapshot_ = tail - through_index;
  stats_.snapshots += 1;
}

uint64_t ReplicationLog::TailIndex() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return first_index_ + records_.size();
}

uint64_t ReplicationLog::SnapshotIndex() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return snapshot_index_;
}

std::string ReplicationLog::SnapshotBlob() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return snapshot_blob_;
}

std::vector<ChangeRecord> ReplicationLog::ReadFrom(uint64_t from_index) const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<ChangeRecord> out;
  uint64_t start = std::max(from_index, first_index_);
  uint64_t tail = first_index_ + records_.size();
  if (start >= tail) return out;
  out.reserve(tail - start);
  for (uint64_t i = start; i < tail; ++i) {
    out.push_back(records_[i - first_index_]);
  }
  return out;
}

ReplicationLogStats ReplicationLog::stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return stats_;
}

uint64_t ElectionRank(uint64_t seed, uint64_t term, uint32_t candidate) {
  // splitmix64 finalizer over the three inputs — uniform enough that
  // leadership rotates with the term, and fully deterministic per seed.
  uint64_t x = seed;
  x ^= term * 0x9E3779B97F4A7C15ULL;
  x ^= (static_cast<uint64_t>(candidate) << 32) | (candidate + 1);
  x ^= x >> 30;
  x *= 0xBF58476D1CE4E5B9ULL;
  x ^= x >> 27;
  x *= 0x94D049BB133111EBULL;
  x ^= x >> 31;
  return x;
}

}  // namespace tell::commitmgr
