#include "commitmgr/commit_manager.h"

#include <algorithm>
#include <chrono>
#include <cstring>

#include "common/logging.h"
#include "common/serde.h"

namespace tell::commitmgr {

namespace {
constexpr std::string_view kTidCounterKey = "tid_counter";

std::string StateKey(uint32_t manager_id) {
  return "state/" + std::to_string(manager_id);
}

ChangeRecord CompleteRecord(Tid tid) {
  ChangeRecord record;
  record.type = ChangeRecord::Type::kComplete;
  record.tid = tid;
  return record;
}

ChangeRecord RangeRecord(ChangeRecord::Type type, Tid first, Tid last) {
  ChangeRecord record;
  record.type = type;
  record.tid = first;
  record.tid_end = last;
  return record;
}

ChangeRecord BeginRecord(Tid tid, uint32_t pn_id, uint64_t token) {
  ChangeRecord record;
  record.type = ChangeRecord::Type::kBegin;
  record.tid = tid;
  record.pn_id = pn_id;
  record.token = token;
  return record;
}
}  // namespace

CommitManager::CommitManager(uint32_t manager_id, store::Cluster* cluster,
                             store::TableId state_table,
                             const CommitManagerOptions& options,
                             uint32_t num_managers)
    : manager_id_(manager_id),
      cluster_(cluster),
      state_table_(state_table),
      options_(options),
      num_managers_(num_managers) {
  TELL_CHECK(options_.tid_range_size >= 1);
  TELL_CHECK(manager_id_ < num_managers_);
  if (options_.interleaved_tids) {
    range_next_ = manager_id_ + 1;  // i+1, i+1+n, i+1+2n, ...
  }
}

Status CommitManager::RefillTidRangeLocked() {
  // Acquire a continuous range of tids by bumping the shared counter in the
  // storage system. The store's AtomicIncrement is the LL/SC-protected
  // counter of paper §4.2 ("PNs update the counter using LL/SC operations to
  // ensure that tids are never assigned twice").
  TELL_ASSIGN_OR_RETURN(
      int64_t end, cluster_->AtomicIncrement(state_table_, kTidCounterKey,
                                             options_.tid_range_size));
  range_end_ = static_cast<Tid>(end);
  range_next_ = range_end_ - options_.tid_range_size + 1;
  stats_.tid_range_refills.fetch_add(1, std::memory_order_relaxed);
  // Logged so a promoted follower knows the dead leader's unassigned
  // remainder: those tids can never be handed out again (the counter is
  // past them) and must be completed at promotion or they would pin the
  // snapshot base and GC horizon forever.
  EmitLocked(RangeRecord(ChangeRecord::Type::kRangeGrant, range_next_,
                         range_end_));
  return Status::OK();
}

Tid CommitManager::ComputeLavLocked() const {
  // Lav: lowest snapshot base among transactions active here, bounded by
  // what the peers have published.
  Tid lav = snapshot_.base();
  for (const auto& [tid, txn] : active_) lav = std::min(lav, txn.snapshot_base);
  if (has_peer_lav_) lav = std::min(lav, peers_lav_);
  return lav;
}

Result<TxnBegin> CommitManager::Start(uint32_t pn_id) {
  if (!alive()) return Status::Unavailable("commit manager is down");
  std::lock_guard<std::mutex> lock(mutex_);
  if (role_ == ReplicaRole::kFollower) {
    return Status::Unavailable("not the slot leader");
  }
  TxnBegin begin;
  if (options_.interleaved_tids) {
    begin.tid = range_next_;
    range_next_ += num_managers_;
  } else {
    if (range_next_ > range_end_) {
      TELL_RETURN_NOT_OK(RefillTidRangeLocked());
    }
    begin.tid = range_next_++;
  }
  highest_assigned_ = std::max(highest_assigned_, begin.tid);
  begin.snapshot = snapshot_;
  active_.emplace(begin.tid, ActiveTxn{snapshot_.base(), pn_id});
  EmitLocked(BeginRecord(begin.tid, pn_id, 0));
  begin.lav = ComputeLavLocked();
  stats_.starts.fetch_add(1, std::memory_order_relaxed);
  return begin;
}

Result<TxnBeginDelta> CommitManager::StartDelta(const BeginRequest& request) {
  if (!alive()) return Status::Unavailable("commit manager is down");
  std::lock_guard<std::mutex> lock(mutex_);
  if (role_ == ReplicaRole::kFollower) {
    return Status::Unavailable("not the slot leader");
  }
  TxnBeginDelta begin;
  auto token_it = request.start_token != 0
                      ? token_tids_.find(request.start_token)
                      : token_tids_.end();
  if (token_it != token_tids_.end()) {
    // Retried begin whose response was lost: hand the same tid back. The
    // snapshot is recomputed fresh — any consistent snapshot is valid at
    // begin — so the active entry's base moves forward with it.
    begin.tid = token_it->second;
    auto active_it = active_.find(begin.tid);
    if (active_it != active_.end()) {
      active_it->second.snapshot_base = snapshot_.base();
    }
  } else {
    if (options_.interleaved_tids) {
      begin.tid = range_next_;
      range_next_ += num_managers_;
    } else {
      if (range_next_ > range_end_) {
        TELL_RETURN_NOT_OK(RefillTidRangeLocked());
      }
      begin.tid = range_next_++;
    }
    highest_assigned_ = std::max(highest_assigned_, begin.tid);
    active_.emplace(begin.tid, ActiveTxn{snapshot_.base(), request.pn_id,
                                         request.start_token});
    if (request.start_token != 0) {
      token_tids_[request.start_token] = begin.tid;
    }
    // Token replays are NOT logged: the original kBegin already carries the
    // token, so a promoted follower resolves the retried begin to the same
    // tid from its replayed token map.
    EmitLocked(BeginRecord(begin.tid, request.pn_id, request.start_token));
  }
  begin.delta = DeltaSinceLocked(request);
  begin.lav = ComputeLavLocked();
  stats_.starts.fetch_add(1, std::memory_order_relaxed);
  (begin.delta.full ? stats_.full_starts : stats_.delta_starts)
      .fetch_add(1, std::memory_order_relaxed);
  return begin;
}

SnapshotDelta CommitManager::DeltaSinceLocked(
    const BeginRequest& request) const {
  SnapshotDelta delta;
  delta.generation = generation_;
  delta.epoch = epoch_;
  bool resync = request.want_full || request.ack_generation != generation_;
  if (!resync) {
    delta.base = snapshot_.base();
    for (const auto& [tid, epoch] : completed_epoch_) {
      if (epoch > request.ack_epoch) delta.completed.push_back(tid);
    }
    // A delta at least as large as the full descriptor is pointless;
    // 13 + 4 is the full form's envelope + length prefix (WireBytes()).
    resync = delta.WireBytes() >= 13 + 4 + snapshot_.SerializedBytes();
    if (resync) delta.completed.clear();
  }
  if (resync) {
    delta.full = true;
    delta.base = 0;
    delta.snapshot = snapshot_;
  }
  return delta;
}

void CommitManager::PruneCompletedEpochsLocked() {
  completed_epoch_.erase(completed_epoch_.begin(),
                         completed_epoch_.upper_bound(snapshot_.base()));
}

void CommitManager::RecordCompletionLocked(Tid tid) {
  ++epoch_;
  if (tid > snapshot_.base()) completed_epoch_[tid] = epoch_;
  PruneCompletedEpochsLocked();
}

void CommitManager::NoteMergedCompletionsLocked(
    const SnapshotDescriptor& before) {
  if (snapshot_ == before) return;
  ++epoch_;
  Tid highest = snapshot_.HighestCompleted();
  for (Tid tid = snapshot_.base() + 1; tid <= highest; ++tid) {
    if (snapshot_.CanRead(tid) && !before.CanRead(tid)) {
      completed_epoch_[tid] = epoch_;
    }
  }
  PruneCompletedEpochsLocked();
}

std::vector<Tid> CommitManager::AbortActiveOf(uint32_t pn_id) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (role_ == ReplicaRole::kFollower) return {};  // recovery talks to leaders
  std::vector<Tid> aborted;
  for (auto it = active_.begin(); it != active_.end();) {
    if (it->second.pn_id == pn_id) {
      Tid tid = it->first;
      aborted.push_back(tid);
      if (it->second.start_token != 0) {
        token_tids_.erase(it->second.start_token);
      }
      it = active_.erase(it);
      snapshot_.MarkCompleted(tid);
      RecordCompletionLocked(tid);
      EmitLocked(CompleteRecord(tid));
    } else {
      ++it;
    }
  }
  return aborted;
}

Status CommitManager::Complete(Tid tid, bool* newly) {
  if (!alive()) return Status::Unavailable("commit manager is down");
  std::lock_guard<std::mutex> lock(mutex_);
  if (role_ == ReplicaRole::kFollower) {
    return Status::Unavailable("not the slot leader");
  }
  if (snapshot_.CanRead(tid)) {
    // Duplicate delivery (a finish retried after an ambiguous drop): the
    // first delivery already applied, so this one must not move the epoch
    // or the stats.
    *newly = false;
    return Status::OK();
  }
  auto it = active_.find(tid);
  if (it != active_.end()) {
    if (it->second.start_token != 0) token_tids_.erase(it->second.start_token);
    active_.erase(it);
  }
  snapshot_.MarkCompleted(tid);
  RecordCompletionLocked(tid);
  EmitLocked(CompleteRecord(tid));
  *newly = true;
  return Status::OK();
}

Status CommitManager::SetCommitted(Tid tid) {
  bool newly = false;
  Status st = Complete(tid, &newly);
  if (st.ok() && newly) stats_.commits.fetch_add(1, std::memory_order_relaxed);
  return st;
}

Status CommitManager::SetAborted(Tid tid) {
  // Aborted transactions also count as completed for snapshot purposes:
  // their updates were reverted, so their version number can never be
  // observed, and the base must be able to advance over them.
  bool newly = false;
  Status st = Complete(tid, &newly);
  if (st.ok() && newly) stats_.aborts.fetch_add(1, std::memory_order_relaxed);
  return st;
}

Result<std::vector<Tid>> CommitManager::LeaseFastTids(uint32_t count) {
  if (!alive()) return Status::Unavailable("commit manager is down");
  if (count == 0) return Status::InvalidArgument("lease count must be > 0");
  std::lock_guard<std::mutex> lock(mutex_);
  if (role_ == ReplicaRole::kFollower) {
    return Status::Unavailable("not the slot leader");
  }
  if (options_.interleaved_tids) {
    // Interleaved managers never touch the counter, so a counter-leased
    // range would collide with their strided sequences.
    return Status::NotSupported(
        "fast-tid leases require range-based tid assignment");
  }
  // From the SAME sequential stream as Start(), not a separate counter
  // jump: version order within a record is tid order, so correctness needs
  // tid assignment order == begin order across BOTH phases. A counter jump
  // would leave later MVCC Starts with smaller tids from the cached range,
  // burying their (logically newer) writes under the fast version. Leasing
  // from the shared range keeps one monotone stream: any transaction that
  // begins after this lease gets a larger tid, and any earlier-begun
  // transaction that commits later fails its snapshot write check against
  // the fast version first (tid not in its snapshot) and retries with a
  // fresh, larger tid.
  std::vector<Tid> tids;
  tids.reserve(count);
  for (uint32_t i = 0; i < count; ++i) {
    if (range_next_ > range_end_) {
      Status refill = RefillTidRangeLocked();
      if (!refill.ok()) {
        // The tids drawn so far were consumed from the range but will never
        // be handed out: mark them completed here, or they would pin the
        // snapshot base and the GC horizon forever.
        for (Tid tid : tids) {
          snapshot_.MarkCompleted(tid);
          RecordCompletionLocked(tid);
          EmitLocked(CompleteRecord(tid));
        }
        if (!tids.empty()) {
          highest_assigned_ = std::max(highest_assigned_, tids.back());
        }
        return refill;
      }
    }
    tids.push_back(range_next_++);
  }
  highest_assigned_ = std::max(highest_assigned_, tids.back());
  // Log the lease as contiguous runs (a mid-lease refill can split the
  // range), so a promoted follower's range mirror points past the leased
  // tids: leased-but-uncompleted tids stay pending — only the owning lane
  // may CompleteFast() them, against whichever leader is current.
  size_t run_start = 0;
  for (size_t i = 1; i <= tids.size(); ++i) {
    if (i == tids.size() || tids[i] != tids[i - 1] + 1) {
      EmitLocked(RangeRecord(ChangeRecord::Type::kLease, tids[run_start],
                             tids[i - 1]));
      run_start = i;
    }
  }
  return tids;
}

Status CommitManager::CompleteFast(const std::vector<Tid>& tids) {
  if (!alive()) return Status::Unavailable("commit manager is down");
  std::lock_guard<std::mutex> lock(mutex_);
  if (role_ == ReplicaRole::kFollower) {
    return Status::Unavailable("not the slot leader");
  }
  for (Tid tid : tids) {
    if (snapshot_.CanRead(tid)) continue;  // duplicate delivery
    snapshot_.MarkCompleted(tid);
    RecordCompletionLocked(tid);
    EmitLocked(CompleteRecord(tid));
  }
  return Status::OK();
}

Tid CommitManager::Lav() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return ComputeLavLocked();
}

SnapshotDescriptor CommitManager::CurrentSnapshot() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return snapshot_;
}

Tid CommitManager::HighestAssignedTid() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return highest_assigned_;
}

std::string CommitManager::SerializeStateLocked() const {
  Tid lav = snapshot_.base();
  for (const auto& [tid, txn] : active_) lav = std::min(lav, txn.snapshot_base);
  BufferWriter writer;
  writer.PutU64(lav);
  writer.PutString(snapshot_.Serialize());
  return writer.Release();
}

size_t CommitManager::StateBlobBytes() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return SerializeStateLocked().size();
}

Status CommitManager::SyncWithPeers(uint32_t num_peers) {
  if (!alive()) return Status::Unavailable("commit manager is down");
  std::lock_guard<std::mutex> lock(mutex_);
  if (role_ == ReplicaRole::kFollower) {
    return Status::Unavailable("not the slot leader");
  }
  // 1. Publish our own state.
  auto put = cluster_->Put(state_table_, StateKey(manager_id_),
                           SerializeStateLocked());
  TELL_RETURN_NOT_OK(put.status());
  // 2. Read and merge every peer's most recent state.
  Tid min_peer_lav = 0;
  bool saw_peer = false;
  SnapshotDescriptor before_merge = snapshot_;
  for (uint32_t peer = 0; peer < num_peers; ++peer) {
    if (peer == manager_id_) continue;
    auto cell = cluster_->Get(state_table_, StateKey(peer));
    if (cell.status().IsNotFound()) continue;  // peer has not published yet
    TELL_RETURN_NOT_OK(cell.status());
    BufferReader reader(cell->value);
    TELL_ASSIGN_OR_RETURN(Tid peer_lav, reader.GetU64());
    TELL_ASSIGN_OR_RETURN(std::string_view blob, reader.GetString());
    TELL_ASSIGN_OR_RETURN(SnapshotDescriptor peer_snapshot,
                          SnapshotDescriptor::Deserialize(blob));
    snapshot_.MergeFrom(peer_snapshot);
    min_peer_lav = saw_peer ? std::min(min_peer_lav, peer_lav) : peer_lav;
    saw_peer = true;
  }
  NoteMergedCompletionsLocked(before_merge);
  if (!(snapshot_ == before_merge)) {
    // Merging is not replayable from individual records — ship the merged
    // descriptor itself.
    ChangeRecord bump;
    bump.type = ChangeRecord::Type::kEpochBump;
    bump.payload = snapshot_.Serialize();
    EmitLocked(bump);
  }
  if (saw_peer) {
    peers_lav_ = min_peer_lav;
    has_peer_lav_ = true;
  }
  stats_.syncs.fetch_add(1, std::memory_order_relaxed);
  return Status::OK();
}

Status CommitManager::RecoverFromStore(uint32_t num_peers) {
  std::lock_guard<std::mutex> lock(mutex_);
  // Last used tid: read the shared counter. Our replacement range starts
  // fresh, so nothing of the failed instance's unassigned range is reused —
  // the snapshot simply never advances into it, which is safe (those tids
  // will never be observed).
  active_.clear();
  range_next_ = 1;
  range_end_ = 0;
  // Merge whatever the peers (or our own previous incarnation) published.
  for (uint32_t peer = 0; peer < num_peers; ++peer) {
    auto cell = cluster_->Get(state_table_, StateKey(peer));
    if (!cell.ok()) continue;
    BufferReader reader(cell->value);
    auto peer_lav = reader.GetU64();
    if (!peer_lav.ok()) continue;
    auto blob = reader.GetString();
    if (!blob.ok()) continue;
    auto peer_snapshot = SnapshotDescriptor::Deserialize(*blob);
    if (!peer_snapshot.ok()) continue;
    snapshot_.MergeFrom(*peer_snapshot);
  }
  auto counter = cluster_->Get(state_table_, kTidCounterKey);
  if (counter.ok() && counter->value.size() == sizeof(int64_t)) {
    int64_t value;
    std::memcpy(&value, counter->value.data(), sizeof(value));
    highest_assigned_ = static_cast<Tid>(value);
  }
  // New incarnation: client-acked epochs of the previous incarnation are
  // meaningless against the rebuilt state, so force every cached client
  // through a full resync and rebuild the epoch map from the descriptor.
  ++generation_;
  ++epoch_;
  token_tids_.clear();
  completed_epoch_.clear();
  Tid highest = snapshot_.HighestCompleted();
  for (Tid tid = snapshot_.base() + 1; tid <= highest; ++tid) {
    if (snapshot_.CanRead(tid)) completed_epoch_[tid] = epoch_;
  }
  return Status::OK();
}

std::pair<uint32_t, uint64_t> CommitManager::SyncState() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return {generation_, epoch_};
}

// ---------------------------------------------------------------------------
// Replication (docs/RECOVERY.md)

void CommitManager::AttachReplication(ReplicationLog* log, ReplicaRole role) {
  std::lock_guard<std::mutex> lock(mutex_);
  repl_log_ = log;
  role_ = role;
}

ReplicaRole CommitManager::role() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return role_;
}

void CommitManager::Demote() {
  std::lock_guard<std::mutex> lock(mutex_);
  role_ = ReplicaRole::kFollower;
}

void CommitManager::EmitLocked(const ChangeRecord& record) {
  if (repl_log_ == nullptr || role_ != ReplicaRole::kLeader) return;
  repl_applied_ = repl_log_->Append(record) + 1;
  if (repl_log_->SnapshotDue()) {
    // EmitLocked runs after the state change it describes, so the state
    // serialized here is consistent with the log position.
    repl_log_->InstallSnapshot(SerializeReplicaStateLocked(),
                               repl_log_->TailIndex());
  }
}

void CommitManager::ApplyChangeLocked(const ChangeRecord& record) {
  switch (record.type) {
    case ChangeRecord::Type::kRangeGrant:
      range_next_ = record.tid;
      range_end_ = record.tid_end;
      break;
    case ChangeRecord::Type::kBegin:
      active_.emplace(record.tid, ActiveTxn{snapshot_.base(), record.pn_id,
                                            record.token});
      if (record.token != 0) token_tids_[record.token] = record.tid;
      highest_assigned_ = std::max(highest_assigned_, record.tid);
      range_next_ = record.tid + 1;
      break;
    case ChangeRecord::Type::kComplete: {
      if (snapshot_.CanRead(record.tid)) break;
      auto it = active_.find(record.tid);
      if (it != active_.end()) {
        if (it->second.start_token != 0) {
          token_tids_.erase(it->second.start_token);
        }
        active_.erase(it);
      }
      snapshot_.MarkCompleted(record.tid);
      RecordCompletionLocked(record.tid);
      break;
    }
    case ChangeRecord::Type::kLease:
      range_next_ = record.tid_end + 1;
      highest_assigned_ = std::max(highest_assigned_, record.tid_end);
      break;
    case ChangeRecord::Type::kEpochBump: {
      auto merged = SnapshotDescriptor::Deserialize(record.payload);
      if (!merged.ok()) break;
      SnapshotDescriptor before = snapshot_;
      snapshot_.MergeFrom(*merged);
      NoteMergedCompletionsLocked(before);
      break;
    }
  }
}

std::string CommitManager::SerializeReplicaStateLocked() const {
  BufferWriter writer;
  writer.PutU32(generation_);
  writer.PutU64(epoch_);
  writer.PutU64(highest_assigned_);
  writer.PutU64(range_next_);
  writer.PutU64(range_end_);
  writer.PutString(snapshot_.Serialize());
  writer.PutU32(static_cast<uint32_t>(active_.size()));
  for (const auto& [tid, txn] : active_) {
    writer.PutU64(tid);
    writer.PutU64(txn.snapshot_base);
    writer.PutU32(txn.pn_id);
    writer.PutU64(txn.start_token);
  }
  return writer.Release();
}

Status CommitManager::InstallReplicaStateLocked(std::string_view blob) {
  BufferReader reader(blob);
  TELL_ASSIGN_OR_RETURN(generation_, reader.GetU32());
  TELL_ASSIGN_OR_RETURN(epoch_, reader.GetU64());
  TELL_ASSIGN_OR_RETURN(highest_assigned_, reader.GetU64());
  TELL_ASSIGN_OR_RETURN(range_next_, reader.GetU64());
  TELL_ASSIGN_OR_RETURN(range_end_, reader.GetU64());
  TELL_ASSIGN_OR_RETURN(std::string_view snapshot_blob, reader.GetString());
  TELL_ASSIGN_OR_RETURN(snapshot_,
                        SnapshotDescriptor::Deserialize(snapshot_blob));
  TELL_ASSIGN_OR_RETURN(uint32_t num_active, reader.GetU32());
  active_.clear();
  token_tids_.clear();
  for (uint32_t i = 0; i < num_active; ++i) {
    TELL_ASSIGN_OR_RETURN(Tid tid, reader.GetU64());
    ActiveTxn txn;
    TELL_ASSIGN_OR_RETURN(txn.snapshot_base, reader.GetU64());
    TELL_ASSIGN_OR_RETURN(txn.pn_id, reader.GetU32());
    TELL_ASSIGN_OR_RETURN(txn.start_token, reader.GetU64());
    active_.emplace(tid, txn);
    if (txn.start_token != 0) token_tids_[txn.start_token] = tid;
  }
  RebuildCompletedEpochsLocked();
  return Status::OK();
}

void CommitManager::RebuildCompletedEpochsLocked() {
  completed_epoch_.clear();
  Tid highest = snapshot_.HighestCompleted();
  for (Tid tid = snapshot_.base() + 1; tid <= highest; ++tid) {
    if (snapshot_.CanRead(tid)) completed_epoch_[tid] = epoch_;
  }
}

Status CommitManager::CatchUpLocked() {
  if (repl_log_ == nullptr) return Status::OK();
  uint64_t snapshot_index = repl_log_->SnapshotIndex();
  if (repl_applied_ < snapshot_index) {
    // Fell behind the log's retained tail: install the bounding snapshot
    // instead of replaying truncated history.
    TELL_RETURN_NOT_OK(InstallReplicaStateLocked(repl_log_->SnapshotBlob()));
    repl_applied_ = snapshot_index;
    repl_snapshot_installs_.fetch_add(1, std::memory_order_relaxed);
  }
  for (const ChangeRecord& record : repl_log_->ReadFrom(repl_applied_)) {
    ApplyChangeLocked(record);
    ++repl_applied_;
    repl_records_replayed_.fetch_add(1, std::memory_order_relaxed);
  }
  return Status::OK();
}

Status CommitManager::CatchUpFromLog() {
  std::lock_guard<std::mutex> lock(mutex_);
  if (role_ == ReplicaRole::kLeader) return Status::OK();  // log source
  return CatchUpLocked();
}

Status CommitManager::PromoteToLeader() {
  std::lock_guard<std::mutex> lock(mutex_);
  TELL_RETURN_NOT_OK(CatchUpLocked());
  // Complete the dead leader's granted-but-never-assigned remainder: the
  // shared counter is already past those tids, so they can never be handed
  // out, and left pending they would pin the snapshot base (and the GC
  // horizon) forever. Leased tids are NOT here — the lease consumed them
  // from the range, and the owning lane completes them via CompleteFast().
  for (Tid tid = range_next_; tid <= range_end_; ++tid) {
    if (!snapshot_.CanRead(tid)) snapshot_.MarkCompleted(tid);
  }
  range_next_ = 1;
  range_end_ = 0;  // first Start() refills a fresh, strictly higher range
  // New incarnation: force every cached client through a full resync.
  // active_ and token_tids_ are KEPT — a begin retried against this new
  // leader must resolve to the tid the old leader assigned.
  ++generation_;
  ++epoch_;
  RebuildCompletedEpochsLocked();
  role_ = ReplicaRole::kLeader;
  if (repl_log_ != nullptr) {
    // Promotion itself (orphan completions, generation bump) is not in the
    // log: publish a fresh snapshot so the remaining followers converge on
    // the new leader's state at their next catch-up.
    repl_log_->InstallSnapshot(SerializeReplicaStateLocked(),
                               repl_log_->TailIndex());
    repl_applied_ = repl_log_->TailIndex();
  }
  return Status::OK();
}

// ---------------------------------------------------------------------------
// CommitManagerGroup

CommitManagerGroup::CommitManagerGroup(store::Cluster* cluster,
                                       uint32_t num_managers,
                                       const CommitManagerOptions& options,
                                       double sync_interval_ms,
                                       const ReplicationOptions& replication)
    : cluster_(cluster),
      replication_(replication),
      sync_interval_ms_(sync_interval_ms) {
  TELL_CHECK(num_managers >= 1);
  TELL_CHECK(replication_.replicas >= 1);
  // A replicated slot mirrors a range-based tid stream through its change
  // log; interleaved assignment has no range to mirror.
  TELL_CHECK(replication_.replicas == 1 || !options.interleaved_tids);
  auto table = cluster_->CreateTable("__commit_manager_state");
  TELL_CHECK(table.ok());
  state_table_ = *table;
  slots_.reserve(num_managers);
  for (uint32_t i = 0; i < num_managers; ++i) {
    auto slot = std::make_unique<Slot>();
    if (replication_.replicas > 1) {
      slot->log =
          std::make_unique<ReplicationLog>(replication_.snapshot_interval);
    }
    slot->replicas.reserve(replication_.replicas);
    for (uint32_t r = 0; r < replication_.replicas; ++r) {
      // All replicas of a slot share the logical manager id: they are one
      // manager to the rest of the system (state key, tid stream, routing).
      auto manager = std::make_unique<CommitManager>(
          i, cluster_, state_table_, options, num_managers);
      manager->AttachReplication(
          slot->log.get(),
          r == 0 ? ReplicaRole::kLeader : ReplicaRole::kFollower);
      slot->replicas.push_back(std::move(manager));
    }
    slots_.push_back(std::move(slot));
  }
  if (num_managers > 1 && sync_interval_ms_ > 0) {
    sync_thread_ = std::thread([this] { SyncLoop(); });
  }
}

CommitManagerGroup::~CommitManagerGroup() {
  stop_.store(true, std::memory_order_release);
  if (sync_thread_.joinable()) sync_thread_.join();
}

CommitManager* CommitManagerGroup::EnsureLeader(Slot& slot,
                                                uint64_t* election_ns) {
  CommitManager* leader =
      slot.replicas[slot.leader.load(std::memory_order_acquire)].get();
  if (leader->alive()) return leader;
  if (slot.replicas.size() == 1) return nullptr;  // nothing to elect
  std::lock_guard<std::mutex> lock(slot.election_mutex);
  // Re-check under the lock: another worker may have just elected.
  leader = slot.replicas[slot.leader.load(std::memory_order_acquire)].get();
  if (leader->alive()) return leader;
  std::vector<uint32_t> candidates;
  for (uint32_t r = 0; r < slot.replicas.size(); ++r) {
    if (slot.replicas[r]->alive()) candidates.push_back(r);
  }
  if (candidates.empty()) return nullptr;  // whole slot down
  ++slot.term;
  // Deterministic election: every observer computes the same winner from
  // (seed, term, candidate) — the in-process stand-in for a quorum vote.
  // Any live candidate is eligible because the change log is appended
  // synchronously under the leader's mutex: whatever the winner has not yet
  // applied, it replays in PromoteToLeader().
  uint32_t winner = candidates.front();
  uint64_t best_rank =
      ElectionRank(replication_.election_seed, slot.term, winner);
  for (uint32_t r : candidates) {
    uint64_t rank = ElectionRank(replication_.election_seed, slot.term, r);
    if (rank < best_rank || (rank == best_rank && r < winner)) {
      best_rank = rank;
      winner = r;
    }
  }
  CommitManager* promoted = slot.replicas[winner].get();
  Status st = promoted->PromoteToLeader();
  if (!st.ok()) {
    TELL_LOG(kWarn) << "commit-manager promotion failed: " << st.ToString();
    return nullptr;
  }
  for (uint32_t r = 0; r < slot.replicas.size(); ++r) {
    // Demote everyone else — in particular a later-revived old leader must
    // come back as a follower, not a second writer on the tid stream.
    if (r != winner) slot.replicas[r]->Demote();
  }
  slot.leader.store(winner, std::memory_order_release);
  elections_.fetch_add(1, std::memory_order_relaxed);
  uint64_t seen = max_term_.load(std::memory_order_relaxed);
  while (slot.term > seen &&
         !max_term_.compare_exchange_weak(seen, slot.term,
                                          std::memory_order_relaxed)) {
  }
  if (election_ns != nullptr) *election_ns += replication_.election_timeout_ns;
  return promoted;
}

CommitManager* CommitManagerGroup::ManagerFor(uint32_t worker_id,
                                              uint64_t* election_ns) {
  uint32_t n = size();
  for (uint32_t probe = 0; probe < n; ++probe) {
    Slot& slot = *slots_[(worker_id + probe) % n];
    CommitManager* leader = EnsureLeader(slot, election_ns);
    if (leader != nullptr) return leader;
  }
  return nullptr;  // all slots down; the system is blocked (§4.4.3)
}

Status CommitManagerGroup::SyncAll() {
  for (auto& slot : slots_) {
    uint32_t leader = slot->leader.load(std::memory_order_acquire);
    for (uint32_t r = 0; r < slot->replicas.size(); ++r) {
      CommitManager* replica = slot->replicas[r].get();
      if (!replica->alive()) continue;
      if (r == leader) {
        TELL_RETURN_NOT_OK(replica->SyncWithPeers(size()));
      } else {
        TELL_RETURN_NOT_OK(replica->CatchUpFromLog());
      }
    }
  }
  return Status::OK();
}

Tid CommitManagerGroup::GlobalLav() const {
  Tid lav = 0;
  bool first = true;
  for (const auto& slot : slots_) {
    const CommitManager* leader =
        slot->replicas[slot->leader.load(std::memory_order_acquire)].get();
    if (!leader->alive()) continue;
    Tid manager_lav = leader->Lav();
    lav = first ? manager_lav : std::min(lav, manager_lav);
    first = false;
  }
  return lav;
}

GroupReplicationStats CommitManagerGroup::ReplStats() const {
  GroupReplicationStats s;
  for (const auto& slot : slots_) {
    if (slot->log != nullptr) {
      ReplicationLogStats log = slot->log->stats();
      s.log_appends += log.appends;
      s.log_bytes += log.bytes;
      s.snapshots += log.snapshots;
      s.log_truncated += log.truncated;
    }
    for (const auto& replica : slot->replicas) {
      s.snapshot_installs += replica->ReplSnapshotInstalls();
      s.records_replayed += replica->ReplRecordsReplayed();
    }
  }
  s.elections = elections_.load(std::memory_order_relaxed);
  s.term = max_term_.load(std::memory_order_relaxed);
  return s;
}

void CommitManagerGroup::SyncLoop() {
  while (!stop_.load(std::memory_order_acquire)) {
    Status st = SyncAll();
    if (!st.ok()) {
      TELL_LOG(kWarn) << "commit manager sync failed: " << st.ToString();
    }
    std::this_thread::sleep_for(
        std::chrono::microseconds(static_cast<int64_t>(sync_interval_ms_ * 1000)));
  }
}

}  // namespace tell::commitmgr
