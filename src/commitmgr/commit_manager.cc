#include "commitmgr/commit_manager.h"

#include <algorithm>
#include <chrono>
#include <cstring>

#include "common/logging.h"
#include "common/serde.h"

namespace tell::commitmgr {

namespace {
constexpr std::string_view kTidCounterKey = "tid_counter";

std::string StateKey(uint32_t manager_id) {
  return "state/" + std::to_string(manager_id);
}
}  // namespace

CommitManager::CommitManager(uint32_t manager_id, store::Cluster* cluster,
                             store::TableId state_table,
                             const CommitManagerOptions& options,
                             uint32_t num_managers)
    : manager_id_(manager_id),
      cluster_(cluster),
      state_table_(state_table),
      options_(options),
      num_managers_(num_managers) {
  TELL_CHECK(options_.tid_range_size >= 1);
  TELL_CHECK(manager_id_ < num_managers_);
  if (options_.interleaved_tids) {
    range_next_ = manager_id_ + 1;  // i+1, i+1+n, i+1+2n, ...
  }
}

Status CommitManager::RefillTidRangeLocked() {
  // Acquire a continuous range of tids by bumping the shared counter in the
  // storage system. The store's AtomicIncrement is the LL/SC-protected
  // counter of paper §4.2 ("PNs update the counter using LL/SC operations to
  // ensure that tids are never assigned twice").
  TELL_ASSIGN_OR_RETURN(
      int64_t end, cluster_->AtomicIncrement(state_table_, kTidCounterKey,
                                             options_.tid_range_size));
  range_end_ = static_cast<Tid>(end);
  range_next_ = range_end_ - options_.tid_range_size + 1;
  stats_.tid_range_refills.fetch_add(1, std::memory_order_relaxed);
  return Status::OK();
}

Tid CommitManager::ComputeLavLocked() const {
  // Lav: lowest snapshot base among transactions active here, bounded by
  // what the peers have published.
  Tid lav = snapshot_.base();
  for (const auto& [tid, txn] : active_) lav = std::min(lav, txn.snapshot_base);
  if (has_peer_lav_) lav = std::min(lav, peers_lav_);
  return lav;
}

Result<TxnBegin> CommitManager::Start(uint32_t pn_id) {
  if (!alive()) return Status::Unavailable("commit manager is down");
  std::lock_guard<std::mutex> lock(mutex_);
  TxnBegin begin;
  if (options_.interleaved_tids) {
    begin.tid = range_next_;
    range_next_ += num_managers_;
  } else {
    if (range_next_ > range_end_) {
      TELL_RETURN_NOT_OK(RefillTidRangeLocked());
    }
    begin.tid = range_next_++;
  }
  highest_assigned_ = std::max(highest_assigned_, begin.tid);
  begin.snapshot = snapshot_;
  active_.emplace(begin.tid, ActiveTxn{snapshot_.base(), pn_id});
  begin.lav = ComputeLavLocked();
  stats_.starts.fetch_add(1, std::memory_order_relaxed);
  return begin;
}

Result<TxnBeginDelta> CommitManager::StartDelta(const BeginRequest& request) {
  if (!alive()) return Status::Unavailable("commit manager is down");
  std::lock_guard<std::mutex> lock(mutex_);
  TxnBeginDelta begin;
  auto token_it = request.start_token != 0
                      ? token_tids_.find(request.start_token)
                      : token_tids_.end();
  if (token_it != token_tids_.end()) {
    // Retried begin whose response was lost: hand the same tid back. The
    // snapshot is recomputed fresh — any consistent snapshot is valid at
    // begin — so the active entry's base moves forward with it.
    begin.tid = token_it->second;
    auto active_it = active_.find(begin.tid);
    if (active_it != active_.end()) {
      active_it->second.snapshot_base = snapshot_.base();
    }
  } else {
    if (options_.interleaved_tids) {
      begin.tid = range_next_;
      range_next_ += num_managers_;
    } else {
      if (range_next_ > range_end_) {
        TELL_RETURN_NOT_OK(RefillTidRangeLocked());
      }
      begin.tid = range_next_++;
    }
    highest_assigned_ = std::max(highest_assigned_, begin.tid);
    active_.emplace(begin.tid, ActiveTxn{snapshot_.base(), request.pn_id,
                                         request.start_token});
    if (request.start_token != 0) {
      token_tids_[request.start_token] = begin.tid;
    }
  }
  begin.delta = DeltaSinceLocked(request);
  begin.lav = ComputeLavLocked();
  stats_.starts.fetch_add(1, std::memory_order_relaxed);
  (begin.delta.full ? stats_.full_starts : stats_.delta_starts)
      .fetch_add(1, std::memory_order_relaxed);
  return begin;
}

SnapshotDelta CommitManager::DeltaSinceLocked(
    const BeginRequest& request) const {
  SnapshotDelta delta;
  delta.generation = generation_;
  delta.epoch = epoch_;
  bool resync = request.want_full || request.ack_generation != generation_;
  if (!resync) {
    delta.base = snapshot_.base();
    for (const auto& [tid, epoch] : completed_epoch_) {
      if (epoch > request.ack_epoch) delta.completed.push_back(tid);
    }
    // A delta at least as large as the full descriptor is pointless;
    // 13 + 4 is the full form's envelope + length prefix (WireBytes()).
    resync = delta.WireBytes() >= 13 + 4 + snapshot_.SerializedBytes();
    if (resync) delta.completed.clear();
  }
  if (resync) {
    delta.full = true;
    delta.base = 0;
    delta.snapshot = snapshot_;
  }
  return delta;
}

void CommitManager::PruneCompletedEpochsLocked() {
  completed_epoch_.erase(completed_epoch_.begin(),
                         completed_epoch_.upper_bound(snapshot_.base()));
}

void CommitManager::RecordCompletionLocked(Tid tid) {
  ++epoch_;
  if (tid > snapshot_.base()) completed_epoch_[tid] = epoch_;
  PruneCompletedEpochsLocked();
}

void CommitManager::NoteMergedCompletionsLocked(
    const SnapshotDescriptor& before) {
  if (snapshot_ == before) return;
  ++epoch_;
  Tid highest = snapshot_.HighestCompleted();
  for (Tid tid = snapshot_.base() + 1; tid <= highest; ++tid) {
    if (snapshot_.CanRead(tid) && !before.CanRead(tid)) {
      completed_epoch_[tid] = epoch_;
    }
  }
  PruneCompletedEpochsLocked();
}

std::vector<Tid> CommitManager::AbortActiveOf(uint32_t pn_id) {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<Tid> aborted;
  for (auto it = active_.begin(); it != active_.end();) {
    if (it->second.pn_id == pn_id) {
      aborted.push_back(it->first);
      if (it->second.start_token != 0) {
        token_tids_.erase(it->second.start_token);
      }
      snapshot_.MarkCompleted(it->first);
      RecordCompletionLocked(it->first);
      it = active_.erase(it);
    } else {
      ++it;
    }
  }
  return aborted;
}

Status CommitManager::Complete(Tid tid, bool* newly) {
  if (!alive()) return Status::Unavailable("commit manager is down");
  std::lock_guard<std::mutex> lock(mutex_);
  if (snapshot_.CanRead(tid)) {
    // Duplicate delivery (a finish retried after an ambiguous drop): the
    // first delivery already applied, so this one must not move the epoch
    // or the stats.
    *newly = false;
    return Status::OK();
  }
  auto it = active_.find(tid);
  if (it != active_.end()) {
    if (it->second.start_token != 0) token_tids_.erase(it->second.start_token);
    active_.erase(it);
  }
  snapshot_.MarkCompleted(tid);
  RecordCompletionLocked(tid);
  *newly = true;
  return Status::OK();
}

Status CommitManager::SetCommitted(Tid tid) {
  bool newly = false;
  Status st = Complete(tid, &newly);
  if (st.ok() && newly) stats_.commits.fetch_add(1, std::memory_order_relaxed);
  return st;
}

Status CommitManager::SetAborted(Tid tid) {
  // Aborted transactions also count as completed for snapshot purposes:
  // their updates were reverted, so their version number can never be
  // observed, and the base must be able to advance over them.
  bool newly = false;
  Status st = Complete(tid, &newly);
  if (st.ok() && newly) stats_.aborts.fetch_add(1, std::memory_order_relaxed);
  return st;
}

Result<std::vector<Tid>> CommitManager::LeaseFastTids(uint32_t count) {
  if (!alive()) return Status::Unavailable("commit manager is down");
  if (count == 0) return Status::InvalidArgument("lease count must be > 0");
  std::lock_guard<std::mutex> lock(mutex_);
  if (options_.interleaved_tids) {
    // Interleaved managers never touch the counter, so a counter-leased
    // range would collide with their strided sequences.
    return Status::NotSupported(
        "fast-tid leases require range-based tid assignment");
  }
  // From the SAME sequential stream as Start(), not a separate counter
  // jump: version order within a record is tid order, so correctness needs
  // tid assignment order == begin order across BOTH phases. A counter jump
  // would leave later MVCC Starts with smaller tids from the cached range,
  // burying their (logically newer) writes under the fast version. Leasing
  // from the shared range keeps one monotone stream: any transaction that
  // begins after this lease gets a larger tid, and any earlier-begun
  // transaction that commits later fails its snapshot write check against
  // the fast version first (tid not in its snapshot) and retries with a
  // fresh, larger tid.
  std::vector<Tid> tids;
  tids.reserve(count);
  for (uint32_t i = 0; i < count; ++i) {
    if (range_next_ > range_end_) {
      Status refill = RefillTidRangeLocked();
      if (!refill.ok()) {
        // The tids drawn so far were consumed from the range but will never
        // be handed out: mark them completed here, or they would pin the
        // snapshot base and the GC horizon forever.
        for (Tid tid : tids) {
          snapshot_.MarkCompleted(tid);
          RecordCompletionLocked(tid);
        }
        if (!tids.empty()) {
          highest_assigned_ = std::max(highest_assigned_, tids.back());
        }
        return refill;
      }
    }
    tids.push_back(range_next_++);
  }
  highest_assigned_ = std::max(highest_assigned_, tids.back());
  return tids;
}

Status CommitManager::CompleteFast(const std::vector<Tid>& tids) {
  if (!alive()) return Status::Unavailable("commit manager is down");
  std::lock_guard<std::mutex> lock(mutex_);
  for (Tid tid : tids) {
    if (snapshot_.CanRead(tid)) continue;  // duplicate delivery
    snapshot_.MarkCompleted(tid);
    RecordCompletionLocked(tid);
  }
  return Status::OK();
}

Tid CommitManager::Lav() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return ComputeLavLocked();
}

SnapshotDescriptor CommitManager::CurrentSnapshot() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return snapshot_;
}

Tid CommitManager::HighestAssignedTid() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return highest_assigned_;
}

std::string CommitManager::SerializeStateLocked() const {
  Tid lav = snapshot_.base();
  for (const auto& [tid, txn] : active_) lav = std::min(lav, txn.snapshot_base);
  BufferWriter writer;
  writer.PutU64(lav);
  writer.PutString(snapshot_.Serialize());
  return writer.Release();
}

size_t CommitManager::StateBlobBytes() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return SerializeStateLocked().size();
}

Status CommitManager::SyncWithPeers(uint32_t num_peers) {
  if (!alive()) return Status::Unavailable("commit manager is down");
  std::lock_guard<std::mutex> lock(mutex_);
  // 1. Publish our own state.
  auto put = cluster_->Put(state_table_, StateKey(manager_id_),
                           SerializeStateLocked());
  TELL_RETURN_NOT_OK(put.status());
  // 2. Read and merge every peer's most recent state.
  Tid min_peer_lav = 0;
  bool saw_peer = false;
  SnapshotDescriptor before_merge = snapshot_;
  for (uint32_t peer = 0; peer < num_peers; ++peer) {
    if (peer == manager_id_) continue;
    auto cell = cluster_->Get(state_table_, StateKey(peer));
    if (cell.status().IsNotFound()) continue;  // peer has not published yet
    TELL_RETURN_NOT_OK(cell.status());
    BufferReader reader(cell->value);
    TELL_ASSIGN_OR_RETURN(Tid peer_lav, reader.GetU64());
    TELL_ASSIGN_OR_RETURN(std::string_view blob, reader.GetString());
    TELL_ASSIGN_OR_RETURN(SnapshotDescriptor peer_snapshot,
                          SnapshotDescriptor::Deserialize(blob));
    snapshot_.MergeFrom(peer_snapshot);
    min_peer_lav = saw_peer ? std::min(min_peer_lav, peer_lav) : peer_lav;
    saw_peer = true;
  }
  NoteMergedCompletionsLocked(before_merge);
  if (saw_peer) {
    peers_lav_ = min_peer_lav;
    has_peer_lav_ = true;
  }
  stats_.syncs.fetch_add(1, std::memory_order_relaxed);
  return Status::OK();
}

Status CommitManager::RecoverFromStore(uint32_t num_peers) {
  std::lock_guard<std::mutex> lock(mutex_);
  // Last used tid: read the shared counter. Our replacement range starts
  // fresh, so nothing of the failed instance's unassigned range is reused —
  // the snapshot simply never advances into it, which is safe (those tids
  // will never be observed).
  active_.clear();
  range_next_ = 1;
  range_end_ = 0;
  // Merge whatever the peers (or our own previous incarnation) published.
  for (uint32_t peer = 0; peer < num_peers; ++peer) {
    auto cell = cluster_->Get(state_table_, StateKey(peer));
    if (!cell.ok()) continue;
    BufferReader reader(cell->value);
    auto peer_lav = reader.GetU64();
    if (!peer_lav.ok()) continue;
    auto blob = reader.GetString();
    if (!blob.ok()) continue;
    auto peer_snapshot = SnapshotDescriptor::Deserialize(*blob);
    if (!peer_snapshot.ok()) continue;
    snapshot_.MergeFrom(*peer_snapshot);
  }
  auto counter = cluster_->Get(state_table_, kTidCounterKey);
  if (counter.ok() && counter->value.size() == sizeof(int64_t)) {
    int64_t value;
    std::memcpy(&value, counter->value.data(), sizeof(value));
    highest_assigned_ = static_cast<Tid>(value);
  }
  // New incarnation: client-acked epochs of the previous incarnation are
  // meaningless against the rebuilt state, so force every cached client
  // through a full resync and rebuild the epoch map from the descriptor.
  ++generation_;
  ++epoch_;
  token_tids_.clear();
  completed_epoch_.clear();
  Tid highest = snapshot_.HighestCompleted();
  for (Tid tid = snapshot_.base() + 1; tid <= highest; ++tid) {
    if (snapshot_.CanRead(tid)) completed_epoch_[tid] = epoch_;
  }
  return Status::OK();
}

std::pair<uint32_t, uint64_t> CommitManager::SyncState() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return {generation_, epoch_};
}

// ---------------------------------------------------------------------------
// CommitManagerGroup

CommitManagerGroup::CommitManagerGroup(store::Cluster* cluster,
                                       uint32_t num_managers,
                                       const CommitManagerOptions& options,
                                       double sync_interval_ms)
    : cluster_(cluster), sync_interval_ms_(sync_interval_ms) {
  TELL_CHECK(num_managers >= 1);
  auto table = cluster_->CreateTable("__commit_manager_state");
  TELL_CHECK(table.ok());
  state_table_ = *table;
  managers_.reserve(num_managers);
  for (uint32_t i = 0; i < num_managers; ++i) {
    managers_.push_back(std::make_unique<CommitManager>(
        i, cluster_, state_table_, options, num_managers));
  }
  if (num_managers > 1 && sync_interval_ms_ > 0) {
    sync_thread_ = std::thread([this] { SyncLoop(); });
  }
}

CommitManagerGroup::~CommitManagerGroup() {
  stop_.store(true, std::memory_order_release);
  if (sync_thread_.joinable()) sync_thread_.join();
}

CommitManager* CommitManagerGroup::ManagerFor(uint32_t worker_id) {
  uint32_t n = size();
  for (uint32_t probe = 0; probe < n; ++probe) {
    CommitManager* manager = managers_[(worker_id + probe) % n].get();
    if (manager->alive()) return manager;
  }
  return nullptr;  // all managers down; the system is blocked (§4.4.3)
}

Status CommitManagerGroup::SyncAll() {
  for (auto& manager : managers_) {
    if (!manager->alive()) continue;
    TELL_RETURN_NOT_OK(manager->SyncWithPeers(size()));
  }
  return Status::OK();
}

Tid CommitManagerGroup::GlobalLav() const {
  Tid lav = 0;
  bool first = true;
  for (const auto& manager : managers_) {
    if (!manager->alive()) continue;
    Tid manager_lav = manager->Lav();
    lav = first ? manager_lav : std::min(lav, manager_lav);
    first = false;
  }
  return lav;
}

void CommitManagerGroup::SyncLoop() {
  while (!stop_.load(std::memory_order_acquire)) {
    Status st = SyncAll();
    if (!st.ok()) {
      TELL_LOG(kWarn) << "commit manager sync failed: " << st.ToString();
    }
    std::this_thread::sleep_for(
        std::chrono::microseconds(static_cast<int64_t>(sync_interval_ms_ * 1000)));
  }
}

}  // namespace tell::commitmgr
