#ifndef TELL_COMMITMGR_SNAPSHOT_DESCRIPTOR_H_
#define TELL_COMMITMGR_SNAPSHOT_DESCRIPTOR_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/bitset.h"
#include "common/result.h"
#include "common/status.h"

namespace tell::commitmgr {

struct SnapshotDelta;

/// Transaction id; doubles as the version number of data items the
/// transaction writes (paper §4.2: "tids and version numbers are synonyms").
using Tid = uint64_t;

/// Snapshot descriptor (paper §4.2): a base version number `b` meaning every
/// transaction with tid <= b has completed, plus a bitset N of completed
/// tids above b (bit i represents tid b+1+i). The valid version set a
/// transaction may read is V' = { x | x <= b  or  x in N }.
///
/// "Completed" covers commits *and* aborts: an aborted transaction's updates
/// were rolled back, so exposing its tid as readable is harmless, and base
/// could never advance otherwise.
class SnapshotDescriptor {
 public:
  SnapshotDescriptor() = default;
  explicit SnapshotDescriptor(Tid base) : base_(base) {}

  Tid base() const { return base_; }

  /// True if a version with number `tid` is visible in this snapshot.
  bool CanRead(Tid tid) const {
    if (tid <= base_) return true;
    return completed_.Test(static_cast<size_t>(tid - base_ - 1));
  }

  /// Marks `tid` completed and advances the base across any now-contiguous
  /// prefix of completed tids.
  void MarkCompleted(Tid tid);

  /// Largest tid marked completed (>= base).
  Tid HighestCompleted() const;

  /// Number of completed tids recorded above the base.
  size_t CompletedAboveBase() const { return completed_.Count(); }

  /// Size in bytes of the bitset part (the paper sizes N at ~13 KB for
  /// 100,000 newly committed transactions).
  size_t BitsetBytes() const { return completed_.ByteSize(); }

  /// Incorporates everything the other snapshot knows: the base becomes the
  /// max of both (a base is a sound global claim — every tid below it has
  /// completed) and the completed sets are unioned. Used by commit managers
  /// to merge peer state (paper §4.2, multi-manager synchronization).
  void MergeFrom(const SnapshotDescriptor& other);

  /// True if every tid readable in this snapshot is also readable in
  /// `super`. Used by the shared record buffers (paper §5.5.2: the buffered
  /// entry can serve a transaction whose version set is a subset of the
  /// entry's version set, V_tx ⊆ B).
  bool IsSubsetOf(const SnapshotDescriptor& super) const;

  /// Applies a delta received from a commit manager: replaces the whole
  /// descriptor for a full resync, otherwise merges the base advance and
  /// marks the newly completed tids. Exact — not merely an approximation —
  /// under the delta protocol's invariant: the caller holds the manager's
  /// descriptor as of the acknowledged epoch, and the delta lists every
  /// above-base completion recorded after that epoch.
  void ApplyDelta(const SnapshotDelta& delta);

  /// Wire format: base, bit count, words.
  std::string Serialize() const;
  static Result<SnapshotDescriptor> Deserialize(std::string_view data);

  /// Size of Serialize()'s output without building the string (cost model).
  size_t SerializedBytes() const { return 16 + completed_.ByteSize(); }

  bool operator==(const SnapshotDescriptor& other) const {
    return base_ == other.base_ && completed_ == other.completed_;
  }

 private:
  void AdvanceBase();

  Tid base_ = 0;
  DenseBitset completed_;
};

/// Incremental snapshot update (DESIGN.md, "Snapshot delta sync & group
/// begin/commit"): either the full descriptor — first contact, manager
/// generation change, or when a delta would not be smaller — or the
/// manager's current base plus the tids completed since the client's
/// acknowledged epoch that are still above that base. Completed tids are
/// encoded as 32-bit offsets from the base; the completed window is bounded
/// by the bitset the paper sizes at ~13 KB (§4.2), far below 2^32.
struct SnapshotDelta {
  /// Manager incarnation. A mismatch with the client's cached generation
  /// means the epoch counters are not comparable, so the manager answers
  /// with `full` instead.
  uint32_t generation = 0;
  /// Manager epoch this delta brings the client up to (the next ack).
  uint64_t epoch = 0;
  bool full = false;
  /// Delta form: the manager's current base.
  Tid base = 0;
  /// Delta form: completed tids above `base` recorded after the ack epoch.
  std::vector<Tid> completed;
  /// Full form: the whole descriptor.
  SnapshotDescriptor snapshot;

  /// Size of Serialize()'s output without building the string (cost model).
  size_t WireBytes() const;
  std::string Serialize() const;
  static Result<SnapshotDelta> Deserialize(std::string_view data);

  bool operator==(const SnapshotDelta& other) const {
    return generation == other.generation && epoch == other.epoch &&
           full == other.full && base == other.base &&
           completed == other.completed && snapshot == other.snapshot;
  }
};

}  // namespace tell::commitmgr

#endif  // TELL_COMMITMGR_SNAPSHOT_DESCRIPTOR_H_
