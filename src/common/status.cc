#include "common/status.h"

namespace tell {

std::string_view StatusCodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kNotFound:
      return "NotFound";
    case StatusCode::kConditionFailed:
      return "ConditionFailed";
    case StatusCode::kAborted:
      return "Aborted";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kUnavailable:
      return "Unavailable";
    case StatusCode::kAlreadyExists:
      return "AlreadyExists";
    case StatusCode::kCorruption:
      return "Corruption";
    case StatusCode::kCapacityExceeded:
      return "CapacityExceeded";
    case StatusCode::kInternalError:
      return "InternalError";
    case StatusCode::kNotSupported:
      return "NotSupported";
    case StatusCode::kCrossPartition:
      return "CrossPartition";
  }
  return "Unknown";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out(StatusCodeName(code_));
  if (!message_.empty()) {
    out += ": ";
    out += message_;
  }
  return out;
}

}  // namespace tell
