#ifndef TELL_COMMON_RESULT_H_
#define TELL_COMMON_RESULT_H_

#include <cassert>
#include <utility>
#include <variant>

#include "common/status.h"

namespace tell {

/// Holds either a value of type T or a non-OK Status. Mirrors
/// arrow::Result<T>: construct from a value for success, from a Status for
/// failure.
template <typename T>
class Result {
 public:
  /// Implicit so `return value;` and `return status;` both work, matching
  /// the Arrow idiom.
  Result(T value) : payload_(std::move(value)) {}  // NOLINT
  Result(Status status) : payload_(std::move(status)) {  // NOLINT
    assert(!std::get<Status>(payload_).ok() &&
           "Result constructed from OK status without a value");
  }

  Result(const Result&) = default;
  Result& operator=(const Result&) = default;
  Result(Result&&) = default;
  Result& operator=(Result&&) = default;

  bool ok() const { return std::holds_alternative<T>(payload_); }

  Status status() const {
    if (ok()) return Status::OK();
    return std::get<Status>(payload_);
  }

  const T& value() const& {
    assert(ok());
    return std::get<T>(payload_);
  }
  T& value() & {
    assert(ok());
    return std::get<T>(payload_);
  }
  T&& value() && {
    assert(ok());
    return std::get<T>(std::move(payload_));
  }

  /// Returns the value or `fallback` if this holds an error.
  T ValueOr(T fallback) const {
    if (ok()) return std::get<T>(payload_);
    return fallback;
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  std::variant<Status, T> payload_;
};

}  // namespace tell

/// Assigns the value of a Result expression to `lhs`, or returns its status.
#define TELL_ASSIGN_OR_RETURN_IMPL(tmp, lhs, expr) \
  auto tmp = (expr);                               \
  if (!tmp.ok()) return tmp.status();              \
  lhs = std::move(tmp).value()

#define TELL_ASSIGN_OR_RETURN_CONCAT_(a, b) a##b
#define TELL_ASSIGN_OR_RETURN_CONCAT(a, b) TELL_ASSIGN_OR_RETURN_CONCAT_(a, b)

#define TELL_ASSIGN_OR_RETURN(lhs, expr) \
  TELL_ASSIGN_OR_RETURN_IMPL(            \
      TELL_ASSIGN_OR_RETURN_CONCAT(_result_tmp_, __LINE__), lhs, expr)

#endif  // TELL_COMMON_RESULT_H_
