#ifndef TELL_COMMON_SPINLOCK_H_
#define TELL_COMMON_SPINLOCK_H_

#include <atomic>

namespace tell {

/// Tiny test-and-test-and-set spinlock for very short critical sections
/// (per-cell stamp checks in the store). Satisfies the Lockable concept so
/// std::lock_guard works.
class SpinLock {
 public:
  SpinLock() = default;
  SpinLock(const SpinLock&) = delete;
  SpinLock& operator=(const SpinLock&) = delete;

  void lock() {
    while (flag_.exchange(true, std::memory_order_acquire)) {
      while (flag_.load(std::memory_order_relaxed)) {
#if defined(__x86_64__) || defined(__i386__)
        __builtin_ia32_pause();
#endif
      }
    }
  }

  bool try_lock() {
    return !flag_.exchange(true, std::memory_order_acquire);
  }

  void unlock() { flag_.store(false, std::memory_order_release); }

 private:
  std::atomic<bool> flag_{false};
};

}  // namespace tell

#endif  // TELL_COMMON_SPINLOCK_H_
