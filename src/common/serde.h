#ifndef TELL_COMMON_SERDE_H_
#define TELL_COMMON_SERDE_H_

#include <cstdint>
#include <cstring>
#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"
#include "common/status.h"

namespace tell {

/// Append-only little-endian binary writer. All wire formats in the store
/// (versioned records, B+tree nodes, log entries, snapshots) are built with
/// this.
class BufferWriter {
 public:
  BufferWriter() = default;

  void PutU8(uint8_t v) { buffer_.push_back(static_cast<char>(v)); }

  void PutU32(uint32_t v) { PutFixed(&v, sizeof(v)); }
  void PutU64(uint64_t v) { PutFixed(&v, sizeof(v)); }
  void PutI32(int32_t v) { PutFixed(&v, sizeof(v)); }
  void PutI64(int64_t v) { PutFixed(&v, sizeof(v)); }
  void PutDouble(double v) { PutFixed(&v, sizeof(v)); }

  /// Length-prefixed (u32) byte string.
  void PutString(std::string_view s) {
    PutU32(static_cast<uint32_t>(s.size()));
    buffer_.append(s.data(), s.size());
  }

  /// Raw bytes, no length prefix.
  void PutRaw(std::string_view s) { buffer_.append(s.data(), s.size()); }

  const std::string& data() const { return buffer_; }
  std::string Release() { return std::move(buffer_); }
  size_t size() const { return buffer_.size(); }

 private:
  void PutFixed(const void* p, size_t n) {
    buffer_.append(reinterpret_cast<const char*>(p), n);
  }

  std::string buffer_;
};

/// Bounds-checked reader over a byte string produced by BufferWriter.
class BufferReader {
 public:
  explicit BufferReader(std::string_view data) : data_(data) {}

  Result<uint8_t> GetU8() {
    if (pos_ + 1 > data_.size()) return TruncatedError();
    return static_cast<uint8_t>(data_[pos_++]);
  }

  Result<uint32_t> GetU32() { return GetFixed<uint32_t>(); }
  Result<uint64_t> GetU64() { return GetFixed<uint64_t>(); }
  Result<int32_t> GetI32() { return GetFixed<int32_t>(); }
  Result<int64_t> GetI64() { return GetFixed<int64_t>(); }
  Result<double> GetDouble() { return GetFixed<double>(); }

  Result<std::string_view> GetString() {
    auto len = GetU32();
    if (!len.ok()) return len.status();
    if (pos_ + *len > data_.size()) return TruncatedError();
    std::string_view out = data_.substr(pos_, *len);
    pos_ += *len;
    return out;
  }

  Result<std::string_view> GetRaw(size_t n) {
    if (pos_ + n > data_.size()) return TruncatedError();
    std::string_view out = data_.substr(pos_, n);
    pos_ += n;
    return out;
  }

  bool AtEnd() const { return pos_ == data_.size(); }
  size_t remaining() const { return data_.size() - pos_; }
  size_t position() const { return pos_; }

 private:
  template <typename T>
  Result<T> GetFixed() {
    if (pos_ + sizeof(T) > data_.size()) return TruncatedError();
    T v;
    std::memcpy(&v, data_.data() + pos_, sizeof(T));
    pos_ += sizeof(T);
    return v;
  }

  static Status TruncatedError() {
    return Status::Corruption("buffer truncated during deserialization");
  }

  std::string_view data_;
  size_t pos_ = 0;
};

/// Order-preserving big-endian encoding of a u64, so that byte-wise key
/// comparison matches numeric comparison. Used for rids and index keys in
/// the range-partitioned store.
inline std::string EncodeOrderedU64(uint64_t v) {
  std::string out(8, '\0');
  for (int i = 7; i >= 0; --i) {
    out[static_cast<size_t>(i)] = static_cast<char>(v & 0xFF);
    v >>= 8;
  }
  return out;
}

inline uint64_t DecodeOrderedU64(std::string_view s) {
  uint64_t v = 0;
  for (size_t i = 0; i < 8 && i < s.size(); ++i) {
    v = (v << 8) | static_cast<uint8_t>(s[i]);
  }
  return v;
}

/// Order-preserving encoding of a signed 64-bit integer (flips the sign bit).
inline std::string EncodeOrderedI64(int64_t v) {
  return EncodeOrderedU64(static_cast<uint64_t>(v) ^ (uint64_t{1} << 63));
}

inline int64_t DecodeOrderedI64(std::string_view s) {
  return static_cast<int64_t>(DecodeOrderedU64(s) ^ (uint64_t{1} << 63));
}

}  // namespace tell

#endif  // TELL_COMMON_SERDE_H_
