#ifndef TELL_COMMON_EXEC_HOOKS_H_
#define TELL_COMMON_EXEC_HOOKS_H_

namespace tell::exec_hooks {

/// Low-level bridge between the common layer and the executor runtime
/// (src/exec), kept in common so `Future::Await` and the commit-manager
/// client can park without depending on the exec library.
///
/// An executor worker thread installs a yield hook for the duration of its
/// scheduling loop; task code that is about to wait on something modelled
/// as a round trip (a pipeline flush, a commit-manager begin) calls
/// MaybeYield() first. Inside an executor task that suspends the task's
/// fiber — the core runs other tasks and the caller resumes later, exactly
/// where it yielded. Outside the executor (the legacy thread-per-worker
/// drivers, every existing test) the hook is null and MaybeYield is a
/// no-op, so legacy behaviour and determinism are untouched.
using YieldFn = void (*)(void* arg);

struct TaskHook {
  YieldFn yield = nullptr;
  void* arg = nullptr;
};

/// Per-OS-thread hook. Only exec::Runtime writes this (on its own worker
/// threads); everything else just reads it through MaybeYield().
inline thread_local TaskHook g_task_hook;

/// True when the calling thread is an executor worker running a task.
inline bool InTask() { return g_task_hook.yield != nullptr; }

/// Park point: yields the current task's fiber back to its scheduler when
/// running under the executor; no-op otherwise. Never touches virtual
/// clocks — yielding is free in virtual time by design (RUNTIME.md,
/// "Determinism contract").
inline void MaybeYield() {
  if (g_task_hook.yield != nullptr) g_task_hook.yield(g_task_hook.arg);
}

}  // namespace tell::exec_hooks

#endif  // TELL_COMMON_EXEC_HOOKS_H_
