#ifndef TELL_COMMON_FUTURE_H_
#define TELL_COMMON_FUTURE_H_

#include <memory>
#include <optional>
#include <utility>

#include "common/logging.h"
#include "common/result.h"

namespace tell {

/// The completion side of the asynchronous storage pipeline: whoever hands
/// out unresolved futures implements Flush() to coalesce and issue every
/// outstanding request, resolving the futures as a side effect
/// (store::StorageClient is the in-tree implementation).
class PipelineFlusher {
 public:
  virtual ~PipelineFlusher() = default;
  virtual void Flush() = 0;
};

namespace internal {

/// Shared slot between a pending request and the Future handed to the
/// caller. Single-threaded by design — a future never crosses workers, just
/// like the StorageClient that produced it — so there is no lock.
template <typename T>
struct FutureState {
  std::optional<Result<T>> value;
  /// Joining an unresolved future flushes this pipeline first. Not owned.
  PipelineFlusher* flusher = nullptr;
};

}  // namespace internal

/// A lightweight single-threaded future over Result<T>.
///
/// Futures are how the async StorageClient paths return: the value is not
/// produced until the pipeline flushes, either explicitly (Flush()) or
/// implicitly when any future from the pipeline is joined with Await().
/// There are no callbacks and no threads — resolution happens synchronously
/// inside Flush(), which also charges the worker's virtual clock the cost of
/// the coalesced messages.
template <typename T>
class Future {
 public:
  Future() = default;
  explicit Future(std::shared_ptr<internal::FutureState<T>> state)
      : state_(std::move(state)) {}

  bool valid() const { return state_ != nullptr; }
  /// True once the pipeline has resolved this request (no flush triggered).
  bool ready() const { return state_ != nullptr && state_->value.has_value(); }

  /// Joins: flushes the owning pipeline if this request is still pending,
  /// then returns the result. Call at most once per future (the value is
  /// moved out).
  Result<T> Await() {
    TELL_CHECK(state_ != nullptr);
    if (!state_->value.has_value() && state_->flusher != nullptr) {
      state_->flusher->Flush();
    }
    TELL_CHECK(state_->value.has_value());
    return std::move(*state_->value);
  }

 private:
  std::shared_ptr<internal::FutureState<T>> state_;
};

/// Producer-side handle; mainly useful for tests and for pipelines that
/// resolve out of line. StorageClient manipulates FutureState directly.
template <typename T>
class Promise {
 public:
  Promise() : state_(std::make_shared<internal::FutureState<T>>()) {}

  Future<T> future(PipelineFlusher* flusher = nullptr) {
    state_->flusher = flusher;
    return Future<T>(state_);
  }

  bool resolved() const { return state_->value.has_value(); }
  void Set(Result<T> value) { state_->value.emplace(std::move(value)); }

  std::shared_ptr<internal::FutureState<T>> state() { return state_; }

 private:
  std::shared_ptr<internal::FutureState<T>> state_;
};

}  // namespace tell

#endif  // TELL_COMMON_FUTURE_H_
