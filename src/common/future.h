#ifndef TELL_COMMON_FUTURE_H_
#define TELL_COMMON_FUTURE_H_

#include <functional>
#include <memory>
#include <optional>
#include <utility>
#include <vector>

#include "common/exec_hooks.h"
#include "common/logging.h"
#include "common/result.h"

namespace tell {

/// The completion side of the asynchronous storage pipeline: whoever hands
/// out unresolved futures implements Flush() to coalesce and issue every
/// outstanding request, resolving the futures as a side effect
/// (store::StorageClient is the in-tree implementation).
class PipelineFlusher {
 public:
  virtual ~PipelineFlusher() = default;
  virtual void Flush() = 0;
};

namespace internal {

/// Shared slot between a pending request and the Future handed to the
/// caller. Single-owner by design — a future never crosses workers, just
/// like the StorageClient that produced it — so there is no lock. (Under
/// the executor runtime the owning task may migrate between executor
/// threads, but it is never resumed on two threads at once; the scheduler
/// provides the happens-before edge. See docs/RUNTIME.md.)
template <typename T>
struct FutureState {
  std::optional<Result<T>> value;
  /// Joining an unresolved future flushes this pipeline first. Not owned.
  PipelineFlusher* flusher = nullptr;
  /// Continuations registered through Future::Then, fired in registration
  /// order by Resolve (or inline when registered on an already-resolved
  /// state).
  std::vector<std::function<void(const Result<T>&)>> continuations;

  /// The one way a value lands in the slot: emplaces it and fires the
  /// continuations in registration order. A continuation that registers
  /// another continuation sees it run inline (the state is resolved by
  /// then), preserving overall registration order.
  void Resolve(Result<T> v) {
    TELL_CHECK(!value.has_value());
    value.emplace(std::move(v));
    std::vector<std::function<void(const Result<T>&)>> fire;
    fire.swap(continuations);
    for (auto& fn : fire) fn(*value);
  }
};

}  // namespace internal

/// A lightweight single-owner future over Result<T>.
///
/// Futures are how the async StorageClient paths return: the value is not
/// produced until the pipeline flushes, either explicitly (Flush()) or
/// implicitly when any future from the pipeline is joined with Await().
/// Resolution happens synchronously inside Flush(), which also charges the
/// worker's virtual clock the cost of the coalesced messages.
///
/// Under the exec::Runtime executor, Await() on an unready future is a
/// park point: the task yields its core first (other in-flight transactions
/// run), then performs the flush when rescheduled. Outside the executor the
/// yield hook is null and Await blocks synchronously, exactly as before.
template <typename T>
class Future {
 public:
  Future() = default;
  explicit Future(std::shared_ptr<internal::FutureState<T>> state)
      : state_(std::move(state)) {}

  bool valid() const { return state_ != nullptr; }
  /// True once the pipeline has resolved this request (no flush triggered).
  bool ready() const { return state_ != nullptr && state_->value.has_value(); }

  /// Registers a continuation observing the resolved value. On a pending
  /// future it fires inside the resolving Flush(), before Await returns;
  /// on an already-resolved future it fires inline, immediately.
  /// Continuations observe (const ref) — Await still moves the value out.
  /// Ordering is registration order in both cases.
  Future<T>& Then(std::function<void(const Result<T>&)> fn) {
    TELL_CHECK(state_ != nullptr);
    if (state_->value.has_value()) {
      fn(*state_->value);
    } else {
      state_->continuations.push_back(std::move(fn));
    }
    return *this;
  }

  /// Joins: parks (executor) then flushes the owning pipeline if this
  /// request is still pending, then returns the result. Call at most once
  /// per future (the value is moved out).
  Result<T> Await() {
    TELL_CHECK(state_ != nullptr);
    if (!state_->value.has_value() && state_->flusher != nullptr) {
      // Park point: under the executor, give up the core before paying the
      // flush — the runtime resumes us (possibly on another core) and the
      // flush happens then. The re-check covers a pipeline flushed by
      // another future's Await while we were parked.
      exec_hooks::MaybeYield();
      if (!state_->value.has_value()) {
        state_->flusher->Flush();
      }
    }
    TELL_CHECK(state_->value.has_value());
    return std::move(*state_->value);
  }

 private:
  std::shared_ptr<internal::FutureState<T>> state_;
};

/// Producer-side handle; mainly useful for tests and for pipelines that
/// resolve out of line. StorageClient resolves FutureState directly (via
/// FutureState::Resolve, so Then continuations fire there too).
template <typename T>
class Promise {
 public:
  Promise() : state_(std::make_shared<internal::FutureState<T>>()) {}

  Future<T> future(PipelineFlusher* flusher = nullptr) {
    state_->flusher = flusher;
    return Future<T>(state_);
  }

  bool resolved() const { return state_->value.has_value(); }
  void Set(Result<T> value) { state_->Resolve(std::move(value)); }

  std::shared_ptr<internal::FutureState<T>> state() { return state_; }

 private:
  std::shared_ptr<internal::FutureState<T>> state_;
};

}  // namespace tell

#endif  // TELL_COMMON_FUTURE_H_
