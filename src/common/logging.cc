#include "common/logging.h"

#include <atomic>
#include <cstdio>
#include <mutex>

namespace tell {
namespace {

std::atomic<int> g_log_level{static_cast<int>(LogLevel::kWarn)};

std::mutex& LogMutex() {
  static std::mutex* mu = new std::mutex();
  return *mu;
}

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarn:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
  }
  return "?";
}

void Emit(LogLevel level, const std::string& text) {
  std::lock_guard<std::mutex> lock(LogMutex());
  std::fprintf(stderr, "[%s] %s\n", LevelName(level), text.c_str());
  std::fflush(stderr);
}

}  // namespace

void SetLogLevel(LogLevel level) {
  g_log_level.store(static_cast<int>(level), std::memory_order_relaxed);
}

LogLevel GetLogLevel() {
  return static_cast<LogLevel>(g_log_level.load(std::memory_order_relaxed));
}

namespace internal {

LogMessage::LogMessage(LogLevel level, const char* file, int line)
    : level_(level) {
  stream_ << file << ":" << line << " ";
}

LogMessage::~LogMessage() { Emit(level_, stream_.str()); }

FatalLogMessage::FatalLogMessage(const char* file, int line,
                                 const char* condition) {
  stream_ << file << ":" << line << " CHECK failed: " << condition << " ";
}

FatalLogMessage::~FatalLogMessage() {
  Emit(LogLevel::kError, stream_.str());
  std::abort();
}

}  // namespace internal
}  // namespace tell
