#ifndef TELL_COMMON_LOGGING_H_
#define TELL_COMMON_LOGGING_H_

#include <cstdlib>
#include <sstream>
#include <string>

namespace tell {

enum class LogLevel : int { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3 };

/// Global minimum level; messages below it are dropped. Default kWarn so
/// tests and benchmarks stay quiet.
void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();

namespace internal {

/// Builds one log line and emits it (thread-safely) on destruction.
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();

  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  template <typename T>
  LogMessage& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

/// Emits the message then aborts the process. Used by TELL_CHECK.
class FatalLogMessage {
 public:
  FatalLogMessage(const char* file, int line, const char* condition);
  [[noreturn]] ~FatalLogMessage();

  FatalLogMessage(const FatalLogMessage&) = delete;
  FatalLogMessage& operator=(const FatalLogMessage&) = delete;

  template <typename T>
  FatalLogMessage& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  std::ostringstream stream_;
};

}  // namespace internal
}  // namespace tell

#define TELL_LOG(level)                                        \
  if (::tell::LogLevel::level < ::tell::GetLogLevel()) {       \
  } else                                                       \
    ::tell::internal::LogMessage(::tell::LogLevel::level, __FILE__, __LINE__)

/// Fatal invariant check: active in all build types (database invariants
/// must not silently disappear in release builds).
#define TELL_CHECK(condition)                                           \
  if (condition) {                                                      \
  } else                                                                \
    ::tell::internal::FatalLogMessage(__FILE__, __LINE__, #condition)

/// Debug-only check.
#ifdef NDEBUG
#define TELL_DCHECK(condition) TELL_CHECK(true || (condition))
#else
#define TELL_DCHECK(condition) TELL_CHECK(condition)
#endif

#endif  // TELL_COMMON_LOGGING_H_
