#ifndef TELL_COMMON_STATUS_H_
#define TELL_COMMON_STATUS_H_

#include <string>
#include <string_view>
#include <utility>

namespace tell {

/// Outcome codes used across the system. Following the RocksDB/Arrow idiom,
/// all fallible operations return a Status (or Result<T>) instead of throwing.
enum class StatusCode : int {
  kOk = 0,
  /// Key / record / table does not exist.
  kNotFound = 1,
  /// A store-conditional (LL/SC) failed because the cell changed. This is the
  /// signal for a write-write conflict under snapshot isolation.
  kConditionFailed = 2,
  /// A transaction was aborted (conflict or user abort).
  kAborted = 3,
  /// Caller passed something malformed.
  kInvalidArgument = 4,
  /// The target node/service is down or unreachable.
  kUnavailable = 5,
  /// Uniqueness violation (e.g. duplicate primary key or index entry).
  kAlreadyExists = 6,
  /// Stored bytes failed to deserialize.
  kCorruption = 7,
  /// Storage node ran out of configured memory capacity.
  kCapacityExceeded = 8,
  /// Invariant violation inside the system; indicates a bug.
  kInternalError = 9,
  /// Operation not supported by this engine/configuration.
  kNotSupported = 10,
  /// A fast-path transaction touched data outside its declared home
  /// partition. Not a failure: the caller must re-run the transaction on
  /// the general MVCC path (DESIGN.md "Phase-switching fast path").
  kCrossPartition = 11,
};

/// A lightweight success/error value. Ok status carries no allocation.
class Status {
 public:
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  Status(const Status&) = default;
  Status& operator=(const Status&) = default;
  Status(Status&&) = default;
  Status& operator=(Status&&) = default;

  static Status OK() { return Status(); }
  static Status NotFound(std::string msg = "not found") {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status ConditionFailed(std::string msg = "condition failed") {
    return Status(StatusCode::kConditionFailed, std::move(msg));
  }
  static Status Aborted(std::string msg = "transaction aborted") {
    return Status(StatusCode::kAborted, std::move(msg));
  }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status Unavailable(std::string msg) {
    return Status(StatusCode::kUnavailable, std::move(msg));
  }
  static Status AlreadyExists(std::string msg = "already exists") {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status Corruption(std::string msg) {
    return Status(StatusCode::kCorruption, std::move(msg));
  }
  static Status CapacityExceeded(std::string msg) {
    return Status(StatusCode::kCapacityExceeded, std::move(msg));
  }
  static Status InternalError(std::string msg) {
    return Status(StatusCode::kInternalError, std::move(msg));
  }
  static Status NotSupported(std::string msg) {
    return Status(StatusCode::kNotSupported, std::move(msg));
  }
  static Status CrossPartition(std::string msg = "crosses home partition") {
    return Status(StatusCode::kCrossPartition, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  bool IsNotFound() const { return code_ == StatusCode::kNotFound; }
  bool IsConditionFailed() const {
    return code_ == StatusCode::kConditionFailed;
  }
  bool IsAborted() const { return code_ == StatusCode::kAborted; }
  bool IsUnavailable() const { return code_ == StatusCode::kUnavailable; }
  bool IsAlreadyExists() const { return code_ == StatusCode::kAlreadyExists; }
  bool IsCapacityExceeded() const {
    return code_ == StatusCode::kCapacityExceeded;
  }
  bool IsCrossPartition() const {
    return code_ == StatusCode::kCrossPartition;
  }

  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// "OK" or "<CodeName>: <message>".
  std::string ToString() const;

  bool operator==(const Status& other) const { return code_ == other.code_; }

 private:
  StatusCode code_;
  std::string message_;
};

/// Name of a status code, e.g. "NotFound".
std::string_view StatusCodeName(StatusCode code);

}  // namespace tell

/// Evaluates `expr` (a Status expression) and returns it from the enclosing
/// function if it is not OK.
#define TELL_RETURN_NOT_OK(expr)                 \
  do {                                           \
    ::tell::Status _st = (expr);                 \
    if (!_st.ok()) return _st;                   \
  } while (false)

#endif  // TELL_COMMON_STATUS_H_
