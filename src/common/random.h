#ifndef TELL_COMMON_RANDOM_H_
#define TELL_COMMON_RANDOM_H_

#include <cstdint>
#include <string>

namespace tell {

/// Deterministic, fast PRNG (xoshiro256**). Each worker thread owns its own
/// instance so benchmark runs are reproducible for a given seed layout.
class Random {
 public:
  explicit Random(uint64_t seed = 0x9E3779B97F4A7C15ULL) { Seed(seed); }

  void Seed(uint64_t seed) {
    // SplitMix64 expansion of the seed into the four lanes.
    uint64_t x = seed;
    for (auto& lane : state_) {
      x += 0x9E3779B97F4A7C15ULL;
      uint64_t z = x;
      z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
      z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
      lane = z ^ (z >> 31);
    }
  }

  uint64_t Next() {
    const uint64_t result = Rotl(state_[1] * 5, 7) * 9;
    const uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = Rotl(state_[3], 45);
    return result;
  }

  /// Uniform in [0, n). n must be > 0.
  uint64_t Uniform(uint64_t n) { return Next() % n; }

  /// Uniform in [lo, hi] inclusive, per the TPC-C spec's random(x, y).
  int64_t UniformInt(int64_t lo, int64_t hi) {
    return lo + static_cast<int64_t>(Uniform(static_cast<uint64_t>(hi - lo + 1)));
  }

  /// Uniform double in [0, 1).
  double NextDouble() {
    return static_cast<double>(Next() >> 11) * (1.0 / 9007199254740992.0);
  }

  /// Returns true with probability p.
  bool Bernoulli(double p) { return NextDouble() < p; }

  /// TPC-C NURand non-uniform random, clause 2.1.6.
  int64_t NonUniform(int64_t a, int64_t c, int64_t x, int64_t y) {
    return (((UniformInt(0, a) | UniformInt(x, y)) + c) % (y - x + 1)) + x;
  }

  /// Random alphanumeric string of length in [min_len, max_len].
  std::string AlphaString(int min_len, int max_len) {
    static constexpr char kChars[] =
        "abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789";
    int len = static_cast<int>(UniformInt(min_len, max_len));
    std::string out;
    out.reserve(static_cast<size_t>(len));
    for (int i = 0; i < len; ++i) {
      out.push_back(kChars[Uniform(sizeof(kChars) - 1)]);
    }
    return out;
  }

  /// Random numeric string of exactly `len` digits.
  std::string DigitString(int len) {
    std::string out;
    out.reserve(static_cast<size_t>(len));
    for (int i = 0; i < len; ++i) {
      out.push_back(static_cast<char>('0' + Uniform(10)));
    }
    return out;
  }

 private:
  static uint64_t Rotl(uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  uint64_t state_[4];
};

}  // namespace tell

#endif  // TELL_COMMON_RANDOM_H_
