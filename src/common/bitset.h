#ifndef TELL_COMMON_BITSET_H_
#define TELL_COMMON_BITSET_H_

#include <cstdint>
#include <vector>

namespace tell {

/// Growable dense bitset. Used by the snapshot descriptor: bit i represents
/// tid (base + 1 + i) and is set iff that transaction has committed
/// (paper §4.2: "each consecutive bit in N represents the next higher tid").
class DenseBitset {
 public:
  DenseBitset() = default;
  explicit DenseBitset(size_t size) : size_(size), words_((size + 63) / 64) {}

  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

  void Resize(size_t size) {
    size_ = size;
    words_.resize((size + 63) / 64, 0);
    // Clear any stale bits past the new logical end in the last word.
    if (size_ % 64 != 0 && !words_.empty()) {
      words_.back() &= (uint64_t{1} << (size_ % 64)) - 1;
    }
  }

  void Set(size_t i) {
    if (i >= size_) Resize(i + 1);
    words_[i / 64] |= uint64_t{1} << (i % 64);
  }

  void Clear(size_t i) {
    if (i >= size_) return;
    words_[i / 64] &= ~(uint64_t{1} << (i % 64));
  }

  bool Test(size_t i) const {
    if (i >= size_) return false;
    return (words_[i / 64] >> (i % 64)) & 1;
  }

  /// Number of set bits.
  size_t Count() const {
    size_t total = 0;
    for (uint64_t w : words_) total += static_cast<size_t>(__builtin_popcountll(w));
    return total;
  }

  /// Index of the first zero bit, or size() if all bits are set.
  size_t FirstZero() const {
    for (size_t wi = 0; wi < words_.size(); ++wi) {
      uint64_t inverted = ~words_[wi];
      if (wi == words_.size() - 1 && size_ % 64 != 0) {
        inverted &= (uint64_t{1} << (size_ % 64)) - 1;
      }
      if (inverted != 0) {
        size_t bit = wi * 64 + static_cast<size_t>(__builtin_ctzll(inverted));
        if (bit < size_) return bit;
      }
    }
    return size_;
  }

  /// Drops the first n bits, shifting everything down. Used when the
  /// snapshot base advances.
  void DropFront(size_t n) {
    if (n >= size_) {
      size_ = 0;
      words_.clear();
      return;
    }
    size_t new_size = size_ - n;
    DenseBitset shifted(new_size);
    for (size_t i = 0; i < new_size; ++i) {
      if (Test(i + n)) shifted.Set(i);
    }
    *this = std::move(shifted);
  }

  /// Serialized byte footprint (for the paper's "N <= 13 KB" sizing claim).
  size_t ByteSize() const { return words_.size() * sizeof(uint64_t); }

  const std::vector<uint64_t>& words() const { return words_; }
  std::vector<uint64_t>& mutable_words() { return words_; }

  bool operator==(const DenseBitset& other) const {
    if (size_ != other.size_) return false;
    return words_ == other.words_;
  }

 private:
  size_t size_ = 0;
  std::vector<uint64_t> words_;
};

}  // namespace tell

#endif  // TELL_COMMON_BITSET_H_
