#ifndef TELL_INDEX_BTREE_H_
#define TELL_INDEX_BTREE_H_

#include <cstdint>
#include <list>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "store/storage_client.h"

namespace tell::index {

/// One index entry: encoded key -> rid.
struct IndexEntry {
  std::string key;
  uint64_t rid = 0;
};

/// One operation of a BTree::BatchInsert call.
struct BatchInsertOp {
  std::string key;
  uint64_t rid = 0;
  bool unique = false;
};

struct BTreeOptions {
  /// Max entries per node before it splits.
  uint32_t fanout = 64;
  /// Paper §5.3.1: all index nodes except the leaf level are cached on the
  /// processing node; leaves are always fetched from the storage system.
  /// Disabled by the index-cache ablation bench.
  bool cache_inner_nodes = true;
};

/// Per-processing-node cache of inner B+tree nodes. Shared by all workers of
/// one PN; thread safe. Entries are (node id -> serialized node + stamp).
///
/// Bounded: at most `max_entries` nodes are held, evicted least-recently-used
/// (Get refreshes recency). An evicted inner node is simply re-fetched on the
/// next descent, so the bound affects cost only, never correctness — and the
/// LRU order naturally pins the root and upper levels, which every descent
/// touches. Entry count is exported as the `index.cache.entries` gauge.
class NodeCache {
 public:
  /// Default entry bound. At the default fanout (64) this caches the entire
  /// inner-node set of trees with ~4096*64 leaves — far past what the
  /// benchmarks build — while capping memory for adversarial workloads.
  static constexpr size_t kDefaultMaxEntries = 4096;

  explicit NodeCache(size_t max_entries = kDefaultMaxEntries)
      : max_entries_(max_entries == 0 ? 1 : max_entries) {}
  NodeCache(const NodeCache&) = delete;
  NodeCache& operator=(const NodeCache&) = delete;

  bool Get(uint64_t node_id, std::string* value, uint64_t* stamp);
  void Put(uint64_t node_id, std::string value, uint64_t stamp);
  void Erase(uint64_t node_id);
  void Clear();

  uint64_t hits() const { return hits_; }
  uint64_t misses() const { return misses_; }
  uint64_t evictions() const { return evictions_; }
  size_t entries() const;
  size_t max_entries() const { return max_entries_; }

 private:
  struct Entry {
    std::string value;
    uint64_t stamp = 0;
    std::list<uint64_t>::iterator lru_it;
  };

  const size_t max_entries_;
  mutable std::mutex mutex_;
  std::map<uint64_t, Entry> nodes_;
  std::list<uint64_t> lru_;  // front = most recently used
  uint64_t hits_ = 0;
  uint64_t misses_ = 0;
  uint64_t evictions_ = 0;
};

/// Latch-free distributed B+tree (paper §5.3).
///
/// Every tree node is one key-value pair in the storage system, updated with
/// LL/SC conditional puts; a failed store-conditional simply retries from a
/// fresh read, so no latches are held anywhere and system-wide progress is
/// guaranteed. Structure modifications use the B-link technique (Lehman &
/// Yao, the paper's reference [33]): a split first publishes the new right
/// node, then shrinks the left node (which carries a right-sibling link and
/// a high key), and only then inserts the separator into the parent — a
/// traversal that lands left of its key follows sibling links, so lookups
/// stay correct even when a parent update is still in flight (or was lost to
/// a crashed processing node).
///
/// Indexes are version-unaware (§5.3.2): one entry per record, no version
/// information, so readers must validate fetched records against their
/// snapshot and may GC obsolete entries via Remove().
///
/// The BTree object itself is a cheap per-PN handle: tree identity is the
/// storage table, the inner-node cache is shared per PN, and every method
/// takes the calling worker's StorageClient for cost accounting.
class BTree {
 public:
  /// Initializes an empty tree in `table` (root = empty leaf). Call once at
  /// index creation time.
  static Status Create(store::StorageClient* client, store::TableId table);

  BTree(store::TableId table, const BTreeOptions& options, NodeCache* cache)
      : table_(table), options_(options), cache_(cache) {}

  store::TableId table() const { return table_; }

  /// Inserts key -> rid. With `unique`, fails with AlreadyExists if the key
  /// is already present under a different rid. Idempotent for the same
  /// (key, rid) pair.
  Status Insert(store::StorageClient* client, std::string_view key,
                uint64_t rid, bool unique);

  /// Inserts many entries in one pipelined pass. With request pipelining
  /// enabled on `client` the descents advance level-synchronously (shared
  /// coalesced fetches, like BatchLookup) and the entries are grouped by
  /// target leaf: each touched leaf is rewritten with ONE conditional put
  /// carrying all of its new entries. Entries whose path turned stale, whose
  /// leaf is full (split needed) or whose LL/SC lost a race fall back to the
  /// serial Insert. Unique violations are detected during preparation,
  /// before any put is issued. `inserted` (resized to ops.size()) reports
  /// per op whether the entry is durably in the tree when the call returns —
  /// on failure the caller uses it to undo a partial batch (Remove is
  /// idempotent). Without pipelining this is a plain loop over Insert.
  Status BatchInsert(store::StorageClient* client,
                     const std::vector<BatchInsertOp>& ops,
                     std::vector<bool>* inserted);

  /// Removes the entry (key, rid). OK even if absent (idempotent — index GC
  /// races are benign).
  Status Remove(store::StorageClient* client, std::string_view key,
                uint64_t rid);

  /// All rids stored under exactly `key`.
  Result<std::vector<uint64_t>> Lookup(store::StorageClient* client,
                                       std::string_view key);

  /// Point lookups for many keys at once, positionally aligned with `keys`.
  /// With request pipelining enabled on `client` the descents advance
  /// level-synchronously: each round fetches the distinct uncached nodes of
  /// one level — in particular the leaves, which are never cached — through
  /// one coalesced pipeline window, so K lookups cost ~height round trips
  /// instead of K. Keys whose path turns stale under a concurrent split fall
  /// back to a single-key descent. Without pipelining this is a plain loop
  /// over Lookup.
  Result<std::vector<std::vector<uint64_t>>> BatchLookup(
      store::StorageClient* client, const std::vector<std::string>& keys);

  /// Entries with key in [start, end); empty `end` = unbounded. `limit` 0 =
  /// unlimited.
  Result<std::vector<IndexEntry>> RangeScan(store::StorageClient* client,
                                            std::string_view start,
                                            std::string_view end,
                                            size_t limit);

  /// Tree height (root to leaf, 1 = root is a leaf). Test/diagnostic helper.
  Result<uint32_t> Height(store::StorageClient* client);

 private:
  struct Node;

  Result<Node> ReadNode(store::StorageClient* client, uint64_t node_id,
                        bool is_inner_level);
  /// Lookup without the index_lookups metric (callers count themselves).
  Result<std::vector<uint64_t>> LookupRids(store::StorageClient* client,
                                           std::string_view key);
  Result<Node> ReadNodeUncached(store::StorageClient* client,
                                uint64_t node_id);

  /// Descends to the leaf that should hold `key`. Fills `path` with the
  /// inner node ids visited (root first). Retries with the cache disabled
  /// when a stale cached path is detected.
  Result<Node> DescendToLeaf(store::StorageClient* client,
                             std::string_view key,
                             std::vector<uint64_t>* path);

  /// Level-synchronous descent for many keys: every key advances one level
  /// per round, and each round fetches the distinct uncached nodes of that
  /// level through one coalesced pipeline window. On return,
  /// `leaf_of_key[i]` indexes into `leaves` for keys[i] — or kNoLeaf when
  /// that key's batched path turned stale (concurrent split, missing child,
  /// failed fetch) and the caller must use the single-key descent, which
  /// owns the full B-link right-hop and cache-refresh machinery.
  static constexpr size_t kNoLeaf = static_cast<size_t>(-1);
  Status BatchDescendToLeaves(store::StorageClient* client,
                              const std::vector<std::string>& keys,
                              std::vector<Node>* leaves,
                              std::vector<size_t>* leaf_of_key);

  /// Splits `node` (already full) and publishes both halves; then inserts
  /// the separator into the parent level best-effort. Retries internally.
  Status SplitNode(store::StorageClient* client, Node& node,
                   const std::vector<uint64_t>& path);

  /// Inserts the separator at exactly `target_level` (the split node's
  /// level + 1), descending from the remembered ancestor if the root has
  /// since grown taller.
  Status InsertIntoParent(store::StorageClient* client,
                          const std::vector<uint64_t>& path,
                          std::string_view separator, uint64_t right_id,
                          uint32_t target_level);

  Result<uint64_t> AllocateNodeId(store::StorageClient* client);

  const store::TableId table_;
  const BTreeOptions options_;
  NodeCache* const cache_;
};

}  // namespace tell::index

#endif  // TELL_INDEX_BTREE_H_
