#include "index/btree.h"

#include <cstddef>
#include <algorithm>

#include "common/logging.h"
#include "common/serde.h"

namespace tell::index {

namespace {

constexpr uint64_t kRootId = 1;
constexpr std::string_view kNextIdKey = "meta/next_id";
// Bounded retries: LL/SC failures retry from fresh reads; the bound only
// guards against bugs, not expected contention levels.
constexpr int kMaxRetries = 1024;
// Right-sibling hops tolerated before declaring the cached path stale.
constexpr int kMaxRightHops = 64;

std::string NodeKey(uint64_t id) { return tell::EncodeOrderedU64(id); }

}  // namespace

struct BTree::Node {
  uint64_t id = 0;
  uint64_t stamp = 0;
  bool is_leaf = true;
  /// Distance from the leaf level (leaves are 0). A node's level never
  /// changes — except for the fixed-id root, which is rewritten in place one
  /// level higher on a root split; parent insertion therefore locates its
  /// target by LEVEL, not by remembered id (see InsertIntoParent).
  uint32_t level = 0;
  uint64_t right_sibling = 0;
  std::string high_key;  // empty = +inf (only valid when right_sibling == 0)
  std::vector<IndexEntry> entries;

  std::string Serialize() const {
    BufferWriter writer;
    writer.PutU8(is_leaf ? 1 : 0);
    writer.PutU32(level);
    writer.PutU64(right_sibling);
    writer.PutString(high_key);
    writer.PutU32(static_cast<uint32_t>(entries.size()));
    for (const IndexEntry& e : entries) {
      writer.PutString(e.key);
      writer.PutU64(e.rid);
    }
    return writer.Release();
  }

  static Result<Node> Deserialize(uint64_t id, uint64_t stamp,
                                  std::string_view data) {
    BufferReader reader(data);
    Node node;
    node.id = id;
    node.stamp = stamp;
    TELL_ASSIGN_OR_RETURN(uint8_t is_leaf, reader.GetU8());
    node.is_leaf = is_leaf != 0;
    TELL_ASSIGN_OR_RETURN(node.level, reader.GetU32());
    TELL_ASSIGN_OR_RETURN(node.right_sibling, reader.GetU64());
    TELL_ASSIGN_OR_RETURN(std::string_view high_key, reader.GetString());
    node.high_key.assign(high_key);
    TELL_ASSIGN_OR_RETURN(uint32_t count, reader.GetU32());
    node.entries.reserve(std::min<size_t>(count, reader.remaining() / 12 + 1));
    for (uint32_t i = 0; i < count; ++i) {
      IndexEntry entry;
      TELL_ASSIGN_OR_RETURN(std::string_view key, reader.GetString());
      entry.key.assign(key);
      TELL_ASSIGN_OR_RETURN(entry.rid, reader.GetU64());
      node.entries.push_back(std::move(entry));
    }
    return node;
  }

  /// True if `key` belongs in this node's range ([_, high_key)).
  bool CoversKey(std::string_view key) const {
    return high_key.empty() || key < high_key;
  }

  /// Child id for `key` in an inner node; 0 if no entry qualifies (stale).
  uint64_t ChildFor(std::string_view key) const {
    uint64_t child = 0;
    for (const IndexEntry& e : entries) {
      if (e.key <= key) {
        child = e.rid;
      } else {
        break;
      }
    }
    return child;
  }

  /// Sorted-insert position for (key, rid).
  size_t PositionFor(std::string_view key, uint64_t rid) const {
    return static_cast<size_t>(
        std::lower_bound(entries.begin(), entries.end(),
                         std::make_pair(key, rid),
                         [](const IndexEntry& e,
                            const std::pair<std::string_view, uint64_t>& p) {
                           if (e.key != p.first) return e.key < p.first;
                           return e.rid < p.second;
                         }) -
        entries.begin());
  }
};

// --------------------------------------------------------------------------
// NodeCache

bool NodeCache::Get(uint64_t node_id, std::string* value, uint64_t* stamp) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = nodes_.find(node_id);
  if (it == nodes_.end()) {
    ++misses_;
    return false;
  }
  ++hits_;
  lru_.splice(lru_.begin(), lru_, it->second.lru_it);
  *value = it->second.value;
  *stamp = it->second.stamp;
  return true;
}

void NodeCache::Put(uint64_t node_id, std::string value, uint64_t stamp) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = nodes_.find(node_id);
  if (it != nodes_.end()) {
    it->second.value = std::move(value);
    it->second.stamp = stamp;
    lru_.splice(lru_.begin(), lru_, it->second.lru_it);
    return;
  }
  lru_.push_front(node_id);
  nodes_[node_id] = {std::move(value), stamp, lru_.begin()};
  while (nodes_.size() > max_entries_) {
    nodes_.erase(lru_.back());
    lru_.pop_back();
    ++evictions_;
  }
}

void NodeCache::Erase(uint64_t node_id) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = nodes_.find(node_id);
  if (it == nodes_.end()) return;
  lru_.erase(it->second.lru_it);
  nodes_.erase(it);
}

void NodeCache::Clear() {
  std::lock_guard<std::mutex> lock(mutex_);
  nodes_.clear();
  lru_.clear();
}

size_t NodeCache::entries() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return nodes_.size();
}

// --------------------------------------------------------------------------
// BTree

Status BTree::Create(store::StorageClient* client, store::TableId table) {
  Node root;
  root.id = kRootId;
  root.is_leaf = true;
  auto put = client->ConditionalPut(table, NodeKey(kRootId),
                                    store::kStampAbsent, root.Serialize());
  if (put.status().IsConditionFailed()) {
    return Status::AlreadyExists("index already initialized");
  }
  TELL_RETURN_NOT_OK(put.status());
  // Node id 1 is the root; the counter hands out 2, 3, ...
  auto counter = client->AtomicIncrement(table, kNextIdKey, 1);
  return counter.status();
}

Result<uint64_t> BTree::AllocateNodeId(store::StorageClient* client) {
  TELL_ASSIGN_OR_RETURN(int64_t id,
                        client->AtomicIncrement(table_, kNextIdKey, 1));
  return static_cast<uint64_t>(id) + 1;  // counter started at 1 = root
}

Result<BTree::Node> BTree::ReadNodeUncached(store::StorageClient* client,
                                            uint64_t node_id) {
  TELL_ASSIGN_OR_RETURN(store::VersionedCell cell,
                        client->Get(table_, NodeKey(node_id)));
  return Node::Deserialize(node_id, cell.stamp, cell.value);
}

Result<BTree::Node> BTree::ReadNode(store::StorageClient* client,
                                    uint64_t node_id, bool is_inner_level) {
  if (options_.cache_inner_nodes && is_inner_level && cache_ != nullptr) {
    std::string value;
    uint64_t stamp;
    if (cache_->Get(node_id, &value, &stamp)) {
      return Node::Deserialize(node_id, stamp, value);
    }
  }
  TELL_ASSIGN_OR_RETURN(Node node, ReadNodeUncached(client, node_id));
  if (options_.cache_inner_nodes && cache_ != nullptr && !node.is_leaf) {
    cache_->Put(node_id, node.Serialize(), node.stamp);
  }
  return node;
}

Result<BTree::Node> BTree::DescendToLeaf(store::StorageClient* client,
                                         std::string_view key,
                                         std::vector<uint64_t>* path) {
  // Attempt 0 uses the inner-node cache; later attempts re-read everything.
  // Concurrent structure modifications can transiently derail even a fresh
  // descent, so retry a few times before declaring the tree corrupt.
  for (int attempt = 0; attempt < 16; ++attempt) {
    bool use_cache = attempt == 0;
    path->clear();
    bool stale = false;
    int right_hops = 0;
    // The root is never cached as a leaf; read and inspect.
    Result<Node> current = use_cache ? ReadNode(client, kRootId, true)
                                     : ReadNodeUncached(client, kRootId);
    if (!current.ok()) return current.status();
    Node node = std::move(*current);
    while (true) {
      // B-link move right: a concurrent split may have shifted our key range
      // into a right sibling before the parent learned about it.
      while (!node.CoversKey(key)) {
        if (node.right_sibling == 0 || ++right_hops > kMaxRightHops) {
          stale = true;
          break;
        }
        Result<Node> sibling = ReadNodeUncached(client, node.right_sibling);
        if (!sibling.ok()) return sibling.status();
        node = std::move(*sibling);
      }
      if (stale) break;
      if (node.is_leaf) {
        // Paper §5.3.1: a leaf that does not match its parent's expectation
        // means the cached path is outdated — refresh the parents.
        if (right_hops > 0 && cache_ != nullptr) {
          for (uint64_t id : *path) cache_->Erase(id);
        }
        return node;
      }
      uint64_t child = node.ChildFor(key);
      if (child == 0) {
        stale = true;
        break;
      }
      path->push_back(node.id);
      Result<Node> next = use_cache ? ReadNode(client, child, true)
                                    : ReadNodeUncached(client, child);
      if (!next.ok()) return next.status();
      node = std::move(*next);
    }
    // Stale cached structure: drop the whole cached path and retry fresh.
    if (cache_ != nullptr) {
      cache_->Erase(kRootId);
      for (uint64_t id : *path) cache_->Erase(id);
    }
  }
  return Status::InternalError("B+tree descent failed twice (corrupt tree?)");
}

Status BTree::SplitNode(store::StorageClient* client, Node& node,
                        const std::vector<uint64_t>& path) {
  size_t count = node.entries.size();
  TELL_CHECK(count >= 2);
  // Choose a split point that does not separate duplicates of one key
  // (duplicate keys must stay within one node's [low, high) range so that a
  // descent by key finds them all).
  size_t mid = count / 2;
  while (mid < count && node.entries[mid].key == node.entries[mid - 1].key) {
    ++mid;
  }
  if (mid == count) {
    mid = count / 2;
    while (mid > 1 && node.entries[mid].key == node.entries[mid - 1].key) {
      --mid;
    }
    if (mid <= 1) {
      // Every entry shares one key; the node cannot split — let it grow.
      return Status::NotSupported("node holds a single key; cannot split");
    }
  }
  const std::string split_key = node.entries[mid].key;

  if (node.id == kRootId) {
    // Root split: the root id must stay fixed, so both halves move to fresh
    // nodes and the root is rewritten in place as their parent.
    TELL_ASSIGN_OR_RETURN(uint64_t left_id, AllocateNodeId(client));
    TELL_ASSIGN_OR_RETURN(uint64_t right_id, AllocateNodeId(client));
    Node right;
    right.id = right_id;
    right.is_leaf = node.is_leaf;
    right.level = node.level;
    right.right_sibling = node.right_sibling;
    right.high_key = node.high_key;
    right.entries.assign(node.entries.begin() + static_cast<ptrdiff_t>(mid),
                         node.entries.end());
    Node left;
    left.id = left_id;
    left.is_leaf = node.is_leaf;
    left.level = node.level;
    left.right_sibling = right_id;
    left.high_key = split_key;
    left.entries.assign(node.entries.begin(),
                        node.entries.begin() + static_cast<ptrdiff_t>(mid));
    TELL_RETURN_NOT_OK(client
                           ->ConditionalPut(table_, NodeKey(right_id),
                                            store::kStampAbsent,
                                            right.Serialize())
                           .status());
    TELL_RETURN_NOT_OK(client
                           ->ConditionalPut(table_, NodeKey(left_id),
                                            store::kStampAbsent,
                                            left.Serialize())
                           .status());
    Node new_root;
    new_root.id = kRootId;
    new_root.is_leaf = false;
    new_root.level = node.level + 1;
    new_root.right_sibling = node.right_sibling;
    new_root.high_key = node.high_key;
    new_root.entries.push_back({"", left_id});
    new_root.entries.push_back({split_key, right_id});
    auto put = client->ConditionalPut(table_, NodeKey(kRootId), node.stamp,
                                      new_root.Serialize());
    if (cache_ != nullptr) cache_->Erase(kRootId);
    // On ConditionFailed another worker raced us; the two fresh nodes become
    // unreachable garbage, which is benign.
    return put.status();
  }

  TELL_ASSIGN_OR_RETURN(uint64_t right_id, AllocateNodeId(client));
  Node right;
  right.id = right_id;
  right.is_leaf = node.is_leaf;
  right.level = node.level;
  right.right_sibling = node.right_sibling;
  right.high_key = node.high_key;
  right.entries.assign(node.entries.begin() + static_cast<ptrdiff_t>(mid),
                       node.entries.end());
  // 1. Publish the right half under a fresh id.
  TELL_RETURN_NOT_OK(client
                         ->ConditionalPut(table_, NodeKey(right_id),
                                          store::kStampAbsent,
                                          right.Serialize())
                         .status());
  // 2. Shrink the left half in place (the LL/SC step that linearizes the
  //    split; on failure the right node is abandoned garbage).
  Node left = node;
  left.right_sibling = right_id;
  left.high_key = split_key;
  left.entries.resize(mid);
  auto put = client->ConditionalPut(table_, NodeKey(node.id), node.stamp,
                                    left.Serialize());
  if (cache_ != nullptr) cache_->Erase(node.id);
  TELL_RETURN_NOT_OK(put.status());
  // 3. Tell the parent. Best effort: even if this is lost (e.g. the PN
  //    crashes), traversals reach the right node via the sibling link.
  return InsertIntoParent(client, path, split_key, right_id, node.level + 1);
}

Status BTree::InsertIntoParent(store::StorageClient* client,
                               const std::vector<uint64_t>& path,
                               std::string_view separator, uint64_t right_id,
                               uint32_t target_level) {
  TELL_CHECK(!path.empty());
  uint64_t start_id = path.back();
  std::vector<uint64_t> grandparents(path.begin(), path.end() - 1);
  for (int retry = 0; retry < kMaxRetries; ++retry) {
    TELL_ASSIGN_OR_RETURN(Node parent, ReadNodeUncached(client, start_id));
    bool restart_from_root = false;
    // The remembered parent may meanwhile sit ABOVE the target level: the
    // fixed-id root is rewritten in place one level higher on a root split.
    // Descend by level until we are at the separator's parent level —
    // inserting at any other level would corrupt the tree.
    int hops = 0;
    while (true) {
      while (!parent.CoversKey(separator)) {
        if (parent.right_sibling == 0) {
          // A rightmost node always covers up to +inf; this cannot happen.
          return Status::InternalError("separator key out of parent range");
        }
        if (++hops > kMaxRightHops) {
          // A storm of concurrent splits moved the target far right of the
          // remembered ancestor; restart the search from the root, which
          // descends close to the target directly.
          restart_from_root = true;
          break;
        }
        TELL_ASSIGN_OR_RETURN(parent,
                              ReadNodeUncached(client, parent.right_sibling));
      }
      if (restart_from_root) break;
      if (parent.level == target_level) break;
      if (parent.level < target_level) {
        // The remembered ancestor is now BELOW the target (cannot happen —
        // levels only grow at the root); treat as fatal.
        return Status::InternalError("parent level below separator level");
      }
      uint64_t child = parent.ChildFor(separator);
      if (child == 0) {
        return Status::InternalError("no route to parent level");
      }
      TELL_ASSIGN_OR_RETURN(parent, ReadNodeUncached(client, child));
    }
    if (restart_from_root) {
      start_id = kRootId;
      continue;
    }
    // Already present (another worker completed this SMO for us)?
    for (const IndexEntry& e : parent.entries) {
      if (e.key == separator && e.rid == right_id) return Status::OK();
    }
    if (parent.entries.size() >= options_.fanout) {
      std::vector<uint64_t> parent_path =
          grandparents.empty() ? std::vector<uint64_t>{kRootId} : grandparents;
      Status split = SplitNode(client, parent, parent_path);
      if (!split.ok() && !split.IsConditionFailed() &&
          split.code() != StatusCode::kNotSupported) {
        return split;
      }
      continue;  // re-read and place the separator in the correct half
    }
    size_t pos = parent.PositionFor(separator, right_id);
    parent.entries.insert(parent.entries.begin() + static_cast<ptrdiff_t>(pos),
                          {std::string(separator), right_id});
    auto put = client->ConditionalPut(table_, NodeKey(parent.id), parent.stamp,
                                      parent.Serialize());
    if (cache_ != nullptr) cache_->Erase(parent.id);
    if (put.ok()) return Status::OK();
    if (!put.status().IsConditionFailed()) return put.status();
    // Lost the race; retry from a fresh read.
  }
  return Status::InternalError("parent insert retries exhausted");
}

Status BTree::Insert(store::StorageClient* client, std::string_view key,
                     uint64_t rid, bool unique) {
  for (int retry = 0; retry < kMaxRetries; ++retry) {
    std::vector<uint64_t> path;
    TELL_ASSIGN_OR_RETURN(Node leaf, DescendToLeaf(client, key, &path));
    if (unique) {
      for (const IndexEntry& e : leaf.entries) {
        if (e.key == key && e.rid != rid) {
          return Status::AlreadyExists("duplicate key in unique index");
        }
      }
    }
    size_t pos = leaf.PositionFor(key, rid);
    if (pos < leaf.entries.size() && leaf.entries[pos].key == key &&
        leaf.entries[pos].rid == rid) {
      return Status::OK();  // idempotent
    }
    if (leaf.entries.size() >= options_.fanout) {
      Status split = SplitNode(client, leaf, path);
      if (split.ok() || split.IsConditionFailed()) {
        continue;  // re-descend into the correct half
      }
      if (split.code() != StatusCode::kNotSupported) return split;
      // Unsplittable (all entries share one key): insert oversize below.
    }
    leaf.entries.insert(leaf.entries.begin() + static_cast<ptrdiff_t>(pos),
                        {std::string(key), rid});
    auto put = client->ConditionalPut(table_, NodeKey(leaf.id), leaf.stamp,
                                      leaf.Serialize());
    if (put.ok()) return Status::OK();
    if (!put.status().IsConditionFailed()) return put.status();
  }
  return Status::InternalError("B+tree insert retries exhausted");
}

Status BTree::Remove(store::StorageClient* client, std::string_view key,
                     uint64_t rid) {
  for (int retry = 0; retry < kMaxRetries; ++retry) {
    std::vector<uint64_t> path;
    TELL_ASSIGN_OR_RETURN(Node leaf, DescendToLeaf(client, key, &path));
    size_t pos = leaf.PositionFor(key, rid);
    if (pos >= leaf.entries.size() || leaf.entries[pos].key != key ||
        leaf.entries[pos].rid != rid) {
      return Status::OK();  // absent — idempotent
    }
    leaf.entries.erase(leaf.entries.begin() + static_cast<ptrdiff_t>(pos));
    auto put = client->ConditionalPut(table_, NodeKey(leaf.id), leaf.stamp,
                                      leaf.Serialize());
    if (put.ok()) return Status::OK();
    if (!put.status().IsConditionFailed()) return put.status();
  }
  return Status::InternalError("B+tree remove retries exhausted");
}

Result<std::vector<uint64_t>> BTree::LookupRids(store::StorageClient* client,
                                                std::string_view key) {
  std::vector<uint64_t> path;
  TELL_ASSIGN_OR_RETURN(Node leaf, DescendToLeaf(client, key, &path));
  std::vector<uint64_t> rids;
  for (const IndexEntry& e : leaf.entries) {
    if (e.key == key) rids.push_back(e.rid);
  }
  return rids;
}

Result<std::vector<uint64_t>> BTree::Lookup(store::StorageClient* client,
                                            std::string_view key) {
  client->metrics()->index_lookups += 1;
  return LookupRids(client, key);
}

Status BTree::BatchDescendToLeaves(store::StorageClient* client,
                                   const std::vector<std::string>& keys,
                                   std::vector<Node>* leaves,
                                   std::vector<size_t>* leaf_of_key) {
  leaves->clear();
  leaf_of_key->assign(keys.size(), kNoLeaf);
  if (keys.empty()) return Status::OK();

  struct Cursor {
    size_t key_index;
    Node node;
  };
  TELL_ASSIGN_OR_RETURN(Node root, ReadNode(client, kRootId, true));
  std::vector<Cursor> active;
  active.reserve(keys.size());
  for (size_t i = 0; i < keys.size(); ++i) active.push_back({i, root});
  // Distinct leaves reached so far: leaf id -> index into `leaves`.
  std::map<uint64_t, size_t> leaf_index;

  while (!active.empty()) {
    std::vector<std::pair<size_t, uint64_t>> wanted;  // (key index, child id)
    bool children_are_inner = false;
    for (Cursor& cursor : active) {
      const std::string& key = keys[cursor.key_index];
      if (!cursor.node.CoversKey(key)) continue;  // stale: stays kNoLeaf
      if (cursor.node.is_leaf) {
        auto [it, fresh] =
            leaf_index.try_emplace(cursor.node.id, leaves->size());
        if (fresh) leaves->push_back(std::move(cursor.node));
        (*leaf_of_key)[cursor.key_index] = it->second;
        continue;
      }
      uint64_t child = cursor.node.ChildFor(key);
      if (child == 0) continue;  // stale: stays kNoLeaf
      children_are_inner = cursor.node.level > 1;
      wanted.emplace_back(cursor.key_index, child);
    }
    active.clear();
    if (wanted.empty()) break;

    // Distinct children: cache first, the rest through one coalesced flush.
    std::map<uint64_t, Node> nodes;
    std::vector<std::pair<uint64_t, Future<store::VersionedCell>>> fetches;
    for (const auto& [key_index, child] : wanted) {
      (void)key_index;
      if (nodes.count(child) != 0) continue;
      bool have = false;
      if (children_are_inner && options_.cache_inner_nodes &&
          cache_ != nullptr) {
        std::string value;
        uint64_t stamp;
        if (cache_->Get(child, &value, &stamp)) {
          auto cached = Node::Deserialize(child, stamp, value);
          if (cached.ok()) {
            nodes.emplace(child, std::move(*cached));
            have = true;
          }
        }
      }
      if (!have) {
        // Reserve the slot so the same child is fetched once.
        nodes.emplace(child, Node{});
        fetches.emplace_back(child, client->AsyncGet(table_, NodeKey(child)));
      }
    }
    client->Flush();
    std::map<uint64_t, bool> failed;
    for (auto& [child, future] : fetches) {
      auto cell = future.Await();
      if (!cell.ok()) {
        failed[child] = true;
        continue;
      }
      auto node = Node::Deserialize(child, cell->stamp, cell->value);
      if (!node.ok()) {
        failed[child] = true;
        continue;
      }
      if (options_.cache_inner_nodes && cache_ != nullptr && !node->is_leaf) {
        cache_->Put(child, node->Serialize(), node->stamp);
      }
      nodes[child] = std::move(*node);
    }

    for (const auto& [key_index, child] : wanted) {
      if (failed.count(child) != 0) continue;  // stays kNoLeaf
      active.push_back({key_index, nodes[child]});
    }
  }
  return Status::OK();
}

Result<std::vector<std::vector<uint64_t>>> BTree::BatchLookup(
    store::StorageClient* client, const std::vector<std::string>& keys) {
  client->metrics()->index_lookups += keys.size();
  std::vector<std::vector<uint64_t>> out(keys.size());
  if (keys.empty()) return out;
  if (!client->options().pipelining || keys.size() == 1) {
    for (size_t i = 0; i < keys.size(); ++i) {
      TELL_ASSIGN_OR_RETURN(out[i], LookupRids(client, keys[i]));
    }
    return out;
  }

  std::vector<Node> leaves;
  std::vector<size_t> leaf_of_key;
  TELL_RETURN_NOT_OK(BatchDescendToLeaves(client, keys, &leaves, &leaf_of_key));
  for (size_t i = 0; i < keys.size(); ++i) {
    if (leaf_of_key[i] == kNoLeaf) {
      TELL_ASSIGN_OR_RETURN(out[i], LookupRids(client, keys[i]));
      continue;
    }
    for (const IndexEntry& e : leaves[leaf_of_key[i]].entries) {
      if (e.key == keys[i]) out[i].push_back(e.rid);
    }
  }
  return out;
}

Status BTree::BatchInsert(store::StorageClient* client,
                          const std::vector<BatchInsertOp>& ops,
                          std::vector<bool>* inserted) {
  inserted->assign(ops.size(), false);
  auto serial = [&](size_t i) -> Status {
    Status st = Insert(client, ops[i].key, ops[i].rid, ops[i].unique);
    if (st.ok()) (*inserted)[i] = true;
    return st;
  };
  if (!client->options().pipelining || ops.size() < 2) {
    for (size_t i = 0; i < ops.size(); ++i) TELL_RETURN_NOT_OK(serial(i));
    return Status::OK();
  }

  std::vector<std::string> keys;
  keys.reserve(ops.size());
  for (const BatchInsertOp& op : ops) keys.push_back(op.key);
  std::vector<Node> leaves;
  std::vector<size_t> leaf_of_key;
  TELL_RETURN_NOT_OK(BatchDescendToLeaves(client, keys, &leaves, &leaf_of_key));

  // Ops that need the serial Insert (stale path, full leaf, lost LL/SC).
  std::vector<size_t> fallback;
  std::map<size_t, std::vector<size_t>> groups;  // leaf index -> op indices
  for (size_t i = 0; i < ops.size(); ++i) {
    if (leaf_of_key[i] == kNoLeaf) {
      fallback.push_back(i);
    } else {
      groups[leaf_of_key[i]].push_back(i);
    }
  }

  // Prepare every leaf rewrite BEFORE issuing any put: a unique violation
  // must surface while there is still nothing to undo.
  struct LeafPut {
    uint64_t id = 0;
    uint64_t stamp = 0;
    std::string value;
    std::vector<size_t> op_indices;
  };
  std::vector<LeafPut> puts;
  for (auto& [leaf_idx, op_indices] : groups) {
    Node copy = leaves[leaf_idx];
    bool overflow = false;
    std::vector<size_t> applied;
    for (size_t i : op_indices) {
      const BatchInsertOp& op = ops[i];
      if (op.unique) {
        for (const IndexEntry& e : copy.entries) {
          if (e.key == op.key && e.rid != op.rid) {
            return Status::AlreadyExists("duplicate key in unique index");
          }
        }
      }
      size_t pos = copy.PositionFor(op.key, op.rid);
      if (pos < copy.entries.size() && copy.entries[pos].key == op.key &&
          copy.entries[pos].rid == op.rid) {
        applied.push_back(i);  // already present — idempotent
        continue;
      }
      if (copy.entries.size() >= options_.fanout) {
        // The leaf must split; the serial Insert owns that machinery. Send
        // the whole group (its earlier ops included) down the serial path.
        overflow = true;
        break;
      }
      copy.entries.insert(copy.entries.begin() + static_cast<ptrdiff_t>(pos),
                          {op.key, op.rid});
      applied.push_back(i);
    }
    if (overflow) {
      for (size_t i : op_indices) fallback.push_back(i);
      continue;
    }
    puts.push_back({copy.id, leaves[leaf_idx].stamp, copy.Serialize(),
                    std::move(applied)});
  }

  // One conditional put per touched leaf, all through one pipeline window.
  std::vector<std::pair<size_t, Future<uint64_t>>> futures;
  futures.reserve(puts.size());
  for (size_t p = 0; p < puts.size(); ++p) {
    futures.emplace_back(
        p, client->AsyncConditionalPut(table_, NodeKey(puts[p].id),
                                       puts[p].stamp, puts[p].value));
  }
  client->Flush();
  Status failure;
  for (auto& [p, future] : futures) {
    auto put = future.Await();
    if (put.ok()) {
      for (size_t i : puts[p].op_indices) (*inserted)[i] = true;
    } else if (put.status().IsConditionFailed()) {
      // Lost the LL/SC race on this leaf; re-run its ops serially (the
      // serial Insert re-descends, re-checks uniqueness and is idempotent).
      for (size_t i : puts[p].op_indices) fallback.push_back(i);
    } else if (failure.ok()) {
      failure = put.status();
    }
  }
  if (!failure.ok()) return failure;

  std::sort(fallback.begin(), fallback.end());
  for (size_t i : fallback) TELL_RETURN_NOT_OK(serial(i));
  return Status::OK();
}

Result<std::vector<IndexEntry>> BTree::RangeScan(store::StorageClient* client,
                                                 std::string_view start,
                                                 std::string_view end,
                                                 size_t limit) {
  client->metrics()->index_lookups += 1;
  std::vector<uint64_t> path;
  TELL_ASSIGN_OR_RETURN(Node leaf, DescendToLeaf(client, start, &path));
  std::vector<IndexEntry> out;
  while (true) {
    for (const IndexEntry& e : leaf.entries) {
      if (e.key < start) continue;
      if (!end.empty() && e.key >= end) return out;
      out.push_back(e);
      if (limit != 0 && out.size() >= limit) return out;
    }
    if (leaf.right_sibling == 0) return out;
    if (!end.empty() && !leaf.high_key.empty() && leaf.high_key >= end) {
      return out;
    }
    TELL_ASSIGN_OR_RETURN(leaf, ReadNodeUncached(client, leaf.right_sibling));
  }
}

Result<uint32_t> BTree::Height(store::StorageClient* client) {
  uint32_t height = 1;
  TELL_ASSIGN_OR_RETURN(Node node, ReadNodeUncached(client, kRootId));
  while (!node.is_leaf) {
    TELL_CHECK(!node.entries.empty());
    TELL_ASSIGN_OR_RETURN(node,
                          ReadNodeUncached(client, node.entries.front().rid));
    ++height;
  }
  return height;
}

}  // namespace tell::index
