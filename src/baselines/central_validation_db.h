#ifndef TELL_BASELINES_CENTRAL_VALIDATION_DB_H_
#define TELL_BASELINES_CENTRAL_VALIDATION_DB_H_

#include <memory>
#include <vector>

#include "baselines/tpcc_data.h"
#include "baselines/virtual_queue.h"
#include "sim/metrics.h"
#include "sim/virtual_clock.h"
#include "workload/tpcc/tpcc_driver.h"

namespace tell::baselines {

/// FoundationDB-style engine model (paper §6.5): a shared-data database
/// whose SQL layer interprets statements on top of a transactional
/// key-value store, with optimistic MVCC validated by a *centralized*
/// resolver at commit. The paper's point is that a shared-data design
/// without Tell's specific techniques — request batching, native use of the
/// low-latency network, decentralized LL/SC validation — lands a factor ~30
/// below Tell: every record access is its own round trip through a kernel
/// TCP stack plus SQL-layer interpretation, and commit validation is a
/// single serial resource.
struct CentralValidationOptions {
  /// Cost of one record read: SQL-layer interpretation + one TCP round trip
  /// (no batching, no RDMA).
  uint64_t per_read_ns = 1'200'000;
  /// Client-side cost per buffered write at commit.
  uint64_t per_write_ns = 100'000;
  /// Central resolver: base + per read/write-set key service (a single
  /// global queue — the scalability ceiling).
  uint64_t resolver_base_ns = 300'000;
  uint64_t resolver_per_op_ns = 5'000;
  /// Storage servers applying the committed writes.
  uint32_t num_storage_servers = 3;
  uint64_t storage_op_service_ns = 10'000;
};

class CentralValidationDb final : public tpcc::TpccBackend {
 public:
  CentralValidationDb(const tpcc::TpccScale& scale,
                      const CentralValidationOptions& options,
                      uint64_t seed = 42)
      : options_(options), data_(scale, seed) {
    storage_queues_.reserve(options_.num_storage_servers);
    for (uint32_t i = 0; i < options_.num_storage_servers; ++i) {
      storage_queues_.push_back(std::make_unique<VirtualQueue>());
    }
  }

  Status Prepare(uint32_t num_workers) override {
    workers_.clear();
    workers_.resize(num_workers);
    return Status::OK();
  }

  Result<tpcc::TxnOutcome> Execute(uint32_t worker_id,
                                   const tpcc::TxnInput& input) override {
    Worker& worker = workers_[worker_id];
    TELL_ASSIGN_OR_RETURN(ExecStats stats, data_.Apply(input));
    uint64_t now = worker.clock.now_ns();
    // Sequential per-record reads through the SQL layer.
    uint64_t t = now + stats.read_ops * options_.per_read_ns +
                 stats.write_ops * options_.per_write_ns;
    if (stats.write_ops > 0 && !stats.user_abort) {
      // Commit: the whole read+write set goes through the central resolver.
      uint64_t resolver_service =
          options_.resolver_base_ns +
          (stats.read_ops + stats.write_ops) * options_.resolver_per_op_ns;
      t = resolver_.Enqueue(t, resolver_service);
      // Then the writes are applied on the storage servers (spread by
      // warehouse).
      uint64_t per_server =
          stats.write_ops * options_.storage_op_service_ns /
          static_cast<uint64_t>(storage_queues_.size());
      uint64_t storage_done = t;
      for (auto& queue : storage_queues_) {
        storage_done = std::max(storage_done, queue->Enqueue(t, per_server));
      }
      t = storage_done;
    }
    worker.clock.AdvanceTo(t);
    tpcc::TxnOutcome outcome;
    if (stats.user_abort) {
      outcome.user_abort = true;
      worker.metrics.aborted += 1;
    } else {
      outcome.committed = true;
      worker.metrics.committed += 1;
    }
    worker.metrics.storage_ops += stats.read_ops + stats.write_ops;
    return outcome;
  }

  sim::VirtualClock* clock(uint32_t worker_id) override {
    return &workers_[worker_id].clock;
  }
  sim::WorkerMetrics* metrics(uint32_t worker_id) override {
    return &workers_[worker_id].metrics;
  }

 private:
  struct Worker {
    sim::VirtualClock clock;
    sim::WorkerMetrics metrics;
  };
  const CentralValidationOptions options_;
  TpccData data_;
  VirtualQueue resolver_;
  std::vector<std::unique_ptr<VirtualQueue>> storage_queues_;
  std::vector<Worker> workers_;
};

}  // namespace tell::baselines

#endif  // TELL_BASELINES_CENTRAL_VALIDATION_DB_H_
