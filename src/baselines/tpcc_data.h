#ifndef TELL_BASELINES_TPCC_DATA_H_
#define TELL_BASELINES_TPCC_DATA_H_

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <set>
#include <string>
#include <vector>

#include "common/random.h"
#include "common/result.h"
#include "workload/tpcc/tpcc_transactions.h"

namespace tell::baselines {

/// Plain in-memory TPC-C rows for the baseline engines. The comparator
/// systems are modelled at the level that drives the paper's Figures 8/9 —
/// their *execution architecture* (serial partitions, 2PC, central
/// validation) — so their data layer is a straightforward mutable store,
/// while the costs of that architecture are charged through virtual queues.
struct DistrictRow {
  double ytd = 0;
  double tax = 0;
  int64_t next_o_id = 1;
};

struct CustomerRow {
  std::string last;
  std::string first;
  std::string credit;
  double discount = 0;
  double balance = -10.0;
  double ytd_payment = 10.0;
  int64_t payment_cnt = 1;
  int64_t delivery_cnt = 0;
};

struct OrderRow {
  int64_t c_id = 0;
  int64_t entry_d = 0;
  int64_t carrier = 0;
  int64_t ol_cnt = 0;
  bool delivered = false;
};

struct OrderLineRow {
  int64_t i_id = 0;
  int64_t supply_w = 0;
  int64_t quantity = 0;
  double amount = 0;
  int64_t delivery_d = 0;
};

struct StockRow {
  int64_t quantity = 0;
  double ytd = 0;
  int64_t order_cnt = 0;
  int64_t remote_cnt = 0;
};

struct ItemRow {
  double price = 0;
};

/// All data of one warehouse (the natural TPC-C partition).
struct WarehousePartition {
  std::mutex mutex;  // data-integrity latch; modelled CC cost is separate
  double ytd = 300000.0;
  double tax = 0;
  std::vector<DistrictRow> districts;
  // customers[d-1][c-1]
  std::vector<std::vector<CustomerRow>> customers;
  // per district: last name -> c_id (sorted by (last, first) via value sort)
  std::vector<std::multimap<std::string, int64_t>> customers_by_name;
  // per district: o_id -> order
  std::vector<std::map<int64_t, OrderRow>> orders;
  // per district: (o_id, ol_number) -> line
  std::vector<std::map<std::pair<int64_t, int64_t>, OrderLineRow>> order_lines;
  // per district: undelivered order ids
  std::vector<std::set<int64_t>> new_orders;
  std::vector<StockRow> stock;  // [item-1]
};

/// Per-transaction execution statistics the engines turn into costs.
struct ExecStats {
  uint32_t read_ops = 0;
  uint32_t write_ops = 0;
  bool user_abort = false;
  /// Distinct warehouses touched, ascending (determines single- vs
  /// multi-partition execution).
  std::vector<int64_t> warehouses;
};

/// The shared TPC-C dataset + transaction logic for the baselines.
/// Thread safe: Apply locks the involved warehouse partitions in ascending
/// order.
class TpccData {
 public:
  explicit TpccData(const tpcc::TpccScale& scale, uint64_t seed = 42);

  const tpcc::TpccScale& scale() const { return scale_; }

  /// Executes the transaction logic against the data and reports its
  /// footprint. Never fails on conflicts (the engines' concurrency models
  /// are charged separately); user_abort marks the 1%-rollback new-orders.
  Result<ExecStats> Apply(const tpcc::TxnInput& input);

  WarehousePartition* warehouse(int64_t w) { return partitions_[w - 1].get(); }
  size_t num_warehouses() const { return partitions_.size(); }

 private:
  ExecStats NewOrder(const tpcc::NewOrderInput& input);
  ExecStats Payment(const tpcc::PaymentInput& input);
  ExecStats Delivery(const tpcc::DeliveryInput& input);
  ExecStats OrderStatus(const tpcc::OrderStatusInput& input);
  ExecStats StockLevel(const tpcc::StockLevelInput& input);

  tpcc::TpccScale scale_;
  std::vector<std::unique_ptr<WarehousePartition>> partitions_;
  std::vector<ItemRow> items_;
};

}  // namespace tell::baselines

#endif  // TELL_BASELINES_TPCC_DATA_H_
