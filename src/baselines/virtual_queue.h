#ifndef TELL_BASELINES_VIRTUAL_QUEUE_H_
#define TELL_BASELINES_VIRTUAL_QUEUE_H_

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <vector>

namespace tell::baselines {

/// A single-server queue living purely in virtual time. Workers share one
/// global virtual timeline (all their clocks start at 0 and represent the
/// same simulated wall clock), so a serial resource — a VoltDB partition
/// engine, a MySQL Cluster data node, FoundationDB's central resolver — is
/// modelled by reserving service time on this queue.
///
/// The model is work-conserving rather than strict-FIFO: workers call in
/// real-thread order, which does not match virtual-time order (their clocks
/// drift apart), so a strict "next free instant" would charge phantom waits
/// to any worker whose clock lags behind another's. Instead the queue
/// tracks the TOTAL service ever reserved; an arrival at virtual time `now`
/// starts no earlier than `now` and no earlier than the completion of all
/// previously reserved work (as if the server ran continuously). Under low
/// load the backlog trails the clocks and nobody waits; past saturation the
/// backlog outruns the clocks and throughput converges to exactly
/// 1/service — which is what makes the partitioned baselines saturate the
/// way the paper's Figure 8 shows.
class VirtualQueue {
 public:
  VirtualQueue() = default;
  VirtualQueue(const VirtualQueue&) = delete;
  VirtualQueue& operator=(const VirtualQueue&) = delete;

  /// Reserves `service_ns` of server time for an arrival at `now_ns`;
  /// returns the completion time.
  uint64_t Enqueue(uint64_t now_ns, uint64_t service_ns) {
    uint64_t before =
        total_work_.fetch_add(service_ns, std::memory_order_acq_rel);
    return std::max(now_ns, before) + service_ns;
  }

  /// Completion time of all reserved work if the server never idled
  /// (diagnostics / multi-queue reservations).
  uint64_t backlog_until() const {
    return total_work_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<uint64_t> total_work_{0};
};

/// Reserves one service interval on SEVERAL queues at once (a multi-
/// partition transaction blocking every involved partition). The start time
/// is the max over all queues' availability, and every queue is blocked
/// until the common finish. Queues must be passed in a canonical order by
/// the caller (the caller holds the corresponding data locks, so the
/// reservation is atomic with respect to other multi-queue callers).
inline uint64_t EnqueueAll(const std::vector<VirtualQueue*>& queues,
                           uint64_t now_ns, uint64_t service_ns) {
  uint64_t start = now_ns;
  for (VirtualQueue* queue : queues) {
    start = std::max(start, queue->backlog_until());
  }
  uint64_t finish = start + service_ns;
  for (VirtualQueue* queue : queues) {
    (void)queue->Enqueue(start, service_ns);
  }
  return finish;
}

}  // namespace tell::baselines

#endif  // TELL_BASELINES_VIRTUAL_QUEUE_H_
