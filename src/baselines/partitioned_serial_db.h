#ifndef TELL_BASELINES_PARTITIONED_SERIAL_DB_H_
#define TELL_BASELINES_PARTITIONED_SERIAL_DB_H_

#include <memory>
#include <vector>

#include "baselines/tpcc_data.h"
#include "baselines/virtual_queue.h"
#include "sim/metrics.h"
#include "sim/virtual_clock.h"
#include "workload/tpcc/tpcc_driver.h"

namespace tell::baselines {

/// VoltDB-style engine model (paper §6.4): data is partitioned by warehouse,
/// every partition is a single-threaded execution engine that runs
/// transactions serially as pre-compiled stored procedures — blazingly fast
/// for single-partition work because there is no concurrency control at all.
/// Multi-partition transactions, however, are coordinated by a single
/// multi-partition initiator and block EVERY partition for the duration of
/// the coordination. With TPC-C's ~11% cross-warehouse transactions this is
/// what collapses VoltDB's throughput in Figure 8 (and blows its latency up
/// to hundreds of ms in Table 4), while the shardable variant (Figure 9)
/// lets it win.
struct PartitionedSerialOptions {
  /// Single-partition stored procedure service time on its engine.
  uint64_t sp_service_ns = 100'000;
  /// Multi-partition coordination: all partitions blocked this long.
  /// Grows with cluster size (more initiators to coordinate); benches set
  /// this per configuration.
  uint64_t mp_service_ns = 6'000'000;
  /// Client round trip (TCP stack + VoltDB wire protocol + planner fast
  /// path).
  uint64_t client_rtt_ns = 340'000;
  /// K-factor + 1 (copies of each partition); synchronous replication
  /// multiplies the partition service time.
  uint32_t replication_factor = 1;
};

class PartitionedSerialDb final : public tpcc::TpccBackend {
 public:
  PartitionedSerialDb(const tpcc::TpccScale& scale,
                      const PartitionedSerialOptions& options,
                      uint64_t seed = 42)
      : options_(options), data_(scale, seed) {
    queues_.reserve(scale.warehouses);
    for (uint32_t i = 0; i < scale.warehouses; ++i) {
      queues_.push_back(std::make_unique<VirtualQueue>());
    }
  }

  Status Prepare(uint32_t num_workers) override {
    workers_.clear();
    workers_.resize(num_workers);
    return Status::OK();
  }

  Result<tpcc::TxnOutcome> Execute(uint32_t worker_id,
                                   const tpcc::TxnInput& input) override {
    Worker& worker = workers_[worker_id];
    TELL_ASSIGN_OR_RETURN(ExecStats stats, data_.Apply(input));
    uint64_t now = worker.clock.now_ns();
    uint64_t service =
        options_.sp_service_ns * options_.replication_factor;
    uint64_t finish;
    if (stats.warehouses.size() <= 1) {
      int64_t w = stats.warehouses.empty() ? 1 : stats.warehouses[0];
      finish = queues_[static_cast<size_t>(w - 1)]->Enqueue(now, service);
    } else {
      // Multi-partition: the MP initiator stalls every partition.
      std::vector<VirtualQueue*> all;
      all.reserve(queues_.size());
      for (auto& queue : queues_) all.push_back(queue.get());
      finish = EnqueueAll(all, now, options_.mp_service_ns);
    }
    worker.clock.AdvanceTo(finish + options_.client_rtt_ns);
    tpcc::TxnOutcome outcome;
    if (stats.user_abort) {
      outcome.user_abort = true;
      worker.metrics.aborted += 1;
    } else {
      outcome.committed = true;
      worker.metrics.committed += 1;
    }
    worker.metrics.storage_ops += stats.read_ops + stats.write_ops;
    return outcome;
  }

  sim::VirtualClock* clock(uint32_t worker_id) override {
    return &workers_[worker_id].clock;
  }
  sim::WorkerMetrics* metrics(uint32_t worker_id) override {
    return &workers_[worker_id].metrics;
  }

 private:
  struct Worker {
    sim::VirtualClock clock;
    sim::WorkerMetrics metrics;
  };
  const PartitionedSerialOptions options_;
  TpccData data_;
  std::vector<std::unique_ptr<VirtualQueue>> queues_;
  std::vector<Worker> workers_;
};

}  // namespace tell::baselines

#endif  // TELL_BASELINES_PARTITIONED_SERIAL_DB_H_
