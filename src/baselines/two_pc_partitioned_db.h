#ifndef TELL_BASELINES_TWO_PC_PARTITIONED_DB_H_
#define TELL_BASELINES_TWO_PC_PARTITIONED_DB_H_

#include <memory>
#include <vector>

#include "baselines/tpcc_data.h"
#include "baselines/virtual_queue.h"
#include "sim/metrics.h"
#include "sim/virtual_clock.h"
#include "workload/tpcc/tpcc_driver.h"

namespace tell::baselines {

/// MySQL-Cluster-style engine model (paper §6.4): data nodes (NDB) hold the
/// warehouse partitions in memory; SQL nodes federate queries, so every
/// operation of a prepared statement is a client -> SQL node -> data node
/// round trip. Row-level locking lets single-partition transactions proceed
/// while distributed transactions run two-phase commit across their
/// participant data nodes (so, unlike VoltDB, cross-partition work does not
/// stall unrelated partitions — which is why MySQL Cluster degrades more
/// gracefully in Figure 8, yet never reaches Tell's throughput because of
/// its per-operation overhead).
struct TwoPcOptions {
  uint32_t num_data_nodes = 3;
  /// SQL nodes federating between clients and data nodes; a shared serial
  /// resource that caps cluster throughput (why MySQL Cluster flattens out
  /// in Figure 8 even as data nodes are added).
  uint32_t num_sql_nodes = 2;
  uint64_t sql_op_service_ns = 9'000;
  /// Per-operation cost seen by the client (TCP + SQL node federation).
  uint64_t per_op_client_ns = 55'000;
  /// Data node execution time per operation (reserved on the DN's queue).
  uint64_t dn_op_service_ns = 5'000;
  /// Two-phase commit: prepare+commit service per participant data node.
  uint64_t two_pc_service_ns = 400'000;
  /// NDB synchronous replication multiplies write service on the DNs.
  uint32_t replication_factor = 1;
};

class TwoPcPartitionedDb final : public tpcc::TpccBackend {
 public:
  TwoPcPartitionedDb(const tpcc::TpccScale& scale, const TwoPcOptions& options,
                     uint64_t seed = 42)
      : options_(options), data_(scale, seed) {
    queues_.reserve(options_.num_data_nodes);
    for (uint32_t i = 0; i < options_.num_data_nodes; ++i) {
      queues_.push_back(std::make_unique<VirtualQueue>());
    }
    sql_queues_.reserve(options_.num_sql_nodes);
    for (uint32_t i = 0; i < options_.num_sql_nodes; ++i) {
      sql_queues_.push_back(std::make_unique<VirtualQueue>());
    }
  }

  Status Prepare(uint32_t num_workers) override {
    workers_.clear();
    workers_.resize(num_workers);
    return Status::OK();
  }

  Result<tpcc::TxnOutcome> Execute(uint32_t worker_id,
                                   const tpcc::TxnInput& input) override {
    Worker& worker = workers_[worker_id];
    TELL_ASSIGN_OR_RETURN(ExecStats stats, data_.Apply(input));
    uint64_t now = worker.clock.now_ns();
    uint64_t ops = stats.read_ops + stats.write_ops;
    // Sequential prepared-statement round trips through the SQL node.
    uint64_t client_done = now + ops * options_.per_op_client_ns;
    // The assigned SQL node federates every operation (serial resource).
    VirtualQueue* sql =
        sql_queues_[worker_id % sql_queues_.size()].get();
    uint64_t sql_done =
        sql->Enqueue(now, ops * options_.sql_op_service_ns);
    client_done = std::max(client_done, sql_done);

    // Reserve execution time on the participant data nodes; writes run
    // replication_factor times (synchronous replicas).
    std::vector<VirtualQueue*> participants;
    for (int64_t w : stats.warehouses) {
      participants.push_back(
          queues_[static_cast<size_t>(w - 1) % queues_.size()].get());
    }
    if (participants.empty()) participants.push_back(queues_[0].get());
    uint64_t weighted_ops =
        stats.read_ops + stats.write_ops * options_.replication_factor;
    uint64_t per_dn_service = weighted_ops * options_.dn_op_service_ns /
                              static_cast<uint64_t>(participants.size());
    uint64_t dn_done = now;
    for (VirtualQueue* queue : participants) {
      dn_done = std::max(dn_done, queue->Enqueue(now, per_dn_service));
    }
    uint64_t finish = std::max(client_done, dn_done);
    if (participants.size() > 1) {
      // Distributed transaction: 2PC across the participants.
      finish = EnqueueAll(participants, finish, options_.two_pc_service_ns);
    }
    worker.clock.AdvanceTo(finish);
    tpcc::TxnOutcome outcome;
    if (stats.user_abort) {
      outcome.user_abort = true;
      worker.metrics.aborted += 1;
    } else {
      outcome.committed = true;
      worker.metrics.committed += 1;
    }
    worker.metrics.storage_ops += ops;
    return outcome;
  }

  sim::VirtualClock* clock(uint32_t worker_id) override {
    return &workers_[worker_id].clock;
  }
  sim::WorkerMetrics* metrics(uint32_t worker_id) override {
    return &workers_[worker_id].metrics;
  }

 private:
  struct Worker {
    sim::VirtualClock clock;
    sim::WorkerMetrics metrics;
  };
  const TwoPcOptions options_;
  TpccData data_;
  std::vector<std::unique_ptr<VirtualQueue>> queues_;
  std::vector<std::unique_ptr<VirtualQueue>> sql_queues_;
  std::vector<Worker> workers_;
};

}  // namespace tell::baselines

#endif  // TELL_BASELINES_TWO_PC_PARTITIONED_DB_H_
