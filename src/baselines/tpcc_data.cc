#include "baselines/tpcc_data.h"

#include <algorithm>

#include "common/logging.h"
#include "workload/tpcc/tpcc_loader.h"

namespace tell::baselines {

using tpcc::TxnInput;
using tpcc::TxnType;

TpccData::TpccData(const tpcc::TpccScale& scale, uint64_t seed)
    : scale_(scale) {
  Random rng(seed);
  items_.resize(scale_.items);
  for (ItemRow& item : items_) {
    item.price = static_cast<double>(rng.UniformInt(100, 10000)) / 100.0;
  }
  partitions_.reserve(scale_.warehouses);
  for (uint32_t w = 1; w <= scale_.warehouses; ++w) {
    auto part = std::make_unique<WarehousePartition>();
    part->tax = static_cast<double>(rng.UniformInt(0, 2000)) / 10000.0;
    part->districts.resize(scale_.districts_per_warehouse);
    part->customers.resize(scale_.districts_per_warehouse);
    part->customers_by_name.resize(scale_.districts_per_warehouse);
    part->orders.resize(scale_.districts_per_warehouse);
    part->order_lines.resize(scale_.districts_per_warehouse);
    part->new_orders.resize(scale_.districts_per_warehouse);
    part->stock.resize(scale_.items);
    for (StockRow& stock : part->stock) {
      stock.quantity = rng.UniformInt(10, 100);
    }
    for (uint32_t d = 0; d < scale_.districts_per_warehouse; ++d) {
      DistrictRow& district = part->districts[d];
      district.tax = static_cast<double>(rng.UniformInt(0, 2000)) / 10000.0;
      district.next_o_id =
          static_cast<int64_t>(scale_.initial_orders_per_district) + 1;
      part->customers[d].resize(scale_.customers_per_district);
      for (uint32_t c = 0; c < scale_.customers_per_district; ++c) {
        CustomerRow& customer = part->customers[d][c];
        int64_t name_number =
            c < 1000 ? static_cast<int64_t>(c)
                     : rng.NonUniform(255, tpcc::kCLast, 0, 999);
        customer.last = tpcc::LastName(name_number);
        customer.first = rng.AlphaString(8, 16);
        customer.credit = rng.Bernoulli(0.1) ? "BC" : "GC";
        customer.discount =
            static_cast<double>(rng.UniformInt(0, 5000)) / 10000.0;
        part->customers_by_name[d].emplace(customer.last,
                                           static_cast<int64_t>(c + 1));
      }
      uint32_t num_orders = std::min(scale_.initial_orders_per_district,
                                     scale_.customers_per_district);
      uint32_t first_undelivered = num_orders - num_orders / 3 + 1;
      for (uint32_t o = 1; o <= num_orders; ++o) {
        OrderRow order;
        order.c_id = rng.UniformInt(1, scale_.customers_per_district);
        order.ol_cnt = rng.UniformInt(5, 15);
        order.delivered = o < first_undelivered;
        for (int64_t ol = 1; ol <= order.ol_cnt; ++ol) {
          OrderLineRow line;
          line.i_id = rng.UniformInt(1, static_cast<int64_t>(scale_.items));
          line.supply_w = static_cast<int64_t>(w);
          line.quantity = 5;
          line.amount =
              order.delivered
                  ? 0.0
                  : static_cast<double>(rng.UniformInt(1, 999999)) / 100.0;
          part->order_lines[d].emplace(std::make_pair(int64_t{o}, ol), line);
        }
        if (!order.delivered) part->new_orders[d].insert(o);
        part->orders[d].emplace(o, order);
      }
    }
    partitions_.push_back(std::move(part));
  }
}

Result<ExecStats> TpccData::Apply(const TxnInput& input) {
  switch (input.type) {
    case TxnType::kNewOrder:
      return NewOrder(input.new_order);
    case TxnType::kPayment:
      return Payment(input.payment);
    case TxnType::kDelivery:
      return Delivery(input.delivery);
    case TxnType::kOrderStatus:
      return OrderStatus(input.order_status);
    case TxnType::kStockLevel:
      return StockLevel(input.stock_level);
  }
  return Status::InvalidArgument("unknown transaction type");
}

namespace {

/// Locks a set of warehouse partitions in ascending id order (no deadlock).
class MultiLock {
 public:
  MultiLock(TpccData* data, std::vector<int64_t> warehouses)
      : data_(data), warehouses_(std::move(warehouses)) {
    std::sort(warehouses_.begin(), warehouses_.end());
    warehouses_.erase(std::unique(warehouses_.begin(), warehouses_.end()),
                      warehouses_.end());
    for (int64_t w : warehouses_) data_->warehouse(w)->mutex.lock();
  }
  ~MultiLock() {
    for (auto it = warehouses_.rbegin(); it != warehouses_.rend(); ++it) {
      data_->warehouse(*it)->mutex.unlock();
    }
  }
  const std::vector<int64_t>& warehouses() const { return warehouses_; }

 private:
  TpccData* data_;
  std::vector<int64_t> warehouses_;
};

}  // namespace

ExecStats TpccData::NewOrder(const tpcc::NewOrderInput& input) {
  ExecStats stats;
  std::vector<int64_t> involved{input.warehouse};
  for (const tpcc::NewOrderLine& line : input.lines) {
    involved.push_back(line.supply_warehouse);
  }
  MultiLock lock(this, involved);
  stats.warehouses = lock.warehouses();

  WarehousePartition* home = warehouse(input.warehouse);
  size_t d = static_cast<size_t>(input.district - 1);
  stats.read_ops += 3;  // warehouse, district, customer
  if (input.rollback) {
    // The unused item is discovered after the reads; nothing was changed.
    stats.user_abort = true;
    stats.read_ops += static_cast<uint32_t>(input.lines.size());
    return stats;
  }
  int64_t o_id = home->districts[d].next_o_id++;
  stats.write_ops += 1;  // district
  OrderRow order;
  order.c_id = input.customer;
  order.ol_cnt = static_cast<int64_t>(input.lines.size());
  home->orders[d].emplace(o_id, order);
  home->new_orders[d].insert(o_id);
  stats.write_ops += 2;
  int64_t ol = 1;
  for (const tpcc::NewOrderLine& line : input.lines) {
    const ItemRow& item = items_[static_cast<size_t>(line.item_id - 1)];
    WarehousePartition* supply = warehouse(line.supply_warehouse);
    StockRow& stock = supply->stock[static_cast<size_t>(line.item_id - 1)];
    if (stock.quantity >= line.quantity + 10) {
      stock.quantity -= line.quantity;
    } else {
      stock.quantity = stock.quantity - line.quantity + 91;
    }
    stock.ytd += static_cast<double>(line.quantity);
    stock.order_cnt += 1;
    if (line.supply_warehouse != input.warehouse) stock.remote_cnt += 1;
    OrderLineRow row;
    row.i_id = line.item_id;
    row.supply_w = line.supply_warehouse;
    row.quantity = line.quantity;
    row.amount = static_cast<double>(line.quantity) * item.price;
    home->order_lines[d].emplace(std::make_pair(o_id, ol++), row);
    stats.read_ops += 2;   // item + stock read
    stats.write_ops += 2;  // stock update + order line insert
  }
  return stats;
}

ExecStats TpccData::Payment(const tpcc::PaymentInput& input) {
  ExecStats stats;
  MultiLock lock(this, {input.warehouse, input.customer_warehouse});
  stats.warehouses = lock.warehouses();

  WarehousePartition* home = warehouse(input.warehouse);
  home->ytd += input.amount;
  size_t d = static_cast<size_t>(input.district - 1);
  home->districts[d].ytd += input.amount;
  stats.read_ops += 2;
  stats.write_ops += 2;

  WarehousePartition* cw = warehouse(input.customer_warehouse);
  size_t cd = static_cast<size_t>(input.customer_district - 1);
  int64_t c_id = input.customer_id;
  if (input.by_last_name) {
    auto [lo, hi] = cw->customers_by_name[cd].equal_range(input.customer_last);
    std::vector<int64_t> matches;
    for (auto it = lo; it != hi; ++it) matches.push_back(it->second);
    stats.read_ops += static_cast<uint32_t>(matches.size());
    if (matches.empty()) return stats;  // rare under scaled population
    c_id = matches[(matches.size() - 1) / 2];
  }
  CustomerRow& customer = cw->customers[cd][static_cast<size_t>(c_id - 1)];
  customer.balance -= input.amount;
  customer.ytd_payment += input.amount;
  customer.payment_cnt += 1;
  stats.read_ops += 1;
  stats.write_ops += 2;  // customer + history insert
  return stats;
}

ExecStats TpccData::Delivery(const tpcc::DeliveryInput& input) {
  ExecStats stats;
  MultiLock lock(this, {input.warehouse});
  stats.warehouses = lock.warehouses();
  WarehousePartition* home = warehouse(input.warehouse);
  for (size_t d = 0; d < home->districts.size(); ++d) {
    if (home->new_orders[d].empty()) {
      stats.read_ops += 1;
      continue;
    }
    int64_t o_id = *home->new_orders[d].begin();
    home->new_orders[d].erase(home->new_orders[d].begin());
    OrderRow& order = home->orders[d][o_id];
    order.carrier = input.carrier;
    order.delivered = true;
    double total = 0;
    for (int64_t ol = 1; ol <= order.ol_cnt; ++ol) {
      auto it = home->order_lines[d].find({o_id, ol});
      if (it == home->order_lines[d].end()) continue;
      total += it->second.amount;
      it->second.delivery_d = 1;
      stats.read_ops += 1;
      stats.write_ops += 1;
    }
    CustomerRow& customer =
        home->customers[d][static_cast<size_t>(order.c_id - 1)];
    customer.balance += total;
    customer.delivery_cnt += 1;
    stats.read_ops += 2;
    stats.write_ops += 3;  // new_order delete, order update, customer
  }
  return stats;
}

ExecStats TpccData::OrderStatus(const tpcc::OrderStatusInput& input) {
  ExecStats stats;
  MultiLock lock(this, {input.warehouse});
  stats.warehouses = lock.warehouses();
  WarehousePartition* home = warehouse(input.warehouse);
  size_t d = static_cast<size_t>(input.district - 1);
  int64_t c_id = input.customer_id;
  if (input.by_last_name) {
    auto [lo, hi] = home->customers_by_name[d].equal_range(input.customer_last);
    std::vector<int64_t> matches;
    for (auto it = lo; it != hi; ++it) matches.push_back(it->second);
    stats.read_ops += static_cast<uint32_t>(matches.size());
    if (matches.empty()) return stats;
    c_id = matches[(matches.size() - 1) / 2];
  }
  stats.read_ops += 1;  // customer
  // Most recent order of the customer.
  const auto& orders = home->orders[d];
  for (auto it = orders.rbegin(); it != orders.rend(); ++it) {
    if (it->second.c_id == c_id) {
      stats.read_ops += 1 + static_cast<uint32_t>(it->second.ol_cnt);
      break;
    }
  }
  return stats;
}

ExecStats TpccData::StockLevel(const tpcc::StockLevelInput& input) {
  ExecStats stats;
  MultiLock lock(this, {input.warehouse});
  stats.warehouses = lock.warehouses();
  WarehousePartition* home = warehouse(input.warehouse);
  size_t d = static_cast<size_t>(input.district - 1);
  int64_t next_o_id = home->districts[d].next_o_id;
  std::set<int64_t> item_ids;
  for (int64_t o = std::max<int64_t>(1, next_o_id - 20); o < next_o_id; ++o) {
    auto lo = home->order_lines[d].lower_bound({o, 0});
    auto hi = home->order_lines[d].lower_bound({o + 1, 0});
    for (auto it = lo; it != hi; ++it) {
      item_ids.insert(it->second.i_id);
      stats.read_ops += 1;
    }
  }
  int64_t low = 0;
  for (int64_t item : item_ids) {
    if (home->stock[static_cast<size_t>(item - 1)].quantity <
        input.threshold) {
      ++low;
    }
    stats.read_ops += 1;
  }
  (void)low;
  return stats;
}

}  // namespace tell::baselines
