#ifndef TELL_TX_GARBAGE_COLLECTOR_H_
#define TELL_TX_GARBAGE_COLLECTOR_H_

#include <cstdint>
#include <mutex>
#include <vector>

#include "commitmgr/commit_manager.h"
#include "common/result.h"
#include "store/storage_client.h"
#include "tx/catalog.h"
#include "tx/transaction_log.h"

namespace tell::tx {

struct GcStats {
  size_t records_rewritten = 0;
  size_t versions_removed = 0;
  size_t records_erased = 0;
  size_t index_entries_removed = 0;
  size_t log_entries_truncated = 0;

  void Accumulate(const GcStats& other) {
    records_rewritten += other.records_rewritten;
    versions_removed += other.versions_removed;
    records_erased += other.records_erased;
    index_entries_removed += other.index_entries_removed;
    log_entries_truncated += other.log_entries_truncated;
  }
};

/// The lazy garbage collection strategy (paper §5.4): a background task that
/// sweeps all records in regular intervals and removes versions (and whole
/// records, and their index entries) that can never be accessed again
/// because they are older than the lowest active version number. Complements
/// the eager strategy, which runs inline with updates (Transaction::Commit)
/// and reads (index entry validation).
class GarbageCollector {
 public:
  explicit GarbageCollector(commitmgr::CommitManagerGroup* commit_managers)
      : commit_managers_(commit_managers) {}

  GarbageCollector(const GarbageCollector&) = delete;
  GarbageCollector& operator=(const GarbageCollector&) = delete;

  /// One sweep over a table's records at the current global lav.
  Result<GcStats> SweepTable(store::StorageClient* client, TableHandle* table);

  /// Sweeps all given tables and truncates the transaction log below the
  /// lav.
  Result<GcStats> Sweep(store::StorageClient* client,
                        const std::vector<TableHandle*>& tables,
                        const TransactionLog* log);

  /// Cumulative totals across every sweep since construction (exported into
  /// the obs::MetricsRegistry gauges `gc.*` by db::TellDb).
  GcStats totals() const {
    std::lock_guard<std::mutex> lock(totals_mutex_);
    return totals_;
  }

 private:
  commitmgr::CommitManagerGroup* const commit_managers_;
  mutable std::mutex totals_mutex_;
  GcStats totals_;
};

}  // namespace tell::tx

#endif  // TELL_TX_GARBAGE_COLLECTOR_H_
