#ifndef TELL_TX_TRANSACTION_LOG_H_
#define TELL_TX_TRANSACTION_LOG_H_

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "commitmgr/snapshot_descriptor.h"
#include "common/result.h"
#include "common/status.h"
#include "store/storage_client.h"

namespace tell::tx {

using commitmgr::Tid;

/// One transaction log entry (paper §4.4.1): identified by tid, carrying the
/// processing node id, a timestamp, the write set (updated record ids) and a
/// flag marking the transaction committed.
struct LogEntry {
  Tid tid = 0;
  uint32_t pn_id = 0;
  uint64_t timestamp_ns = 0;
  bool committed = false;
  /// (data table, rid) of every record the transaction applies.
  std::vector<std::pair<store::TableId, uint64_t>> write_set;

  std::string Serialize() const;
  static Result<LogEntry> Deserialize(std::string_view data);
};

/// The transaction log: an ordered map of log entries in the storage system,
/// keyed by tid. Before a transaction applies its updates it must append an
/// entry here (the Try-Commit step); after the updates and index changes are
/// installed, the committed flag is set. Recovery walks the log backwards
/// from the highest assigned tid down to the lav (which acts as a rolling
/// checkpoint) to find the uncommitted transactions of a failed PN.
class TransactionLog {
 public:
  explicit TransactionLog(store::TableId table) : table_(table) {}

  store::TableId table() const { return table_; }

  /// Appends the entry (must be the first write for this tid).
  Status Append(store::StorageClient* client, const LogEntry& entry) const;

  /// Sets the committed flag of `tid`'s entry.
  Status MarkCommitted(store::StorageClient* client, Tid tid) const;

  /// Reads one entry; nullopt if the tid never logged.
  Result<std::optional<LogEntry>> Get(store::StorageClient* client,
                                      Tid tid) const;

  /// Entries with tid in (lav, from_tid], newest first. Used by recovery.
  Result<std::vector<LogEntry>> ScanBackwards(store::StorageClient* client,
                                              Tid from_tid, Tid lav) const;

  /// Deletes entries with tid <= `lav` (log truncation; the lav is a rolling
  /// checkpoint so nothing below it is ever needed again).
  Result<size_t> Truncate(store::StorageClient* client, Tid lav) const;

 private:
  store::TableId table_;
};

}  // namespace tell::tx

#endif  // TELL_TX_TRANSACTION_LOG_H_
