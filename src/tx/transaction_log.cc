#include "tx/transaction_log.h"

#include <algorithm>

#include "common/serde.h"

namespace tell::tx {

std::string LogEntry::Serialize() const {
  BufferWriter writer;
  writer.PutU64(tid);
  writer.PutU32(pn_id);
  writer.PutU64(timestamp_ns);
  writer.PutU8(committed ? 1 : 0);
  writer.PutU32(static_cast<uint32_t>(write_set.size()));
  for (const auto& [table, rid] : write_set) {
    writer.PutU32(table);
    writer.PutU64(rid);
  }
  return writer.Release();
}

Result<LogEntry> LogEntry::Deserialize(std::string_view data) {
  BufferReader reader(data);
  LogEntry entry;
  TELL_ASSIGN_OR_RETURN(entry.tid, reader.GetU64());
  TELL_ASSIGN_OR_RETURN(entry.pn_id, reader.GetU32());
  TELL_ASSIGN_OR_RETURN(entry.timestamp_ns, reader.GetU64());
  TELL_ASSIGN_OR_RETURN(uint8_t committed, reader.GetU8());
  entry.committed = committed != 0;
  TELL_ASSIGN_OR_RETURN(uint32_t count, reader.GetU32());
  entry.write_set.reserve(std::min<size_t>(count, reader.remaining() / 12 + 1));
  for (uint32_t i = 0; i < count; ++i) {
    TELL_ASSIGN_OR_RETURN(uint32_t table, reader.GetU32());
    TELL_ASSIGN_OR_RETURN(uint64_t rid, reader.GetU64());
    entry.write_set.emplace_back(table, rid);
  }
  return entry;
}

Status TransactionLog::Append(store::StorageClient* client,
                              const LogEntry& entry) const {
  client->metrics()->log_appends += 1;
  auto put = client->ConditionalPut(table_, EncodeOrderedU64(entry.tid),
                                    store::kStampAbsent, entry.Serialize());
  if (put.status().IsConditionFailed()) {
    return Status::AlreadyExists("log entry for tid exists");
  }
  return put.status();
}

Status TransactionLog::MarkCommitted(store::StorageClient* client,
                                     Tid tid) const {
  TELL_ASSIGN_OR_RETURN(store::VersionedCell cell,
                        client->Get(table_, EncodeOrderedU64(tid)));
  TELL_ASSIGN_OR_RETURN(LogEntry entry, LogEntry::Deserialize(cell.value));
  entry.committed = true;
  // Only the owning transaction ever sets this flag, so an unconditional
  // put is safe; recovery only reads entries of *dead* PNs.
  return client->Put(table_, EncodeOrderedU64(tid), entry.Serialize())
      .status();
}

Result<std::optional<LogEntry>> TransactionLog::Get(
    store::StorageClient* client, Tid tid) const {
  auto cell = client->Get(table_, EncodeOrderedU64(tid));
  if (cell.status().IsNotFound()) return std::optional<LogEntry>{};
  TELL_RETURN_NOT_OK(cell.status());
  TELL_ASSIGN_OR_RETURN(LogEntry entry, LogEntry::Deserialize(cell->value));
  return std::optional<LogEntry>(std::move(entry));
}

Result<std::vector<LogEntry>> TransactionLog::ScanBackwards(
    store::StorageClient* client, Tid from_tid, Tid lav) const {
  // Entries with tid in (lav, from_tid].
  std::string start = EncodeOrderedU64(lav + 1);
  std::string end = EncodeOrderedU64(from_tid + 1);
  TELL_ASSIGN_OR_RETURN(
      std::vector<store::KeyCell> cells,
      client->Scan(table_, start, end, /*limit=*/0, /*reverse=*/true));
  std::vector<LogEntry> entries;
  entries.reserve(cells.size());
  for (const auto& cell : cells) {
    TELL_ASSIGN_OR_RETURN(LogEntry entry, LogEntry::Deserialize(cell.value));
    entries.push_back(std::move(entry));
  }
  return entries;
}

Result<size_t> TransactionLog::Truncate(store::StorageClient* client,
                                        Tid lav) const {
  TELL_ASSIGN_OR_RETURN(
      std::vector<store::KeyCell> cells,
      client->Scan(table_, "", EncodeOrderedU64(lav + 1), /*limit=*/0));
  size_t removed = 0;
  for (const auto& cell : cells) {
    Status st = client->Erase(table_, cell.key);
    if (st.ok()) ++removed;
  }
  return removed;
}

}  // namespace tell::tx
