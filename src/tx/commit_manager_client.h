#ifndef TELL_TX_COMMIT_MANAGER_CLIENT_H_
#define TELL_TX_COMMIT_MANAGER_CLIENT_H_

#include <cstdint>
#include <map>
#include <vector>

#include "commitmgr/commit_manager.h"
#include "common/random.h"
#include "common/result.h"
#include "common/status.h"
#include "store/storage_client.h"

namespace tell::tx {

/// Client-side knobs of the commit-manager wire protocol (mirrored from
/// tx::SessionOptions).
struct CommitSyncOptions {
  /// Delta-encoded snapshot sync (DESIGN.md, "Snapshot delta sync & group
  /// begin/commit"). Off = every begin ships the full descriptor.
  bool delta = true;
  /// Group begin/finish: finish notifications ride in the same coalesced
  /// message as the worker's next begin. Off = every finish pays its own
  /// round trip.
  bool batching = true;
};

/// The session's window to its commit managers (paper §4.2's start() /
/// setCommitted() / setAborted() calls), owning the wire-cost model for
/// them the way StorageClient does for storage requests.
///
/// Two optimizations make the hot path cheap in bytes and round trips:
///
///  * **Delta sync** — the client caches, per manager, the last descriptor
///    it received and its (generation, epoch); begins acknowledge that
///    state, and the manager answers with only the base advance plus the
///    tids completed since (a full descriptor on first contact, after a
///    manager recovery, or when the delta would not be smaller).
///  * **Group begin/finish** — setCommitted/setAborted apply at the manager
///    immediately (the simulated manager is shared memory; snapshot and GC
///    semantics are identical to the synchronous protocol), but their
///    message cost is deferred and piggybacked onto the worker's next begin
///    to the same manager: one coalesced round trip carries the finish
///    notifications and the start, exactly like the PR-3 storage pipeline's
///    per-node messages.
///
/// Begins are fault-injectable (FaultOpClass::kCommitMgrStart/-Finish on
/// the manager's state table) and retried under the client's RetryPolicy.
/// A retried begin whose response was lost re-sends its idempotency token,
/// so it reuses the already-assigned tid instead of leaking an active entry
/// that would hold the snapshot base (and with it the GC horizon) back
/// forever. Per-worker, like StorageClient: no synchronization needed.
class CommitManagerClient {
 public:
  CommitManagerClient(commitmgr::CommitManagerGroup* group,
                      store::StorageClient* client,
                      const CommitSyncOptions& options);
  /// Charges any finish-notification costs still waiting for a begin.
  ~CommitManagerClient();

  CommitManagerClient(const CommitManagerClient&) = delete;
  CommitManagerClient& operator=(const CommitManagerClient&) = delete;

  /// start(): one coalesced message carrying the deferred finish
  /// notifications and the begin; reconstructs the snapshot from the
  /// returned delta. Fails over to the next live manager between retries.
  Result<commitmgr::TxnBegin> Begin(uint32_t pn_id);

  /// Manager that served the last successful Begin().
  commitmgr::CommitManager* last_manager() { return last_manager_; }

  /// setCommitted(tid) / setAborted(tid). State applies immediately; the
  /// message cost is deferred onto the next begin when batching is on.
  Status Finish(commitmgr::CommitManager* manager, commitmgr::Tid tid,
                bool committed);

  /// Charges every deferred finish notification now (teardown, tests).
  void FlushPendingAccounting();

  /// Deferred finish notifications not yet charged.
  size_t PendingFinishes() const { return pending_.size(); }

 private:
  struct ManagerCache {
    uint32_t generation = 0;  // 0 = nothing cached (first contact)
    uint64_t epoch = 0;
    commitmgr::SnapshotDescriptor snapshot;
  };

  uint64_t NextToken();
  /// Charges one coalesced commit-manager message built from per-op
  /// (request, response) payload bytes.
  void ChargeMessage(const std::vector<std::pair<uint64_t, uint64_t>>& ops);
  /// Charges deferred finishes destined to managers other than `manager_id`
  /// as their own messages (they cannot ride on a begin to a different
  /// manager after a fail-over).
  void FlushPendingExcept(uint32_t manager_id);

  commitmgr::CommitManagerGroup* const group_;
  store::StorageClient* const client_;
  const CommitSyncOptions options_;
  /// Private RNG for begin-retry backoff jitter; NOT the StorageClient's
  /// rng_, so storage retry streams stay bit-identical with this feature.
  Random rng_;
  uint64_t token_counter_ = 0;
  const uint64_t token_salt_;
  /// Per-manager descriptor cache keyed by manager id.
  std::map<uint32_t, ManagerCache> cache_;
  /// Manager ids of finish notifications whose cost is still deferred.
  std::vector<uint32_t> pending_;
  commitmgr::CommitManager* last_manager_ = nullptr;
};

}  // namespace tell::tx

#endif  // TELL_TX_COMMIT_MANAGER_CLIENT_H_
